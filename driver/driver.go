// Package driver is gignite's database/sql driver: it speaks the wire
// protocol of internal/wire (DESIGN.md §16) over TCP to a gignited
// server, so any Go program can use the engine through the standard
// library's connection pool.
//
//	import (
//		"database/sql"
//		_ "gignite/driver"
//	)
//
//	db, err := sql.Open("gignite", "127.0.0.1:7468")
//	rows, err := db.QueryContext(ctx, "SELECT ...")
//
// The DSN is "host:port", optionally "gignite://host:port?token=SECRET"
// to pass the handshake auth token. `?` placeholders ride the wire
// Parse/Execute path (server-side prepared statements, so repeated
// executions skip planning), and context cancellation sends a Cancel
// frame that aborts the server-side query — the error then surfaces as
// the context's error. Server-side failures come back as the engine's
// typed sentinels: errors.Is(err, gignite.ErrOverloaded),
// gignite.ErrMemoryExceeded, gignite.ErrQueryTimeout and
// gignite.ErrEngineClosed all work across the wire.
//
// Transactions are not supported (the engine has no transactional
// storage); Begin returns an error.
package driver

import (
	"bufio"
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"net"
	"net/url"
	"strings"
	"sync"
	"time"

	"gignite"
	"gignite/internal/wire"
)

func init() {
	sql.Register("gignite", &Driver{})
}

// ErrTxUnsupported is returned by Begin: the engine has no transactions.
var ErrTxUnsupported = errors.New("gignite driver: transactions are not supported")

// Driver implements database/sql/driver.Driver and DriverContext.
type Driver struct{}

// Open dials the DSN (see the package comment for the format).
func (d *Driver) Open(name string) (driver.Conn, error) {
	c, err := d.OpenConnector(name)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN once for the pool.
func (d *Driver) OpenConnector(name string) (driver.Connector, error) {
	addr, token, err := parseDSN(name)
	if err != nil {
		return nil, err
	}
	return &Connector{Addr: addr, Token: token, drv: d}, nil
}

// parseDSN accepts "host:port" or "gignite://host:port?token=SECRET".
func parseDSN(name string) (addr, token string, err error) {
	if !strings.Contains(name, "://") {
		return name, "", nil
	}
	u, err := url.Parse(name)
	if err != nil {
		return "", "", fmt.Errorf("gignite driver: bad DSN %q: %w", name, err)
	}
	if u.Scheme != "gignite" {
		return "", "", fmt.Errorf("gignite driver: bad DSN scheme %q", u.Scheme)
	}
	return u.Host, u.Query().Get("token"), nil
}

// Connector implements driver.Connector; it dials and handshakes one
// connection per Connect.
type Connector struct {
	// Addr is the server's host:port.
	Addr string
	// Token is the handshake auth token ("" when the server requires none).
	Token string

	drv *Driver
}

// Connect dials, handshakes and returns a ready connection.
func (cn *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	var d net.Dialer
	netc, err := d.DialContext(ctx, "tcp", cn.Addr)
	if err != nil {
		return nil, err
	}
	c := &conn{netc: netc, br: bufio.NewReaderSize(netc, 32 << 10)}
	if err := c.handshake(ctx, cn.Token); err != nil {
		_ = netc.Close()
		return nil, err
	}
	return c, nil
}

// Driver returns the parent driver.
func (cn *Connector) Driver() driver.Driver {
	if cn.drv != nil {
		return cn.drv
	}
	return &Driver{}
}

// conn is one wire-protocol connection. database/sql guarantees that at
// most one operation runs on a conn at a time; the write mutex exists
// only for the context-cancel watcher, which injects a Cancel frame
// concurrently with a blocked read.
type conn struct {
	netc net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex

	nextStmt uint32
	broken   bool
}

func (c *conn) handshake(ctx context.Context, token string) error {
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.netc.SetDeadline(deadline)
		defer func() { _ = c.netc.SetDeadline(time.Time{}) }()
	}
	var enc wire.Encoder
	enc.U32(wire.Magic)
	enc.U8(wire.Version)
	enc.Str(token)
	if err := c.writeFrame(wire.FrameHello, enc.Bytes()); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(c.br, 0)
	if err != nil {
		return err
	}
	switch typ {
	case wire.FrameHelloOK:
		return nil
	case wire.FrameError:
		return errorFromWire(wire.DecodeError(payload), nil)
	default:
		return fmt.Errorf("gignite driver: unexpected handshake reply %#x", typ)
	}
}

func (c *conn) writeFrame(typ uint8, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := wire.WriteFrame(c.netc, typ, payload)
	if err != nil {
		c.broken = true
	}
	return err
}

func (c *conn) readFrame() (uint8, []byte, error) {
	typ, payload, err := wire.ReadFrame(c.br, 0)
	if err != nil {
		c.broken = true
	}
	return typ, payload, err
}

// watchCancel arranges for ctx cancellation to send a Cancel frame while
// a query is in flight. The returned stop func must be called once the
// response stream is fully consumed (or abandoned).
func (c *conn) watchCancel(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-ctx.Done():
			_ = c.writeFrame(wire.FrameCancel, nil)
		case <-done:
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext sends Parse and waits for ParseOK, yielding a
// server-side prepared statement.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.nextStmt++
	id := c.nextStmt
	var enc wire.Encoder
	enc.U32(id)
	enc.Str(query)
	if err := c.writeFrame(wire.FrameParse, enc.Bytes()); err != nil {
		return nil, driver.ErrBadConn
	}
	typ, payload, err := c.readFrame()
	if err != nil {
		return nil, driver.ErrBadConn
	}
	switch typ {
	case wire.FrameParseOK:
		d := wire.NewDecoder(payload)
		_ = d.U32() // echoed id
		n := int(d.U16())
		if d.Err() != nil {
			c.broken = true
			return nil, d.Err()
		}
		return &stmt{c: c, id: id, numInput: n}, nil
	case wire.FrameError:
		return nil, errorFromWire(wire.DecodeError(payload), ctx)
	default:
		c.broken = true
		return nil, fmt.Errorf("gignite driver: unexpected Parse reply %#x", typ)
	}
}

// QueryContext implements driver.QueryerContext for the no-argument
// fast path; with arguments it defers to the prepared-statement path.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		// database/sql falls back to PrepareContext + stmt.QueryContext,
		// which is exactly the wire Parse/Execute path.
		return nil, driver.ErrSkip
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var enc wire.Encoder
	enc.Str(query)
	if err := c.writeFrame(wire.FrameQuery, enc.Bytes()); err != nil {
		return nil, driver.ErrBadConn
	}
	return c.awaitRows(ctx)
}

// ExecContext runs a statement and discards any rows (DDL, INSERT).
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, driver.ErrSkip
	}
	rows, err := c.QueryContext(ctx, query, nil)
	if err != nil {
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// awaitRows reads the RowHeader (or terminal Error) for a query just
// sent and returns the streaming rows. The cancel watcher stays armed
// until the rows are closed or exhausted.
func (c *conn) awaitRows(ctx context.Context) (driver.Rows, error) {
	stop := c.watchCancel(ctx)
	typ, payload, err := c.readFrame()
	if err != nil {
		stop()
		return nil, driver.ErrBadConn
	}
	switch typ {
	case wire.FrameRowHeader:
		d := wire.NewDecoder(payload)
		n := int(d.U16())
		cols := make([]string, 0, n)
		for i := 0; i < n; i++ {
			cols = append(cols, d.Str())
		}
		if d.Err() != nil {
			c.broken = true
			stop()
			return nil, d.Err()
		}
		return &rows{c: c, cols: cols, stop: stop}, nil
	case wire.FrameError:
		stop()
		return nil, errorFromWire(wire.DecodeError(payload), ctx)
	default:
		c.broken = true
		stop()
		return nil, fmt.Errorf("gignite driver: unexpected query reply %#x", typ)
	}
}

// Begin implements driver.Conn; the engine has no transactions.
func (c *conn) Begin() (driver.Tx, error) { return nil, ErrTxUnsupported }

// BeginTx implements driver.ConnBeginTx; same answer with a context.
func (c *conn) BeginTx(ctx context.Context, opts driver.TxOptions) (driver.Tx, error) {
	return nil, ErrTxUnsupported
}

// IsValid implements driver.Validator so the pool discards broken
// connections instead of handing them out again.
func (c *conn) IsValid() bool { return !c.broken }

// Close implements driver.Conn: best-effort Quit, then close the socket.
func (c *conn) Close() error {
	_ = c.writeFrame(wire.FrameQuit, nil)
	return c.netc.Close()
}

// errorFromWire rebuilds a client-side error from an error frame. Codes
// carrying engine sentinels come back as wrapped sentinels so errors.Is
// works across the wire; cancellation prefers the local context's error
// when the caller's ctx is done (database/sql reports ctx.Err() then).
func errorFromWire(se *wire.ServerError, ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil &&
		(se.Code == wire.CodeCanceled || se.Code == wire.CodeTimeout) {
		return ctx.Err()
	}
	switch se.Code {
	case wire.CodeOverloaded:
		return fmt.Errorf("%w: %s", gignite.ErrOverloaded, se.Message)
	case wire.CodeMemExceeded:
		return fmt.Errorf("%w: %s", gignite.ErrMemoryExceeded, se.Message)
	case wire.CodeTimeout:
		return fmt.Errorf("%w: %s", gignite.ErrQueryTimeout, se.Message)
	case wire.CodeCanceled:
		return fmt.Errorf("%w: %s", context.Canceled, se.Message)
	case wire.CodeClosing:
		return fmt.Errorf("%w: %s", gignite.ErrEngineClosed, se.Message)
	default:
		return se
	}
}
