package driver

import (
	"context"
	"database/sql/driver"
	"fmt"
	"io"
	"time"

	"gignite/internal/types"
	"gignite/internal/wire"
)

// stmt is a server-side prepared statement (wire Parse/Execute).
type stmt struct {
	c        *conn
	id       uint32
	numInput int
	closed   bool
}

// Close discards the server-side statement. CloseStmt has no reply
// frame; request/response pairing stays intact because frames are
// processed in order.
func (s *stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var enc wire.Encoder
	enc.U32(s.id)
	return s.c.writeFrame(wire.FrameCloseStmt, enc.Bytes())
}

// NumInput reports the number of `?` placeholders (from ParseOK).
func (s *stmt) NumInput() int { return s.numInput }

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	named := make([]driver.NamedValue, len(args))
	for i, a := range args {
		named[i] = driver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return s.QueryContext(context.Background(), named)
}

// QueryContext sends Execute and streams the result.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var enc wire.Encoder
	enc.U32(s.id)
	enc.U16(uint16(len(args)))
	for _, a := range args {
		v, err := wireValue(a.Value)
		if err != nil {
			return nil, err
		}
		enc.Value(v)
	}
	if err := s.c.writeFrame(wire.FrameExecute, enc.Bytes()); err != nil {
		return nil, driver.ErrBadConn
	}
	return s.c.awaitRows(ctx)
}

// Exec implements driver.Stmt (prepared statements are SELECT-only on
// the engine, but database/sql requires the method).
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	rows, err := s.Query(args)
	if err != nil {
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	rows, err := s.QueryContext(ctx, args)
	if err != nil {
		return nil, err
	}
	if err := rows.Close(); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// rows streams one result set: batches are pulled from the connection
// on demand, so a slow consumer exerts TCP backpressure on the server
// instead of buffering the whole result client-side.
type rows struct {
	c    *conn
	cols []string
	stop func() // disarms the context-cancel watcher

	buf  []types.Row // decoded rows of the current batch
	next int
	done bool
	err  error
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.cols }

// Next decodes the next row, reading further batches as needed.
func (r *rows) Next(dest []driver.Value) error {
	for r.next >= len(r.buf) {
		if r.done {
			return io.EOF
		}
		if err := r.readBatch(); err != nil {
			return err
		}
	}
	row := r.buf[r.next]
	r.next++
	for i, v := range row {
		dest[i] = sqlValue(v)
	}
	return nil
}

// readBatch pulls one RowBatch/Done/Error frame off the connection.
func (r *rows) readBatch() error {
	typ, payload, err := r.c.readFrame()
	if err != nil {
		r.finish()
		r.err = err
		return err
	}
	switch typ {
	case wire.FrameRowBatch:
		d := wire.NewDecoder(payload)
		n := int(d.U16())
		r.buf = r.buf[:0]
		r.next = 0
		for i := 0; i < n; i++ {
			r.buf = append(r.buf, d.Row())
		}
		if d.Err() != nil {
			r.c.broken = true
			r.finish()
			r.err = d.Err()
			return r.err
		}
		return nil
	case wire.FrameDone:
		r.done = true
		r.finish()
		return nil
	case wire.FrameError:
		r.done = true
		r.finish()
		r.err = errorFromWire(wire.DecodeError(payload), nil)
		return r.err
	default:
		r.c.broken = true
		r.finish()
		r.err = fmt.Errorf("gignite driver: unexpected stream frame %#x", typ)
		return r.err
	}
}

func (r *rows) finish() {
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
}

// Close drains the remainder of the stream so the connection is ready
// for the next request. A Cancel frame is sent first so a query still
// executing server-side is aborted rather than waited out.
func (r *rows) Close() error {
	if r.done || r.c.broken {
		r.finish()
		return nil
	}
	_ = r.c.writeFrame(wire.FrameCancel, nil)
	for !r.done {
		if err := r.readBatch(); err != nil {
			// The terminal Error frame (e.g. canceled) still ends the
			// stream cleanly; io errors broke the conn already.
			break
		}
	}
	r.finish()
	return nil
}

// wireValue converts a database/sql driver.Value into the engine's
// value model for the Execute frame.
func wireValue(v driver.Value) (types.Value, error) {
	switch x := v.(type) {
	case nil:
		return types.Null, nil
	case int64:
		return types.NewInt(x), nil
	case float64:
		return types.NewFloat(x), nil
	case bool:
		return types.NewBool(x), nil
	case string:
		return types.NewString(x), nil
	case []byte:
		return types.NewString(string(x)), nil
	case time.Time:
		return types.NewDate(x.UTC().Unix() / 86400), nil
	default:
		return types.Null, fmt.Errorf("gignite driver: unsupported parameter type %T", v)
	}
}

// sqlValue converts an engine value into a database/sql driver.Value.
// Dates surface as time.Time (UTC midnight), matching how DATE columns
// scan into time.Time.
func sqlValue(v types.Value) driver.Value {
	switch v.K {
	case types.KindNull:
		return nil
	case types.KindInt:
		return v.I
	case types.KindFloat:
		return v.F
	case types.KindString:
		return v.S
	case types.KindBool:
		return v.I != 0
	case types.KindDate:
		return v.Time()
	default:
		return nil
	}
}
