package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"testing"
	"time"

	"gignite"
	gdriver "gignite/driver"
	"gignite/internal/server"
)

// startDB spins up an engine + server on an ephemeral port and opens a
// database/sql handle to it via sql.Open (exercising DSN parsing and the
// registered driver name, not just the Connector).
func startDB(t *testing.T, mut func(*gignite.Config)) (*sql.DB, *gignite.Engine) {
	t.Helper()
	cfg := gignite.ICPlus(2)
	if mut != nil {
		mut(&cfg)
	}
	eng := gignite.New(cfg)
	srv := server.New(eng, server.Config{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	db, err := sql.Open("gignite", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db, eng
}

// TestSQLConformance walks the standard database/sql surface: Ping, DDL
// and INSERT via Exec, typed scans including dates and NULLs.
func TestSQLConformance(t *testing.T) {
	db, _ := startDB(t, nil)
	if err := db.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	stmts := []string{
		`CREATE TABLE t (id INTEGER, name VARCHAR, score DOUBLE, born DATE) AFFINITY KEY (id)`,
		`INSERT INTO t VALUES (1, 'ada', 3.25, DATE '1815-12-10')`,
		`INSERT INTO t VALUES (2, 'alan', 2.5, DATE '1912-06-23')`,
		`INSERT INTO t (id) VALUES (3)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}

	var (
		id    int64
		name  sql.NullString
		score sql.NullFloat64
		born  sql.NullTime
	)
	row := db.QueryRow(`SELECT id, name, score, born FROM t WHERE id = 1`)
	if err := row.Scan(&id, &name, &score, &born); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name.String != "ada" || score.Float64 != 3.25 {
		t.Fatalf("row 1 = (%d, %q, %v)", id, name.String, score.Float64)
	}
	if got := born.Time.Format("2006-01-02"); got != "1815-12-10" {
		t.Fatalf("date scan = %s", got)
	}

	row = db.QueryRow(`SELECT id, name, score, born FROM t WHERE id = 3`)
	if err := row.Scan(&id, &name, &score, &born); err != nil {
		t.Fatal(err)
	}
	if name.Valid || score.Valid || born.Valid {
		t.Fatalf("NULLs not surfaced: %+v %+v %+v", name, score, born)
	}

	var n int64
	if err := db.QueryRow(`SELECT count(*) FROM t`).Scan(&n); err != nil || n != 3 {
		t.Fatalf("count = %d, err %v", n, err)
	}
}

// TestPreparedPlaceholders runs a PrepareContext statement with `?`
// placeholders repeatedly and checks executions after the first skip
// planning (the wire Parse/Execute path hitting Engine.Prepare).
func TestPreparedPlaceholders(t *testing.T) {
	db, eng := startDB(t, nil)
	mustExec(t, db,
		`CREATE TABLE kv (k INTEGER, v VARCHAR) AFFINITY KEY (k)`,
		`INSERT INTO kv VALUES (1, 'one')`,
		`INSERT INTO kv VALUES (2, 'two')`,
		`INSERT INTO kv VALUES (3, 'three')`,
	)
	ctx := context.Background()
	st, err := db.PrepareContext(ctx, `SELECT v FROM kv WHERE k = ?`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Close() }()

	want := map[int64]string{1: "one", 2: "two", 3: "three"}
	for k, v := range want {
		var got string
		if err := st.QueryRowContext(ctx, k).Scan(&got); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got != v {
			t.Fatalf("k=%d: got %q, want %q", k, got, v)
		}
	}
	// 3 executions of one prepared statement: at least 2 skipped planning.
	if skipped := eng.Metrics().Counters["queries_planning_skipped_total"]; skipped < 2 {
		t.Fatalf("queries_planning_skipped_total = %g, want >= 2", skipped)
	}

	// database/sql's auto-prepare path for db.Query with args.
	var got string
	if err := db.QueryRow(`SELECT v FROM kv WHERE k = ?`, int64(2)).Scan(&got); err != nil || got != "two" {
		t.Fatalf("auto-prepare: %q, %v", got, err)
	}
}

// TestQueryRowContextCancel cancels a long-running query through the
// context and expects a prompt context error, with the connection still
// usable for the pool afterwards.
func TestQueryRowContextCancel(t *testing.T) {
	db, eng := startDB(t, func(cfg *gignite.Config) {
		cfg.ExecWorkLimit = -1
		cfg.ExecRowLimit = 1 << 40
	})
	mustExec(t, db, `CREATE TABLE nums (n INTEGER) AFFINITY KEY (n)`)
	for i := 0; i < 400; i++ {
		mustExec(t, db, `INSERT INTO nums VALUES (1)`)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Wait until the query is admitted server-side, then cancel.
		deadline := time.Now().Add(10 * time.Second)
		for eng.Metrics().Gauges["queries_inflight"] < 1 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
	}()
	start := time.Now()
	var n int64
	err := db.QueryRowContext(ctx,
		`SELECT count(*) FROM nums a, nums b, nums c, nums d WHERE a.n = b.n AND b.n = c.n AND c.n = d.n`,
	).Scan(&n)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}

	// The pool hands back a working connection afterwards.
	if err := db.QueryRow(`SELECT count(*) FROM nums`).Scan(&n); err != nil || n != 400 {
		t.Fatalf("post-cancel query: n=%d err=%v", n, err)
	}
}

// TestDeadlineExceeded maps a context deadline onto the scan error.
func TestDeadlineExceeded(t *testing.T) {
	db, _ := startDB(t, func(cfg *gignite.Config) {
		cfg.ExecWorkLimit = -1
		cfg.ExecRowLimit = 1 << 40
	})
	mustExec(t, db, `CREATE TABLE nums (n INTEGER) AFFINITY KEY (n)`)
	for i := 0; i < 400; i++ {
		mustExec(t, db, `INSERT INTO nums VALUES (1)`)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var n int64
	err := db.QueryRowContext(ctx,
		`SELECT count(*) FROM nums a, nums b, nums c, nums d WHERE a.n = b.n AND b.n = c.n AND c.n = d.n`,
	).Scan(&n)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// TestDSNAndTx covers DSN forms and the no-transactions contract.
func TestDSNAndTx(t *testing.T) {
	eng := gignite.New(gignite.ICPlus(2))
	srv := server.New(eng, server.Config{AuthToken: "hunter2"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	db, err := sql.Open("gignite", "gignite://"+srv.Addr().String()+"?token=hunter2")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = db.Close() }()
	if err := db.Ping(); err != nil {
		t.Fatalf("URL DSN with token: %v", err)
	}
	if _, err := db.Begin(); !errors.Is(err, gdriver.ErrTxUnsupported) {
		t.Fatalf("Begin: want ErrTxUnsupported, got %v", err)
	}

	if _, err := sql.Open("gignite", "postgres://x"); err == nil {
		// sql.Open defers connector errors for plain Driver, but our
		// DriverContext path surfaces DSN errors eagerly.
		t.Fatal("bad scheme accepted")
	}
}

func mustExec(t *testing.T, db *sql.DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
}
