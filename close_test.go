package gignite

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gignite/internal/types"
)

// TestCloseRejectsNewWork checks every entry point returns the typed
// error after Close, and that double-Close is itself a typed error.
func TestCloseRejectsNewWork(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("double Close: want ErrEngineClosed, got %v", err)
	}
	if _, err := e.Exec(`CREATE TABLE x (a BIGINT PRIMARY KEY)`); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Exec after Close: want ErrEngineClosed, got %v", err)
	}
	if _, err := e.Query(`SELECT id FROM emp`); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Query after Close: want ErrEngineClosed, got %v", err)
	}
	if _, err := e.Prepare(`SELECT id FROM emp WHERE id = ?`); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Prepare after Close: want ErrEngineClosed, got %v", err)
	}
}

// TestCloseStmtAfterClose: a statement prepared before Close refuses to
// execute afterwards.
func TestCloseStmtAfterClose(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))
	st, err := e.Prepare(`SELECT id FROM emp WHERE id = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(types.NewInt(1)); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Stmt.Query after Close: want ErrEngineClosed, got %v", err)
	}
}

// TestCloseWaitsForInflight verifies Close blocks until in-flight work
// finishes. The op is held open directly via the begin/end hooks so the
// test is deterministic regardless of query speed.
func TestCloseWaitsForInflight(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))
	if err := e.beginOp(); err != nil {
		t.Fatal(err)
	}
	const hold = 120 * time.Millisecond
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(hold)
		e.endOp()
	}()
	start := time.Now()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if elapsed := time.Since(start); elapsed < hold/2 {
		t.Fatalf("Close returned after %v without waiting for in-flight work", elapsed)
	}
	wg.Wait()
}

// TestCloseContextExpired reports drain interruption when the context
// fires while work is still in flight.
func TestCloseContextExpired(t *testing.T) {
	e := setupEmployees(t, ICPlus(2))
	if err := e.beginOp(); err != nil {
		t.Fatal(err)
	}
	defer e.endOp()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := e.CloseContext(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext with busy engine: want DeadlineExceeded wrap, got %v", err)
	}
	// New work is already rejected even though the drain was interrupted.
	if _, qerr := e.Query(`SELECT id FROM emp`); !errors.Is(qerr, ErrEngineClosed) {
		t.Fatalf("Query after interrupted Close: want ErrEngineClosed, got %v", qerr)
	}
}
