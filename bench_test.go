// Benchmarks regenerating the paper's evaluation artifacts — one
// benchmark per table and figure of §6 (plus per-query microbenchmarks
// and ablations). Response-time metrics are the deterministic simnet
// modeled times (reported via b.ReportMetric as *_modeled_ms); ns/op is
// the host-side wall time of actually executing the queries.
//
// Run everything:    go test -bench=. -benchmem
// One figure:        go test -bench=BenchmarkFig7 -benchtime=1x
// Full tables also come from: go run ./cmd/benchrunner -exp all
package gignite_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"gignite"
	"gignite/internal/exec"
	"gignite/internal/expr"
	"gignite/internal/harness"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
	"gignite/internal/types"
)

// benchSF keeps bench runs laptop-sized; cmd/benchrunner accepts larger
// scale factors for fuller sweeps.
const benchSF = 0.005

var (
	benchEnvOnce sync.Once
	benchEnv     *harness.Env
)

// env returns the process-wide engine cache so repeated bench iterations
// do not reload data.
func env() *harness.Env {
	benchEnvOnce.Do(func() { benchEnv = harness.NewEnv() })
	return benchEnv
}

func benchOpts() harness.Options {
	return harness.Options{SFs: []float64{benchSF}, Sites: []int{4, 8}, Env: env()}
}

// reportFirst reports up to n leading report rows' first column as
// metrics.
func mustEngine(b *testing.B, w harness.Workload, sys harness.System, sites int) *gignite.Engine {
	b.Helper()
	e, err := env().Engine(w, sys, sites, benchSF)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkTPCHPerQuery measures every runnable TPC-H query under each
// system variant on 4 sites — the raw data behind Figures 7–10.
func BenchmarkTPCHPerQuery(b *testing.B) {
	for _, sys := range harness.Systems() {
		for _, q := range tpch.Queries() {
			if q.RequiresViews {
				continue
			}
			if sys == harness.IC {
				// The paper's Figures 7/8 exclusion set: queries the
				// baseline cannot run (or runs only by grinding against
				// the runtime limit) plus the two disabled queries.
				switch q.ID {
				case 2, 5, 9, 17, 19, 20, 21:
					continue
				}
			}
			b.Run(fmt.Sprintf("%s/Q%d", sys, q.ID), func(b *testing.B) {
				e := mustEngine(b, harness.TPCH, sys, 4)
				var modeled float64
				for i := 0; i < b.N; i++ {
					res, err := e.Query(q.SQL)
					if err != nil {
						b.Fatal(err)
					}
					modeled = float64(res.Modeled.Microseconds()) / 1000
				}
				b.ReportMetric(modeled, "modeled_ms")
			})
		}
	}
}

// BenchmarkSSBPerQuery measures the 13 SSB queries under IC and IC+M —
// the raw data behind Figure 11.
func BenchmarkSSBPerQuery(b *testing.B) {
	for _, sys := range []harness.System{harness.IC, harness.ICPM} {
		for _, q := range ssb.Queries() {
			b.Run(fmt.Sprintf("%s/%s", sys, q.ID), func(b *testing.B) {
				e := mustEngine(b, harness.SSB, sys, 4)
				var modeled float64
				for i := 0; i < b.N; i++ {
					res, err := e.Query(q.SQL)
					if err != nil {
						b.Fatal(err)
					}
					modeled = float64(res.Modeled.Microseconds()) / 1000
				}
				b.ReportMetric(modeled, "modeled_ms")
			})
		}
	}
}

// benchReport runs one harness experiment per iteration and reports the
// mean speedup-style metric parsed from the report (the engines are
// cached, so iterations after the first only re-run queries).
func benchReport(b *testing.B, run func(harness.Options) (*harness.Report, error)) *harness.Report {
	b.Helper()
	var rep *harness.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkFig7 regenerates Figure 7 (IC+ vs IC per-query speedups).
func BenchmarkFig7(b *testing.B) {
	rep := benchReport(b, harness.Fig7)
	reportMeanSpeedup(b, rep, "4 sites")
	reportMeanSpeedup(b, rep, "8 sites")
}

// BenchmarkFig8 regenerates Figure 8 (IC+M vs IC).
func BenchmarkFig8(b *testing.B) {
	rep := benchReport(b, harness.Fig8)
	reportMeanSpeedup(b, rep, "4 sites")
	reportMeanSpeedup(b, rep, "8 sites")
}

// BenchmarkFig9 regenerates Figure 9 (IC+ vs IC+M, 4 sites).
func BenchmarkFig9(b *testing.B) { benchReport(b, harness.Fig9) }

// BenchmarkFig10 regenerates Figure 10 (IC+ vs IC+M, 8 sites).
func BenchmarkFig10(b *testing.B) { benchReport(b, harness.Fig10) }

// BenchmarkTable3 regenerates Table 3 (average query latency).
func BenchmarkTable3(b *testing.B) { benchReport(b, harness.Table3) }

// BenchmarkFig11 regenerates Figure 11 (SSB, IC vs IC+M).
func BenchmarkFig11(b *testing.B) {
	rep := benchReport(b, harness.Fig11)
	reportMeanSpeedup(b, rep, "speedup")
}

// grindOpts shrinks the baseline-failure grinds (queries burning their
// whole work limit) to the smallest scale factor so the full bench suite
// fits go test's default 10-minute timeout. cmd/benchrunner runs these
// experiments at the full default scale.
func grindOpts() harness.Options {
	return harness.Options{SFs: []float64{0.002}, Sites: []int{4}, Env: env()}
}

// BenchmarkFailureMatrix regenerates the §1 baseline failure analysis.
func BenchmarkFailureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.FailureMatrix(grindOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the per-improvement ablation study.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Ablation(grindOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelExecute compares the wave scheduler's wall-clock time
// at ExecParallelism=1 (sequential) and 0 (GOMAXPROCS workers) on a
// multi-fragment TPC-H join query. The modeled time is identical in both
// modes by construction; the ns/op ratio between the two sub-benchmarks
// is the host speedup (≥1.5× expected on a multi-core host — on a
// single-core runner the two coincide). Override the scale factor with
// GIGNITE_PARBENCH_SF.
func BenchmarkParallelExecute(b *testing.B) {
	sf := 0.1
	if s := os.Getenv("GIGNITE_PARBENCH_SF"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			sf = v
		}
	}
	e := gignite.New(harness.ConfigFor(harness.ICPlus, 4, sf))
	if err := tpch.Setup(e, sf); err != nil {
		b.Fatal(err)
	}
	q := tpch.QueryByID(3).SQL
	e.SetExecParallelism(1)
	base, err := e.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		par  int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			e.SetExecParallelism(mode.par)
			var res *gignite.Result
			for i := 0; i < b.N; i++ {
				res, err = e.Query(q)
				if err != nil {
					b.Fatal(err)
				}
			}
			// Whatever the worker count, results are byte-identical.
			if len(res.Rows) != len(base.Rows) {
				b.Fatalf("rows = %d, want %d", len(res.Rows), len(base.Rows))
			}
			for i := range res.Rows {
				if res.Rows[i].String() != base.Rows[i].String() {
					b.Fatalf("row %d diverged from sequential run", i)
				}
			}
			b.ReportMetric(float64(res.Stats.Workers), "workers")
			b.ReportMetric(float64(res.Modeled.Microseconds())/1000, "modeled_ms")
		})
	}
}

// aggBenchInput builds a 2-column (group, value) row set.
func aggBenchInput(n, groups int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i % groups)),
			types.NewFloat(float64(i) * 0.5),
		}
	}
	return rows
}

// BenchmarkHashAggregate measures the hash-aggregate operator (group map
// preallocation shows up here).
func BenchmarkHashAggregate(b *testing.B) {
	fields := types.Fields{
		{Name: "g", Kind: types.KindInt},
		{Name: "v", Kind: types.KindFloat},
	}
	in := physical.NewValues(fields, aggBenchInput(20000, 256))
	agg := physical.NewHashAggregate(in, []int{0},
		[]expr.AggCall{
			{Func: expr.AggCount, Name: "n"},
			{Func: expr.AggSum, Arg: expr.NewColRef(1, types.KindFloat, ""), Name: "s"},
		}, physical.AggSinglePhase,
		types.Fields{{Name: "g", Kind: types.KindInt}, {Name: "n", Kind: types.KindInt},
			{Name: "s", Kind: types.KindFloat}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exec.Run(agg, &exec.Context{NVariants: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 256 {
			b.Fatalf("groups = %d", len(rows))
		}
	}
}

// BenchmarkHashJoin measures the hash-join operator (build-table and
// output preallocation show up here).
func BenchmarkHashJoin(b *testing.B) {
	lFields := types.Fields{{Name: "k", Kind: types.KindInt}, {Name: "a", Kind: types.KindInt}}
	rFields := types.Fields{{Name: "k2", Kind: types.KindInt}, {Name: "b", Kind: types.KindFloat}}
	var lRows, rRows []types.Row
	for i := 0; i < 20000; i++ {
		lRows = append(lRows, types.Row{types.NewInt(int64(i % 4096)), types.NewInt(int64(i))})
	}
	for i := 0; i < 4096; i++ {
		rRows = append(rRows, types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i))})
	}
	join := physical.NewJoin(
		physical.NewValues(lFields, lRows),
		physical.NewValues(rFields, rRows),
		physical.HashAlgo, logical.JoinInner,
		expr.NewBinOp(expr.OpEq,
			expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(2, types.KindInt, "")),
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.SingleDist, "single")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := exec.Run(join, &exec.Context{NVariants: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 20000 {
			b.Fatalf("join rows = %d", len(rows))
		}
	}
}

// reportMeanSpeedup averages a speedup column ("1.42x" cells) into a
// metric.
func reportMeanSpeedup(b *testing.B, rep *harness.Report, column string) {
	b.Helper()
	var sum float64
	var n int
	for _, label := range rep.Labels() {
		cell, ok := rep.Value(label, column)
		if !ok {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(cell, "%fx", &v); err == nil {
			sum += v
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), "mean_speedup_"+sanitize(column))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
