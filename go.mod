module gignite

go 1.22
