# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# which gates every PR on go vet and the race detector.

GO ?= go

.PHONY: build test race vet bench chaos overload ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The paper-artifact benchmarks (figures/tables) plus the operator and
# scheduler microbenchmarks. GIGNITE_PARBENCH_SF overrides the
# BenchmarkParallelExecute scale factor.
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# The fault-tolerance suite (chaos_test.go): seeded fault plans, replica
# failover, cancellation and goroutine-leak checks, twice under -race to
# shake out scheduling-dependent behaviour.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos' .

# The resource-governance smoke check (DESIGN.md §14): admission sheds
# with ErrOverloaded only, queued queries drain with identical rows, and
# hedged straggler attempts cut the modeled makespan. Exits non-zero on
# any violation.
overload:
	$(GO) run ./cmd/benchrunner -exp overload -sf 0.005 -sites 4 -metrics overload-metrics.json

ci: vet race
