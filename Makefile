# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# which gates every PR on go vet and the race detector.

GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The paper-artifact benchmarks (figures/tables) plus the operator and
# scheduler microbenchmarks. GIGNITE_PARBENCH_SF overrides the
# BenchmarkParallelExecute scale factor.
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

ci: vet race
