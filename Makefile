# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`,
# which gates every PR on go vet and the race detector.

GO ?= go

.PHONY: build test race vet bench chaos overload plancache adaptive benchgate benchgate-update serve fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The paper-artifact benchmarks (figures/tables) plus the operator and
# scheduler microbenchmarks. GIGNITE_PARBENCH_SF overrides the
# BenchmarkParallelExecute scale factor.
bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# The fault-tolerance suite (chaos_test.go): seeded fault plans, replica
# failover, cancellation and goroutine-leak checks, twice under -race to
# shake out scheduling-dependent behaviour.
chaos:
	$(GO) test -race -count=2 -run 'TestChaos' .

# The resource-governance smoke check (DESIGN.md §14): admission sheds
# with ErrOverloaded only, queued queries drain with identical rows, and
# hedged straggler attempts cut the modeled makespan. Exits non-zero on
# any violation.
overload:
	$(GO) run ./cmd/benchrunner -exp overload -sf 0.005 -sites 4 -metrics overload-metrics.json

# The plan-cache smoke check (DESIGN.md §15): hot runs must skip planning
# (mean hot plan time ≤ 10% of cold) with rows byte-identical cache
# on/off. Exits non-zero on any violation.
plancache:
	$(GO) run ./cmd/benchrunner -exp plancache -sf 0.02 -sites 4 -metrics plancache-metrics.json

# The adaptive-execution smoke check (DESIGN.md §17): under 10x
# misestimated statistics the adaptive run must stay within 115% of the
# correctly-estimated static plan's modeled time on Q5/Q9-shaped joins,
# stay byte-identical to the misestimated static plan across
# parallelism and fault plans, and fire at least one rewrite. Exits
# non-zero on any violation.
adaptive:
	$(GO) run ./cmd/benchrunner -exp adaptive -sf 0.01 -sites 4 -metrics adaptive-metrics.json

# The benchmark-regression gate: measure the committed BENCH_gate.json
# query set and fail on >tolerance modeled-time or shipped-bytes
# regressions. The measured signals are deterministic simnet values, so
# the gate is host-independent.
benchgate:
	$(GO) run ./cmd/benchrunner -exp benchgate -metrics benchgate-metrics.json

# Refresh the committed baseline after an intentional performance change;
# commit the resulting BENCH_gate.json diff.
benchgate-update:
	$(GO) run ./cmd/benchrunner -exp benchgate -update-baseline

# The serving-layer smoke check (DESIGN.md §16): concurrent database/sql
# clients over TCP must get byte-identical rows to in-process execution
# (plan cache on and off), prepared statements must skip planning
# (observed via /metrics), overload must surface as a typed wire error, a
# mid-stream client kill must free its governor lease, a graceful drain
# must finish the in-flight query, and nothing may leak. Exits non-zero
# on any violation.
serve:
	$(GO) run ./cmd/benchrunner -exp serve -sf 0.005 -sites 4 -metrics serve-metrics.json

# Run every fuzz target briefly, seeded from testdata/fuzz. `go test
# -fuzz` accepts one target per invocation, hence the loop.
FUZZTIME ?= 30s
fuzz-smoke:
	@for t in $$($(GO) test -list 'Fuzz.*' . | grep '^Fuzz'); do \
		echo "fuzzing $$t for $(FUZZTIME)"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) . || exit 1; \
	done

ci: vet race
