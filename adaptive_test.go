// Tests for adaptive mid-query re-optimization (DESIGN.md §17):
// byte-identity of results with adaptivity on vs. off at every host
// parallelism and under fault plans, re-adaptation of plan-cache hits,
// and the EXPLAIN ANALYZE / trace-span observability surface.
//
// Byte identity is defined against the static plan under the SAME
// (misestimated) statistics — the plan the rewrites started from.
// Different statistics may legitimately pick a different plan whose
// float aggregation order differs in the last bits, so runs are never
// compared byte-for-byte across statistics settings.
package gignite_test

import (
	"strings"
	"testing"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/obs"
	"gignite/internal/tpch"
)

const (
	adaptiveTestSF = 0.01
	// adaptiveTestMis is a 10x join-estimate overestimation: large enough
	// to invert build-side choices, small enough that the optimizer keeps
	// the same join order (in-place rewrites cannot recover a changed
	// join order; see cmd/benchrunner's adaptive smoke).
	adaptiveTestMis = 10
)

// adaptiveTestSQL is the benchrunner smoke's Q5-shaped join aggregate:
// its misestimated plan broadcasts a build side the rewrites repair.
const adaptiveTestSQL = `SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
GROUP BY n_name ORDER BY revenue DESC`

// adaptiveEngine opens an IC+ engine at SF 0.01 on 4 sites with the 10x
// misestimation applied and adaptivity toggled.
func adaptiveEngine(t testing.TB, adaptive bool, backups int, faultSpec string, planCache int) *gignite.Engine {
	t.Helper()
	cfg := harness.ConfigFor(harness.ICPlus, 4, adaptiveTestSF)
	cfg.StatsMisestimate = adaptiveTestMis
	cfg.AdaptiveExec = adaptive
	cfg.Backups = backups
	cfg.PlanCacheSize = planCache
	if faultSpec != "" {
		fp, err := gignite.ParseFaults(faultSpec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = fp
	}
	e := gignite.New(cfg)
	if err := tpch.Setup(e, adaptiveTestSF); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAdaptiveByteIdentity checks that the adaptive run returns exactly
// the static plan's bytes at host parallelism 1, 2 and 8, with an
// identical modeled time at every parallelism, while actually rewriting
// something (a run that never switches proves nothing).
func TestAdaptiveByteIdentity(t *testing.T) {
	static := adaptiveEngine(t, false, 0, "", 0)
	ad := adaptiveEngine(t, true, 0, "", 0)
	base, err := static.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsChecksum(base.Rows)
	var modeled string
	for _, par := range []int{1, 2, 8} {
		ad.SetExecParallelism(par)
		res, err := ad.Query(adaptiveTestSQL)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if rowsChecksum(res.Rows) != want {
			t.Errorf("par=%d: adaptive rows diverge from the static plan", par)
		}
		if res.Stats.AdaptiveSwitches == 0 {
			t.Errorf("par=%d: no adaptive rewrite fired", par)
		}
		if res.Stats.AdaptiveReplans == 0 {
			t.Errorf("par=%d: no re-planning pass ran", par)
		}
		if modeled == "" {
			modeled = res.Modeled.String()
		} else if res.Modeled.String() != modeled {
			t.Errorf("par=%d: modeled time %v != %v at other parallelism", par, res.Modeled, modeled)
		}
	}
}

// TestAdaptiveUnderFaults checks byte identity while the fault injector
// crashes, slows and drops sends: the re-planning decisions are pure
// functions of merged sketches, so recovery machinery must not change
// what the adaptive run returns.
func TestAdaptiveUnderFaults(t *testing.T) {
	static := adaptiveEngine(t, false, 1, "", 0)
	base, err := static.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := rowsChecksum(base.Rows)
	for _, spec := range []string{"seed=7;crash=2@4", "seed=7;slow=1x4", "seed=7;sendfail=0.05"} {
		ad := adaptiveEngine(t, true, 1, spec, 0)
		res, err := ad.Query(adaptiveTestSQL)
		if err != nil {
			t.Fatalf("faults=%q: %v", spec, err)
		}
		if rowsChecksum(res.Rows) != want {
			t.Errorf("faults=%q: adaptive rows diverge from the clean static run", spec)
		}
	}
}

// TestAdaptivePlanCacheReAdapts checks the cache contract of DESIGN.md
// §17: a cached plan is cloned before fragmenting, so the second
// execution skips planning yet still re-adapts from scratch. If the
// cache ever retained a post-adaptation tree, the build-swap trigger
// (which requires build=right) could not re-fire and switches would
// drop to zero on the hit.
func TestAdaptivePlanCacheReAdapts(t *testing.T) {
	e := adaptiveEngine(t, true, 0, "", 16)
	first, err := e.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PlanningSkipped {
		t.Fatal("first execution claims a plan-cache hit")
	}
	if first.Stats.AdaptiveSwitches == 0 {
		t.Fatal("first execution fired no rewrite")
	}
	second, err := e.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.PlanningSkipped {
		t.Fatal("second execution did not hit the plan cache")
	}
	if second.Stats.AdaptiveSwitches != first.Stats.AdaptiveSwitches {
		t.Errorf("cache hit fired %d switches, first run fired %d (cached plan retained adaptations?)",
			second.Stats.AdaptiveSwitches, first.Stats.AdaptiveSwitches)
	}
	if rowsChecksum(second.Rows) != rowsChecksum(first.Rows) {
		t.Error("cache hit returned different rows")
	}
}

// TestAdaptiveExplainAnalyze checks the observability surface: EXPLAIN
// ANALYZE must carry the per-rewrite "adaptive replan:" lines and the
// replans=/switches= summary counters.
func TestAdaptiveExplainAnalyze(t *testing.T) {
	e := adaptiveEngine(t, true, 0, "", 0)
	res, err := e.Exec("EXPLAIN ANALYZE " + adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.PlanText, "adaptive replan:") {
		t.Errorf("EXPLAIN ANALYZE lacks adaptive replan lines:\n%s", res.PlanText)
	}
	if !strings.Contains(res.PlanText, "replans=") {
		t.Errorf("EXPLAIN ANALYZE summary lacks replans= counter:\n%s", res.PlanText)
	}
}

// TestAdaptiveSpansAndReport checks the trace and the unified report:
// each re-planning pass emits exactly one SpanReplan span, static runs
// emit none, and Result.Report carries the replan log.
func TestAdaptiveSpansAndReport(t *testing.T) {
	ad := adaptiveEngine(t, true, 0, "", 0)
	res, err := ad.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	replanSpans := 0
	for _, sp := range res.Obs.Spans {
		if sp.Status == obs.SpanReplan {
			replanSpans++
		}
	}
	if replanSpans != res.Stats.AdaptiveReplans {
		t.Errorf("%d SpanReplan spans, Stats.AdaptiveReplans = %d", replanSpans, res.Stats.AdaptiveReplans)
	}
	rep := res.Report()
	if len(rep.Replans) != res.Stats.AdaptiveSwitches {
		t.Errorf("report carries %d replans, Stats.AdaptiveSwitches = %d", len(rep.Replans), res.Stats.AdaptiveSwitches)
	}
	if rep.Stats.AdaptiveSwitches == 0 {
		t.Error("report shows no switches")
	}

	static := adaptiveEngine(t, false, 0, "", 0)
	sres, err := static.Query(adaptiveTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range sres.Obs.Spans {
		if sp.Status == obs.SpanReplan {
			t.Fatal("static run emitted a SpanReplan span")
		}
	}
	if sres.Stats.Spans != sres.Stats.Instances+sres.Stats.Retries+sres.Stats.Hedges {
		t.Errorf("static span invariant broken: spans=%d instances=%d retries=%d hedges=%d",
			sres.Stats.Spans, sres.Stats.Instances, sres.Stats.Retries, sres.Stats.Hedges)
	}
}
