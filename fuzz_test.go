package gignite

import (
	"fmt"
	"testing"

	"gignite/internal/plancache"
	"gignite/internal/sql"
)

// TestRandomQueryDifferential generates seeded random queries over the
// employee schema and checks three independent execution paths agree on
// every result row: the IC baseline on one site, fully-improved IC+M on
// four sites, and the naive reference interpreter. This is the broadest
// planner/executor equivalence net in the suite: every generated query
// exercises a different combination of pushdowns, join mappings,
// aggregation strategies and variant fragments.
func TestRandomQueryDifferential(t *testing.T) {
	ref := setupEmployees(t, IC(1))
	icpm := setupEmployees(t, ICPlusM(4))

	gen := &queryGen{state: 0xD1FF}
	const queries = 120
	for i := 0; i < queries; i++ {
		q := gen.query()
		want, err := ref.Query(q)
		if err != nil {
			t.Fatalf("query %d on IC/1: %v\n%s", i, err, q)
		}
		got, err := icpm.Query(q)
		if err != nil {
			t.Fatalf("query %d on IC+M/4: %v\n%s", i, err, q)
		}
		sameRows(t, fmt.Sprintf("fuzz %d: %s", i, q), want.Rows, got.Rows)
		refRows, err := icpm.ReferenceQuery(q)
		if err != nil {
			t.Fatalf("query %d on reference: %v\n%s", i, err, q)
		}
		sameRows(t, fmt.Sprintf("fuzz %d (vs ref): %s", i, q), got.Rows, refRows)
	}
}

// queryGen builds random but always-valid SQL over the emp/sales/dept
// schema.
type queryGen struct {
	state uint64
}

func (g *queryGen) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 33
}

func (g *queryGen) pick(options ...string) string {
	return options[g.next()%uint64(len(options))]
}

func (g *queryGen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *queryGen) query() string {
	switch g.intn(5) {
	case 0:
		return g.simpleSelect()
	case 1:
		return g.joinSelect()
	case 2:
		return g.aggSelect()
	case 3:
		return g.subquerySelect()
	default:
		return g.joinAggSelect()
	}
}

// empPred generates a predicate over emp columns; q prefixes column names
// (with a trailing dot) so multi-table queries stay unambiguous.
func (g *queryGen) empPredQ(q string) string {
	switch g.intn(6) {
	case 0:
		return fmt.Sprintf("%ssalary %s %d", q, g.pick("<", ">", "<=", ">="), 900+g.intn(1200))
	case 1:
		return fmt.Sprintf("%sdept_id = %d", q, g.intn(4))
	case 2:
		return fmt.Sprintf("%sid BETWEEN %d AND %d", q, g.intn(40), 40+g.intn(60))
	case 3:
		return fmt.Sprintf("%sname LIKE 'emp0%d%%'", q, g.intn(10))
	case 4:
		return fmt.Sprintf("%sdept_id IN (%d, %d)", q, g.intn(4), g.intn(4))
	default:
		return fmt.Sprintf("%shired >= DATE '199%d-01-01'", q, g.intn(9))
	}
}

func (g *queryGen) empPred() string { return g.empPredQ("") }

func (g *queryGen) simpleSelect() string {
	cols := g.pick("id, name", "name, salary", "id, dept_id, salary", "*")
	q := fmt.Sprintf("SELECT %s FROM emp WHERE %s AND %s", cols, g.empPred(), g.empPred())
	if g.intn(2) == 0 {
		q += " ORDER BY id"
		if g.intn(2) == 0 {
			q += fmt.Sprintf(" LIMIT %d", 1+g.intn(20))
		}
	}
	return q
}

func (g *queryGen) joinSelect() string {
	pred := g.empPredQ("e.")
	amount := 50 + g.intn(250)
	return fmt.Sprintf(`SELECT e.name, s.amount FROM emp e, sales s
		WHERE e.id = s.emp_id AND %s AND s.amount > %d ORDER BY e.name, s.amount`,
		pred, amount)
}

func (g *queryGen) aggSelect() string {
	agg := g.pick("COUNT(*)", "SUM(salary)", "AVG(salary)", "MIN(id)", "MAX(salary)",
		"COUNT(DISTINCT dept_id)")
	if g.intn(2) == 0 {
		return fmt.Sprintf("SELECT %s FROM emp WHERE %s", agg, g.empPred())
	}
	return fmt.Sprintf(`SELECT dept_id, %s FROM emp WHERE %s GROUP BY dept_id
		HAVING COUNT(*) > %d ORDER BY dept_id`, agg, g.empPred(), g.intn(4))
}

func (g *queryGen) subquerySelect() string {
	switch g.intn(3) {
	case 0:
		return fmt.Sprintf(`SELECT name FROM emp WHERE id IN
			(SELECT emp_id FROM sales WHERE amount > %d) AND %s ORDER BY name`,
			g.intn(300), g.empPred())
	case 1:
		return fmt.Sprintf(`SELECT name FROM emp e WHERE EXISTS
			(SELECT 1 FROM sales s WHERE s.emp_id = e.id AND s.amount > %d)
			AND %s ORDER BY name`, g.intn(300), g.empPred())
	default:
		return fmt.Sprintf(`SELECT name FROM emp WHERE salary > (SELECT AVG(salary)
			FROM emp WHERE %s) ORDER BY name`, g.empPred())
	}
}

func (g *queryGen) joinAggSelect() string {
	return fmt.Sprintf(`SELECT d.dname, COUNT(*) AS n, SUM(s.amount) AS rev
		FROM emp e, dept d, sales s
		WHERE e.dept_id = d.dept_id AND s.emp_id = e.id AND %s
		GROUP BY d.dname ORDER BY n DESC, d.dname LIMIT %d`,
		g.empPredQ("e."), 1+g.intn(5))
}

// FuzzParseSQL: the SQL lexer and parser must reject arbitrary input
// with an error — never panic — and the plan-cache digest must be total
// and deterministic over the same input (it is computed on raw text
// before any validation, so it has to survive whatever the parser
// rejects).
func FuzzParseSQL(f *testing.F) {
	for _, seed := range []string{
		"",
		";",
		"SELECT 1",
		"SELECT * FROM emp WHERE salary > 1000 ORDER BY id LIMIT 5",
		"SELECT name FROM emp WHERE dept_id = ? AND salary BETWEEN ? AND ?",
		"SELECT e.name, s.amount FROM emp e, sales s WHERE e.id = s.emp_id",
		"SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id HAVING COUNT(*) > 2",
		"SELECT name FROM emp WHERE id IN (SELECT emp_id FROM sales WHERE amount > ?)",
		"EXPLAIN SELECT * FROM emp WHERE hired >= DATE '1995-01-01'",
		"EXPLAIN ANALYZE SELECT AVG(salary) FROM emp",
		"CREATE TABLE t (a INTEGER, b VARCHAR)",
		"CREATE INDEX idx ON emp (dept_id)",
		"INSERT INTO dept VALUES (9, 'ops')",
		"SELECT 'unterminated",
		"SELECT * FROM",
		"SELECT (((1",
		"SELECT * FROM emp LIMIT ?",
		"SELECT \x00\xff",
		"select\tname\nfrom\temp\twhere\tname like 'a%'",
		"SELECT -1e309, .5, 0x, 1..2 FROM emp",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := sql.Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", src)
		}
		if d1, d2 := plancache.Digest(src), plancache.Digest(src); d1 != d2 {
			t.Fatalf("Digest(%q) not deterministic: %#x vs %#x", src, d1, d2)
		}
	})
}

// FuzzFaultPlanSpec: the fault-plan parser must reject malformed specs
// with an error — never panic — and accepted plans must round-trip
// through String and re-Parse to the same plan.
func FuzzFaultPlanSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7",
		"crash=2@4",
		"slow=1x2.5",
		"sendfail=0.05",
		"seed=7;crash=2@4;slow=1x2.5;sendfail=0.05",
		"crash=2@4;crash=3@0",
		"crash=-1@4",
		"slow=1x-2",
		"sendfail=1.5",
		"seed=;crash=@;slow=x;sendfail=",
		"crash=2@4;crash=2@9",
		" seed=1 ; crash=0@0 ",
		"bogus=1",
		"crash=18446744073709551616@1",
		"mem=0@65536",
		"mem=1@0",
		"mem=1@-1",
		"mem=1@65536;mem=1@4096",
		"slow=1x4;crash=2@3;sendfail=0.05;mem=0@65536",
		"mem=3@9223372036854775808",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaults(spec)
		if err != nil {
			return // rejected cleanly
		}
		if plan == nil {
			return // empty spec
		}
		back, err := ParseFaults(plan.String())
		if err != nil {
			t.Fatalf("round-trip of %q failed to re-parse %q: %v", spec, plan.String(), err)
		}
		if back.String() != plan.String() {
			t.Fatalf("round-trip of %q not stable: %q vs %q", spec, plan.String(), back.String())
		}
	})
}
