// Package gignite is a composable distributed in-memory SQL engine — a Go
// reproduction of the Apache Ignite + Apache Calcite system studied in
// "Apache Ignite + Calcite Composable Database System: Experimental
// Evaluation and Analysis" (EDBT 2025).
//
// The engine composes independently usable components — a SQL frontend, a
// rule-driven HepPlanner, a cost-based VolcanoPlanner with distribution
// traits, a partitioned in-memory store, and a fragmented distributed
// executor — behind one Engine facade. Three preset configurations
// reproduce the paper's system variants:
//
//	IC     — the Ignite 2.16 baseline, including its planner defects
//	IC+    — the paper's planner and join improvements (§4, §5.1, §5.2)
//	IC+M   — IC+ plus multi-threaded variant fragments (§5.3)
//
// Every individual improvement is independently togglable through Config
// for ablation studies.
package gignite

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gignite/internal/adaptive"
	"gignite/internal/binder"
	"gignite/internal/catalog"
	"gignite/internal/cluster"
	"gignite/internal/cost"
	"gignite/internal/faults"
	"gignite/internal/fragment"
	"gignite/internal/governor"
	"gignite/internal/hep"
	"gignite/internal/joinfilter"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/plancache"
	"gignite/internal/ref"
	"gignite/internal/rules"
	"gignite/internal/simnet"
	"gignite/internal/sql"
	"gignite/internal/stats"
	"gignite/internal/storage"
	"gignite/internal/types"
	"gignite/internal/volcano"
)

// Value and Row re-export the engine's value model for in-module callers
// (examples, benchmarks, the CLI).
type (
	// Value is one scalar datum.
	Value = types.Value
	// Row is one result tuple.
	Row = types.Row
)

// Value constructors, re-exported for prepared-statement arguments
// (Stmt.Query) and programmatic row building. NewDate takes days since
// the Unix epoch; prepared parameters also accept a NewString in
// YYYY-MM-DD form where a DATE is expected.
var (
	NewInt    = types.NewInt
	NewFloat  = types.NewFloat
	NewString = types.NewString
	NewBool   = types.NewBool
	NewDate   = types.NewDate
)

// Errors surfaced by the engine. ErrPlanBudget and ErrQueryTimeout
// reproduce the two baseline failure modes of the paper's §1: planning
// failures and >limit executions. ErrOverloaded and ErrMemoryExceeded are
// the resource governor's shed/abort taxonomy (DESIGN.md §14): test them
// with errors.Is to tell "the engine rejected work it cannot serve" from
// "this one query blew its own budget".
var (
	// ErrViewsUnsupported: SQL views are not supported (TPC-H Q15).
	ErrViewsUnsupported = binder.ErrViewsUnsupported
	// ErrPlanBudget: the cost-based planner exhausted its search budget.
	ErrPlanBudget = volcano.ErrBudgetExceeded
	// ErrQueryTimeout: execution exceeded the configured work limit, the
	// wall-clock QueryTimeout, or a context deadline.
	ErrQueryTimeout = errors.New("gignite: query exceeded the execution work limit")
	// ErrOverloaded: the engine shed the query at admission (queue wait
	// exceeded AdmissionTimeout) or the shared memory pool was exhausted.
	ErrOverloaded = governor.ErrOverloaded
	// ErrMemoryExceeded: the query charged more estimated operator state
	// than Config.QueryMemLimitBytes allows; only the query aborts.
	ErrMemoryExceeded = governor.ErrMemoryExceeded
	// ErrEngineClosed: the engine was Closed — new statements are rejected
	// and a second Close reports it too. The serving layer maps it to the
	// wire protocol's "closing" error code during graceful drain.
	ErrEngineClosed = errors.New("gignite: engine is closed")
)

// FaultPlan is a deterministic fault-injection plan (see package faults
// for the spec grammar: "seed=N;crash=SITE@ORDINAL;slow=SITExFACTOR;
// sendfail=RATE").
type FaultPlan = faults.Plan

// ParseFaults parses a fault-plan spec string. An empty spec returns
// (nil, nil); malformed specs return an error, never panic.
func ParseFaults(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// Config selects the engine's composition. The zero value is not valid;
// start from IC, ICPlus or ICPlusM and adjust.
type Config struct {
	// Sites is the number of processing sites in the simulated cluster.
	Sites int
	// Backups is the number of backup replicas each partition keeps on
	// the following sites (Ignite's CacheConfiguration.backups). 0 means
	// no redundancy: a site crash loses its partitions. Values are capped
	// at Sites-1.
	Backups int

	// --- §4 query planner improvements ---

	// SwamiSchieferEstimation uses Equation 3 for join sizes; false keeps
	// the legacy estimator with its collapse-to-1 edge case.
	SwamiSchieferEstimation bool
	// FilterCorrelate adds the missing FILTER_CORRELATE rule.
	FilterCorrelate bool
	// FixExchangePenalty repairs the multi-target exchange cost bug.
	FixExchangePenalty bool
	// StandardCostUnits standardizes cost units (Equation 5 vs 4).
	StandardCostUnits bool
	// DistributionFactor enables Algorithm 2 / Equation 6.
	DistributionFactor bool
	// TwoPhaseOptimization splits the Volcano stage into logical +
	// physical phases with conditional join-permutation disabling (§4.3).
	TwoPhaseOptimization bool

	// --- §5 execution improvements ---

	// HashJoin enables the §5.1.2 hash-join operator.
	HashJoin bool
	// FullyDistributedJoins enables the §5.1.1 broadcast mappings.
	FullyDistributedJoins bool
	// JoinConditionSimplification enables the §5.2 rewrite.
	JoinConditionSimplification bool
	// VariantFragments is the §5.3 per-fragment thread count; values <= 1
	// disable multithreading. The paper found 2 performed best.
	VariantFragments int
	// RuntimeFilters enables runtime join-filter pushdown (DESIGN.md §13):
	// a hash join's build keys are computed in a pre-pass and shipped
	// sideways to the probe-side producer fragment, which drops rows that
	// cannot match before they are batched and sent. Results are
	// byte-identical with the feature off; it trades a small filter
	// build/ship cost for reduced network volume. Off in every preset (an
	// extension beyond the paper's system).
	RuntimeFilters bool
	// RuntimeFilterMaxBytes caps one bloom filter's size and
	// RuntimeFilterSmallKeys the exact-set threshold (0 = joinfilter
	// defaults: 64 KiB, 1024 keys).
	RuntimeFilterMaxBytes  int
	RuntimeFilterSmallKeys int

	// --- limits and modeling ---

	// ExecParallelism bounds how many fragment instances execute
	// concurrently on host goroutines. 0 uses runtime.GOMAXPROCS(0); 1
	// forces the deterministic sequential path (plan-diff tooling).
	// Results and modeled times are identical at every setting — host
	// parallelism changes wall-clock time only, while the paper's
	// per-fragment threads stay accounted for by the simnet cost clock.
	ExecParallelism int
	// PlanningBudget overrides the planner search budget (0 = default).
	PlanningBudget int
	// ExecWorkLimit aborts queries whose execution work exceeds it
	// (0 = default; < 0 = unlimited). It reproduces the paper's four-hour
	// runtime limit.
	ExecWorkLimit float64
	// ExecRowLimit bounds the rows a single fragment instance's joins may
	// materialize before the query aborts with ErrQueryTimeout
	// (0 = unlimited). It backstops ExecWorkLimit against runaway cross
	// products that would exhaust host memory before the work limit
	// trips. The presets use DefaultExecRowLimit.
	ExecRowLimit int64
	// QueryTimeout, when positive, bounds each query's wall-clock time:
	// queries run under a context deadline and return
	// context.DeadlineExceeded when it fires. Explicit deadlines on the
	// context passed to ExecContext/QueryContext take precedence.
	QueryTimeout time.Duration
	// Faults is an optional deterministic fault-injection plan applied to
	// every query (site crashes, slow sites, flaky transport, shrunken
	// site memory pools). nil injects nothing. See ParseFaults.
	Faults *FaultPlan

	// --- resource governance (DESIGN.md §14) ---

	// MaxConcurrentQueries bounds admitted SELECT executions; excess
	// queries wait in a FIFO admission queue up to AdmissionTimeout and
	// are then shed with ErrOverloaded. 0 = unbounded.
	MaxConcurrentQueries int
	// MemoryBudgetBytes is the engine-wide memory pool in-flight queries
	// reserve their estimated operator state (hash builds, aggregation
	// tables, sorts, exchange buffers) against. Admission waits for pool
	// headroom; a reservation that finds none fails the query with
	// ErrOverloaded. 0 = no pool.
	MemoryBudgetBytes int64
	// QueryMemLimitBytes caps one query's cumulative estimated charge;
	// past it the query alone aborts with ErrMemoryExceeded naming the
	// operator. Charges are estimates, deterministic at every
	// ExecParallelism. 0 = unlimited.
	QueryMemLimitBytes int64
	// AdmissionTimeout bounds the admission-queue wait (0 = the
	// governor's 2s default; < 0 = wait as long as the context allows).
	AdmissionTimeout time.Duration
	// HedgeAfter, when > 0, enables hedged straggler attempts: a fragment
	// instance whose modeled work exceeds HedgeAfter× its wave's median is
	// speculatively re-executed at the next replica of its partition, the
	// modeled-faster attempt wins, and the loser's outputs are discarded.
	// Results stay byte-identical; only the makespan (and the hedge
	// counters) change. Requires Backups >= 1 to have anywhere to run.
	HedgeAfter float64
	// AdaptiveExec enables mid-query re-optimization from runtime
	// sketches (DESIGN.md §17): exchange senders summarize the rows they
	// ship, and at every wave barrier the engine may rewrite the
	// not-yet-deployed fragments — flip a broadcast build side to hash
	// routing, swap a hash join's build side, or collapse a variant split
	// — when the observed cardinalities contradict the planner's
	// estimates. Results stay byte-identical to the static plan; only the
	// modeled time (and the adaptive counters) change. Off in every
	// preset.
	AdaptiveExec bool
	// StatsMisestimate, when not 0 or 1, multiplies the planner's
	// join-output estimates by the factor — a fault-injection knob for
	// demonstrating (and testing) adaptive execution against controlled
	// misestimation. It perturbs only the estimator, never execution.
	StatsMisestimate float64
	// PlanCacheSize bounds the engine's LRU plan cache in cached plans
	// (DESIGN.md §15). Cached plans are keyed by a normalized digest of the
	// statement text, invalidated whenever the catalog version changes
	// (DDL, ANALYZE), and shared by Exec and prepared statements; every
	// execution clones the cached plan, so results are byte-identical with
	// the cache off. 0 disables caching: each SELECT is planned from
	// scratch. Off in every preset (an extension beyond the paper's
	// system, mirroring Ignite's fronting plan cache for Calcite).
	PlanCacheSize int
	// ExperimentalViews enables CREATE VIEW and view expansion — an
	// extension beyond the paper's system (Ignite+Calcite rejects views,
	// which is what excludes TPC-H Q15). Off in every preset so the
	// reproduction stays faithful; switch it on to run Q15.
	ExperimentalViews bool
	// Sim is the modeled hardware profile for the cost clock.
	Sim simnet.Params

	// --- observability ---

	// SlowQueryThreshold, when positive, logs every query whose modeled
	// response time reaches it: query text, plan digest and the top-3
	// operators by modeled time go through Logger. Zero disables the log.
	SlowQueryThreshold time.Duration
	// Logger receives engine log lines (the slow-query log). nil is a
	// no-op logger.
	Logger LogFunc
}

// LogFunc is the pluggable logging hook (Printf-shaped).
type LogFunc func(format string, args ...interface{})

// DefaultExecWorkLimit corresponds to the paper's four-hour limit on the
// modeled testbed profile.
const DefaultExecWorkLimit = 2.5e9

// DefaultExecRowLimit is the presets' per-instance join materialization
// bound. It is calibrated to DefaultExecWorkLimit (one row of emission
// charge per ~100 work units), so it trips on memory-hostile cross
// products at about the point the work limit would.
const DefaultExecRowLimit int64 = 25_000_000

// IC returns the baseline Apache Ignite 2.16 configuration.
func IC(sites int) Config {
	return Config{Sites: sites, ExecRowLimit: DefaultExecRowLimit, Sim: simnet.DefaultParams()}
}

// ICPlus returns the paper's improved configuration (§4 + §5.1 + §5.2).
func ICPlus(sites int) Config {
	return Config{
		Sites:                       sites,
		SwamiSchieferEstimation:     true,
		FilterCorrelate:             true,
		FixExchangePenalty:          true,
		StandardCostUnits:           true,
		DistributionFactor:          true,
		TwoPhaseOptimization:        true,
		HashJoin:                    true,
		FullyDistributedJoins:       true,
		JoinConditionSimplification: true,
		ExecRowLimit:                DefaultExecRowLimit,
		Sim:                         simnet.DefaultParams(),
	}
}

// ICPlusM returns IC+ with dual-threaded variant fragments (§5.3).
func ICPlusM(sites int) Config {
	cfg := ICPlus(sites)
	cfg.VariantFragments = 2
	return cfg
}

// Engine is the composed system: catalog + store + planners + cluster.
type Engine struct {
	cfg     Config
	catalog *catalog.Catalog
	store   *storage.Store
	cluster *cluster.Cluster
	mu      sync.RWMutex
	views   map[string]*sql.SelectStmt

	metrics *obs.Registry
	em      engineMetrics
	gov     *governor.Governor
	plans   *plancache.Cache // nil when Config.PlanCacheSize == 0
	queryID atomic.Uint64

	// Close/drain state (DESIGN.md §16): closed rejects new statements,
	// ops counts statements between beginOp/endOp, and drained is closed
	// by the last op to finish after Close.
	shutMu  sync.Mutex
	closed  bool
	ops     int
	drained chan struct{}
}

// engineMetrics caches the registry handles the per-query hot path
// touches, so queries never pay a registry lookup.
type engineMetrics struct {
	queries, failed, slow       *obs.Counter
	rows, work, bytes           *obs.Counter
	instances, retries, spans   *obs.Counter
	filters, pruned             *obs.Counter
	hedges, hedgesWon           *obs.Counter
	planHits, planMisses        *obs.Counter
	planEvictions               *obs.Counter
	planSkipped                 *obs.Counter
	replans, planSwitches       *obs.Counter
	inflight                    *obs.Gauge
	modeledSeconds, wallSeconds *obs.Histogram
}

// New creates an engine with empty storage from a flat Config.
//
// Deprecated: new code should compose engines with Open and functional
// options (WithPreset, WithCluster, WithGovernance, WithPlanCache,
// WithAdaptive, WithObservability). New remains supported for callers
// that build a Config programmatically; Open(WithConfig(cfg)) is the
// exact equivalent.
func New(cfg Config) *Engine {
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if cfg.ExecWorkLimit == 0 {
		cfg.ExecWorkLimit = DefaultExecWorkLimit
	}
	cat := catalog.New()
	store := storage.NewReplicatedStore(cat, cfg.Sites, cfg.Backups)
	cl := cluster.New(store, cfg.Sim)
	cl.Workers = cfg.ExecParallelism
	if cfg.ExecRowLimit > 0 {
		cl.RowLimit = cfg.ExecRowLimit
	}
	cl.Faults = faults.New(cfg.Faults)
	cl.FilterParams = joinfilter.Params{
		MaxBytes:  cfg.RuntimeFilterMaxBytes,
		SmallKeys: cfg.RuntimeFilterSmallKeys,
	}
	reg := obs.NewRegistry()
	// The governor only exists when a governance knob is set, so ungoverned
	// engines skip admission entirely (a nil governor admits everything).
	var gov *governor.Governor
	if cfg.MaxConcurrentQueries > 0 || cfg.MemoryBudgetBytes > 0 || cfg.QueryMemLimitBytes > 0 {
		gov = governor.New(governor.Params{
			MaxConcurrent:    cfg.MaxConcurrentQueries,
			PoolBytes:        cfg.MemoryBudgetBytes,
			QueryLimitBytes:  cfg.QueryMemLimitBytes,
			AdmissionTimeout: cfg.AdmissionTimeout,
		}, governor.Metrics{
			Queued:   reg.Gauge("queries_queued"),
			Shed:     reg.Counter("queries_shed_total"),
			Reserved: reg.Gauge("mem_reserved_bytes"),
		})
	}
	em := engineMetrics{
		queries:        reg.Counter("queries_total"),
		failed:         reg.Counter("queries_failed_total"),
		slow:           reg.Counter("queries_slow_total"),
		rows:           reg.Counter("rows_returned_total"),
		work:           reg.Counter("exec_work_units_total"),
		bytes:          reg.Counter("bytes_shipped_total"),
		instances:      reg.Counter("fragment_instances_total"),
		retries:        reg.Counter("retries_total"),
		spans:          reg.Counter("trace_spans_total"),
		filters:        reg.Counter("filters_built_total"),
		pruned:         reg.Counter("filter_rows_pruned_total"),
		hedges:         reg.Counter("hedges_launched_total"),
		hedgesWon:      reg.Counter("hedges_won_total"),
		planHits:       reg.Counter("plan_cache_hits_total"),
		planMisses:     reg.Counter("plan_cache_misses_total"),
		planEvictions:  reg.Counter("plan_cache_evictions_total"),
		planSkipped:    reg.Counter("queries_planning_skipped_total"),
		replans:        reg.Counter("adaptive_replans_total"),
		planSwitches:   reg.Counter("adaptive_plan_switches_total"),
		inflight:       reg.Gauge("queries_inflight"),
		modeledSeconds: reg.Histogram("query_modeled_seconds", obs.DefaultTimeBuckets()),
		wallSeconds:    reg.Histogram("query_wall_seconds", obs.DefaultTimeBuckets()),
	}
	var plans *plancache.Cache
	if cfg.PlanCacheSize > 0 {
		plans = plancache.New(cfg.PlanCacheSize, plancache.Metrics{
			Hits:      em.planHits,
			Misses:    em.planMisses,
			Evictions: em.planEvictions,
		})
	}
	return &Engine{
		cfg:     cfg,
		catalog: cat,
		store:   store,
		cluster: cl,
		views:   make(map[string]*sql.SelectStmt),
		metrics: reg,
		gov:     gov,
		plans:   plans,
		em:      em,
	}
}

// Metrics snapshots the engine's cumulative metrics (counts, totals and
// latency histograms across every query executed so far); per-query views
// live on Result.Obs.
func (e *Engine) Metrics() obs.Snapshot { return e.metrics.Snapshot() }

// Registry exposes the engine's live metrics registry so in-process
// subsystems (the network server, sidecar exporters) can register their
// own series next to the engine's and serve one coherent snapshot.
func (e *Engine) Registry() *obs.Registry { return e.metrics }

// beginOp admits one statement into the engine's lifecycle accounting;
// it fails once Close has been called. Every beginOp is paired with
// endOp, which lets Close wait for in-flight statements to drain.
func (e *Engine) beginOp() error {
	e.shutMu.Lock()
	defer e.shutMu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.ops++
	return nil
}

func (e *Engine) endOp() {
	e.shutMu.Lock()
	e.ops--
	if e.closed && e.ops == 0 && e.drained != nil {
		close(e.drained)
		e.drained = nil
	}
	e.shutMu.Unlock()
}

// DefaultDrainTimeout bounds Close()'s wait for in-flight queries.
const DefaultDrainTimeout = 30 * time.Second

// Close drains the engine: new statements are rejected with
// ErrEngineClosed immediately, and Close returns once every in-flight
// statement has finished, waiting at most DefaultDrainTimeout. A second
// Close returns ErrEngineClosed. Use CloseContext to bound the drain
// with your own deadline.
func (e *Engine) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultDrainTimeout)
	defer cancel()
	return e.CloseContext(ctx)
}

// CloseContext is Close with a caller-supplied drain bound: it marks the
// engine closed, then waits for queries_inflight to reach zero or ctx to
// fire, whichever comes first. When ctx fires first the engine is still
// closed (stragglers finish on their own), and the error reports how many
// statements were still running.
func (e *Engine) CloseContext(ctx context.Context) error {
	e.shutMu.Lock()
	if e.closed {
		e.shutMu.Unlock()
		return fmt.Errorf("%w (Close called twice)", ErrEngineClosed)
	}
	e.closed = true
	var drained chan struct{}
	if e.ops > 0 {
		drained = make(chan struct{})
		e.drained = drained
	}
	e.shutMu.Unlock()
	if drained == nil {
		return nil
	}
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.shutMu.Lock()
		n := e.ops
		e.shutMu.Unlock()
		return fmt.Errorf("gignite: drain interrupted with %d statement(s) in flight: %w", n, ctx.Err())
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetExecParallelism adjusts the host worker-pool bound at runtime (see
// Config.ExecParallelism). It must not be called concurrently with
// in-flight queries; it exists so tools and benchmarks can compare
// sequential and parallel execution on one loaded engine.
func (e *Engine) SetExecParallelism(n int) {
	e.cfg.ExecParallelism = n
	e.cluster.Workers = n
}

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns (empty for DDL/DML).
	Columns []string
	// Rows holds the result tuples.
	Rows []Row
	// Modeled is the cost-clock response time on the modeled testbed
	// (zero for DDL/DML).
	Modeled time.Duration
	// PlanText is filled by EXPLAIN and EXPLAIN ANALYZE.
	PlanText string
	// Stats carries execution telemetry. Prefer Report, which unifies
	// Stats and Obs into one serializable record.
	Stats ExecStats
	// Obs is the query's full observation record: per-operator runtime
	// statistics and the distributed trace (one span per fragment-instance
	// attempt). nil for DDL/DML and plain EXPLAIN. Prefer Report for the
	// flattened public view; Obs remains for trace export
	// (obs.ChromeTrace) and span-level inspection.
	Obs *obs.QueryObs

	// adaptiveNotes carries the adaptive controller's per-node rewrite
	// annotations into the EXPLAIN ANALYZE renderer (nil unless
	// Config.AdaptiveExec rewrote something).
	adaptiveNotes map[physical.Node]string
}

// ExecStats is per-query execution telemetry.
type ExecStats struct {
	// Work is total executor work units across all fragment instances.
	Work float64
	// BytesShipped is total network volume.
	BytesShipped float64
	// Fragments / Instances count execution units.
	Fragments int
	Instances int
	// Workers is the host worker-pool size the query executed with.
	Workers int
	// Retries counts fault-recovery events (failed attempts retried or
	// failed over onto a replica site).
	Retries int
	// Spans counts trace spans (fragment-instance attempts, including
	// retried and skipped ones).
	Spans int
	// Modeled is the simnet cost-clock response time (the same value as
	// Result.Modeled, surfaced with the rest of the telemetry).
	Modeled time.Duration
	// PlanTickets is the planner search effort.
	PlanTickets int
	// FiltersBuilt counts runtime join filters the pre-pass constructed;
	// FilterBytes is their total modeled shipment and RowsPruned the
	// probe-side rows they dropped before shipping (DESIGN.md §13).
	FiltersBuilt int
	FilterBytes  int64
	RowsPruned   int64
	// Hedges / HedgesWon count hedged straggler attempts launched and won
	// (DESIGN.md §14).
	Hedges    int
	HedgesWon int
	// MemPeakBytes is the query's high-water mark of estimated operator
	// state reserved against the engine's memory pool (0 when ungoverned).
	MemPeakBytes int64
	// PlanNanos is the wall time spent acquiring the optimized plan: the
	// cache lookup plus, on a miss, bind + heuristic + cost-based
	// optimization. Parsing, plan cloning and fragmentation are excluded —
	// they are per-execution costs paid whether or not the plan was cached.
	PlanNanos int64
	// PlanningSkipped is true when the plan came from the plan cache (or a
	// prepared statement's retained plan), so no optimization ran for this
	// execution.
	PlanningSkipped bool
	// AdaptiveReplans counts the re-planning passes run at wave barriers;
	// AdaptiveSwitches the plan rewrites they applied (both 0 unless
	// Config.AdaptiveExec is on — DESIGN.md §17).
	AdaptiveReplans  int
	AdaptiveSwitches int
}

// Exec parses and executes one SQL statement (DDL, INSERT, SELECT or
// EXPLAIN). Exec is safe for concurrent callers: SELECTs run fully in
// parallel (the paper's multi-client AQL setting), while DDL and INSERT
// serialize against the storage and catalog write locks.
func (e *Engine) Exec(query string) (*Result, error) {
	return e.ExecContext(context.Background(), query)
}

// ExecContext is Exec with cancellation: SELECT execution observes ctx
// at wave barriers and row-batch boundaries and returns ctx.Err() (e.g.
// context.DeadlineExceeded) once it fires. DDL and INSERT are not
// cancellable mid-flight.
func (e *Engine) ExecContext(ctx context.Context, query string) (*Result, error) {
	if err := e.beginOp(); err != nil {
		return nil, err
	}
	defer e.endOp()
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		tbl, err := binder.BindCreateTable(s)
		if err != nil {
			return nil, err
		}
		if err := e.catalog.AddTable(tbl); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.CreateIndexStmt:
		tbl, err := e.catalog.Table(s.Table)
		if err != nil {
			return nil, err
		}
		if tbl.IndexByName(s.Name) != nil {
			return nil, fmt.Errorf("gignite: index %s already exists", s.Name)
		}
		cols := make([]string, len(s.Columns))
		for i, c := range s.Columns {
			if tbl.ColumnIndex(c) < 0 {
				return nil, fmt.Errorf("gignite: column %s does not exist in %s", c, s.Table)
			}
			cols[i] = strings.ToLower(c)
		}
		tbl.Indexes = append(tbl.Indexes, catalog.Index{Name: strings.ToLower(s.Name), Columns: cols})
		if err := e.store.BuildIndexes(tbl.Name); err != nil {
			return nil, err
		}
		// Index access paths changed: stale cached plans must replan.
		e.catalog.BumpVersion()
		return &Result{}, nil
	case *sql.CreateViewStmt:
		if !e.cfg.ExperimentalViews {
			return nil, ErrViewsUnsupported
		}
		name := strings.ToLower(s.Name)
		e.mu.Lock()
		defer e.mu.Unlock()
		if _, exists := e.views[name]; exists {
			return nil, fmt.Errorf("gignite: view %s already exists", s.Name)
		}
		if _, err := e.catalog.Table(name); err == nil {
			return nil, fmt.Errorf("gignite: %s already names a table", s.Name)
		}
		e.views[name] = s.Select
		// A new view can resolve names that previously failed to bind, and
		// future plans over it must not reuse pre-view digests.
		e.catalog.BumpVersion()
		return &Result{}, nil
	case *sql.InsertStmt:
		tbl, err := e.catalog.Table(s.Table)
		if err != nil {
			return nil, err
		}
		rows, err := binder.BindInsertRows(tbl, s)
		if err != nil {
			return nil, err
		}
		if err := e.store.Load(tbl.Name, rows); err != nil {
			return nil, err
		}
		if err := e.store.BuildIndexes(tbl.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.ExplainStmt:
		if s.Analyze {
			return e.explainAnalyze(ctx, s.Query, query)
		}
		return e.explain(s.Query)
	case *sql.SelectStmt:
		return e.query(ctx, s, query)
	default:
		return nil, fmt.Errorf("gignite: unsupported statement %T", stmt)
	}
}

// Query executes a SELECT statement.
func (e *Engine) Query(query string) (*Result, error) {
	return e.QueryContext(context.Background(), query)
}

// QueryContext executes a SELECT under a context (see ExecContext).
func (e *Engine) QueryContext(ctx context.Context, query string) (*Result, error) {
	if err := e.beginOp(); err != nil {
		return nil, err
	}
	defer e.endOp()
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	return e.query(ctx, sel, query)
}

// Explain returns the fragmented physical plan for a SELECT.
func (e *Engine) Explain(query string) (string, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return "", err
	}
	res, err := e.explain(sel)
	if err != nil {
		return "", err
	}
	return res.PlanText, nil
}

// LoadTable bulk-loads rows and rebuilds the table's indexes. It is the
// fast path the benchmark generators use.
func (e *Engine) LoadTable(name string, rows []Row) error {
	if err := e.store.Load(name, rows); err != nil {
		return err
	}
	return e.store.BuildIndexes(name)
}

// Analyze collects table statistics (row counts, per-column NDV and
// min/max) for every table — Ignite's "statistics enabled" mode. Call it
// after loading data and before planning queries.
func (e *Engine) Analyze() error {
	for _, t := range e.catalog.Tables() {
		if err := e.store.ComputeStats(t); err != nil {
			return err
		}
	}
	// Fresh statistics change cost estimates; cached plans are stale.
	e.catalog.BumpVersion()
	return nil
}

// Catalog exposes the metadata layer (read-mostly; used by tooling).
func (e *Engine) Catalog() *catalog.Catalog { return e.catalog }

// newBinder builds a binder with the engine's view registry attached
// (views are only populated when ExperimentalViews is on).
func (e *Engine) newBinder() *binder.Binder {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return binder.New(e.catalog).WithViews(e.views)
}

// plan runs the full planning pipeline for a bound SELECT. It also
// returns the bind-time type hint of every `?` placeholder (indexed by
// ordinal; types.KindNull when no hint was derivable).
func (e *Engine) plan(sel *sql.SelectStmt) (physical.Node, []types.Kind, *volcano.Planner, error) {
	b := e.newBinder()
	lp, err := b.BindSelect(sel)
	if err != nil {
		return nil, nil, nil, err
	}
	rc := rules.Config{
		FilterCorrelate:             e.cfg.FilterCorrelate,
		JoinConditionSimplification: e.cfg.JoinConditionSimplification,
	}
	lp = hep.RunGroups(lp, rules.Stage1Groups(rc))
	est := stats.New(e.catalog, !e.cfg.SwamiSchieferEstimation)
	est.Misestimate = e.cfg.StatsMisestimate
	vp := volcano.New(volcano.Config{
		Rules:                 rc,
		TwoPhase:              e.cfg.TwoPhaseOptimization,
		EnableHashJoin:        e.cfg.HashJoin,
		FullyDistributedJoins: e.cfg.FullyDistributedJoins,
		Sites:                 e.cfg.Sites,
		Est:                   est,
		CostParams: cost.Params{
			LegacyUnits:           !e.cfg.StandardCostUnits,
			ExchangePenaltyBug:    !e.cfg.FixExchangePenalty,
			UseDistributionFactor: e.cfg.DistributionFactor,
		},
		Budget: e.cfg.PlanningBudget,
	})
	pp, err := vp.Optimize(lp)
	if err != nil {
		return nil, nil, vp, err
	}
	return pp, b.ParamKinds(sel.Params), vp, nil
}

// buildEntry runs the planning pipeline and wraps the result as a cache
// entry stamped with the catalog version planning started from. Reading
// the version first is deliberate: a DDL landing mid-plan leaves the
// entry marked stale, never the reverse.
func (e *Engine) buildEntry(sel *sql.SelectStmt) (*plancache.Entry, error) {
	version := e.catalog.Version()
	pp, kinds, vp, err := e.plan(sel)
	if err != nil {
		return nil, err
	}
	return &plancache.Entry{Plan: pp, ParamKinds: kinds, Tickets: vp.TicketsUsed, Version: version}, nil
}

// getPlan resolves the optimized plan for a SELECT: through the plan
// cache when enabled (planning runs only on a miss, and concurrent misses
// on one digest coalesce into a single planning pass), from scratch
// otherwise.
func (e *Engine) getPlan(sel *sql.SelectStmt, src string) (*plancache.Entry, bool, error) {
	build := func() (*plancache.Entry, error) { return e.buildEntry(sel) }
	if e.plans == nil {
		entry, err := build()
		return entry, false, err
	}
	return e.plans.Get(plancache.Digest(src), e.catalog.Version(), build)
}

// PlanCacheStats snapshots the plan cache. enabled is false (and the
// stats zero) when Config.PlanCacheSize is 0.
func (e *Engine) PlanCacheStats() (s plancache.Stats, enabled bool) {
	if e.plans == nil {
		return plancache.Stats{}, false
	}
	return e.plans.Snapshot(), true
}

func (e *Engine) query(ctx context.Context, sel *sql.SelectStmt, src string) (*Result, error) {
	res, _, err := e.run(ctx, sel, src, nil, nil)
	return res, err
}

// planGetter resolves the plan entry for one execution. skipped reports
// whether planning was skipped (a cache or prepared-statement hit);
// shared reports whether the entry outlives this execution (cached or
// retained by a Stmt), in which case the execution must run a clone.
type planGetter func() (entry *plancache.Entry, skipped, shared bool, err error)

// run is the shared SELECT execution path behind query, explainAnalyze
// and prepared statements: resolve the plan (cache-aware), substitute
// parameters into a clone, fragment, execute, then attach the observation
// record and update the engine's cumulative metrics (including the
// slow-query log).
func (e *Engine) run(ctx context.Context, sel *sql.SelectStmt, src string, args []types.Value, get planGetter) (*Result, *fragment.Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.cfg.QueryTimeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, e.cfg.QueryTimeout)
			defer cancel()
		}
	}
	e.em.queries.Inc()
	// Admission control: at capacity, the query waits in the governor's
	// FIFO queue and is shed with ErrOverloaded when AdmissionTimeout
	// fires first. The inflight gauge counts admitted queries only.
	lease, err := e.gov.Acquire(ctx)
	if err != nil {
		e.em.failed.Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, nil, fmt.Errorf("%w: %w", ErrQueryTimeout, err)
		}
		return nil, nil, fmt.Errorf("gignite: %w", err)
	}
	defer lease.Close()
	e.em.inflight.Add(1)
	defer e.em.inflight.Add(-1)
	if len(args) != sel.Params {
		e.em.failed.Inc()
		if sel.Params > 0 && len(args) == 0 {
			return nil, nil, fmt.Errorf("gignite: query has %d parameter(s); prepare it and supply arguments via Stmt.Query", sel.Params)
		}
		return nil, nil, fmt.Errorf("gignite: query has %d parameter(s) but %d argument(s) were supplied", sel.Params, len(args))
	}
	if get == nil {
		get = func() (*plancache.Entry, bool, bool, error) {
			entry, hit, err := e.getPlan(sel, src)
			return entry, hit, e.plans != nil, err
		}
	}
	planStart := time.Now()
	entry, skipped, shared, err := get()
	planNanos := time.Since(planStart).Nanoseconds()
	if err != nil {
		e.em.failed.Inc()
		return nil, nil, err
	}
	pp := entry.Plan
	if shared || len(args) > 0 {
		// Never fragment a shared plan directly: Split rewires trees in
		// place and the executor keys state by node pointer. Parameter
		// values are substituted during the clone.
		var rewrite func(expr.Expr) expr.Expr
		if len(args) > 0 {
			bound := make([]types.Value, len(args))
			for i, a := range args {
				v, cerr := binder.CoerceParam(a, entry.ParamKinds[i])
				if cerr != nil {
					e.em.failed.Inc()
					return nil, nil, fmt.Errorf("gignite: parameter %d: %w", i+1, cerr)
				}
				bound[i] = v
			}
			rewrite = func(n expr.Expr) expr.Expr {
				if p, ok := n.(*expr.Param); ok {
					return expr.NewLit(bound[p.Ordinal])
				}
				return n
			}
		}
		pp = physical.CloneTree(pp, rewrite)
	}
	fp := fragment.Split(pp)
	if e.cfg.RuntimeFilters {
		fragment.PlanRuntimeFilters(fp)
	}
	variants := e.cfg.VariantFragments
	if variants < 1 {
		variants = 1
	}
	limit := e.cfg.ExecWorkLimit
	if limit < 0 {
		limit = 0
	}
	// The adaptive controller is built per execution over this execution's
	// private plan tree: cached plans were cloned above, so a barrier
	// rewrite never leaks into the cache and every execution re-adapts
	// from its own runtime evidence.
	var ac *adaptive.Controller
	if e.cfg.AdaptiveExec {
		ac, err = adaptive.New(fp, adaptive.Config{Sites: e.cfg.Sites, Variants: variants})
		if err != nil {
			e.em.failed.Inc()
			return nil, nil, fmt.Errorf("gignite: adaptive: %w", err)
		}
	}
	res, err := e.cluster.Run(ctx, fp, cluster.Opts{
		Variants:   variants,
		WorkLimit:  limit,
		Mem:        lease,
		HedgeAfter: e.cfg.HedgeAfter,
		Adaptive:   ac,
	})
	if err != nil {
		e.em.failed.Inc()
		switch {
		case errors.Is(err, cluster.ErrWorkLimit):
			return nil, nil, fmt.Errorf("%w: %v", ErrQueryTimeout, err)
		case errors.Is(err, context.DeadlineExceeded):
			// Dual-wrap so callers can test either the engine's typed
			// sentinel or the context error.
			return nil, nil, fmt.Errorf("%w: %w", ErrQueryTimeout, err)
		}
		return nil, nil, err
	}
	qobs := res.Obs
	if qobs != nil {
		qobs.QueryID = e.queryID.Add(1)
		qobs.SQL = src
		qobs.PlanDigest = planDigest(fp)
	}
	out := &Result{
		Columns: res.Fields.Names(),
		Rows:    res.Rows,
		Modeled: res.Modeled,
		Obs:     qobs,
		Stats: ExecStats{
			Work:         res.Work,
			BytesShipped: res.BytesShipped,
			Fragments:    res.Fragments,
			Instances:    res.Instances,
			Workers:      res.Workers,
			Retries:      res.Retries,
			Modeled:      res.Modeled,
			PlanTickets:  entry.Tickets,
			FiltersBuilt: res.FiltersBuilt,
			FilterBytes:  res.FilterBytes,
			RowsPruned:   res.RowsPruned,
			Hedges:          res.Hedges,
			HedgesWon:       res.HedgesWon,
			MemPeakBytes:     lease.Peak(),
			PlanNanos:        planNanos,
			PlanningSkipped:  skipped,
			AdaptiveReplans:  res.Replans,
			AdaptiveSwitches: res.Switches,
		},
		adaptiveNotes: res.Notes,
	}
	if qobs != nil {
		out.Stats.Spans = len(qobs.Spans)
	}
	e.recordQuery(out, qobs, src)
	return out, fp, nil
}

// recordQuery folds one successful query into the cumulative metrics and
// emits the slow-query log line when the modeled time crosses the
// threshold.
func (e *Engine) recordQuery(res *Result, qobs *obs.QueryObs, src string) {
	e.em.rows.Add(float64(len(res.Rows)))
	e.em.work.Add(res.Stats.Work)
	e.em.bytes.Add(res.Stats.BytesShipped)
	e.em.instances.Add(float64(res.Stats.Instances))
	e.em.retries.Add(float64(res.Stats.Retries))
	e.em.spans.Add(float64(res.Stats.Spans))
	e.em.filters.Add(float64(res.Stats.FiltersBuilt))
	e.em.pruned.Add(float64(res.Stats.RowsPruned))
	e.em.hedges.Add(float64(res.Stats.Hedges))
	e.em.hedgesWon.Add(float64(res.Stats.HedgesWon))
	e.em.replans.Add(float64(res.Stats.AdaptiveReplans))
	e.em.planSwitches.Add(float64(res.Stats.AdaptiveSwitches))
	if res.Stats.PlanningSkipped {
		e.em.planSkipped.Inc()
	}
	e.em.modeledSeconds.Observe(res.Modeled.Seconds())
	if qobs != nil {
		e.em.wallSeconds.Observe(time.Duration(qobs.WallNanos).Seconds())
	}
	thr := e.cfg.SlowQueryThreshold
	if thr <= 0 || res.Modeled < thr || qobs == nil {
		return
	}
	e.em.slow.Inc()
	logf := e.cfg.Logger
	if logf == nil {
		return
	}
	var tops strings.Builder
	for i, t := range qobs.TopOperators(3) {
		if i > 0 {
			tops.WriteString(", ")
		}
		fmt.Fprintf(&tops, "frag%d %s work=%.0f", t.Frag, t.Op, t.Work)
	}
	logf("slow query: modeled=%v threshold=%v digest=%s top=[%s] sql=%q",
		res.Modeled, thr, qobs.PlanDigest, tops.String(), src)
}

// planDigest is a stable FNV-64a hash of the fragmented plan text,
// identifying the plan shape across runs of the same query.
func planDigest(fp *fragment.Plan) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(fp.Format()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// explainAnalyze executes the query and renders the physical plan
// annotated with estimated vs. actual per-operator row counts. The result
// rows themselves are dropped: EXPLAIN ANALYZE returns the report.
func (e *Engine) explainAnalyze(ctx context.Context, sel *sql.SelectStmt, src string) (*Result, error) {
	res, fp, err := e.run(ctx, sel, src, nil, nil)
	if err != nil {
		return nil, err
	}
	res.PlanText = formatAnalyzed(fp, res.Obs, &res.Stats, res.adaptiveNotes)
	res.Columns = nil
	res.Rows = nil
	return res, nil
}

// formatAnalyzed renders the EXPLAIN ANALYZE report: the fragmented plan
// with one "[est=... act=... err=...]" annotation per operator, followed
// by a query-level summary.
func formatAnalyzed(fp *fragment.Plan, q *obs.QueryObs, st *ExecStats, notes map[physical.Node]string) string {
	var sb strings.Builder
	for _, f := range fp.Fragments {
		role := "fragment"
		if f.IsRoot {
			role = "root fragment"
		}
		var fo *obs.FragmentObs
		if q != nil && f.ID < len(q.Fragments) {
			fo = q.Fragments[f.ID]
		}
		inst := 0
		if fo != nil {
			inst = fo.Instances
		}
		fmt.Fprintf(&sb, "--- %s %d (instances=%d) ---\n", role, f.ID, inst)
		formatAnalyzedNode(&sb, f.Root, fo, notes, 0)
	}
	if q != nil {
		for _, f := range q.Filters {
			fmt.Fprintf(&sb, "runtime filter #%d: join frag %d <- exchange %d (probe frag %d) keys=%d build_rows=%d bytes=%d tested=%d pruned=%d (%.1f%% pruned)\n",
				f.ID, f.JoinFrag, f.Exchange, f.ProbeFrag,
				f.Keys, f.BuildRows, f.Bytes, f.RowsTested, f.RowsPruned, 100*(1-f.Selectivity()))
		}
		for _, rp := range q.Replans {
			fmt.Fprintf(&sb, "adaptive replan: wave=%d frag=%d %s %s %s -> %s (est=%.0f act=%d)\n",
				rp.Wave, rp.Frag, rp.Kind, rp.Op, rp.From, rp.To, rp.EstRows, rp.ActRows)
		}
		fmt.Fprintf(&sb, "modeled=%v wall=%v work=%.0f bytes=%.0f instances=%d retries=%d spans=%d",
			time.Duration(q.ModeledNanos), time.Duration(q.WallNanos),
			st.Work, st.BytesShipped, st.Instances, st.Retries, st.Spans)
		if st.FiltersBuilt > 0 {
			fmt.Fprintf(&sb, " filters=%d rows_pruned=%d", st.FiltersBuilt, st.RowsPruned)
		}
		if st.Hedges > 0 {
			fmt.Fprintf(&sb, " hedges=%d won=%d", st.Hedges, st.HedgesWon)
		}
		if st.MemPeakBytes > 0 {
			fmt.Fprintf(&sb, " mem_peak=%d", st.MemPeakBytes)
		}
		if st.AdaptiveReplans > 0 {
			fmt.Fprintf(&sb, " replans=%d switches=%d", st.AdaptiveReplans, st.AdaptiveSwitches)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatAnalyzedNode(sb *strings.Builder, n physical.Node, fo *obs.FragmentObs, notes map[physical.Node]string, depth int) {
	fmt.Fprintf(sb, "%s%s", strings.Repeat("  ", depth), n.Describe())
	if note, ok := notes[n]; ok {
		fmt.Fprintf(sb, "  [%s]", note)
	}
	if fo != nil {
		if i, ok := fo.OpIndex[n]; ok {
			op := fo.Ops[i]
			fmt.Fprintf(sb, "  [est=%.0f act=%d err=%.1fx work=%.0f wall=%v",
				op.EstRows, op.RowsOut, qerror(op.EstRows, float64(op.RowsOut)),
				op.Work, time.Duration(op.WallNanos))
			if op.BuildRows > 0 {
				fmt.Fprintf(sb, " build=%d", op.BuildRows)
			}
			if op.Batches > 0 {
				fmt.Fprintf(sb, " batches=%d", op.Batches)
			}
			if op.RowsPruned > 0 {
				fmt.Fprintf(sb, " pruned=%d", op.RowsPruned)
			}
			if op.PeakMemBytes > 0 {
				fmt.Fprintf(sb, " mem=%d", op.PeakMemBytes)
			}
			sb.WriteString("]")
		}
	}
	sb.WriteByte('\n')
	for _, in := range n.Inputs() {
		formatAnalyzedNode(sb, in, fo, notes, depth+1)
	}
}

// qerror is the symmetric q-error of an estimate, smoothed by +1 on both
// sides so empty results do not divide by zero.
func qerror(est, act float64) float64 {
	a, b := (est+1)/(act+1), (act+1)/(est+1)
	if a > b {
		return a
	}
	return b
}

func (e *Engine) explain(sel *sql.SelectStmt) (*Result, error) {
	pp, _, vp, err := e.plan(sel)
	if err != nil {
		return nil, err
	}
	fp := fragment.Split(pp)
	if e.cfg.RuntimeFilters {
		fragment.PlanRuntimeFilters(fp)
	}
	var sb strings.Builder
	sb.WriteString(fp.Format())
	for _, rf := range fp.Filters {
		sb.WriteString(rf.Describe())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "planner tickets: %d\n", vp.TicketsUsed)
	return &Result{PlanText: sb.String()}, nil
}

// ReferenceQuery executes a SELECT through the naive single-node
// reference interpreter (package ref). It shares only the binder and the
// stage-1 heuristic rules with the main pipeline, so integration tests use
// it to cross-check the distributed engine's results.
func (e *Engine) ReferenceQuery(query string) ([]Row, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	lp, err := e.newBinder().BindSelect(sel)
	if err != nil {
		return nil, err
	}
	lp = hep.RunGroups(lp, rules.Stage1Groups(rules.Config{FilterCorrelate: true}))
	return ref.Execute(lp, e.store)
}

// LogicalPlan returns the bound + heuristically optimized logical plan
// text (a debugging aid used by tests and the CLI).
func (e *Engine) LogicalPlan(query string) (string, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return "", err
	}
	lp, err := e.newBinder().BindSelect(sel)
	if err != nil {
		return "", err
	}
	rc := rules.Config{
		FilterCorrelate:             e.cfg.FilterCorrelate,
		JoinConditionSimplification: e.cfg.JoinConditionSimplification,
	}
	lp = hep.RunGroups(lp, rules.Stage1Groups(rc))
	return logical.Format(lp), nil
}
