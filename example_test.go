package gignite_test

import (
	"fmt"
	"log"

	"gignite"
)

// Example runs the paper's Figure 1 scenario end to end: a partitioned
// employee/sales schema on a 4-site cluster and the distributed join
// Query A.
func Example() {
	e := gignite.New(gignite.ICPlusM(4))

	statements := []string{
		`CREATE TABLE employee (id BIGINT PRIMARY KEY, name VARCHAR(30))`,
		`CREATE TABLE sales (sale_id BIGINT PRIMARY KEY, emp_id BIGINT, amount DOUBLE)`,
		`INSERT INTO employee VALUES (10, 'ada'), (11, 'grace'), (12, 'edsger')`,
		`INSERT INTO sales VALUES (1, 10, 120.5), (2, 10, 80.0), (3, 11, 200.0)`,
	}
	for _, stmt := range statements {
		if _, err := e.Exec(stmt); err != nil {
			log.Fatal(err)
		}
	}
	if err := e.Analyze(); err != nil {
		log.Fatal(err)
	}

	res, err := e.Query(`SELECT e.name, SUM(s.amount) AS total
		FROM employee e, sales s
		WHERE e.id = s.emp_id
		GROUP BY e.name ORDER BY total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: %s\n", row[0], row[1])
	}
	// Output:
	// ada: 200.5
	// grace: 200
}
