package gignite_test

// Observability suite: the determinism contract of the obs subsystem
// (DESIGN.md §12). Per-operator row counts and the trace span sequence
// must be identical at every host worker count, the span count must equal
// fragment-instance attempts even under fault injection with byte-identical
// recovered results, and EXPLAIN ANALYZE must render estimate-vs-actual
// annotations. Run under -race in CI.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"gignite"
	"gignite/internal/harness"
	"gignite/internal/obs"
	"gignite/internal/tpch"
)

const obsSF = 0.005

func openObsEngine(t *testing.T, parallelism, backups int, spec string) *gignite.Engine {
	t.Helper()
	plan, err := gignite.ParseFaults(spec)
	if err != nil {
		t.Fatalf("fault spec %q: %v", spec, err)
	}
	cfg := harness.ConfigFor(harness.ICPlus, 4, obsSF)
	cfg.ExecParallelism = parallelism
	cfg.Backups = backups
	cfg.Faults = plan
	e := gignite.New(cfg)
	if err := tpch.Setup(e, obsSF); err != nil {
		t.Fatal(err)
	}
	return e
}

// opSummary renders the deterministic slice of a query's per-operator
// stats (row flows, batches, build sizes, peaks and modeled work — wall
// times excluded, they are host measurements).
func opSummary(q *obs.QueryObs) string {
	var sb strings.Builder
	for _, fo := range q.Fragments {
		fmt.Fprintf(&sb, "frag%d instances=%d\n", fo.Frag, fo.Instances)
		for _, op := range fo.Ops {
			fmt.Fprintf(&sb, "  %s in=%d out=%d batches=%d build=%d peak=%d work=%.3f\n",
				op.Op, op.RowsIn, op.RowsOut, op.Batches, op.BuildRows, op.PeakRows, op.Work)
		}
	}
	return sb.String()
}

// spanSummary renders the deterministic slice of the trace (everything
// but the wall-clock offsets).
func spanSummary(q *obs.QueryObs) string {
	var sb strings.Builder
	for _, s := range q.Spans {
		fmt.Fprintf(&sb, "frag%d site%d host%d v%d a%d ord%d w%d %s\n",
			s.Frag, s.Site, s.Host, s.Variant, s.Attempt, s.Ordinal, s.Wave, s.Status)
	}
	return sb.String()
}

// TestObsDeterministicAcrossWorkers: per-operator stats and the span
// sequence are byte-identical between sequential and parallel execution.
func TestObsDeterministicAcrossWorkers(t *testing.T) {
	seq := openObsEngine(t, 1, 0, "")
	par := openObsEngine(t, 8, 0, "")
	for _, id := range []int{1, 3, 6} {
		q := tpch.QueryByID(id).SQL
		rs, err := seq.Query(q)
		if err != nil {
			t.Fatalf("Q%d sequential: %v", id, err)
		}
		rp, err := par.Query(q)
		if err != nil {
			t.Fatalf("Q%d parallel: %v", id, err)
		}
		if a, b := opSummary(rs.Obs), opSummary(rp.Obs); a != b {
			t.Errorf("Q%d operator stats differ between 1 and 8 workers:\n%s\nvs\n%s", id, a, b)
		}
		if a, b := spanSummary(rs.Obs), spanSummary(rp.Obs); a != b {
			t.Errorf("Q%d span sequence differs between 1 and 8 workers:\n%s\nvs\n%s", id, a, b)
		}
		if rs.Obs.PlanDigest == "" || rs.Obs.PlanDigest != rp.Obs.PlanDigest {
			t.Errorf("Q%d plan digests differ: %q vs %q", id, rs.Obs.PlanDigest, rp.Obs.PlanDigest)
		}
	}
}

// TestObsSpanInvariantUnderFaults: one span per fragment-instance attempt
// (spans == instances + retries), retried attempts marked, and the
// recovered rows byte-identical to the fault-free run.
func TestObsSpanInvariantUnderFaults(t *testing.T) {
	baseline := openObsEngine(t, 4, 1, "")
	faulty := openObsEngine(t, 4, 1, "seed=7;crash=2@5")
	for _, id := range []int{1, 3} {
		q := tpch.QueryByID(id).SQL
		want, err := baseline.Query(q)
		if err != nil {
			t.Fatalf("fault-free Q%d: %v", id, err)
		}
		got, err := faulty.Query(q)
		if err != nil {
			t.Fatalf("faulty Q%d: %v", id, err)
		}
		if w, g := rowStrings(want), rowStrings(got); strings.Join(w, "\n") != strings.Join(g, "\n") {
			t.Errorf("Q%d rows differ under faults", id)
		}
		qo := got.Obs
		if qo == nil {
			t.Fatalf("Q%d: no observation record", id)
		}
		if len(qo.Spans) != got.Stats.Instances+got.Stats.Retries {
			t.Errorf("Q%d: %d spans, want instances %d + retries %d",
				id, len(qo.Spans), got.Stats.Instances, got.Stats.Retries)
		}
		if got.Stats.Spans != len(qo.Spans) {
			t.Errorf("Q%d: Stats.Spans=%d, len(Spans)=%d", id, got.Stats.Spans, len(qo.Spans))
		}
		ok, notOK := 0, 0
		for _, s := range qo.Spans {
			if s.Status == obs.SpanOK {
				ok++
			} else {
				notOK++
			}
		}
		if ok != got.Stats.Instances {
			t.Errorf("Q%d: %d ok spans, want %d instances", id, ok, got.Stats.Instances)
		}
		if got.Stats.Retries > 0 && notOK == 0 {
			t.Errorf("Q%d: %d retries but no retried/skipped spans", id, got.Stats.Retries)
		}
	}
	// The same crashed run must stay deterministic across worker counts.
	faultySeq := openObsEngine(t, 1, 1, "seed=7;crash=2@5")
	for _, id := range []int{1, 3} {
		q := tpch.QueryByID(id).SQL
		a, err := faulty.Query(q)
		if err != nil {
			t.Fatalf("faulty Q%d: %v", id, err)
		}
		b, err := faultySeq.Query(q)
		if err != nil {
			t.Fatalf("faulty sequential Q%d: %v", id, err)
		}
		if spanSummary(a.Obs) != spanSummary(b.Obs) {
			t.Errorf("Q%d: faulted span sequence differs across worker counts:\n%s\nvs\n%s",
				id, spanSummary(a.Obs), spanSummary(b.Obs))
		}
	}
}

// TestObsEdges: the trace records the fragment DAG's exchange edges.
func TestObsEdges(t *testing.T) {
	e := openObsEngine(t, 0, 0, "")
	res, err := e.Query(tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Obs.Edges) == 0 {
		t.Fatal("no exchange edges recorded")
	}
	for _, edge := range res.Obs.Edges {
		if edge.FromFrag == edge.ToFrag {
			t.Errorf("self-edge on exchange %d", edge.Exchange)
		}
	}
}

// TestExplainAnalyze: the report annotates every operator with estimated
// vs. actual rows and drops the result rows.
func TestExplainAnalyze(t *testing.T) {
	e := openObsEngine(t, 0, 0, "")
	res, err := e.Exec("EXPLAIN ANALYZE " + tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 || len(res.Columns) != 0 {
		t.Errorf("EXPLAIN ANALYZE returned %d rows, want none", len(res.Rows))
	}
	for _, want := range []string{"est=", "act=", "err=", "TableScan", "root fragment 0", "spans="} {
		if !strings.Contains(res.PlanText, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, res.PlanText)
		}
	}
	// Scans read real data, so actuals must be non-zero.
	if strings.Contains(res.PlanText, "act=0 ") && strings.Contains(res.PlanText, "TableScan lineitem") {
		t.Errorf("suspicious zero actuals:\n%s", res.PlanText)
	}
}

// TestSlowQueryLog: queries at or over the threshold log the digest and
// the top operators through the pluggable logger.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	cfg := harness.ConfigFor(harness.ICPlus, 4, obsSF)
	cfg.SlowQueryThreshold = time.Nanosecond
	cfg.Logger = func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	e := gignite.New(cfg)
	if err := tpch.Setup(e, obsSF); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(tpch.QueryByID(1).SQL)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow-query log lines = %d, want 1", len(lines))
	}
	line := lines[0]
	for _, want := range []string{"slow query", res.Obs.PlanDigest, "top=[", "frag", "sql="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	snap := e.Metrics()
	if snap.Counters["queries_slow_total"] != 1 {
		t.Errorf("queries_slow_total = %g, want 1", snap.Counters["queries_slow_total"])
	}
}

// TestEngineMetrics: the cumulative registry tracks queries, failures and
// in-flight counts across a mixed workload.
func TestEngineMetrics(t *testing.T) {
	e := openObsEngine(t, 0, 0, "")
	if _, err := e.Query(tpch.QueryByID(6).SQL); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT * FROM no_such_table"); err == nil {
		t.Fatal("expected error for missing table")
	}
	snap := e.Metrics()
	if got := snap.Counters["queries_total"]; got != 2 {
		t.Errorf("queries_total = %g, want 2", got)
	}
	if got := snap.Counters["queries_failed_total"]; got != 1 {
		t.Errorf("queries_failed_total = %g, want 1", got)
	}
	if got := snap.Gauges["queries_inflight"]; got != 0 {
		t.Errorf("queries_inflight = %g, want 0", got)
	}
	if got := snap.Counters["trace_spans_total"]; got <= 0 {
		t.Errorf("trace_spans_total = %g, want > 0", got)
	}
	if snap.Histograms["query_modeled_seconds"].Count != 1 {
		t.Errorf("query_modeled_seconds count = %d, want 1",
			snap.Histograms["query_modeled_seconds"].Count)
	}
	if snap.Text() == "" {
		t.Error("empty metrics text")
	}
}
