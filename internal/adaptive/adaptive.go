// Package adaptive implements mid-query re-optimization from runtime
// sketches (DESIGN.md §17). At every wave barrier the cluster scheduler
// hands the controller the per-exchange actuals observed so far — exact
// row counts plus distinct-count sketches built incrementally in the
// exchange senders — and the controller re-derives cardinalities for the
// fragments that have not been deployed yet. When the corrected numbers
// cross a rewrite's profitability guard, the controller mutates the
// pending part of the physical plan in place.
//
// Only rewrites with a result-stability proof are admissible:
//
//   - build-swap: flip a hash join's build side to the left input
//     (Join.BuildLeft). The executor's build-left operator emits rows in
//     exactly the order of the build-right operator, so output bytes are
//     identical unconditionally.
//   - dist-flip: retarget a pending broadcast build-side sender to hash
//     routing on the join keys. Valid when the consuming join's left side
//     is partitioned on its equi keys (the mapping target coincides), in
//     which case every probe row meets exactly the same matching build
//     rows in the same relative receiver order under either routing.
//   - variant-regrade: collapse a pending fragment's §5.3 variant split
//     back to one thread when the corrected input volume is too small to
//     amortize the duplicate source reads. Re-grading permutes the
//     (FromSite, FromVariant) concatenation order downstream, so it is
//     gated behind an order-insensitivity analysis of the consuming plan
//     (orderWashed): every consumer path must pass through exact,
//     order-insensitive aggregation and end in a total-order sort.
//
// Decisions are pure functions of merged sketches, which the barrier
// merges in deterministic job order; no wall-clock input exists, so the
// same query under the same fault plan re-plans identically at every
// ExecParallelism.
package adaptive

import (
	"fmt"

	"gignite/internal/expr"
	"gignite/internal/fragment"
	"gignite/internal/logical"
	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/sketch"
	"gignite/internal/types"
)

// Config tunes the controller's guards. Zero values select the defaults.
type Config struct {
	// Sites is the cluster's site count (drives the dist-flip guard).
	Sites int
	// Variants is the configured §5.3 variant count (drives variant
	// safety checks and the re-grade baseline).
	Variants int
	// FlipMargin is the hysteresis factor a dist-flip's modeled benefit
	// must exceed its cost by (default 1.3).
	FlipMargin float64
	// SwapMargin is how many times smaller the left input must be than
	// the right before the build side swaps (default 2).
	SwapMargin float64
	// InfoMargin is the minimum est-vs-corrected divergence (as a
	// symmetric ratio) before the controller reacts at all: rewrites are
	// responses to misestimation, not second-guessing of the planner on
	// its own numbers (default 1.5).
	InfoMargin float64
	// VariantMinRows is the corrected input volume below which a variant
	// fragment re-grades to a single thread (default 1024).
	VariantMinRows float64
	// MaxCorrection clamps each act/est propagation ratio (default 1000).
	MaxCorrection float64
}

func (c Config) withDefaults() Config {
	if c.FlipMargin <= 0 {
		c.FlipMargin = 1.3
	}
	if c.SwapMargin <= 0 {
		c.SwapMargin = 2
	}
	if c.InfoMargin <= 0 {
		c.InfoMargin = 1.5
	}
	if c.VariantMinRows <= 0 {
		c.VariantMinRows = 1024
	}
	if c.MaxCorrection <= 0 {
		c.MaxCorrection = 1000
	}
	if c.Variants < 1 {
		c.Variants = 1
	}
	if c.Sites < 1 {
		c.Sites = 1
	}
	return c
}

// exchangePenalty mirrors the planner's per-target exchange setup cost
// (cost.Exchange's 200-per-target term): the fixed price of involving a
// site in a shuffle, used by the dist-flip guard.
const exchangePenalty = 200

// consumerRef locates one exchange's consuming side.
type consumerRef struct {
	frag *fragment.Fragment
	recv *physical.Receiver
	n    int // number of receivers found for the exchange (multi-consumer DAGs)
}

// Controller drives adaptive execution for one query. It is not safe for
// concurrent use; the cluster scheduler calls it from barriers only.
type Controller struct {
	plan     *fragment.Plan
	waves    [][]*fragment.Fragment
	cfg      Config
	fragWave map[int]int          // fragment ID -> wave index
	consumer map[int]*consumerRef // exchange -> consuming receiver
	skeys    map[int][]int        // exchange -> sketch key columns (sender coords)

	actRows map[int]int64   // exchange -> observed sender output rows
	actNDV  map[int]float64 // exchange -> sketch distinct estimate on skeys

	varOverride map[int]int // fragment ID -> forced variant count
	touched     map[physical.Node]bool
	notes       map[physical.Node]string
	replans     []obs.Replan
}

// New builds a controller for a fragmented plan. The plan's senders and
// receivers may be mutated by later OnBarrier calls, so the plan must be
// private to this execution (the engine clones cached plans before
// fragmenting, which also guarantees a cached plan never retains a
// post-adaptation tree).
func New(plan *fragment.Plan, cfg Config) (*Controller, error) {
	waves, err := plan.Waves()
	if err != nil {
		return nil, err
	}
	c := &Controller{
		plan:        plan,
		waves:       waves,
		cfg:         cfg.withDefaults(),
		fragWave:    make(map[int]int),
		consumer:    make(map[int]*consumerRef),
		skeys:       make(map[int][]int),
		actRows:     make(map[int]int64),
		actNDV:      make(map[int]float64),
		varOverride: make(map[int]int),
		touched:     make(map[physical.Node]bool),
		notes:       make(map[physical.Node]string),
	}
	for w, wave := range waves {
		for _, f := range wave {
			c.fragWave[f.ID] = w
		}
	}
	for _, f := range plan.Fragments {
		f := f
		physical.Walk(f.Root, func(n physical.Node) bool {
			if rv, ok := n.(*physical.Receiver); ok {
				ref := c.consumer[rv.ExchangeID]
				if ref == nil {
					ref = &consumerRef{frag: f, recv: rv}
					c.consumer[rv.ExchangeID] = ref
				}
				ref.n++
			}
			return true
		})
	}
	c.planSketchKeys()
	return c, nil
}

// planSketchKeys chooses, for every exchange, the columns the sender-side
// sketch keys on: the consuming join's equi keys mapped down to the
// sender schema, so the sketch's distinct estimate is usable as the
// Swami-Schiefer divisor when join sizes are re-derived. Exchanges with
// no (mappable) consuming join sketch on the exchange's own target keys
// (the exec layer's fallback) — their row counts still feed corrections.
func (c *Controller) planSketchKeys() {
	for _, f := range c.plan.Fragments {
		physical.Walk(f.Root, func(n physical.Node) bool {
			j, ok := n.(*physical.Join)
			if !ok || len(j.Keys) == 0 {
				return true
			}
			for side := 0; side < 2; side++ {
				keys := make([]int, len(j.Keys))
				for i, k := range j.Keys {
					if side == 0 {
						keys[i] = k.Left
					} else {
						keys[i] = k.Right
					}
				}
				if rv, mapped, ok := mapKeysDown(j.Inputs()[side], keys); ok {
					if _, dup := c.skeys[rv.ExchangeID]; !dup {
						c.skeys[rv.ExchangeID] = mapped
					}
				}
			}
			return true
		})
	}
	// Every exchange sketches (row counts are always wanted); exchanges
	// without a join-derived key set get a nil entry (fallback keys).
	for ex := range c.plan.Producer {
		if _, ok := c.skeys[ex]; !ok {
			c.skeys[ex] = nil
		}
	}
}

// SketchKeys returns the per-exchange sketch key columns for the exec
// layer. An entry with a nil value means "sketch this exchange on its
// target keys". The map must not be mutated.
func (c *Controller) SketchKeys() map[int][]int { return c.skeys }

// VariantFor resolves the §5.3 variant count for a fragment, applying any
// re-grade decided at an earlier barrier.
func (c *Controller) VariantFor(fragID, configured int) int {
	if n, ok := c.varOverride[fragID]; ok {
		return n
	}
	return configured
}

// Notes exposes the per-node rewrite annotations for EXPLAIN ANALYZE.
func (c *Controller) Notes() map[physical.Node]string { return c.notes }

// Replans returns every rewrite applied so far, in decision order.
func (c *Controller) Replans() []obs.Replan { return c.replans }

// OnBarrier ingests the merged sketches of all completed exchanges and
// re-plans the pending waves (every wave after `wave`). It returns the
// rewrites applied at this barrier. sketches is cumulative: the caller
// passes the same map every barrier, grown and merged in deterministic
// job order.
func (c *Controller) OnBarrier(wave int, sketches map[int]*sketch.Sketch) []obs.Replan {
	for ex, sk := range sketches {
		c.actRows[ex] = sk.Rows()
		c.actNDV[ex] = sk.NDV()
	}
	before := len(c.replans)
	for w := wave + 1; w < len(c.waves); w++ {
		for _, f := range c.waves[w] {
			c.tryDistFlip(f, wave)
			c.tryBuildSwap(f, wave)
			c.tryRegrade(f, wave)
		}
	}
	return c.replans[before:]
}

// ---------------------------------------------------------------------------
// Cardinality correction

// est reads a node's planner estimate, floored at one row.
func est(n physical.Node) float64 {
	e := n.Props().EstRows
	if e < 1 {
		return 1
	}
	return e
}

// corrected re-derives a node's cardinality from runtime observations:
// receivers of completed exchanges return their exact counts, joins are
// recomputed with the Swami-Schiefer formula over corrected inputs and
// sketch-based distinct counts (sidestepping whatever error the planner's
// join estimates carried), and every other operator scales its estimate
// by its children's correction ratios, clamped to MaxCorrection.
func (c *Controller) corrected(n physical.Node) float64 {
	return c.correctedDepth(n, 0)
}

func (c *Controller) correctedDepth(n physical.Node, depth int) float64 {
	if depth > 64 { // plans are trees; this is a pure safety net
		return est(n)
	}
	switch t := n.(type) {
	case *physical.Receiver:
		if rows, ok := c.actRows[t.ExchangeID]; ok {
			if rows < 1 {
				return 0
			}
			return float64(rows)
		}
		// Pending producer: follow the exchange to its sender subtree.
		if p := c.plan.Producer[t.ExchangeID]; p != nil {
			if s, ok := p.Root.(*physical.Sender); ok {
				return c.correctedDepth(s.Inputs()[0], depth+1)
			}
		}
		return est(n)
	case *physical.Join:
		if len(t.Keys) > 0 {
			l := c.correctedDepth(t.Inputs()[0], depth+1)
			r := c.correctedDepth(t.Inputs()[1], depth+1)
			d := c.sideNDV(t, 0, l)
			if rd := c.sideNDV(t, 1, r); rd > d {
				d = rd
			}
			if d < 1 {
				d = 1
			}
			out := l * r / d
			switch t.Type {
			case logical.JoinLeft:
				if out < l {
					out = l
				}
			case logical.JoinSemi:
				if out > l {
					out = l
				}
			case logical.JoinAnti:
				out = l - out
			}
			if out < 1 {
				out = 1
			}
			return out
		}
	}
	ins := n.Inputs()
	if len(ins) == 0 {
		return est(n)
	}
	scale := 1.0
	for _, in := range ins {
		ratio := c.correctedDepth(in, depth+1) / est(in)
		if ratio > c.cfg.MaxCorrection {
			ratio = c.cfg.MaxCorrection
		}
		if ratio < 1/c.cfg.MaxCorrection {
			ratio = 1 / c.cfg.MaxCorrection
		}
		scale *= ratio
	}
	return est(n) * scale
}

// sideNDV estimates the distinct count of one join side on its equi keys:
// the exchange sketch when the side bottoms out (through row-local
// operators) in a sketched receiver keyed on exactly those columns, else
// the side's corrected row count (the unique-key assumption — exact for
// co-located sides joining on their affinity key, conservative
// otherwise).
func (c *Controller) sideNDV(j *physical.Join, side int, rows float64) float64 {
	keys := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		if side == 0 {
			keys[i] = k.Left
		} else {
			keys[i] = k.Right
		}
	}
	if rv, mapped, ok := mapKeysDown(j.Inputs()[side], keys); ok {
		if ndv, has := c.actNDV[rv.ExchangeID]; has && intsEqual(c.skeys[rv.ExchangeID], mapped) {
			return ndv
		}
	}
	return rows
}

// mapKeysDown maps column ordinals from a node down a row-local chain
// (filters and pass-through projections) to the receiver at its bottom.
// ok is false when the chain contains any other operator or a computed
// projection over a key column.
func mapKeysDown(n physical.Node, keys []int) (*physical.Receiver, []int, bool) {
	ks := append([]int(nil), keys...)
	for {
		switch t := n.(type) {
		case *physical.Receiver:
			return t, ks, true
		case *physical.Filter:
			n = t.Inputs()[0]
		case *physical.Project:
			for i, k := range ks {
				cr, ok := t.Exprs[k].(*expr.ColRef)
				if !ok {
					return nil, nil, false
				}
				ks[i] = cr.Index
			}
			n = t.Inputs()[0]
		default:
			return nil, nil, false
		}
	}
}

// diverged reports whether a corrected value contradicts its estimate by
// at least the info margin (symmetric ratio, +1-smoothed).
func (c *Controller) diverged(estimate, correctedV float64) bool {
	a := (estimate + 1) / (correctedV + 1)
	if a < 1 {
		a = 1 / a
	}
	return a >= c.cfg.InfoMargin
}

// ---------------------------------------------------------------------------
// Trigger (a): distribution flip

// tryDistFlip retargets a pending broadcast build-side sender to hash
// routing when the observed build side crossed the distribution-trait
// threshold: shipping sites× copies of a large build input loses to
// partitioning it once. Validity (the byte-identity proof in the package
// comment) requires the consuming join's left side to be partitioned on
// its equi keys, so the mapping target — and with it the join's site set
// and output placement — is unchanged by the flip.
//
// The reverse rewrite (hash → broadcast) carries the same proof but is
// strictly dominated under the cost model — same site set, sites× the
// network volume, sites× the per-site build rows — so the guard never
// selects it; "flipping back" is the hash routing simply being retained
// when the corrected build side stays small.
func (c *Controller) tryDistFlip(p *fragment.Fragment, barrier int) {
	sender, ok := p.Root.(*physical.Sender)
	if !ok || sender.Target.Type != physical.Broadcast || c.touched[sender] {
		return
	}
	ref := c.consumer[p.ExchangeID]
	if ref == nil || ref.n != 1 {
		return
	}
	j, side := consumingJoin(ref.frag, ref.recv)
	if j == nil || side != 1 || c.touched[j] {
		return
	}
	if j.Algo != physical.HashAlgo || len(j.Keys) == 0 || j.Mapping != "bcast-right" {
		return
	}
	leftKeys := make([]int, len(j.Keys))
	rightKeys := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		leftKeys[i], rightKeys[i] = k.Left, k.Right
	}
	// Validity: the left side must already be partitioned on its equi
	// keys — then hash routing delivers every matching build row to the
	// site that owns its probe rows, in the same relative order.
	ld := j.Inputs()[0].Dist()
	if ld.Type != physical.Hash || !intsEqual(ld.Keys, leftKeys) {
		return
	}
	// The sender ships its own child's schema; the receiver chain must
	// map the join's right keys onto it losslessly.
	rv, mapped, ok := mapKeysDown(j.Inputs()[1], rightKeys)
	if !ok || rv != ref.recv {
		return
	}
	// Variant safety: a split-mode receiver slices the build rows by a
	// per-variant counter, and hash routing changes each site's multiset.
	if vs := fragment.BuildVariants(ref.frag, c.VariantFor(ref.frag.ID, c.cfg.Variants)); vs != nil && vs.Modes[rv] == fragment.SplitMode {
		return
	}
	estR := est(sender)
	actR := c.corrected(sender.Inputs()[0])
	if !c.diverged(estR, actR) {
		return
	}
	// Guard: partitioning saves (sites-1) shipped copies of the build
	// side; the flip must buy more than the hysteresis-scaled fixed cost
	// of the shuffle.
	sites := float64(c.cfg.Sites)
	if actR*(sites-1) <= c.cfg.FlipMargin*exchangePenalty*sites {
		return
	}
	from := sender.Target.String()
	target := physical.HashDist(mapped...)
	sender.Target = target
	sender.Props().Dist = target
	rv.Props().Dist = target
	j.Mapping = "hash"
	c.touched[sender], c.touched[j] = true, true
	note := fmt.Sprintf("adaptive: dist-flip %s→%s (est=%.0f act=%.0f)", from, target, estR, actR)
	c.notes[sender] = note
	c.notes[j] = note
	c.replans = append(c.replans, obs.Replan{
		Wave: barrier, Frag: p.ID, Kind: "dist-flip", Op: "Sender",
		From: from, To: target.String(), EstRows: estR, ActRows: int64(actR),
	})
}

// consumingJoin finds the join whose input chain (row-local operators
// only) reaches the given receiver, and which side of the join it feeds.
// side is -1 when no such join exists.
func consumingJoin(f *fragment.Fragment, rv *physical.Receiver) (*physical.Join, int) {
	var found *physical.Join
	side := -1
	physical.Walk(f.Root, func(n physical.Node) bool {
		j, ok := n.(*physical.Join)
		if !ok || found != nil {
			return found == nil
		}
		for s, in := range j.Inputs() {
			if chainReaches(in, rv) {
				found, side = j, s
				return false
			}
		}
		return true
	})
	return found, side
}

// chainReaches walks filters and projections from n down to see whether
// the chain bottoms out at exactly rv.
func chainReaches(n physical.Node, rv *physical.Receiver) bool {
	for {
		switch t := n.(type) {
		case *physical.Receiver:
			return t == rv
		case *physical.Filter, *physical.Project:
			n = t.(physical.Node).Inputs()[0]
		default:
			return false
		}
	}
}

// ---------------------------------------------------------------------------
// Trigger (b): build-side swap

// tryBuildSwap flips a pending hash join's build side to the left input
// when the corrected sizes invert the planner's estimate: the build side
// pays the hash-table construction premium and holds the operator's
// memory, so it should be the smaller input. Output bytes are identical
// by construction of the build-left operator.
func (c *Controller) tryBuildSwap(f *fragment.Fragment, barrier int) {
	physical.Walk(f.Root, func(n physical.Node) bool {
		j, ok := n.(*physical.Join)
		if !ok || j.Algo != physical.HashAlgo || len(j.Keys) == 0 || j.BuildLeft || c.touched[j] {
			return true
		}
		switch j.Type {
		case logical.JoinInner, logical.JoinLeft, logical.JoinSemi, logical.JoinAnti:
		default:
			return true
		}
		estL, estR := est(j.Inputs()[0]), est(j.Inputs()[1])
		l := c.corrected(j.Inputs()[0])
		r := c.corrected(j.Inputs()[1])
		// React only to misestimation: at least one side must have moved.
		if !c.diverged(estL, l) && !c.diverged(estR, r) {
			return true
		}
		if l*c.cfg.SwapMargin >= r {
			return true
		}
		j.BuildLeft = true
		c.touched[j] = true
		c.notes[j] = fmt.Sprintf("adaptive: build-swap right→left (est L=%.0f R=%.0f, act L=%.0f R=%.0f)", estL, estR, l, r)
		c.replans = append(c.replans, obs.Replan{
			Wave: barrier, Frag: f.ID, Kind: "build-swap", Op: "Join",
			From: "build=right", To: "build=left", EstRows: estR, ActRows: int64(r),
		})
		return true
	})
}

// ---------------------------------------------------------------------------
// Trigger (c): variant re-grade

// tryRegrade collapses a pending fragment's variant split to one thread
// when the corrected input volume cannot amortize the duplicate source
// reads the split costs. The rewrite permutes downstream row order, so it
// only fires when every consumer path washes that order out (orderWashed).
func (c *Controller) tryRegrade(f *fragment.Fragment, barrier int) {
	if c.cfg.Variants <= 1 {
		return
	}
	if _, done := c.varOverride[f.ID]; done {
		return
	}
	if fragment.BuildVariants(f, c.cfg.Variants) == nil {
		return
	}
	sender, ok := f.Root.(*physical.Sender)
	if !ok {
		return
	}
	vol := c.corrected(sender.Inputs()[0])
	physical.Walk(f.Root, func(n physical.Node) bool {
		if rv, isRecv := n.(*physical.Receiver); isRecv {
			if v := c.corrected(rv); v > vol {
				vol = v
			}
		}
		return true
	})
	if vol >= c.cfg.VariantMinRows {
		return
	}
	if !c.orderWashed(f.ID, make(map[int]bool)) {
		return
	}
	c.varOverride[f.ID] = 1
	c.touched[sender] = true
	c.notes[sender] = fmt.Sprintf("adaptive: variant-regrade %d→1 (act=%.0f rows)", c.cfg.Variants, vol)
	c.replans = append(c.replans, obs.Replan{
		Wave: barrier, Frag: f.ID, Kind: "variant-regrade", Op: "Fragment",
		From: fmt.Sprintf("variants=%d", c.cfg.Variants), To: "variants=1",
		EstRows: est(sender), ActRows: int64(vol),
	})
}

// ---------------------------------------------------------------------------
// Order-insensitivity analysis

// orderWashed reports whether permuting the row order a fragment ships is
// provably invisible in the final result bytes: every path from the
// fragment's output to the query root must pass through aggregation whose
// calls are exact and order-insensitive (COUNT, MIN, MAX, integer SUM),
// reach a reduction, and then a Sort whose keys cover all of the
// reduction's group columns — group keys are unique per group, so that
// sort imposes a total order. Above the sort only row-local,
// order-preserving operators may appear, and the sort must live in the
// root fragment (a later exchange would re-perturb the order).
func (c *Controller) orderWashed(fragID int, visiting map[int]bool) bool {
	if visiting[fragID] {
		return false
	}
	visiting[fragID] = true
	defer delete(visiting, fragID)

	f := c.plan.Fragments[fragID]
	if f.IsRoot {
		return false // perturbed order reached the root unwashed
	}
	ref := c.consumer[f.ExchangeID]
	if ref == nil {
		return false
	}
	state, ok := washState(ref.frag, ref.recv)
	switch {
	case !ok:
		return false
	case state == washClean:
		return ref.frag.IsRoot
	case ref.frag.IsRoot:
		return false
	default:
		// Order (or partial-aggregate multiset) perturbation continues
		// into the next fragment; recurse through its exchange.
		return c.orderWashed(ref.frag.ID, visiting)
	}
}

type wash uint8

const (
	washPerturbed wash = iota // row order (or partial multisets) still depend on arrival order
	washClean                 // a total-order sort fixed the final order
)

// washState walks a consumer fragment from the perturbed receiver to the
// fragment root, tracking whether the perturbation is washed out. ok is
// false when an operator that bakes arrival order (or arrival grouping)
// into its output values is encountered before a wash.
func washState(f *fragment.Fragment, rv *physical.Receiver) (wash, bool) {
	path, ok := pathToRoot(f.Root, rv)
	if !ok {
		return washPerturbed, false
	}
	state := washPerturbed
	var lastGroup []int // reduction group columns awaiting a covering sort
	for _, n := range path {
		switch t := n.(type) {
		case *physical.Receiver:
			// the starting point
		case *physical.Filter, *physical.Project, *physical.Sender:
			// Row-local and order-preserving: perturbation (or cleanliness)
			// carries through unchanged.
		case *physical.HashAggregate:
			if !aggsOrderInsensitive(t.Aggs) {
				return state, false
			}
			if t.IsReduction() {
				lastGroup = outputGroupCols(t.GroupBy)
			}
			state = washPerturbed // group emission order is first-seen
		case *physical.SortAggregate:
			if !aggsOrderInsensitive(t.Aggs) {
				return state, false
			}
			if t.IsReduction() {
				lastGroup = outputGroupCols(t.GroupBy)
			}
			state = washPerturbed
		case *physical.Sort:
			if lastGroup != nil && sortCovers(t.Keys, lastGroup) {
				state = washClean
			}
		case *physical.Limit:
			if state != washClean {
				// LIMIT over a perturbed order selects different rows.
				return state, false
			}
		case *physical.Join:
			// A join's output order interleaves probe arrival order; the
			// perturbation survives but values do not change (equi matching
			// is order-free). Treat like a row-local operator.
			if state == washClean {
				state = washPerturbed
			}
			_ = t
		default:
			return state, false
		}
	}
	return state, true
}

// pathToRoot returns the operator chain from rv up to (and including) the
// fragment root, or ok=false when rv is not in the fragment.
func pathToRoot(root physical.Node, rv *physical.Receiver) ([]physical.Node, bool) {
	if root == rv {
		return []physical.Node{root}, true
	}
	for _, in := range root.Inputs() {
		if sub, ok := pathToRoot(in, rv); ok {
			return append(sub, root), true
		}
	}
	return nil, false
}

// aggsOrderInsensitive reports whether every aggregate call produces
// bit-identical results under any input permutation and regrouping of
// partials: COUNT always, MIN/MAX always (same-kind comparisons pick a
// canonical value), SUM only over integer inputs (float addition is not
// associative). AVG and DISTINCT aggregates are excluded.
func aggsOrderInsensitive(aggs []expr.AggCall) bool {
	for _, a := range aggs {
		if a.Distinct {
			return false
		}
		switch a.Func {
		case expr.AggCount, expr.AggMin, expr.AggMax:
		case expr.AggSum:
			if a.Kind() != types.KindInt {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// outputGroupCols are the group columns' output positions (aggregation
// emits group columns first).
func outputGroupCols(groupBy []int) []int {
	cols := make([]int, len(groupBy))
	for i := range groupBy {
		cols[i] = i
	}
	return cols
}

// sortCovers reports whether the sort keys include every group column.
func sortCovers(keys []types.SortKey, group []int) bool {
	have := make(map[int]bool, len(keys))
	for _, k := range keys {
		have[k.Col] = true
	}
	for _, g := range group {
		if !have[g] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
