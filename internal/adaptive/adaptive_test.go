package adaptive

import (
	"strings"
	"testing"

	"gignite/internal/expr"
	"gignite/internal/fragment"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/sketch"
	"gignite/internal/types"
)

var kv = types.Fields{{Name: "k", Kind: types.KindInt}, {Name: "v", Kind: types.KindInt}}

func leaf(est float64, dist physical.Distribution) *physical.Values {
	v := physical.NewValues(kv, nil)
	v.Props().EstRows = est
	v.Props().Dist = dist
	return v
}

func filled(rows int) *sketch.Sketch {
	sk := sketch.New()
	for i := 0; i < rows; i++ {
		sk.Add(uint64(i) * 0x9E3779B97F4A7C15)
	}
	return sk
}

// flipPlan builds the minimal three-fragment shape the dist-flip targets:
//
//	frag 2 (wave 0): Sender #1 hash[0] over a leaf
//	frag 1 (wave 1): Sender #0 broadcast over Receiver #1   <- flip candidate
//	frag 0 (wave 2): Join[hash] bcast-right, probe side partitioned on its key
//
// estBuild is the planner's estimate of the build side (what Receiver #1
// and Sender #0 inherit).
func flipPlan(t *testing.T, estBuild float64) (*fragment.Plan, *physical.Sender, *physical.Join) {
	t.Helper()
	src := leaf(estBuild, physical.HashDist(0))
	sender1 := physical.NewSender(src, 1, physical.HashDist(0))
	ex1 := physical.NewExchange(src, physical.HashDist(0))
	recv1 := physical.NewReceiver(ex1, 1)
	recv1.Props().EstRows = estBuild

	sender0 := physical.NewSender(recv1, 0, physical.BroadcastDist)
	ex0 := physical.NewExchange(recv1, physical.BroadcastDist)
	recv0 := physical.NewReceiver(ex0, 0)
	recv0.Props().EstRows = estBuild

	probe := leaf(1000, physical.HashDist(0))
	join := physical.NewJoin(probe, recv0, physical.HashAlgo, logical.JoinInner, nil,
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.HashDist(0), "bcast-right")

	f0 := &fragment.Fragment{ID: 0, Root: join, IsRoot: true, Receivers: []int{0}, ExchangeID: -1}
	f1 := &fragment.Fragment{ID: 1, Root: sender0, Receivers: []int{1}, ExchangeID: 0}
	f2 := &fragment.Fragment{ID: 2, Root: sender1, ExchangeID: 1}
	plan := &fragment.Plan{
		Fragments: []*fragment.Fragment{f0, f1, f2},
		Producer:  map[int]*fragment.Fragment{0: f1, 1: f2},
	}
	return plan, sender0, join
}

func TestDistFlipFires(t *testing.T) {
	plan, sender, join := flipPlan(t, 50)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The join keys must have mapped down to sketch keys on exchange 0.
	if got := c.SketchKeys()[0]; !intsEqual(got, []int{0}) {
		t.Fatalf("skeys[0] = %v, want [0]", got)
	}
	// Wave 0 completes with 5000 rows where the planner expected 50.
	reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(5000)})
	if len(reps) != 1 {
		t.Fatalf("got %d replans, want 1: %+v", len(reps), reps)
	}
	rp := reps[0]
	if rp.Kind != "dist-flip" || rp.Frag != 1 || rp.Wave != 0 {
		t.Fatalf("unexpected replan: %+v", rp)
	}
	if sender.Target.Type != physical.Hash || !intsEqual(sender.Target.Keys, []int{0}) {
		t.Fatalf("sender target = %s, want hash[0]", sender.Target)
	}
	if join.Mapping != "hash" {
		t.Fatalf("join mapping = %q, want hash", join.Mapping)
	}
	if n := c.Notes()[sender]; !strings.Contains(n, "dist-flip") {
		t.Fatalf("sender note = %q, want dist-flip annotation", n)
	}
	// A later barrier must not rewrite the same sender again.
	if again := c.OnBarrier(1, map[int]*sketch.Sketch{1: filled(5000)}); len(again) != 0 {
		t.Fatalf("second barrier re-fired: %+v", again)
	}
	if len(c.Replans()) != 1 {
		t.Fatalf("replan log grew to %d entries", len(c.Replans()))
	}
}

func TestDistFlipGuardHoldsSmallBuild(t *testing.T) {
	// 300 actual rows diverge from the estimate of 50, but partitioning
	// saves 300*(sites-1)=900 shipped rows, under the hysteresis-scaled
	// shuffle price 1.3*200*4=1040: the broadcast must be retained.
	plan, sender, _ := flipPlan(t, 50)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(300)}); len(reps) != 0 {
		t.Fatalf("guard did not hold: %+v", reps)
	}
	if sender.Target.Type != physical.Broadcast {
		t.Fatalf("sender target mutated to %s", sender.Target)
	}
}

func TestDistFlipNeedsDivergence(t *testing.T) {
	// The actuals match the estimate, so however profitable the flip
	// would be, the controller must not second-guess the planner.
	plan, sender, _ := flipPlan(t, 5000)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(5000)}); len(reps) != 0 {
		t.Fatalf("replanned without new information: %+v", reps)
	}
	if sender.Target.Type != physical.Broadcast {
		t.Fatalf("sender target mutated to %s", sender.Target)
	}
}

func TestDistFlipNeedsColocatedProbe(t *testing.T) {
	// Probe side partitioned on a different column: hash routing would
	// send build rows away from their probe rows, so the flip is invalid.
	// 1500 actual rows clear the flip's divergence and profit guards but
	// stay above half the probe side, so no build-swap muddies the check.
	plan, sender, join := flipPlan(t, 50)
	join.Inputs()[0].Props().Dist = physical.HashDist(1)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(1500)}); len(reps) != 0 {
		t.Fatalf("flip fired without co-location proof: %+v", reps)
	}
	if sender.Target.Type != physical.Broadcast {
		t.Fatalf("sender target mutated to %s", sender.Target)
	}
}

// swapPlan builds a root join over two hash exchanges, estimated
// left-heavy (estL > estR) so the planner builds on the right.
func swapPlan(t *testing.T, estL, estR float64) (*fragment.Plan, *physical.Join) {
	t.Helper()
	mk := func(ex int, est float64) (*fragment.Fragment, *physical.Receiver) {
		src := leaf(est, physical.HashDist(0))
		sender := physical.NewSender(src, ex, physical.HashDist(0))
		recv := physical.NewReceiver(physical.NewExchange(src, physical.HashDist(0)), ex)
		recv.Props().EstRows = est
		return &fragment.Fragment{ID: ex, Root: sender, ExchangeID: ex}, recv
	}
	f1, recv1 := mk(1, estL)
	f2, recv2 := mk(2, estR)
	join := physical.NewJoin(recv1, recv2, physical.HashAlgo, logical.JoinInner, nil,
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.HashDist(0), "hash")
	f0 := &fragment.Fragment{ID: 0, Root: join, IsRoot: true, Receivers: []int{1, 2}, ExchangeID: -1}
	plan := &fragment.Plan{
		Fragments: []*fragment.Fragment{f0, f1, f2},
		Producer:  map[int]*fragment.Fragment{1: f1, 2: f2},
	}
	return plan, join
}

func TestBuildSwapFires(t *testing.T) {
	plan, join := swapPlan(t, 1000, 100)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Runtime inverts the estimate: the left is 50x smaller than the right.
	reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(100), 2: filled(5000)})
	if len(reps) != 1 || reps[0].Kind != "build-swap" {
		t.Fatalf("got %+v, want one build-swap", reps)
	}
	if !join.BuildLeft {
		t.Fatal("join.BuildLeft not set")
	}
	// Idempotent across barriers.
	if again := c.OnBarrier(1, map[int]*sketch.Sketch{1: filled(100), 2: filled(5000)}); len(again) != 0 {
		t.Fatalf("swap re-fired: %+v", again)
	}
}

func TestBuildSwapMarginHolds(t *testing.T) {
	// Sides diverge from their estimates but the left is not
	// SwapMargin-times smaller than the right: keep the planned build side.
	plan, join := swapPlan(t, 1000, 100)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(3000), 2: filled(5000)}); len(reps) != 0 {
		t.Fatalf("swap fired inside the margin: %+v", reps)
	}
	if join.BuildLeft {
		t.Fatal("join.BuildLeft set inside the margin")
	}
}

func TestBuildSwapNeedsDivergence(t *testing.T) {
	// Estimates already said left < right; the planner chose build=right
	// knowingly, so runtime confirmation must not flip it.
	plan, join := swapPlan(t, 100, 1000)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reps := c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(100), 2: filled(1000)}); len(reps) != 0 {
		t.Fatalf("swap fired without misestimation: %+v", reps)
	}
	if join.BuildLeft {
		t.Fatal("join.BuildLeft set without misestimation")
	}
}

func TestCorrectedEngine(t *testing.T) {
	plan, sender, join := flipPlan(t, 50)
	c, err := New(plan, Config{Sites: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Before any barrier, corrections are pure estimates.
	if got := c.corrected(sender.Inputs()[0]); got != 50 {
		t.Fatalf("corrected(recv1) = %g before barrier, want 50", got)
	}
	c.OnBarrier(0, map[int]*sketch.Sketch{1: filled(5000)})
	// Completed exchange: exact actual, reached through the pending
	// exchange 0 (receiver -> producer sender -> its receiver child).
	if got := c.corrected(sender.Inputs()[0]); got != 5000 {
		t.Fatalf("corrected(recv1) = %g, want exact 5000", got)
	}
	if got := c.corrected(join.Inputs()[1]); got != 5000 {
		t.Fatalf("corrected through pending exchange = %g, want 5000", got)
	}
	// Swami-Schiefer join: l*r/max(ndvL, ndvR) with the unique-key
	// fallback = side rows, so 1000*5000/5000.
	if got := c.corrected(join); got != 1000 {
		t.Fatalf("corrected(join) = %g, want 1000", got)
	}
}

func TestDiverged(t *testing.T) {
	c := &Controller{cfg: Config{}.withDefaults()}
	for _, tc := range []struct {
		est, act float64
		want     bool
	}{
		{10, 10, false},
		{10, 13, false},   // 14/11 = 1.27 < 1.5
		{10, 16, true},    // 17/11 = 1.55
		{16, 10, true},    // symmetric
		{0, 0, false},     // +1 smoothing keeps empty inputs quiet
		{1000, 10, true},
	} {
		if got := c.diverged(tc.est, tc.act); got != tc.want {
			t.Errorf("diverged(%g, %g) = %t, want %t", tc.est, tc.act, got, tc.want)
		}
	}
}

func TestAggsOrderInsensitive(t *testing.T) {
	intCol := expr.NewColRef(0, types.KindInt, "k")
	floatCol := expr.NewColRef(1, types.KindFloat, "f")
	for _, tc := range []struct {
		name string
		aggs []expr.AggCall
		want bool
	}{
		{"count", []expr.AggCall{{Func: expr.AggCount}}, true},
		{"min-max", []expr.AggCall{{Func: expr.AggMin, Arg: intCol}, {Func: expr.AggMax, Arg: floatCol}}, true},
		{"int-sum", []expr.AggCall{{Func: expr.AggSum, Arg: intCol}}, true},
		{"float-sum", []expr.AggCall{{Func: expr.AggSum, Arg: floatCol}}, false},
		{"avg", []expr.AggCall{{Func: expr.AggAvg, Arg: intCol}}, false},
		{"distinct-count", []expr.AggCall{{Func: expr.AggCount, Arg: intCol, Distinct: true}}, false},
	} {
		if got := aggsOrderInsensitive(tc.aggs); got != tc.want {
			t.Errorf("%s: aggsOrderInsensitive = %t, want %t", tc.name, got, tc.want)
		}
	}
}

func TestSortCovers(t *testing.T) {
	keys := []types.SortKey{{Col: 1, Desc: true}, {Col: 0}}
	if !sortCovers(keys, []int{0, 1}) {
		t.Error("sort on {1,0} should cover group {0,1}")
	}
	if sortCovers([]types.SortKey{{Col: 1}}, []int{0, 1}) {
		t.Error("sort on {1} should not cover group {0,1}")
	}
	if !sortCovers(nil, nil) {
		t.Error("empty group is covered vacuously")
	}
}

func TestIntsEqual(t *testing.T) {
	if !intsEqual([]int{1, 2}, []int{1, 2}) || intsEqual([]int{1}, []int{2}) || intsEqual([]int{1}, []int{1, 2}) {
		t.Error("intsEqual misbehaves")
	}
	if !intsEqual(nil, nil) || intsEqual(nil, []int{0}) {
		t.Error("intsEqual nil handling misbehaves")
	}
}
