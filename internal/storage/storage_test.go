package storage

import (
	"testing"
	"testing/quick"

	"gignite/internal/catalog"
	"gignite/internal/types"
)

func newTestStore(t *testing.T, sites int) *Store {
	t.Helper()
	cat := catalog.New()
	err := cat.AddTable(&catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "name", Kind: types.KindString},
			{Name: "dept", Kind: types.KindInt},
		},
		PrimaryKey: []string{"id"},
		Indexes: []catalog.Index{
			{Name: "emp_pk", Columns: []string{"id"}},
			{Name: "emp_dept", Columns: []string{"dept", "id"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = cat.AddTable(&catalog.Table{
		Name:       "region",
		Columns:    []catalog.Column{{Name: "r_key", Kind: types.KindInt}},
		Replicated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(cat, sites)
}

func empRows(n int) []types.Row {
	out := make([]types.Row, n)
	for i := 0; i < n; i++ {
		out[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString("emp" + string(rune('a'+i%26))),
			types.NewInt(int64(i % 5)),
		}
	}
	return out
}

func TestLoadPartitionsCompleteAndDisjoint(t *testing.T) {
	s := newTestStore(t, 4)
	rows := empRows(100)
	if err := s.Load("emp", rows); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]int)
	for site := 0; site < 4; site++ {
		part, err := s.Partition("emp", site)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range part {
			seen[r[0].Int()]++
		}
		// Each row must be in the partition its affinity hash dictates.
		for _, r := range part {
			if got := PartitionOf(r[0], 4); got != site {
				t.Errorf("row id=%d at site %d, hash says %d", r[0].Int(), site, got)
			}
		}
	}
	if len(seen) != 100 {
		t.Fatalf("partitions cover %d of 100 rows", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("row %d appears %d times", id, n)
		}
	}
	if n, _ := s.RowCount("emp"); n != 100 {
		t.Errorf("RowCount = %d", n)
	}
}

func TestReplicatedVisibleEverywhere(t *testing.T) {
	s := newTestStore(t, 4)
	rows := []types.Row{{types.NewInt(1)}, {types.NewInt(2)}}
	if err := s.Load("region", rows); err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 4; site++ {
		part, err := s.Partition("region", site)
		if err != nil {
			t.Fatal(err)
		}
		if len(part) != 2 {
			t.Errorf("site %d sees %d replicated rows", site, len(part))
		}
	}
	if n, _ := s.RowCount("region"); n != 2 {
		t.Errorf("RowCount counts copies: %d", n)
	}
	if ps, _ := s.PartitionSites("region"); ps != 1 {
		t.Errorf("PartitionSites(replicated) = %d, want 1", ps)
	}
	if ps, _ := s.PartitionSites("emp"); ps != 4 {
		t.Errorf("PartitionSites(emp) = %d, want 4", ps)
	}
}

func TestLoadValidatesWidth(t *testing.T) {
	s := newTestStore(t, 2)
	if err := s.Load("emp", []types.Row{{types.NewInt(1)}}); err == nil {
		t.Error("accepted short row")
	}
	if err := s.Load("missing", nil); err == nil {
		t.Error("accepted unknown table")
	}
}

func TestIndexScanOrderAndRange(t *testing.T) {
	s := newTestStore(t, 2)
	// Insert in reverse order so index ordering is observable.
	rows := empRows(50)
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
	if err := s.Load("emp", rows); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndexes("emp"); err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 2; site++ {
		got, err := s.IndexScan("emp", "EMP_PK", site, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i-1][0].Int() > got[i][0].Int() {
				t.Fatalf("site %d index scan out of order at %d", site, i)
			}
		}
	}
	// Range scan on the leading column.
	lo, hi := types.NewInt(10), types.NewInt(20)
	var total int
	for site := 0; site < 2; site++ {
		got, err := s.IndexScan("emp", "emp_pk", site, &lo, &hi)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range got {
			if id := r[0].Int(); id < 10 || id > 20 {
				t.Errorf("range scan returned id %d", id)
			}
		}
		total += len(got)
	}
	if total != 11 {
		t.Errorf("range [10,20] returned %d rows, want 11", total)
	}
	// Composite index sorts by (dept, id).
	got, err := s.IndexScan("emp", "emp_dept", 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		d0, d1 := got[i-1][2].Int(), got[i][2].Int()
		if d0 > d1 || (d0 == d1 && got[i-1][0].Int() > got[i][0].Int()) {
			t.Fatalf("composite index out of order at %d", i)
		}
	}
}

func TestIndexScanErrors(t *testing.T) {
	s := newTestStore(t, 2)
	if err := s.Load("emp", empRows(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IndexScan("emp", "emp_pk", 0, nil, nil); err == nil {
		t.Error("index scan before BuildIndexes succeeded")
	}
	if err := s.BuildIndexes("emp"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IndexScan("emp", "nope", 0, nil, nil); err == nil {
		t.Error("scan of unknown index succeeded")
	}
	if _, err := s.IndexScan("emp", "emp_pk", 9, nil, nil); err == nil {
		t.Error("scan of out-of-range site succeeded")
	}
	if _, err := s.Partition("emp", -1); err == nil {
		t.Error("negative site accepted")
	}
}

func TestLoadInvalidatesIndexes(t *testing.T) {
	s := newTestStore(t, 1)
	if err := s.Load("emp", empRows(5)); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndexes("emp"); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("emp", empRows(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IndexScan("emp", "emp_pk", 0, nil, nil); err == nil {
		t.Error("stale index usable after Load")
	}
}

func TestComputeStats(t *testing.T) {
	s := newTestStore(t, 4)
	if err := s.Load("emp", empRows(100)); err != nil {
		t.Fatal(err)
	}
	if err := s.ComputeStats("emp"); err != nil {
		t.Fatal(err)
	}
	tb, _ := s.Catalog().Table("emp")
	if tb.Stats == nil {
		t.Fatal("stats not set")
	}
	if tb.Stats.RowCount != 100 {
		t.Errorf("RowCount = %d", tb.Stats.RowCount)
	}
	if got := tb.Stats.NDVOf("id"); got != 100 {
		t.Errorf("NDV(id) = %d", got)
	}
	if got := tb.Stats.NDVOf("dept"); got != 5 {
		t.Errorf("NDV(dept) = %d", got)
	}
	if mn := tb.Stats.Min["id"]; mn.Int() != 0 {
		t.Errorf("Min(id) = %v", mn)
	}
	if mx := tb.Stats.Max["id"]; mx.Int() != 99 {
		t.Errorf("Max(id) = %v", mx)
	}
}

// TestPartitioningProperty: for any values and any site count, partitions
// are complete (every row lands somewhere valid) and placement is
// deterministic.
func TestPartitioningProperty(t *testing.T) {
	f := func(keys []int64, sitesRaw uint8) bool {
		sites := int(sitesRaw%8) + 1
		for _, k := range keys {
			v := types.NewInt(k)
			p := PartitionOf(v, sites)
			if p < 0 || p >= sites {
				return false
			}
			if p != PartitionOf(v, sites) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfSingleSite(t *testing.T) {
	if PartitionOf(types.NewInt(12345), 1) != 0 {
		t.Error("single-site partition != 0")
	}
	if PartitionOf(types.NewInt(12345), 0) != 0 {
		t.Error("zero-site partition != 0")
	}
}

// newReplicatedTestStore mirrors newTestStore with backup partitions.
func newReplicatedTestStore(t *testing.T, sites, backups int) *Store {
	t.Helper()
	s := newTestStore(t, sites)
	return NewReplicatedStore(s.cat, sites, backups)
}

func TestReplicaChains(t *testing.T) {
	s := newReplicatedTestStore(t, 4, 1)
	if s.Backups() != 1 {
		t.Fatalf("backups = %d", s.Backups())
	}
	for p := 0; p < 4; p++ {
		chain := s.ReplicaSites(p)
		want := []int{p, (p + 1) % 4}
		if len(chain) != 2 || chain[0] != want[0] || chain[1] != want[1] {
			t.Errorf("partition %d chain = %v, want %v", p, chain, want)
		}
		for site := 0; site < 4; site++ {
			holds := site == want[0] || site == want[1]
			if s.HoldsReplica(p, site) != holds {
				t.Errorf("HoldsReplica(%d, %d) = %v", p, site, !holds)
			}
		}
	}
	// Backups are capped at sites-1.
	if got := NewReplicatedStore(catalog.New(), 3, 99).Backups(); got != 2 {
		t.Errorf("capped backups = %d, want 2", got)
	}
}

func TestPartitionAtReadsFromBackup(t *testing.T) {
	s := newReplicatedTestStore(t, 4, 1)
	if err := s.Load("emp", empRows(100)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		owner, err := s.PartitionAt("emp", p, p)
		if err != nil {
			t.Fatal(err)
		}
		backup, err := s.PartitionAt("emp", p, (p+1)%4)
		if err != nil {
			t.Fatalf("backup read of partition %d: %v", p, err)
		}
		if len(owner) != len(backup) {
			t.Fatalf("partition %d: owner %d rows, backup %d rows", p, len(owner), len(backup))
		}
		for i := range owner {
			if owner[i].String() != backup[i].String() {
				t.Fatalf("partition %d row %d differs across replicas", p, i)
			}
		}
		// A site outside the chain must refuse the read.
		if _, err := s.PartitionAt("emp", p, (p+2)%4); err == nil {
			t.Errorf("partition %d readable from non-replica site", p)
		}
	}
	// Replicated tables are readable from any host.
	if err := s.Load("region", []types.Row{{types.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	for host := 0; host < 4; host++ {
		rows, err := s.PartitionAt("region", 0, host)
		if err != nil || len(rows) != 1 {
			t.Errorf("replicated read at host %d: rows=%d err=%v", host, len(rows), err)
		}
	}
}

func TestIndexScanAtFromBackup(t *testing.T) {
	s := newReplicatedTestStore(t, 4, 1)
	if err := s.Load("emp", empRows(80)); err != nil {
		t.Fatal(err)
	}
	if err := s.BuildIndexes("emp"); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		owner, err := s.IndexScanAt("emp", "emp_pk", p, p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		backup, err := s.IndexScanAt("emp", "emp_pk", p, (p+1)%4, nil, nil)
		if err != nil {
			t.Fatalf("backup index scan of partition %d: %v", p, err)
		}
		if len(owner) != len(backup) {
			t.Fatalf("partition %d: index rows differ: %d vs %d", p, len(owner), len(backup))
		}
		for i := range owner {
			if owner[i].String() != backup[i].String() {
				t.Fatalf("partition %d index row %d differs across replicas", p, i)
			}
		}
		if _, err := s.IndexScanAt("emp", "emp_pk", p, (p+2)%4, nil, nil); err == nil {
			t.Errorf("partition %d index readable from non-replica site", p)
		}
	}
}
