// Package storage implements gignite's in-memory partitioned row store —
// the substrate Apache Ignite provides in the composed system the paper
// studies. Partitioned tables hash their affinity key across N sites;
// replicated tables keep a full copy at every site. Secondary indexes are
// per-partition sorted permutations, giving index scans a collation the
// planner can exploit (the paper's Q14 sort-order improvement relies on
// this).
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gignite/internal/catalog"
	"gignite/internal/types"
)

// PartitionOf returns the partition for an affinity-key value among n
// sites. It is exported because the distributed hash-join mapping must
// compute the same placement the storage layer used.
func PartitionOf(v types.Value, n int) int {
	if n <= 1 {
		return 0
	}
	return int(v.Hash() % uint64(n))
}

// Store is the cluster-wide storage: every site's partitions live here,
// indexed by site ordinal. One Store instance backs one simulated cluster.
// A Store is safe for concurrent use: reads (Partition, IndexScan,
// RowCount) share an RWMutex read lock, so concurrent SELECT clients
// proceed in parallel while loads and index builds take the write lock.
//
// With backups > 0 every hash partition has an ordered replica chain
// (owner site first, then the backup sites), mirroring Ignite's backup
// partitions. Partition content is stored once per partition; the chain
// determines which sites may serve reads of that partition, so a scan
// whose owner site died can fail over to any surviving replica and read
// identical rows.
type Store struct {
	mu      sync.RWMutex
	sites   int
	backups int
	cat     *catalog.Catalog
	tables  map[string]*TableData
}

// NewStore creates storage for a cluster of the given size with no backup
// partitions (a single copy of every partition).
func NewStore(cat *catalog.Catalog, sites int) *Store {
	return NewReplicatedStore(cat, sites, 0)
}

// NewReplicatedStore creates storage keeping `backups` extra copies of
// every hash partition. The count is capped at sites-1 (there is no point
// replicating a partition onto a site twice).
func NewReplicatedStore(cat *catalog.Catalog, sites, backups int) *Store {
	if sites < 1 {
		sites = 1
	}
	if backups < 0 {
		backups = 0
	}
	if backups > sites-1 {
		backups = sites - 1
	}
	return &Store{sites: sites, backups: backups, cat: cat, tables: make(map[string]*TableData)}
}

// Sites returns the cluster size.
func (s *Store) Sites() int { return s.sites }

// Backups returns the configured backup count per hash partition.
func (s *Store) Backups() int { return s.backups }

// ReplicaSites returns the ordered replica chain of a hash partition: the
// owner site first, then the backup sites in failover order.
func (s *Store) ReplicaSites(partition int) []int {
	out := make([]int, 0, s.backups+1)
	for k := 0; k <= s.backups; k++ {
		out = append(out, (partition+k)%s.sites)
	}
	return out
}

// HoldsReplica reports whether a site holds a copy of a hash partition.
func (s *Store) HoldsReplica(partition, site int) bool {
	for k := 0; k <= s.backups; k++ {
		if (partition+k)%s.sites == site {
			return true
		}
	}
	return false
}

// Catalog returns the catalog backing this store.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// TableData is the stored content of one table across all sites.
type TableData struct {
	Def *catalog.Table
	// partitions[site] is the rows stored at that site. For replicated
	// tables every site holds an identical full copy (stored once,
	// aliased), so reads at any site see all rows.
	partitions [][]types.Row
	// indexes[name][site] is a row-ordinal permutation of partitions[site]
	// sorted by the index key columns.
	indexes map[string][][]int
	// keyCols caches each index's key column ordinals.
	keyCols map[string][]int
}

// ensureTable returns (creating if needed) the TableData for a table.
func (s *Store) ensureTable(name string) (*TableData, error) {
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if td, ok := s.tables[key]; ok {
		return td, nil
	}
	def, err := s.cat.Table(name)
	if err != nil {
		return nil, err
	}
	td := &TableData{
		Def:        def,
		partitions: make([][]types.Row, s.sites),
		indexes:    make(map[string][][]int),
		keyCols:    make(map[string][]int),
	}
	s.tables[key] = td
	return td, nil
}

// Table returns the TableData for a table, creating the (empty) storage on
// first touch.
func (s *Store) Table(name string) (*TableData, error) {
	s.mu.RLock()
	td, ok := s.tables[strings.ToLower(name)]
	s.mu.RUnlock()
	if ok {
		return td, nil
	}
	return s.ensureTable(name)
}

// Load bulk-inserts rows into a table, distributing partitioned tables by
// affinity-key hash and copying replicated tables to all sites. Indexes
// must be built afterwards with BuildIndexes; Load invalidates them.
func (s *Store) Load(name string, rows []types.Row) error {
	td, err := s.ensureTable(name)
	if err != nil {
		return err
	}
	width := len(td.Def.Columns)
	for _, r := range rows {
		if len(r) != width {
			return fmt.Errorf("storage: row width %d does not match table %s (%d columns)",
				len(r), td.Def.Name, width)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if td.Def.Replicated {
		// Store the single copy in partition 0; readers at any site read
		// partition 0 via Partition().
		td.partitions[0] = append(td.partitions[0], rows...)
	} else {
		aff := td.Def.AffinityOrdinal()
		for _, r := range rows {
			p := PartitionOf(r[aff], s.sites)
			td.partitions[p] = append(td.partitions[p], r)
		}
	}
	// Any previously built indexes are stale now.
	td.indexes = make(map[string][][]int)
	td.keyCols = make(map[string][]int)
	return nil
}

// BuildIndexes (re)builds all catalog-declared indexes for a table.
func (s *Store) BuildIndexes(name string) error {
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, idx := range td.Def.Indexes {
		cols := make([]int, len(idx.Columns))
		for i, cn := range idx.Columns {
			cols[i] = td.Def.ColumnIndex(cn)
		}
		keys := make([]types.SortKey, len(cols))
		for i, c := range cols {
			keys[i] = types.SortKey{Col: c}
		}
		perSite := make([][]int, s.sites)
		for site := 0; site < s.sites; site++ {
			rowsAt := td.partitionLocked(site)
			perm := make([]int, len(rowsAt))
			for i := range perm {
				perm[i] = i
			}
			sort.SliceStable(perm, func(a, b int) bool {
				return types.CompareRows(rowsAt[perm[a]], rowsAt[perm[b]], keys) < 0
			})
			perSite[site] = perm
		}
		lname := strings.ToLower(idx.Name)
		td.indexes[lname] = perSite
		td.keyCols[lname] = cols
	}
	return nil
}

// partitionLocked returns the rows visible at a site (caller holds s.mu).
func (td *TableData) partitionLocked(site int) []types.Row {
	if td.Def.Replicated {
		return td.partitions[0]
	}
	return td.partitions[site]
}

// Partition returns the rows visible at a site. For replicated tables this
// is the full table regardless of site.
func (s *Store) Partition(name string, site int) ([]types.Row, error) {
	return s.PartitionAt(name, site, site)
}

// PartitionAt returns one hash partition's rows as read by a host site,
// validating that the host actually holds a replica of that partition
// (the owner or one of its backups). Replicated tables are present at
// every site, so any host qualifies. This is the failover read path: a
// retried fragment instance keeps its logical partition but executes at a
// backup host.
func (s *Store) PartitionAt(name string, partition, host int) ([]types.Row, error) {
	td, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	if partition < 0 || partition >= s.sites {
		return nil, fmt.Errorf("storage: site %d out of range [0,%d)", partition, s.sites)
	}
	if host < 0 || host >= s.sites {
		return nil, fmt.Errorf("storage: host site %d out of range [0,%d)", host, s.sites)
	}
	if !td.Def.Replicated && !s.HoldsReplica(partition, host) {
		return nil, fmt.Errorf("storage: site %d holds no replica of partition %d (%s, backups=%d)",
			host, partition, td.Def.Name, s.backups)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return td.partitionLocked(partition), nil
}

// IndexScan returns the rows at a site in index order. If lo/hi are
// non-nil they bound the leading key column (inclusive): rows with leading
// key < lo or > hi are excluded via binary search.
func (s *Store) IndexScan(name, index string, site int, lo, hi *types.Value) ([]types.Row, error) {
	return s.IndexScanAt(name, index, site, site, lo, hi)
}

// IndexScanAt is IndexScan reading one logical partition from a host site
// that holds a replica of it (see PartitionAt). Indexes are per-partition
// permutations, so a backup host scans the same index in the same order
// the owner would have.
func (s *Store) IndexScanAt(name, index string, partition, host int, lo, hi *types.Value) ([]types.Row, error) {
	td, err := s.Table(name)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lname := strings.ToLower(index)
	perm, ok := td.indexes[lname]
	if !ok {
		return nil, fmt.Errorf("storage: index %s on %s not built", index, name)
	}
	site := partition
	if site < 0 || site >= s.sites {
		return nil, fmt.Errorf("storage: site %d out of range [0,%d)", site, s.sites)
	}
	if host < 0 || host >= s.sites {
		return nil, fmt.Errorf("storage: host site %d out of range [0,%d)", host, s.sites)
	}
	if !td.Def.Replicated && !s.HoldsReplica(partition, host) {
		return nil, fmt.Errorf("storage: site %d holds no replica of partition %d (%s, backups=%d)",
			host, partition, td.Def.Name, s.backups)
	}
	rowsAt := td.partitionLocked(site)
	p := perm[site]
	if td.Def.Replicated {
		p = perm[0]
	}
	leadCol := td.keyCols[lname][0]
	start, end := 0, len(p)
	if lo != nil {
		start = sort.Search(len(p), func(i int) bool {
			return types.Compare(rowsAt[p[i]][leadCol], *lo) >= 0
		})
	}
	if hi != nil {
		end = sort.Search(len(p), func(i int) bool {
			return types.Compare(rowsAt[p[i]][leadCol], *hi) > 0
		})
	}
	if start > end {
		start = end
	}
	out := make([]types.Row, 0, end-start)
	for _, ri := range p[start:end] {
		out = append(out, rowsAt[ri])
	}
	return out, nil
}

// RowCount returns the total number of rows in a table across sites
// (counting replicated tables once).
func (s *Store) RowCount(name string) (int64, error) {
	td, err := s.Table(name)
	if err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if td.Def.Replicated {
		return int64(len(td.partitions[0])), nil
	}
	var n int64
	for _, p := range td.partitions {
		n += int64(len(p))
	}
	return n, nil
}

// PartitionSites returns the number of sites that hold a partition of the
// table: 1 for replicated tables (the paper's Algorithm 2 treats a
// replicated relation as a single partition), else the cluster size.
func (s *Store) PartitionSites(name string) (int, error) {
	td, err := s.Table(name)
	if err != nil {
		return 0, err
	}
	if td.Def.Replicated {
		return 1, nil
	}
	return s.sites, nil
}

// ComputeStats scans a table and fills its catalog statistics: row count,
// per-column NDV and min/max. It mirrors Ignite running with statistics
// collection enabled.
func (s *Store) ComputeStats(name string) error {
	td, err := s.Table(name)
	if err != nil {
		return err
	}
	// Full lock, not RLock: the scan is a read, but the final assignment
	// publishes td.Def.Stats, which concurrent planners read.
	s.mu.Lock()
	defer s.mu.Unlock()
	cols := td.Def.Columns
	distinct := make([]map[uint64][]types.Value, len(cols))
	for i := range distinct {
		distinct[i] = make(map[uint64][]types.Value)
	}
	mins := make([]types.Value, len(cols))
	maxs := make([]types.Value, len(cols))
	var count int64
	limit := s.sites
	if td.Def.Replicated {
		limit = 1
	}
	for site := 0; site < limit; site++ {
		for _, r := range td.partitionLocked(site) {
			count++
			for i, v := range r {
				if v.IsNull() {
					continue
				}
				h := v.Hash()
				found := false
				for _, ex := range distinct[i][h] {
					if types.Equal(ex, v) {
						found = true
						break
					}
				}
				if !found {
					distinct[i][h] = append(distinct[i][h], v)
				}
				if mins[i].IsNull() || types.Compare(v, mins[i]) < 0 {
					mins[i] = v
				}
				if maxs[i].IsNull() || types.Compare(v, maxs[i]) > 0 {
					maxs[i] = v
				}
			}
		}
	}
	stats := &catalog.TableStats{
		RowCount: count,
		NDV:      make(map[string]int64, len(cols)),
		Min:      make(map[string]types.Value, len(cols)),
		Max:      make(map[string]types.Value, len(cols)),
	}
	for i, c := range cols {
		var ndv int64
		for _, bucket := range distinct[i] {
			ndv += int64(len(bucket))
		}
		lc := strings.ToLower(c.Name)
		stats.NDV[lc] = ndv
		stats.Min[lc] = mins[i]
		stats.Max[lc] = maxs[i]
	}
	td.Def.Stats = stats
	return nil
}
