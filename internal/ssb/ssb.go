// Package ssb implements the Star Schema Benchmark substrate (O'Neil et
// al.): the LINEORDER fact table with four dimensions, a deterministic
// generator, and the 13 queries in 4 flights. The deployment mirrors the
// paper's §6.4 setup: LINEORDER partitioned on its order key, dimensions
// partitioned on their primary keys except DDATE (replicated — it is tiny
// and joined by every flight), with the paper's nine indexes.
package ssb

import (
	"fmt"

	"gignite"
	"gignite/internal/types"
)

// DDL returns the five CREATE TABLE statements.
func DDL() []string {
	return []string{
		`CREATE REPLICATED TABLE ddate (
			d_datekey       BIGINT PRIMARY KEY,
			d_date          VARCHAR(19),
			d_month         VARCHAR(9),
			d_year          BIGINT,
			d_yearmonthnum  BIGINT,
			d_yearmonth     VARCHAR(7),
			d_weeknuminyear BIGINT)`,
		`CREATE TABLE customer (
			c_custkey    BIGINT PRIMARY KEY,
			c_name       VARCHAR(25),
			c_address    VARCHAR(25),
			c_city       VARCHAR(10),
			c_nation     VARCHAR(15),
			c_region     VARCHAR(12),
			c_phone      VARCHAR(15),
			c_mktsegment VARCHAR(10))`,
		`CREATE TABLE supplier (
			s_suppkey BIGINT PRIMARY KEY,
			s_name    VARCHAR(25),
			s_address VARCHAR(25),
			s_city    VARCHAR(10),
			s_nation  VARCHAR(15),
			s_region  VARCHAR(12),
			s_phone   VARCHAR(15))`,
		`CREATE TABLE part (
			p_partkey   BIGINT PRIMARY KEY,
			p_name      VARCHAR(22),
			p_mfgr      VARCHAR(6),
			p_category  VARCHAR(7),
			p_brand1    VARCHAR(9),
			p_color     VARCHAR(11),
			p_type      VARCHAR(25),
			p_size      BIGINT,
			p_container VARCHAR(10))`,
		`CREATE TABLE lineorder (
			lo_orderkey      BIGINT,
			lo_linenumber    BIGINT,
			lo_custkey       BIGINT,
			lo_partkey       BIGINT,
			lo_suppkey       BIGINT,
			lo_orderdate     BIGINT,
			lo_orderpriority VARCHAR(15),
			lo_shippriority  BIGINT,
			lo_quantity      BIGINT,
			lo_extendedprice BIGINT,
			lo_ordtotalprice BIGINT,
			lo_discount      BIGINT,
			lo_revenue       BIGINT,
			lo_supplycost    BIGINT,
			lo_tax           BIGINT,
			lo_commitdate    BIGINT,
			lo_shipmode      VARCHAR(10),
			PRIMARY KEY (lo_orderkey)) AFFINITY KEY (lo_orderkey)`,
	}
}

// IndexDDL returns the paper's nine indexes: one per primary key plus the
// four LINEORDER join columns (§6.4).
func IndexDDL() []string {
	return []string{
		`CREATE INDEX idx_ddate_pk ON ddate (d_datekey)`,
		`CREATE INDEX idx_customer_pk ON customer (c_custkey)`,
		`CREATE INDEX idx_supplier_pk ON supplier (s_suppkey)`,
		`CREATE INDEX idx_part_pk ON part (p_partkey)`,
		`CREATE INDEX idx_lo_pk ON lineorder (lo_orderkey, lo_linenumber)`,
		`CREATE INDEX idx_lo_orderdate ON lineorder (lo_orderdate)`,
		`CREATE INDEX idx_lo_partkey ON lineorder (lo_partkey)`,
		`CREATE INDEX idx_lo_suppkey ON lineorder (lo_suppkey)`,
		`CREATE INDEX idx_lo_custkey ON lineorder (lo_custkey)`,
	}
}

// TableNames lists the tables in load order.
func TableNames() []string {
	return []string{"ddate", "customer", "supplier", "part", "lineorder"}
}

// Gen is the deterministic SSB generator.
type Gen struct {
	SF   float64
	Seed uint64
}

// NewGen creates a generator at the given scale factor.
func NewGen(sf float64) *Gen { return &Gen{SF: sf, Seed: 0x5353422D} }

type rng struct{ state uint64 }

func (g *Gen) rowRNG(table string, row int64) *rng {
	h := g.Seed
	for i := 0; i < len(table); i++ {
		h = (h ^ uint64(table[i])) * 0x100000001b3
	}
	h ^= uint64(row) * 0x9E3779B97F4A7C15
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(r.next()%uint64(hi-lo+1))
}

func (r *rng) pick(options []string) string {
	return options[r.next()%uint64(len(options))]
}

// Counts returns base cardinalities at the scale factor.
func (g *Gen) Counts() map[string]int64 {
	scale := func(base float64) int64 {
		n := int64(base * g.SF)
		// Dimension tables keep a floor so that laptop scale factors do
		// not shrink them below the selectivity granularity the queries
		// assume (e.g. one supplier per region).
		if n < 30 {
			n = 30
		}
		return n
	}
	return map[string]int64{
		"customer":  scale(30000),
		"supplier":  scale(2000),
		"part":      scale(200000),
		"lineorder": scale(6000000),
	}
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationsByRegion gives five nations per region (SSB style).
var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "EGYPT", "ETHIOPIA", "KENYA", "MOROCCO"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA", "EGYPT"},
}

var months = []string{"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var colors = []string{"almond", "antique", "aquamarine", "azure", "beige",
	"bisque", "black", "blanched", "blue", "blush", "brown", "burlywood"}

// cityOf derives an SSB city: the nation's first 9 bytes plus a digit.
func cityOf(nation string, r *rng) string {
	base := nation
	if len(base) > 9 {
		base = base[:9]
	}
	for len(base) < 9 {
		base += " "
	}
	return fmt.Sprintf("%s%d", base, r.intn(0, 9))
}

// regionNation draws a (region, nation, city) triple.
func regionNation(r *rng) (string, string, string) {
	region := r.pick(regions)
	nation := r.pick(nationsByRegion[region])
	return region, nation, cityOf(nation, r)
}

// Table generates one table's rows.
func (g *Gen) Table(name string) ([]types.Row, error) {
	switch name {
	case "ddate":
		return g.dates(), nil
	case "customer":
		return g.customers(), nil
	case "supplier":
		return g.suppliers(), nil
	case "part":
		return g.parts(), nil
	case "lineorder":
		return g.lineorders(), nil
	default:
		return nil, fmt.Errorf("ssb: unknown table %s", name)
	}
}

// dateRange covers 1992-01-01 .. 1998-12-31 like the official generator.
func (g *Gen) dates() []types.Row {
	var rows []types.Row
	day := types.DateFromYMD(1992, 1, 1).I
	end := types.DateFromYMD(1998, 12, 31).I
	week := int64(1)
	dayCount := 0
	for d := day; d <= end; d++ {
		t := types.NewDate(d).Time()
		y, m, dd := t.Year(), int(t.Month()), t.Day()
		if m == 1 && dd == 1 {
			week = 1
			dayCount = 0
		}
		dayCount++
		if dayCount%7 == 1 && dayCount > 1 {
			week++
		}
		datekey := int64(y*10000 + m*100 + dd)
		rows = append(rows, types.Row{
			types.NewInt(datekey),
			types.NewString(t.Format("January 2, 2006")),
			types.NewString(months[m-1]),
			types.NewInt(int64(y)),
			types.NewInt(int64(y*100 + m)),
			types.NewString(fmt.Sprintf("%s%d", months[m-1][:3], y)),
			types.NewInt(week),
		})
	}
	return rows
}

func (g *Gen) customers() []types.Row {
	n := g.Counts()["customer"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("customer", i)
		region, nation, city := regionNation(r)
		rows[i] = types.Row{
			types.NewInt(i + 1),
			types.NewString(fmt.Sprintf("Customer#%09d", i+1)),
			types.NewString(fmt.Sprintf("Address%d", r.intn(0, 99999))),
			types.NewString(city),
			types.NewString(nation),
			types.NewString(region),
			types.NewString(fmt.Sprintf("%02d-%03d-%04d", r.intn(10, 34), r.intn(100, 999), r.intn(1000, 9999))),
			types.NewString(r.pick(segments)),
		}
	}
	return rows
}

func (g *Gen) suppliers() []types.Row {
	n := g.Counts()["supplier"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("supplier", i)
		region, nation, city := regionNation(r)
		rows[i] = types.Row{
			types.NewInt(i + 1),
			types.NewString(fmt.Sprintf("Supplier#%09d", i+1)),
			types.NewString(fmt.Sprintf("Address%d", r.intn(0, 99999))),
			types.NewString(city),
			types.NewString(nation),
			types.NewString(region),
			types.NewString(fmt.Sprintf("%02d-%03d-%04d", r.intn(10, 34), r.intn(100, 999), r.intn(1000, 9999))),
		}
	}
	return rows
}

func (g *Gen) parts() []types.Row {
	n := g.Counts()["part"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("part", i)
		mfgr := r.intn(1, 5)
		cat := r.intn(1, 5)
		brand := r.intn(1, 40)
		rows[i] = types.Row{
			types.NewInt(i + 1),
			types.NewString(r.pick(colors) + " " + r.pick(colors)),
			types.NewString(fmt.Sprintf("MFGR#%d", mfgr)),
			types.NewString(fmt.Sprintf("MFGR#%d%d", mfgr, cat)),
			types.NewString(fmt.Sprintf("MFGR#%d%d%02d", mfgr, cat, brand)),
			types.NewString(r.pick(colors)),
			types.NewString(fmt.Sprintf("TYPE%d", r.intn(1, 25))),
			types.NewInt(r.intn(1, 50)),
			types.NewString(fmt.Sprintf("CTR%d", r.intn(1, 10))),
		}
	}
	return rows
}

// dateKeyAt converts an epoch day to a yyyymmdd key.
func dateKeyAt(day int64) int64 {
	t := types.NewDate(day).Time()
	return int64(t.Year()*10000 + int(t.Month())*100 + t.Day())
}

func (g *Gen) lineorders() []types.Row {
	counts := g.Counts()
	n := counts["lineorder"]
	start := types.DateFromYMD(1992, 1, 1).I
	end := types.DateFromYMD(1998, 8, 2).I
	rows := make([]types.Row, n)
	order := int64(0)
	line := int64(1)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("lineorder", i)
		if line == 1 || line > r.intn(1, 7) {
			order++
			line = 1
		}
		day := r.intn(start, end)
		qty := r.intn(1, 50)
		price := r.intn(90000, 200000) / 100 * qty
		discount := r.intn(0, 10)
		revenue := price * (100 - discount) / 100
		rows[i] = types.Row{
			types.NewInt(order),
			types.NewInt(line),
			types.NewInt(r.intn(1, counts["customer"])),
			types.NewInt(r.intn(1, counts["part"])),
			types.NewInt(r.intn(1, counts["supplier"])),
			types.NewInt(dateKeyAt(day)),
			types.NewString("1-URGENT"),
			types.NewInt(0),
			types.NewInt(qty),
			types.NewInt(price),
			types.NewInt(price * 3),
			types.NewInt(discount),
			types.NewInt(revenue),
			types.NewInt(price * 6 / 10),
			types.NewInt(r.intn(0, 8)),
			types.NewInt(dateKeyAt(day + r.intn(30, 90))),
			types.NewString(r.pick(shipModes)),
		}
		line++
	}
	return rows
}

// Setup creates the SSB schema on an engine, loads generated data and
// collects statistics.
func Setup(e *gignite.Engine, sf float64) error {
	for _, ddl := range DDL() {
		if _, err := e.Exec(ddl); err != nil {
			return fmt.Errorf("ssb: ddl: %w", err)
		}
	}
	g := NewGen(sf)
	for _, name := range TableNames() {
		rows, err := g.Table(name)
		if err != nil {
			return err
		}
		if err := e.LoadTable(name, rows); err != nil {
			return fmt.Errorf("ssb: load %s: %w", name, err)
		}
	}
	for _, ddl := range IndexDDL() {
		if _, err := e.Exec(ddl); err != nil {
			return fmt.Errorf("ssb: index ddl: %w", err)
		}
	}
	return e.Analyze()
}
