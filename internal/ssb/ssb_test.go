package ssb

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gignite"
	"gignite/internal/types"
)

const testSF = 0.002

func TestGeneratorShapes(t *testing.T) {
	g := NewGen(testSF)
	dates, _ := g.Table("ddate")
	// 1992-01-01 .. 1998-12-31 is 2557 days.
	if len(dates) != 2557 {
		t.Errorf("ddate rows = %d, want 2557", len(dates))
	}
	seen := map[int64]bool{}
	for _, r := range dates {
		k := r[0].Int()
		if seen[k] {
			t.Fatalf("duplicate datekey %d", k)
		}
		seen[k] = true
		y := r[3].Int()
		if y < 1992 || y > 1998 {
			t.Fatalf("d_year out of range: %d", y)
		}
		if r[4].Int() != y*100+int64(monthIndex(r[2].Str())) {
			t.Fatalf("yearmonthnum inconsistent: %v", r)
		}
	}
	lo, _ := g.Table("lineorder")
	counts := g.Counts()
	if int64(len(lo)) != counts["lineorder"] {
		t.Errorf("lineorder rows = %d", len(lo))
	}
	for _, r := range lo {
		if !seen[r[5].Int()] {
			t.Fatalf("lo_orderdate %d not in ddate", r[5].Int())
		}
		if r[2].Int() < 1 || r[2].Int() > counts["customer"] {
			t.Fatalf("lo_custkey out of range")
		}
		if r[11].Int() < 0 || r[11].Int() > 10 {
			t.Fatalf("lo_discount out of range")
		}
	}
}

func monthIndex(name string) int {
	for i, m := range months {
		if m == name {
			return i + 1
		}
	}
	return 0
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := NewGen(testSF).Table("lineorder")
	b, _ := NewGen(testSF).Table("lineorder")
	if len(a) != len(b) {
		t.Fatal("nondeterministic size")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("row %d differs", i)
		}
	}
}

func canonical(rows []gignite.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.2f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestAllSSBQueriesMatchReference runs all 13 queries (including the
// paper-excluded flights — this reproduction's planner handles them) on
// IC+M/4 sites and cross-checks against the reference interpreter.
func TestAllSSBQueriesMatchReference(t *testing.T) {
	e := gignite.New(gignite.ICPlusM(4))
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		t.Run(q.ID, func(t *testing.T) {
			got, err := e.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s: %v", q.ID, err)
			}
			want, err := e.ReferenceQuery(q.SQL)
			if err != nil {
				t.Fatalf("%s reference: %v", q.ID, err)
			}
			cg, cw := canonical(got.Rows), canonical(want)
			if len(cg) != len(cw) {
				t.Fatalf("%s: %d rows vs reference %d", q.ID, len(cg), len(cw))
			}
			for i := range cg {
				if cg[i] != cw[i] {
					t.Fatalf("%s row %d:\n  engine:    %s\n  reference: %s", q.ID, i, cg[i], cw[i])
				}
			}
		})
	}
}

// TestSSBBaselineRunsIncludedFlights: the flights the paper's §6.4
// evaluation includes (QS1 and QS3) plan and run on the IC baseline under
// the scaled runtime limit. The excluded flights (QS2, QS4) are allowed
// to fail: the paper drops them for Calcite planner timeouts, and this
// reproduction's baseline mis-plans several of them into over-limit
// nested-loop joins (see EXPERIMENTS.md).
func TestSSBBaselineRunsIncludedFlights(t *testing.T) {
	cfg := gignite.IC(4)
	cfg.ExecWorkLimit = 5e10 * testSF
	e := gignite.New(cfg)
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	excluded := ExcludedFlights()
	for _, q := range Queries() {
		if excluded[q.Flight] {
			continue
		}
		if _, err := e.Query(q.SQL); err != nil {
			t.Errorf("%s failed on IC: %v", q.ID, err)
		}
	}
}

func TestExcludedFlights(t *testing.T) {
	ex := ExcludedFlights()
	if !ex[2] || !ex[4] || ex[1] || ex[3] {
		t.Errorf("excluded flights = %v", ex)
	}
	var flights [5]int
	for _, q := range Queries() {
		flights[q.Flight]++
	}
	if flights[1] != 3 || flights[2] != 3 || flights[3] != 4 || flights[4] != 3 {
		t.Errorf("flight sizes = %v", flights)
	}
}

// TestRandomSSBQueryDifferential fuzzes star-schema query shapes against
// the reference interpreter.
func TestRandomSSBQueryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("loads SSB")
	}
	e := gignite.New(gignite.ICPlusM(4))
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	state := uint64(0x55B)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	intn := func(n int) int { return int(next() % uint64(n)) }
	pick := func(opts ...string) string { return opts[next()%uint64(len(opts))] }

	genQuery := func() string {
		switch intn(4) {
		case 0:
			return fmt.Sprintf(`SELECT d_year, SUM(lo_revenue) FROM lineorder, ddate
				WHERE lo_orderdate = d_datekey AND lo_discount BETWEEN %d AND %d
				GROUP BY d_year ORDER BY d_year`, intn(4), 4+intn(6))
		case 1:
			return fmt.Sprintf(`SELECT c_region, COUNT(*) AS n FROM lineorder, customer
				WHERE lo_custkey = c_custkey AND lo_quantity < %d
				GROUP BY c_region ORDER BY n DESC, c_region`, 5+intn(45))
		case 2:
			return fmt.Sprintf(`SELECT s_nation, SUM(lo_revenue - lo_supplycost) AS profit
				FROM lineorder, supplier, ddate
				WHERE lo_suppkey = s_suppkey AND lo_orderdate = d_datekey
				AND d_year = %d AND s_region = '%s'
				GROUP BY s_nation ORDER BY profit DESC, s_nation`,
				1992+intn(7), pick("ASIA", "AMERICA", "EUROPE"))
		default:
			return fmt.Sprintf(`SELECT p_mfgr, COUNT(*), MAX(lo_extendedprice)
				FROM lineorder, part
				WHERE lo_partkey = p_partkey AND p_size BETWEEN %d AND %d
				GROUP BY p_mfgr ORDER BY p_mfgr`, 1+intn(20), 25+intn(25))
		}
	}
	for i := 0; i < 40; i++ {
		q := genQuery()
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("fuzz %d: %v\n%s", i, err, q)
		}
		want, err := e.ReferenceQuery(q)
		if err != nil {
			t.Fatalf("fuzz %d reference: %v\n%s", i, err, q)
		}
		cg, cw := canonical(got.Rows), canonical(want)
		if len(cg) != len(cw) {
			t.Fatalf("fuzz %d: %d vs %d rows\n%s", i, len(cg), len(cw), q)
		}
		for r := range cg {
			if cg[r] != cw[r] {
				t.Fatalf("fuzz %d row %d:\n  %s\n  %s\n%s", i, r, cg[r], cw[r], q)
			}
		}
	}
}
