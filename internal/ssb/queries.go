package ssb

// Query is one SSB query.
type Query struct {
	// ID is the flight.variant label, e.g. "Q1.1".
	ID string
	// Flight is the query set number (1..4).
	Flight int
	SQL    string
}

// Queries returns the 13 SSB queries. The paper's evaluation (§6.4)
// excludes flights 2 and 4 for planner search-space timeouts in
// Ignite+Calcite; the harness reproduces that exclusion at the protocol
// level (this reproduction's planner handles them — see EXPERIMENTS.md).
func Queries() []Query {
	return []Query{
		{ID: "Q1.1", Flight: 1, SQL: `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey
  AND d_year = 1993
  AND lo_discount BETWEEN 1 AND 3
  AND lo_quantity < 25`},

		{ID: "Q1.2", Flight: 1, SQL: `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey
  AND d_yearmonthnum = 199401
  AND lo_discount BETWEEN 4 AND 6
  AND lo_quantity BETWEEN 26 AND 35`},

		{ID: "Q1.3", Flight: 1, SQL: `
SELECT SUM(lo_extendedprice * lo_discount) AS revenue
FROM lineorder, ddate
WHERE lo_orderdate = d_datekey
  AND d_weeknuminyear = 6 AND d_year = 1994
  AND lo_discount BETWEEN 5 AND 7
  AND lo_quantity BETWEEN 26 AND 35`},

		{ID: "Q2.1", Flight: 2, SQL: `
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey
  AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey
  AND p_category = 'MFGR#12'
  AND s_region = 'AMERICA'
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1`},

		{ID: "Q2.2", Flight: 2, SQL: `
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey
  AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey
  AND p_brand1 >= 'MFGR#2221' AND p_brand1 <= 'MFGR#2228'
  AND s_region = 'ASIA'
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1`},

		{ID: "Q2.3", Flight: 2, SQL: `
SELECT SUM(lo_revenue) AS revenue, d_year, p_brand1
FROM lineorder, ddate, part, supplier
WHERE lo_orderdate = d_datekey
  AND lo_partkey = p_partkey
  AND lo_suppkey = s_suppkey
  AND p_brand1 = 'MFGR#2239'
  AND s_region = 'EUROPE'
GROUP BY d_year, p_brand1
ORDER BY d_year, p_brand1`},

		{ID: "Q3.1", Flight: 3, SQL: `
SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_region = 'ASIA' AND s_region = 'ASIA'
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_nation, s_nation, d_year
ORDER BY d_year ASC, revenue DESC`},

		{ID: "Q3.2", Flight: 3, SQL: `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, revenue DESC`},

		{ID: "Q3.3", Flight: 3, SQL: `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
  AND d_year >= 1992 AND d_year <= 1997
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, revenue DESC`},

		{ID: "Q3.4", Flight: 3, SQL: `
SELECT c_city, s_city, d_year, SUM(lo_revenue) AS revenue
FROM customer, lineorder, supplier, ddate
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_orderdate = d_datekey
  AND (c_city = 'UNITED KI1' OR c_city = 'UNITED KI5')
  AND (s_city = 'UNITED KI1' OR s_city = 'UNITED KI5')
  AND d_yearmonth = 'Dec1997'
GROUP BY c_city, s_city, d_year
ORDER BY d_year ASC, revenue DESC`},

		{ID: "Q4.1", Flight: 4, SQL: `
SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder, ddate, customer, supplier, part
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey
  AND lo_orderdate = d_datekey
  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
GROUP BY d_year, c_nation
ORDER BY d_year, c_nation`},

		{ID: "Q4.2", Flight: 4, SQL: `
SELECT d_year, s_nation, p_category, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder, ddate, customer, supplier, part
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey
  AND lo_orderdate = d_datekey
  AND c_region = 'AMERICA' AND s_region = 'AMERICA'
  AND (d_year = 1997 OR d_year = 1998)
  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')
GROUP BY d_year, s_nation, p_category
ORDER BY d_year, s_nation, p_category`},

		{ID: "Q4.3", Flight: 4, SQL: `
SELECT d_year, s_city, p_brand1, SUM(lo_revenue - lo_supplycost) AS profit
FROM lineorder, ddate, customer, supplier, part
WHERE lo_custkey = c_custkey
  AND lo_suppkey = s_suppkey
  AND lo_partkey = p_partkey
  AND lo_orderdate = d_datekey
  AND s_nation = 'UNITED STATES'
  AND (d_year = 1997 OR d_year = 1998)
  AND p_category = 'MFGR#14'
GROUP BY d_year, s_city, p_brand1
ORDER BY d_year, s_city, p_brand1`},
	}
}

// ExcludedFlights lists the query sets the paper's §6.4 evaluation
// excludes (QS2: planner timeout on the modified system; QS4: planner
// timeout on both systems).
func ExcludedFlights() map[int]bool { return map[int]bool{2: true, 4: true} }
