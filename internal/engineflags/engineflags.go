// Package engineflags is the shared option registry behind the gignite
// command-line tools (cmd/gignite, cmd/gignited, cmd/benchrunner).
//
// Every engine knob a CLI exposes is declared exactly once here — name,
// usage string and resolution into functional options — so the three
// binaries stay flag-compatible by construction: "-plancache 64" or
// "-adaptive" mean the same thing to the interactive shell, the network
// daemon and the benchmark runner. Commands bind the registry into their
// own flag.FlagSet (per-command defaults go through Defaults), add their
// command-specific flags (addresses, scale-factor lists, ...), and
// resolve the bound values with Values.Options.
package engineflags

import (
	"flag"
	"fmt"
	"strings"

	"gignite"
)

// Values holds the bound values of the shared engine flags after flag
// parsing.
type Values struct {
	// System selects the paper's system variant: ic, ic+ or ic+m.
	System string
	// Backups is the per-partition backup replica count.
	Backups int
	// Parallelism is the host execution parallelism (0 = GOMAXPROCS).
	Parallelism int
	// Faults is the deterministic fault-plan spec ("" = none).
	Faults string
	// Filters toggles runtime join-filter pushdown.
	Filters bool
	// Admission bounds concurrent queries (0 = unbounded).
	Admission int
	// MaxMem is the engine memory budget in bytes (0 = no pool).
	MaxMem int64
	// QueryMem is the per-query memory cap in bytes (0 = unlimited).
	QueryMem int64
	// Hedge is the straggler-hedging threshold (0 = off).
	Hedge float64
	// PlanCache is the plan-cache capacity in plans (0 = off).
	PlanCache int
	// Adaptive toggles mid-query re-optimization from runtime sketches.
	Adaptive bool
	// Misestimate multiplies the planner's join estimates (0 or 1 =
	// accurate stats).
	Misestimate float64
}

// Defaults carries the per-command default values of the shared flags.
// The zero value means: system ic+, everything else off.
type Defaults struct {
	System    string
	Filters   bool
	Admission int
	Hedge     float64
	PlanCache int
}

// Bind registers the shared engine flags on fs and returns the value
// struct they parse into.
func Bind(fs *flag.FlagSet, d Defaults) *Values {
	if d.System == "" {
		d.System = "ic+"
	}
	v := &Values{}
	fs.StringVar(&v.System, "system", d.System, "system variant: ic, ic+ or ic+m")
	fs.IntVar(&v.Backups, "backups", 0, "backup replicas per partition (0 = none)")
	fs.IntVar(&v.Parallelism, "par", 0, "host execution parallelism (0 = GOMAXPROCS, 1 = sequential)")
	fs.StringVar(&v.Faults, "faults", "", `deterministic fault plan, e.g. "seed=1;crash=2@5;slow=1x4;sendfail=0.01"`)
	fs.BoolVar(&v.Filters, "filters", d.Filters, "enable runtime join-filter pushdown (DESIGN.md §13)")
	fs.IntVar(&v.Admission, "admission", d.Admission, "max concurrent queries (0 = unbounded)")
	fs.Int64Var(&v.MaxMem, "maxmem", 0, "engine-wide memory budget in bytes (0 = no pool)")
	fs.Int64Var(&v.QueryMem, "querymem", 0, "per-query memory cap in bytes (0 = unlimited)")
	fs.Float64Var(&v.Hedge, "hedge", d.Hedge, "hedge stragglers past this multiple of the wave median (0 = off)")
	fs.IntVar(&v.PlanCache, "plancache", d.PlanCache, "plan cache capacity in plans (0 = off)")
	fs.BoolVar(&v.Adaptive, "adaptive", false, "enable adaptive mid-query re-optimization (DESIGN.md §17)")
	fs.Float64Var(&v.Misestimate, "misestimate", 0, "multiply the planner's join estimates by this factor (stats fault injection)")
	return v
}

// Preset resolves the -system flag to its Config constructor. Matching
// is case-insensitive and accepts the spelled-out icplus/icplusm aliases.
func (v *Values) Preset() (func(sites int) gignite.Config, error) {
	switch strings.ToLower(v.System) {
	case "ic":
		return gignite.IC, nil
	case "ic+", "icplus":
		return gignite.ICPlus, nil
	case "ic+m", "icplusm":
		return gignite.ICPlusM, nil
	}
	return nil, fmt.Errorf("unknown -system %q (want ic, ic+ or ic+m)", v.System)
}

// Options resolves the bound values into functional options for a
// cluster of the given size, preset first so command-specific options
// appended after them still win.
func (v *Values) Options(sites int) ([]gignite.Option, error) {
	preset, err := v.Preset()
	if err != nil {
		return nil, err
	}
	fp, err := gignite.ParseFaults(v.Faults)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	opts := []gignite.Option{
		gignite.WithPreset(preset, sites),
		gignite.WithCluster(gignite.ClusterOptions{
			Sites:       sites,
			Backups:     v.Backups,
			Parallelism: v.Parallelism,
			Faults:      fp,
		}),
		gignite.WithGovernance(gignite.GovernanceOptions{
			MaxConcurrentQueries: v.Admission,
			MemoryBudgetBytes:    v.MaxMem,
			QueryMemLimitBytes:   v.QueryMem,
			HedgeAfter:           v.Hedge,
		}),
		gignite.WithPlanCache(v.PlanCache),
		gignite.WithRuntimeFilters(v.Filters),
	}
	if v.Adaptive {
		opts = append(opts, gignite.WithAdaptive(gignite.AdaptiveOptions{Misestimate: v.Misestimate}))
	} else if v.Misestimate != 0 {
		mis := v.Misestimate
		opts = append(opts, func(c *gignite.Config) { c.StatsMisestimate = mis })
	}
	return opts, nil
}
