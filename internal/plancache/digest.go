package plancache

import (
	"hash/fnv"
	"strings"

	"gignite/internal/sql"
)

// Digest computes the cache key for a statement: an FNV-64a hash over the
// statement's token stream with identifiers lower-cased, so queries that
// differ only in whitespace, comments or identifier case share a plan.
// Leading EXPLAIN [ANALYZE] tokens are stripped so EXPLAIN ANALYZE (which
// executes the query) shares the underlying query's cache entry. Literal
// text is hashed verbatim: two queries with different literals are
// different plans — parameter placeholders (`?`) are how callers opt into
// sharing across values.
func Digest(src string) uint64 {
	h := fnv.New64a()
	toks, err := sql.Lex(src)
	if err != nil {
		// Unlexable input cannot produce a plan; hash the raw text so the
		// caller still gets a stable key for its (failing) build attempt.
		h.Write([]byte(src))
		return h.Sum64()
	}
	i := 0
	for i < len(toks) && toks[i].Kind == sql.TokIdent {
		switch strings.ToLower(toks[i].Text) {
		case "explain", "analyze":
			i++
		default:
			goto hash
		}
	}
hash:
	var sep = []byte{0}
	for _, t := range toks[i:] {
		if t.Kind == sql.TokEOF {
			break
		}
		text := t.Text
		if t.Kind == sql.TokIdent {
			text = strings.ToLower(text)
		}
		h.Write([]byte{byte(t.Kind)})
		h.Write([]byte(text))
		h.Write(sep)
	}
	return h.Sum64()
}
