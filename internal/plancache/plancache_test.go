package plancache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"gignite/internal/physical"
)

func mkEntry(version uint64) *Entry {
	return &Entry{Plan: &physical.Values{}, Version: version}
}

func TestGetHitMiss(t *testing.T) {
	c := New(4, Metrics{})
	built := 0
	build := func() (*Entry, error) { built++; return mkEntry(1), nil }

	e1, hit, err := c.Get(100, 1, build)
	if err != nil || hit || e1 == nil {
		t.Fatalf("first Get: entry=%v hit=%v err=%v", e1, hit, err)
	}
	e2, hit, err := c.Get(100, 1, build)
	if err != nil || !hit || e2 != e1 {
		t.Fatalf("second Get: hit=%v same=%v err=%v", hit, e2 == e1, err)
	}
	if built != 1 {
		t.Fatalf("builder ran %d times, want 1", built)
	}
	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2, Metrics{})
	for d := uint64(1); d <= 2; d++ {
		if _, _, err := c.Get(d, 1, func() (*Entry, error) { return mkEntry(1), nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 is the LRU victim.
	if _, hit, _ := c.Get(1, 1, nil); !hit {
		t.Fatal("expected hit on digest 1")
	}
	if _, _, err := c.Get(3, 1, func() (*Entry, error) { return mkEntry(1), nil }); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.Get(1, 1, nil); !hit {
		t.Fatal("digest 1 should have survived eviction")
	}
	rebuilt := false
	if _, hit, _ := c.Get(2, 1, func() (*Entry, error) { rebuilt = true; return mkEntry(1), nil }); hit || !rebuilt {
		t.Fatal("digest 2 should have been evicted")
	}
	if s := c.Snapshot(); s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
}

func TestVersionInvalidation(t *testing.T) {
	c := New(4, Metrics{})
	if _, _, err := c.Get(7, 1, func() (*Entry, error) { return mkEntry(1), nil }); err != nil {
		t.Fatal(err)
	}
	rebuilt := false
	e, hit, err := c.Get(7, 2, func() (*Entry, error) { rebuilt = true; return mkEntry(2), nil })
	if err != nil || hit || !rebuilt {
		t.Fatalf("stale entry not rebuilt: hit=%v rebuilt=%v err=%v", hit, rebuilt, err)
	}
	if e.Version != 2 {
		t.Fatalf("entry version = %d, want 2", e.Version)
	}
	if _, hit, _ := c.Get(7, 2, nil); !hit {
		t.Fatal("rebuilt entry should hit at the new version")
	}
}

func TestBuildErrorNotCached(t *testing.T) {
	c := New(4, Metrics{})
	boom := errors.New("no such table")
	if _, _, err := c.Get(9, 1, func() (*Entry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed build must not be cached")
	}
	if _, hit, err := c.Get(9, 1, func() (*Entry, error) { return mkEntry(1), nil }); hit || err != nil {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
}

func TestSingleflightCoalescesConcurrentMisses(t *testing.T) {
	c := New(4, Metrics{})
	var builds atomic.Int32
	release := make(chan struct{})
	build := func() (*Entry, error) {
		builds.Add(1)
		<-release
		return mkEntry(1), nil
	}
	const n = 16
	var wg sync.WaitGroup
	hits := make([]bool, n)
	entries := make([]*Entry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.Get(42, 1, build)
			if err != nil {
				t.Error(err)
			}
			hits[i], entries[i] = hit, e
		}(i)
	}
	// Let the goroutines pile up on the single in-flight build, then free it.
	for builds.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	misses := 0
	for i := range hits {
		if !hits[i] {
			misses++
		}
		if entries[i] != entries[0] {
			t.Fatal("waiters must share the builder's entry")
		}
	}
	if misses != 1 {
		t.Fatalf("%d goroutines reported a miss, want exactly 1", misses)
	}
}

func TestDigestNormalization(t *testing.T) {
	base := Digest("SELECT a FROM t WHERE a > ?")
	same := []string{
		"select a from t where a > ?",
		"SELECT  a\nFROM t  WHERE a > ?",
		"Select A From T Where A > ?",
		"EXPLAIN ANALYZE SELECT a FROM t WHERE a > ?",
	}
	for _, q := range same {
		if Digest(q) != base {
			t.Errorf("Digest(%q) differs from base", q)
		}
	}
	diff := []string{
		"SELECT a FROM t WHERE a > 1",
		"SELECT a FROM t WHERE a >= ?",
		"SELECT b FROM t WHERE a > ?",
		"SELECT 'a' FROM t WHERE a > ?",
	}
	for _, q := range diff {
		if Digest(q) == base {
			t.Errorf("Digest(%q) should differ from base", q)
		}
	}
	// Literal case is significant even though identifier case is not.
	if Digest("SELECT 'abc'") == Digest("SELECT 'ABC'") {
		t.Error("string literal case must be significant")
	}
}
