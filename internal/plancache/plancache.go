// Package plancache caches optimized physical plans keyed by a normalized
// digest of the statement text, so repeated executions of the same query
// shape — in particular prepared statements with `?` parameters — skip
// parsing, validation and cost-based optimization entirely.
//
// This mirrors the Calcite-in-Ignite arrangement the paper studies: Ignite
// fronts Calcite with a bounded query-plan cache because planning is a
// significant fraction of short-query latency. Entries store the pristine
// pre-fragmentation plan; executions clone it (fragmentation rewires trees
// in place) and substitute parameter values into the clone. Plans are
// invalidated by catalog version: any schema or statistics change bumps
// the version and lazily evicts stale entries on next lookup.
package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/types"
)

// Entry is one cached plan. Plan is the pristine pre-Split physical tree;
// callers must clone it (physical.CloneTree) before fragmenting or
// executing. ParamKinds holds the bind-time type hint for each `?`
// placeholder (types.KindNull when no hint was derivable). Tickets records
// the optimizer work the original planning pass spent, so cache hits can
// report a stable planning-cost figure.
type Entry struct {
	Plan       physical.Node
	ParamKinds []types.Kind
	Tickets    int
	// Version is the catalog version the plan was built against. An entry
	// whose version no longer matches the live catalog is stale.
	Version uint64
}

// Metrics holds optional observability counters. Any field may be nil.
type Metrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
}

// Stats is a point-in-time snapshot of cache behaviour.
type Stats struct {
	Size      int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Cache is a bounded LRU plan cache, safe for concurrent use. Concurrent
// misses on the same digest are coalesced: exactly one goroutine runs the
// builder while the rest wait and share its result, so a burst of
// identical queries costs a single planning pass.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *slot
	entries  map[uint64]*list.Element
	building map[uint64]*buildCall

	metrics   Metrics
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type slot struct {
	key   uint64
	entry *Entry
}

type buildCall struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// New returns a cache holding at most capacity plans. Capacity must be
// positive; a disabled cache is represented by not constructing one.
func New(capacity int, metrics Metrics) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[uint64]*list.Element),
		building: make(map[uint64]*buildCall),
		metrics:  metrics,
	}
}

// Get returns the cached plan for digest, building and inserting it on a
// miss. version is the live catalog version: a cached entry built against
// an older version is discarded and rebuilt. hit reports whether planning
// was skipped — waiters coalesced onto another goroutine's in-flight build
// count as hits, since they did no planning work themselves.
func (c *Cache) Get(digest, version uint64, build func() (*Entry, error)) (e *Entry, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[digest]; ok {
		s := el.Value.(*slot)
		if s.entry.Version == version {
			c.ll.MoveToFront(el)
			c.mu.Unlock()
			c.recordHit()
			return s.entry, true, nil
		}
		// Stale: schema or stats changed since this plan was built.
		c.removeLocked(el, false)
	}
	if call, ok := c.building[digest]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, call.err
		}
		c.recordHit()
		return call.entry, true, nil
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[digest] = call
	c.mu.Unlock()

	call.entry, call.err = build()
	close(call.done)

	c.mu.Lock()
	delete(c.building, digest)
	if call.err == nil {
		c.insertLocked(digest, call.entry)
	}
	c.mu.Unlock()
	c.recordMiss()
	if call.err != nil {
		return nil, false, call.err
	}
	return call.entry, false, nil
}

// Invalidate drops every cached plan. Used by tests and by callers that
// cannot express an invalidation as a version bump.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.entries {
		c.removeLocked(el, false)
	}
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Snapshot returns current cache statistics.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	return Stats{
		Size:      size,
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

func (c *Cache) insertLocked(digest uint64, e *Entry) {
	if el, ok := c.entries[digest]; ok {
		// A concurrent builder for a different version may have raced us in;
		// keep the newest.
		el.Value.(*slot).entry = e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[digest] = c.ll.PushFront(&slot{key: digest, entry: e})
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back(), true)
	}
}

func (c *Cache) removeLocked(el *list.Element, evicted bool) {
	s := el.Value.(*slot)
	c.ll.Remove(el)
	delete(c.entries, s.key)
	if evicted {
		c.evictions.Add(1)
		if c.metrics.Evictions != nil {
			c.metrics.Evictions.Inc()
		}
	}
}

func (c *Cache) recordHit() {
	c.hits.Add(1)
	if c.metrics.Hits != nil {
		c.metrics.Hits.Inc()
	}
}

func (c *Cache) recordMiss() {
	c.misses.Add(1)
	if c.metrics.Misses != nil {
		c.metrics.Misses.Inc()
	}
}
