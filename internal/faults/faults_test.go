package faults

import (
	"errors"
	"fmt"
	"testing"
)

func TestParseFull(t *testing.T) {
	p, err := Parse("seed=7; crash=2@3; slow=1x2.5; sendfail=0.05; crash=0@9; mem=1@65536")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Errorf("seed = %d", p.Seed)
	}
	if p.Crashes[2] != 3 || p.Crashes[0] != 9 {
		t.Errorf("crashes = %v", p.Crashes)
	}
	if p.Slowdowns[1] != 2.5 {
		t.Errorf("slowdowns = %v", p.Slowdowns)
	}
	if p.SendFailRate != 0.05 {
		t.Errorf("sendfail = %v", p.SendFailRate)
	}
	if p.MemLimits[1] != 65536 {
		t.Errorf("mem limits = %v", p.MemLimits)
	}
}

func TestMemLimitInjector(t *testing.T) {
	in := New(&Plan{MemLimits: map[int]int64{2: 4096}})
	if got := in.MemLimit(2); got != 4096 {
		t.Errorf("MemLimit(2) = %d", got)
	}
	if got := in.MemLimit(0); got != 0 {
		t.Errorf("MemLimit(0) = %d, want 0 (unlimited)", got)
	}
	var nilIn *Injector
	if got := nilIn.MemLimit(2); got != 0 {
		t.Errorf("nil injector MemLimit = %d", got)
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("   ")
	if err != nil || p != nil {
		t.Fatalf("empty spec: plan=%v err=%v", p, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"crash=1",             // missing @ordinal
		"crash=x@1",           // bad site
		"crash=1@x",           // bad ordinal
		"crash=1@-2",          // negative ordinal
		"crash=-1@2",          // negative site
		"crash=1@1;crash=1@2", // duplicate site
		"slow=1",              // missing factor
		"slow=1x0.5",          // factor < 1
		"slow=ax2",            // bad site
		"sendfail=1.5",        // rate out of range
		"sendfail=-0.1",       // negative rate
		"seed=abc",            // bad seed
		"bogus=1",             // unknown key
		"crash",               // not key=value
		"mem=1",               // missing @bytes
		"mem=1@0",             // zero pool
		"mem=1@-1",            // negative pool
		"mem=x@4096",          // bad site
		"mem=1@x",             // bad bytes
		"mem=1@1;mem=1@2",     // duplicate site
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7;crash=2@3;slow=1x2.5;sendfail=0.05",
		"seed=1;crash=0@0",
		"seed=42;sendfail=0.25",
		"seed=3;slow=0x2;mem=1@65536",
		"mem=0@1;mem=3@9223372036854775807",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if fmt.Sprint(p) == "" || again.String() != p.String() {
			t.Errorf("round trip: %q -> %q -> %q", spec, p.String(), again.String())
		}
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in != New(nil) {
		t.Error("New(nil) should be nil")
	}
	if _, ok := in.CrashPoint(0); ok {
		t.Error("nil injector crashes")
	}
	if in.Slowdown(3) != 1 {
		t.Error("nil injector slows")
	}
	if in.SendFails(1, 2, 3, 0, 1, 0) {
		t.Error("nil injector fails sends")
	}
}

func TestSendFailsDeterministicAndSeeded(t *testing.T) {
	a := New(&Plan{Seed: 1, SendFailRate: 0.3})
	b := New(&Plan{Seed: 2, SendFailRate: 0.3})
	var fails, diverge int
	const trials = 2000
	for i := 0; i < trials; i++ {
		fa := a.SendFails(i, 1, i%4, 0, (i+1)%4, 0)
		if fa != a.SendFails(i, 1, i%4, 0, (i+1)%4, 0) {
			t.Fatal("SendFails is not deterministic")
		}
		if fa {
			fails++
		}
		if fa != b.SendFails(i, 1, i%4, 0, (i+1)%4, 0) {
			diverge++
		}
	}
	// The empirical rate should be near 0.3 and seeds must matter.
	if fails < trials/5 || fails > trials/2 {
		t.Errorf("failure rate %d/%d far from 0.3", fails, trials)
	}
	if diverge == 0 {
		t.Error("seed has no effect on send failures")
	}
}

func TestSendFailsAttemptRedraws(t *testing.T) {
	in := New(&Plan{Seed: 9, SendFailRate: 0.5})
	// Across many identities, the attempt number must flip some outcomes:
	// a retried send is a fresh draw, not a permanently failed link.
	flipped := false
	for i := 0; i < 100 && !flipped; i++ {
		flipped = in.SendFails(i, 0, 0, 0, 0, 0) != in.SendFails(i, 0, 0, 0, 0, 1)
	}
	if !flipped {
		t.Error("attempt number never changes a send outcome")
	}
}

func TestInjectedErrors(t *testing.T) {
	if !Injected(fmt.Errorf("wrap: %w", ErrSiteCrash)) {
		t.Error("wrapped crash not detected")
	}
	if !Injected(ErrSendFail) {
		t.Error("send failure not detected")
	}
	if !Injected(fmt.Errorf("wrap: %w", ErrSiteMem)) {
		t.Error("wrapped site-memory exhaustion not detected")
	}
	if Injected(errors.New("plain")) {
		t.Error("plain error detected as injected")
	}
}
