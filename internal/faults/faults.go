// Package faults implements deterministic fault injection for the
// simulated cluster. A Plan is a seedable description of what goes wrong
// during a query — site crashes, slow sites, flaky transport links — and
// an Injector evaluates that plan with pure functions of deterministic
// execution coordinates (instance ordinals, exchange identities, attempt
// numbers). Nothing in this package consults wall-clock time or mutable
// shared state, so a fault plan produces the same failures, the same
// retries and the same modeled costs at every host worker count.
//
// The string spec form (the benchrunner -faults flag) is a
// semicolon-separated list of terms:
//
//	seed=N          PRNG seed for probabilistic faults (default 1)
//	crash=S@N       site S crashes when instance ordinal N starts there
//	slow=SxF        site S runs F times slower (F >= 1, float)
//	sendfail=R      every transport send fails with probability R (0..1)
//	mem=S@B         site S's memory pool shrinks to B bytes (> 0); any
//	                instance charging past it fails with ErrSiteMem
//
// Example: "seed=7;crash=2@3;slow=1x2.5;sendfail=0.05;mem=0@65536".
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Injected fault errors. The cluster's retry scheduler treats any error
// wrapping one of these as retryable on another replica.
var (
	// ErrSiteCrash reports an instance lost to an injected site crash.
	ErrSiteCrash = errors.New("faults: injected site crash")
	// ErrSendFail reports an injected transport send failure.
	ErrSendFail = errors.New("faults: injected transport send failure")
	// ErrSiteMem reports an instance that exhausted its site's injected
	// memory pool (the mem=S@B term). The site itself stays alive; only
	// instances whose state outgrows the pool fail there.
	ErrSiteMem = errors.New("faults: injected site memory exhaustion")
)

// Injected reports whether err is (or wraps) an injected fault, i.e. a
// failure the retry scheduler may recover from by failing over.
func Injected(err error) bool {
	return errors.Is(err, ErrSiteCrash) || errors.Is(err, ErrSendFail) || errors.Is(err, ErrSiteMem)
}

// Plan is one deterministic fault scenario. The zero value (and a nil
// *Plan) injects nothing.
type Plan struct {
	// Seed drives the probabilistic faults (send failures). Two runs with
	// the same plan observe identical fault sequences.
	Seed uint64
	// Crashes maps site → instance ordinal at which the site dies. The
	// instance holding that ordinal loses its in-flight work (it executes,
	// then its outputs are discarded); every later instance ordinal finds
	// the site already dead.
	Crashes map[int]int
	// Slowdowns maps site → CPU slowdown factor (>= 1). A slow site's
	// instances are charged factor× work in the simnet trace.
	Slowdowns map[int]float64
	// SendFailRate is the probability in [0, 1) that any one transport
	// send attempt fails. Retries rehash with their attempt number, so a
	// failed send can succeed when retried.
	SendFailRate float64
	// MemLimits maps site → memory pool size in bytes. An instance whose
	// charged operator state exceeds its host site's pool fails with
	// ErrSiteMem; the failure is a pure function of the instance's charges,
	// so it is identical at every worker count.
	MemLimits map[int]int64
}

// Parse decodes the string spec form. An empty spec returns (nil, nil).
// Malformed specs return an error; Parse never panics (fuzzed).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		key, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("faults: term %q is not key=value", term)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", val, err)
			}
			p.Seed = n
		case "crash":
			sitePart, ordPart, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faults: crash %q is not SITE@ORDINAL", val)
			}
			site, err := parseSite(sitePart)
			if err != nil {
				return nil, err
			}
			ord, err := strconv.Atoi(strings.TrimSpace(ordPart))
			if err != nil || ord < 0 {
				return nil, fmt.Errorf("faults: bad crash ordinal %q", ordPart)
			}
			if p.Crashes == nil {
				p.Crashes = make(map[int]int)
			}
			if prev, dup := p.Crashes[site]; dup {
				return nil, fmt.Errorf("faults: site %d crashes twice (@%d and @%d)", site, prev, ord)
			}
			p.Crashes[site] = ord
		case "slow":
			sitePart, facPart, ok := strings.Cut(val, "x")
			if !ok {
				return nil, fmt.Errorf("faults: slow %q is not SITExFACTOR", val)
			}
			site, err := parseSite(sitePart)
			if err != nil {
				return nil, err
			}
			fac, err := strconv.ParseFloat(strings.TrimSpace(facPart), 64)
			if err != nil || fac < 1 || fac > 1e6 {
				return nil, fmt.Errorf("faults: bad slowdown factor %q (want 1..1e6)", facPart)
			}
			if p.Slowdowns == nil {
				p.Slowdowns = make(map[int]float64)
			}
			p.Slowdowns[site] = fac
		case "sendfail":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r >= 1 {
				return nil, fmt.Errorf("faults: bad sendfail rate %q (want [0,1))", val)
			}
			p.SendFailRate = r
		case "mem":
			sitePart, bytesPart, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faults: mem %q is not SITE@BYTES", val)
			}
			site, err := parseSite(sitePart)
			if err != nil {
				return nil, err
			}
			b, err := strconv.ParseInt(strings.TrimSpace(bytesPart), 10, 64)
			if err != nil || b <= 0 {
				return nil, fmt.Errorf("faults: bad mem bytes %q (want > 0)", bytesPart)
			}
			if p.MemLimits == nil {
				p.MemLimits = make(map[int]int64)
			}
			if prev, dup := p.MemLimits[site]; dup {
				return nil, fmt.Errorf("faults: site %d has two mem limits (@%d and @%d)", site, prev, b)
			}
			p.MemLimits[site] = b
		default:
			return nil, fmt.Errorf("faults: unknown term %q", key)
		}
	}
	return p, nil
}

func parseSite(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("faults: bad site %q", s)
	}
	return n, nil
}

// String renders the plan back into spec form (Parse(p.String()) is
// equivalent to p). A nil plan renders as "".
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var terms []string
	terms = append(terms, fmt.Sprintf("seed=%d", p.Seed))
	for _, site := range sortedKeys(p.Crashes) {
		terms = append(terms, fmt.Sprintf("crash=%d@%d", site, p.Crashes[site]))
	}
	for _, site := range sortedKeys(p.Slowdowns) {
		terms = append(terms, fmt.Sprintf("slow=%dx%g", site, p.Slowdowns[site]))
	}
	for _, site := range sortedKeys(p.MemLimits) {
		terms = append(terms, fmt.Sprintf("mem=%d@%d", site, p.MemLimits[site]))
	}
	if p.SendFailRate > 0 {
		terms = append(terms, fmt.Sprintf("sendfail=%g", p.SendFailRate))
	}
	return strings.Join(terms, ";")
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Injector evaluates a Plan. All methods are pure functions of their
// arguments (plus the plan), safe for concurrent use, and work on a nil
// receiver (injecting nothing).
type Injector struct {
	plan *Plan
}

// New creates an injector for a plan. A nil plan yields a nil injector,
// which is valid and injects nothing.
func New(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p}
}

// CrashPoint returns the instance ordinal at which a site dies, and
// whether the plan crashes that site at all.
func (in *Injector) CrashPoint(site int) (int, bool) {
	if in == nil || in.plan.Crashes == nil {
		return 0, false
	}
	ord, ok := in.plan.Crashes[site]
	return ord, ok
}

// Slowdown returns the CPU slowdown factor for a site (1 = full speed).
func (in *Injector) Slowdown(site int) float64 {
	if in == nil || in.plan.Slowdowns == nil {
		return 1
	}
	if f, ok := in.plan.Slowdowns[site]; ok && f > 1 {
		return f
	}
	return 1
}

// MemLimit returns the injected memory pool size for a site, or 0 when
// the site's memory is unlimited.
func (in *Injector) MemLimit(site int) int64 {
	if in == nil || in.plan.MemLimits == nil {
		return 0
	}
	return in.plan.MemLimits[site]
}

// SendFailRate returns the plan's transport failure probability.
func (in *Injector) SendFailRate() float64 {
	if in == nil {
		return 0
	}
	return in.plan.SendFailRate
}

// SendFails decides deterministically whether one transport send attempt
// fails: it hashes the send's full identity (exchange, sender fragment,
// logical sender site, variant, target site, attempt) with the plan seed
// and compares against the failure rate. Because the attempt number is
// part of the identity, a retried send draws a fresh outcome.
func (in *Injector) SendFails(exchange, fromFrag, fromSite, fromVariant, toSite, attempt int) bool {
	if in == nil || in.plan.SendFailRate <= 0 {
		return false
	}
	h := in.plan.Seed
	for _, v := range [...]int{exchange, fromFrag, fromSite, fromVariant, toSite, attempt} {
		h = splitmix64(h ^ uint64(int64(v)))
	}
	// Map the hash to [0,1) and compare with the rate.
	return float64(h>>11)/float64(1<<53) < in.plan.SendFailRate
}

// splitmix64 is the SplitMix64 finalizer — a strong, allocation-free
// mixer for deterministic per-event coin flips.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
