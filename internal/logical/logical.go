// Package logical defines the logical relational operators produced by the
// binder and transformed by the optimizer rules — the gignite analogue of
// Calcite's logical RelNode layer. Logical operators are agnostic to the
// execution environment: they carry no physical traits. The physical
// package mirrors this algebra with trait-bearing operators.
package logical

import (
	"fmt"
	"strconv"
	"strings"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/types"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the output row schema.
	Schema() types.Fields
	// Inputs returns the child operators.
	Inputs() []Node
	// WithInputs returns a copy of the node with new children, in order.
	WithInputs(inputs []Node) Node
	// Digest returns a canonical string; equal digests mean identical
	// subplans (the memo keys on this).
	Digest() string
}

// JoinType enumerates logical join kinds. Semi and anti joins are produced
// by subquery decorrelation (EXISTS → semi, NOT EXISTS / NOT IN → anti).
type JoinType uint8

const (
	// JoinInner keeps matched pairs.
	JoinInner JoinType = iota
	// JoinLeft keeps all left rows, NULL-padding unmatched ones.
	JoinLeft
	// JoinSemi keeps left rows with at least one match; output is the
	// left schema only.
	JoinSemi
	// JoinAnti keeps left rows with no match; output is the left schema
	// only.
	JoinAnti
)

var joinNames = [...]string{
	JoinInner: "inner", JoinLeft: "left", JoinSemi: "semi", JoinAnti: "anti",
}

// String names the join type.
func (t JoinType) String() string { return joinNames[t] }

// ProjectsLeftOnly reports whether the join's output is just the left
// schema (semi/anti joins).
func (t JoinType) ProjectsLeftOnly() bool { return t == JoinSemi || t == JoinAnti }

// ---------------------------------------------------------------------------
// Scan

// Scan reads a base table in full.
type Scan struct {
	Table *catalog.Table
	// Alias qualifies output column names so self-joins stay unambiguous.
	Alias  string
	fields types.Fields
}

// NewScan builds a table scan with alias-qualified column names.
func NewScan(t *catalog.Table, alias string) *Scan {
	if alias == "" {
		alias = t.Name
	}
	fs := make(types.Fields, len(t.Columns))
	for i, c := range t.Columns {
		fs[i] = types.Field{
			Name: strings.ToLower(alias) + "." + strings.ToLower(c.Name),
			Kind: c.Kind,
		}
	}
	return &Scan{Table: t, Alias: alias, fields: fs}
}

func (s *Scan) Schema() types.Fields { return s.fields }
func (s *Scan) Inputs() []Node       { return nil }

func (s *Scan) WithInputs(inputs []Node) Node {
	mustInputs("Scan", inputs, 0)
	return s
}

func (s *Scan) Digest() string {
	return fmt.Sprintf("Scan(%s as %s)", s.Table.Name, s.Alias)
}

// ---------------------------------------------------------------------------
// Filter

// Filter keeps rows where Cond evaluates to TRUE.
type Filter struct {
	Input Node
	Cond  expr.Expr
}

// NewFilter builds a filter.
func NewFilter(input Node, cond expr.Expr) *Filter {
	return &Filter{Input: input, Cond: cond}
}

func (f *Filter) Schema() types.Fields { return f.Input.Schema() }
func (f *Filter) Inputs() []Node       { return []Node{f.Input} }

func (f *Filter) WithInputs(inputs []Node) Node {
	mustInputs("Filter", inputs, 1)
	return NewFilter(inputs[0], f.Cond)
}

func (f *Filter) Digest() string {
	return fmt.Sprintf("Filter(%s)[%s]", f.Cond, f.Input.Digest())
}

// ---------------------------------------------------------------------------
// Project

// Project computes output columns from input columns.
type Project struct {
	Input  Node
	Exprs  []expr.Expr
	Names  []string
	fields types.Fields
}

// NewProject builds a projection; names label the output columns.
func NewProject(input Node, exprs []expr.Expr, names []string) *Project {
	fs := make(types.Fields, len(exprs))
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = fmt.Sprintf("expr%d", i)
		}
		fs[i] = types.Field{Name: strings.ToLower(name), Kind: e.Kind()}
	}
	return &Project{Input: input, Exprs: exprs, Names: fs.Names(), fields: fs}
}

// IdentityProject builds a projection passing through specific input
// columns.
func IdentityProject(input Node, cols []int) *Project {
	in := input.Schema()
	exprs := make([]expr.Expr, len(cols))
	names := make([]string, len(cols))
	for i, c := range cols {
		exprs[i] = expr.NewColRef(c, in[c].Kind, in[c].Name)
		names[i] = in[c].Name
	}
	return NewProject(input, exprs, names)
}

func (p *Project) Schema() types.Fields { return p.fields }
func (p *Project) Inputs() []Node       { return []Node{p.Input} }

func (p *Project) WithInputs(inputs []Node) Node {
	mustInputs("Project", inputs, 1)
	return NewProject(inputs[0], p.Exprs, p.Names)
}

func (p *Project) Digest() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return fmt.Sprintf("Project(%s)[%s]", strings.Join(parts, ", "), p.Input.Digest())
}

// IsTrivial reports whether the projection is the identity over its input.
func (p *Project) IsTrivial() bool {
	in := p.Input.Schema()
	if len(p.Exprs) != len(in) {
		return false
	}
	for i, e := range p.Exprs {
		c, ok := e.(*expr.ColRef)
		if !ok || c.Index != i {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Join

// Join combines two inputs under a condition evaluated over the
// concatenated (left ++ right) row.
type Join struct {
	Left, Right Node
	Type        JoinType
	Cond        expr.Expr
	// FromCorrelate marks joins produced by subquery decorrelation. The
	// paper's FILTER_CORRELATE rule is what allows filters to be pushed
	// past such joins; without it (the IC baseline) pushdown stops here.
	FromCorrelate bool
}

// NewJoin builds a join.
func NewJoin(left, right Node, jt JoinType, cond expr.Expr) *Join {
	return &Join{Left: left, Right: right, Type: jt, Cond: cond}
}

func (j *Join) Schema() types.Fields {
	if j.Type.ProjectsLeftOnly() {
		return j.Left.Schema()
	}
	return j.Left.Schema().Concat(j.Right.Schema())
}

func (j *Join) Inputs() []Node { return []Node{j.Left, j.Right} }

func (j *Join) WithInputs(inputs []Node) Node {
	mustInputs("Join", inputs, 2)
	nj := NewJoin(inputs[0], inputs[1], j.Type, j.Cond)
	nj.FromCorrelate = j.FromCorrelate
	return nj
}

func (j *Join) Digest() string {
	corr := ""
	if j.FromCorrelate {
		corr = ",corr"
	}
	return fmt.Sprintf("Join(%s%s,%s)[%s][%s]",
		j.Type, corr, j.Cond, j.Left.Digest(), j.Right.Digest())
}

// ---------------------------------------------------------------------------
// Aggregate

// Aggregate groups by column ordinals and computes aggregate calls. With
// no group columns it is a scalar aggregate producing exactly one row.
// With no calls it is DISTINCT over the group columns.
type Aggregate struct {
	Input   Node
	GroupBy []int
	Aggs    []expr.AggCall
	fields  types.Fields
}

// NewAggregate builds an aggregation.
func NewAggregate(input Node, groupBy []int, aggs []expr.AggCall) *Aggregate {
	in := input.Schema()
	fs := make(types.Fields, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		fs = append(fs, in[g])
	}
	for i, a := range aggs {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("agg%d", i)
		}
		fs = append(fs, types.Field{Name: strings.ToLower(name), Kind: a.Kind()})
	}
	return &Aggregate{Input: input, GroupBy: groupBy, Aggs: aggs, fields: fs}
}

func (a *Aggregate) Schema() types.Fields { return a.fields }
func (a *Aggregate) Inputs() []Node       { return []Node{a.Input} }

func (a *Aggregate) WithInputs(inputs []Node) Node {
	mustInputs("Aggregate", inputs, 1)
	return NewAggregate(inputs[0], a.GroupBy, a.Aggs)
}

func (a *Aggregate) Digest() string {
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = strconv.Itoa(g)
	}
	return fmt.Sprintf("Aggregate(group=[%s],aggs=[%s])[%s]",
		strings.Join(groups, ","), expr.DescribeAggs(a.Aggs), a.Input.Digest())
}

// HasDistinct reports whether any call is DISTINCT (such aggregates cannot
// be split into distributed partials).
func (a *Aggregate) HasDistinct() bool {
	for _, c := range a.Aggs {
		if c.Distinct {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Sort / Limit

// Sort orders its input.
type Sort struct {
	Input Node
	Keys  []types.SortKey
}

// NewSort builds a sort.
func NewSort(input Node, keys []types.SortKey) *Sort {
	return &Sort{Input: input, Keys: keys}
}

func (s *Sort) Schema() types.Fields { return s.Input.Schema() }
func (s *Sort) Inputs() []Node       { return []Node{s.Input} }

func (s *Sort) WithInputs(inputs []Node) Node {
	mustInputs("Sort", inputs, 1)
	return NewSort(inputs[0], s.Keys)
}

func (s *Sort) Digest() string {
	return fmt.Sprintf("Sort(%s)[%s]", DescribeKeys(s.Keys), s.Input.Digest())
}

// DescribeKeys renders sort keys for digests.
func DescribeKeys(keys []types.SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("%d %s", k.Col, dir)
	}
	return strings.Join(parts, ",")
}

// Limit passes through at most N rows.
type Limit struct {
	Input Node
	N     int64
}

// NewLimit builds a limit.
func NewLimit(input Node, n int64) *Limit { return &Limit{Input: input, N: n} }

func (l *Limit) Schema() types.Fields { return l.Input.Schema() }
func (l *Limit) Inputs() []Node       { return []Node{l.Input} }

func (l *Limit) WithInputs(inputs []Node) Node {
	mustInputs("Limit", inputs, 1)
	return NewLimit(inputs[0], l.N)
}

func (l *Limit) Digest() string {
	return fmt.Sprintf("Limit(%d)[%s]", l.N, l.Input.Digest())
}

// ---------------------------------------------------------------------------
// Values

// Values is an inline relation of literal rows.
type Values struct {
	Rows   []types.Row
	fields types.Fields
}

// NewValues builds an inline relation.
func NewValues(fields types.Fields, rows []types.Row) *Values {
	return &Values{Rows: rows, fields: fields}
}

func (v *Values) Schema() types.Fields { return v.fields }
func (v *Values) Inputs() []Node       { return nil }

func (v *Values) WithInputs(inputs []Node) Node {
	mustInputs("Values", inputs, 0)
	return v
}

func (v *Values) Digest() string {
	return fmt.Sprintf("Values(%d rows, %s)", len(v.Rows), v.fields)
}

// ---------------------------------------------------------------------------
// Tree utilities

func mustInputs(node string, inputs []Node, want int) {
	if len(inputs) != want {
		panic(fmt.Sprintf("logical: %s.WithInputs got %d inputs, want %d",
			node, len(inputs), want))
	}
}

// Transform rewrites a plan bottom-up, applying fn to every node after its
// inputs have been rewritten.
func Transform(n Node, fn func(Node) Node) Node {
	inputs := n.Inputs()
	if len(inputs) > 0 {
		newInputs := make([]Node, len(inputs))
		changed := false
		for i, in := range inputs {
			newInputs[i] = Transform(in, fn)
			if newInputs[i] != in {
				changed = true
			}
		}
		if changed {
			n = n.WithInputs(newInputs)
		}
	}
	return fn(n)
}

// Walk visits every node top-down. Returning false from fn stops descent
// into that subtree.
func Walk(n Node, fn func(Node) bool) {
	if !fn(n) {
		return
	}
	for _, in := range n.Inputs() {
		Walk(in, fn)
	}
}

// CountJoins returns the number of join operators in a plan; the planner
// uses it for the paper's conditional disabling of join-permutation rules
// (>4 joins or >3 nested joins).
func CountJoins(n Node) int {
	count := 0
	Walk(n, func(m Node) bool {
		if _, ok := m.(*Join); ok {
			count++
		}
		return true
	})
	return count
}

// MaxJoinNesting returns the deepest chain of directly nested joins (a
// join whose input is a join counts as nesting).
func MaxJoinNesting(n Node) int {
	var depth func(Node) int
	depth = func(m Node) int {
		best := 0
		for _, in := range m.Inputs() {
			if d := depth(in); d > best {
				best = d
			}
		}
		if _, ok := m.(*Join); ok {
			return best + 1
		}
		return best
	}
	return depth(n)
}

// Format pretty-prints a plan tree for EXPLAIN output.
func Format(n Node) string {
	var sb strings.Builder
	formatInto(&sb, n, 0)
	return sb.String()
}

func formatInto(sb *strings.Builder, n Node, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch t := n.(type) {
	case *Scan:
		fmt.Fprintf(sb, "Scan %s", t.Table.Name)
		if !strings.EqualFold(t.Alias, t.Table.Name) {
			fmt.Fprintf(sb, " as %s", t.Alias)
		}
	case *Filter:
		fmt.Fprintf(sb, "Filter %s", t.Cond)
	case *Project:
		parts := make([]string, len(t.Exprs))
		for i, e := range t.Exprs {
			parts[i] = e.String()
		}
		fmt.Fprintf(sb, "Project %s", strings.Join(parts, ", "))
	case *Join:
		fmt.Fprintf(sb, "Join %s on %s", t.Type, t.Cond)
	case *Aggregate:
		fmt.Fprintf(sb, "Aggregate group=%v aggs=[%s]", t.GroupBy, expr.DescribeAggs(t.Aggs))
	case *Sort:
		fmt.Fprintf(sb, "Sort %s", DescribeKeys(t.Keys))
	case *Limit:
		fmt.Fprintf(sb, "Limit %d", t.N)
	case *Values:
		fmt.Fprintf(sb, "Values %d rows", len(t.Rows))
	default:
		fmt.Fprintf(sb, "%T", n)
	}
	sb.WriteByte('\n')
	for _, in := range n.Inputs() {
		formatInto(sb, in, depth+1)
	}
}
