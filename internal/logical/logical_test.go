package logical

import (
	"strings"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/types"
)

func scan(name string, cols ...string) *Scan {
	t := &catalog.Table{Name: name, PrimaryKey: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c, Kind: types.KindInt})
	}
	return NewScan(t, "")
}

func TestScanSchemaQualified(t *testing.T) {
	s := scan("emp", "id", "dept")
	fs := s.Schema()
	if fs[0].Name != "emp.id" || fs[1].Name != "emp.dept" {
		t.Errorf("schema = %v", fs)
	}
	aliased := NewScan(s.Table, "e")
	if aliased.Schema()[0].Name != "e.id" {
		t.Errorf("aliased schema = %v", aliased.Schema())
	}
}

func TestJoinSchemas(t *testing.T) {
	l := scan("a", "x")
	r := scan("b", "y", "z")
	inner := NewJoin(l, r, JoinInner, expr.True)
	if len(inner.Schema()) != 3 {
		t.Errorf("inner width = %d", len(inner.Schema()))
	}
	semi := NewJoin(l, r, JoinSemi, expr.True)
	if len(semi.Schema()) != 1 {
		t.Errorf("semi width = %d", len(semi.Schema()))
	}
	anti := NewJoin(l, r, JoinAnti, expr.True)
	if len(anti.Schema()) != 1 {
		t.Errorf("anti width = %d", len(anti.Schema()))
	}
	if !JoinSemi.ProjectsLeftOnly() || JoinLeft.ProjectsLeftOnly() {
		t.Error("ProjectsLeftOnly misclassifies")
	}
}

func TestDigestsDistinguishPlans(t *testing.T) {
	a := scan("a", "x")
	f1 := NewFilter(a, expr.NewBinOp(expr.OpGt, expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(1))))
	f2 := NewFilter(a, expr.NewBinOp(expr.OpGt, expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(2))))
	if f1.Digest() == f2.Digest() {
		t.Error("different filters share a digest")
	}
	f1b := NewFilter(a, expr.NewBinOp(expr.OpGt, expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(1))))
	if f1.Digest() != f1b.Digest() {
		t.Error("identical plans have different digests")
	}
	// Correlate marker participates in the digest.
	j1 := NewJoin(a, scan("b", "y"), JoinSemi, expr.True)
	j2 := NewJoin(a, scan("b", "y"), JoinSemi, expr.True)
	j2.FromCorrelate = true
	if j1.Digest() == j2.Digest() {
		t.Error("correlate flag not in digest")
	}
}

func TestWithInputsRoundTrip(t *testing.T) {
	a := scan("a", "x")
	b := scan("b", "y")
	nodes := []Node{
		NewFilter(a, expr.True),
		IdentityProject(a, []int{0}),
		NewJoin(a, b, JoinInner, expr.True),
		NewAggregate(a, []int{0}, []expr.AggCall{{Func: expr.AggCount}}),
		NewSort(a, []types.SortKey{{Col: 0}}),
		NewLimit(a, 5),
	}
	for _, n := range nodes {
		rebuilt := n.WithInputs(n.Inputs())
		if rebuilt.Digest() != n.Digest() {
			t.Errorf("WithInputs round trip changed %s", n.Digest())
		}
	}
}

func TestCountJoinsAndNesting(t *testing.T) {
	a, b, c, d := scan("a", "x"), scan("b", "y"), scan("c", "z"), scan("d", "w")
	j1 := NewJoin(a, b, JoinInner, expr.True)
	j2 := NewJoin(j1, c, JoinInner, expr.True)
	j3 := NewJoin(j2, d, JoinInner, expr.True)
	plan := NewFilter(j3, expr.True)
	if got := CountJoins(plan); got != 3 {
		t.Errorf("CountJoins = %d", got)
	}
	if got := MaxJoinNesting(plan); got != 3 {
		t.Errorf("MaxJoinNesting = %d", got)
	}
	// Bushy: nesting is the deepest chain.
	j4 := NewJoin(NewJoin(a, b, JoinInner, expr.True), NewJoin(c, d, JoinInner, expr.True), JoinInner, expr.True)
	if got := MaxJoinNesting(j4); got != 2 {
		t.Errorf("bushy nesting = %d", got)
	}
}

func TestTransformRebuildsChangedPaths(t *testing.T) {
	a := scan("a", "x")
	plan := NewLimit(NewFilter(a, expr.True), 3)
	visited := 0
	out := Transform(plan, func(n Node) Node {
		visited++
		if f, ok := n.(*Filter); ok {
			return f.Input // drop the filter
		}
		return n
	})
	if visited != 3 {
		t.Errorf("visited = %d", visited)
	}
	lim, ok := out.(*Limit)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := lim.Input.(*Scan); !ok {
		t.Errorf("filter not dropped: %T", lim.Input)
	}
}

func TestWalkStopsOnFalse(t *testing.T) {
	a := scan("a", "x")
	plan := NewFilter(NewFilter(a, expr.True), expr.True)
	count := 0
	Walk(plan, func(n Node) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("walk visited %d nodes after stop", count)
	}
}

func TestAggregateSchemaAndDistinct(t *testing.T) {
	a := scan("a", "x", "y")
	agg := NewAggregate(a, []int{1}, []expr.AggCall{
		{Func: expr.AggSum, Arg: expr.NewColRef(0, types.KindInt, ""), Name: "total"},
	})
	fs := agg.Schema()
	if len(fs) != 2 || fs[0].Name != "a.y" || fs[1].Name != "total" {
		t.Errorf("agg schema = %v", fs)
	}
	if agg.HasDistinct() {
		t.Error("HasDistinct false positive")
	}
	agg2 := NewAggregate(a, nil, []expr.AggCall{
		{Func: expr.AggCount, Arg: expr.NewColRef(0, types.KindInt, ""), Distinct: true},
	})
	if !agg2.HasDistinct() {
		t.Error("HasDistinct false negative")
	}
}

func TestFormatReadable(t *testing.T) {
	a := scan("a", "x")
	plan := NewLimit(NewSort(NewFilter(a, expr.True), []types.SortKey{{Col: 0, Desc: true}}), 10)
	out := Format(plan)
	for _, want := range []string{"Limit 10", "Sort 0 desc", "Filter", "Scan a"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}

func TestValuesNode(t *testing.T) {
	v := NewValues(types.Fields{{Name: "c", Kind: types.KindInt}},
		[]types.Row{{types.NewInt(1)}, {types.NewInt(2)}})
	if len(v.Schema()) != 1 || len(v.Rows) != 2 {
		t.Errorf("values = %v", v)
	}
	if v.Digest() == "" || len(v.Inputs()) != 0 {
		t.Error("values digest/inputs wrong")
	}
}
