// Package ref is a naive single-node reference executor: it interprets a
// logical plan directly (nested-loop joins, hash aggregation), without any
// optimizer rewrites, physical operators, distribution or fragmentation.
// Integration tests cross-check the full distributed engine's results
// against it — the two implementations share only the binder and the
// expression evaluator, so a disagreement indicates a bug in the planner
// rules, the physical operators or the distributed runtime.
package ref

import (
	"fmt"
	"sort"

	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Execute interprets a logical plan over a store (reading every table in
// full, ignoring partitioning).
func Execute(plan logical.Node, store *storage.Store) ([]types.Row, error) {
	switch t := plan.(type) {
	case *logical.Scan:
		var out []types.Row
		limit := store.Sites()
		if t.Table.Replicated {
			limit = 1
		}
		for site := 0; site < limit; site++ {
			part, err := store.Partition(t.Table.Name, site)
			if err != nil {
				return nil, err
			}
			out = append(out, part...)
		}
		return out, nil

	case *logical.Values:
		return t.Rows, nil

	case *logical.Filter:
		in, err := Execute(t.Input, store)
		if err != nil {
			return nil, err
		}
		var out []types.Row
		for _, r := range in {
			v := t.Cond.Eval(r)
			if v.K == types.KindBool && v.Bool() {
				out = append(out, r)
			}
		}
		return out, nil

	case *logical.Project:
		in, err := Execute(t.Input, store)
		if err != nil {
			return nil, err
		}
		out := make([]types.Row, len(in))
		for i, r := range in {
			row := make(types.Row, len(t.Exprs))
			for j, e := range t.Exprs {
				row[j] = e.Eval(r)
			}
			out[i] = row
		}
		return out, nil

	case *logical.Join:
		return executeJoin(t, store)

	case *logical.Aggregate:
		return executeAggregate(t, store)

	case *logical.Sort:
		in, err := Execute(t.Input, store)
		if err != nil {
			return nil, err
		}
		out := make([]types.Row, len(in))
		copy(out, in)
		sort.SliceStable(out, func(a, b int) bool {
			return types.CompareRows(out[a], out[b], t.Keys) < 0
		})
		return out, nil

	case *logical.Limit:
		in, err := Execute(t.Input, store)
		if err != nil {
			return nil, err
		}
		if int64(len(in)) > t.N {
			in = in[:t.N]
		}
		return in, nil

	default:
		return nil, fmt.Errorf("ref: unsupported node %T", plan)
	}
}

func executeJoin(j *logical.Join, store *storage.Store) ([]types.Row, error) {
	left, err := Execute(j.Left, store)
	if err != nil {
		return nil, err
	}
	right, err := Execute(j.Right, store)
	if err != nil {
		return nil, err
	}
	rightW := len(j.Right.Schema())
	// Equi-key index on the right side keeps the reference executor usable
	// on benchmark-sized inputs. OR-of-AND conditions (TPC-H Q19) first get
	// their common conjuncts pulled out — a semantics-preserving rewrite —
	// so the shared equi key becomes visible; the (rewritten) condition is
	// still evaluated on every candidate pair.
	var conjuncts []expr.Expr
	for _, c := range expr.SplitConjuncts(j.Cond) {
		common, residual := expr.ExtractCommonConjuncts(c)
		conjuncts = append(conjuncts, common...)
		if !expr.IsLiteralTrue(residual) {
			conjuncts = append(conjuncts, residual)
		}
	}
	cond := expr.Conjunction(conjuncts)
	keys, _ := expr.SplitJoinCondition(cond, len(j.Left.Schema()))
	var leftCols, rightCols []int
	var index map[uint64][]types.Row
	if len(keys) > 0 {
		leftCols = make([]int, len(keys))
		rightCols = make([]int, len(keys))
		for i, k := range keys {
			leftCols[i] = k.Left
			rightCols[i] = k.Right
		}
		index = make(map[uint64][]types.Row, len(right))
		for _, r := range right {
			h := r.Hash(rightCols)
			index[h] = append(index[h], r)
		}
	}
	var out []types.Row
	for _, l := range left {
		matched := false
		candidates := right
		if index != nil {
			candidates = index[l.Hash(leftCols)]
		}
		for _, r := range candidates {
			if index != nil && !types.EqualOn(l, leftCols, r, rightCols) {
				continue
			}
			row := l.Concat(r)
			v := cond.Eval(row)
			if v.K != types.KindBool || !v.Bool() {
				continue
			}
			matched = true
			switch j.Type {
			case logical.JoinInner, logical.JoinLeft:
				out = append(out, row)
			case logical.JoinSemi:
				out = append(out, l)
			}
			if j.Type == logical.JoinSemi {
				break
			}
		}
		if !matched {
			switch j.Type {
			case logical.JoinLeft:
				row := l.Clone()
				for i := 0; i < rightW; i++ {
					row = append(row, types.Null)
				}
				out = append(out, row)
			case logical.JoinAnti:
				out = append(out, l)
			}
		}
	}
	return out, nil
}

func executeAggregate(a *logical.Aggregate, store *storage.Store) ([]types.Row, error) {
	in, err := Execute(a.Input, store)
	if err != nil {
		return nil, err
	}
	type group struct {
		key  types.Row
		accs []expr.Accumulator
	}
	groups := make(map[uint64][]*group)
	var order []*group
	for _, r := range in {
		h := r.Hash(a.GroupBy)
		var g *group
		for _, cand := range groups[h] {
			ok := true
			for i, c := range a.GroupBy {
				if !types.Equal(cand.key[i], r[c]) {
					ok = false
					break
				}
			}
			if ok {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{key: make(types.Row, len(a.GroupBy)), accs: make([]expr.Accumulator, len(a.Aggs))}
			for i, c := range a.GroupBy {
				g.key[i] = r[c]
			}
			for i, call := range a.Aggs {
				g.accs[i] = call.NewAccumulator()
			}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		for _, acc := range g.accs {
			acc.Add(r)
		}
	}
	if len(a.GroupBy) == 0 && len(order) == 0 {
		g := &group{accs: make([]expr.Accumulator, len(a.Aggs))}
		for i, call := range a.Aggs {
			g.accs[i] = call.NewAccumulator()
		}
		order = append(order, g)
	}
	out := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(a.GroupBy)+len(a.Aggs))
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}
