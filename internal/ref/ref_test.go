package ref

import (
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/storage"
	"gignite/internal/types"
)

func fixture(t *testing.T) (*storage.Store, *catalog.Table, *catalog.Table) {
	t.Helper()
	cat := catalog.New()
	emp := &catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "dept", Kind: types.KindInt},
		},
		PrimaryKey: []string{"id"},
	}
	dept := &catalog.Table{
		Name: "dept",
		Columns: []catalog.Column{
			{Name: "dept_id", Kind: types.KindInt},
			{Name: "dname", Kind: types.KindString},
		},
		PrimaryKey: []string{"dept_id"},
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(cat, 3)
	var empRows []types.Row
	for i := 0; i < 20; i++ {
		empRows = append(empRows, types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 3))})
	}
	if err := st.Load("emp", empRows); err != nil {
		t.Fatal(err)
	}
	if err := st.Load("dept", []types.Row{
		{types.NewInt(0), types.NewString("eng")},
		{types.NewInt(1), types.NewString("ops")},
	}); err != nil {
		t.Fatal(err)
	}
	return st, emp, dept
}

func TestScanReadsAllSites(t *testing.T) {
	st, emp, _ := fixture(t)
	rows, err := Execute(logical.NewScan(emp, ""), st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Errorf("scan rows = %d", len(rows))
	}
}

func TestFilterProjectSortLimit(t *testing.T) {
	st, emp, _ := fixture(t)
	scan := logical.NewScan(emp, "")
	plan := logical.NewLimit(
		logical.NewSort(
			logical.IdentityProject(
				logical.NewFilter(scan, expr.NewBinOp(expr.OpGe,
					expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(15)))),
				[]int{0}),
			[]types.SortKey{{Col: 0, Desc: true}}),
		3)
	rows, err := Execute(plan, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int() != 19 || rows[2][0].Int() != 17 {
		t.Errorf("rows = %v", rows)
	}
}

func TestJoinTypes(t *testing.T) {
	st, emp, dept := fixture(t)
	e := logical.NewScan(emp, "")
	d := logical.NewScan(dept, "")
	cond := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(2, types.KindInt, ""))
	inner, err := Execute(logical.NewJoin(e, d, logical.JoinInner, cond), st)
	if err != nil {
		t.Fatal(err)
	}
	// depts 0 and 1 exist: 7 + 7 emps = 14 matches (i%3 in {0,1}).
	if len(inner) != 14 {
		t.Errorf("inner rows = %d", len(inner))
	}
	left, _ := Execute(logical.NewJoin(e, d, logical.JoinLeft, cond), st)
	if len(left) != 20 {
		t.Errorf("left rows = %d", len(left))
	}
	nulls := 0
	for _, r := range left {
		if r[2].IsNull() {
			nulls++
		}
	}
	if nulls != 6 {
		t.Errorf("null-padded rows = %d", nulls)
	}
	semi, _ := Execute(logical.NewJoin(e, d, logical.JoinSemi, cond), st)
	if len(semi) != 14 {
		t.Errorf("semi rows = %d", len(semi))
	}
	anti, _ := Execute(logical.NewJoin(e, d, logical.JoinAnti, cond), st)
	if len(anti) != 6 {
		t.Errorf("anti rows = %d", len(anti))
	}
}

func TestAggregate(t *testing.T) {
	st, emp, _ := fixture(t)
	scan := logical.NewScan(emp, "")
	agg := logical.NewAggregate(scan, []int{1}, []expr.AggCall{
		{Func: expr.AggCount, Name: "n"},
		{Func: expr.AggMax, Arg: expr.NewColRef(0, types.KindInt, ""), Name: "m"},
	})
	rows, err := Execute(agg, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		want := int64(7)
		if r[0].Int() == 2 {
			want = 6
		}
		if r[1].Int() != want {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
	}
	// Scalar aggregate over empty input yields one row.
	empty := logical.NewFilter(scan, expr.False)
	scalar := logical.NewAggregate(empty, nil, []expr.AggCall{{Func: expr.AggCount}})
	rows, _ = Execute(scalar, st)
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("scalar agg = %v", rows)
	}
}

func TestValues(t *testing.T) {
	st, _, _ := fixture(t)
	v := logical.NewValues(types.Fields{{Name: "x", Kind: types.KindInt}},
		[]types.Row{{types.NewInt(7)}})
	rows, err := Execute(v, st)
	if err != nil || len(rows) != 1 {
		t.Errorf("values = %v, %v", rows, err)
	}
}
