package exec

import (
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/physical"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// benchSendSetup builds a store, a sender over an 8-site cluster and a
// block of rows for exercising the hot send path.
func benchSendSetup(b *testing.B, dist physical.Distribution, nrows int) (*storage.Store, *physical.Sender, []types.Row) {
	b.Helper()
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "val", Kind: types.KindFloat},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		b.Fatal(err)
	}
	st := storage.NewStore(cat, 8)
	tbl, err := st.Catalog().Table("t")
	if err != nil {
		b.Fatal(err)
	}
	scan := physical.NewTableScan(tbl, "t", tbl.Fields())
	sender := physical.NewSender(scan, 0, dist)
	rows := make([]types.Row, nrows)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i))}
	}
	return st, sender, rows
}

// BenchmarkSendRowsHash measures the hash-routing send path (the satellite
// pooling/preallocation target): allocations here repeat once per sender
// instance per wave.
func BenchmarkSendRowsHash(b *testing.B) {
	st, sender, rows := benchSendSetup(b, physical.HashDist(0), 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTransport()
		ctx := &Context{Store: st, Transport: tr, Site: 0, Host: 0, NVariants: 1}
		if err := sendRows(sender, rows, ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendRowsBroadcast measures the broadcast send path.
func BenchmarkSendRowsBroadcast(b *testing.B) {
	st, sender, rows := benchSendSetup(b, physical.BroadcastDist, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTransport()
		ctx := &Context{Store: st, Transport: tr, Site: 0, Host: 0, NVariants: 1}
		if err := sendRows(sender, rows, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
