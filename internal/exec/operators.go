package exec

import (
	"fmt"
	"sort"

	"gignite/internal/cost"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/types"
)

// runHashAggregate groups rows with a hash table. A scalar aggregate (no
// group columns) always emits exactly one row, even on empty input.
func runHashAggregate(node physical.Node, groupBy []int, aggs []expr.AggCall, in []types.Row, ctx *Context) ([]types.Row, error) {
	ctx.work(float64(len(in)) * (cost.RPTC + cost.HAC + cost.RCC))
	type group struct {
		key  types.Row
		accs []expr.Accumulator
	}
	newGroup := func(r types.Row) *group {
		g := &group{key: make(types.Row, len(groupBy)), accs: make([]expr.Accumulator, len(aggs))}
		for i, c := range groupBy {
			g.key[i] = r[c]
		}
		for i, a := range aggs {
			g.accs[i] = a.NewAccumulator()
		}
		return g
	}
	// Size the table for the common grouping ratio so the map does not
	// rehash its way up from empty on every aggregation.
	groups := make(map[uint64][]*group, len(in)/4+1)
	order := make([]*group, 0, len(in)/4+1)
	// Group state accrues for the whole input scan; charge it against the
	// query's memory budget as the table grows, using the input row width
	// as the per-group estimate (key + accumulators are built from one row).
	var stateW int64
	if len(in) > 0 {
		stateW = in[0].Width()
	}
	charged := 0
	for i, r := range in {
		if i%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
			if len(order) > charged {
				if err := ctx.ReserveMem(node, int64(len(order)-charged)*stateW); err != nil {
					return nil, err
				}
				charged = len(order)
			}
		}
		h := r.Hash(groupBy)
		var g *group
		for _, cand := range groups[h] {
			if keyMatches(cand.key, r, groupBy) {
				g = cand
				break
			}
		}
		if g == nil {
			g = newGroup(r)
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		for _, acc := range g.accs {
			acc.Add(r)
		}
	}
	if len(order) > charged {
		if err := ctx.ReserveMem(node, int64(len(order)-charged)*stateW); err != nil {
			return nil, err
		}
	}
	if len(groupBy) == 0 && len(order) == 0 {
		g := &group{accs: make([]expr.Accumulator, len(aggs))}
		for i, a := range aggs {
			g.accs[i] = a.NewAccumulator()
		}
		order = append(order, g)
	}
	out := make([]types.Row, 0, len(order))
	for _, g := range order {
		row := make(types.Row, 0, len(groupBy)+len(aggs))
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}

func keyMatches(key types.Row, r types.Row, groupBy []int) bool {
	for i, c := range groupBy {
		if !types.Equal(key[i], r[c]) {
			return false
		}
	}
	return true
}

// runSortAggregate streams over input sorted by the group columns. It
// holds one group's state at a time, so unlike the hash variant it charges
// no memory beyond its (input-bounded) output.
func runSortAggregate(node physical.Node, groupBy []int, aggs []expr.AggCall, in []types.Row, ctx *Context) ([]types.Row, error) {
	ctx.work(float64(len(in)) * (cost.RPTC + cost.RCC))
	if len(groupBy) == 0 {
		return runHashAggregate(node, groupBy, aggs, in, ctx)
	}
	var out []types.Row
	var accs []expr.Accumulator
	var key types.Row
	flush := func() {
		if accs == nil {
			return
		}
		row := make(types.Row, 0, len(groupBy)+len(aggs))
		row = append(row, key...)
		for _, acc := range accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	for _, r := range in {
		if accs == nil || !keyMatches(key, r, groupBy) {
			flush()
			key = make(types.Row, len(groupBy))
			for i, c := range groupBy {
				key[i] = r[c]
			}
			accs = make([]expr.Accumulator, len(aggs))
			for i, a := range aggs {
				accs[i] = a.NewAccumulator()
			}
		}
		for _, acc := range accs {
			acc.Add(r)
		}
	}
	flush()
	return out, nil
}

// sortCancelled is the sentinel panic that aborts a sort comparator when
// the query is cancelled mid-sort.
type sortCancelled struct{ err error }

// sortRowsCancellable stably sorts rows under keys, observing the query's
// cancellation signal every 64Ki comparisons. A comparator cannot return
// early, so the abort travels out of sort.SliceStable as a sentinel panic
// recovered here; big sorts stop promptly instead of running to
// completion after a deadline fires.
func sortRowsCancellable(rows []types.Row, keys []types.SortKey, ctx *Context) (err error) {
	defer func() {
		if p := recover(); p != nil {
			sc, ok := p.(sortCancelled)
			if !ok {
				panic(p)
			}
			err = sc.err
		}
	}()
	cmps := 0
	sort.SliceStable(rows, func(a, b int) bool {
		cmps++
		if cmps&0xFFFF == 0 {
			if cerr := ctx.cancelled(); cerr != nil {
				panic(sortCancelled{err: cerr})
			}
		}
		return types.CompareRows(rows[a], rows[b], keys) < 0
	})
	return nil
}

// runJoin dispatches on the physical algorithm.
func runJoin(j *physical.Join, left, right []types.Row, ctx *Context) ([]types.Row, error) {
	switch j.Algo {
	case physical.HashAlgo:
		return runHashJoin(j, left, right, ctx)
	case physical.Merge:
		return runMergeJoin(j, left, right, ctx)
	default:
		return runNestedLoopJoin(j, left, right, ctx)
	}
}

// condTrue evaluates a join condition over the concatenated row.
func condTrue(cond expr.Expr, row types.Row) bool {
	v := cond.Eval(row)
	return v.K == types.KindBool && v.Bool()
}

// emitGuard charges work and estimated memory per emitted join row and
// aborts runaway outputs (a join can produce quadratically many rows from
// linear inputs, so input-based charging alone cannot bound it). Memory is
// charged in the same 4096-row chunks as work, so a mis-planned join trips
// its query's budget long before the host allocator feels it.
type emitGuard struct {
	ctx  *Context
	node physical.Node
	// width is the estimated bytes per output row, sampled from the first
	// emitted row (joins emit uniformly shaped rows).
	width   int64
	pending int
}

func (g *emitGuard) addRow(row types.Row) error {
	if g.width == 0 {
		g.width = row.Width()
	}
	g.pending++
	if g.pending >= 4096 {
		g.ctx.work(float64(g.pending) * cost.RPTC)
		g.ctx.rowsEmitted += int64(g.pending)
		if err := g.ctx.ReserveMem(g.node, int64(g.pending)*g.width); err != nil {
			return err
		}
		g.pending = 0
		if g.ctx.overLimit() {
			return ErrWorkLimit
		}
		if g.ctx.RowLimit > 0 && g.ctx.rowsEmitted > g.ctx.RowLimit {
			return ErrWorkLimit
		}
		if err := g.ctx.cancelled(); err != nil {
			return err
		}
	}
	return nil
}

func (g *emitGuard) flush() error {
	g.ctx.work(float64(g.pending) * cost.RPTC)
	err := g.ctx.ReserveMem(g.node, int64(g.pending)*g.width)
	g.pending = 0
	return err
}

// runNestedLoopJoin is the fallback for arbitrary conditions. It is the
// operator that makes the IC baseline's mis-planned N×M joins exceed the
// work limit, so the limit is checked inside the loop.
func runNestedLoopJoin(j *physical.Join, left, right []types.Row, ctx *Context) ([]types.Row, error) {
	ctx.work((float64(len(left)) + float64(len(left))*float64(len(right))) * (cost.RPTC + cost.RCC))
	if ctx.overLimit() {
		return nil, ErrWorkLimit
	}
	var out []types.Row
	rightW := 0
	if len(right) > 0 {
		rightW = len(right[0])
	} else if len(j.Inputs()) == 2 {
		rightW = len(j.Inputs()[1].Schema())
	}
	guard := &emitGuard{ctx: ctx, node: j}
	// The inner loop may match nothing for long stretches, so the emit
	// guard alone cannot observe cancellation; count condition
	// evaluations and check every 64Ki of them.
	evals := 0
	for _, l := range left {
		matched := false
		for _, r := range right {
			evals++
			if evals&0xFFFF == 0 {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
			}
			row := l.Concat(r)
			if !condTrue(j.Cond, row) {
				continue
			}
			matched = true
			switch j.Type {
			case logical.JoinInner, logical.JoinLeft:
				out = append(out, row)
				if err := guard.addRow(row); err != nil {
					return nil, err
				}
			case logical.JoinSemi:
				out = append(out, l)
			}
			if j.Type == logical.JoinSemi {
				break
			}
		}
		if !matched {
			switch j.Type {
			case logical.JoinLeft:
				out = append(out, padRight(l, rightW))
			case logical.JoinAnti:
				out = append(out, l)
			}
		}
	}
	if err := guard.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func padRight(l types.Row, rightW int) types.Row {
	row := make(types.Row, 0, len(l)+rightW)
	row = append(row, l...)
	for i := 0; i < rightW; i++ {
		row = append(row, types.Null)
	}
	return row
}

// runHashJoin implements §5.1.2: build on the right input, probe with the
// left. When the adaptive re-planner set BuildLeft, the table is built on
// the left input instead (runHashJoinBuildLeft) — emission order is
// identical, only the build-side memory charge moves.
func runHashJoin(j *physical.Join, left, right []types.Row, ctx *Context) ([]types.Row, error) {
	if len(j.Keys) == 0 {
		return nil, fmt.Errorf("exec: hash join without equi keys")
	}
	if j.BuildLeft {
		return runHashJoinBuildLeft(j, left, right, ctx)
	}
	// Asymmetric hash charge, mirroring cost.HashJoin: a probe row
	// computes the hash and looks up (HAC/2), a build row also pays the
	// insert's allocation (3·HAC/2).
	ctx.work(float64(len(left))*(cost.RCC+cost.RPTC+cost.HAC/2) +
		float64(len(right))*(cost.RCC+cost.RPTC+1.5*cost.HAC))
	ctx.opstat(j).addBuild(int64(len(right)))
	// The build table pins the whole right input for the probe's duration.
	if err := ctx.ReserveMem(j, estRowBytes(right)); err != nil {
		return nil, err
	}
	leftCols := make([]int, len(j.Keys))
	rightCols := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		leftCols[i] = k.Left
		rightCols[i] = k.Right
	}
	table := make(map[uint64][]types.Row, len(right))
	for i, r := range right {
		if i%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if rowHasNullKey(r, rightCols) {
			continue
		}
		h := r.Hash(rightCols)
		table[h] = append(table[h], r)
	}
	rightW := 0
	if len(right) > 0 {
		rightW = len(right[0])
	} else {
		rightW = len(j.Inputs()[1].Schema())
	}
	// Equi-joins on key-ish columns emit about one row per probe row.
	out := make([]types.Row, 0, len(left))
	guard := &emitGuard{ctx: ctx, node: j}
	for i, l := range left {
		if i%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		matched := false
		if !rowHasNullKey(l, leftCols) {
			h := l.Hash(leftCols)
			for _, r := range table[h] {
				if !types.EqualOn(l, leftCols, r, rightCols) {
					continue
				}
				row := l.Concat(r)
				if !condTrue(j.Cond, row) {
					continue
				}
				matched = true
				switch j.Type {
				case logical.JoinInner, logical.JoinLeft:
					out = append(out, row)
					if err := guard.addRow(row); err != nil {
						return nil, err
					}
				case logical.JoinSemi:
					out = append(out, l)
				}
				if j.Type == logical.JoinSemi {
					break
				}
			}
		}
		if !matched {
			switch j.Type {
			case logical.JoinLeft:
				out = append(out, padRight(l, rightW))
			case logical.JoinAnti:
				out = append(out, l)
			}
		}
	}
	if err := guard.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// runHashJoinBuildLeft is the swapped-build hash join (DESIGN.md §17):
// the table is built on the left input and the right input streams past
// it, recording per-left-row match lists; emission then walks the left
// input in order. For every probe row the matching build rows appear in
// right-input order — exactly the order the build-right variant emits —
// so output rows are byte-identical to runHashJoin, which is what lets
// the adaptive re-planner flip build sides mid-query without breaking
// the determinism contract.
func runHashJoinBuildLeft(j *physical.Join, left, right []types.Row, ctx *Context) ([]types.Row, error) {
	// Mirror of runHashJoin's asymmetric charge: here the left input is
	// the build side and pays the insert premium.
	ctx.work(float64(len(left))*(cost.RCC+cost.RPTC+1.5*cost.HAC) +
		float64(len(right))*(cost.RCC+cost.RPTC+cost.HAC/2))
	ctx.opstat(j).addBuild(int64(len(left)))
	// The build table now pins the left input instead of the right.
	if err := ctx.ReserveMem(j, estRowBytes(left)); err != nil {
		return nil, err
	}
	leftCols := make([]int, len(j.Keys))
	rightCols := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		leftCols[i] = k.Left
		rightCols[i] = k.Right
	}
	table := make(map[uint64][]int, len(left))
	for li, l := range left {
		if li%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if rowHasNullKey(l, leftCols) {
			continue
		}
		table[l.Hash(leftCols)] = append(table[l.Hash(leftCols)], li)
	}
	// matches[li] lists the right-row indices joining left row li, in
	// right-input order (the probe scan visits right rows in order).
	matches := make([][]int32, len(left))
	for ri, r := range right {
		if ri%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if rowHasNullKey(r, rightCols) {
			continue
		}
		for _, li := range table[r.Hash(rightCols)] {
			l := left[li]
			if !types.EqualOn(l, leftCols, r, rightCols) {
				continue
			}
			if !condTrue(j.Cond, l.Concat(r)) {
				continue
			}
			matches[li] = append(matches[li], int32(ri))
		}
	}
	rightW := 0
	if len(right) > 0 {
		rightW = len(right[0])
	} else {
		rightW = len(j.Inputs()[1].Schema())
	}
	out := make([]types.Row, 0, len(left))
	guard := &emitGuard{ctx: ctx, node: j}
	for li, l := range left {
		if li%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		if len(matches[li]) == 0 {
			switch j.Type {
			case logical.JoinLeft:
				out = append(out, padRight(l, rightW))
			case logical.JoinAnti:
				out = append(out, l)
			}
			continue
		}
		switch j.Type {
		case logical.JoinInner, logical.JoinLeft:
			for _, ri := range matches[li] {
				row := l.Concat(right[ri])
				out = append(out, row)
				if err := guard.addRow(row); err != nil {
					return nil, err
				}
			}
		case logical.JoinSemi:
			out = append(out, l)
		}
	}
	if err := guard.flush(); err != nil {
		return nil, err
	}
	return out, nil
}

func rowHasNullKey(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// runMergeJoin merges two inputs sorted on the equi keys (inner and left
// joins).
func runMergeJoin(j *physical.Join, left, right []types.Row, ctx *Context) ([]types.Row, error) {
	if len(j.Keys) == 0 {
		return nil, fmt.Errorf("exec: merge join without equi keys")
	}

	ctx.work((float64(len(left)) + float64(len(right))) * (cost.RCC + cost.RPTC + cost.HAC))
	leftCols := make([]int, len(j.Keys))
	rightCols := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		leftCols[i] = k.Left
		rightCols[i] = k.Right
	}
	rightW := 0
	if len(right) > 0 {
		rightW = len(right[0])
	} else {
		rightW = len(j.Inputs()[1].Schema())
	}
	cmp := func(l, r types.Row) int {
		for i := range leftCols {
			c := types.Compare(l[leftCols[i]], r[rightCols[i]])
			if c != 0 {
				return c
			}
		}
		return 0
	}
	var out []types.Row
	guard := &emitGuard{ctx: ctx, node: j}
	// emitUnmatched handles a left row with no qualifying right partner.
	emitUnmatched := func(l types.Row) {
		switch j.Type {
		case logical.JoinLeft:
			out = append(out, padRight(l, rightW))
		case logical.JoinAnti:
			out = append(out, l)
		}
	}
	li, ri := 0, 0
	for li < len(left) {
		if li%4096 == 4095 {
			if err := ctx.cancelled(); err != nil {
				return nil, err
			}
		}
		l := left[li]
		if rowHasNullKey(l, leftCols) {
			emitUnmatched(l)
			li++
			continue
		}
		// Advance the right side to the first candidate.
		for ri < len(right) && (rowHasNullKey(right[ri], rightCols) || cmp(l, right[ri]) > 0) {
			ri++
			if ri%4096 == 4095 {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
			}
		}
		if ri >= len(right) || cmp(l, right[ri]) < 0 {
			emitUnmatched(l)
			li++
			continue
		}
		// Group of equal right rows.
		re := ri
		for re < len(right) && cmp(l, right[re]) == 0 {
			re++
		}
		matched := false
		for _, r := range right[ri:re] {
			row := l.Concat(r)
			if condTrue(j.Cond, row) {
				matched = true
				if j.Type == logical.JoinInner || j.Type == logical.JoinLeft {
					out = append(out, row)
					if err := guard.addRow(row); err != nil {
						return nil, err
					}
				} else {
					break
				}
			}
		}
		switch {
		case matched && j.Type == logical.JoinSemi:
			out = append(out, l)
		case !matched:
			emitUnmatched(l)
		}
		li++
		// Do not advance ri: the next left row may share the key group.
	}
	if err := guard.flush(); err != nil {
		return nil, err
	}
	return out, nil
}
