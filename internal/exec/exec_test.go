package exec

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/fragment"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/storage"
	"gignite/internal/types"
)

func testStore(t *testing.T, sites int) *storage.Store {
	t.Helper()
	cat := catalog.New()
	err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "grp", Kind: types.KindInt},
			{Name: "val", Kind: types.KindFloat},
		},
		PrimaryKey: []string{"id"},
		Indexes:    []catalog.Index{{Name: "t_grp", Columns: []string{"grp"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(cat, sites)
	rows := make([]types.Row, 60)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 5)),
			types.NewFloat(float64(i) * 1.5),
		}
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	if err := st.BuildIndexes("t"); err != nil {
		t.Fatal(err)
	}
	return st
}

func scanNode(t *testing.T, st *storage.Store) *physical.TableScan {
	t.Helper()
	tbl, err := st.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	return physical.NewTableScan(tbl, "t", tbl.Fields())
}

func ctxAt(st *storage.Store, site int) *Context {
	return &Context{Store: st, Transport: NewTransport(), Site: site, Host: site, NVariants: 1}
}

func TestScanFilterProject(t *testing.T) {
	st := testStore(t, 2)
	scan := scanNode(t, st)
	filter := physical.NewFilter(scan, expr.NewBinOp(expr.OpLt,
		expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(10))))
	proj := physical.NewProject(filter,
		[]expr.Expr{expr.NewBinOp(expr.OpMul,
			expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(2)))},
		types.Fields{{Name: "dbl", Kind: types.KindInt}})
	var total int
	for site := 0; site < 2; site++ {
		rows, err := runNode(proj, ctxAt(st, site))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if r[0].Int()%2 != 0 || r[0].Int() >= 20 {
				t.Fatalf("bad projected value %v", r[0])
			}
		}
		total += len(rows)
	}
	if total != 10 {
		t.Errorf("filtered rows = %d, want 10", total)
	}
}

func TestSortAndLimit(t *testing.T) {
	st := testStore(t, 1)
	scan := scanNode(t, st)
	sorted := physical.NewSort(scan, []types.SortKey{{Col: 2, Desc: true}})
	lim := physical.NewLimit(sorted, 3)
	rows, err := runNode(lim, ctxAt(st, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][2].Float() != 59*1.5 {
		t.Errorf("top rows = %v", rows)
	}
}

func TestHashAggregateSitewise(t *testing.T) {
	st := testStore(t, 1)
	scan := scanNode(t, st)
	agg := physical.NewHashAggregate(scan, []int{1},
		[]expr.AggCall{
			{Func: expr.AggCount, Name: "n"},
			{Func: expr.AggSum, Arg: expr.NewColRef(0, types.KindInt, ""), Name: "s"},
		}, physical.AggSinglePhase,
		types.Fields{{Name: "grp", Kind: types.KindInt}, {Name: "n", Kind: types.KindInt},
			{Name: "s", Kind: types.KindInt}})
	rows, err := runNode(agg, ctxAt(st, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d", len(rows))
	}
	for _, r := range rows {
		if r[1].Int() != 12 {
			t.Errorf("group %v count = %v", r[0], r[1])
		}
	}
}

func TestScalarAggregateEmptyInput(t *testing.T) {
	rows, err := runHashAggregate(nil, nil,
		[]expr.AggCall{{Func: expr.AggCount}}, nil, ctxAt(testStore(t, 1), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 0 {
		t.Errorf("empty scalar agg = %v", rows)
	}
}

// joinFixture builds left/right row sets with controlled key overlap.
func joinFixture(n int) (left, right []types.Row) {
	for i := 0; i < n; i++ {
		left = append(left, types.Row{types.NewInt(int64(i % 7)), types.NewInt(int64(i))})
	}
	for i := 0; i < n/2; i++ {
		right = append(right, types.Row{types.NewInt(int64(i % 5)), types.NewFloat(float64(i))})
	}
	return left, right
}

func mkJoin(algo physical.JoinAlgo, jt logical.JoinType) *physical.Join {
	l := physical.NewValues(types.Fields{{Name: "k", Kind: types.KindInt},
		{Name: "a", Kind: types.KindInt}}, nil)
	r := physical.NewValues(types.Fields{{Name: "k2", Kind: types.KindInt},
		{Name: "b", Kind: types.KindFloat}}, nil)
	cond := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(2, types.KindInt, ""))
	return physical.NewJoin(l, r, algo, jt, cond,
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.SingleDist, "single")
}

func sortRows(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestJoinAlgorithmsAgree: NLJ, hash and merge joins must produce
// identical results for every join type on the same inputs.
func TestJoinAlgorithmsAgree(t *testing.T) {
	st := testStore(t, 1)
	left, right := joinFixture(40)
	// Merge join needs sorted inputs.
	sortedLeft := append([]types.Row(nil), left...)
	sort.SliceStable(sortedLeft, func(a, b int) bool {
		return sortedLeft[a][0].Int() < sortedLeft[b][0].Int()
	})
	sortedRight := append([]types.Row(nil), right...)
	sort.SliceStable(sortedRight, func(a, b int) bool {
		return sortedRight[a][0].Int() < sortedRight[b][0].Int()
	})
	for _, jt := range []logical.JoinType{logical.JoinInner, logical.JoinLeft,
		logical.JoinSemi, logical.JoinAnti} {
		nlj, err := runJoin(mkJoin(physical.NestedLoop, jt), left, right, ctxAt(st, 0))
		if err != nil {
			t.Fatal(err)
		}
		hj, err := runJoin(mkJoin(physical.HashAlgo, jt), left, right, ctxAt(st, 0))
		if err != nil {
			t.Fatal(err)
		}
		mj, err := runJoin(mkJoin(physical.Merge, jt), sortedLeft, sortedRight, ctxAt(st, 0))
		if err != nil {
			t.Fatal(err)
		}
		sn, sh, sm := sortRows(nlj), sortRows(hj), sortRows(mj)
		if len(sn) != len(sh) || len(sn) != len(sm) {
			t.Fatalf("%s: row counts nlj=%d hash=%d merge=%d", jt, len(sn), len(sh), len(sm))
		}
		for i := range sn {
			if sn[i] != sh[i] || sn[i] != sm[i] {
				t.Fatalf("%s row %d: nlj=%s hash=%s merge=%s", jt, i, sn[i], sh[i], sm[i])
			}
		}
	}
}

// TestJoinEquivalenceProperty fuzz-checks hash vs NLJ join equivalence on
// random key sets.
func TestJoinEquivalenceProperty(t *testing.T) {
	st := testStore(t, 1)
	f := func(lk, rk []uint8) bool {
		var left, right []types.Row
		for i, k := range lk {
			left = append(left, types.Row{types.NewInt(int64(k % 8)), types.NewInt(int64(i))})
		}
		for i, k := range rk {
			right = append(right, types.Row{types.NewInt(int64(k % 8)), types.NewFloat(float64(i))})
		}
		for _, jt := range []logical.JoinType{logical.JoinInner, logical.JoinSemi, logical.JoinAnti} {
			nlj, err1 := runJoin(mkJoin(physical.NestedLoop, jt), left, right, ctxAt(st, 0))
			hj, err2 := runJoin(mkJoin(physical.HashAlgo, jt), left, right, ctxAt(st, 0))
			if err1 != nil || err2 != nil {
				return false
			}
			a, b := sortRows(nlj), sortRows(hj)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSenderRouting(t *testing.T) {
	st := testStore(t, 4)
	rows := []types.Row{}
	for i := 0; i < 40; i++ {
		rows = append(rows, types.Row{types.NewInt(int64(i)), types.NewInt(1)})
	}
	fields := types.Fields{{Name: "k", Kind: types.KindInt}, {Name: "v", Kind: types.KindInt}}

	// Single: everything to site 0.
	tr := NewTransport()
	vals := physical.NewValues(fields, rows)
	s := physical.NewSender(vals, 7, physical.SingleDist)
	ctx := &Context{Store: st, Transport: tr, Site: 2, Host: 2, NVariants: 1}
	if _, err := Run(s, ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Receive(7, 0)); got != 1 {
		t.Errorf("single target batches at site 0 = %d", got)
	}
	for site := 1; site < 4; site++ {
		if len(tr.Receive(7, site)) != 0 {
			t.Errorf("single target leaked to site %d", site)
		}
	}

	// Broadcast: a full copy everywhere.
	tr = NewTransport()
	s = physical.NewSender(physical.NewValues(fields, rows), 8, physical.BroadcastDist)
	ctx = &Context{Store: st, Transport: tr, Site: 0, NVariants: 1}
	if _, err := Run(s, ctx); err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 4; site++ {
		batches := tr.Receive(8, site)
		if len(batches) != 1 || len(batches[0].Rows) != 40 {
			t.Errorf("broadcast site %d got %d batches", site, len(batches))
		}
	}

	// Hash: partitioned disjointly and completely, consistent with the
	// storage placement function.
	tr = NewTransport()
	s = physical.NewSender(physical.NewValues(fields, rows), 9, physical.HashDist(0))
	ctx = &Context{Store: st, Transport: tr, Site: 0, NVariants: 1}
	if _, err := Run(s, ctx); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for site := 0; site < 4; site++ {
		for _, b := range tr.Receive(9, site) {
			for _, r := range b.Rows {
				if storage.PartitionOf(r[0], 4) != site {
					t.Errorf("row %v routed to wrong site %d", r, site)
				}
				seen++
			}
		}
	}
	if seen != 40 {
		t.Errorf("hash routing lost rows: %d", seen)
	}
}

// TestSplitterPartitionProperty: the §5.3.2 splitter must partition the
// source completely and disjointly across variants.
func TestSplitterPartitionProperty(t *testing.T) {
	st := testStore(t, 1)
	tbl, _ := st.Catalog().Table("t")
	scan := physical.NewTableScan(tbl, "t", tbl.Fields())
	f := func(nRaw uint8) bool {
		n := int(nRaw%4) + 2
		modes := map[physical.Node]fragment.SourceMode{scan: fragment.SplitMode}
		seen := map[int64]int{}
		for v := 0; v < n; v++ {
			ctx := &Context{Store: st, Transport: NewTransport(), Site: 0,
				Variant: v, NVariants: n, Modes: modes}
			rows, err := runNode(scan, ctx)
			if err != nil {
				return false
			}
			for _, r := range rows {
				seen[r[0].Int()]++
			}
		}
		if len(seen) != 60 {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDuplicatorReplaysAll(t *testing.T) {
	st := testStore(t, 1)
	tbl, _ := st.Catalog().Table("t")
	scan := physical.NewTableScan(tbl, "t", tbl.Fields())
	modes := map[physical.Node]fragment.SourceMode{scan: fragment.DuplicateMode}
	for v := 0; v < 2; v++ {
		ctx := &Context{Store: st, Transport: NewTransport(), Site: 0,
			Variant: v, NVariants: 2, Modes: modes}
		rows, err := runNode(scan, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 60 {
			t.Errorf("variant %d saw %d rows, want all 60", v, len(rows))
		}
	}
}

// TestReceiveReturnsCopy: the batch slice handed to one receiver must be
// private — truncating or overwriting it cannot corrupt what a second
// receiver of the same exchange sees (variant fragments receive the same
// (exchange, site) stream once per variant).
func TestReceiveReturnsCopy(t *testing.T) {
	tr := NewTransport()
	tr.Send(1, 0, &Batch{Rows: []types.Row{{types.NewInt(1)}}, FromSite: 0})
	tr.Send(1, 0, &Batch{Rows: []types.Row{{types.NewInt(2)}}, FromSite: 1})

	first := tr.Receive(1, 0)
	if len(first) != 2 {
		t.Fatalf("batches = %d", len(first))
	}
	// Mutate the returned slice in every way a consumer might.
	first[0], first[1] = first[1], first[0]
	first = append(first[:1], &Batch{})
	_ = first

	second := tr.Receive(1, 0)
	if len(second) != 2 {
		t.Fatalf("second receiver sees %d batches", len(second))
	}
	if second[0].Rows[0][0].Int() != 1 || second[1].Rows[0][0].Int() != 2 {
		t.Errorf("second receiver corrupted: %v, %v", second[0].Rows, second[1].Rows)
	}
}

// TestReceiveDeterministicOrder: batches come back ordered by (sender
// site, sender variant) regardless of arrival order, so concurrent
// senders cannot perturb consumer-side row order.
func TestReceiveDeterministicOrder(t *testing.T) {
	tr := NewTransport()
	// Arrive out of order, as parallel senders would.
	tr.Send(5, 0, &Batch{FromSite: 2, FromVariant: 0})
	tr.Send(5, 0, &Batch{FromSite: 0, FromVariant: 1})
	tr.Send(5, 0, &Batch{FromSite: 1, FromVariant: 0})
	tr.Send(5, 0, &Batch{FromSite: 0, FromVariant: 0})

	got := tr.Receive(5, 0)
	want := [][2]int{{0, 0}, {0, 1}, {1, 0}, {2, 0}}
	for i, b := range got {
		if b.FromSite != want[i][0] || b.FromVariant != want[i][1] {
			t.Fatalf("batch %d from (site %d, variant %d), want (%d, %d)",
				i, b.FromSite, b.FromVariant, want[i][0], want[i][1])
		}
	}
}

func TestMergingReceiverOrders(t *testing.T) {
	st := testStore(t, 1)
	tr := NewTransport()
	keys := []types.SortKey{{Col: 0}}
	// Two senders ship sorted runs.
	tr.Send(3, 0, &Batch{Rows: []types.Row{
		{types.NewInt(1)}, {types.NewInt(4)}, {types.NewInt(9)}}, Sorted: keys})
	tr.Send(3, 0, &Batch{Rows: []types.Row{
		{types.NewInt(2)}, {types.NewInt(3)}, {types.NewInt(8)}}, Sorted: keys})
	ex := physical.NewExchange(physical.NewSort(
		physical.NewValues(types.Fields{{Name: "k", Kind: types.KindInt}}, nil), keys),
		physical.SingleDist)
	recv := physical.NewReceiver(ex, 3)
	rows, err := runReceiver(recv, &Context{Store: st, Transport: tr, Site: 0, NVariants: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatalf("merge receiver out of order: %v", rows)
		}
	}
	if len(rows) != 6 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestWorkLimitAborts(t *testing.T) {
	st := testStore(t, 1)
	left, right := joinFixture(200)
	j := mkJoin(physical.NestedLoop, logical.JoinInner)
	ctx := ctxAt(st, 0)
	ctx.WorkLimit = 10
	_, err := runJoin(j, left, right, ctx)
	if !errors.Is(err, ErrWorkLimit) {
		t.Errorf("err = %v, want work limit", err)
	}
}

func TestRowLimitAborts(t *testing.T) {
	st := testStore(t, 1)
	// A join with massive fan-out (all keys equal).
	var left, right []types.Row
	for i := 0; i < 300; i++ {
		left = append(left, types.Row{types.NewInt(1), types.NewInt(int64(i))})
		right = append(right, types.Row{types.NewInt(1), types.NewFloat(float64(i))})
	}
	j := mkJoin(physical.HashAlgo, logical.JoinInner)
	ctx := ctxAt(st, 0)
	ctx.WorkLimit = 1e12
	ctx.RowLimit = 5000
	_, err := runJoin(j, left, right, ctx)
	if !errors.Is(err, ErrWorkLimit) {
		t.Errorf("err = %v, want row-limit abort", err)
	}
}

func TestSortAggregateMatchesHash(t *testing.T) {
	st := testStore(t, 1)
	var in []types.Row
	for i := 0; i < 50; i++ {
		in = append(in, types.Row{types.NewInt(int64(i / 10)), types.NewFloat(float64(i))})
	}
	aggs := []expr.AggCall{
		{Func: expr.AggSum, Arg: expr.NewColRef(1, types.KindFloat, ""), Name: "s"},
		{Func: expr.AggMin, Arg: expr.NewColRef(1, types.KindFloat, ""), Name: "m"},
	}
	h, err := runHashAggregate(nil, []int{0}, aggs, in, ctxAt(st, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := runSortAggregate(nil, []int{0}, aggs, in, ctxAt(st, 0))
	if err != nil {
		t.Fatal(err)
	}
	hs, ss := sortRows(h), sortRows(s)
	if fmt.Sprint(hs) != fmt.Sprint(ss) {
		t.Errorf("hash %v vs sort %v", hs, ss)
	}
}
