// Package exec implements the runtime operators: it executes one fragment
// instance (fragment × site × variant) over the partitioned store,
// exchanging rows with other fragments through a Transport. Execution is
// materialized (each operator consumes its inputs fully), which matches
// the blocking operators that dominate the workloads (hash builds, sorts,
// aggregations); pipelining effects on wall-clock time are captured by the
// simnet cost clock instead.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gignite/internal/cost"
	"gignite/internal/faults"
	"gignite/internal/fragment"
	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Batch is one shipment of rows from a sender instance to a target site.
type Batch struct {
	Rows        []types.Row
	FromFrag    int
	FromSite    int
	FromVariant int
	// Attempt is the sender instance's retry attempt (0 = first try); it
	// feeds the fault injector so a resent batch draws a fresh outcome.
	Attempt int
	Bytes   int64
	// Sorted carries the sender-side collation for merging receivers.
	Sorted []types.SortKey
}

// Transport buffers exchanged batches: batches[exchangeID][targetSite].
// It is safe for concurrent senders and receivers.
type Transport struct {
	mu      sync.Mutex
	batches map[int]map[int][]*Batch
	// Sends records every shipment for the cost clock.
	Sends []SendRecord
	// FailSend, when set, is consulted before every shipment; a non-nil
	// return fails the send (the cluster wires the fault injector here).
	FailSend func(exchange, toSite int, b *Batch) error
}

// SendRecord is the cost-clock view of one shipment.
type SendRecord struct {
	Exchange    int
	FromFrag    int
	FromSite    int
	FromVariant int
	ToSite      int
	Bytes       int64
	Rows        int64
}

// NewTransport creates an empty transport.
func NewTransport() *Transport {
	return &Transport{batches: make(map[int]map[int][]*Batch)}
}

// Send ships rows to a target site under an exchange ID. It fails only
// when a FailSend hook rejects the shipment (injected transport faults).
func (t *Transport) Send(exchange, toSite int, b *Batch) error {
	if t.FailSend != nil {
		if err := t.FailSend(exchange, toSite, b); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.batches[exchange]
	if !ok {
		m = make(map[int][]*Batch)
		t.batches[exchange] = m
	}
	m[toSite] = append(m[toSite], b)
	t.Sends = append(t.Sends, SendRecord{
		Exchange: exchange, FromFrag: b.FromFrag, FromSite: b.FromSite,
		FromVariant: b.FromVariant, ToSite: toSite, Bytes: b.Bytes,
		Rows: int64(len(b.Rows)),
	})
	return nil
}

// DiscardFrom rolls back every batch and send record shipped by one
// sender instance, identified by its logical coordinates (fragment,
// logical site, variant). The retry scheduler calls this before re-running
// a failed instance so retried shipments never duplicate rows; the
// returned totals are the rollback's resend cost for the simnet trace.
// Discarding is safe because consumers only receive at the next wave
// barrier, after all retries of the producing wave have settled.
func (t *Transport) DiscardFrom(fromFrag, fromSite, fromVariant int) (bytes float64, rows int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	match := func(frag, site, variant int) bool {
		return frag == fromFrag && site == fromSite && variant == fromVariant
	}
	for _, m := range t.batches {
		for toSite, bs := range m {
			kept := bs[:0]
			for _, b := range bs {
				if match(b.FromFrag, b.FromSite, b.FromVariant) {
					continue
				}
				kept = append(kept, b)
			}
			m[toSite] = kept
		}
	}
	keptSends := t.Sends[:0]
	for _, s := range t.Sends {
		if match(s.FromFrag, s.FromSite, s.FromVariant) {
			bytes += float64(s.Bytes)
			rows += s.Rows
			continue
		}
		keptSends = append(keptSends, s)
	}
	t.Sends = keptSends
	return bytes, rows
}

// Receive returns the batches shipped to a site under an exchange ID.
// The returned slice is a copy in a deterministic order — by sender
// site, then sender variant — so concurrent receivers may reorder or
// truncate it freely, and concurrent senders' arrival order never
// perturbs consumer-side row order.
func (t *Transport) Receive(exchange, site int) []*Batch {
	t.mu.Lock()
	defer t.mu.Unlock()
	src := t.batches[exchange][site]
	out := make([]*Batch, len(src))
	copy(out, src)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].FromSite != out[b].FromSite {
			return out[a].FromSite < out[b].FromSite
		}
		return out[a].FromVariant < out[b].FromVariant
	})
	return out
}

// Context is the execution environment of one fragment instance.
type Context struct {
	Store     *storage.Store
	Transport *Transport
	FragID    int
	// Site is the instance's logical site: the partition slot it covers
	// and the identity its shipments carry. It never changes across
	// retries, which is what keeps failover results byte-identical.
	Site int
	// Host is the physical site executing this attempt — equal to Site
	// until a failover moves the instance onto a backup replica. Scans
	// read partition Site from host Host (storage validates the replica).
	Host int
	// Attempt is the retry attempt number (0 = first try).
	Attempt int
	// Ctx carries the query's cancellation signal; operators check it at
	// row-batch boundaries. nil means not cancellable.
	Ctx context.Context
	// Faults is the query's fault injector (nil = no faults).
	Faults *faults.Injector
	// Variant / NVariants implement §5.3.2 splitters; NVariants is 1 for
	// single-threaded fragments.
	Variant   int
	NVariants int
	// Modes assigns splitter/duplicator roles to sources (nil when the
	// fragment is single-threaded).
	Modes map[physical.Node]fragment.SourceMode
	// CPUWork accumulates modeled work units for the cost clock.
	CPUWork float64
	// WorkLimit aborts execution when CPUWork exceeds it (0 = unlimited).
	// It reproduces the paper's four-hour runtime limit: the IC baseline's
	// nested-loop chains hit it on TPC-H Q17/Q19/Q21.
	WorkLimit float64
	// RowLimit bounds rows materialized by join emission (0 = unlimited);
	// it keeps runaway cross products from exhausting host memory before
	// the work limit trips.
	RowLimit    int64
	rowsEmitted int64
	// rowCounter implements the splitter's read counter per source.
	rowCounters map[physical.Node]int64
	// OpIDs maps this fragment's operators to dense per-fragment operator
	// ids, and Obs is the attempt's private per-operator recorder. Both
	// nil disables instrumentation (microbenchmarks, operator unit tests).
	OpIDs map[physical.Node]int
	Obs   *obs.InstanceObs
	// opStack tracks the operator frames currently executing, so work()
	// attributes modeled work to the operator that charged it (self work,
	// children excluded).
	opStack []int
}

// ErrWorkLimit reports an execution exceeding its work limit.
var ErrWorkLimit = errors.New("exec: work limit exceeded")

func (c *Context) work(units float64) {
	c.CPUWork += units
	if c.Obs != nil && len(c.opStack) > 0 {
		c.Obs.Ops[c.opStack[len(c.opStack)-1]].Work += units
	}
}

// opFrame is one open operator instrumentation frame; id < 0 means the
// operator is untracked and the frame is a no-op.
type opFrame struct {
	id    int
	start time.Time
}

// openOp starts an operator's instrumentation frame.
func (c *Context) openOp(n physical.Node) opFrame {
	if c.Obs == nil {
		return opFrame{id: -1}
	}
	id, ok := c.OpIDs[n]
	if !ok {
		return opFrame{id: -1}
	}
	c.opStack = append(c.opStack, id)
	return opFrame{id: id, start: time.Now()}
}

// closeOp finishes a frame, recording output rows, the materialization
// high-water mark and inclusive wall time.
func (c *Context) closeOp(f opFrame, rows []types.Row) {
	if f.id < 0 {
		return
	}
	c.opStack = c.opStack[:len(c.opStack)-1]
	op := &c.Obs.Ops[f.id]
	op.RowsOut += int64(len(rows))
	op.WallNanos += time.Since(f.start).Nanoseconds()
	if n := int64(len(rows)); n > op.PeakRows {
		op.PeakRows = n
	}
}

// opstat returns an operator's recorder slot (nil when untracked).
func (c *Context) opstat(n physical.Node) *OpStatsRef {
	if c.Obs == nil {
		return nil
	}
	id, ok := c.OpIDs[n]
	if !ok {
		return nil
	}
	return (*OpStatsRef)(&c.Obs.Ops[id])
}

// OpStatsRef aliases an operator's recorder slot for the few operators
// that record extra detail (receiver batches, hash build sizes, scan
// input rows).
type OpStatsRef obs.OpStats

func (o *OpStatsRef) addIn(n int64) {
	if o != nil {
		o.RowsIn += n
	}
}

func (o *OpStatsRef) addBatches(n int64) {
	if o != nil {
		o.Batches += n
	}
}

func (o *OpStatsRef) addBuild(n int64) {
	if o == nil {
		return
	}
	o.BuildRows += n
	if n > o.PeakRows {
		o.PeakRows = n
	}
}

// overLimit reports whether the instance has exceeded its work budget.
func (c *Context) overLimit() bool {
	return c.WorkLimit > 0 && c.CPUWork > c.WorkLimit
}

// cancelled returns the query's cancellation error, if any. Operators
// call it at row-batch boundaries so deadlines and Ctrl-C stop in-flight
// instances promptly.
func (c *Context) cancelled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// sourceRows applies the §5.3.2 splitter: pass tuple when
// counter % n == variant. Duplicators pass everything. The whole
// partition is still read (and charged), matching the paper's note that
// every variant reads the full partition.
func (c *Context) sourceRows(n physical.Node, rows []types.Row) []types.Row {
	if c.NVariants <= 1 || c.Modes == nil {
		return rows
	}
	mode, ok := c.Modes[n]
	if !ok || mode == fragment.DuplicateMode {
		return rows
	}
	if c.rowCounters == nil {
		c.rowCounters = make(map[physical.Node]int64)
	}
	out := make([]types.Row, 0, len(rows)/c.NVariants+1)
	ctr := c.rowCounters[n]
	for _, r := range rows {
		if int(ctr%int64(c.NVariants)) == c.Variant {
			out = append(out, r)
		}
		ctr++
	}
	c.rowCounters[n] = ctr
	return out
}

// Run executes a fragment instance rooted at n and returns its output
// rows. Sender roots route their rows into the transport and return nil.
func Run(n physical.Node, ctx *Context) ([]types.Row, error) {
	rows, err := runInstance(n, ctx)
	if err != nil {
		return nil, err
	}
	// The limit is also enforced after the final operator so that a
	// fragment whose last operator blew the budget still reports it.
	if ctx.overLimit() {
		return nil, ErrWorkLimit
	}
	return rows, nil
}

func runInstance(n physical.Node, ctx *Context) ([]types.Row, error) {
	switch t := n.(type) {
	case *physical.Sender:
		f := ctx.openOp(t)
		rows, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			ctx.closeOp(f, nil)
			return nil, err
		}
		ctx.opstat(t).addIn(int64(len(rows)))
		err = sendRows(t, rows, ctx)
		ctx.closeOp(f, rows)
		return nil, err
	default:
		return runNode(n, ctx)
	}
}

// runNode executes one operator subtree, wrapping the dispatch in the
// observability frame: output rows, wall time and self modeled work are
// recorded per operator (see Context.openOp).
func runNode(n physical.Node, ctx *Context) ([]types.Row, error) {
	f := ctx.openOp(n)
	rows, err := execNode(n, ctx)
	ctx.closeOp(f, rows)
	return rows, err
}

func execNode(n physical.Node, ctx *Context) ([]types.Row, error) {
	if ctx.overLimit() {
		return nil, ErrWorkLimit
	}
	if err := ctx.cancelled(); err != nil {
		return nil, err
	}
	switch t := n.(type) {
	case *physical.TableScan:
		rows, err := ctx.Store.PartitionAt(t.Table.Name, ctx.Site, ctx.Host)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(rows)))
		ctx.work(float64(len(rows)) * cost.RPTC)
		return ctx.sourceRows(n, rows), nil

	case *physical.IndexScan:
		rows, err := ctx.Store.IndexScanAt(t.Table.Name, t.Index.Name, ctx.Site, ctx.Host, nil, nil)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(rows)))
		ctx.work(float64(len(rows)) * cost.RPTC * 1.2)
		return ctx.sourceRows(n, rows), nil

	case *physical.Values:
		return t.Rows, nil

	case *physical.Receiver:
		return runReceiver(t, ctx)

	case *physical.Filter:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		ctx.work(float64(len(in)) * (cost.RPTC + cost.RCC))
		out := make([]types.Row, 0, len(in))
		for _, r := range in {
			v := t.Cond.Eval(r)
			if v.K == types.KindBool && v.Bool() {
				out = append(out, r)
			}
		}
		return out, nil

	case *physical.Project:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		ctx.work(float64(len(in)) * cost.RPTC * float64(len(t.Exprs)))
		out := make([]types.Row, len(in))
		for i, r := range in {
			row := make(types.Row, len(t.Exprs))
			for j, e := range t.Exprs {
				row[j] = e.Eval(r)
			}
			out[i] = row
		}
		return out, nil

	case *physical.Sort:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		n := float64(len(in))
		if n > 1 {
			ctx.work(n * cost.RPTC)
			ctx.work(n * math.Log2(n) * cost.RCC)
		}
		out := make([]types.Row, len(in))
		copy(out, in)
		sort.SliceStable(out, func(a, b int) bool {
			return types.CompareRows(out[a], out[b], t.Keys) < 0
		})
		return out, nil

	case *physical.Limit:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		if int64(len(in)) > t.N {
			in = in[:t.N]
		}
		ctx.work(float64(len(in)) * cost.RPTC)
		return in, nil

	case *physical.HashAggregate:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		return runHashAggregate(t.GroupBy, t.Aggs, in, ctx)

	case *physical.SortAggregate:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		return runSortAggregate(t.GroupBy, t.Aggs, in, ctx)

	case *physical.Join:
		left, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		right, err := runNode(t.Inputs()[1], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(left) + len(right)))
		return runJoin(t, left, right, ctx)

	default:
		return nil, fmt.Errorf("exec: no runtime for %T", n)
	}
}

// sendRows routes a sender's output per its target distribution. Batches
// carry the instance's logical coordinates (Site, not Host), so a
// failed-over sender ships under the same identity the owner would have —
// receivers order by that identity, keeping failover results
// byte-identical.
func sendRows(s *physical.Sender, rows []types.Row, ctx *Context) error {
	sites := ctx.Store.Sites()
	mk := func(rs []types.Row) *Batch {
		var bytes int64
		for _, r := range rs {
			bytes += r.Width()
		}
		return &Batch{
			Rows: rs, FromFrag: ctx.FragID, FromSite: ctx.Site,
			FromVariant: ctx.Variant, Attempt: ctx.Attempt,
			Bytes: bytes, Sorted: s.Collation(),
		}
	}
	ctx.work(float64(len(rows)) * cost.RPTC)
	switch s.Target.Type {
	case physical.Single:
		return ctx.Transport.Send(s.ExchangeID, 0, mk(rows))
	case physical.Broadcast:
		for site := 0; site < sites; site++ {
			if err := ctx.Transport.Send(s.ExchangeID, site, mk(rows)); err != nil {
				return err
			}
		}
	case physical.Hash:
		buckets := make([][]types.Row, sites)
		for _, r := range rows {
			site := routeRow(r, s.Target.Keys, sites)
			buckets[site] = append(buckets[site], r)
		}
		for site, b := range buckets {
			if err := ctx.Transport.Send(s.ExchangeID, site, mk(b)); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeRow picks the target partition for a row under a hash target. A
// single-key route uses the storage placement function so that exchanged
// rows land where the co-located partitions live; multi-key and keyless
// targets use a combined row hash.
func routeRow(r types.Row, keys []int, sites int) int {
	if sites <= 1 {
		return 0
	}
	if len(keys) == 1 {
		return storage.PartitionOf(r[keys[0]], sites)
	}
	if len(keys) == 0 {
		return int(r.Hash(allCols(len(r))) % uint64(sites))
	}
	return int(r.Hash(keys) % uint64(sites))
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// runReceiver collects the batches for this site, merging sorted streams
// when the receiver is a merging receiver.
func runReceiver(r *physical.Receiver, ctx *Context) ([]types.Row, error) {
	batches := ctx.Transport.Receive(r.ExchangeID, ctx.Site)
	var total int
	for _, b := range batches {
		total += len(b.Rows)
	}
	st := ctx.opstat(r)
	st.addIn(int64(total))
	st.addBatches(int64(len(batches)))
	out := make([]types.Row, 0, total)
	for _, b := range batches {
		out = append(out, b.Rows...)
	}
	ctx.work(float64(total) * cost.RPTC)
	if len(r.MergeKeys) > 0 && len(batches) > 1 {
		// K-way merge of the per-sender sorted streams. The data movement
		// is implemented as a re-sort of the concatenation for simplicity,
		// but the cost clock charges what a real loser-tree merge costs:
		// one comparison per row.
		ctx.work(float64(total) * cost.RCC)
		sort.SliceStable(out, func(a, b int) bool {
			return types.CompareRows(out[a], out[b], r.MergeKeys) < 0
		})
	}
	return ctx.sourceRows(r, out), nil
}
