// Package exec implements the runtime operators: it executes one fragment
// instance (fragment × site × variant) over the partitioned store,
// exchanging rows with other fragments through a Transport. Execution is
// materialized (each operator consumes its inputs fully), which matches
// the blocking operators that dominate the workloads (hash builds, sorts,
// aggregations); pipelining effects on wall-clock time are captured by the
// simnet cost clock instead.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"gignite/internal/cost"
	"gignite/internal/faults"
	"gignite/internal/fragment"
	"gignite/internal/governor"
	"gignite/internal/joinfilter"
	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/sketch"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Batch is one shipment of rows from a sender instance to a target site.
type Batch struct {
	Rows        []types.Row
	FromFrag    int
	FromSite    int
	FromVariant int
	// Attempt is the sender instance's retry attempt (0 = first try); it
	// feeds the fault injector so a resent batch draws a fresh outcome.
	Attempt int
	Bytes   int64
	// Sorted carries the sender-side collation for merging receivers.
	Sorted []types.SortKey
}

// Transport buffers exchanged batches: batches[exchangeID][targetSite].
// It is safe for concurrent senders and receivers.
type Transport struct {
	mu      sync.Mutex
	batches map[int]map[int][]*Batch
	// Sends records every shipment for the cost clock.
	Sends []SendRecord
	// FailSend, when set, is consulted before every shipment; a non-nil
	// return fails the send (the cluster wires the fault injector here).
	FailSend func(exchange, toSite int, b *Batch) error
	// scratch pools hash senders' per-call routing buffers. Batch row
	// slices themselves are retained by the transport until the query
	// finishes, so only the transient routing state is poolable.
	scratch sync.Pool
}

// sendScratch is the reusable per-call state of one hash-routing send:
// the per-row route assignments and the per-site row counts.
type sendScratch struct {
	routes []int
	counts []int
}

// getScratch borrows a routing buffer sized for rows×sites.
func (t *Transport) getScratch(rows, sites int) *sendScratch {
	sc, _ := t.scratch.Get().(*sendScratch)
	if sc == nil {
		sc = &sendScratch{}
	}
	if cap(sc.routes) < rows {
		sc.routes = make([]int, rows)
	}
	sc.routes = sc.routes[:rows]
	if cap(sc.counts) < sites {
		sc.counts = make([]int, sites)
	}
	sc.counts = sc.counts[:sites]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	return sc
}

func (t *Transport) putScratch(sc *sendScratch) { t.scratch.Put(sc) }

// SendRecord is the cost-clock view of one shipment. Attempt identifies
// the sender attempt so a hedged race's loser can be rolled back without
// touching the winner's shipments.
type SendRecord struct {
	Exchange    int
	FromFrag    int
	FromSite    int
	FromVariant int
	Attempt     int
	ToSite      int
	Bytes       int64
	Rows        int64
}

// NewTransport creates an empty transport.
func NewTransport() *Transport {
	return &Transport{batches: make(map[int]map[int][]*Batch)}
}

// Send ships rows to a target site under an exchange ID. It fails only
// when a FailSend hook rejects the shipment (injected transport faults).
func (t *Transport) Send(exchange, toSite int, b *Batch) error {
	if t.FailSend != nil {
		if err := t.FailSend(exchange, toSite, b); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.batches[exchange]
	if !ok {
		m = make(map[int][]*Batch)
		t.batches[exchange] = m
	}
	m[toSite] = append(m[toSite], b)
	t.Sends = append(t.Sends, SendRecord{
		Exchange: exchange, FromFrag: b.FromFrag, FromSite: b.FromSite,
		FromVariant: b.FromVariant, Attempt: b.Attempt, ToSite: toSite,
		Bytes: b.Bytes, Rows: int64(len(b.Rows)),
	})
	return nil
}

// DiscardFrom rolls back every batch and send record shipped by one
// sender instance, identified by its logical coordinates (fragment,
// logical site, variant). The retry scheduler calls this before re-running
// a failed instance so retried shipments never duplicate rows; the
// returned totals are the rollback's resend cost for the simnet trace.
// Discarding is safe because consumers only receive at the next wave
// barrier, after all retries of the producing wave have settled.
func (t *Transport) DiscardFrom(fromFrag, fromSite, fromVariant int) (bytes float64, rows int64) {
	return t.discard(func(frag, site, variant, attempt int) bool {
		return frag == fromFrag && site == fromSite && variant == fromVariant
	})
}

// DiscardAttempt rolls back the shipments of one specific attempt of a
// sender instance — the losing side of a hedged race — leaving the
// surviving attempt's shipments in place (DESIGN.md §14).
func (t *Transport) DiscardAttempt(fromFrag, fromSite, fromVariant, attempt int) (bytes float64, rows int64) {
	return t.discard(func(frag, site, variant, att int) bool {
		return frag == fromFrag && site == fromSite && variant == fromVariant && att == attempt
	})
}

func (t *Transport) discard(match func(frag, site, variant, attempt int) bool) (bytes float64, rows int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.batches {
		for toSite, bs := range m {
			kept := bs[:0]
			for _, b := range bs {
				if match(b.FromFrag, b.FromSite, b.FromVariant, b.Attempt) {
					continue
				}
				kept = append(kept, b)
			}
			m[toSite] = kept
		}
	}
	keptSends := t.Sends[:0]
	for _, s := range t.Sends {
		if match(s.FromFrag, s.FromSite, s.FromVariant, s.Attempt) {
			bytes += float64(s.Bytes)
			rows += s.Rows
			continue
		}
		keptSends = append(keptSends, s)
	}
	t.Sends = keptSends
	return bytes, rows
}

// Receive returns the batches shipped to a site under an exchange ID.
// The returned slice is a copy in a deterministic order — by sender
// site, then sender variant — so concurrent receivers may reorder or
// truncate it freely, and concurrent senders' arrival order never
// perturbs consumer-side row order.
func (t *Transport) Receive(exchange, site int) []*Batch {
	t.mu.Lock()
	defer t.mu.Unlock()
	src := t.batches[exchange][site]
	out := make([]*Batch, len(src))
	copy(out, src)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].FromSite != out[b].FromSite {
			return out[a].FromSite < out[b].FromSite
		}
		return out[a].FromVariant < out[b].FromVariant
	})
	return out
}

// Context is the execution environment of one fragment instance.
type Context struct {
	Store     *storage.Store
	Transport *Transport
	FragID    int
	// Site is the instance's logical site: the partition slot it covers
	// and the identity its shipments carry. It never changes across
	// retries, which is what keeps failover results byte-identical.
	Site int
	// Host is the physical site executing this attempt — equal to Site
	// until a failover moves the instance onto a backup replica. Scans
	// read partition Site from host Host (storage validates the replica).
	Host int
	// Attempt is the retry attempt number (0 = first try).
	Attempt int
	// Ctx carries the query's cancellation signal; operators check it at
	// row-batch boundaries. nil means not cancellable.
	Ctx context.Context
	// Faults is the query's fault injector (nil = no faults).
	Faults *faults.Injector
	// Variant / NVariants implement §5.3.2 splitters; NVariants is 1 for
	// single-threaded fragments.
	Variant   int
	NVariants int
	// Modes assigns splitter/duplicator roles to sources (nil when the
	// fragment is single-threaded).
	Modes map[physical.Node]fragment.SourceMode
	// CPUWork accumulates modeled work units for the cost clock.
	CPUWork float64
	// WorkLimit aborts execution when CPUWork exceeds it (0 = unlimited).
	// It reproduces the paper's four-hour runtime limit: the IC baseline's
	// nested-loop chains hit it on TPC-H Q17/Q19/Q21.
	WorkLimit float64
	// RowLimit bounds rows materialized by join emission (0 = unlimited);
	// it keeps runaway cross products from exhausting host memory before
	// the work limit trips.
	RowLimit    int64
	rowsEmitted int64
	// rowCounter implements the splitter's read counter per source.
	rowCounters map[physical.Node]int64
	// Mem, when non-nil, is the query's governor memory lease:
	// pipeline-breaking operators (hash builds, aggregations, sorts,
	// receiver buffers, join emission) charge estimated state bytes
	// against it as they accumulate state (DESIGN.md §14). Reservation
	// failures abort only this query, with a typed error naming the
	// operator.
	Mem *governor.Lease
	// SiteMemBytes, when positive, is the host site's injected memory
	// pool (the mem=S@B fault term): an instance whose charges exceed it
	// fails with faults.ErrSiteMem and fails over to the next replica.
	// Enforcement is per-instance and deterministic.
	SiteMemBytes int64
	// memLocal is this attempt's charged bytes (the SiteMemBytes check);
	// memCharged is the subset successfully reserved on the lease, which
	// the scheduler releases when the attempt finishes.
	memLocal   int64
	memCharged int64
	// OpIDs maps this fragment's operators to dense per-fragment operator
	// ids, and Obs is the attempt's private per-operator recorder. Both
	// nil disables instrumentation (microbenchmarks, operator unit tests).
	OpIDs map[physical.Node]int
	Obs   *obs.InstanceObs
	// opStack tracks the operator frames currently executing, so work()
	// attributes modeled work to the operator that charged it (self work,
	// children excluded).
	opStack []int

	// --- runtime join filters (DESIGN.md §13) ---

	// Prebuilt maps a hash join's build-side root to the rows the filter
	// pre-pass already computed at this instance's logical site; runNode
	// returns them instead of re-executing the subtree (work and operator
	// stats for the build were recorded by the pre-pass instance).
	Prebuilt map[physical.Node][]types.Row
	// NodeFilters maps producer-fragment operators to the runtime filters
	// applied at their output (scan-level pushdown, union filter).
	NodeFilters map[physical.Node][]*AppliedFilter
	// SendFilters maps exchange IDs to the per-destination-site filters
	// the Sender tests rows against before batching them.
	SendFilters map[int]*SendFilter
	// FilterTested/FilterPruned aggregate per-filter probe counts for the
	// query's FilterObs records (keyed by filter ID).
	FilterTested map[int]int64
	FilterPruned map[int]int64

	// --- adaptive execution sketches (DESIGN.md §17) ---

	// SketchKeys, when non-nil, maps exchange IDs whose senders build a
	// runtime sketch over the rows they ship to the key columns the
	// sketch hashes (nil value: the exchange target's distribution keys,
	// or the whole row for non-hash targets). The adaptive controller
	// picks the consuming join's equi keys so sketch distinct counts are
	// directly usable for join re-estimation. Sketch maintenance rides
	// the existing per-row send charge (no extra modeled work), so
	// enabling sketches never changes the cost clock.
	SketchKeys map[int][]int
	// Sketches holds the sketches this attempt built, keyed by exchange
	// ID. The scheduler collects them from the winning attempt only, so
	// retries and hedge losers never double-count.
	Sketches map[int]*sketch.Sketch
}

// AppliedFilter is one node-level runtime-filter application: rows whose
// key hash fails the filter are dropped from the node's output. The union
// filter is used because a node-level row may still route to any site.
type AppliedFilter struct {
	ID     int
	Cols   []int
	Filter *joinfilter.Filter
}

// SendFilter is the sender-level application: each destination site gets
// the filter built from that site's hash-join build partition, which is
// far more selective than the union (a probe row only matches the build
// rows co-located with it).
type SendFilter struct {
	ID   int
	Cols []int
	// PerSite is indexed by destination site; nil entries pass all rows.
	PerSite []*joinfilter.Filter
}

// countFilter records one filter application's probe counts.
func (c *Context) countFilter(id int, tested, pruned int64) {
	if c.FilterTested == nil {
		c.FilterTested = make(map[int]int64)
		c.FilterPruned = make(map[int]int64)
	}
	c.FilterTested[id] += tested
	c.FilterPruned[id] += pruned
}

// testRow evaluates one row against a filter: rows with NULL keys can
// never equi-match and are pruned outright.
func filterTestRow(f *joinfilter.Filter, cols []int, r types.Row) bool {
	if rowHasNullKey(r, cols) {
		return false
	}
	return f.Test(r.Hash(cols))
}

// applyNodeFilters drops rows failing any of the node's runtime filters,
// charging test work and recording pruned counts inside the node's open
// operator frame.
func (c *Context) applyNodeFilters(n physical.Node, afs []*AppliedFilter, rows []types.Row) []types.Row {
	for _, af := range afs {
		c.work(float64(len(rows)) * cost.BFTC)
		kept := make([]types.Row, 0, len(rows))
		for _, r := range rows {
			if filterTestRow(af.Filter, af.Cols, r) {
				kept = append(kept, r)
			}
		}
		pruned := int64(len(rows) - len(kept))
		c.countFilter(af.ID, int64(len(rows)), pruned)
		c.opstat(n).addPruned(pruned)
		rows = kept
	}
	return rows
}

// ErrWorkLimit reports an execution exceeding its work limit.
var ErrWorkLimit = errors.New("exec: work limit exceeded")

// ReserveMem charges estimated operator-state bytes against the
// instance's site memory pool and the query's lease, recording the
// operator's memory high-water mark. A failed reservation names the
// operator; the caller aborts the instance (site-pool failures fail over,
// lease failures abort the query).
func (c *Context) ReserveMem(n physical.Node, bytes int64) error {
	if bytes <= 0 {
		return nil
	}
	if st := c.opstat(n); st != nil {
		st.addMem(bytes)
	}
	c.memLocal += bytes
	if c.SiteMemBytes > 0 && c.memLocal > c.SiteMemBytes {
		return fmt.Errorf("exec: %s: site %d memory pool (%d bytes) exhausted: %w",
			n.Describe(), c.Host, c.SiteMemBytes, faults.ErrSiteMem)
	}
	if c.Mem != nil {
		if err := c.Mem.Reserve(bytes); err != nil {
			return fmt.Errorf("exec: %s: %w", n.Describe(), err)
		}
		c.memCharged += bytes
	}
	return nil
}

// ChargedMem returns the bytes this attempt reserved on the query lease;
// the scheduler releases them when the attempt finishes (success or
// failure), so the shared pool tracks live operator state.
func (c *Context) ChargedMem() int64 { return c.memCharged }

// estRowBytes estimates the in-memory footprint of a materialized row set
// from the modeled width of a small sample. It is a pure function of the
// rows, so memory charges are identical at every worker count.
func estRowBytes(rows []types.Row) int64 {
	if len(rows) == 0 {
		return 0
	}
	sample := len(rows)
	if sample > 16 {
		sample = 16
	}
	var w int64
	for _, r := range rows[:sample] {
		w += r.Width()
	}
	return w / int64(sample) * int64(len(rows))
}

func (c *Context) work(units float64) {
	c.CPUWork += units
	if c.Obs != nil && len(c.opStack) > 0 {
		c.Obs.Ops[c.opStack[len(c.opStack)-1]].Work += units
	}
}

// opFrame is one open operator instrumentation frame; id < 0 means the
// operator is untracked and the frame is a no-op.
type opFrame struct {
	id    int
	start time.Time
}

// openOp starts an operator's instrumentation frame.
func (c *Context) openOp(n physical.Node) opFrame {
	if c.Obs == nil {
		return opFrame{id: -1}
	}
	id, ok := c.OpIDs[n]
	if !ok {
		return opFrame{id: -1}
	}
	c.opStack = append(c.opStack, id)
	return opFrame{id: id, start: time.Now()}
}

// closeOp finishes a frame, recording output rows, the materialization
// high-water mark and inclusive wall time.
func (c *Context) closeOp(f opFrame, rows []types.Row) {
	if f.id < 0 {
		return
	}
	c.opStack = c.opStack[:len(c.opStack)-1]
	op := &c.Obs.Ops[f.id]
	op.RowsOut += int64(len(rows))
	op.WallNanos += time.Since(f.start).Nanoseconds()
	if n := int64(len(rows)); n > op.PeakRows {
		op.PeakRows = n
	}
}

// opstat returns an operator's recorder slot (nil when untracked).
func (c *Context) opstat(n physical.Node) *OpStatsRef {
	if c.Obs == nil {
		return nil
	}
	id, ok := c.OpIDs[n]
	if !ok {
		return nil
	}
	return (*OpStatsRef)(&c.Obs.Ops[id])
}

// OpStatsRef aliases an operator's recorder slot for the few operators
// that record extra detail (receiver batches, hash build sizes, scan
// input rows).
type OpStatsRef obs.OpStats

func (o *OpStatsRef) addIn(n int64) {
	if o != nil {
		o.RowsIn += n
	}
}

func (o *OpStatsRef) addBatches(n int64) {
	if o != nil {
		o.Batches += n
	}
}

func (o *OpStatsRef) addBuild(n int64) {
	if o == nil {
		return
	}
	o.BuildRows += n
	if n > o.PeakRows {
		o.PeakRows = n
	}
}

func (o *OpStatsRef) addPruned(n int64) {
	if o != nil {
		o.RowsPruned += n
	}
}

func (o *OpStatsRef) addMem(n int64) {
	if o != nil {
		o.PeakMemBytes += n
	}
}

// overLimit reports whether the instance has exceeded its work budget.
func (c *Context) overLimit() bool {
	return c.WorkLimit > 0 && c.CPUWork > c.WorkLimit
}

// cancelled returns the query's cancellation error, if any. Operators
// call it at row-batch boundaries so deadlines and Ctrl-C stop in-flight
// instances promptly.
func (c *Context) cancelled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// sourceRows applies the §5.3.2 splitter: pass tuple when
// counter % n == variant. Duplicators pass everything. The whole
// partition is still read (and charged), matching the paper's note that
// every variant reads the full partition.
func (c *Context) sourceRows(n physical.Node, rows []types.Row) []types.Row {
	if c.NVariants <= 1 || c.Modes == nil {
		return rows
	}
	mode, ok := c.Modes[n]
	if !ok || mode == fragment.DuplicateMode {
		return rows
	}
	if c.rowCounters == nil {
		c.rowCounters = make(map[physical.Node]int64)
	}
	out := make([]types.Row, 0, len(rows)/c.NVariants+1)
	ctr := c.rowCounters[n]
	for _, r := range rows {
		if int(ctr%int64(c.NVariants)) == c.Variant {
			out = append(out, r)
		}
		ctr++
	}
	c.rowCounters[n] = ctr
	return out
}

// Run executes a fragment instance rooted at n and returns its output
// rows. Sender roots route their rows into the transport and return nil.
func Run(n physical.Node, ctx *Context) ([]types.Row, error) {
	rows, err := runInstance(n, ctx)
	if err != nil {
		return nil, err
	}
	// The limit is also enforced after the final operator so that a
	// fragment whose last operator blew the budget still reports it.
	if ctx.overLimit() {
		return nil, ErrWorkLimit
	}
	return rows, nil
}

func runInstance(n physical.Node, ctx *Context) ([]types.Row, error) {
	switch t := n.(type) {
	case *physical.Sender:
		f := ctx.openOp(t)
		rows, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			ctx.closeOp(f, nil)
			return nil, err
		}
		ctx.opstat(t).addIn(int64(len(rows)))
		err = sendRows(t, rows, ctx)
		ctx.closeOp(f, rows)
		return nil, err
	default:
		return runNode(n, ctx)
	}
}

// runNode executes one operator subtree, wrapping the dispatch in the
// observability frame: output rows, wall time and self modeled work are
// recorded per operator (see Context.openOp).
func runNode(n physical.Node, ctx *Context) ([]types.Row, error) {
	// A subtree the runtime-filter pre-pass already executed at this
	// logical site is served from the cache: its work and operator stats
	// were charged by the pre-pass instance, so re-recording them here
	// would double-count.
	if ctx.Prebuilt != nil {
		if rows, ok := ctx.Prebuilt[n]; ok {
			return rows, nil
		}
	}
	f := ctx.openOp(n)
	rows, err := execNode(n, ctx)
	if err == nil && ctx.NodeFilters != nil {
		if afs, ok := ctx.NodeFilters[n]; ok {
			rows = ctx.applyNodeFilters(n, afs, rows)
		}
	}
	ctx.closeOp(f, rows)
	return rows, err
}

func execNode(n physical.Node, ctx *Context) ([]types.Row, error) {
	if ctx.overLimit() {
		return nil, ErrWorkLimit
	}
	if err := ctx.cancelled(); err != nil {
		return nil, err
	}
	switch t := n.(type) {
	case *physical.TableScan:
		rows, err := ctx.Store.PartitionAt(t.Table.Name, ctx.Site, ctx.Host)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(rows)))
		ctx.work(float64(len(rows)) * cost.RPTC)
		return ctx.sourceRows(n, rows), nil

	case *physical.IndexScan:
		rows, err := ctx.Store.IndexScanAt(t.Table.Name, t.Index.Name, ctx.Site, ctx.Host, nil, nil)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(rows)))
		ctx.work(float64(len(rows)) * cost.RPTC * 1.2)
		return ctx.sourceRows(n, rows), nil

	case *physical.Values:
		return t.Rows, nil

	case *physical.Receiver:
		return runReceiver(t, ctx)

	case *physical.Filter:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		ctx.work(float64(len(in)) * (cost.RPTC + cost.RCC))
		out := make([]types.Row, 0, len(in))
		for _, r := range in {
			v := t.Cond.Eval(r)
			if v.K == types.KindBool && v.Bool() {
				out = append(out, r)
			}
		}
		return out, nil

	case *physical.Project:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		ctx.work(float64(len(in)) * cost.RPTC * float64(len(t.Exprs)))
		out := make([]types.Row, len(in))
		for i, r := range in {
			if i%4096 == 4095 {
				if err := ctx.cancelled(); err != nil {
					return nil, err
				}
			}
			row := make(types.Row, len(t.Exprs))
			for j, e := range t.Exprs {
				row[j] = e.Eval(r)
			}
			out[i] = row
		}
		return out, nil

	case *physical.Sort:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		// The sort materializes a full copy of its input.
		if err := ctx.ReserveMem(n, estRowBytes(in)); err != nil {
			return nil, err
		}
		n := float64(len(in))
		if n > 1 {
			ctx.work(n * cost.RPTC)
			ctx.work(n * math.Log2(n) * cost.RCC)
		}
		out := make([]types.Row, len(in))
		copy(out, in)
		if err := sortRowsCancellable(out, t.Keys, ctx); err != nil {
			return nil, err
		}
		return out, nil

	case *physical.Limit:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		if int64(len(in)) > t.N {
			in = in[:t.N]
		}
		ctx.work(float64(len(in)) * cost.RPTC)
		return in, nil

	case *physical.HashAggregate:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		return runHashAggregate(t, t.GroupBy, t.Aggs, in, ctx)

	case *physical.SortAggregate:
		in, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(in)))
		return runSortAggregate(t, t.GroupBy, t.Aggs, in, ctx)

	case *physical.Join:
		left, err := runNode(t.Inputs()[0], ctx)
		if err != nil {
			return nil, err
		}
		right, err := runNode(t.Inputs()[1], ctx)
		if err != nil {
			return nil, err
		}
		ctx.opstat(n).addIn(int64(len(left) + len(right)))
		return runJoin(t, left, right, ctx)

	default:
		return nil, fmt.Errorf("exec: no runtime for %T", n)
	}
}

// sendRows routes a sender's output per its target distribution. Batches
// carry the instance's logical coordinates (Site, not Host), so a
// failed-over sender ships under the same identity the owner would have —
// receivers order by that identity, keeping failover results
// byte-identical.
func sendRows(s *physical.Sender, rows []types.Row, ctx *Context) error {
	sites := ctx.Store.Sites()
	mk := func(rs []types.Row) *Batch {
		var bytes int64
		for _, r := range rs {
			bytes += r.Width()
		}
		return &Batch{
			Rows: rs, FromFrag: ctx.FragID, FromSite: ctx.Site,
			FromVariant: ctx.Variant, Attempt: ctx.Attempt,
			Bytes: bytes, Sorted: s.Collation(),
		}
	}
	var sf *SendFilter
	if ctx.SendFilters != nil {
		sf = ctx.SendFilters[s.ExchangeID]
	}
	ctx.work(float64(len(rows)) * cost.RPTC)
	ctx.sketchRows(s, rows)
	switch s.Target.Type {
	case physical.Single:
		out := rows
		if sf != nil {
			out = ctx.filterToSite(s, sf, rows, 0)
		}
		return ctx.Transport.Send(s.ExchangeID, 0, mk(out))
	case physical.Broadcast:
		for site := 0; site < sites; site++ {
			out := rows
			if sf != nil {
				// Each destination's copy is pruned against that site's
				// build filter independently: a broadcast row only needs to
				// reach the sites whose build partition could match it.
				out = ctx.filterToSite(s, sf, rows, site)
			}
			if err := ctx.Transport.Send(s.ExchangeID, site, mk(out)); err != nil {
				return err
			}
		}
	case physical.Hash:
		// Two-pass routing over a pooled scratch: compute every row's
		// destination (and filter verdict) once, then carve exact-size
		// per-site slices out of one backing array. This keeps the hot
		// send path free of append-growth reallocations.
		sc := ctx.Transport.getScratch(len(rows), sites)
		defer ctx.Transport.putScratch(sc)
		var pruned int64
		for i, r := range rows {
			site := routeRow(r, s.Target.Keys, sites)
			if sf != nil {
				if siteF := sf.PerSite[site]; !filterTestRow(siteF, sf.Cols, r) {
					sc.routes[i] = -1
					pruned++
					continue
				}
			}
			sc.routes[i] = site
			sc.counts[site]++
		}
		if sf != nil {
			ctx.work(float64(len(rows)) * cost.BFTC)
			ctx.countFilter(sf.ID, int64(len(rows)), pruned)
			ctx.opstat(s).addPruned(pruned)
		}
		backing := make([]types.Row, len(rows)-int(pruned))
		buckets := make([][]types.Row, sites)
		off := 0
		for site, n := range sc.counts {
			buckets[site] = backing[off : off : off+n]
			off += n
		}
		for i, r := range rows {
			if site := sc.routes[i]; site >= 0 {
				buckets[site] = append(buckets[site], r)
			}
		}
		for site, b := range buckets {
			if err := ctx.Transport.Send(s.ExchangeID, site, mk(b)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sketchRows feeds a sender's output into the exchange's runtime sketch
// when adaptive execution asked for one. The sketch summarizes the rows
// the sender produced (pre-routing, pre-runtime-filter), keyed by the
// columns the controller requested — falling back to the target's
// distribution keys, then the whole row — so merged sketches estimate
// the exchange's key cardinality and skew.
func (c *Context) sketchRows(s *physical.Sender, rows []types.Row) {
	if c.SketchKeys == nil {
		return
	}
	keys, enabled := c.SketchKeys[s.ExchangeID]
	if !enabled {
		return
	}
	if c.Sketches == nil {
		c.Sketches = make(map[int]*sketch.Sketch)
	}
	sk := c.Sketches[s.ExchangeID]
	if sk == nil {
		sk = sketch.New()
		c.Sketches[s.ExchangeID] = sk
	}
	if len(keys) == 0 {
		keys = s.Target.Keys
	}
	if len(keys) == 0 && len(rows) > 0 {
		keys = allCols(len(rows[0]))
	}
	for _, r := range rows {
		sk.Add(r.Hash(keys))
	}
}

// filterToSite returns the rows passing one destination site's runtime
// filter, charging test work and recording pruned counts against the
// sender's operator slot.
func (c *Context) filterToSite(s *physical.Sender, sf *SendFilter, rows []types.Row, site int) []types.Row {
	f := sf.PerSite[site]
	c.work(float64(len(rows)) * cost.BFTC)
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		if filterTestRow(f, sf.Cols, r) {
			out = append(out, r)
		}
	}
	pruned := int64(len(rows) - len(out))
	c.countFilter(sf.ID, int64(len(rows)), pruned)
	c.opstat(s).addPruned(pruned)
	return out
}

// routeRow picks the target partition for a row under a hash target. A
// single-key route uses the storage placement function so that exchanged
// rows land where the co-located partitions live; multi-key and keyless
// targets use a combined row hash.
func routeRow(r types.Row, keys []int, sites int) int {
	if sites <= 1 {
		return 0
	}
	if len(keys) == 1 {
		return storage.PartitionOf(r[keys[0]], sites)
	}
	if len(keys) == 0 {
		return int(r.Hash(allCols(len(r))) % uint64(sites))
	}
	return int(r.Hash(keys) % uint64(sites))
}

func allCols(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// runReceiver collects the batches for this site, merging sorted streams
// when the receiver is a merging receiver.
func runReceiver(r *physical.Receiver, ctx *Context) ([]types.Row, error) {
	batches := ctx.Transport.Receive(r.ExchangeID, ctx.Site)
	var total int
	for _, b := range batches {
		total += len(b.Rows)
	}
	st := ctx.opstat(r)
	st.addIn(int64(total))
	st.addBatches(int64(len(batches)))
	out := make([]types.Row, 0, total)
	for _, b := range batches {
		out = append(out, b.Rows...)
	}
	// The receiver buffers every inbound batch before the consumer runs.
	if err := ctx.ReserveMem(r, estRowBytes(out)); err != nil {
		return nil, err
	}
	ctx.work(float64(total) * cost.RPTC)
	if len(r.MergeKeys) > 0 && len(batches) > 1 {
		// K-way merge of the per-sender sorted streams. The data movement
		// is implemented as a re-sort of the concatenation for simplicity,
		// but the cost clock charges what a real loser-tree merge costs:
		// one comparison per row.
		ctx.work(float64(total) * cost.RCC)
		if err := sortRowsCancellable(out, r.MergeKeys, ctx); err != nil {
			return nil, err
		}
	}
	return ctx.sourceRows(r, out), nil
}
