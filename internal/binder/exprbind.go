package binder

import (
	"fmt"
	"strconv"
	"strings"

	"gignite/internal/expr"
	"gignite/internal/sql"
	"gignite/internal/types"
)

// exprBinder converts AST expressions into typed expr trees.
//
// Name resolution is two-phase: the inner scope first, then (when set) the
// outer scope — the fallback marks correlation. When an outer scope is
// present, the produced column references address the concatenated
// [outer ++ inner] row: outer columns keep their indices and inner columns
// are shifted by the outer width.
//
// When aggs is non-nil, aggregate function calls are permitted: their
// arguments are bound against the input scope, the calls are collected
// (deduplicated by digest), and a placeholder node stands in for the value
// until rewritePostAgg maps it to the aggregate operator's output.
type exprBinder struct {
	b     *Binder
	inner *scope
	outer *scope
	aggs  *aggCollector
}

// aggCollector accumulates aggregate calls found while binding.
type aggCollector struct {
	calls   []expr.AggCall
	digests map[string]int
}

func newAggCollector() *aggCollector {
	return &aggCollector{digests: make(map[string]int)}
}

func (c *aggCollector) add(call expr.AggCall) int {
	d := call.String()
	if i, ok := c.digests[d]; ok {
		return i
	}
	i := len(c.calls)
	c.calls = append(c.calls, call)
	c.digests[d] = i
	return i
}

// aggPlaceholder stands in for the value of collected aggregate call i
// until the aggregate operator is built. It must never be evaluated.
type aggPlaceholder struct {
	idx  int
	kind types.Kind
}

func (a *aggPlaceholder) Kind() types.Kind { return a.kind }

func (a *aggPlaceholder) Eval(types.Row) types.Value {
	panic("binder: aggregate placeholder evaluated; rewritePostAgg was not applied")
}

func (a *aggPlaceholder) String() string        { return fmt.Sprintf("#agg%d", a.idx) }
func (a *aggPlaceholder) Children() []expr.Expr { return nil }

func (a *aggPlaceholder) WithChildren(children []expr.Expr) expr.Expr {
	if len(children) != 0 {
		panic("binder: aggPlaceholder has no children")
	}
	return a
}

// bind converts one AST node.
func (eb *exprBinder) bind(n sql.Node) (expr.Expr, error) {
	switch e := n.(type) {
	case *sql.Ident:
		return eb.bindIdent(e)
	case *sql.NumberLit:
		if e.IsInt {
			v, err := strconv.ParseInt(e.Text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("binder: bad integer literal %q", e.Text)
			}
			return expr.NewLit(types.NewInt(v)), nil
		}
		v, err := strconv.ParseFloat(e.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("binder: bad numeric literal %q", e.Text)
		}
		return expr.NewLit(types.NewFloat(v)), nil
	case *sql.StringLit:
		return expr.NewLit(types.NewString(e.Val)), nil
	case *sql.NullLit:
		return expr.NewLit(types.Null), nil
	case *sql.DateLit:
		v, err := types.ParseDate(e.Val)
		if err != nil {
			return nil, err
		}
		return expr.NewLit(v), nil
	case *sql.IntervalLit:
		return nil, fmt.Errorf("binder: interval literal outside date arithmetic")
	case *sql.ParamExpr:
		if eb.b == nil {
			return nil, fmt.Errorf("binder: parameters are not supported here")
		}
		// The placeholder starts untyped; bindBinary/BETWEEN/IN contexts
		// upgrade the hint from the sibling operand via hintParam.
		eb.b.noteParam(e.Ordinal, types.KindNull)
		return expr.NewParam(e.Ordinal, types.KindNull), nil
	case *sql.BinaryExpr:
		return eb.bindBinary(e)
	case *sql.UnaryExpr:
		inner, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(e.Op, "NOT") {
			return expr.NewNot(inner), nil
		}
		return expr.NewNeg(inner), nil
	case *sql.FuncCall:
		return eb.bindFunc(e)
	case *sql.CaseExpr:
		whens := make([]expr.When, len(e.Whens))
		for i, w := range e.Whens {
			cond, err := eb.bind(w.Cond)
			if err != nil {
				return nil, err
			}
			res, err := eb.bind(w.Result)
			if err != nil {
				return nil, err
			}
			whens[i] = expr.When{Cond: cond, Result: res}
		}
		var els expr.Expr
		if e.Else != nil {
			var err error
			els, err = eb.bind(e.Else)
			if err != nil {
				return nil, err
			}
		}
		return expr.NewCase(whens, els), nil
	case *sql.InExpr:
		if e.Select != nil {
			return nil, fmt.Errorf("binder: IN subqueries are only supported as top-level WHERE/HAVING conjuncts")
		}
		lhs, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(e.List))
		for i, item := range e.List {
			list[i], err = eb.bind(item)
			if err != nil {
				return nil, err
			}
			list[i] = eb.hintParam(list[i], lhs.Kind())
			lhs = eb.hintParam(lhs, list[i].Kind())
		}
		return expr.NewInList(lhs, list, e.Negate), nil
	case *sql.BetweenExpr:
		// Desugar to lo <= e AND e <= hi (negated: e < lo OR e > hi).
		v, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		lo, err := eb.bind(e.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := eb.bind(e.Hi)
		if err != nil {
			return nil, err
		}
		lo = eb.hintParam(lo, v.Kind())
		hi = eb.hintParam(hi, v.Kind())
		v = eb.hintParam(v, lo.Kind())
		v = eb.hintParam(v, hi.Kind())
		if e.Negate {
			return expr.NewBinOp(expr.OpOr,
				expr.NewBinOp(expr.OpLt, v, lo),
				expr.NewBinOp(expr.OpGt, v, hi)), nil
		}
		return expr.NewBinOp(expr.OpAnd,
			expr.NewBinOp(expr.OpGe, v, lo),
			expr.NewBinOp(expr.OpLe, v, hi)), nil
	case *sql.LikeExpr:
		v, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		pat, err := eb.bind(e.Pattern)
		if err != nil {
			return nil, err
		}
		lit, ok := expr.Fold(pat).(*expr.Lit)
		if !ok || lit.Val.K != types.KindString {
			return nil, fmt.Errorf("binder: LIKE pattern must be a constant string")
		}
		return expr.NewLike(v, lit.Val.S, e.Negate), nil
	case *sql.IsNullExpr:
		v, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		return expr.NewIsNull(v, e.Negate), nil
	case *sql.CastExpr:
		v, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		k, err := KindOfTypeName(e.Type)
		if err != nil {
			return nil, err
		}
		return expr.NewCast(v, k), nil
	case *sql.ExtractExpr:
		v, err := eb.bind(e.E)
		if err != nil {
			return nil, err
		}
		switch e.Field {
		case "YEAR":
			return expr.MustFunc(expr.FuncExtractYear, v), nil
		case "MONTH":
			return expr.MustFunc(expr.FuncExtractMonth, v), nil
		default:
			return nil, fmt.Errorf("binder: unsupported EXTRACT field %s", e.Field)
		}
	case *sql.SubstringExpr:
		s, err := eb.bind(e.S)
		if err != nil {
			return nil, err
		}
		from, err := eb.bind(e.From)
		if err != nil {
			return nil, err
		}
		forN, err := eb.bind(e.For)
		if err != nil {
			return nil, err
		}
		return expr.MustFunc(expr.FuncSubstring, s, from, forN), nil
	case *sql.SubqueryExpr:
		return nil, fmt.Errorf("binder: scalar subqueries are only supported as top-level WHERE/HAVING comparison operands")
	case *sql.ExistsExpr:
		return nil, fmt.Errorf("binder: EXISTS is only supported as a top-level WHERE conjunct")
	default:
		return nil, fmt.Errorf("binder: unsupported expression %T", n)
	}
}

func (eb *exprBinder) bindIdent(id *sql.Ident) (expr.Expr, error) {
	idx, f, err := eb.inner.resolve(id.Qualifier, id.Name)
	if err == nil {
		if eb.outer != nil {
			idx += len(eb.outer.fields)
		}
		return expr.NewColRef(idx, f.Kind, f.Name), nil
	}
	if !isUnresolved(err) {
		return nil, err
	}
	if eb.outer != nil {
		oidx, of, oerr := eb.outer.resolve(id.Qualifier, id.Name)
		if oerr == nil {
			return expr.NewColRef(oidx, of.Kind, of.Name), nil
		}
	}
	return nil, err
}

func (eb *exprBinder) bindBinary(e *sql.BinaryExpr) (expr.Expr, error) {
	// Date ± interval arithmetic folds to a date literal.
	if iv, ok := e.R.(*sql.IntervalLit); ok {
		return eb.bindIntervalArith(e.L, e.Op, iv)
	}
	if iv, ok := e.L.(*sql.IntervalLit); ok {
		if e.Op != "+" {
			return nil, fmt.Errorf("binder: interval must be the right operand of -")
		}
		return eb.bindIntervalArith(e.R, e.Op, iv)
	}
	l, err := eb.bind(e.L)
	if err != nil {
		return nil, err
	}
	r, err := eb.bind(e.R)
	if err != nil {
		return nil, err
	}
	op, err := opOf(e.Op)
	if err != nil {
		return nil, err
	}
	l = eb.hintParam(l, r.Kind())
	r = eb.hintParam(r, l.Kind())
	return expr.NewBinOp(op, l, r), nil
}

// hintParam retypes an untyped placeholder with a kind inferred from its
// sibling operand, recording the hint on the binder so execution can
// coerce arguments accordingly. Non-params and already-typed params pass
// through.
func (eb *exprBinder) hintParam(e expr.Expr, kind types.Kind) expr.Expr {
	p, ok := e.(*expr.Param)
	if !ok || p.Typ != types.KindNull || kind == types.KindNull || eb.b == nil {
		return e
	}
	eb.b.noteParam(p.Ordinal, kind)
	return expr.NewParam(p.Ordinal, kind)
}

func (eb *exprBinder) bindIntervalArith(dateNode sql.Node, op string, iv *sql.IntervalLit) (expr.Expr, error) {
	d, err := eb.bind(dateNode)
	if err != nil {
		return nil, err
	}
	lit, ok := expr.Fold(d).(*expr.Lit)
	if !ok || lit.Val.K != types.KindDate {
		return nil, fmt.Errorf("binder: interval arithmetic requires a constant date operand")
	}
	n := iv.N
	switch op {
	case "+":
	case "-":
		n = -n
	default:
		return nil, fmt.Errorf("binder: unsupported interval operator %q", op)
	}
	v, err := expr.AddInterval(lit.Val, n, iv.Unit)
	if err != nil {
		return nil, err
	}
	return expr.NewLit(v), nil
}

func opOf(op string) (expr.Op, error) {
	switch strings.ToUpper(op) {
	case "+":
		return expr.OpAdd, nil
	case "-":
		return expr.OpSub, nil
	case "*":
		return expr.OpMul, nil
	case "/":
		return expr.OpDiv, nil
	case "%":
		return expr.OpMod, nil
	case "=":
		return expr.OpEq, nil
	case "<>":
		return expr.OpNe, nil
	case "<":
		return expr.OpLt, nil
	case "<=":
		return expr.OpLe, nil
	case ">":
		return expr.OpGt, nil
	case ">=":
		return expr.OpGe, nil
	case "AND":
		return expr.OpAnd, nil
	case "OR":
		return expr.OpOr, nil
	default:
		return 0, fmt.Errorf("binder: unsupported operator %q", op)
	}
}

func (eb *exprBinder) bindFunc(f *sql.FuncCall) (expr.Expr, error) {
	if sql.IsAggregateName(f.Name) {
		return eb.bindAggCall(f)
	}
	switch strings.ToUpper(f.Name) {
	case "UPPER", "LOWER", "ABS", "CHAR_LENGTH", "LENGTH":
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("binder: %s expects one argument", f.Name)
		}
		arg, err := eb.bind(f.Args[0])
		if err != nil {
			return nil, err
		}
		var name expr.FuncName
		switch strings.ToUpper(f.Name) {
		case "UPPER":
			name = expr.FuncUpper
		case "LOWER":
			name = expr.FuncLower
		case "ABS":
			name = expr.FuncAbs
		default:
			name = expr.FuncLength
		}
		return expr.MustFunc(name, arg), nil
	default:
		return nil, fmt.Errorf("binder: unknown function %s", f.Name)
	}
}

func (eb *exprBinder) bindAggCall(f *sql.FuncCall) (expr.Expr, error) {
	if eb.aggs == nil {
		return nil, fmt.Errorf("binder: aggregate %s is not allowed here", f.Name)
	}
	call := expr.AggCall{Distinct: f.Distinct}
	switch strings.ToUpper(f.Name) {
	case "COUNT":
		call.Func = expr.AggCount
	case "SUM":
		call.Func = expr.AggSum
	case "AVG":
		call.Func = expr.AggAvg
	case "MIN":
		call.Func = expr.AggMin
	case "MAX":
		call.Func = expr.AggMax
	}
	if f.Star {
		if call.Func != expr.AggCount {
			return nil, fmt.Errorf("binder: %s(*) is not valid", f.Name)
		}
	} else {
		if len(f.Args) != 1 {
			return nil, fmt.Errorf("binder: %s expects one argument", f.Name)
		}
		// Aggregate arguments bind over the input scope; nested aggregates
		// are invalid.
		saved := eb.aggs
		eb.aggs = nil
		arg, err := eb.bind(f.Args[0])
		eb.aggs = saved
		if err != nil {
			return nil, err
		}
		call.Arg = arg
	}
	idx := eb.aggs.add(call)
	return &aggPlaceholder{idx: idx, kind: call.Kind()}, nil
}

// containsAggregate reports whether a query uses aggregate functions in
// its SELECT items or HAVING clause.
func containsAggregate(sel *sql.SelectStmt) bool {
	for _, item := range sel.Items {
		if item.Expr != nil && nodeHasAggregate(item.Expr) {
			return true
		}
	}
	return sel.Having != nil && nodeHasAggregate(sel.Having)
}

func nodeHasAggregate(n sql.Node) bool {
	switch e := n.(type) {
	case *sql.FuncCall:
		if sql.IsAggregateName(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if nodeHasAggregate(a) {
				return true
			}
		}
	case *sql.BinaryExpr:
		return nodeHasAggregate(e.L) || nodeHasAggregate(e.R)
	case *sql.UnaryExpr:
		return nodeHasAggregate(e.E)
	case *sql.CaseExpr:
		for _, w := range e.Whens {
			if nodeHasAggregate(w.Cond) || nodeHasAggregate(w.Result) {
				return true
			}
		}
		if e.Else != nil {
			return nodeHasAggregate(e.Else)
		}
	case *sql.InExpr:
		if nodeHasAggregate(e.E) {
			return true
		}
		for _, item := range e.List {
			if nodeHasAggregate(item) {
				return true
			}
		}
	case *sql.BetweenExpr:
		return nodeHasAggregate(e.E) || nodeHasAggregate(e.Lo) || nodeHasAggregate(e.Hi)
	case *sql.LikeExpr:
		return nodeHasAggregate(e.E)
	case *sql.IsNullExpr:
		return nodeHasAggregate(e.E)
	case *sql.CastExpr:
		return nodeHasAggregate(e.E)
	case *sql.ExtractExpr:
		return nodeHasAggregate(e.E)
	case *sql.SubstringExpr:
		return nodeHasAggregate(e.S) || nodeHasAggregate(e.From) || nodeHasAggregate(e.For)
	}
	return false
}
