package binder

import (
	"fmt"
	"strings"

	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/sql"
)

// bindAggregation plans GROUP BY / aggregate queries:
//
//	input → Project(group exprs ++ agg args) → Aggregate → [HAVING filters
//	and scalar-subquery joins] → (select items become the caller's final
//	projection)
//
// It returns the plan under the final projection and the rewritten select
// item expressions over that plan's schema.
func (b *Binder) bindAggregation(plan logical.Node, sc *scope, sel *sql.SelectStmt) (
	logical.Node, []expr.Expr, []string, error) {

	collector := newAggCollector()

	// Bind GROUP BY expressions over the input scope.
	groupExprs := make([]expr.Expr, 0, len(sel.GroupBy))
	groupNames := make([]string, 0, len(sel.GroupBy))
	for _, g := range sel.GroupBy {
		eb := &exprBinder{b: b, inner: sc}
		e, err := eb.bind(g)
		if err != nil && isUnresolved(err) {
			// GROUP BY may reference a select-item alias.
			if e2, ok := b.groupByAlias(g, sel, sc); ok {
				e, err = e2, nil
			}
		}
		if err != nil {
			return nil, nil, nil, err
		}
		groupExprs = append(groupExprs, e)
		groupNames = append(groupNames, groupExprName(e))
	}

	// Pass A: bind select items and HAVING with aggregate collection.
	boundItems := make([]expr.Expr, len(sel.Items))
	itemNames := make([]string, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return nil, nil, nil, fmt.Errorf("binder: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		eb := &exprBinder{b: b, inner: sc, aggs: collector}
		e, err := eb.bind(item.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		boundItems[i] = e
		itemNames[i] = itemName(item)
	}

	// HAVING conjuncts: scalar-subquery comparisons keep their subquery for
	// later expansion; everything else binds now (with collection).
	type havingConjunct struct {
		plain    expr.Expr // non-nil for ordinary predicates
		lhs      expr.Expr // non-nil for scalar-subquery comparisons
		op       string
		sub      *sql.SelectStmt
		reversed bool
	}
	var having []havingConjunct
	if sel.Having != nil {
		for _, conj := range splitASTConjuncts(sel.Having) {
			if cmp, ok := conj.(*sql.BinaryExpr); ok && isComparisonOp(cmp.Op) {
				if sub, ok := cmp.R.(*sql.SubqueryExpr); ok {
					eb := &exprBinder{b: b, inner: sc, aggs: collector}
					lhs, err := eb.bind(cmp.L)
					if err != nil {
						return nil, nil, nil, err
					}
					having = append(having, havingConjunct{lhs: lhs, op: cmp.Op, sub: sub.Select})
					continue
				}
				if sub, ok := cmp.L.(*sql.SubqueryExpr); ok {
					eb := &exprBinder{b: b, inner: sc, aggs: collector}
					lhs, err := eb.bind(cmp.R)
					if err != nil {
						return nil, nil, nil, err
					}
					having = append(having, havingConjunct{lhs: lhs, op: cmp.Op, sub: sub.Select, reversed: true})
					continue
				}
			}
			eb := &exprBinder{b: b, inner: sc, aggs: collector}
			e, err := eb.bind(conj)
			if err != nil {
				return nil, nil, nil, err
			}
			having = append(having, havingConjunct{plain: e})
		}
	}

	// Build the pre-projection: group expressions then deduplicated
	// aggregate arguments.
	preExprs := append([]expr.Expr{}, groupExprs...)
	preNames := append([]string{}, groupNames...)
	argPos := make([]int, len(collector.calls)) // call → pre-projection column (-1 for COUNT(*))
	argDigests := make(map[string]int)
	for i, call := range collector.calls {
		if call.Arg == nil {
			argPos[i] = -1
			continue
		}
		d := expr.Digest(call.Arg)
		if p, ok := argDigests[d]; ok {
			argPos[i] = p
			continue
		}
		p := len(preExprs)
		preExprs = append(preExprs, call.Arg)
		preNames = append(preNames, fmt.Sprintf("__aggarg%d", i))
		argDigests[d] = p
		argPos[i] = p
	}
	pre := logical.NewProject(plan, preExprs, preNames)

	// Build the aggregate: group columns are the leading pre-projection
	// columns; each call's argument becomes a column reference.
	groupCols := make([]int, len(groupExprs))
	for i := range groupCols {
		groupCols[i] = i
	}
	calls := make([]expr.AggCall, len(collector.calls))
	preSchema := pre.Schema()
	for i, call := range collector.calls {
		nc := call
		if argPos[i] >= 0 {
			p := argPos[i]
			nc.Arg = expr.NewColRef(p, preSchema[p].Kind, preSchema[p].Name)
		}
		nc.Name = fmt.Sprintf("__agg%d", i)
		calls[i] = nc
	}
	var out logical.Node = logical.NewAggregate(pre, groupCols, calls)

	// Digest table for rewriting post-aggregation expressions.
	groupDigests := make(map[string]int, len(groupExprs))
	for i, g := range groupExprs {
		groupDigests[expr.Digest(g)] = i
	}
	aggOffset := len(groupExprs)
	rewrite := func(e expr.Expr) (expr.Expr, error) {
		return rewritePostAggRec(e, groupDigests, aggOffset)
	}

	// Apply HAVING.
	for _, h := range having {
		if h.plain != nil {
			cond, err := rewrite(h.plain)
			if err != nil {
				return nil, nil, nil, err
			}
			out = logical.NewFilter(out, cond)
			continue
		}
		lhs, err := rewrite(h.lhs)
		if err != nil {
			return nil, nil, nil, err
		}
		aggScope := newScope(out.Schema())
		out, err = b.bindScalarCompareBound(out, aggScope, lhs, h.op, h.sub, h.reversed)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	// Rewrite the select items over the aggregate output.
	itemExprs := make([]expr.Expr, len(boundItems))
	for i, e := range boundItems {
		r, err := rewrite(e)
		if err != nil {
			return nil, nil, nil, err
		}
		itemExprs[i] = r
	}
	return out, itemExprs, itemNames, nil
}

// groupByAlias resolves a GROUP BY item that names a select-item alias.
func (b *Binder) groupByAlias(g sql.Node, sel *sql.SelectStmt, sc *scope) (expr.Expr, bool) {
	id, ok := g.(*sql.Ident)
	if !ok || id.Qualifier != "" {
		return nil, false
	}
	for _, item := range sel.Items {
		if item.Alias != "" && strings.EqualFold(item.Alias, id.Name) {
			eb := &exprBinder{b: b, inner: sc}
			e, err := eb.bind(item.Expr)
			if err == nil {
				return e, true
			}
		}
	}
	return nil, false
}

// groupExprName names a pre-projection group column: plain column
// references keep their qualified name so later resolution still works.
func groupExprName(e expr.Expr) string {
	if c, ok := e.(*expr.ColRef); ok && c.Name != "" {
		return c.Name
	}
	return ""
}

// rewritePostAggRec rewrites a bound expression (which may contain
// aggregate placeholders and references to input columns) into an
// expression over the aggregate operator's output. It matches group
// expressions top-down by digest so that a grouped expression like
// EXTRACT(YEAR FROM d) maps to its group column as a whole.
func rewritePostAggRec(e expr.Expr, groupDigests map[string]int, aggOffset int) (expr.Expr, error) {
	if p, ok := e.(*aggPlaceholder); ok {
		return expr.NewColRef(aggOffset+p.idx, p.kind, ""), nil
	}
	if g, ok := groupDigests[expr.Digest(e)]; ok {
		name := ""
		if c, ok := e.(*expr.ColRef); ok {
			name = c.Name
		}
		return expr.NewColRef(g, e.Kind(), name), nil
	}
	if _, ok := e.(*expr.ColRef); ok {
		return nil, fmt.Errorf("binder: column %s must appear in the GROUP BY clause or be used in an aggregate", e)
	}
	children := e.Children()
	if len(children) == 0 {
		return e, nil
	}
	newChildren := make([]expr.Expr, len(children))
	for i, ch := range children {
		r, err := rewritePostAggRec(ch, groupDigests, aggOffset)
		if err != nil {
			return nil, err
		}
		newChildren[i] = r
	}
	return e.WithChildren(newChildren), nil
}
