package binder

import (
	"fmt"

	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/sql"
)

// This file implements subquery planning by decorrelation into joins:
//
//	[NOT] EXISTS (sub)          → semi/anti join on the correlation conjuncts
//	x [NOT] IN (SELECT c ...)   → semi/anti join on x = c
//	x op (SELECT agg ...)       → join against the (grouped) aggregate and a
//	                              filter x op <scalar column>
//
// Joins produced this way are marked FromCorrelate; the paper's missing
// FILTER_CORRELATE rule governs whether later filter pushdown may cross
// them (IC lacks the rule, IC+ has it).

// bindExists expands a [NOT] EXISTS conjunct into a semi or anti join.
func (b *Binder) bindExists(plan logical.Node, sc *scope, ex *sql.ExistsExpr, negate bool) (logical.Node, error) {
	jt := logical.JoinSemi
	if negate {
		jt = logical.JoinAnti
	}
	// Uncorrelated EXISTS: a semi join on TRUE (no correlation, so filter
	// pushdown does not need FILTER_CORRELATE to cross it).
	inner, _, err := b.bindQuery(ex.Select, nil)
	if err == nil {
		return logical.NewJoin(plan, inner, jt, expr.True), nil
	}
	if !isUnresolved(err) {
		return nil, err
	}
	innerPlan, corr, _, err := b.bindCorrelated(ex.Select, sc)
	if err != nil {
		return nil, err
	}
	j := logical.NewJoin(plan, innerPlan, jt, expr.Conjunction(corr))
	j.FromCorrelate = true
	return j, nil
}

// bindInSubquery expands x [NOT] IN (SELECT ...) into a semi/anti join.
// The subquery must be uncorrelated (the benchmark workloads never use
// correlated IN).
func (b *Binder) bindInSubquery(plan logical.Node, sc *scope, in *sql.InExpr) (logical.Node, error) {
	eb := &exprBinder{b: b, inner: sc}
	lhs, err := eb.bind(in.E)
	if err != nil {
		return nil, err
	}
	inner, _, err := b.bindQuery(in.Select, nil)
	if err != nil {
		if isUnresolved(err) {
			return nil, fmt.Errorf("binder: correlated IN subqueries are not supported: %w", err)
		}
		return nil, err
	}
	innerSchema := inner.Schema()
	if len(innerSchema) != 1 {
		return nil, fmt.Errorf("binder: IN subquery must return one column, got %d", len(innerSchema))
	}
	jt := logical.JoinSemi
	if in.Negate {
		jt = logical.JoinAnti
	}
	leftW := len(plan.Schema())
	cond := expr.NewBinOp(expr.OpEq, lhs,
		expr.NewColRef(leftW, innerSchema[0].Kind, innerSchema[0].Name))
	return logical.NewJoin(plan, inner, jt, cond), nil
}

// bindScalarCompare expands `lhs op (SELECT ...)` (or the reversed form)
// by joining the subquery result and filtering on the comparison.
func (b *Binder) bindScalarCompare(plan logical.Node, sc *scope, lhsAST sql.Node,
	op string, sub *sql.SelectStmt, reversed bool) (logical.Node, error) {
	eb := &exprBinder{b: b, inner: sc}
	lhs, err := eb.bind(lhsAST)
	if err != nil {
		return nil, err
	}
	return b.bindScalarCompareBound(plan, sc, lhs, op, sub, reversed)
}

// bindScalarCompareBound is bindScalarCompare with an already-bound left
// operand (used by HAVING, whose operands must be aggregate-rewritten
// first).
func (b *Binder) bindScalarCompareBound(plan logical.Node, sc *scope, lhs expr.Expr,
	op string, sub *sql.SelectStmt, reversed bool) (logical.Node, error) {

	joined, scalarCol, err := b.joinScalarSubquery(plan, sc, sub)
	if err != nil {
		return nil, err
	}
	opE, err := opOf(op)
	if err != nil {
		return nil, err
	}
	schema := joined.Schema()
	ref := expr.NewColRef(scalarCol, schema[scalarCol].Kind, "")
	var cond expr.Expr
	if reversed {
		cond = expr.NewBinOp(opE, ref, lhs)
	} else {
		cond = expr.NewBinOp(opE, lhs, ref)
	}
	return logical.NewFilter(joined, cond), nil
}

// joinScalarSubquery joins the scalar subquery's (possibly grouped) result
// onto plan and returns the widened plan plus the scalar value's column.
func (b *Binder) joinScalarSubquery(plan logical.Node, sc *scope, sub *sql.SelectStmt) (logical.Node, int, error) {
	leftW := len(plan.Schema())

	// Uncorrelated: plan the subquery independently and cross-join its
	// single row.
	inner, _, err := b.bindQuery(sub, nil)
	if err == nil {
		if w := len(inner.Schema()); w != 1 {
			return nil, 0, fmt.Errorf("binder: scalar subquery must return one column, got %d", w)
		}
		return logical.NewJoin(plan, inner, logical.JoinInner, expr.True), leftW, nil
	}
	if !isUnresolved(err) {
		return nil, 0, err
	}

	// Correlated: supported form is a single aggregate select item with
	// equi-correlation conjuncts (the TPC-H Q2/Q17/Q20 pattern). The
	// subquery decorrelates into Aggregate grouped by the correlation
	// columns, joined on them.
	if len(sub.Items) != 1 || sub.Items[0].Star {
		return nil, 0, fmt.Errorf("binder: correlated scalar subquery must select a single expression")
	}
	innerPlan, corr, innerSc, err := b.bindCorrelated(sub, sc)
	if err != nil {
		return nil, 0, err
	}
	outerW := len(sc.fields)
	type pair struct{ outer, inner int }
	pairs := make([]pair, 0, len(corr))
	for _, c := range corr {
		bo, ok := c.(*expr.BinOp)
		if !ok || bo.Op != expr.OpEq {
			return nil, 0, fmt.Errorf("binder: correlated scalar subquery requires equality correlation, got %s", c)
		}
		lc, lok := bo.L.(*expr.ColRef)
		rc, rok := bo.R.(*expr.ColRef)
		if !lok || !rok {
			return nil, 0, fmt.Errorf("binder: correlated scalar subquery requires column-to-column correlation, got %s", c)
		}
		switch {
		case lc.Index < outerW && rc.Index >= outerW:
			pairs = append(pairs, pair{outer: lc.Index, inner: rc.Index - outerW})
		case rc.Index < outerW && lc.Index >= outerW:
			pairs = append(pairs, pair{outer: rc.Index, inner: lc.Index - outerW})
		default:
			return nil, 0, fmt.Errorf("binder: correlation conjunct %s does not cross scopes", c)
		}
	}
	if len(pairs) == 0 {
		return nil, 0, fmt.Errorf("binder: correlated scalar subquery has no correlation conjuncts")
	}

	// Bind the aggregate select item over the inner scope.
	collector := newAggCollector()
	eb := &exprBinder{b: b, inner: innerSc, aggs: collector}
	item, err := eb.bind(sub.Items[0].Expr)
	if err != nil {
		return nil, 0, err
	}
	if len(collector.calls) == 0 {
		return nil, 0, fmt.Errorf("binder: correlated scalar subquery must aggregate")
	}

	// Pre-project: correlation group columns then aggregate arguments.
	innerSchema := innerPlan.Schema()
	preExprs := make([]expr.Expr, 0, len(pairs)+len(collector.calls))
	preNames := make([]string, 0, len(pairs)+len(collector.calls))
	for _, p := range pairs {
		preExprs = append(preExprs, expr.NewColRef(p.inner, innerSchema[p.inner].Kind, innerSchema[p.inner].Name))
		preNames = append(preNames, innerSchema[p.inner].Name)
	}
	k := len(pairs)
	argPos := make([]int, len(collector.calls))
	for i, call := range collector.calls {
		if call.Arg == nil {
			argPos[i] = -1
			continue
		}
		argPos[i] = len(preExprs)
		preExprs = append(preExprs, call.Arg)
		preNames = append(preNames, fmt.Sprintf("__aggarg%d", i))
	}
	pre := logical.NewProject(innerPlan, preExprs, preNames)
	preSchema := pre.Schema()
	groupCols := make([]int, k)
	for i := range groupCols {
		groupCols[i] = i
	}
	calls := make([]expr.AggCall, len(collector.calls))
	for i, call := range collector.calls {
		nc := call
		if argPos[i] >= 0 {
			p := argPos[i]
			nc.Arg = expr.NewColRef(p, preSchema[p].Kind, preSchema[p].Name)
		}
		nc.Name = fmt.Sprintf("__agg%d", i)
		calls[i] = nc
	}
	agg := logical.NewAggregate(pre, groupCols, calls)

	// Post-project: group columns plus the scalar expression.
	scalar, err := rewritePostAggRec(item, map[string]int{}, k)
	if err != nil {
		return nil, 0, err
	}
	aggSchema := agg.Schema()
	postExprs := make([]expr.Expr, 0, k+1)
	postNames := make([]string, 0, k+1)
	for i := 0; i < k; i++ {
		postExprs = append(postExprs, expr.NewColRef(i, aggSchema[i].Kind, aggSchema[i].Name))
		postNames = append(postNames, fmt.Sprintf("__corr%d", i))
	}
	postExprs = append(postExprs, scalar)
	postNames = append(postNames, "__scalar")
	post := logical.NewProject(agg, postExprs, postNames)

	// Join on the correlation columns.
	conds := make([]expr.Expr, len(pairs))
	outerSchema := plan.Schema()
	for i, p := range pairs {
		conds[i] = expr.NewBinOp(expr.OpEq,
			expr.NewColRef(p.outer, outerSchema[p.outer].Kind, outerSchema[p.outer].Name),
			expr.NewColRef(leftW+i, aggSchema[i].Kind, ""))
	}
	j := logical.NewJoin(plan, post, logical.JoinInner, expr.Conjunction(conds))
	j.FromCorrelate = true
	return j, leftW + k, nil
}

// bindCorrelated binds a correlated subquery body: its FROM and WHERE,
// with outer names resolving against the enclosing scope. It returns the
// locally-filtered inner plan, the correlation conjuncts over the
// [outer ++ inner] concatenated row, and the inner scope.
//
// Conjuncts that are themselves subquery patterns are expanded recursively
// against the inner plan (one more nesting level), which covers TPC-H Q20.
func (b *Binder) bindCorrelated(sub *sql.SelectStmt, outerSc *scope) (logical.Node, []expr.Expr, *scope, error) {
	if len(sub.GroupBy) > 0 || sub.Having != nil || len(sub.OrderBy) > 0 ||
		sub.Limit >= 0 || sub.Distinct {
		return nil, nil, nil, fmt.Errorf("binder: correlated subquery form is too complex (GROUP BY/HAVING/ORDER BY/LIMIT/DISTINCT)")
	}
	plan, innerSc, err := b.bindFrom(sub.From)
	if err != nil {
		return nil, nil, nil, err
	}
	visible := innerSc.visible
	var corr []expr.Expr
	if sub.Where != nil {
		for _, conj := range splitASTConjuncts(sub.Where) {
			// Purely-inner predicates and nested subquery patterns apply to
			// the inner plan directly.
			innerEB := &exprBinder{b: b, inner: innerSc}
			if e, err := innerEB.bind(conj); err == nil {
				plan = logical.NewFilter(plan, e)
				continue
			} else if !isUnresolved(err) {
				// Could be a nested subquery conjunct.
				if isSubqueryConjunct(conj) {
					plan, err = b.bindConjunct(plan, innerSc, conj)
					if err != nil {
						return nil, nil, nil, err
					}
					innerSc = newScope(plan.Schema())
					innerSc.visible = visible
					continue
				}
				return nil, nil, nil, err
			}
			// Unresolved locally: try with the outer scope → correlation.
			eb := &exprBinder{b: b, inner: innerSc, outer: outerSc}
			e, err := eb.bind(conj)
			if err != nil {
				return nil, nil, nil, err
			}
			outerW := len(outerSc.fields)
			if expr.ColumnsUsed(e).AllAtOrAbove(outerW) {
				// Bound entirely against inner after all: shift down.
				mapping := make([]int, outerW+len(innerSc.fields))
				for i := range mapping {
					mapping[i] = i - outerW
				}
				plan = logical.NewFilter(plan, expr.Remap(e, mapping))
				continue
			}
			corr = append(corr, e)
		}
	}
	return plan, corr, innerSc, nil
}

// isSubqueryConjunct reports whether a conjunct is one of the recognized
// subquery patterns.
func isSubqueryConjunct(n sql.Node) bool {
	if _, _, ok := asExists(n); ok {
		return true
	}
	if in, ok := n.(*sql.InExpr); ok && in.Select != nil {
		return true
	}
	if cmp, ok := n.(*sql.BinaryExpr); ok && isComparisonOp(cmp.Op) {
		if _, ok := cmp.R.(*sql.SubqueryExpr); ok {
			return true
		}
		if _, ok := cmp.L.(*sql.SubqueryExpr); ok {
			return true
		}
	}
	return false
}
