package binder

import (
	"fmt"
	"strings"

	"gignite/internal/types"
)

// scope is the name-resolution context for one query level: the output
// schema of the plan built so far, with qualified column names
// ("alias.column"). visible bounds the columns user expressions may match
// via star expansion; subquery expansion appends internal columns beyond
// it.
type scope struct {
	fields  types.Fields
	visible int
}

func newScope(fields types.Fields) *scope {
	return &scope{fields: fields, visible: len(fields)}
}

// resolve finds the column for a possibly-qualified identifier. Unqualified
// names match either a bare field name or the suffix after the qualifier
// dot; ambiguity is an error.
func (s *scope) resolve(qualifier, name string) (int, types.Field, error) {
	qualifier = strings.ToLower(qualifier)
	name = strings.ToLower(name)
	matchIdx := -1
	for i, f := range s.fields {
		fq, fn := splitQualified(f.Name)
		if qualifier != "" {
			if fq == qualifier && fn == name {
				if matchIdx >= 0 {
					return 0, types.Field{}, fmt.Errorf("binder: ambiguous column %s.%s", qualifier, name)
				}
				matchIdx = i
			}
			continue
		}
		if fn == name || f.Name == name {
			if matchIdx >= 0 {
				return 0, types.Field{}, fmt.Errorf("binder: ambiguous column %s", name)
			}
			matchIdx = i
		}
	}
	if matchIdx < 0 {
		full := name
		if qualifier != "" {
			full = qualifier + "." + name
		}
		return 0, types.Field{}, &unresolvedError{Name: full}
	}
	return matchIdx, s.fields[matchIdx], nil
}

func splitQualified(name string) (qualifier, column string) {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// unresolvedError marks a name that did not resolve in the current scope;
// the subquery binder uses it to detect correlation.
type unresolvedError struct {
	Name string
}

func (e *unresolvedError) Error() string {
	return fmt.Sprintf("binder: column %s does not exist", e.Name)
}

// isUnresolved reports whether err (possibly wrapped) is a name-resolution
// failure.
func isUnresolved(err error) bool {
	for err != nil {
		if _, ok := err.(*unresolvedError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
