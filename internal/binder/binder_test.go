package binder

import (
	"strings"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/logical"
	"gignite/internal/sql"
	"gignite/internal/types"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	add := func(tbl *catalog.Table) {
		t.Helper()
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	add(&catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "name", Kind: types.KindString},
			{Name: "dept_id", Kind: types.KindInt},
			{Name: "salary", Kind: types.KindFloat},
			{Name: "hired", Kind: types.KindDate},
		},
		PrimaryKey: []string{"id"},
	})
	add(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "sale_id", Kind: types.KindInt},
			{Name: "emp_id", Kind: types.KindInt},
			{Name: "amount", Kind: types.KindFloat},
			{Name: "sold", Kind: types.KindDate},
		},
		PrimaryKey: []string{"sale_id"},
	})
	add(&catalog.Table{
		Name: "dept",
		Columns: []catalog.Column{
			{Name: "dept_id", Kind: types.KindInt},
			{Name: "dname", Kind: types.KindString},
		},
		PrimaryKey: []string{"dept_id"},
		Replicated: false,
	})
	return cat
}

func bind(t *testing.T, src string) logical.Node {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := New(testCatalog(t)).BindSelect(sel)
	if err != nil {
		t.Fatalf("bind(%q): %v", src, err)
	}
	return plan
}

func bindErr(t *testing.T, src string) error {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = New(testCatalog(t)).BindSelect(sel)
	if err == nil {
		t.Fatalf("bind(%q) succeeded, want error", src)
	}
	return err
}

func TestBindSimpleSelect(t *testing.T) {
	plan := bind(t, "SELECT name, salary FROM emp WHERE salary > 1000")
	proj, ok := plan.(*logical.Project)
	if !ok {
		t.Fatalf("top = %T", plan)
	}
	fields := proj.Schema()
	if len(fields) != 2 || fields[0].Name != "name" || fields[1].Kind != types.KindFloat {
		t.Errorf("schema = %v", fields)
	}
	if _, ok := proj.Input.(*logical.Filter); !ok {
		t.Errorf("under project = %T", proj.Input)
	}
}

func TestBindStar(t *testing.T) {
	plan := bind(t, "SELECT * FROM emp")
	if got := len(plan.Schema()); got != 5 {
		t.Errorf("star width = %d", got)
	}
}

func TestBindQualifiedAndAlias(t *testing.T) {
	plan := bind(t, "SELECT e.name FROM emp e WHERE e.id = 1")
	if plan.Schema()[0].Name != "name" {
		t.Errorf("schema = %v", plan.Schema())
	}
	// Self join with aliases resolves unambiguously.
	plan = bind(t, "SELECT a.name, b.name FROM emp a, emp b WHERE a.id = b.id")
	if len(plan.Schema()) != 2 {
		t.Errorf("self join schema = %v", plan.Schema())
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	err := bindErr(t, "SELECT dept_id FROM emp, dept")
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error = %v", err)
	}
}

func TestBindUnknownColumnAndTable(t *testing.T) {
	if err := bindErr(t, "SELECT nope FROM emp"); !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("error = %v", err)
	}
	if err := bindErr(t, "SELECT x FROM nosuch"); !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("error = %v", err)
	}
}

func TestBindCommaJoin(t *testing.T) {
	plan := bind(t, "SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.dept_id")
	var joins int
	logical.Walk(plan, func(n logical.Node) bool {
		if _, ok := n.(*logical.Join); ok {
			joins++
		}
		return true
	})
	if joins != 1 {
		t.Errorf("join count = %d", joins)
	}
}

func TestBindAnsiJoins(t *testing.T) {
	plan := bind(t, `SELECT e.name FROM emp e INNER JOIN dept d ON e.dept_id = d.dept_id`)
	foundInner := false
	logical.Walk(plan, func(n logical.Node) bool {
		if j, ok := n.(*logical.Join); ok && j.Type == logical.JoinInner {
			foundInner = true
		}
		return true
	})
	if !foundInner {
		t.Error("inner join missing")
	}
	plan = bind(t, `SELECT e.name FROM emp e LEFT JOIN sales s ON e.id = s.emp_id`)
	foundLeft := false
	logical.Walk(plan, func(n logical.Node) bool {
		if j, ok := n.(*logical.Join); ok && j.Type == logical.JoinLeft {
			foundLeft = true
		}
		return true
	})
	if !foundLeft {
		t.Error("left join missing")
	}
}

func TestBindAggregation(t *testing.T) {
	plan := bind(t, `SELECT dept_id, COUNT(*) AS cnt, SUM(salary) AS total, AVG(salary)
		FROM emp GROUP BY dept_id HAVING COUNT(*) > 2`)
	schema := plan.Schema()
	if len(schema) != 4 {
		t.Fatalf("schema = %v", schema)
	}
	if schema[1].Name != "cnt" || schema[1].Kind != types.KindInt {
		t.Errorf("cnt field = %v", schema[1])
	}
	if schema[3].Kind != types.KindFloat {
		t.Errorf("avg kind = %v", schema[3])
	}
	// Plan must contain an aggregate under a filter (HAVING).
	var sawAgg, sawFilterAboveAgg bool
	logical.Walk(plan, func(n logical.Node) bool {
		if f, ok := n.(*logical.Filter); ok {
			if _, ok := f.Input.(*logical.Aggregate); ok {
				sawFilterAboveAgg = true
			}
		}
		if _, ok := n.(*logical.Aggregate); ok {
			sawAgg = true
		}
		return true
	})
	if !sawAgg || !sawFilterAboveAgg {
		t.Errorf("agg=%v having-filter=%v\n%s", sawAgg, sawFilterAboveAgg, logical.Format(plan))
	}
}

func TestBindScalarAggregate(t *testing.T) {
	plan := bind(t, "SELECT COUNT(*), MAX(salary) FROM emp")
	agg := findAggregate(plan)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	if len(agg.GroupBy) != 0 || len(agg.Aggs) != 2 {
		t.Errorf("agg = %v / %v", agg.GroupBy, agg.Aggs)
	}
}

func findAggregate(plan logical.Node) *logical.Aggregate {
	var out *logical.Aggregate
	logical.Walk(plan, func(n logical.Node) bool {
		if a, ok := n.(*logical.Aggregate); ok && out == nil {
			out = a
		}
		return true
	})
	return out
}

func TestBindGroupByExpression(t *testing.T) {
	plan := bind(t, `SELECT EXTRACT(YEAR FROM hired), COUNT(*) FROM emp
		GROUP BY EXTRACT(YEAR FROM hired)`)
	agg := findAggregate(plan)
	if agg == nil || len(agg.GroupBy) != 1 {
		t.Fatalf("agg = %+v", agg)
	}
	if plan.Schema()[0].Kind != types.KindInt {
		t.Errorf("group expr kind = %v", plan.Schema()[0].Kind)
	}
}

func TestBindColumnNotInGroupByRejected(t *testing.T) {
	err := bindErr(t, "SELECT name, COUNT(*) FROM emp GROUP BY dept_id")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("error = %v", err)
	}
}

func TestBindAggregateNotAllowedInWhere(t *testing.T) {
	err := bindErr(t, "SELECT id FROM emp WHERE SUM(salary) > 10")
	if !strings.Contains(err.Error(), "not allowed") {
		t.Errorf("error = %v", err)
	}
}

func TestBindDistinct(t *testing.T) {
	plan := bind(t, "SELECT DISTINCT dept_id FROM emp")
	if _, ok := plan.(*logical.Aggregate); !ok {
		t.Errorf("top = %T, want Aggregate (distinct)", plan)
	}
}

func TestBindOrderByAndLimit(t *testing.T) {
	plan := bind(t, "SELECT name, salary FROM emp ORDER BY salary DESC, 1 LIMIT 5")
	lim, ok := plan.(*logical.Limit)
	if !ok || lim.N != 5 {
		t.Fatalf("top = %T", plan)
	}
	srt, ok := lim.Input.(*logical.Sort)
	if !ok {
		t.Fatalf("under limit = %T", lim.Input)
	}
	if len(srt.Keys) != 2 || !srt.Keys[0].Desc || srt.Keys[0].Col != 1 || srt.Keys[1].Col != 0 {
		t.Errorf("keys = %+v", srt.Keys)
	}
}

func TestBindOrderByAlias(t *testing.T) {
	plan := bind(t, "SELECT salary * 2 AS double_pay FROM emp ORDER BY double_pay")
	srt := plan.(*logical.Sort)
	if srt.Keys[0].Col != 0 {
		t.Errorf("alias order key = %+v", srt.Keys)
	}
	if err := bindErr(t, "SELECT salary FROM emp ORDER BY nonexistent"); err == nil {
		t.Error("bad order key accepted")
	}
}

func TestBindDerivedTable(t *testing.T) {
	plan := bind(t, `SELECT big.name FROM (SELECT name, salary FROM emp WHERE salary > 10) AS big
		WHERE big.salary < 100`)
	if len(plan.Schema()) != 1 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindInSubquery(t *testing.T) {
	plan := bind(t, "SELECT name FROM emp WHERE id IN (SELECT emp_id FROM sales)")
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinSemi {
		t.Fatalf("join = %+v\n%s", j, logical.Format(plan))
	}
	// Uncorrelated IN joins are not correlations: pushdown may cross them
	// without FILTER_CORRELATE.
	if j.FromCorrelate {
		t.Error("uncorrelated IN marked FromCorrelate")
	}
	plan = bind(t, "SELECT name FROM emp WHERE id NOT IN (SELECT emp_id FROM sales)")
	j = findJoin(plan)
	if j == nil || j.Type != logical.JoinAnti {
		t.Fatalf("anti join = %+v", j)
	}
}

func findJoin(plan logical.Node) *logical.Join {
	var out *logical.Join
	logical.Walk(plan, func(n logical.Node) bool {
		if j, ok := n.(*logical.Join); ok && out == nil {
			out = j
		}
		return true
	})
	return out
}

func TestBindCorrelatedExists(t *testing.T) {
	plan := bind(t, `SELECT name FROM emp e WHERE EXISTS
		(SELECT 1 FROM sales s WHERE s.emp_id = e.id AND s.amount > 100)`)
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinSemi {
		t.Fatalf("join = %+v\n%s", j, logical.Format(plan))
	}
	// The local predicate (amount > 100) must be a filter inside the right
	// input, and the correlation must be the join condition.
	if !strings.Contains(j.Cond.String(), "=") {
		t.Errorf("cond = %s", j.Cond)
	}
	var rightHasFilter bool
	logical.Walk(j.Right, func(n logical.Node) bool {
		if _, ok := n.(*logical.Filter); ok {
			rightHasFilter = true
		}
		return true
	})
	if !rightHasFilter {
		t.Errorf("local predicate not pushed into subquery plan:\n%s", logical.Format(plan))
	}
}

func TestBindNotExists(t *testing.T) {
	plan := bind(t, `SELECT name FROM emp e WHERE NOT EXISTS
		(SELECT 1 FROM sales s WHERE s.emp_id = e.id)`)
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinAnti {
		t.Fatalf("join = %+v", j)
	}
}

func TestBindUncorrelatedScalarSubquery(t *testing.T) {
	plan := bind(t, "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp)")
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinInner {
		t.Fatalf("join = %+v\n%s", j, logical.Format(plan))
	}
	// Output schema must still be 1 column (scalar col projected away).
	if len(plan.Schema()) != 1 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindCorrelatedScalarAggSubquery(t *testing.T) {
	// The TPC-H Q17 pattern.
	plan := bind(t, `SELECT e.name FROM emp e WHERE e.salary >
		(SELECT 0.5 * AVG(s.amount) FROM sales s WHERE s.emp_id = e.id)`)
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinInner || !j.FromCorrelate {
		t.Fatalf("join = %+v\n%s", j, logical.Format(plan))
	}
	// The right side must aggregate grouped by the correlation column.
	agg := findAggregate(j.Right)
	if agg == nil || len(agg.GroupBy) != 1 || len(agg.Aggs) != 1 {
		t.Fatalf("decorrelated agg = %+v\n%s", agg, logical.Format(plan))
	}
}

func TestBindScalarCompareReversed(t *testing.T) {
	plan := bind(t, "SELECT name FROM emp WHERE (SELECT AVG(salary) FROM emp) < salary")
	if len(plan.Schema()) != 1 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindHavingScalarSubquery(t *testing.T) {
	// The TPC-H Q11 pattern.
	plan := bind(t, `SELECT dept_id, SUM(salary) FROM emp GROUP BY dept_id
		HAVING SUM(salary) > (SELECT SUM(salary) * 0.1 FROM emp)`)
	if len(plan.Schema()) != 2 {
		t.Errorf("schema = %v", plan.Schema())
	}
	var sawInner int
	logical.Walk(plan, func(n logical.Node) bool {
		if _, ok := n.(*logical.Aggregate); ok {
			sawInner++
		}
		return true
	})
	if sawInner != 2 {
		t.Errorf("expected 2 aggregates (outer + subquery), got %d\n%s", sawInner, logical.Format(plan))
	}
}

func TestBindNestedSubqueryInCorrelated(t *testing.T) {
	// The TPC-H Q20 shape: an IN subquery whose body has both an
	// uncorrelated IN and a correlated scalar aggregate.
	plan := bind(t, `SELECT name FROM emp WHERE id IN
		(SELECT emp_id FROM sales WHERE sale_id IN (SELECT dept_id FROM dept)
		 AND amount > (SELECT 0.5 * SUM(s2.amount) FROM sales s2 WHERE s2.emp_id = sales.emp_id))`)
	if len(plan.Schema()) != 1 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindSelectConstantsNoFrom(t *testing.T) {
	plan := bind(t, "SELECT 1 + 2, 'x'")
	if len(plan.Schema()) != 2 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindDateIntervalArithmetic(t *testing.T) {
	plan := bind(t, `SELECT name FROM emp WHERE hired < DATE '1995-01-01' + INTERVAL '3' MONTH`)
	digest := plan.Digest()
	if !strings.Contains(digest, "1995-04-01") {
		t.Errorf("interval not folded: %s", digest)
	}
}

func TestBindBetweenDesugar(t *testing.T) {
	plan := bind(t, "SELECT name FROM emp WHERE salary BETWEEN 10 AND 20")
	d := plan.Digest()
	if !strings.Contains(d, ">=") || !strings.Contains(d, "<=") {
		t.Errorf("between not desugared: %s", d)
	}
}

func TestBindCountDistinct(t *testing.T) {
	plan := bind(t, "SELECT COUNT(DISTINCT dept_id) FROM emp")
	agg := findAggregate(plan)
	if agg == nil || !agg.Aggs[0].Distinct {
		t.Fatalf("agg = %+v", agg)
	}
	if !agg.HasDistinct() {
		t.Error("HasDistinct = false")
	}
}

func TestBindSharedAggArgDeduped(t *testing.T) {
	plan := bind(t, "SELECT SUM(salary), AVG(salary), MIN(salary) FROM emp")
	agg := findAggregate(plan)
	if agg == nil {
		t.Fatal("no aggregate")
	}
	pre, ok := agg.Input.(*logical.Project)
	if !ok {
		t.Fatalf("agg input = %T", agg.Input)
	}
	// One shared argument column, not three.
	if len(pre.Exprs) != 1 {
		t.Errorf("pre-projection has %d exprs, want 1 (dedup)", len(pre.Exprs))
	}
}

func TestBindCreateTableAndInsert(t *testing.T) {
	stmt, err := sql.Parse(`CREATE TABLE t2 (a INTEGER PRIMARY KEY, b VARCHAR(10), c DATE)`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := BindCreateTable(stmt.(*sql.CreateTableStmt))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Columns[2].Kind != types.KindDate {
		t.Errorf("columns = %+v", tbl.Columns)
	}
	ins, err := sql.Parse(`INSERT INTO t2 (a, b, c) VALUES (1, 'x', '2020-05-05')`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := BindInsertRows(tbl, ins.(*sql.InsertStmt))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][2].K != types.KindDate {
		t.Errorf("rows = %v", rows)
	}
	// Wrong arity.
	bad, _ := sql.Parse(`INSERT INTO t2 (a, b) VALUES (1)`)
	if _, err := BindInsertRows(tbl, bad.(*sql.InsertStmt)); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Unknown column.
	bad2, _ := sql.Parse(`INSERT INTO t2 (zzz) VALUES (1)`)
	if _, err := BindInsertRows(tbl, bad2.(*sql.InsertStmt)); err == nil {
		t.Error("unknown column accepted")
	}
	// Type mismatch.
	bad3, _ := sql.Parse(`INSERT INTO t2 (a) VALUES ('nope')`)
	if _, err := BindInsertRows(tbl, bad3.(*sql.InsertStmt)); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestKindOfTypeName(t *testing.T) {
	cases := map[string]types.Kind{
		"INTEGER": types.KindInt, "BIGINT": types.KindInt,
		"DECIMAL": types.KindFloat, "DOUBLE": types.KindFloat,
		"VARCHAR": types.KindString, "CHAR": types.KindString,
		"DATE": types.KindDate, "BOOLEAN": types.KindBool,
	}
	for name, want := range cases {
		got, err := KindOfTypeName(name)
		if err != nil || got != want {
			t.Errorf("KindOfTypeName(%s) = %v, %v", name, got, err)
		}
	}
	if _, err := KindOfTypeName("BLOB"); err == nil {
		t.Error("unsupported type accepted")
	}
}

func TestBindErrorPaths(t *testing.T) {
	cases := []struct {
		q    string
		want string
	}{
		{`SELECT name FROM emp WHERE salary + 1`, "not BOOLEAN"},
		{`SELECT name FROM emp WHERE name LIKE dept_id`, "LIKE pattern"},
		{`SELECT UNKNOWN_FUNC(id) FROM emp`, "unknown function"},
		{`SELECT SUBSTRING(name FROM 1 FOR 2) || 'x' FROM emp`, ""},
		{`SELECT COUNT(id, name) FROM emp`, "one argument"},
		{`SELECT MIN(*) FROM emp`, "not valid"},
		{`SELECT name FROM emp GROUP BY dept_id`, "GROUP BY"},
		{`SELECT * FROM emp GROUP BY dept_id`, "cannot be combined"},
		{`SELECT id FROM emp WHERE id IN (SELECT sale_id, emp_id FROM sales)`, "one column"},
		{`SELECT id FROM emp WHERE id > (SELECT sale_id, emp_id FROM sales)`, "one column"},
		{`SELECT id FROM emp ORDER BY 99`, "out of range"},
		{`SELECT id FROM emp WHERE hired + INTERVAL '1' MONTH > DATE '1995-01-01'`, "constant date"},
	}
	for _, c := range cases {
		sel, err := sql.ParseSelect(c.q)
		if err != nil {
			continue // parser-level rejection also counts
		}
		_, err = New(testCatalog(t)).BindSelect(sel)
		if err == nil {
			t.Errorf("bind(%q) succeeded, want error", c.q)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("bind(%q) error = %v, want containing %q", c.q, err, c.want)
		}
	}
}

func TestBindCaseAndIsNull(t *testing.T) {
	plan := bind(t, `SELECT CASE WHEN salary > 1500 THEN 'high' ELSE 'low' END AS band,
		name FROM emp WHERE hired IS NOT NULL`)
	if plan.Schema()[0].Name != "band" {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindInListAndNotBetween(t *testing.T) {
	plan := bind(t, `SELECT id FROM emp WHERE dept_id IN (1, 2, 3) AND id NOT BETWEEN 5 AND 10`)
	d := plan.Digest()
	if !strings.Contains(d, "IN") {
		t.Errorf("digest = %s", d)
	}
}

func TestBindSubqueryRefNoAlias(t *testing.T) {
	// A derived table without an alias keeps its inner names.
	plan := bind(t, `SELECT name FROM (SELECT name FROM emp WHERE id < 5)`)
	if len(plan.Schema()) != 1 {
		t.Errorf("schema = %v", plan.Schema())
	}
}

func TestBindUncorrelatedExists(t *testing.T) {
	plan := bind(t, `SELECT name FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE dname = 'x')`)
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinSemi || j.FromCorrelate {
		t.Fatalf("join = %+v", j)
	}
}

func TestBindCorrelatedNonEquiExists(t *testing.T) {
	// Q21's shape: a correlated EXISTS with a non-equi conjunct.
	plan := bind(t, `SELECT e.name FROM emp e WHERE EXISTS
		(SELECT 1 FROM emp e2 WHERE e2.dept_id = e.dept_id AND e2.id <> e.id)`)
	j := findJoin(plan)
	if j == nil || j.Type != logical.JoinSemi || !j.FromCorrelate {
		t.Fatalf("join = %+v\n%s", j, logical.Format(plan))
	}
	if !strings.Contains(j.Cond.String(), "<>") {
		t.Errorf("non-equi correlation lost: %s", j.Cond)
	}
}

func TestBindDistinctOrderByLimit(t *testing.T) {
	plan := bind(t, `SELECT DISTINCT dept_id FROM emp ORDER BY dept_id DESC LIMIT 2`)
	lim, ok := plan.(*logical.Limit)
	if !ok {
		t.Fatalf("top = %T", plan)
	}
	if _, ok := lim.Input.(*logical.Sort); !ok {
		t.Fatalf("under limit = %T", lim.Input)
	}
}
