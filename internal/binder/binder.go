// Package binder converts parsed SQL ASTs into logical plans: it resolves
// names against the catalog, types expressions, plans aggregation, and
// decorrelates subqueries into joins (EXISTS → semi join, NOT EXISTS /
// NOT IN → anti join, scalar aggregate subqueries → grouped join). It is
// the gignite analogue of the Calcite validator + sql-to-rel converter.
package binder

import (
	"errors"
	"fmt"
	"strings"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/sql"
	"gignite/internal/types"
)

// ErrViewsUnsupported reproduces the Ignite+Calcite limitation that makes
// TPC-H Q15 fail in the paper: SQL views are not supported.
var ErrViewsUnsupported = errors.New("binder: SQL views are not supported")

// Binder converts ASTs to logical plans.
type Binder struct {
	cat   *catalog.Catalog
	views map[string]*sql.SelectStmt
	// paramKinds records the bind-time kind hint of every `?` placeholder
	// seen (ordinal → kind). KindNull means no hint was derivable.
	paramKinds map[int]types.Kind
}

// New returns a binder over the given catalog.
func New(cat *catalog.Catalog) *Binder { return &Binder{cat: cat} }

// noteParam records (or upgrades) the kind hint for one placeholder.
func (b *Binder) noteParam(ordinal int, kind types.Kind) {
	if b.paramKinds == nil {
		b.paramKinds = make(map[int]types.Kind)
	}
	if existing, ok := b.paramKinds[ordinal]; !ok || existing == types.KindNull {
		b.paramKinds[ordinal] = kind
	}
}

// ParamKinds returns the bind-time kind hints for a statement with n
// placeholders; entries without a derivable hint are types.KindNull. Call
// it after BindSelect.
func (b *Binder) ParamKinds(n int) []types.Kind {
	out := make([]types.Kind, n)
	for i := range out {
		out[i] = types.KindNull
	}
	for ord, k := range b.paramKinds {
		if ord >= 0 && ord < n {
			out[ord] = k
		}
	}
	return out
}

// CoerceParam coerces one execution argument to a bound placeholder's
// hinted kind (date strings parse to dates, ints widen to floats, ...).
// A KindNull hint passes the value through unchanged.
func CoerceParam(v types.Value, hint types.Kind) (types.Value, error) {
	if hint == types.KindNull {
		return v, nil
	}
	return coerce(v, hint)
}

// WithViews enables view expansion (the engine's experimental extension;
// stock Ignite+Calcite — and therefore the default configuration — does
// not support views, which is what excludes TPC-H Q15 in the paper).
// Views are expanded by name during FROM binding, like derived tables.
func (b *Binder) WithViews(views map[string]*sql.SelectStmt) *Binder {
	b.views = views
	return b
}

// BindSelect binds a top-level SELECT statement.
func (b *Binder) BindSelect(sel *sql.SelectStmt) (logical.Node, error) {
	plan, _, err := b.bindQuery(sel, nil)
	return plan, err
}

// ---------------------------------------------------------------------------
// Query binding

// bindQuery binds a SELECT, optionally within an outer scope (only used to
// report unresolved names for correlation detection; correlated binding
// itself goes through bindCorrelated).
func (b *Binder) bindQuery(sel *sql.SelectStmt, outer *scope) (logical.Node, *scope, error) {
	plan, sc, err := b.bindFrom(sel.From)
	if err != nil {
		return nil, nil, err
	}
	plan, sc, err = b.bindWhere(plan, sc, sel.Where)
	if err != nil {
		return nil, nil, err
	}

	needsAgg := len(sel.GroupBy) > 0 || containsAggregate(sel)
	var itemExprs []expr.Expr
	var itemNames []string

	if needsAgg {
		plan, itemExprs, itemNames, err = b.bindAggregation(plan, sc, sel)
		if err != nil {
			return nil, nil, err
		}
	} else {
		itemExprs, itemNames, err = b.bindSelectItems(sel.Items, sc)
		if err != nil {
			return nil, nil, err
		}
	}
	visible := len(itemExprs)

	// ORDER BY may reference columns absent from the select list (for
	// non-aggregate, non-DISTINCT queries): such expressions ride along as
	// hidden projection columns and are trimmed after the sort.
	var keys []types.SortKey
	if len(sel.OrderBy) > 0 {
		var hiddenExprs []expr.Expr
		var hiddenNames []string
		var hiddenScope *scope
		if !needsAgg && !sel.Distinct {
			hiddenScope = sc
		}
		keys, hiddenExprs, hiddenNames, err = b.bindOrderBy(sel, itemExprs, itemNames, hiddenScope)
		if err != nil {
			return nil, nil, err
		}
		itemExprs = append(itemExprs, hiddenExprs...)
		itemNames = append(itemNames, hiddenNames...)
	}

	proj := logical.NewProject(plan, itemExprs, itemNames)
	var out logical.Node = proj

	if sel.Distinct {
		groupAll := make([]int, len(proj.Schema()))
		for i := range groupAll {
			groupAll[i] = i
		}
		out = logical.NewAggregate(out, groupAll, nil)
	}

	if len(keys) > 0 {
		out = logical.NewSort(out, keys)
	}
	if sel.Limit >= 0 {
		out = logical.NewLimit(out, sel.Limit)
	}
	if len(itemExprs) > visible {
		out = logical.IdentityProject(out, seq(visible))
	}
	return out, newScope(out.Schema()), nil
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// bindFrom builds the plan for the FROM clause, cross-joining
// comma-separated items.
func (b *Binder) bindFrom(items []sql.TableRef) (logical.Node, *scope, error) {
	if len(items) == 0 {
		// SELECT without FROM: a single empty row.
		v := logical.NewValues(nil, []types.Row{{}})
		return v, newScope(nil), nil
	}
	var plan logical.Node
	for _, item := range items {
		p, err := b.bindTableRef(item)
		if err != nil {
			return nil, nil, err
		}
		if plan == nil {
			plan = p
		} else {
			plan = logical.NewJoin(plan, p, logical.JoinInner, expr.True)
		}
	}
	return plan, newScope(plan.Schema()), nil
}

func (b *Binder) bindTableRef(ref sql.TableRef) (logical.Node, error) {
	switch r := ref.(type) {
	case *sql.TableName:
		t, err := b.cat.Table(r.Name)
		if err != nil {
			if view, ok := b.views[strings.ToLower(r.Name)]; ok {
				alias := r.Alias
				if alias == "" {
					alias = r.Name
				}
				return b.bindTableRef(&sql.SubqueryRef{Select: view, Alias: alias})
			}
			return nil, err
		}
		return logical.NewScan(t, r.Alias), nil
	case *sql.SubqueryRef:
		plan, _, err := b.bindQuery(r.Select, nil)
		if err != nil {
			return nil, err
		}
		if r.Alias == "" {
			return plan, nil
		}
		// Re-qualify output names with the derived-table alias.
		in := plan.Schema()
		exprs := make([]expr.Expr, len(in))
		names := make([]string, len(in))
		for i, f := range in {
			_, col := splitQualified(f.Name)
			exprs[i] = expr.NewColRef(i, f.Kind, f.Name)
			names[i] = strings.ToLower(r.Alias) + "." + col
		}
		return logical.NewProject(plan, exprs, names), nil
	case *sql.JoinRef:
		left, err := b.bindTableRef(r.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.bindTableRef(r.Right)
		if err != nil {
			return nil, err
		}
		combined := newScope(left.Schema().Concat(right.Schema()))
		eb := &exprBinder{b: b, inner: combined}
		cond, err := eb.bind(r.On)
		if err != nil {
			return nil, err
		}
		jt := logical.JoinInner
		if r.Type == sql.JoinLeft {
			jt = logical.JoinLeft
		}
		return logical.NewJoin(left, right, jt, cond), nil
	default:
		return nil, fmt.Errorf("binder: unsupported FROM item %T", ref)
	}
}

// ---------------------------------------------------------------------------
// WHERE (subquery-aware)

// bindWhere processes WHERE in two passes, mirroring Calcite's
// sql-to-rel conversion: subquery conjuncts first transform the plan
// (decorrelation joins append columns on the right, so existing indices
// never move), then every plain conjunct lands in a single Filter above
// the whole tree. Pushing those filters down is the rule engine's job —
// including FILTER_CORRELATE, whose absence in the IC baseline leaves
// them near the root (§4.1).
func (b *Binder) bindWhere(plan logical.Node, sc *scope, where sql.Node) (logical.Node, *scope, error) {
	if where == nil {
		return plan, sc, nil
	}
	visible := sc.visible
	conjuncts := splitASTConjuncts(where)
	var plainConds []expr.Expr
	for _, conj := range conjuncts {
		if isSubqueryConjunct(conj) {
			var err error
			plan, err = b.bindConjunct(plan, sc, conj)
			if err != nil {
				return nil, nil, err
			}
			sc = newScope(plan.Schema())
			sc.visible = visible
			continue
		}
		// Plain predicates bind against the pre-subquery columns, which
		// keep their ordinals in the widened plan.
		eb := &exprBinder{b: b, inner: sc}
		cond, err := eb.bind(conj)
		if err != nil {
			return nil, nil, err
		}
		if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
			return nil, nil, fmt.Errorf("binder: WHERE condition has type %s, not BOOLEAN", cond.Kind())
		}
		plainConds = append(plainConds, cond)
	}
	if len(plainConds) > 0 {
		plan = logical.NewFilter(plan, expr.Conjunction(plainConds))
		sc = newScope(plan.Schema())
		sc.visible = visible
	}
	return plan, sc, nil
}

// bindConjunct processes one WHERE/HAVING conjunct, expanding subqueries.
func (b *Binder) bindConjunct(plan logical.Node, sc *scope, conj sql.Node) (logical.Node, error) {
	// [NOT] EXISTS.
	if ex, negate, ok := asExists(conj); ok {
		return b.bindExists(plan, sc, ex, negate)
	}
	// [NOT] IN (SELECT ...).
	if in, ok := conj.(*sql.InExpr); ok && in.Select != nil {
		return b.bindInSubquery(plan, sc, in)
	}
	// expr op (SELECT ...) or (SELECT ...) op expr.
	if cmp, ok := conj.(*sql.BinaryExpr); ok && isComparisonOp(cmp.Op) {
		if sub, ok := cmp.R.(*sql.SubqueryExpr); ok {
			return b.bindScalarCompare(plan, sc, cmp.L, cmp.Op, sub.Select, false)
		}
		if sub, ok := cmp.L.(*sql.SubqueryExpr); ok {
			return b.bindScalarCompare(plan, sc, cmp.R, cmp.Op, sub.Select, true)
		}
	}
	// Plain predicate.
	eb := &exprBinder{b: b, inner: sc}
	cond, err := eb.bind(conj)
	if err != nil {
		return nil, err
	}
	if cond.Kind() != types.KindBool && cond.Kind() != types.KindNull {
		return nil, fmt.Errorf("binder: WHERE condition has type %s, not BOOLEAN", cond.Kind())
	}
	return logical.NewFilter(plan, cond), nil
}

func asExists(n sql.Node) (*sql.ExistsExpr, bool, bool) {
	if u, ok := n.(*sql.UnaryExpr); ok && strings.EqualFold(u.Op, "NOT") {
		if ex, ok := u.E.(*sql.ExistsExpr); ok {
			return ex, !ex.Negate, true
		}
		return nil, false, false
	}
	if ex, ok := n.(*sql.ExistsExpr); ok {
		return ex, ex.Negate, true
	}
	return nil, false, false
}

func isComparisonOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	default:
		return false
	}
}

func splitASTConjuncts(n sql.Node) []sql.Node {
	if b, ok := n.(*sql.BinaryExpr); ok && strings.EqualFold(b.Op, "AND") {
		return append(splitASTConjuncts(b.L), splitASTConjuncts(b.R)...)
	}
	return []sql.Node{n}
}

// ---------------------------------------------------------------------------
// SELECT items

func (b *Binder) bindSelectItems(items []sql.SelectItem, sc *scope) ([]expr.Expr, []string, error) {
	var exprs []expr.Expr
	var names []string
	for _, item := range items {
		if item.Star {
			for i := 0; i < sc.visible; i++ {
				f := sc.fields[i]
				exprs = append(exprs, expr.NewColRef(i, f.Kind, f.Name))
				names = append(names, f.Name)
			}
			continue
		}
		eb := &exprBinder{b: b, inner: sc}
		e, err := eb.bind(item.Expr)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(item))
	}
	return exprs, names, nil
}

// itemName picks the output column name for a select item.
func itemName(item sql.SelectItem) string {
	if item.Alias != "" {
		return strings.ToLower(item.Alias)
	}
	if id, ok := item.Expr.(*sql.Ident); ok {
		return strings.ToLower(id.Name)
	}
	return ""
}

// ---------------------------------------------------------------------------
// ORDER BY

// bindOrderBy resolves ORDER BY items against the projection: by ordinal,
// by alias/column name, by structural match against a select item, or —
// when hiddenScope is non-nil — as a hidden ride-along column bound over
// the pre-projection scope.
func (b *Binder) bindOrderBy(sel *sql.SelectStmt, itemExprs []expr.Expr,
	itemNames []string, hiddenScope *scope) (
	[]types.SortKey, []expr.Expr, []string, error) {

	keys := make([]types.SortKey, 0, len(sel.OrderBy))
	var hiddenExprs []expr.Expr
	var hiddenNames []string
	for _, ob := range sel.OrderBy {
		col := -1
		switch e := ob.Expr.(type) {
		case *sql.NumberLit:
			// Ordinal reference: ORDER BY 1.
			if !e.IsInt {
				return nil, nil, nil, fmt.Errorf("binder: non-integer ORDER BY ordinal %q", e.Text)
			}
			var n int
			if _, err := fmt.Sscanf(e.Text, "%d", &n); err != nil || n < 1 || n > len(itemExprs) {
				return nil, nil, nil, fmt.Errorf("binder: ORDER BY ordinal %s out of range", e.Text)
			}
			col = n - 1
		case *sql.Ident:
			// Alias or column-name match against the output names.
			name := strings.ToLower(e.Name)
			full := strings.ToLower(e.String())
			for i, fn := range itemNames {
				_, suffix := splitQualified(fn)
				if fn == full || fn == name || suffix == name {
					col = i
					break
				}
			}
		}
		if col < 0 && hiddenScope != nil {
			eb := &exprBinder{b: b, inner: hiddenScope}
			bound, err := eb.bind(ob.Expr)
			if err != nil {
				return nil, nil, nil, err
			}
			// Structural match against a select item first.
			for i, ie := range itemExprs {
				if expr.EqualExprs(bound, ie) {
					col = i
					break
				}
			}
			if col < 0 {
				col = len(itemExprs) + len(hiddenExprs)
				hiddenExprs = append(hiddenExprs, bound)
				hiddenNames = append(hiddenNames, fmt.Sprintf("__order%d", len(hiddenExprs)))
			}
		}
		if col < 0 {
			return nil, nil, nil, fmt.Errorf("binder: ORDER BY expression must be a select item alias, column or ordinal")
		}
		keys = append(keys, types.SortKey{Col: col, Desc: ob.Desc, NullsLast: false})
	}
	return keys, hiddenExprs, hiddenNames, nil
}

// ---------------------------------------------------------------------------
// DDL/DML helpers for the engine layer

// KindOfTypeName maps a SQL type name to a value kind.
func KindOfTypeName(name string) (types.Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return types.KindInt, nil
	case "DECIMAL", "NUMERIC", "DOUBLE", "FLOAT", "REAL":
		return types.KindFloat, nil
	case "CHAR", "VARCHAR", "TEXT", "STRING":
		return types.KindString, nil
	case "DATE":
		return types.KindDate, nil
	case "BOOLEAN", "BOOL":
		return types.KindBool, nil
	default:
		return types.KindNull, fmt.Errorf("binder: unsupported SQL type %s", name)
	}
}

// BindCreateTable converts a CREATE TABLE statement into a catalog table.
func BindCreateTable(stmt *sql.CreateTableStmt) (*catalog.Table, error) {
	t := &catalog.Table{
		Name:        strings.ToLower(stmt.Name),
		PrimaryKey:  lowerAll(stmt.PrimaryKey),
		Replicated:  stmt.Replicated,
		AffinityKey: strings.ToLower(stmt.AffinityKey),
	}
	for _, c := range stmt.Columns {
		k, err := KindOfTypeName(c.Type)
		if err != nil {
			return nil, err
		}
		t.Columns = append(t.Columns, catalog.Column{Name: strings.ToLower(c.Name), Kind: k})
	}
	return t, nil
}

func lowerAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToLower(s)
	}
	return out
}

// BindInsertRows evaluates INSERT literal rows against the table schema,
// coercing kinds where safe.
func BindInsertRows(t *catalog.Table, stmt *sql.InsertStmt) ([]types.Row, error) {
	cols := stmt.Columns
	if len(cols) == 0 {
		cols = make([]string, len(t.Columns))
		for i, c := range t.Columns {
			cols[i] = c.Name
		}
	}
	ordinals := make([]int, len(cols))
	for i, c := range cols {
		ord := t.ColumnIndex(c)
		if ord < 0 {
			return nil, fmt.Errorf("binder: column %s does not exist in %s", c, t.Name)
		}
		ordinals[i] = ord
	}
	out := make([]types.Row, 0, len(stmt.Rows))
	eb := &exprBinder{inner: newScope(nil)}
	for _, astRow := range stmt.Rows {
		if len(astRow) != len(cols) {
			return nil, fmt.Errorf("binder: INSERT row has %d values, want %d", len(astRow), len(cols))
		}
		row := make(types.Row, len(t.Columns))
		for i := range row {
			row[i] = types.Null
		}
		for i, node := range astRow {
			e, err := eb.bind(node)
			if err != nil {
				return nil, err
			}
			if !expr.IsConstant(e) {
				return nil, fmt.Errorf("binder: INSERT values must be constants")
			}
			v := e.Eval(nil)
			row[ordinals[i]], err = coerce(v, t.Columns[ordinals[i]].Kind)
			if err != nil {
				return nil, fmt.Errorf("binder: column %s: %w", cols[i], err)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func coerce(v types.Value, to types.Kind) (types.Value, error) {
	if v.IsNull() || v.K == to {
		return v, nil
	}
	switch {
	case to == types.KindFloat && v.K == types.KindInt:
		return types.NewFloat(float64(v.I)), nil
	case to == types.KindInt && v.K == types.KindFloat && v.F == float64(int64(v.F)):
		return types.NewInt(int64(v.F)), nil
	case to == types.KindDate && v.K == types.KindString:
		return types.ParseDate(v.S)
	default:
		return types.Null, fmt.Errorf("cannot store %s as %s", v.K, to)
	}
}
