// Package fragment converts an optimized physical plan into an execution
// plan: a set of fragments, each a subtree executable entirely at one
// processing site, connected by sender/receiver pairs (§3.2.3,
// Algorithm 1). It also implements variant fragment creation (§5.3,
// Algorithm 3) for multi-threaded execution.
package fragment

import (
	"fmt"

	"gignite/internal/logical"
	"gignite/internal/physical"
)

// Fragment is one executable subsection of the query tree.
type Fragment struct {
	ID int
	// Root is the fragment's root operator: a Sender for non-root
	// fragments, the plan root for the root fragment.
	Root physical.Node
	// IsRoot marks the fragment that returns results to the user.
	IsRoot bool
	// Receivers lists the exchange IDs this fragment consumes (its
	// dependencies).
	Receivers []int
	// ExchangeID is the exchange this fragment feeds (-1 for the root).
	ExchangeID int
}

// Plan is a fragmented execution plan.
type Plan struct {
	Fragments []*Fragment
	// Producer maps an exchange ID to the fragment that feeds it.
	Producer map[int]*Fragment
	// Filters lists the plan's runtime join-filter edges (DESIGN.md §13),
	// populated by PlanRuntimeFilters when Config.RuntimeFilters is on.
	Filters []*physical.RuntimeFilter
}

// Split implements Algorithm 1: walking the tree depth-first, every
// Exchange is replaced by a receiver (staying in the current fragment) and
// a sender (rooting a new fragment over the exchange's child).
//
// The optimizer may emit a DAG rather than a tree: a subtree (often a
// broadcast) shared by two parents. Each Exchange is still split exactly
// once, and every fragment that reaches it — through the original
// Exchange node or through an already-substituted Receiver in a shared
// subtree — records the exchange in its Receivers. Dropping the second
// consumer's edge would let Waves schedule it alongside its producer.
func Split(root physical.Node) *Plan {
	p := &Plan{Producer: make(map[int]*Fragment)}
	nextExchange := 0
	split := make(map[*physical.Exchange]*physical.Receiver)

	addReceiver := func(frag *Fragment, id int) {
		for _, ex := range frag.Receivers {
			if ex == id {
				return
			}
		}
		frag.Receivers = append(frag.Receivers, id)
	}

	var splitTree func(n physical.Node, frag *Fragment) physical.Node
	splitTree = func(n physical.Node, frag *Fragment) physical.Node {
		switch t := n.(type) {
		case *physical.Receiver:
			// A shared subtree already split by an earlier walk.
			addReceiver(frag, t.ExchangeID)
			return t
		case *physical.Exchange:
			if rv, ok := split[t]; ok {
				// The same Exchange node reached from a second parent.
				addReceiver(frag, rv.ExchangeID)
				return rv
			}
			id := nextExchange
			nextExchange++
			child := t.Inputs()[0]
			sender := physical.NewSender(child, id, t.Target)
			sub := &Fragment{ID: len(p.Fragments), Root: sender, ExchangeID: id}
			p.Fragments = append(p.Fragments, sub)
			p.Producer[id] = sub
			// Recurse inside the new fragment for nested exchanges.
			sender.SetInputs([]physical.Node{splitTree(child, sub)})
			addReceiver(frag, id)
			rv := physical.NewReceiver(t, id)
			split[t] = rv
			return rv
		}
		ins := n.Inputs()
		if len(ins) > 0 {
			newIns := make([]physical.Node, len(ins))
			for i, in := range ins {
				newIns[i] = splitTree(in, frag)
			}
			n.SetInputs(newIns)
		}
		return n
	}

	rootFrag := &Fragment{ID: 0, IsRoot: true, ExchangeID: -1}
	p.Fragments = append(p.Fragments, rootFrag)
	rootFrag.Root = splitTree(root, rootFrag)
	return p
}

// Ordered returns the fragments in dependency order: every fragment
// appears after the fragments feeding its receivers.
func (p *Plan) Ordered() ([]*Fragment, error) {
	state := make(map[int]int, len(p.Fragments)) // 0 new, 1 visiting, 2 done
	var out []*Fragment
	var visit func(f *Fragment) error
	visit = func(f *Fragment) error {
		switch state[f.ID] {
		case 1:
			return fmt.Errorf("fragment: cycle through fragment %d", f.ID)
		case 2:
			return nil
		}
		state[f.ID] = 1
		for _, ex := range f.Receivers {
			if err := visit(p.Producer[ex]); err != nil {
				return err
			}
		}
		state[f.ID] = 2
		out = append(out, f)
		return nil
	}
	for _, f := range p.Fragments {
		if err := visit(f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Waves groups fragments into dependency waves for the parallel
// scheduler: wave 0 holds fragments with no receivers, and wave k holds
// fragments all of whose producers finished by wave k-1. Fragments
// within one wave are mutually independent, so a scheduler may run all
// their instances concurrently and place a barrier between consecutive
// waves. Flattening the waves in order yields a valid dependency order
// (every producer precedes its consumers), and within a wave fragments
// keep the Ordered() sequence, so wave-by-wave execution with one worker
// is deterministic.
func (p *Plan) Waves() ([][]*Fragment, error) {
	order, err := p.Ordered()
	if err != nil {
		return nil, err
	}
	depth := make(map[int]int, len(order))
	var waves [][]*Fragment
	for _, f := range order {
		d := 0
		for _, ex := range f.Receivers {
			if pd := depth[p.Producer[ex].ID]; pd+1 > d {
				d = pd + 1
			}
		}
		depth[f.ID] = d
		for len(waves) <= d {
			waves = append(waves, nil)
		}
		waves[d] = append(waves[d], f)
	}
	return waves, nil
}

// PlanRuntimeFilters discovers the plan's runtime join-filter edges and
// records them in p.Filters (DESIGN.md §13). A hash join is eligible when
//
//   - its semantics admit probe pruning (inner or semi, with equi keys),
//   - its build (right) subtree is receiver-free, so a pre-pass can
//     execute it at the join's sites before wave 0,
//   - the build subtree applies at least one predicate (a bare-scan build
//     is a foreign-key target whose filter would prune nothing), and
//   - its probe (left) input reaches a Receiver through a single-parent
//     chain of column-transparent operators, and that receiver's exchange
//     has exactly one consuming fragment.
//
// For each eligible join, the producer fragment's sender is annotated as
// the pruning point, plus the deepest transparent operator below it
// (scan-level pushdown) when the key columns survive the descent.
func PlanRuntimeFilters(p *Plan) {
	// consumers[ex] counts fragments reading the exchange; a shared
	// broadcast subtree may have several, and pruning rows for one join
	// would starve the others.
	consumers := make(map[int]int)
	for _, f := range p.Fragments {
		for _, ex := range f.Receivers {
			consumers[ex]++
		}
	}
	for _, f := range p.Fragments {
		parents := physical.ParentCounts(f.Root)
		seen := make(map[physical.Node]bool)
		physical.Walk(f.Root, func(n physical.Node) bool {
			if seen[n] {
				return false
			}
			seen[n] = true
			j, ok := n.(*physical.Join)
			if !ok || !physical.FilterableJoin(j) {
				return true
			}
			build := j.Inputs()[1]
			if !physical.SubtreeLocal(build) || !physical.SubtreeSelective(build) {
				return true
			}
			rv, probeCols := physical.ResolveProbeChain(j, parents)
			if rv == nil || consumers[rv.ExchangeID] != 1 {
				return true
			}
			prod := p.Producer[rv.ExchangeID]
			if prod == nil || prod.ID == f.ID {
				return true
			}
			buildCols := make([]int, len(j.Keys))
			for i, k := range j.Keys {
				buildCols[i] = k.Right
			}
			rf := &physical.RuntimeFilter{
				ID:        len(p.Filters),
				JoinFrag:  f.ID,
				Join:      j,
				BuildRoot: build,
				BuildCols: buildCols,
				ProbeFrag: prod.ID,
				Exchange:  rv.ExchangeID,
				Receiver:  rv,
				ProbeCols: probeCols,
			}
			prodParents := physical.ParentCounts(prod.Root)
			target, targetCols := physical.PushdownTarget(prod.Root.Inputs()[0], probeCols, prodParents)
			// A node-level filter below the sender is only worthwhile when
			// the descent moved past at least the sender's child; applying
			// at the sender child's output would duplicate the send-stage
			// test. It stays valid at any depth, so keep it whenever the
			// target differs from the sender itself.
			if target != nil {
				rf.ProbeNode = target
				rf.ProbeNodeCols = targetCols
			}
			p.Filters = append(p.Filters, rf)
			return true
		})
	}
}

// SourceMode is how a source operator behaves inside a variant fragment
// (§5.3.1).
type SourceMode uint8

const (
	// SplitMode partitions the source rows across variants
	// (c % n == vid).
	SplitMode SourceMode = iota
	// DuplicateMode replays all source rows in every variant.
	DuplicateMode
)

// Variants describes the multi-threaded execution of one fragment: N
// variant copies, with a per-source mode assignment.
type Variants struct {
	N int
	// Modes assigns each source operator (TableScan, IndexScan, Receiver)
	// its splitter/duplicator role.
	Modes map[physical.Node]SourceMode
}

// BuildVariants implements Algorithm 3. It returns nil when the fragment
// must stay single-threaded: root fragments, fragments containing a
// reduction operator (single-phase or reduce-phase aggregation), and
// fragments with no splittable source.
func BuildVariants(f *Fragment, n int) *Variants {
	if f.IsRoot || n <= 1 {
		return nil
	}
	v := &Variants{N: n, Modes: make(map[physical.Node]SourceMode)}
	if !assignModes(f.Root, SplitMode, v.Modes) {
		return nil
	}
	// At least one source must actually split for variants to be useful.
	split := false
	for _, m := range v.Modes {
		if m == SplitMode {
			split = true
			break
		}
	}
	if !split {
		return nil
	}
	return v
}

// assignModes walks the fragment tree assigning source modes; it returns
// false when a reduction operator makes the fragment ineligible.
func assignModes(n physical.Node, mode SourceMode, modes map[physical.Node]SourceMode) bool {
	switch t := n.(type) {
	case *physical.TableScan, *physical.IndexScan, *physical.Receiver:
		modes[n] = mode
		return true
	case *physical.HashAggregate:
		if t.IsReduction() {
			return false
		}
	case *physical.SortAggregate:
		if t.IsReduction() {
			return false
		}
	case *physical.Join:
		if t.Type == logical.JoinInner {
			// §5.3.1: the left source chain duplicates; the right keeps
			// the incoming mode (most often a base relation scan that
			// benefits from dynamic sub-partitioning). Every (l, r) pair
			// is then seen in exactly one variant.
			if !assignModes(t.Inputs()[0], DuplicateMode, modes) {
				return false
			}
			return assignModes(t.Inputs()[1], mode, modes)
		}
		// Semi/anti/left joins decide per left row against ALL right
		// matches, so the right side must duplicate and the left side
		// carries the incoming split.
		if !assignModes(t.Inputs()[0], mode, modes) {
			return false
		}
		return assignModes(t.Inputs()[1], DuplicateMode, modes)
	case *physical.Limit:
		// A limit needs the whole stream; treat like a reduction.
		return false
	}
	for _, in := range n.Inputs() {
		if !assignModes(in, mode, modes) {
			return false
		}
	}
	return true
}

// Format renders the fragmented plan for EXPLAIN output.
func (p *Plan) Format() string {
	out := ""
	for _, f := range p.Fragments {
		role := "fragment"
		if f.IsRoot {
			role = "root fragment"
		}
		out += fmt.Sprintf("--- %s %d ---\n%s", role, f.ID, physical.Format(f.Root))
	}
	return out
}
