package fragment

import (
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/types"
)

func scan(name string) *physical.TableScan {
	t := &catalog.Table{
		Name: name,
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "v", Kind: types.KindInt},
		},
		PrimaryKey:  []string{"id"},
		AffinityKey: "id",
	}
	return physical.NewTableScan(t, name, t.Fields())
}

// buildJoinPlan assembles: scanA ⋈ Exchange(scanB → hash) under an
// Exchange(single) — two exchanges, three fragments.
func buildJoinPlan() physical.Node {
	a := scan("a")
	b := scan("b")
	ex1 := physical.NewExchange(b, physical.HashDist(0))
	join := physical.NewJoin(a, ex1, physical.HashAlgo, logical.JoinInner,
		expr.NewBinOp(expr.OpEq,
			expr.NewColRef(0, types.KindInt, ""),
			expr.NewColRef(2, types.KindInt, "")),
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.HashDist(0), "hash")
	return physical.NewExchange(join, physical.SingleDist)
}

func TestSplitAlgorithm1(t *testing.T) {
	plan := Split(buildJoinPlan())
	if len(plan.Fragments) != 3 {
		t.Fatalf("fragments = %d, want 3", len(plan.Fragments))
	}
	root := plan.Fragments[0]
	if !root.IsRoot {
		t.Error("fragment 0 not root")
	}
	// The root fragment's tree is just the receiver of the top exchange.
	if _, ok := root.Root.(*physical.Receiver); !ok {
		t.Errorf("root fragment root = %T", root.Root)
	}
	if len(root.Receivers) != 1 {
		t.Errorf("root receivers = %v", root.Receivers)
	}
	// Every non-root fragment is rooted at a sender.
	senders := 0
	for _, f := range plan.Fragments[1:] {
		if _, ok := f.Root.(*physical.Sender); ok {
			senders++
		}
		if f.IsRoot {
			t.Error("extra root fragment")
		}
	}
	if senders != 2 {
		t.Errorf("senders = %d", senders)
	}
	// No exchange operators remain anywhere.
	for _, f := range plan.Fragments {
		physical.Walk(f.Root, func(n physical.Node) bool {
			if _, ok := n.(*physical.Exchange); ok {
				t.Error("exchange survived splitting")
			}
			return true
		})
	}
	// Producer maps every exchange ID.
	if len(plan.Producer) != 2 {
		t.Errorf("producers = %d", len(plan.Producer))
	}
}

func TestOrderedDependencies(t *testing.T) {
	plan := Split(buildJoinPlan())
	order, err := plan.Ordered()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, f := range order {
		pos[f.ID] = i
	}
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			if pos[plan.Producer[ex].ID] > pos[f.ID] {
				t.Errorf("fragment %d ordered before its producer", f.ID)
			}
		}
	}
}

func TestWavesRespectDependencies(t *testing.T) {
	plan := Split(buildJoinPlan())
	waves, err := plan.Waves()
	if err != nil {
		t.Fatal(err)
	}
	// Every fragment appears in exactly one wave.
	waveOf := make(map[int]int)
	total := 0
	for w, frags := range waves {
		for _, f := range frags {
			if prev, dup := waveOf[f.ID]; dup {
				t.Fatalf("fragment %d in waves %d and %d", f.ID, prev, w)
			}
			waveOf[f.ID] = w
			total++
		}
	}
	if total != len(plan.Fragments) {
		t.Fatalf("waves hold %d fragments, plan has %d", total, len(plan.Fragments))
	}
	// Every producer is in a strictly earlier wave than its consumer.
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			if waveOf[plan.Producer[ex].ID] >= waveOf[f.ID] {
				t.Errorf("fragment %d not after its producer %d",
					f.ID, plan.Producer[ex].ID)
			}
		}
	}
	// Known shape: scan-b fragment (wave 0) → join fragment (wave 1) →
	// root (wave 2).
	if len(waves) != 3 {
		t.Fatalf("waves = %d, want 3", len(waves))
	}
	if waveOf[0] != len(waves)-1 {
		t.Errorf("root fragment in wave %d, want last wave %d", waveOf[0], len(waves)-1)
	}
}

func TestBuildVariantsRootAndReductionSkipped(t *testing.T) {
	plan := Split(buildJoinPlan())
	root := plan.Fragments[0]
	if v := BuildVariants(root, 2); v != nil {
		t.Error("root fragment got variants")
	}
	// A fragment with a single-phase aggregate is a reduction: skipped.
	a := scan("a")
	agg := physical.NewHashAggregate(a, []int{0}, nil, physical.AggSinglePhase,
		a.Schema()[:1])
	sender := physical.NewSender(agg, 0, physical.SingleDist)
	f := &Fragment{ID: 1, Root: sender}
	if v := BuildVariants(f, 2); v != nil {
		t.Error("reduction fragment got variants")
	}
	// Map-phase aggregates are fine (partials merge downstream).
	aggMap := physical.NewHashAggregate(scan("a"), []int{0}, nil, physical.AggMap,
		a.Schema()[:1])
	f2 := &Fragment{ID: 2, Root: physical.NewSender(aggMap, 0, physical.SingleDist)}
	if v := BuildVariants(f2, 2); v == nil {
		t.Error("map-phase fragment denied variants")
	}
	// n <= 1 means no variants.
	if v := BuildVariants(f2, 1); v != nil {
		t.Error("n=1 produced variants")
	}
}

func TestBuildVariantsJoinModes(t *testing.T) {
	// Inner join: left source duplicates, right splits (§5.3.1).
	a, b := scan("a"), scan("b")
	join := physical.NewJoin(a, b, physical.NestedLoop, logical.JoinInner,
		expr.True, nil, physical.SingleDist, "single")
	f := &Fragment{ID: 1, Root: physical.NewSender(join, 0, physical.SingleDist)}
	v := BuildVariants(f, 2)
	if v == nil {
		t.Fatal("no variants")
	}
	if v.Modes[a] != DuplicateMode {
		t.Error("inner join left source should duplicate")
	}
	if v.Modes[b] != SplitMode {
		t.Error("inner join right source should split")
	}
	// Semi join: left splits, right duplicates (per-left-row decisions
	// need the whole right side).
	a2, b2 := scan("a"), scan("b")
	semi := physical.NewJoin(a2, b2, physical.NestedLoop, logical.JoinSemi,
		expr.True, nil, physical.SingleDist, "single")
	f2 := &Fragment{ID: 2, Root: physical.NewSender(semi, 0, physical.SingleDist)}
	v2 := BuildVariants(f2, 2)
	if v2 == nil {
		t.Fatal("no variants for semi")
	}
	if v2.Modes[a2] != SplitMode || v2.Modes[b2] != DuplicateMode {
		t.Errorf("semi modes = left %v right %v", v2.Modes[a2], v2.Modes[b2])
	}
}

func TestBuildVariantsLimitBlocked(t *testing.T) {
	lim := physical.NewLimit(scan("a"), 10)
	f := &Fragment{ID: 1, Root: physical.NewSender(lim, 0, physical.SingleDist)}
	if v := BuildVariants(f, 2); v != nil {
		t.Error("limit fragment got variants")
	}
}

func TestBuildVariantsAllDuplicatorsRejected(t *testing.T) {
	// If every source would be a duplicator, variants are pointless: a
	// join of two joins' left spines... simplest: single scan fragment is
	// split-eligible, so use a left-deep join where the only sources are
	// on duplicate chains.
	a, b := scan("a"), scan("b")
	inner := physical.NewJoin(a, b, physical.NestedLoop, logical.JoinSemi,
		expr.True, nil, physical.SingleDist, "single")
	// semi: a splits — still has a splitter, so variants exist.
	f := &Fragment{ID: 1, Root: physical.NewSender(inner, 0, physical.SingleDist)}
	if v := BuildVariants(f, 2); v == nil {
		t.Fatal("expected variants")
	}
}

// TestSplitSharedSubtreeRecordsAllConsumers: the optimizer may emit a DAG
// where one subtree (here a broadcast join input) feeds two parents that
// end up in different fragments. Both consuming fragments must record the
// exchange in Receivers — TPC-H Q11's HAVING subquery produces exactly
// this shape, and a dropped edge let the second consumer share a wave
// with its producer and race against in-flight retries.
func TestSplitSharedSubtreeRecordsAllConsumers(t *testing.T) {
	b, c := scan("b"), scan("c")
	exB := physical.NewExchange(b, physical.BroadcastDist)
	shared := physical.NewJoin(c, exB, physical.HashAlgo, logical.JoinInner,
		expr.NewBinOp(expr.OpEq,
			expr.NewColRef(0, types.KindInt, ""),
			expr.NewColRef(2, types.KindInt, "")),
		[]expr.EquiKey{{Left: 0, Right: 0}}, physical.HashDist(0), "hash")
	// The shared join appears under the root directly AND under a second
	// exchange; the second walk meets the already-substituted receiver.
	side := physical.NewExchange(shared, physical.SingleDist)
	root := physical.NewJoin(shared, side, physical.NestedLoop, logical.JoinInner,
		expr.True, nil, physical.SingleDist, "single")

	plan := Split(root)
	// Fragment 1 produces exchange 0 (scan b); the root and the side
	// fragment both contain Receiver #0.
	bFragID := plan.Producer[0].ID
	consumers := 0
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			if ex == 0 {
				consumers++
			}
		}
	}
	if consumers != 2 {
		t.Fatalf("exchange 0 recorded by %d fragments, want 2", consumers)
	}
	waves, err := plan.Waves()
	if err != nil {
		t.Fatal(err)
	}
	waveOf := make(map[int]int)
	for w, frags := range waves {
		for _, f := range frags {
			waveOf[f.ID] = w
		}
	}
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			if waveOf[plan.Producer[ex].ID] >= waveOf[f.ID] {
				t.Errorf("fragment %d shares a wave with its producer %d",
					f.ID, plan.Producer[ex].ID)
			}
		}
	}
	if waveOf[bFragID] != 0 {
		t.Errorf("scan-b fragment in wave %d, want 0", waveOf[bFragID])
	}
}

// TestSplitSharedExchangeNodeSplitOnce: the same Exchange node object
// reached from two distinct parents splits once — one producer fragment,
// one exchange ID, both consumers recording the dependency.
func TestSplitSharedExchangeNodeSplitOnce(t *testing.T) {
	a, b, c := scan("a"), scan("b"), scan("c")
	exB := physical.NewExchange(b, physical.BroadcastDist)
	join1 := physical.NewJoin(a, exB, physical.NestedLoop, logical.JoinInner,
		expr.True, nil, physical.SingleDist, "single")
	join2 := physical.NewJoin(c, exB, physical.NestedLoop, logical.JoinInner,
		expr.True, nil, physical.SingleDist, "single")
	side := physical.NewExchange(join2, physical.SingleDist)
	root := physical.NewJoin(join1, side, physical.NestedLoop, logical.JoinInner,
		expr.True, nil, physical.SingleDist, "single")

	plan := Split(root)
	// Exchanges: the shared one (split once) + the side one.
	if len(plan.Producer) != 2 {
		t.Fatalf("exchanges = %d, want 2 (shared exchange split once)", len(plan.Producer))
	}
	sharedID := plan.Producer[0].ExchangeID
	consumers := 0
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			if ex == sharedID {
				consumers++
			}
		}
	}
	if consumers != 2 {
		t.Fatalf("shared exchange recorded by %d fragments, want 2", consumers)
	}
	if _, err := plan.Waves(); err != nil {
		t.Fatal(err)
	}
}

func TestFormatListsFragments(t *testing.T) {
	plan := Split(buildJoinPlan())
	out := plan.Format()
	if len(out) == 0 {
		t.Fatal("empty format")
	}
	for _, want := range []string{"root fragment 0", "fragment 1", "fragment 2"} {
		if !contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
