// Package cost implements the Ignite-style operator cost model the paper
// analyzes in §3.2 and improves in §4.2.
//
// A cost is a four-component vector (CPU, Memory, IO, Network); an
// operator's scalar cost is the equal-weighted sum of the components
// (Equation 2). IO is always zero: the system is in-memory.
//
// Two unit regimes are supported:
//
//   - Legacy (Equation 4): memory/network components count bytes
//     (rows × width × AFS) while CPU counts operations. The mismatched
//     units give memory/network an outsized effective weight — the defect
//     §4.2 identifies.
//   - Standardized (Equation 5): every component counts rows, with the
//     column-count factor removed.
//
// The distribution factor (Algorithm 2, Equation 6) rewards operators that
// run on partitioned data by dividing their work by the number of
// partition sites; it is computed by the physical layer and passed in.
package cost

import "math"

// Model constants. RPTC approximates the CPU work to pass one tuple
// through an operator; RCC the work to compare two rows; HAC the work to
// hash a row; AFS the average field size in bytes.
const (
	RPTC = 1.0
	RCC  = 3.0
	HAC  = 2.0
	AFS  = 8.0
)

// Runtime join-filter constants (DESIGN.md §13): BFIC is the work to
// insert one build key into a bloom/exact filter, BFTC the work to test
// one probe row against it. Both are one key hash plus a handful of bit
// operations — cheaper than copying a row through an exchange (RPTC), and
// far cheaper than a hash-table insert (HAC, which allocates).
const (
	BFIC = 0.5
	BFTC = 0.5
)

// Cost is the four-component cost vector of §3.2 (Equation 2).
type Cost struct {
	CPU     float64
	Memory  float64
	IO      float64
	Network float64
}

// Zero is the zero cost.
var Zero = Cost{}

// Infinite marks unimplementable alternatives.
var Infinite = Cost{CPU: math.Inf(1)}

// Plus adds two costs component-wise.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		CPU:     c.CPU + o.CPU,
		Memory:  c.Memory + o.Memory,
		IO:      c.IO + o.IO,
		Network: c.Network + o.Network,
	}
}

// Scalar collapses the vector with equal weights (Equation 2).
func (c Cost) Scalar() float64 { return c.CPU + c.Memory + c.IO + c.Network }

// Less orders costs by scalar value.
func (c Cost) Less(o Cost) bool { return c.Scalar() < o.Scalar() }

// IsInfinite reports whether the cost marks an invalid alternative.
func (c Cost) IsInfinite() bool { return math.IsInf(c.Scalar(), 1) }

// Params selects between the baseline (IC) and improved (IC+) cost model
// behaviours.
type Params struct {
	// LegacyUnits selects Equation 4 (bytes for memory/network) instead of
	// Equation 5 (rows everywhere).
	LegacyUnits bool
	// ExchangePenaltyBug reproduces the §4.1 shared-constant defect: the
	// multi-target exchange penalty is never applied.
	ExchangePenaltyBug bool
	// UseDistributionFactor enables Algorithm 2 / Equation 6. The IC
	// baseline has no such factor (equivalent to df = 1 everywhere).
	UseDistributionFactor bool
}

// effectiveDF returns the distribution factor to apply under the params.
func (p Params) effectiveDF(df float64) float64 {
	if !p.UseDistributionFactor || df < 1 {
		return 1
	}
	return df
}

// memNet converts a row count (+ width) into the memory/network unit of
// the active regime.
func (p Params) memNet(rows, width float64) float64 {
	if p.LegacyUnits {
		return rows * width * AFS
	}
	return rows
}

// Scan returns the cost of a base-relation scan producing rows of the
// given width. df is the Algorithm 2 distribution factor of the scan.
func (p Params) Scan(rows, width, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	return Cost{CPU: r * RPTC, Memory: p.memNet(r, width)}
}

// Filter returns the cost of filtering rows (one comparison per row).
func (p Params) Filter(rows, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	return Cost{CPU: r * (RPTC + RCC)}
}

// Project returns the cost of projecting rows.
func (p Params) Project(rows, width, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	return Cost{CPU: r * RPTC, Memory: p.memNet(r, width)}
}

// Sort returns the cost of an in-memory sort (Equations 4–6).
func (p Params) Sort(rows, width, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	logN := math.Log2(math.Max(2, r))
	return Cost{
		CPU:    r*RPTC + r*logN*RCC,
		Memory: p.memNet(r, width),
	}
}

// HashAggregate returns the cost of a hash-based aggregation producing
// groups output rows.
func (p Params) HashAggregate(rows, groups, width, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	g := math.Min(groups, r)
	// Hashing pays a hash plus a probe comparison per row; the streaming
	// sort-based aggregate pays only the comparison, which is what makes
	// it win on pre-sorted input (the paper's Q14 observation).
	return Cost{
		CPU:    r * (RPTC + HAC + RCC),
		Memory: p.memNet(g, width),
	}
}

// SortAggregate returns the cost of a streaming aggregation over sorted
// input — cheaper than hashing and with O(1) memory.
func (p Params) SortAggregate(rows, df float64) Cost {
	df = p.effectiveDF(df)
	r := rows / df
	return Cost{CPU: r * (RPTC + RCC)}
}

// NestedLoopJoin returns the cost of an N×M nested-loop join.
func (p Params) NestedLoopJoin(left, right, rightWidth, df float64) Cost {
	df = p.effectiveDF(df)
	l := left / df
	return Cost{
		CPU:    (l + l*right) * (RPTC + RCC),
		Memory: p.memNet(right, rightWidth),
	}
}

// MergeJoin returns the cost of merging two sorted inputs (Equation 9
// minus the sort costs, which belong to the inputs' Sort operators).
func (p Params) MergeJoin(left, right, dfL, dfR float64) Cost {
	dfL = p.effectiveDF(dfL)
	dfR = p.effectiveDF(dfR)
	return Cost{
		CPU: (left/dfL + right/dfR) * (RCC + RPTC + HAC),
	}
}

// HashJoin returns the cost of the in-memory hash join of §5.1.2
// (Equation 7): the build side is the right relation; the distribution
// factor applies to the right side only, rewarding plans that build the
// hash table on a local partition. The per-row hash charge splits
// asymmetrically: a probe row only computes the hash and looks up
// (HAC/2), while a build row also pays the insert's allocation
// (3·HAC/2). The average per pair-row matches the symmetric Equation 7
// charge, and the asymmetry is what the adaptive build-swap rewrite
// (DESIGN.md §17) exploits when observed sizes invert the estimate.
func (p Params) HashJoin(left, right, rightWidth, dfRight float64) Cost {
	dfRight = p.effectiveDF(dfRight)
	r := right / dfRight
	return Cost{
		CPU:    left*(RCC+RPTC+HAC/2) + r*(RCC+RPTC+1.5*HAC),
		Memory: p.memNet(r, rightWidth),
	}
}

// exchangePerTargetCost is the fixed per-target penalty of a multi-target
// exchange: each additional destination site costs one more batched
// message stream regardless of volume.
const exchangePerTargetCost = 200.0

// Exchange returns the cost of shipping rows. copies is the replication
// factor of the shipment (1 for single/hash targets, the site count for
// broadcast); targets counts destination sites. The §4.1 shared-constant
// bug makes a multi-target exchange cost exactly what a single-target one
// does: neither the replication volume nor the per-target penalty is
// applied.
func (p Params) Exchange(rows, width, copies float64, targets int) Cost {
	if copies < 1 {
		copies = 1
	}
	if p.ExchangePenaltyBug {
		return Cost{
			CPU:     rows * RPTC,
			Network: p.memNet(rows, width),
		}
	}
	penalty := 0.0
	if targets > 1 {
		penalty = exchangePerTargetCost * float64(targets)
	}
	return Cost{
		CPU:     rows * RPTC,
		Network: p.memNet(rows*copies, width) + penalty,
	}
}

// Limit returns the cost of a limit operator.
func (p Params) Limit(rows float64) Cost {
	return Cost{CPU: rows * RPTC}
}
