package cost

import (
	"math"
	"testing"
)

func TestCostArithmetic(t *testing.T) {
	a := Cost{CPU: 1, Memory: 2, IO: 0, Network: 3}
	b := Cost{CPU: 10, Memory: 20, Network: 30}
	sum := a.Plus(b)
	if sum.CPU != 11 || sum.Memory != 22 || sum.Network != 33 {
		t.Errorf("Plus = %+v", sum)
	}
	if got := a.Scalar(); got != 6 {
		t.Errorf("Scalar = %v", got)
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less ordering wrong")
	}
	if !Infinite.IsInfinite() || Zero.IsInfinite() {
		t.Error("infinity flags wrong")
	}
}

func TestLegacyUnitsInflateMemory(t *testing.T) {
	// Equation 4 vs Equation 5: with 10 columns, legacy memory cost is
	// width*AFS = 80x the standardized one, which is the §4.2 imbalance.
	legacy := Params{LegacyUnits: true}
	std := Params{}
	l := legacy.Sort(1000, 10, 1)
	s := std.Sort(1000, 10, 1)
	if l.CPU != s.CPU {
		t.Errorf("CPU should not change: %v vs %v", l.CPU, s.CPU)
	}
	if l.Memory != 1000*10*AFS {
		t.Errorf("legacy memory = %v", l.Memory)
	}
	if s.Memory != 1000 {
		t.Errorf("standardized memory = %v", s.Memory)
	}
	if l.Memory/s.Memory != 10*AFS {
		t.Errorf("inflation factor = %v", l.Memory/s.Memory)
	}
}

func TestDistributionFactorRewardsPartitionedWork(t *testing.T) {
	p := Params{UseDistributionFactor: true}
	whole := p.Sort(4000, 4, 1)
	dist := p.Sort(4000, 4, 4)
	if dist.Scalar() >= whole.Scalar() {
		t.Errorf("distributed sort not cheaper: %v vs %v", dist.Scalar(), whole.Scalar())
	}
	// Baseline params ignore the factor entirely.
	base := Params{}
	if got := base.Sort(4000, 4, 4); got != base.Sort(4000, 4, 1) {
		t.Errorf("baseline applied df: %+v", got)
	}
}

func TestExchangePenaltyBug(t *testing.T) {
	fixed := Params{}
	bugged := Params{ExchangePenaltyBug: true}
	single := fixed.Exchange(1000, 4, 1, 1)
	hashEx := fixed.Exchange(1000, 4, 1, 4)
	bcast := fixed.Exchange(1000, 4, 4, 4)
	if hashEx.Network <= single.Network {
		t.Errorf("multi-target penalty missing: %v vs %v", hashEx.Network, single.Network)
	}
	if bcast.Network <= hashEx.Network {
		t.Errorf("broadcast volume not counted: %v vs %v", bcast.Network, hashEx.Network)
	}
	// The penalty is a per-target constant, not a volume multiplier: a
	// hash exchange must not cost as much as shipping everything twice.
	if hashEx.Network >= 2*single.Network {
		t.Errorf("penalty scales with volume: %v vs %v", hashEx.Network, single.Network)
	}
	// With the bug, every exchange costs what a single-target one does.
	bm := bugged.Exchange(1000, 4, 4, 4)
	bs := bugged.Exchange(1000, 4, 1, 1)
	if bm != bs {
		t.Errorf("bugged exchange should ignore targets: %+v vs %+v", bm, bs)
	}
}

func TestHashJoinFavorsSmallLocalBuild(t *testing.T) {
	p := Params{UseDistributionFactor: true}
	// Equation 7: df applies to the right (build) side only.
	local := p.HashJoin(100000, 8000, 4, 4)   // build on local partition
	shipped := p.HashJoin(100000, 8000, 4, 1) // build on shipped data
	if local.Scalar() >= shipped.Scalar() {
		t.Errorf("local build not rewarded: %v vs %v", local.Scalar(), shipped.Scalar())
	}
	if local.Memory != 2000 {
		t.Errorf("hash memory = %v, want |B|/df = 2000", local.Memory)
	}
}

// TestHashVsMergeCrossover reproduces §5.1.3: as relations grow, the sort
// cost makes merge join lose to hash join (df = 1 case).
func TestHashVsMergeCrossover(t *testing.T) {
	p := Params{}
	mjTotal := func(n float64) float64 {
		// Merge join plus the two sorts it requires.
		return p.MergeJoin(n, n, 1, 1).Scalar() +
			p.Sort(n, 4, 1).Scalar() + p.Sort(n, 4, 1).Scalar()
	}
	hjTotal := func(n float64) float64 {
		return p.HashJoin(n, n, 4, 1).Scalar()
	}
	if hjTotal(1000000) >= mjTotal(1000000) {
		t.Errorf("hash join should win at 1M rows: hj=%v mj=%v",
			hjTotal(1000000), mjTotal(1000000))
	}
	// With sorts removed (inputs already sorted), merge join wins at any
	// size — the paper's "if both sorting costs are removed" case.
	if p.MergeJoin(1e6, 1e6, 1, 1).Scalar() >= hjTotal(1e6) {
		t.Errorf("pure merge should beat hash: mj=%v hj=%v",
			p.MergeJoin(1e6, 1e6, 1, 1).Scalar(), hjTotal(1e6))
	}
}

func TestNestedLoopQuadratic(t *testing.T) {
	p := Params{}
	small := p.NestedLoopJoin(100, 100, 4, 1)
	big := p.NestedLoopJoin(1000, 1000, 4, 1)
	ratio := big.CPU / small.CPU
	if math.Abs(ratio-100) > 2 {
		t.Errorf("NLJ cost not quadratic: ratio = %v", ratio)
	}
}

func TestSortAggregateCheaperThanHash(t *testing.T) {
	p := Params{}
	sa := p.SortAggregate(100000, 1)
	ha := p.HashAggregate(100000, 1000, 4, 1)
	if sa.Scalar() >= ha.Scalar() {
		t.Errorf("sort agg should be cheaper on sorted input: %v vs %v",
			sa.Scalar(), ha.Scalar())
	}
}

func TestScanFilterProjectLimitCosts(t *testing.T) {
	p := Params{}
	if c := p.Scan(1000, 4, 1); c.CPU != 1000*RPTC || c.Memory != 1000 {
		t.Errorf("scan = %+v", c)
	}
	if c := p.Filter(1000, 1); c.CPU != 1000*(RPTC+RCC) {
		t.Errorf("filter = %+v", c)
	}
	if c := p.Limit(10); c.CPU != 10*RPTC {
		t.Errorf("limit = %+v", c)
	}
	if c := p.Project(10, 2, 1); c.CPU != 10*RPTC {
		t.Errorf("project = %+v", c)
	}
}
