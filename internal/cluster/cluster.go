// Package cluster drives fragmented query execution over the simulated
// multi-site deployment: it assigns fragments to sites by their
// distribution traits, runs every (fragment × site × variant) instance,
// wires the exchanges through the transport, and feeds the execution
// trace to the simnet cost clock.
//
// Fragments execute in dependency order (producers before consumers) with
// fully materialized exchanges. The concurrency the paper gets from
// per-fragment threads is accounted for by the cost clock rather than by
// host threads — see DESIGN.md §2 and package simnet.
package cluster

import (
	"fmt"
	"time"

	"gignite/internal/exec"
	"gignite/internal/fragment"
	"gignite/internal/physical"
	"gignite/internal/simnet"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Cluster is a simulated deployment: N sites over one partitioned store.
type Cluster struct {
	Store *storage.Store
	// Sim is the modeled hardware profile for the cost clock.
	Sim simnet.Params
}

// New creates a cluster over a store.
func New(store *storage.Store, sim simnet.Params) *Cluster {
	return &Cluster{Store: store, Sim: sim}
}

// Result is one query execution's outcome.
type Result struct {
	Rows   []types.Row
	Fields types.Fields
	// Modeled is the cost-clock response time on the modeled testbed.
	Modeled time.Duration
	// Work is the total CPU work units across all instances.
	Work float64
	// BytesShipped is the total network volume.
	BytesShipped float64
	// Fragments and Instances count the execution plan's parallel units.
	Fragments int
	Instances int
}

// ErrWorkLimit re-exports the executor's work-limit error for callers.
var ErrWorkLimit = exec.ErrWorkLimit

// Execute runs a fragmented plan. variants > 1 enables §5.3 variant
// fragments (IC+M runs with 2).
func (c *Cluster) Execute(plan *fragment.Plan, variants int) (*Result, error) {
	return c.ExecuteLimited(plan, variants, 0)
}

// ExecuteLimited is Execute with a per-instance work limit (0 =
// unlimited), reproducing the paper's query runtime limit.
func (c *Cluster) ExecuteLimited(plan *fragment.Plan, variants int, workLimit float64) (*Result, error) {
	order, err := plan.Ordered()
	if err != nil {
		return nil, err
	}
	transport := exec.NewTransport()
	trace := &simnet.Trace{
		Instances: make(map[int][]simnet.Instance),
		Consumer:  make(map[int]int),
	}
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			trace.Consumer[ex] = f.ID
		}
		if f.IsRoot {
			trace.RootFrag = f.ID
		}
	}

	var (
		resultRows   []types.Row
		resultFields types.Fields
		instances    int
	)
	for _, f := range order {
		trace.Order = append(trace.Order, f.ID)
		sites := c.fragmentSites(f)
		vs := fragment.BuildVariants(f, variants)
		n := 1
		var modes map[physical.Node]fragment.SourceMode
		if vs != nil {
			n = vs.N
			modes = vs.Modes
		}
		for _, site := range sites {
			for v := 0; v < n; v++ {
				ctx := &exec.Context{
					Store:     c.Store,
					Transport: transport,
					FragID:    f.ID,
					Site:      site,
					Variant:   v,
					NVariants: n,
					Modes:     modes,
					WorkLimit: workLimit,
					RowLimit:  int64(workLimit / 100),
				}
				rows, err := exec.Run(f.Root, ctx)
				if err != nil {
					return nil, fmt.Errorf("cluster: fragment %d at site %d: %w", f.ID, site, err)
				}
				instances++
				trace.Instances[f.ID] = append(trace.Instances[f.ID], simnet.Instance{
					Frag: f.ID, Site: site, Variant: v, Work: ctx.CPUWork,
				})
				if f.IsRoot {
					resultRows = rows
					resultFields = f.Root.Schema()
				}
			}
		}
	}

	for _, s := range transport.Sends {
		trace.Sends = append(trace.Sends, simnet.Send{
			Exchange: s.Exchange, FromFrag: s.FromFrag, FromSite: s.FromSite,
			FromVariant: s.FromVariant, ToSite: s.ToSite, Bytes: float64(s.Bytes),
		})
	}

	return &Result{
		Rows:         resultRows,
		Fields:       resultFields,
		Modeled:      simnet.Makespan(trace, c.Sim),
		Work:         trace.TotalWork(),
		BytesShipped: trace.TotalBytes(),
		Fragments:    len(plan.Fragments),
		Instances:    instances,
	}, nil
}

// fragmentSites determines where a fragment executes, from the
// distribution trait of its content (§3.2.3: "the distribution traits
// from the operators in each fragment determine the processing sites").
func (c *Cluster) fragmentSites(f *fragment.Fragment) []int {
	if f.IsRoot {
		return []int{0}
	}
	content := f.Root.Inputs()[0] // the sender's child
	switch content.Dist().Type {
	case physical.Hash:
		sites := make([]int, c.Store.Sites())
		for i := range sites {
			sites[i] = i
		}
		return sites
	default:
		// Single-distributed content runs at the coordinator; broadcast
		// content is identical everywhere, so one canonical copy executes.
		return []int{0}
	}
}
