// Package cluster drives fragmented query execution over the simulated
// multi-site deployment: it assigns fragments to sites by their
// distribution traits, runs every (fragment × site × variant) instance,
// wires the exchanges through the transport, and feeds the execution
// trace to the simnet cost clock.
//
// Fragments execute wave by wave: Plan.Waves groups them so that every
// producer finishes before its consumers start, and all instances within
// one wave run concurrently on a bounded pool of host goroutines
// (Workers; 1 falls back to the deterministic sequential path). Host
// parallelism changes only wall-clock time — the modeled response time
// still comes from the simnet cost clock, which accounts for the paper's
// per-fragment threads analytically (see DESIGN.md §2 and package
// simnet).
package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gignite/internal/exec"
	"gignite/internal/fragment"
	"gignite/internal/physical"
	"gignite/internal/simnet"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Cluster is a simulated deployment: N sites over one partitioned store.
type Cluster struct {
	Store *storage.Store
	// Sim is the modeled hardware profile for the cost clock.
	Sim simnet.Params
	// Workers bounds how many fragment instances execute concurrently on
	// the host. 0 means runtime.GOMAXPROCS(0); 1 keeps the sequential
	// path (used by plan-diff tooling and determinism tests). Results
	// and modeled times are identical at every setting.
	Workers int
}

// New creates a cluster over a store.
func New(store *storage.Store, sim simnet.Params) *Cluster {
	return &Cluster{Store: store, Sim: sim}
}

// Result is one query execution's outcome.
type Result struct {
	Rows   []types.Row
	Fields types.Fields
	// Modeled is the cost-clock response time on the modeled testbed.
	Modeled time.Duration
	// Work is the total CPU work units across all instances.
	Work float64
	// BytesShipped is the total network volume.
	BytesShipped float64
	// Fragments and Instances count the execution plan's parallel units.
	Fragments int
	Instances int
	// Workers is the host worker-pool size the execution ran with.
	Workers int
}

// ErrWorkLimit re-exports the executor's work-limit error for callers.
var ErrWorkLimit = exec.ErrWorkLimit

// Execute runs a fragmented plan. variants > 1 enables §5.3 variant
// fragments (IC+M runs with 2).
func (c *Cluster) Execute(plan *fragment.Plan, variants int) (*Result, error) {
	return c.ExecuteLimited(plan, variants, 0)
}

// instanceJob is one schedulable (fragment × site × variant) instance.
type instanceJob struct {
	frag      *fragment.Fragment
	site      int
	variant   int
	nVariants int
	modes     map[physical.Node]fragment.SourceMode
}

// instanceResult is the per-instance outcome a worker hands back to the
// wave barrier. Workers never touch shared trace state: each writes only
// its own slot, and the barrier merges slots in deterministic job order.
type instanceResult struct {
	rows    []types.Row
	work    float64
	err     error
	skipped bool
}

// ExecuteLimited is Execute with a per-instance work limit (0 =
// unlimited), reproducing the paper's query runtime limit.
func (c *Cluster) ExecuteLimited(plan *fragment.Plan, variants int, workLimit float64) (*Result, error) {
	waves, err := plan.Waves()
	if err != nil {
		return nil, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	transport := exec.NewTransport()
	trace := &simnet.Trace{
		Instances: make(map[int][]simnet.Instance),
		Consumer:  make(map[int]int),
	}
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			trace.Consumer[ex] = f.ID
		}
		if f.IsRoot {
			trace.RootFrag = f.ID
		}
	}

	var (
		resultRows   []types.Row
		resultFields types.Fields
		instances    int
	)
	for _, wave := range waves {
		var jobs []instanceJob
		for _, f := range wave {
			trace.Order = append(trace.Order, f.ID)
			sites := c.fragmentSites(f)
			vs := fragment.BuildVariants(f, variants)
			n := 1
			var modes map[physical.Node]fragment.SourceMode
			if vs != nil {
				n = vs.N
				modes = vs.Modes
			}
			for _, site := range sites {
				for v := 0; v < n; v++ {
					jobs = append(jobs, instanceJob{frag: f, site: site, variant: v, nVariants: n, modes: modes})
				}
			}
		}
		results := make([]instanceResult, len(jobs))
		c.runWave(jobs, results, transport, workers, workLimit)

		// Merge at the wave barrier, in deterministic job order, so the
		// trace and the reported error are identical at every worker
		// count.
		for i := range jobs {
			j, r := jobs[i], results[i]
			if r.skipped {
				continue
			}
			if r.err != nil {
				return nil, fmt.Errorf("cluster: fragment %d at site %d: %w", j.frag.ID, j.site, r.err)
			}
			instances++
			trace.Instances[j.frag.ID] = append(trace.Instances[j.frag.ID], simnet.Instance{
				Frag: j.frag.ID, Site: j.site, Variant: j.variant, Work: r.work,
			})
			if j.frag.IsRoot {
				resultRows = r.rows
				resultFields = j.frag.Root.Schema()
			}
		}
	}

	for _, s := range transport.Sends {
		trace.Sends = append(trace.Sends, simnet.Send{
			Exchange: s.Exchange, FromFrag: s.FromFrag, FromSite: s.FromSite,
			FromVariant: s.FromVariant, ToSite: s.ToSite, Bytes: float64(s.Bytes),
		})
	}

	return &Result{
		Rows:         resultRows,
		Fields:       resultFields,
		Modeled:      simnet.Makespan(trace, c.Sim),
		Work:         trace.TotalWork(),
		BytesShipped: trace.TotalBytes(),
		Fragments:    len(plan.Fragments),
		Instances:    instances,
		Workers:      workers,
	}, nil
}

// runWave executes one wave's instances on at most `workers` goroutines.
// Each instance gets a private exec.Context, so work counters accumulate
// without sharing; once any instance fails, undispatched instances are
// skipped (the sequential early-exit behaviour, made race-safe).
func (c *Cluster) runWave(jobs []instanceJob, results []instanceResult,
	transport *exec.Transport, workers int, workLimit float64) {

	var failed atomic.Bool
	run := func(i int) {
		if failed.Load() {
			results[i].skipped = true
			return
		}
		j := jobs[i]
		ctx := &exec.Context{
			Store:     c.Store,
			Transport: transport,
			FragID:    j.frag.ID,
			Site:      j.site,
			Variant:   j.variant,
			NVariants: j.nVariants,
			Modes:     j.modes,
			WorkLimit: workLimit,
			RowLimit:  int64(workLimit / 100),
		}
		rows, err := exec.Run(j.frag.Root, ctx)
		if err != nil {
			failed.Store(true)
		}
		results[i] = instanceResult{rows: rows, work: ctx.CPUWork, err: err}
	}

	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// fragmentSites determines where a fragment executes, from the
// distribution trait of its content (§3.2.3: "the distribution traits
// from the operators in each fragment determine the processing sites").
func (c *Cluster) fragmentSites(f *fragment.Fragment) []int {
	if f.IsRoot {
		return []int{0}
	}
	content := f.Root.Inputs()[0] // the sender's child
	switch content.Dist().Type {
	case physical.Hash:
		sites := make([]int, c.Store.Sites())
		for i := range sites {
			sites[i] = i
		}
		return sites
	default:
		// Single-distributed content runs at the coordinator; broadcast
		// content is identical everywhere, so one canonical copy executes.
		return []int{0}
	}
}
