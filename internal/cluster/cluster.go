// Package cluster drives fragmented query execution over the simulated
// multi-site deployment: it assigns fragments to sites by their
// distribution traits, runs every (fragment × site × variant) instance,
// wires the exchanges through the transport, and feeds the execution
// trace to the simnet cost clock.
//
// Fragments execute wave by wave: Plan.Waves groups them so that every
// producer finishes before its consumers start, and all instances within
// one wave run concurrently on a bounded pool of host goroutines
// (Workers; 1 falls back to the deterministic sequential path). Host
// parallelism changes only wall-clock time — the modeled response time
// still comes from the simnet cost clock, which accounts for the paper's
// per-fragment threads analytically (see DESIGN.md §2 and package
// simnet).
//
// The scheduler is fault-tolerant: when an instance fails with an
// injected fault (site crash, transport send failure — see package
// faults), it is retried with capped exponential backoff, failing over
// hash-partitioned fragments onto the next replica site of their
// partition. A retried instance keeps its logical identity (Site,
// Variant), so its resent shipments order identically at receivers and
// failover results stay byte-identical to the fault-free run; the failed
// attempt's work and discarded bytes are charged to the simnet trace as
// retry cost. When a wave fails terminally, all distinct instance
// failures are reported together (errors.Join) in deterministic job
// order, identical at every worker count.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gignite/internal/adaptive"
	"gignite/internal/cost"
	"gignite/internal/exec"
	"gignite/internal/faults"
	"gignite/internal/fragment"
	"gignite/internal/governor"
	"gignite/internal/joinfilter"
	"gignite/internal/obs"
	"gignite/internal/physical"
	"gignite/internal/simnet"
	"gignite/internal/sketch"
	"gignite/internal/storage"
	"gignite/internal/types"
)

// Cluster is a simulated deployment: N sites over one partitioned store.
type Cluster struct {
	Store *storage.Store
	// Sim is the modeled hardware profile for the cost clock.
	Sim simnet.Params
	// Workers bounds how many fragment instances execute concurrently on
	// the host. 0 means runtime.GOMAXPROCS(0); 1 keeps the sequential
	// path (used by plan-diff tooling and determinism tests). Results
	// and modeled times are identical at every setting.
	Workers int
	// RowLimit bounds the rows one instance's join emission may
	// materialize (0 = unlimited). It keeps runaway cross products from
	// exhausting host memory before the work limit trips. This is an
	// explicit knob — it is no longer derived from the work limit.
	RowLimit int64
	// Faults is the query-fault injector (nil = inject nothing).
	Faults *faults.Injector
	// RetryBackoffBase and RetryBackoffCap bound the capped exponential
	// backoff between failover attempts of one instance (real sleep,
	// wall-clock only; zero values use DefaultRetryBackoffBase/Cap).
	RetryBackoffBase time.Duration
	RetryBackoffCap  time.Duration
	// FilterParams sizes runtime join filters (DESIGN.md §13); the zero
	// value uses the joinfilter defaults. Filters only run when the plan
	// carries RuntimeFilter edges (fragment.PlanRuntimeFilters).
	FilterParams joinfilter.Params
}

// Default retry backoff bounds: tiny, because the "network" is in-process;
// they exist so the backoff path is real and configurable.
const (
	DefaultRetryBackoffBase = 100 * time.Microsecond
	DefaultRetryBackoffCap  = 2 * time.Millisecond
	// maxExtraSendRetries bounds same-host retries of flaky sends beyond
	// the replica-chain length.
	maxExtraSendRetries = 3
)

// New creates a cluster over a store.
func New(store *storage.Store, sim simnet.Params) *Cluster {
	return &Cluster{Store: store, Sim: sim}
}

// Result is one query execution's outcome.
type Result struct {
	Rows   []types.Row
	Fields types.Fields
	// Modeled is the cost-clock response time on the modeled testbed.
	Modeled time.Duration
	// Work is the total CPU work units across all instances, including
	// work lost to failed attempts.
	Work float64
	// BytesShipped is the total network volume, including resent bytes.
	BytesShipped float64
	// Fragments and Instances count the execution plan's parallel units.
	Fragments int
	Instances int
	// Retries counts recovery events: failed attempts that were retried
	// or failed over to a replica site.
	Retries int
	// Workers is the host worker-pool size the execution ran with.
	Workers int
	// FiltersBuilt counts runtime join filters constructed by the
	// pre-pass; FilterBytes their total modeled shipment and RowsPruned
	// the probe-side rows they dropped before batching (DESIGN.md §13).
	FiltersBuilt int
	FilterBytes  int64
	RowsPruned   int64
	// Hedges counts speculative straggler attempts launched, HedgesWon
	// the ones that beat their primary (DESIGN.md §14).
	Hedges    int
	HedgesWon int
	// Obs is the query's observation record: per-operator runtime
	// statistics per fragment, and one trace span per fragment-instance
	// attempt, in deterministic job order.
	Obs *obs.QueryObs
	// Replans counts the adaptive re-planning passes run at wave
	// barriers; Switches the plan rewrites they applied (DESIGN.md §17).
	Replans  int
	Switches int
	// Notes carries the adaptive controller's per-node rewrite
	// annotations for EXPLAIN ANALYZE (nil when adaptive is off).
	Notes map[physical.Node]string
}

// ErrWorkLimit re-exports the executor's work-limit error for callers.
var ErrWorkLimit = exec.ErrWorkLimit

// Execute runs a fragmented plan. variants > 1 enables §5.3 variant
// fragments (IC+M runs with 2). ctx cancels in-flight waves.
func (c *Cluster) Execute(ctx context.Context, plan *fragment.Plan, variants int) (*Result, error) {
	return c.Run(ctx, plan, Opts{Variants: variants})
}

// ExecuteLimited is Execute with a per-instance work limit (0 =
// unlimited), reproducing the paper's query runtime limit.
func (c *Cluster) ExecuteLimited(ctx context.Context, plan *fragment.Plan, variants int, workLimit float64) (*Result, error) {
	return c.Run(ctx, plan, Opts{Variants: variants, WorkLimit: workLimit})
}

// Opts configures one execution beyond the plan itself.
type Opts struct {
	// Variants > 1 enables §5.3 variant fragments.
	Variants int
	// WorkLimit bounds one instance's CPU work (0 = unlimited).
	WorkLimit float64
	// Mem is the query's governor lease: instances charge their estimated
	// operator state against it as they run, and a charge past the
	// query's budget aborts the query with governor.ErrMemoryExceeded.
	// nil runs ungoverned.
	Mem *governor.Lease
	// HedgeAfter, when > 0, enables hedged straggler attempts (DESIGN.md
	// §14): after each wave, an instance whose modeled work exceeded
	// HedgeAfter× the wave median is speculatively re-executed at the
	// next live replica of its partition; the modeled-faster attempt's
	// outputs are kept and the loser's are discarded.
	HedgeAfter float64
	// Adaptive, when non-nil, enables mid-query re-optimization
	// (DESIGN.md §17): exchange senders build runtime sketches, and at
	// every wave barrier the controller may rewrite the not-yet-deployed
	// fragments. The controller must have been built from this exact
	// plan.
	Adaptive *adaptive.Controller
}

// runEnv bundles the per-execution state the wave scheduler threads
// through every instance.
type runEnv struct {
	transport  *exec.Transport
	workLimit  float64
	dying      map[int]int
	began      time.Time
	fs         *filterState
	mem        *governor.Lease
	hedgeAfter float64
	// sketchKeys enables per-exchange sender sketches (nil: adaptive off).
	sketchKeys map[int][]int
}

// instanceJob is one schedulable (fragment × site × variant) instance.
type instanceJob struct {
	frag *fragment.Fragment
	// site is the instance's logical site. For hash-content fragments it
	// doubles as the partition the instance covers; failover moves the
	// instance to another replica host without changing it.
	site      int
	variant   int
	nVariants int
	modes     map[physical.Node]fragment.SourceMode
	// ordinal is the instance's deterministic global sequence number
	// (assigned in wave order before execution); fault plans address
	// instances by it.
	ordinal int
	// wave is the scheduler wave the instance belongs to (trace spans
	// carry it).
	wave int
	// partitioned marks hash-content fragments, which may fail over
	// across their partition's replica chain.
	partitioned bool
	// fobs is the fragment's observation view; instances record into a
	// private obs.InstanceObs sized from it.
	fobs *obs.FragmentObs
	// filter, when non-nil, marks a runtime-filter pre-pass job: the
	// instance executes the filter's build subtree (not the fragment
	// root) at its site, before wave 0. Pre-pass jobs share the join
	// fragment's identity, so fault plans and failover treat them like
	// any other instance of that fragment.
	filter *physical.RuntimeFilter
}

// instanceResult is the per-instance outcome a worker hands back to the
// wave barrier. Workers never touch shared trace state: each writes only
// its own slot, and the barrier merges slots in deterministic job order.
type instanceResult struct {
	rows    []types.Row
	work    float64
	host    int
	retries []simnet.Retry
	// spans records one trace span per attempt of this instance
	// (including zero-cost dead-host skips).
	spans []obs.Span
	// obs is the successful attempt's per-operator record (nil when the
	// instance failed terminally).
	obs *obs.InstanceObs
	// ftested/fpruned are the instance's per-filter probe counts (nil
	// when the instance applied no runtime filters).
	ftested, fpruned map[int]int64
	// hedge records the instance's speculative straggler attempt, if one
	// was launched (win or lose).
	hedge *simnet.Hedge
	// sketches are the winning attempt's exchange sketches (nil when
	// adaptive execution is off or the instance shipped nothing).
	sketches map[int]*sketch.Sketch
	err      error
}

// siteState is a site's condition from the perspective of one instance
// ordinal (deterministic logical time).
type siteState uint8

const (
	siteAlive siteState = iota
	// siteDying: the site dies while this instance is in flight — the
	// attempt executes and its outputs are lost.
	siteDying
	// siteDead: the site died at an earlier ordinal; attempts fail
	// immediately with no work done.
	siteDead
)

// Run executes a fragmented plan under the given options.
func (c *Cluster) Run(ctx context.Context, plan *fragment.Plan, opts Opts) (*Result, error) {
	variants := opts.Variants
	if ctx == nil {
		ctx = context.Background()
	}
	began := time.Now()
	waves, err := plan.Waves()
	if err != nil {
		return nil, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	transport := exec.NewTransport()
	if inj := c.Faults; inj.SendFailRate() > 0 {
		transport.FailSend = func(exchange, toSite int, b *exec.Batch) error {
			if inj.SendFails(exchange, b.FromFrag, b.FromSite, b.FromVariant, toSite, b.Attempt) {
				return fmt.Errorf("exchange %d send %d→%d: %w", exchange, b.FromSite, toSite, faults.ErrSendFail)
			}
			return nil
		}
	}
	trace := &simnet.Trace{
		Instances: make(map[int][]simnet.Instance),
		Consumers: make(map[int][]int),
	}
	// The observation record: per-fragment operator views (pre-order op
	// ids shared by every instance of a fragment) and the exchange edges
	// of the fragment DAG.
	qobs := &obs.QueryObs{
		Began:     began,
		Fragments: make([]*obs.FragmentObs, len(plan.Fragments)),
	}
	for _, f := range plan.Fragments {
		for _, ex := range f.Receivers {
			trace.Consumers[ex] = append(trace.Consumers[ex], f.ID)
			if prod := plan.Producer[ex]; prod != nil {
				qobs.Edges = append(qobs.Edges, obs.Edge{Exchange: ex, FromFrag: prod.ID, ToFrag: f.ID})
			}
		}
		if f.IsRoot {
			trace.RootFrag = f.ID
		}
		qobs.Fragments[f.ID] = obs.NewFragmentObs(f.ID, f.IsRoot, f.Root)
	}

	// Runtime-filter pre-pass jobs (DESIGN.md §13): each planned filter's
	// build subtree runs at the join fragment's sites before wave 0, so
	// the filter can reach the probe-side producers that execute in
	// earlier waves. Pre-pass ordinals come first, which makes a fault
	// plan's crash point cover them exactly like wave instances.
	ordinal := 0
	var (
		fstate  *filterState
		preJobs []instanceJob
	)
	for _, rf := range plan.Filters {
		jf := plan.Fragments[rf.JoinFrag]
		vs := fragment.BuildVariants(jf, variants)
		if vs != nil && vs.Modes[rf.Receiver] == fragment.SplitMode {
			// Variant instances split the probe receiver's rows by a
			// per-variant counter; pruning ahead of the receiver would
			// reshuffle that split and change results. Skip the filter.
			continue
		}
		if fstate == nil {
			fstate = newFilterState(c.FilterParams)
		}
		sites, partitioned := c.fragmentSites(jf)
		bf := &builtFilter{
			spec:    rf,
			perSite: make(map[int]*joinfilter.Filter, len(sites)),
			// Cache build rows for the join instance only when the join
			// fragment is variant-free: variant instances re-read split
			// sources, so their builds differ from the pre-pass's.
			cache: vs == nil,
		}
		if bf.cache {
			bf.rows = make(map[int][]types.Row, len(sites))
		}
		fstate.add(bf)
		for _, site := range sites {
			preJobs = append(preJobs, instanceJob{
				frag: jf, site: site, variant: 0, nVariants: 1,
				ordinal: ordinal, wave: -1, partitioned: partitioned,
				fobs: qobs.Fragments[jf.ID], filter: rf,
			})
			ordinal++
		}
	}

	// dying[site] is the ordinal of the one instance that is in flight at
	// that site when the fault plan crashes it: the smallest primary
	// ordinal at the site at or past the crash point. That instance runs
	// and loses its work; every later ordinal finds the site dead.
	// markDying is fed every job batch in creation order — and jobs are
	// created in strictly increasing ordinal order — so the incremental
	// computation finds the same minimum the old whole-schedule scan did.
	dying := make(map[int]int)
	markDying := func(jobs []instanceJob) {
		if c.Faults == nil {
			return
		}
		for _, j := range jobs {
			if n, ok := c.Faults.CrashPoint(j.site); ok && j.ordinal >= n {
				if _, seen := dying[j.site]; !seen {
					dying[j.site] = j.ordinal
				}
			}
		}
	}
	markDying(preJobs)

	// buildWave materializes one wave's jobs, assigning deterministic
	// instance ordinals in wave order: fault plans and failure reports
	// address instances by ordinal, never by arrival order, so outcomes
	// are identical at every worker count. Building lazily — after the
	// previous wave's barrier — lets the adaptive controller's barrier
	// rewrites (variant re-grades) take effect on the jobs themselves.
	// An instance of wave w only ever consults the liveness of ordinals
	// ≤ its own, so later waves' dying entries need not exist yet.
	buildWave := func(w int) []instanceJob {
		var jobs []instanceJob
		for _, f := range waves[w] {
			trace.Order = append(trace.Order, f.ID)
			sites, partitioned := c.fragmentSites(f)
			nv := variants
			if opts.Adaptive != nil {
				nv = opts.Adaptive.VariantFor(f.ID, variants)
			}
			vs := fragment.BuildVariants(f, nv)
			n := 1
			var modes map[physical.Node]fragment.SourceMode
			if vs != nil {
				n = vs.N
				modes = vs.Modes
			}
			for _, site := range sites {
				for v := 0; v < n; v++ {
					jobs = append(jobs, instanceJob{
						frag: f, site: site, variant: v, nVariants: n, modes: modes,
						ordinal: ordinal, wave: w, partitioned: partitioned,
						fobs: qobs.Fragments[f.ID],
					})
					ordinal++
				}
			}
		}
		markDying(jobs)
		return jobs
	}

	var (
		resultRows   []types.Row
		resultFields types.Fields
		instances    int
		retryCount   int
		hedges       int
		hedgesWon    int
	)
	env := &runEnv{
		transport: transport, workLimit: opts.WorkLimit, dying: dying,
		began: began, fs: fstate, mem: opts.Mem, hedgeAfter: opts.HedgeAfter,
	}
	if opts.Adaptive != nil {
		env.sketchKeys = opts.Adaptive.SketchKeys()
	}

	// Execute the filter pre-pass and freeze the filters at its barrier.
	// Pre-pass instances run through the same retry/failover machinery as
	// wave instances; their work and filter shipments are charged to the
	// trace as FilterBuild records (the join instances later reuse the
	// cached build rows, so the build runs off the critical path).
	if len(preJobs) > 0 {
		results := make([]instanceResult, len(preJobs))
		c.runWave(ctx, preJobs, results, env, workers)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var (
			preErrs []error
			seen    map[string]bool
		)
		unions := make(map[*physical.RuntimeFilter]*joinfilter.Builder)
		for i := range preJobs {
			j, r := preJobs[i], &results[i]
			qobs.Spans = append(qobs.Spans, r.spans...)
			if r.err != nil {
				if seen == nil {
					seen = make(map[string]bool)
				}
				if key := r.err.Error(); !seen[key] {
					seen[key] = true
					preErrs = append(preErrs, fmt.Errorf("cluster: filter %d build (fragment %d) at site %d: %w",
						j.filter.ID, j.frag.ID, j.site, r.err))
				}
				continue
			}
			instances++
			retryCount += len(r.retries)
			trace.Retries = append(trace.Retries, r.retries...)
			if r.obs != nil {
				// Extra-instance merge: operator stats accumulate without
				// bumping the fragment's Instances count (the pre-pass ran
				// the build subtree the join instance will now skip).
				j.fobs.MergeExtra(r.obs)
			}
			bf := fstate.bySpec[j.filter]
			b := joinfilter.NewBuilder()
			for _, row := range r.rows {
				if buildKeyNull(row, j.filter.BuildCols) {
					continue
				}
				b.Add(row.Hash(j.filter.BuildCols))
			}
			bf.perSite[j.site] = b.Build(fstate.params)
			bf.buildRows += int64(len(r.rows))
			if bf.cache {
				bf.rows[j.site] = r.rows
			}
			if unions[j.filter] == nil {
				unions[j.filter] = joinfilter.NewBuilder()
			}
			unions[j.filter].Merge(b)
			// The key-insert work rides on the build subtree's work; both
			// charge the trace's filter record, not the join instance.
			insert := float64(len(r.rows)) * cost.BFIC * c.Faults.Slowdown(r.host)
			bf.siteWork = append(bf.siteWork, siteWork{site: j.site, work: r.work + insert})
		}
		if len(preErrs) > 0 {
			return nil, errors.Join(preErrs...)
		}
		for _, bf := range fstate.built {
			bf.union = unions[bf.spec].Build(fstate.params)
			// Each site ships its per-site filter plus its share of the
			// union; the shares sum to exactly one union shipment.
			unionShare := float64(bf.union.SizeBytes()) / float64(len(bf.siteWork))
			for _, sw := range bf.siteWork {
				bytes := float64(bf.perSite[sw.site].SizeBytes()) + unionShare
				bf.bytes += int64(bytes)
				trace.Filters = append(trace.Filters, simnet.FilterBuild{
					Exchange: bf.spec.Exchange, JoinFrag: bf.spec.JoinFrag,
					Site: sw.site, Work: sw.work, Bytes: bytes,
				})
			}
		}
	}

	// exSketches accumulates the per-exchange runtime sketches across
	// barriers; replans/switches count the adaptive passes and the
	// rewrites they applied.
	var (
		exSketches map[int]*sketch.Sketch
		replans    int
		switches   int
	)
	if opts.Adaptive != nil {
		exSketches = make(map[int]*sketch.Sketch)
	}
	for w := range waves {
		jobs := buildWave(w)
		if len(jobs) == 0 {
			continue
		}
		results := make([]instanceResult, len(jobs))
		c.runWave(ctx, jobs, results, env, workers)

		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Hedge this wave's stragglers before the barrier merges results:
		// the speculative attempts must win or lose (and the loser's
		// shipments be discarded) before any consumer wave receives.
		c.hedgeWave(ctx, jobs, results, env, workers)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Merge at the wave barrier, in deterministic job order, so the
		// trace and the reported errors are identical at every worker
		// count. All of a failed wave's distinct failures are reported
		// together; instances are never skipped, so the failure set does
		// not depend on scheduling.
		var (
			waveErrs []error
			seen     map[string]bool
		)
		for i := range jobs {
			j, r := jobs[i], &results[i]
			qobs.Spans = append(qobs.Spans, r.spans...)
			if r.err != nil {
				if seen == nil {
					seen = make(map[string]bool)
				}
				if key := r.err.Error(); !seen[key] {
					seen[key] = true
					waveErrs = append(waveErrs, fmt.Errorf("cluster: fragment %d at site %d: %w", j.frag.ID, j.site, r.err))
				}
				continue
			}
			instances++
			retryCount += len(r.retries)
			trace.Retries = append(trace.Retries, r.retries...)
			if r.hedge != nil {
				trace.Hedges = append(trace.Hedges, *r.hedge)
				hedges++
				if r.hedge.Won {
					hedgesWon++
				}
			}
			trace.Instances[j.frag.ID] = append(trace.Instances[j.frag.ID], simnet.Instance{
				Frag: j.frag.ID, Site: j.site, Variant: j.variant, Work: r.work,
			})
			if r.obs != nil {
				j.fobs.Merge(r.obs)
			}
			if fstate != nil {
				fstate.count(r.ftested, r.fpruned)
			}
			if exSketches != nil && r.sketches != nil {
				// Merge in deterministic job order (each fragment has one
				// sender, so a result carries at most one exchange; sorting
				// keeps the merge canonical regardless).
				exIDs := make([]int, 0, len(r.sketches))
				for ex := range r.sketches {
					exIDs = append(exIDs, ex)
				}
				sort.Ints(exIDs)
				for _, ex := range exIDs {
					if cur := exSketches[ex]; cur != nil {
						cur.Merge(r.sketches[ex])
					} else {
						exSketches[ex] = r.sketches[ex]
					}
				}
			}
			if j.frag.IsRoot {
				resultRows = r.rows
				resultFields = j.frag.Root.Schema()
			}
		}
		if len(waveErrs) > 0 {
			return nil, errors.Join(waveErrs...)
		}

		// Adaptive barrier (DESIGN.md §17): with later waves still pending,
		// hand the accumulated sketches to the controller, which may rewrite
		// the not-yet-built part of the schedule. The pass is recorded as a
		// replan span so static runs keep the spans == instances + retries +
		// hedges invariant untouched.
		if opts.Adaptive != nil && w+1 < len(waves) {
			passStart := time.Now()
			applied := opts.Adaptive.OnBarrier(w, exSketches)
			replans++
			switches += len(applied)
			qobs.Replans = append(qobs.Replans, applied...)
			qobs.Spans = append(qobs.Spans, obs.Span{
				Frag: -1, Site: -1, Host: -1, Wave: w,
				StartNanos: passStart.Sub(began).Nanoseconds(),
				EndNanos:   time.Since(began).Nanoseconds(),
				Status:     obs.SpanReplan,
			})
		}
	}

	exRows := make(map[int]int64)
	exBytes := make(map[int]int64)
	for _, s := range transport.Sends {
		trace.Sends = append(trace.Sends, simnet.Send{
			Exchange: s.Exchange, FromFrag: s.FromFrag, FromSite: s.FromSite,
			FromVariant: s.FromVariant, ToSite: s.ToSite, Bytes: float64(s.Bytes),
		})
		exRows[s.Exchange] += s.Rows
		exBytes[s.Exchange] += s.Bytes
	}
	for i := range qobs.Edges {
		e := &qobs.Edges[i]
		e.Rows = exRows[e.Exchange]
		e.Bytes = exBytes[e.Exchange]
	}

	modeled := simnet.Makespan(trace, c.Sim)
	qobs.WallNanos = time.Since(began).Nanoseconds()
	qobs.ModeledNanos = modeled.Nanoseconds()

	res := &Result{
		Rows:         resultRows,
		Fields:       resultFields,
		Modeled:      modeled,
		Work:         trace.TotalWork(),
		BytesShipped: trace.TotalBytes(),
		Fragments:    len(plan.Fragments),
		Instances:    instances,
		Retries:      retryCount,
		Hedges:       hedges,
		HedgesWon:    hedgesWon,
		Workers:      workers,
		Obs:          qobs,
		Replans:      replans,
		Switches:     switches,
	}
	if opts.Adaptive != nil {
		res.Notes = opts.Adaptive.Notes()
	}
	if fstate != nil {
		for _, bf := range fstate.built {
			res.FiltersBuilt++
			res.FilterBytes += bf.bytes
			res.RowsPruned += bf.pruned
			qobs.Filters = append(qobs.Filters, obs.FilterObs{
				ID: bf.spec.ID, JoinFrag: bf.spec.JoinFrag, ProbeFrag: bf.spec.ProbeFrag,
				Exchange: bf.spec.Exchange, Keys: bf.union.Keys(), BuildRows: bf.buildRows,
				Bytes: bf.bytes, RowsTested: bf.tested, RowsPruned: bf.pruned,
			})
		}
	}
	return res, nil
}

// filterState carries the pre-pass products the wave jobs consume: one
// builtFilter per planned (and not variant-skipped) RuntimeFilter.
type filterState struct {
	params  joinfilter.Params
	built   []*builtFilter
	bySpec  map[*physical.RuntimeFilter]*builtFilter
	byJoin  map[int][]*builtFilter
	byProbe map[int][]*builtFilter
}

// builtFilter is one runtime filter's frozen state after the pre-pass
// barrier. perSite holds each join site's build-partition filter (what the
// probe-side Sender tests per destination); union is their merge (what
// deeper node-level pushdown tests, since those rows may still route
// anywhere); rows caches the pre-pass build rows for reuse by the join
// instance when the join fragment is variant-free.
type builtFilter struct {
	spec      *physical.RuntimeFilter
	perSite   map[int]*joinfilter.Filter
	union     *joinfilter.Filter
	rows      map[int][]types.Row
	cache     bool
	buildRows int64
	bytes     int64
	siteWork  []siteWork
	// tested/pruned accumulate probe counts from wave instances, merged
	// at wave barriers in deterministic job order.
	tested, pruned int64
}

type siteWork struct {
	site int
	work float64
}

func newFilterState(p joinfilter.Params) *filterState {
	return &filterState{
		params:  p,
		bySpec:  make(map[*physical.RuntimeFilter]*builtFilter),
		byJoin:  make(map[int][]*builtFilter),
		byProbe: make(map[int][]*builtFilter),
	}
}

func (fs *filterState) add(bf *builtFilter) {
	fs.built = append(fs.built, bf)
	fs.bySpec[bf.spec] = bf
	fs.byJoin[bf.spec.JoinFrag] = append(fs.byJoin[bf.spec.JoinFrag], bf)
	fs.byProbe[bf.spec.ProbeFrag] = append(fs.byProbe[bf.spec.ProbeFrag], bf)
}

// count folds one instance's per-filter probe counters into the state
// (called at wave barriers only, in job order; sums commute, so the
// totals are worker-count independent).
func (fs *filterState) count(tested, pruned map[int]int64) {
	if tested == nil && pruned == nil {
		return
	}
	for _, bf := range fs.built {
		bf.tested += tested[bf.spec.ID]
		bf.pruned += pruned[bf.spec.ID]
	}
}

// inject wires the frozen filters into one wave instance's exec context:
// cached build rows for join-fragment instances, node- and sender-level
// filters for probe-side producer instances. The wiring is a pure
// function of logical identity (fragment ID, site), so retries and
// replica failover see the same filters.
func (fs *filterState) inject(j instanceJob, ectx *exec.Context, nsites int) {
	for _, bf := range fs.byJoin[j.frag.ID] {
		if !bf.cache {
			continue
		}
		if rows, ok := bf.rows[j.site]; ok {
			if ectx.Prebuilt == nil {
				ectx.Prebuilt = make(map[physical.Node][]types.Row)
			}
			ectx.Prebuilt[bf.spec.BuildRoot] = rows
		}
	}
	for _, bf := range fs.byProbe[j.frag.ID] {
		if bf.spec.ProbeNode != nil {
			if ectx.NodeFilters == nil {
				ectx.NodeFilters = make(map[physical.Node][]*exec.AppliedFilter)
			}
			ectx.NodeFilters[bf.spec.ProbeNode] = append(ectx.NodeFilters[bf.spec.ProbeNode],
				&exec.AppliedFilter{ID: bf.spec.ID, Cols: bf.spec.ProbeNodeCols, Filter: bf.union})
		}
		per := make([]*joinfilter.Filter, nsites)
		for site, f := range bf.perSite {
			if site < nsites {
				per[site] = f
			}
		}
		if ectx.SendFilters == nil {
			ectx.SendFilters = make(map[int]*exec.SendFilter)
		}
		ectx.SendFilters[bf.spec.Exchange] = &exec.SendFilter{
			ID: bf.spec.ID, Cols: bf.spec.ProbeCols, PerSite: per,
		}
	}
}

// buildKeyNull reports a build row with a NULL equi-key: the hash join
// never matches such rows, so the filter must not admit their hash.
func buildKeyNull(r types.Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return true
		}
	}
	return false
}

// siteStateAt evaluates a site's condition at one instance ordinal under
// the fault plan (see siteState).
func (c *Cluster) siteStateAt(site, ordinal int, dying map[int]int) siteState {
	n, ok := c.Faults.CrashPoint(site)
	if !ok || ordinal < n {
		return siteAlive
	}
	if d, isDying := dying[site]; isDying && ordinal == d {
		return siteDying
	}
	return siteDead
}

// runWave executes one wave's instances on at most `workers` goroutines.
// Each instance gets a private exec.Context, so work counters accumulate
// without sharing. Every instance runs to completion (or terminal
// failure) — failures never skip sibling instances, which keeps the
// wave's failure set deterministic; only context cancellation stops the
// wave early.
func (c *Cluster) runWave(ctx context.Context, jobs []instanceJob, results []instanceResult,
	env *runEnv, workers int) {

	run := func(i int) { c.runInstance(ctx, jobs[i], &results[i], env) }
	runPool(len(jobs), workers, run)
}

// runPool fans run(i) for i in [0, n) over at most `workers` goroutines
// (sequentially when workers <= 1).
func runPool(n, workers int, run func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// runInstance executes one instance with retry and replica failover. The
// attempt sequence is a pure function of the job's identity and the fault
// plan, so it is identical at every worker count.
func (c *Cluster) runInstance(ctx context.Context, j instanceJob, r *instanceResult, env *runEnv) {
	// span emits one trace span for an attempt of this instance. Offsets
	// are wall-clock (outside the determinism contract); the span set and
	// its order are deterministic.
	span := func(host, attempt int, start time.Time, status obs.SpanStatus, err error) {
		s := obs.Span{
			Frag: j.frag.ID, Site: j.site, Host: host, Variant: j.variant,
			Attempt: attempt, Ordinal: j.ordinal, Wave: j.wave,
			StartNanos: start.Sub(env.began).Nanoseconds(),
			EndNanos:   time.Since(env.began).Nanoseconds(),
			Status:     status,
		}
		if err != nil {
			s.Error = err.Error()
		}
		r.spans = append(r.spans, s)
	}

	// The failover chain: hash-content fragments may run at any replica
	// of their partition; everything else is pinned to its site.
	chain := []int{j.site}
	if j.partitioned {
		chain = c.Store.ReplicaSites(j.site)
	}
	maxAttempts := len(chain) + maxExtraSendRetries

	hostIdx := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			r.err = err
			return
		}
		// Find the next live replica. Dead hosts are skipped without an
		// attempt (the failure detector already knows they are gone); the
		// skip is still recorded as a zero-cost recovery event.
		host, state := -1, siteAlive
		for hostIdx < len(chain) {
			h := chain[hostIdx]
			if st := c.siteStateAt(h, j.ordinal, env.dying); st != siteDead {
				host, state = h, st
				break
			}
			r.retries = append(r.retries, simnet.Retry{
				Frag: j.frag.ID, Site: j.site, Variant: j.variant, Host: chain[hostIdx],
			})
			span(chain[hostIdx], attempt, time.Now(), obs.SpanSkipped, faults.ErrSiteCrash)
			hostIdx++
		}
		if host < 0 {
			if j.partitioned && c.Store.Backups() == 0 {
				r.err = fmt.Errorf("partition %d has no backup replicas to fail over to: %w",
					j.site, faults.ErrSiteCrash)
			} else if j.partitioned {
				r.err = fmt.Errorf("all %d replicas of partition %d are down: %w",
					len(chain), j.site, faults.ErrSiteCrash)
			} else {
				r.err = fmt.Errorf("site %d is down and fragment %d cannot fail over: %w",
					j.site, j.frag.ID, faults.ErrSiteCrash)
			}
			return
		}

		attemptStart := time.Now()
		ectx := c.instanceContext(ctx, j, host, attempt, env)
		root := j.frag.Root
		if j.filter != nil {
			// Pre-pass instance: execute the filter's build subtree in
			// place of the fragment root.
			root = j.filter.BuildRoot
		} else if env.fs != nil {
			env.fs.inject(j, ectx, c.Store.Sites())
		}
		rows, err := exec.Run(root, ectx)
		// The attempt's operator state is gone either way; return its
		// reservation to the shared pool (the per-query budget still
		// remembers the cumulative charge).
		env.mem.Release(ectx.ChargedMem())
		if err == nil && state == siteDying {
			err = fmt.Errorf("site %d died mid-instance: %w", host, faults.ErrSiteCrash)
		}
		if err == nil {
			r.rows = rows
			r.host = host
			// A slow site is charged proportionally more work: the simnet
			// clock converts work to time, so the slowdown lands in the
			// modeled response time.
			r.work = ectx.CPUWork * c.Faults.Slowdown(host)
			r.obs = ectx.Obs
			r.ftested, r.fpruned = ectx.FilterTested, ectx.FilterPruned
			r.sketches = ectx.Sketches
			span(host, attempt, attemptStart, obs.SpanOK, nil)
			return
		}

		// Roll back this attempt's shipments so a retry never duplicates
		// rows (and a terminally failed instance never leaks partial
		// sends into the trace).
		bytes, _ := env.transport.DiscardFrom(j.frag.ID, j.site, j.variant)

		if !faults.Injected(err) || attempt == maxAttempts-1 {
			span(host, attempt, attemptStart, obs.SpanFailed, err)
			r.err = err
			return
		}
		// Retryable fault: charge the lost attempt (its CPU work and the
		// bytes that must be resent) and fail over.
		span(host, attempt, attemptStart, obs.SpanRetried, err)
		r.retries = append(r.retries, simnet.Retry{
			Frag: j.frag.ID, Site: j.site, Variant: j.variant, Host: host,
			Work: ectx.CPUWork * c.Faults.Slowdown(host), Bytes: bytes,
		})
		if errors.Is(err, faults.ErrSiteCrash) || errors.Is(err, faults.ErrSiteMem) {
			// This replica cannot serve the instance (gone, or its memory
			// pool deterministically too small); move down the chain.
			hostIdx++
		}
		if !c.backoff(ctx, attempt) {
			r.err = ctx.Err()
			return
		}
	}
}

// instanceContext builds one attempt's private exec context.
func (c *Cluster) instanceContext(ctx context.Context, j instanceJob, host, attempt int, env *runEnv) *exec.Context {
	return &exec.Context{
		Store:        c.Store,
		Transport:    env.transport,
		FragID:       j.frag.ID,
		Site:         j.site,
		Host:         host,
		Attempt:      attempt,
		Ctx:          ctx,
		Faults:       c.Faults,
		Variant:      j.variant,
		NVariants:    j.nVariants,
		Modes:        j.modes,
		WorkLimit:    env.workLimit,
		RowLimit:     c.RowLimit,
		OpIDs:        j.fobs.OpIndex,
		Obs:          obs.NewInstanceObs(j.fobs),
		Mem:          env.mem,
		SiteMemBytes: c.Faults.MemLimit(host),
		SketchKeys:   env.sketchKeys,
	}
}

// hedgeWave launches speculative attempts for the wave's stragglers
// (DESIGN.md §14). Detection runs at the wave barrier on the modeled
// clock, not wall time: an instance whose charged work exceeded
// hedgeAfter× the wave's median (a slow site multiplies charged work —
// see Injector.Slowdown) is re-executed at the next live replica of its
// partition. The modeled-faster attempt's shipments survive, the loser's
// are discarded, and a tie goes to the primary (the lowest attempt
// ordinal), so results stay byte-identical at every worker count whether
// or not hedging fires.
func (c *Cluster) hedgeWave(ctx context.Context, jobs []instanceJob, results []instanceResult,
	env *runEnv, workers int) {
	if env.hedgeAfter <= 0 {
		return
	}
	var works []float64
	for i := range results {
		if results[i].err == nil {
			works = append(works, results[i].work)
		}
	}
	if len(works) < 2 {
		return
	}
	sort.Float64s(works)
	median := works[len(works)/2]
	if median <= 0 {
		return
	}
	threshold := env.hedgeAfter * median
	type hedgeCand struct{ idx, host int }
	var cand []hedgeCand
	for i := range jobs {
		j, r := jobs[i], &results[i]
		if r.err != nil || !j.partitioned || j.filter != nil || r.work <= threshold {
			continue
		}
		if h := c.hedgeHost(j, r.host, env); h >= 0 {
			cand = append(cand, hedgeCand{idx: i, host: h})
		}
	}
	runPool(len(cand), workers, func(k int) {
		i := cand[k].idx
		c.runHedge(ctx, jobs[i], &results[i], env, cand[k].host, threshold)
	})
}

// hedgeHost picks the replica a straggler's speculative attempt runs at:
// the next live site after the primary's host on the partition's replica
// chain (-1 when none exists).
func (c *Cluster) hedgeHost(j instanceJob, primary int, env *runEnv) int {
	chain := c.Store.ReplicaSites(j.site)
	at := -1
	for k, h := range chain {
		if h == primary {
			at = k
			break
		}
	}
	for k := at + 1; k < len(chain); k++ {
		if c.siteStateAt(chain[k], j.ordinal, env.dying) == siteAlive {
			return chain[k]
		}
	}
	return -1
}

// runHedge executes one speculative attempt and settles the race on the
// modeled clock: the hedge launched after `threshold` work-units of the
// primary's timeline, so it wins only when threshold + its own work beats
// the primary's work outright. Exactly one attempt's shipments survive in
// the transport, and exactly one span is appended (keeping the invariant
// spans == instances + retries + hedges).
func (c *Cluster) runHedge(ctx context.Context, j instanceJob, r *instanceResult,
	env *runEnv, host int, threshold float64) {
	if err := ctx.Err(); err != nil {
		return
	}
	okIdx := -1
	for k := range r.spans {
		if r.spans[k].Status == obs.SpanOK {
			okIdx = k
		}
	}
	if okIdx < 0 {
		return
	}
	attempt := r.spans[len(r.spans)-1].Attempt + 1
	start := time.Now()
	ectx := c.instanceContext(ctx, j, host, attempt, env)
	if env.fs != nil {
		env.fs.inject(j, ectx, c.Store.Sites())
	}
	rows, err := exec.Run(j.frag.Root, ectx)
	env.mem.Release(ectx.ChargedMem())
	hedgeWork := ectx.CPUWork * c.Faults.Slowdown(host)

	hedge := &simnet.Hedge{Frag: j.frag.ID, Site: j.site, Variant: j.variant, DelayWork: threshold}
	s := obs.Span{
		Frag: j.frag.ID, Site: j.site, Host: host, Variant: j.variant,
		Attempt: attempt, Ordinal: j.ordinal, Wave: j.wave, Hedge: true,
		StartNanos: start.Sub(env.began).Nanoseconds(),
	}
	switch {
	case err != nil:
		// A failed hedge never fails the query — the primary already
		// succeeded; only the speculation's work is charged.
		env.transport.DiscardAttempt(j.frag.ID, j.site, j.variant, attempt)
		s.Status, s.Error = obs.SpanFailed, err.Error()
		hedge.LostWork = hedgeWork
	case threshold+hedgeWork < r.work:
		// The hedge finishes first on the modeled clock: keep its outputs,
		// discard the primary's, and flip the primary's span. The primary
		// is abandoned the moment the hedge completes, so its lost work is
		// capped at the race's finish time.
		bytes, _ := env.transport.DiscardAttempt(j.frag.ID, j.site, j.variant, r.spans[okIdx].Attempt)
		r.spans[okIdx].Status = obs.SpanHedged
		s.Status = obs.SpanOK
		hedge.Won = true
		hedge.LostWork = threshold + hedgeWork
		if r.work < hedge.LostWork {
			hedge.LostWork = r.work
		}
		hedge.LostBytes = bytes
		r.rows, r.host, r.work, r.obs = rows, host, hedgeWork, ectx.Obs
		r.ftested, r.fpruned = ectx.FilterTested, ectx.FilterPruned
		r.sketches = ectx.Sketches
	default:
		// The primary wins (ties included: the lowest attempt ordinal is
		// canonical). The hedge ran from threshold until the primary's
		// finish, bounded by its own completion.
		bytes, _ := env.transport.DiscardAttempt(j.frag.ID, j.site, j.variant, attempt)
		s.Status = obs.SpanHedged
		hedge.LostWork = r.work - threshold
		if hedge.LostWork > hedgeWork {
			hedge.LostWork = hedgeWork
		}
		hedge.LostBytes = bytes
	}
	s.EndNanos = time.Since(env.began).Nanoseconds()
	r.spans = append(r.spans, s)
	r.hedge = hedge
}

// backoff sleeps the capped exponential backoff for an attempt; it
// returns false when the context is cancelled while waiting.
func (c *Cluster) backoff(ctx context.Context, attempt int) bool {
	base, cap := c.RetryBackoffBase, c.RetryBackoffCap
	if base <= 0 {
		base = DefaultRetryBackoffBase
	}
	if cap <= 0 {
		cap = DefaultRetryBackoffCap
	}
	d := base << uint(attempt)
	if d > cap || d <= 0 {
		d = cap
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// fragmentSites determines where a fragment executes, from the
// distribution trait of its content (§3.2.3: "the distribution traits
// from the operators in each fragment determine the processing sites").
// partitioned reports whether the fragment's instances cover hash
// partitions (and may therefore fail over across replica sites).
func (c *Cluster) fragmentSites(f *fragment.Fragment) (sites []int, partitioned bool) {
	if f.IsRoot {
		return []int{0}, false
	}
	content := f.Root.Inputs()[0] // the sender's child
	switch content.Dist().Type {
	case physical.Hash:
		sites := make([]int, c.Store.Sites())
		for i := range sites {
			sites[i] = i
		}
		return sites, true
	default:
		// Single-distributed content runs at the coordinator; broadcast
		// content is identical everywhere, so one canonical copy executes.
		return []int{0}, false
	}
}
