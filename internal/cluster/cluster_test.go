package cluster

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/faults"
	"gignite/internal/fragment"
	"gignite/internal/physical"
	"gignite/internal/simnet"
	"gignite/internal/storage"
	"gignite/internal/types"
)

func testCluster(t *testing.T, sites int) *Cluster {
	t.Helper()
	cat := catalog.New()
	err := cat.AddTable(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "grp", Kind: types.KindInt},
		},
		PrimaryKey: []string{"id"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore(cat, sites)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 4))}
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	return New(st, simnet.DefaultParams())
}

// buildPlan: scan t (all sites) → exchange single → collect at root.
func buildPlan(t *testing.T, c *Cluster) *fragment.Plan {
	t.Helper()
	tbl, err := c.Store.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	scan := physical.NewTableScan(tbl, "t", tbl.Fields())
	scan.Props().EstRows = 100
	ex := physical.NewExchange(scan, physical.SingleDist)
	ex.Props().EstRows = 100
	return fragment.Split(ex)
}

func TestExecuteCollectsAllPartitions(t *testing.T) {
	for _, sites := range []int{1, 3, 5} {
		c := testCluster(t, sites)
		res, err := c.Execute(context.Background(), buildPlan(t, c), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 100 {
			t.Errorf("%d sites: rows = %d", sites, len(res.Rows))
		}
		if res.Modeled <= 0 {
			t.Errorf("%d sites: modeled = %v", sites, res.Modeled)
		}
		if res.Fragments != 2 {
			t.Errorf("fragments = %d", res.Fragments)
		}
		ids := map[int64]bool{}
		for _, r := range res.Rows {
			ids[r[0].Int()] = true
		}
		if len(ids) != 100 {
			t.Errorf("%d sites: distinct ids = %d", sites, len(ids))
		}
	}
}

func TestVariantsSameResultsMoreInstances(t *testing.T) {
	c := testCluster(t, 2)
	single, err := c.Execute(context.Background(), buildPlan(t, c), 1)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := c.Execute(context.Background(), buildPlan(t, c), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Rows) != len(dual.Rows) {
		t.Fatalf("row counts: %d vs %d", len(single.Rows), len(dual.Rows))
	}
	a := make([]string, len(single.Rows))
	b := make([]string, len(dual.Rows))
	for i := range single.Rows {
		a[i] = single.Rows[i].String()
		b[i] = dual.Rows[i].String()
	}
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	if dual.Instances <= single.Instances {
		t.Errorf("instances: single=%d dual=%d", single.Instances, dual.Instances)
	}
}

// TestParallelMatchesSequential: the wave scheduler must produce
// byte-identical rows, modeled time, work, and instance counts at every
// worker count — host parallelism changes wall-clock only.
func TestParallelMatchesSequential(t *testing.T) {
	for _, variants := range []int{1, 2} {
		c := testCluster(t, 4)
		c.Workers = 1
		seq, err := c.Execute(context.Background(), buildPlan(t, c), variants)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			c.Workers = workers
			par, err := c.Execute(context.Background(), buildPlan(t, c), variants)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Rows) != len(seq.Rows) {
				t.Fatalf("variants=%d workers=%d: rows %d vs %d",
					variants, workers, len(par.Rows), len(seq.Rows))
			}
			for i := range seq.Rows {
				if par.Rows[i].String() != seq.Rows[i].String() {
					t.Fatalf("variants=%d workers=%d: row %d differs: %s vs %s",
						variants, workers, i, par.Rows[i], seq.Rows[i])
				}
			}
			if par.Modeled != seq.Modeled {
				t.Errorf("variants=%d workers=%d: modeled %v vs %v",
					variants, workers, par.Modeled, seq.Modeled)
			}
			if par.Work != seq.Work || par.Instances != seq.Instances {
				t.Errorf("variants=%d workers=%d: work/instances diverge: %v/%d vs %v/%d",
					variants, workers, par.Work, par.Instances, seq.Work, seq.Instances)
			}
			if par.Workers != workers {
				t.Errorf("reported workers = %d, want %d", par.Workers, workers)
			}
		}
	}
}

// TestParallelWorkLimit: the limit still aborts when instances run on
// multiple goroutines.
func TestParallelWorkLimit(t *testing.T) {
	c := testCluster(t, 4)
	c.Workers = 4
	if _, err := c.ExecuteLimited(context.Background(), buildPlan(t, c), 1, 1); err == nil {
		t.Error("tiny work limit not enforced under parallel execution")
	}
}

func TestWorkLimitPropagates(t *testing.T) {
	c := testCluster(t, 2)
	_, err := c.ExecuteLimited(context.Background(), buildPlan(t, c), 1, 1)
	if err == nil {
		t.Error("tiny work limit not enforced")
	}
}

func TestFragmentSitesByDistribution(t *testing.T) {
	c := testCluster(t, 4)
	plan := buildPlan(t, c)
	for _, f := range plan.Fragments {
		sites, _ := c.fragmentSites(f)
		if f.IsRoot {
			if len(sites) != 1 || sites[0] != 0 {
				t.Errorf("root sites = %v", sites)
			}
			continue
		}
		// The scan fragment is hash-distributed: all sites.
		if len(sites) != 4 {
			t.Errorf("scan fragment sites = %v", sites)
		}
	}
}

// TestDistributedAggregation wires map/exchange/reduce manually and checks
// partial merging across sites.
func TestDistributedAggregation(t *testing.T) {
	c := testCluster(t, 3)
	tbl, _ := c.Store.Catalog().Table("t")
	scan := physical.NewTableScan(tbl, "t", tbl.Fields())
	scan.Props().EstRows = 100
	split, err := physical.SplitAggCalls(1, []expr.AggCall{
		{Func: expr.AggCount, Name: "n"},
		{Func: expr.AggAvg, Arg: expr.NewColRef(0, types.KindInt, ""), Name: "avg_id"},
	}, types.Fields{
		{Name: "grp", Kind: types.KindInt},
		{Name: "n", Kind: types.KindInt},
		{Name: "avg_id", Kind: types.KindFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	mapAgg := physical.NewHashAggregate(scan, []int{1}, split.MapCalls, physical.AggMap, split.MapFields)
	ex := physical.NewExchange(mapAgg, physical.SingleDist)
	reduce := physical.NewHashAggregate(ex, []int{0}, split.ReduceCalls, physical.AggReduce, split.ReduceFields)
	var root physical.Node = reduce
	if split.Finalize != nil {
		root = physical.NewProject(reduce, split.Finalize, types.Fields{
			{Name: "grp", Kind: types.KindInt},
			{Name: "n", Kind: types.KindInt},
			{Name: "avg_id", Kind: types.KindFloat},
		})
	}
	res, err := c.Execute(context.Background(), fragment.Split(root), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() != 25 {
			t.Errorf("group %v count = %v, want 25", r[0], r[1])
		}
		// ids for grp g: g, g+4, ..., g+96 → mean = g + 48.
		want := float64(r[0].Int()) + 48
		if r[2].Float() != want {
			t.Errorf("group %v avg = %v, want %v", r[0], r[2], want)
		}
	}
	if res.BytesShipped <= 0 {
		t.Error("no bytes recorded")
	}
}

// replicatedTestCluster is testCluster with backup replicas and a fault
// plan.
func replicatedTestCluster(t *testing.T, sites, backups int, spec string) *Cluster {
	t.Helper()
	c := testCluster(t, sites)
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cat := c.Store.Catalog()
	st := storage.NewReplicatedStore(cat, sites, backups)
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 4))}
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	c.Store = st
	c.Faults = faults.New(plan)
	return c
}

// TestFailoverToBackupReplica: a crashed site's instances rerun on the
// partition's backup replica; rows are identical to the healthy run and
// the recovery is visible in Result.Retries.
func TestFailoverToBackupReplica(t *testing.T) {
	healthy := testCluster(t, 4)
	want, err := healthy.Execute(context.Background(), buildPlan(t, healthy), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		// Site 2 dies while instance ordinal 2 (its scan) is in flight.
		c := replicatedTestCluster(t, 4, 1, "crash=2@2")
		c.Workers = workers
		got, err := c.Execute(context.Background(), buildPlan(t, c), 1)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("workers=%d: rows %d, want %d", workers, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if got.Rows[i].String() != want.Rows[i].String() {
				t.Fatalf("workers=%d: row %d differs: %s vs %s",
					workers, i, got.Rows[i], want.Rows[i])
			}
		}
		if got.Retries == 0 {
			t.Errorf("workers=%d: no retries recorded", workers)
		}
		if got.Work <= want.Work {
			t.Errorf("workers=%d: work %g not above healthy %g (lost work uncharged)",
				workers, got.Work, want.Work)
		}
		if got.Modeled <= want.Modeled {
			t.Errorf("workers=%d: modeled %v not above healthy %v",
				workers, got.Modeled, want.Modeled)
		}
	}
}

// TestCrashWithoutBackupsFails: zero redundancy turns a crash into a
// clean error naming the lost partition.
func TestCrashWithoutBackupsFails(t *testing.T) {
	c := replicatedTestCluster(t, 4, 0, "crash=1@0")
	_, err := c.Execute(context.Background(), buildPlan(t, c), 1)
	if err == nil {
		t.Fatal("crash with no backups must fail")
	}
	if !errors.Is(err, faults.ErrSiteCrash) {
		t.Errorf("err = %v, want ErrSiteCrash in chain", err)
	}
	if !strings.Contains(err.Error(), "partition 1") {
		t.Errorf("error does not name the lost partition: %v", err)
	}
}

// TestCancelledContextStopsExecution: a pre-cancelled context returns
// ctx.Err() without running instances.
func TestCancelledContextStopsExecution(t *testing.T) {
	c := testCluster(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Execute(ctx, buildPlan(t, c), 1)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
