package catalog

import (
	"testing"

	"gignite/internal/types"
)

func testTable() *Table {
	return &Table{
		Name: "emp",
		Columns: []Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "name", Kind: types.KindString},
			{Name: "dept", Kind: types.KindInt},
		},
		PrimaryKey: []string{"id"},
		Indexes: []Index{
			{Name: "emp_pk", Columns: []string{"id"}},
			{Name: "emp_dept", Columns: []string{"dept"}},
		},
	}
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	if err := c.AddTable(testTable()); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	tb, err := c.Table("EMP") // case-insensitive
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if tb.AffinityKey != "id" {
		t.Errorf("default affinity key = %q, want id", tb.AffinityKey)
	}
	if got := tb.ColumnIndex("DEPT"); got != 2 {
		t.Errorf("ColumnIndex(DEPT) = %d", got)
	}
	if got := tb.AffinityOrdinal(); got != 0 {
		t.Errorf("AffinityOrdinal = %d", got)
	}
	fs := tb.Fields()
	if len(fs) != 3 || fs[1].Kind != types.KindString {
		t.Errorf("Fields = %v", fs)
	}
	if idx := tb.IndexByName("EMP_DEPT"); idx == nil || idx.Columns[0] != "dept" {
		t.Errorf("IndexByName = %v", idx)
	}
	if idx := tb.IndexOnColumn("dept"); idx == nil || idx.Name != "emp_dept" {
		t.Errorf("IndexOnColumn = %v", idx)
	}
	if idx := tb.IndexOnColumn("name"); idx != nil {
		t.Errorf("IndexOnColumn(name) = %v, want nil", idx)
	}
}

func TestAddTableValidation(t *testing.T) {
	c := New()
	if err := c.AddTable(&Table{Name: ""}); err == nil {
		t.Error("accepted empty name")
	}
	if err := c.AddTable(&Table{Name: "x"}); err == nil {
		t.Error("accepted no columns")
	}
	dup := testTable()
	dup.Columns = append(dup.Columns, Column{Name: "ID", Kind: types.KindInt})
	if err := c.AddTable(dup); err == nil {
		t.Error("accepted duplicate column (case-insensitive)")
	}
	noKey := &Table{Name: "n", Columns: []Column{{Name: "a", Kind: types.KindInt}}}
	if err := c.AddTable(noKey); err == nil {
		t.Error("accepted partitioned table without affinity key")
	}
	badAff := &Table{Name: "b", Columns: []Column{{Name: "a", Kind: types.KindInt}}, AffinityKey: "zzz"}
	if err := c.AddTable(badAff); err == nil {
		t.Error("accepted unknown affinity column")
	}
	repAff := &Table{Name: "r", Columns: []Column{{Name: "a", Kind: types.KindInt}},
		Replicated: true, AffinityKey: "a"}
	if err := c.AddTable(repAff); err == nil {
		t.Error("accepted replicated table with affinity key")
	}
	badIdx := testTable()
	badIdx.Name = "emp2"
	badIdx.Indexes = []Index{{Name: "i", Columns: []string{"nope"}}}
	if err := c.AddTable(badIdx); err == nil {
		t.Error("accepted index on unknown column")
	}
	if err := c.AddTable(testTable()); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	if err := c.AddTable(testTable()); err == nil {
		t.Error("accepted duplicate table")
	}
}

func TestReplicatedTable(t *testing.T) {
	c := New()
	rep := &Table{
		Name:       "nation",
		Columns:    []Column{{Name: "n_nationkey", Kind: types.KindInt}},
		Replicated: true,
	}
	if err := c.AddTable(rep); err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	tb, _ := c.Table("nation")
	if tb.AffinityOrdinal() != -1 {
		t.Error("replicated table has affinity ordinal")
	}
}

func TestDropAndList(t *testing.T) {
	c := New()
	if err := c.AddTable(testTable()); err != nil {
		t.Fatal(err)
	}
	names := c.Tables()
	if len(names) != 1 || names[0] != "emp" {
		t.Errorf("Tables = %v", names)
	}
	if err := c.DropTable("emp"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if err := c.DropTable("emp"); err == nil {
		t.Error("dropped missing table")
	}
	if _, err := c.Table("emp"); err == nil {
		t.Error("lookup after drop succeeded")
	}
}

func TestStatsProviders(t *testing.T) {
	c := New()
	tb := testTable()
	tb.Stats = &TableStats{
		RowCount: 100,
		NDV:      map[string]int64{"id": 100, "dept": 7},
	}
	if err := c.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if got := c.RowCount("emp"); got != 100 {
		t.Errorf("RowCount = %d", got)
	}
	if got := c.NDV("emp", "DEPT"); got != 7 {
		t.Errorf("NDV(dept) = %d", got)
	}
	if got := c.NDV("emp", "name"); got != 0 {
		t.Errorf("NDV(name) = %d, want 0 (unknown)", got)
	}
	if got := c.RowCount("missing"); got != 0 {
		t.Errorf("RowCount(missing) = %d", got)
	}
	var noop NoopStats
	if noop.RowCount("emp") != 0 || noop.NDV("emp", "id") != 0 {
		t.Error("NoopStats returned non-zero")
	}
	// Nil-stats fallback.
	var ts *TableStats
	if ts.NDVOf("x") != 0 {
		t.Error("nil TableStats NDVOf != 0")
	}
}
