// Package catalog holds the metadata layer of gignite: table and index
// definitions, partitioning (affinity) configuration and table statistics.
//
// In the composed architecture the paper studies, Apache Ignite owns this
// metadata and serves it to Apache Calcite through provider hooks. The
// Catalog type plays the same role here: the planner and binder consume it
// through narrow interfaces (StatsProvider) so that alternative metadata
// sources can be composed in, and — exactly as Calcite does — estimation
// falls back to conservative no-op defaults when statistics are absent.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gignite/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Kind types.Kind
}

// Index describes a secondary index: an ordered list of key columns. All
// gignite indexes are per-partition sorted projections (the analogue of
// Ignite's B+-tree indexes); they provide sorted scans and point/range
// lookups within each partition.
type Index struct {
	Name    string
	Columns []string
}

// Table is a table definition.
type Table struct {
	Name    string
	Columns []Column
	// PrimaryKey lists the primary key column(s). Informational plus used
	// to derive the default affinity key.
	PrimaryKey []string
	// AffinityKey is the column whose hash determines the partition. Empty
	// for replicated tables.
	AffinityKey string
	// Replicated tables hold a full copy at every site.
	Replicated bool
	Indexes    []Index
	// Stats is populated when statistics collection is enabled (the paper
	// runs Ignite with "statistics enabled"). Nil means no statistics: the
	// planner falls back to NO-OP defaults.
	Stats *TableStats
}

// Fields returns the table's row schema.
func (t *Table) Fields() types.Fields {
	fs := make(types.Fields, len(t.Columns))
	for i, c := range t.Columns {
		fs[i] = types.Field{Name: c.Name, Kind: c.Kind}
	}
	return fs
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// AffinityOrdinal returns the ordinal of the affinity column, or -1 for
// replicated tables.
func (t *Table) AffinityOrdinal() int {
	if t.AffinityKey == "" {
		return -1
	}
	return t.ColumnIndex(t.AffinityKey)
}

// IndexByName returns the named index, or nil.
func (t *Table) IndexByName(name string) *Index {
	for i := range t.Indexes {
		if strings.EqualFold(t.Indexes[i].Name, name) {
			return &t.Indexes[i]
		}
	}
	return nil
}

// IndexOnColumn returns the first index whose leading column is name, or
// nil.
func (t *Table) IndexOnColumn(name string) *Index {
	for i := range t.Indexes {
		if len(t.Indexes[i].Columns) > 0 && strings.EqualFold(t.Indexes[i].Columns[0], name) {
			return &t.Indexes[i]
		}
	}
	return nil
}

// TableStats carries the per-table statistics the planner consumes.
type TableStats struct {
	RowCount int64
	// NDV is the number of distinct values per column name (lower-cased).
	NDV map[string]int64
	// Min and Max per column name; only meaningful for orderable kinds.
	Min map[string]types.Value
	Max map[string]types.Value
}

// NDVOf returns the distinct-value count for a column, or 0 when unknown.
func (s *TableStats) NDVOf(column string) int64 {
	if s == nil || s.NDV == nil {
		return 0
	}
	return s.NDV[strings.ToLower(column)]
}

// Catalog is the schema registry. It is safe for concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	version atomic.Uint64
}

// Version returns the catalog's monotonically increasing schema version.
// It changes whenever metadata that can affect planning changes (tables
// added or dropped, indexes created, statistics refreshed); consumers such
// as the plan cache compare versions to detect stale plans.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// BumpVersion advances the schema version. Callers that mutate planning-
// relevant metadata outside AddTable/DropTable (index creation, ANALYZE,
// view registration) must call it so cached plans are invalidated.
func (c *Catalog) BumpVersion() { c.version.Add(1) }

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddTable registers a table definition. Adding a duplicate name is an
// error; the benchmarks drop-and-recreate instead of redefining.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table with empty name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %s has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return fmt.Errorf("catalog: table %s has duplicate column %s", t.Name, col.Name)
		}
		seen[lc] = true
	}
	if !t.Replicated {
		if t.AffinityKey == "" && len(t.PrimaryKey) > 0 {
			t.AffinityKey = t.PrimaryKey[0]
		}
		if t.AffinityKey == "" {
			return fmt.Errorf("catalog: partitioned table %s needs an affinity key", t.Name)
		}
		if t.ColumnIndex(t.AffinityKey) < 0 {
			return fmt.Errorf("catalog: table %s affinity key %s is not a column", t.Name, t.AffinityKey)
		}
	} else if t.AffinityKey != "" {
		return fmt.Errorf("catalog: replicated table %s cannot have an affinity key", t.Name)
	}
	for _, idx := range t.Indexes {
		for _, col := range idx.Columns {
			if t.ColumnIndex(col) < 0 {
				return fmt.Errorf("catalog: index %s on %s references unknown column %s",
					idx.Name, t.Name, col)
			}
		}
	}
	key := strings.ToLower(t.Name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: table %s already exists", t.Name)
	}
	c.tables[key] = t
	c.version.Add(1)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %s does not exist", name)
	}
	return t, nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string) error {
	key := strings.ToLower(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %s does not exist", name)
	}
	delete(c.tables, key)
	c.version.Add(1)
	return nil
}

// Tables returns all table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// StatsProvider is the provider-hook interface the planner consumes.
// Implementations that lack information return zero values; estimation
// code treats those as "unknown" and substitutes defaults, mirroring
// Calcite's NO-OP provider fallbacks.
type StatsProvider interface {
	// RowCount returns the table cardinality, or 0 when unknown.
	RowCount(table string) int64
	// NDV returns the distinct-value count of a column, or 0 when unknown.
	NDV(table, column string) int64
	// MinMax returns a column's value range; ok is false when unknown.
	MinMax(table, column string) (min, max types.Value, ok bool)
}

// RowCount implements StatsProvider using collected statistics.
func (c *Catalog) RowCount(table string) int64 {
	t, err := c.Table(table)
	if err != nil || t.Stats == nil {
		return 0
	}
	return t.Stats.RowCount
}

// NDV implements StatsProvider using collected statistics.
func (c *Catalog) NDV(table, column string) int64 {
	t, err := c.Table(table)
	if err != nil {
		return 0
	}
	return t.Stats.NDVOf(column)
}

// MinMax implements StatsProvider using collected statistics.
func (c *Catalog) MinMax(table, column string) (types.Value, types.Value, bool) {
	t, err := c.Table(table)
	if err != nil || t.Stats == nil {
		return types.Null, types.Null, false
	}
	lc := strings.ToLower(column)
	mn, okMin := t.Stats.Min[lc]
	mx, okMax := t.Stats.Max[lc]
	if !okMin || !okMax || mn.IsNull() || mx.IsNull() {
		return types.Null, types.Null, false
	}
	return mn, mx, true
}

// NoopStats is the Calcite-style NO-OP provider: it knows nothing. Using
// it exercises the planner's fallback paths.
type NoopStats struct{}

// RowCount always reports unknown.
func (NoopStats) RowCount(string) int64 { return 0 }

// NDV always reports unknown.
func (NoopStats) NDV(string, string) int64 { return 0 }

// MinMax always reports unknown.
func (NoopStats) MinMax(string, string) (types.Value, types.Value, bool) {
	return types.Null, types.Null, false
}
