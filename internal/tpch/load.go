package tpch

import (
	"fmt"

	"gignite"
)

// Setup creates the TPC-H schema and indexes on an engine, generates data
// at the given scale factor, loads it and collects statistics. It is the
// one-call path the examples, tests and benchmarks use.
func Setup(e *gignite.Engine, sf float64) error {
	for _, ddl := range DDL() {
		if _, err := e.Exec(ddl); err != nil {
			return fmt.Errorf("tpch: ddl: %w", err)
		}
	}
	g := NewGen(sf)
	for _, name := range TableNames() {
		rows, err := g.Table(name)
		if err != nil {
			return err
		}
		if err := e.LoadTable(name, rows); err != nil {
			return fmt.Errorf("tpch: load %s: %w", name, err)
		}
	}
	for _, ddl := range IndexDDL() {
		if _, err := e.Exec(ddl); err != nil {
			return fmt.Errorf("tpch: index ddl: %w", err)
		}
	}
	return e.Analyze()
}
