package tpch

import (
	"fmt"

	"gignite/internal/types"
)

// Gen is a deterministic TPC-H data generator. It follows the official
// schema, key correlations and value distributions (dates, flags, name
// vocabularies) at a configurable scale factor; identical (SF, Seed)
// inputs always produce identical data.
type Gen struct {
	SF   float64
	Seed uint64
}

// NewGen creates a generator for the given scale factor.
func NewGen(sf float64) *Gen { return &Gen{SF: sf, Seed: 0x67696E69} }

// rng is a splitmix64 stream, seeded per (table, row) so each row is
// independently reproducible.
type rng struct{ state uint64 }

func (g *Gen) rowRNG(table string, row int64) *rng {
	h := g.Seed
	for i := 0; i < len(table); i++ {
		h = (h ^ uint64(table[i])) * 0x100000001b3
	}
	h ^= uint64(row) * 0x9E3779B97F4A7C15
	return &rng{state: h}
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [lo, hi].
func (r *rng) intn(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(r.next()%uint64(hi-lo+1))
}

// decimal returns a uniform value in [lo, hi] with two decimals.
func (r *rng) decimal(lo, hi float64) float64 {
	cents := r.intn(int64(lo*100), int64(hi*100))
	return float64(cents) / 100
}

func (r *rng) pick(options []string) string {
	return options[r.next()%uint64(len(options))]
}

// Cardinalities.

// Counts returns the base-table cardinalities at the generator's scale
// factor (PARTSUPP is 4 rows per part; LINEITEM averages 4 per order).
func (g *Gen) Counts() map[string]int64 {
	scale := func(base float64) int64 {
		n := int64(base * g.SF)
		if n < 5 {
			n = 5
		}
		return n
	}
	return map[string]int64{
		"region":   5,
		"nation":   25,
		"supplier": scale(10000),
		"customer": scale(150000),
		"part":     scale(200000),
		"orders":   scale(1500000),
	}
}

// Vocabularies (official TPC-H lists).

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationDefs = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyllable1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyllable2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
	"light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
	"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
	"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
	"red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
	"tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "deposits",
	"requests", "packages", "accounts", "instructions", "theodolites", "pinto",
	"beans", "foxes", "ideas", "dependencies", "excuses", "platelets", "asymptotes",
	"courts", "dolphins", "multipliers", "sauternes", "warthogs", "frets", "dinos",
	"attainments", "somas", "braids", "hockey", "players", "about", "final",
	"pending", "express", "regular", "even", "special", "bold", "ironic", "unusual",
}

// epochDay converts a calendar date to days since 1970-01-01 via
// types.DateFromYMD.
func epochDay(y, m, d int) int64 { return types.DateFromYMD(y, m, d).I }

var (
	startDate = epochDay(1992, 1, 1)
	endDate   = epochDay(1998, 8, 2)
	// currentDate is TPC-H's 1995-06-17 flag cutoff.
	currentDate = epochDay(1995, 6, 17)
)

func (r *rng) comment(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += r.pick(commentWords)
	}
	return out
}

// Table generates the full content of one table.
func (g *Gen) Table(name string) ([]types.Row, error) {
	switch name {
	case "region":
		return g.regions(), nil
	case "nation":
		return g.nations(), nil
	case "supplier":
		return g.suppliers(), nil
	case "customer":
		return g.customers(), nil
	case "part":
		return g.parts(), nil
	case "partsupp":
		return g.partsupps(), nil
	case "orders":
		return g.orders(), nil
	case "lineitem":
		return g.lineitems(), nil
	default:
		return nil, fmt.Errorf("tpch: unknown table %s", name)
	}
}

func (g *Gen) regions() []types.Row {
	rows := make([]types.Row, 5)
	for i := int64(0); i < 5; i++ {
		r := g.rowRNG("region", i)
		rows[i] = types.Row{
			types.NewInt(i),
			types.NewString(regionNames[i]),
			types.NewString(r.comment(6)),
		}
	}
	return rows
}

func (g *Gen) nations() []types.Row {
	rows := make([]types.Row, 25)
	for i := int64(0); i < 25; i++ {
		r := g.rowRNG("nation", i)
		rows[i] = types.Row{
			types.NewInt(i),
			types.NewString(nationDefs[i].name),
			types.NewInt(nationDefs[i].region),
			types.NewString(r.comment(6)),
		}
	}
	return rows
}

func phone(nationkey int64, r *rng) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+nationkey,
		r.intn(100, 999), r.intn(100, 999), r.intn(1000, 9999))
}

func (g *Gen) suppliers() []types.Row {
	n := g.Counts()["supplier"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("supplier", i)
		key := i + 1
		nation := r.intn(0, 24)
		comment := r.comment(8)
		// The spec plants "Customer ... Complaints" in ~5 per 10000
		// suppliers (exercised by Q16).
		if r.intn(0, 1999) == 0 {
			comment = "blithely special Customer slyly express Complaints " + comment
		}
		rows[i] = types.Row{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Supplier#%09d", key)),
			types.NewString(r.comment(3)),
			types.NewInt(nation),
			types.NewString(phone(nation, r)),
			types.NewFloat(r.decimal(-999.99, 9999.99)),
			types.NewString(comment),
		}
	}
	return rows
}

func (g *Gen) customers() []types.Row {
	n := g.Counts()["customer"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("customer", i)
		key := i + 1
		nation := r.intn(0, 24)
		rows[i] = types.Row{
			types.NewInt(key),
			types.NewString(fmt.Sprintf("Customer#%09d", key)),
			types.NewString(r.comment(3)),
			types.NewInt(nation),
			types.NewString(phone(nation, r)),
			types.NewFloat(r.decimal(-999.99, 9999.99)),
			types.NewString(r.pick(segments)),
			types.NewString(r.comment(10)),
		}
	}
	return rows
}

func retailPrice(partkey int64) float64 {
	return float64(90000+(partkey/10)%20001+100*(partkey%1000)) / 100
}

func (g *Gen) parts() []types.Row {
	n := g.Counts()["part"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("part", i)
		key := i + 1
		name := r.pick(colors) + " " + r.pick(colors) + " " + r.pick(colors) + " " +
			r.pick(colors) + " " + r.pick(colors)
		mfgr := r.intn(1, 5)
		brand := mfgr*10 + r.intn(1, 5)
		ptype := r.pick(typeSyllable1) + " " + r.pick(typeSyllable2) + " " + r.pick(typeSyllable3)
		rows[i] = types.Row{
			types.NewInt(key),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			types.NewString(fmt.Sprintf("Brand#%d", brand)),
			types.NewString(ptype),
			types.NewInt(r.intn(1, 50)),
			types.NewString(r.pick(containerSyllable1) + " " + r.pick(containerSyllable2)),
			types.NewFloat(retailPrice(key)),
			types.NewString(r.comment(2)),
		}
	}
	return rows
}

// suppliersPerPart is the spec's 4 PARTSUPP rows per part.
const suppliersPerPart = 4

// suppForPart returns the i-th (0..3) supplier for a part.
func (g *Gen) suppForPart(partkey, i int64) int64 {
	s := g.Counts()["supplier"]
	return (partkey+i*(s/suppliersPerPart+(partkey-1)/s))%s + 1
}

func (g *Gen) partsupps() []types.Row {
	parts := g.Counts()["part"]
	rows := make([]types.Row, 0, parts*suppliersPerPart)
	for p := int64(1); p <= parts; p++ {
		for i := int64(0); i < suppliersPerPart; i++ {
			r := g.rowRNG("partsupp", p*suppliersPerPart+i)
			rows = append(rows, types.Row{
				types.NewInt(p),
				types.NewInt(g.suppForPart(p, i)),
				types.NewInt(r.intn(1, 9999)),
				types.NewFloat(r.decimal(1, 1000)),
				types.NewString(r.comment(12)),
			})
		}
	}
	return rows
}

func (g *Gen) orders() []types.Row {
	n := g.Counts()["orders"]
	customers := g.Counts()["customer"]
	rows := make([]types.Row, n)
	for i := int64(0); i < n; i++ {
		r := g.rowRNG("orders", i)
		key := i + 1
		// The spec skips a third of customer keys (custkey % 3 != 0 never
		// ordered is Q13/Q22 relevant); emulate by mapping to 2/3 of keys.
		cust := r.intn(1, customers)
		if cust%3 == 0 {
			cust++
			if cust > customers {
				cust = 1
			}
		}
		orderDate := r.intn(startDate, endDate-151)
		status := "O"
		if orderDate+100 < currentDate {
			status = "F"
		} else if r.intn(0, 1) == 0 && orderDate < currentDate {
			status = "P"
		}
		comment := r.comment(6)
		// Q13's pattern: some comments contain "special ... requests".
		if r.intn(0, 9) == 0 {
			comment = "special packages wake requests " + comment
		}
		rows[i] = types.Row{
			types.NewInt(key),
			types.NewInt(cust),
			types.NewString(status),
			types.NewFloat(r.decimal(850, 550000)),
			types.NewDate(orderDate),
			types.NewString(r.pick(priorities)),
			types.NewString(fmt.Sprintf("Clerk#%09d", r.intn(1, 1000))),
			types.NewInt(0),
			types.NewString(comment),
		}
	}
	return rows
}

// orderDateOf re-derives an order's date by replaying the orders() draw
// sequence — LINEITEM dates must correlate with their order's date.
func (g *Gen) orderDateOf(orderkey int64) int64 {
	r := g.rowRNG("orders", orderkey-1)
	_ = r.intn(1, g.Counts()["customer"]) // the customer draw precedes the date draw
	return r.intn(startDate, endDate-151)
}

// LinesPerOrder returns the deterministic line count of an order (1..7).
func (g *Gen) LinesPerOrder(orderkey int64) int64 {
	r := g.rowRNG("ordercount", orderkey)
	return r.intn(1, 7)
}

func (g *Gen) lineitems() []types.Row {
	orders := g.Counts()["orders"]
	parts := g.Counts()["part"]
	var rows []types.Row
	for o := int64(1); o <= orders; o++ {
		orderDate := g.orderDateOf(o)
		lines := g.LinesPerOrder(o)
		for ln := int64(1); ln <= lines; ln++ {
			r := g.rowRNG("lineitem", o*8+ln)
			partkey := r.intn(1, parts)
			supp := g.suppForPart(partkey, r.intn(0, 3))
			qty := r.intn(1, 50)
			extended := float64(qty) * retailPrice(partkey)
			shipDate := orderDate + r.intn(1, 121)
			commitDate := orderDate + r.intn(30, 90)
			receiptDate := shipDate + r.intn(1, 30)
			returnflag := "N"
			if receiptDate <= currentDate {
				if r.intn(0, 1) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if shipDate <= currentDate {
				linestatus = "F"
			}
			rows = append(rows, types.Row{
				types.NewInt(o),
				types.NewInt(partkey),
				types.NewInt(supp),
				types.NewInt(ln),
				types.NewFloat(float64(qty)),
				types.NewFloat(extended),
				types.NewFloat(float64(r.intn(0, 10)) / 100),
				types.NewFloat(float64(r.intn(0, 8)) / 100),
				types.NewString(returnflag),
				types.NewString(linestatus),
				types.NewDate(shipDate),
				types.NewDate(commitDate),
				types.NewDate(receiptDate),
				types.NewString(r.pick(shipInstructs)),
				types.NewString(r.pick(shipModes)),
				types.NewString(r.comment(4)),
			})
		}
	}
	return rows
}
