// Package tpch implements the TPC-H substrate of the reproduction: the
// eight-table schema (with the paper's Ignite-style partitioning: fact
// tables hash-partitioned on their primary keys, NATION and REGION
// replicated), a deterministic in-process data generator following the
// official distributions, and the 22 benchmark queries with the standard
// validation substitution parameters.
package tpch

// DDL returns the CREATE TABLE statements. Partitioned tables declare
// their affinity keys; NATION and REGION are replicated, matching the
// deployment the paper benchmarks.
func DDL() []string {
	return []string{
		`CREATE REPLICATED TABLE region (
			r_regionkey BIGINT PRIMARY KEY,
			r_name      VARCHAR(25),
			r_comment   VARCHAR(152))`,
		`CREATE REPLICATED TABLE nation (
			n_nationkey BIGINT PRIMARY KEY,
			n_name      VARCHAR(25),
			n_regionkey BIGINT,
			n_comment   VARCHAR(152))`,
		`CREATE TABLE supplier (
			s_suppkey   BIGINT PRIMARY KEY,
			s_name      VARCHAR(25),
			s_address   VARCHAR(40),
			s_nationkey BIGINT,
			s_phone     VARCHAR(15),
			s_acctbal   DECIMAL(15,2),
			s_comment   VARCHAR(101))`,
		`CREATE TABLE customer (
			c_custkey    BIGINT PRIMARY KEY,
			c_name       VARCHAR(25),
			c_address    VARCHAR(40),
			c_nationkey  BIGINT,
			c_phone      VARCHAR(15),
			c_acctbal    DECIMAL(15,2),
			c_mktsegment VARCHAR(10),
			c_comment    VARCHAR(117))`,
		`CREATE TABLE part (
			p_partkey     BIGINT PRIMARY KEY,
			p_name        VARCHAR(55),
			p_mfgr        VARCHAR(25),
			p_brand       VARCHAR(10),
			p_type        VARCHAR(25),
			p_size        BIGINT,
			p_container   VARCHAR(10),
			p_retailprice DECIMAL(15,2),
			p_comment     VARCHAR(23))`,
		`CREATE TABLE partsupp (
			ps_partkey    BIGINT,
			ps_suppkey    BIGINT,
			ps_availqty   BIGINT,
			ps_supplycost DECIMAL(15,2),
			ps_comment    VARCHAR(199),
			PRIMARY KEY (ps_partkey)) AFFINITY KEY (ps_partkey)`,
		`CREATE TABLE orders (
			o_orderkey      BIGINT PRIMARY KEY,
			o_custkey       BIGINT,
			o_orderstatus   VARCHAR(1),
			o_totalprice    DECIMAL(15,2),
			o_orderdate     DATE,
			o_orderpriority VARCHAR(15),
			o_clerk         VARCHAR(15),
			o_shippriority  BIGINT,
			o_comment       VARCHAR(79))`,
		`CREATE TABLE lineitem (
			l_orderkey      BIGINT,
			l_partkey       BIGINT,
			l_suppkey       BIGINT,
			l_linenumber    BIGINT,
			l_quantity      DECIMAL(15,2),
			l_extendedprice DECIMAL(15,2),
			l_discount      DECIMAL(15,2),
			l_tax           DECIMAL(15,2),
			l_returnflag    VARCHAR(1),
			l_linestatus    VARCHAR(1),
			l_shipdate      DATE,
			l_commitdate    DATE,
			l_receiptdate   DATE,
			l_shipinstruct  VARCHAR(25),
			l_shipmode      VARCHAR(10),
			l_comment       VARCHAR(44),
			PRIMARY KEY (l_orderkey)) AFFINITY KEY (l_orderkey)`,
	}
}

// IndexDDL returns the paper's 16 secondary indexes: one per primary key
// plus the join/filter columns its evaluation exercises.
func IndexDDL() []string {
	return []string{
		`CREATE INDEX idx_region_pk ON region (r_regionkey)`,
		`CREATE INDEX idx_nation_pk ON nation (n_nationkey)`,
		`CREATE INDEX idx_supplier_pk ON supplier (s_suppkey)`,
		`CREATE INDEX idx_supplier_nation ON supplier (s_nationkey)`,
		`CREATE INDEX idx_customer_pk ON customer (c_custkey)`,
		`CREATE INDEX idx_customer_nation ON customer (c_nationkey)`,
		`CREATE INDEX idx_part_pk ON part (p_partkey)`,
		`CREATE INDEX idx_part_size ON part (p_size)`,
		`CREATE INDEX idx_partsupp_pk ON partsupp (ps_partkey, ps_suppkey)`,
		`CREATE INDEX idx_partsupp_supp ON partsupp (ps_suppkey)`,
		`CREATE INDEX idx_orders_pk ON orders (o_orderkey)`,
		`CREATE INDEX idx_orders_cust ON orders (o_custkey)`,
		`CREATE INDEX idx_orders_date ON orders (o_orderdate)`,
		`CREATE INDEX idx_lineitem_pk ON lineitem (l_orderkey, l_linenumber)`,
		`CREATE INDEX idx_lineitem_ship ON lineitem (l_shipdate)`,
		`CREATE INDEX idx_lineitem_part ON lineitem (l_partkey)`,
	}
}

// TableNames lists the schema's tables in load order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "customer", "part",
		"partsupp", "orders", "lineitem"}
}
