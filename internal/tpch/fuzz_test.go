package tpch

import (
	"fmt"
	"testing"

	"gignite"
)

// TestRandomTPCHQueryDifferential fuzzes query shapes over the real TPC-H
// schema and data, comparing the distributed IC+M engine against the
// reference interpreter. Unlike the fixed 22-query suite, the generator
// explores join/filter/aggregation combinations the benchmark itself
// never uses.
func TestRandomTPCHQueryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("loads TPC-H")
	}
	e := setupEngine(t, gignite.ICPlusM(4))
	g := &tpchQueryGen{state: 0x7C47}
	const n = 60
	for i := 0; i < n; i++ {
		q := g.query()
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("fuzz %d: %v\n%s", i, err, q)
		}
		want, err := e.ReferenceQuery(q)
		if err != nil {
			t.Fatalf("fuzz %d reference: %v\n%s", i, err, q)
		}
		cg, cw := canonical(got.Rows), canonical(want)
		if len(cg) != len(cw) {
			t.Fatalf("fuzz %d: %d rows vs reference %d\n%s", i, len(cg), len(cw), q)
		}
		for r := range cg {
			if !approxEqualRows(cg[r], cw[r]) {
				t.Fatalf("fuzz %d row %d:\n  engine:    %s\n  reference: %s\n%s",
					i, r, cg[r], cw[r], q)
			}
		}
	}
}

type tpchQueryGen struct{ state uint64 }

func (g *tpchQueryGen) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 33
}

func (g *tpchQueryGen) intn(n int) int { return int(g.next() % uint64(n)) }

func (g *tpchQueryGen) pick(opts ...string) string { return opts[g.next()%uint64(len(opts))] }

func (g *tpchQueryGen) linePred() string {
	switch g.intn(5) {
	case 0:
		return fmt.Sprintf("l_quantity %s %d", g.pick("<", ">", "<=", ">="), 1+g.intn(50))
	case 1:
		return fmt.Sprintf("l_shipdate >= DATE '199%d-0%d-01'", 2+g.intn(6), 1+g.intn(9))
	case 2:
		return fmt.Sprintf("l_discount BETWEEN 0.0%d AND 0.0%d", g.intn(5), 5+g.intn(5))
	case 3:
		return fmt.Sprintf("l_returnflag = '%s'", g.pick("R", "A", "N"))
	default:
		return fmt.Sprintf("l_shipmode IN ('%s', '%s')",
			g.pick("AIR", "RAIL", "SHIP"), g.pick("MAIL", "TRUCK", "FOB"))
	}
}

func (g *tpchQueryGen) orderPred() string {
	switch g.intn(3) {
	case 0:
		return fmt.Sprintf("o_orderdate < DATE '199%d-01-01'", 3+g.intn(6))
	case 1:
		return fmt.Sprintf("o_orderpriority = '%s'", g.pick("1-URGENT", "2-HIGH", "5-LOW"))
	default:
		return fmt.Sprintf("o_totalprice > %d", 1000*(1+g.intn(300)))
	}
}

func (g *tpchQueryGen) query() string {
	switch g.intn(5) {
	case 0: // single-table aggregate
		return fmt.Sprintf(`SELECT l_returnflag, COUNT(*), SUM(l_quantity), AVG(l_extendedprice)
			FROM lineitem WHERE %s GROUP BY l_returnflag ORDER BY l_returnflag`, g.linePred())
	case 1: // fact-dim join through orders
		return fmt.Sprintf(`SELECT o_orderpriority, COUNT(*) AS n
			FROM orders, lineitem
			WHERE o_orderkey = l_orderkey AND %s AND %s
			GROUP BY o_orderpriority ORDER BY n DESC, o_orderpriority`,
			g.orderPred(), g.linePred())
	case 2: // replicated-dimension join
		return fmt.Sprintf(`SELECT n_name, COUNT(*) AS n
			FROM supplier, nation
			WHERE s_nationkey = n_nationkey AND s_acctbal > %d
			GROUP BY n_name ORDER BY n DESC, n_name LIMIT %d`,
			-1000+g.intn(5000), 1+g.intn(10))
	case 3: // semi join via IN
		return fmt.Sprintf(`SELECT c_mktsegment, COUNT(*)
			FROM customer WHERE c_custkey IN
			(SELECT o_custkey FROM orders WHERE %s)
			GROUP BY c_mktsegment ORDER BY c_mktsegment`, g.orderPred())
	default: // three-way join with top-N
		return fmt.Sprintf(`SELECT s_name, SUM(l_extendedprice) AS rev
			FROM supplier, lineitem, orders
			WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
			AND %s AND %s
			GROUP BY s_name ORDER BY rev DESC, s_name LIMIT %d`,
			g.linePred(), g.orderPred(), 1+g.intn(20))
	}
}
