package tpch

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"gignite"
	"gignite/internal/types"
)

const testSF = 0.002

func setupEngine(t *testing.T, cfg gignite.Config) *gignite.Engine {
	t.Helper()
	e := gignite.New(cfg)
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGeneratorDeterministicAndSized(t *testing.T) {
	g1, g2 := NewGen(testSF), NewGen(testSF)
	for _, table := range TableNames() {
		r1, err := g1.Table(table)
		if err != nil {
			t.Fatal(err)
		}
		r2, _ := g2.Table(table)
		if len(r1) != len(r2) {
			t.Fatalf("%s: nondeterministic row count", table)
		}
		for i := range r1 {
			if r1[i].String() != r2[i].String() {
				t.Fatalf("%s row %d differs", table, i)
			}
		}
	}
	counts := g1.Counts()
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("fixed tables sized wrong: %v", counts)
	}
	if counts["orders"] < counts["customer"] {
		t.Errorf("orders (%d) should exceed customers (%d)", counts["orders"], counts["customer"])
	}
	line, _ := g1.Table("lineitem")
	perOrder := float64(len(line)) / float64(counts["orders"])
	if perOrder < 3 || perOrder > 5 {
		t.Errorf("lineitem per order = %.2f, want ~4", perOrder)
	}
}

func TestGeneratorDistributions(t *testing.T) {
	g := NewGen(testSF)
	line, _ := g.Table("lineitem")
	var promo, shipped int
	for _, r := range line {
		ship := r[10]
		commit := r[11]
		receipt := r[12]
		if receipt.I <= ship.I {
			t.Fatal("receiptdate before shipdate")
		}
		if commit.IsNull() || ship.IsNull() {
			t.Fatal("null dates")
		}
		if r[4].Float() < 1 || r[4].Float() > 50 {
			t.Fatalf("quantity out of range: %v", r[4])
		}
		if r[6].Float() < 0 || r[6].Float() > 0.10 {
			t.Fatalf("discount out of range: %v", r[6])
		}
		shipped++
	}
	parts, _ := g.Table("part")
	for _, r := range parts {
		typ := r[4].Str()
		if strings.HasPrefix(typ, "PROMO") {
			promo++
		}
		if r[5].Int() < 1 || r[5].Int() > 50 {
			t.Fatalf("p_size out of range: %v", r[5])
		}
	}
	if promo == 0 {
		t.Error("no PROMO parts generated (Q14 would be trivial)")
	}
	// Q22 needs customers in the named country codes; codes are 10..34.
	cust, _ := g.Table("customer")
	codes := map[string]bool{}
	for _, r := range cust {
		codes[r[4].Str()[:2]] = true
	}
	if !codes["13"] && !codes["17"] && !codes["23"] {
		t.Error("no customers in Q22 country codes")
	}
}

func TestPartsuppReferentialIntegrity(t *testing.T) {
	g := NewGen(testSF)
	counts := g.Counts()
	ps, _ := g.Table("partsupp")
	if int64(len(ps)) != counts["part"]*4 {
		t.Fatalf("partsupp rows = %d, want %d", len(ps), counts["part"]*4)
	}
	for _, r := range ps {
		if r[0].Int() < 1 || r[0].Int() > counts["part"] {
			t.Fatalf("ps_partkey out of range: %v", r[0])
		}
		if r[1].Int() < 1 || r[1].Int() > counts["supplier"] {
			t.Fatalf("ps_suppkey out of range: %v", r[1])
		}
	}
	// lineitem (partkey, suppkey) pairs must exist in partsupp.
	valid := map[[2]int64]bool{}
	for _, r := range ps {
		valid[[2]int64{r[0].Int(), r[1].Int()}] = true
	}
	line, _ := g.Table("lineitem")
	for _, r := range line {
		if !valid[[2]int64{r[1].Int(), r[2].Int()}] {
			t.Fatalf("lineitem references missing partsupp (%d, %d)", r[1].Int(), r[2].Int())
		}
	}
}

// icFailures is the set of queries that fail on THIS reproduction's IC
// baseline at testSF with the matching work limit: Q2 (nested-loop chains
// from the §4.1 estimation collapse), Q17 and Q21 (NLJ plans for the
// correlated subqueries). The paper's baseline additionally fails Q5, Q9
// (Calcite memo blowup our DP search does not reproduce) and Q19 (whose
// quadratic NLJ only exceeds the limit at larger scale factors); see
// EXPERIMENTS.md §failure-matrix for the comparison.
var icFailures = map[int]bool{2: true, 17: true, 21: true}

// icWorkLimit is the execution work limit equivalent to the paper's
// four-hour cap at testSF (the harness scales it linearly with SF).
const icWorkLimit = 1e8

// canonical renders rows order-insensitively. Floats are rounded to two
// decimals: distributed partial aggregation sums floats in a different
// order than the reference interpreter, so the last bits can differ.
func canonical(rows []gignite.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.K == types.KindFloat {
				parts[j] = fmt.Sprintf("%.2f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// approxEqualRows compares canonical row strings, allowing float fields a
// relative tolerance (re-parsed from the canonical encoding).
func approxEqualRows(a, b string) bool {
	if a == b {
		return true
	}
	fa, fb := strings.Split(a, "|"), strings.Split(b, "|")
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] == fb[i] {
			continue
		}
		var x, y float64
		if _, err := fmt.Sscanf(fa[i], "%f", &x); err != nil {
			return false
		}
		if _, err := fmt.Sscanf(fb[i], "%f", &y); err != nil {
			return false
		}
		diff := x - y
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if x > 1 || x < -1 {
			if x < 0 {
				scale = -x
			} else {
				scale = x
			}
		}
		if diff/scale > 1e-6 && diff > 0.011 {
			return false
		}
	}
	return true
}

// TestAllQueriesICPlusMatchReference is the headline integration test:
// every runnable TPC-H query planned and executed by IC+ on a 4-site
// cluster must return the same rows as the naive reference interpreter.
func TestAllQueriesICPlusMatchReference(t *testing.T) {
	e := setupEngine(t, gignite.ICPlus(4))
	for _, q := range Queries() {
		if q.RequiresViews {
			continue
		}
		t.Run(fmt.Sprintf("Q%d", q.ID), func(t *testing.T) {
			got, err := e.Query(q.SQL)
			if err != nil {
				t.Fatalf("Q%d: %v", q.ID, err)
			}
			want, err := e.ReferenceQuery(q.SQL)
			if err != nil {
				t.Fatalf("Q%d reference: %v", q.ID, err)
			}
			cg, cw := canonical(got.Rows), canonical(want)
			if len(cg) != len(cw) {
				t.Fatalf("Q%d: %d rows vs reference %d", q.ID, len(cg), len(cw))
			}
			for i := range cg {
				if !approxEqualRows(cg[i], cw[i]) {
					t.Fatalf("Q%d row %d:\n  engine:    %s\n  reference: %s", q.ID, i, cg[i], cw[i])
				}
			}
		})
	}
}

// TestICPlusMAgreesWithICPlus checks that multithreading changes no
// results.
func TestICPlusMAgreesWithICPlus(t *testing.T) {
	a := setupEngine(t, gignite.ICPlus(4))
	b := setupEngine(t, gignite.ICPlusM(4))
	for _, q := range Queries() {
		if q.RequiresViews {
			continue
		}
		ra, err := a.Query(q.SQL)
		if err != nil {
			t.Fatalf("Q%d IC+: %v", q.ID, err)
		}
		rb, err := b.Query(q.SQL)
		if err != nil {
			t.Fatalf("Q%d IC+M: %v", q.ID, err)
		}
		ca, cb := canonical(ra.Rows), canonical(rb.Rows)
		if len(ca) != len(cb) {
			t.Fatalf("Q%d: IC+ %d rows, IC+M %d rows", q.ID, len(ca), len(cb))
		}
		for i := range ca {
			if !approxEqualRows(ca[i], cb[i]) {
				t.Fatalf("Q%d row %d differs between IC+ and IC+M:\n  %s\n  %s", q.ID, i, ca[i], cb[i])
			}
		}
	}
}

// TestQ15FailsWithViews reproduces the paper's Q15 exclusion.
func TestQ15FailsWithViews(t *testing.T) {
	e := setupEngine(t, gignite.ICPlus(4))
	q := QueryByID(15)
	if q == nil || !q.RequiresViews {
		t.Fatal("Q15 not marked as requiring views")
	}
	_, err := e.Exec(q.Setup[0])
	if !errors.Is(err, gignite.ErrViewsUnsupported) {
		t.Errorf("CREATE VIEW error = %v", err)
	}
}

// TestBaselineFailureMatrix pins the IC baseline's failure set: the
// mis-planned subquery/NLJ queries exceed the runtime limit, everything
// else plans and executes.
func TestBaselineFailureMatrix(t *testing.T) {
	cfg := gignite.IC(4)
	cfg.ExecWorkLimit = icWorkLimit
	e := gignite.New(cfg)
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		if q.RequiresViews {
			continue
		}
		_, err := e.Query(q.SQL)
		switch {
		case icFailures[q.ID] && !errors.Is(err, gignite.ErrQueryTimeout):
			t.Errorf("Q%d should exceed the IC runtime limit, got %v", q.ID, err)
		case !icFailures[q.ID] && err != nil:
			t.Errorf("Q%d failed on IC: %v", q.ID, err)
		}
	}
}

// TestICPlusRunsAllBaselineFailures: every baseline-failing query plans
// and executes quickly on IC+ — the paper's headline §6.2.1 result.
func TestICPlusRunsAllBaselineFailures(t *testing.T) {
	cfg := gignite.ICPlus(4)
	cfg.ExecWorkLimit = icWorkLimit
	e := gignite.New(cfg)
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	for id := range icFailures {
		q := QueryByID(id)
		if _, err := e.Query(q.SQL); err != nil {
			t.Errorf("Q%d failed on IC+: %v", id, err)
		}
	}
}

// TestQ15WithExperimentalViews: the view-support extension (beyond the
// paper's system) lets Q15 plan and execute; its results must match the
// equivalent view-inlined query.
func TestQ15WithExperimentalViews(t *testing.T) {
	cfg := gignite.ICPlus(4)
	cfg.ExperimentalViews = true
	e := gignite.New(cfg)
	if err := Setup(e, testSF); err != nil {
		t.Fatal(err)
	}
	q := QueryByID(15)
	for _, setup := range q.Setup {
		if _, err := e.Exec(setup); err != nil {
			t.Fatalf("view setup: %v", err)
		}
	}
	got, err := e.Query(q.SQL)
	if err != nil {
		t.Fatalf("Q15: %v", err)
	}
	// Inline the view by hand and compare.
	inlined := `
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, (
    SELECT l_suppkey AS supplier_no,
           SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
    FROM lineitem
    WHERE l_shipdate >= DATE '1996-01-01'
      AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
    GROUP BY l_suppkey) AS revenue0
WHERE s_suppkey = supplier_no
  AND total_revenue = (
      SELECT MAX(total_revenue) FROM (
          SELECT l_suppkey AS supplier_no,
                 SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
          FROM lineitem
          WHERE l_shipdate >= DATE '1996-01-01'
            AND l_shipdate < DATE '1996-01-01' + INTERVAL '3' MONTH
          GROUP BY l_suppkey) AS revenue1)
ORDER BY s_suppkey`
	want, err := e.Query(inlined)
	if err != nil {
		t.Fatalf("inlined Q15: %v", err)
	}
	cg, cw := canonical(got.Rows), canonical(want.Rows)
	if len(cg) != len(cw) || len(cg) == 0 {
		t.Fatalf("rows: view %d vs inlined %d", len(cg), len(cw))
	}
	for i := range cg {
		if !approxEqualRows(cg[i], cw[i]) {
			t.Fatalf("row %d: %s vs %s", i, cg[i], cw[i])
		}
	}
	// Duplicate view names are rejected.
	if _, err := e.Exec(q.Setup[0]); err == nil {
		t.Error("duplicate view accepted")
	}
	// Default configurations still reject views (paper fidelity).
	plain := gignite.New(gignite.ICPlus(2))
	if _, err := plain.Exec(`CREATE VIEW v AS SELECT 1`); err == nil {
		t.Error("views accepted without the extension flag")
	}
}
