package sketch

import (
	"bytes"
	"math"
	"testing"
)

// hashOf simulates a key hash stream: a weak sequential "hash" the
// sketch's internal finalizer must spread out.
func hashOf(i int) uint64 { return uint64(i) * 0x9E3779B97F4A7C15 }

func TestExactSmallStream(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Add(hashOf(i % 10))
	}
	if s.Rows() != 100 {
		t.Fatalf("rows = %d, want 100", s.Rows())
	}
	if ndv := s.NDV(); ndv != 10 {
		t.Fatalf("NDV = %g, want exactly 10 (below-k streams are exact)", ndv)
	}
	hh := s.HeavyHitters(3)
	if len(hh) != 3 || hh[0].Count != 10 {
		t.Fatalf("heavy hitters = %+v, want 3 entries of count 10", hh)
	}
}

func TestNDVErrorBound(t *testing.T) {
	// TPC-H-column-shaped streams: uniform keys (orderkey-like), repeated
	// keys (suppkey-like FK with 10x fanout), and skewed keys.
	cases := []struct {
		name string
		n    int
		ndv  int
	}{
		{"uniform-50k", 50_000, 50_000},
		{"fk-fanout", 50_000, 5_000},
		{"low-card", 20_000, 25},
	}
	for _, tc := range cases {
		s := New()
		for i := 0; i < tc.n; i++ {
			s.Add(hashOf(i % tc.ndv))
		}
		est := s.NDV()
		relErr := math.Abs(est-float64(tc.ndv)) / float64(tc.ndv)
		if relErr > 0.15 {
			t.Errorf("%s: NDV est %.0f vs true %d (rel err %.3f > 0.15)",
				tc.name, est, tc.ndv, relErr)
		}
	}
}

func TestMergeAssociativity(t *testing.T) {
	build := func(lo, hi, mod int) *Sketch {
		s := New()
		for i := lo; i < hi; i++ {
			s.Add(hashOf(i % mod))
		}
		return s
	}
	mk := func() (a, b, c *Sketch) {
		return build(0, 4000, 700), build(4000, 9000, 1300), build(9000, 20000, 90)
	}

	// (a ⊔ b) ⊔ c
	a1, b1, c1 := mk()
	a1.Merge(b1)
	a1.Merge(c1)

	// a ⊔ (b ⊔ c)
	a2, b2, c2 := mk()
	b2.Merge(c2)
	a2.Merge(b2)

	// (c ⊔ a) ⊔ b — commutativity too
	a3, b3, c3 := mk()
	c3.Merge(a3)
	c3.Merge(b3)

	e1, e2, e3 := a1.Marshal(), a2.Marshal(), c3.Marshal()
	if !bytes.Equal(e1, e2) {
		t.Fatal("merge is not associative: (a+b)+c != a+(b+c)")
	}
	if !bytes.Equal(e1, e3) {
		t.Fatal("merge is not commutative: (a+b)+c != (c+a)+b")
	}
}

func TestDeterministicSerialization(t *testing.T) {
	// Same multiset, different insertion orders → identical bytes.
	s1, s2 := New(), New()
	for i := 0; i < 5000; i++ {
		s1.Add(hashOf(i % 600))
	}
	for i := 4999; i >= 0; i-- {
		s2.Add(hashOf(i % 600))
	}
	e1, e2 := s1.Marshal(), s2.Marshal()
	if !bytes.Equal(e1, e2) {
		t.Fatal("serialization depends on insertion order")
	}
	back, err := Unmarshal(e1)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !bytes.Equal(back.Marshal(), e1) {
		t.Fatal("Marshal/Unmarshal round trip is not the identity")
	}
	if back.Rows() != s1.Rows() || back.NDV() != s1.NDV() {
		t.Fatalf("round trip changed summaries: rows %d/%d ndv %g/%g",
			back.Rows(), s1.Rows(), back.NDV(), s1.NDV())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("nope")); err == nil {
		t.Fatal("want error for bad header")
	}
	good := New()
	good.Add(1)
	enc := good.Marshal()
	if _, err := Unmarshal(enc[:len(enc)-3]); err == nil {
		t.Fatal("want error for truncated encoding")
	}
}

func TestHeavyHitterSkew(t *testing.T) {
	s := New()
	for i := 0; i < 9000; i++ {
		s.Add(hashOf(42)) // one dominant key
	}
	for i := 0; i < 1000; i++ {
		s.Add(hashOf(1000 + i%100))
	}
	if f := s.MaxFraction(); f < 0.85 {
		t.Fatalf("MaxFraction = %.3f, want >= 0.85 for a 90%% skewed stream", f)
	}
	hh := s.HeavyHitters(1)
	if len(hh) != 1 || hh[0].Count != 9000 {
		t.Fatalf("heavy hitter = %+v, want count 9000", hh)
	}
}
