// Package sketch implements the runtime statistics sketch adaptive query
// execution consumes (DESIGN.md §17): a per-exchange summary of the rows
// an exchange sender shipped, built incrementally on the send path and
// merged at wave barriers.
//
// A Sketch combines three summaries over the stream of key hashes it is
// fed:
//
//   - an exact row count,
//   - a KMV (k-minimum-values) distinct-count estimator, and
//   - a hash-threshold sample of exact per-key frequencies, from which
//     heavy hitters (skewed keys) are read off.
//
// All three are order-independent: Merge is associative and commutative,
// and the serialized form is deterministic, so sketches merged at a wave
// barrier in any grouping produce byte-identical state. That property is
// what lets the adaptive re-planner key decisions off sketches without
// breaking the engine's determinism contract (results identical at every
// worker count).
package sketch

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultK is the KMV synopsis size: the k smallest distinct key hashes
// are retained, giving a relative NDV error around 1/sqrt(k-2) (~8% at
// k=160; we use 256 for ~6%).
const DefaultK = 256

// DefaultHitterCap bounds the frequency sample: when more than this many
// distinct hashes fall under the sampling threshold, the threshold halves
// until the sample fits. Until the cap is first exceeded every key is
// sampled, so small exchanges get exact frequencies.
const DefaultHitterCap = 256

// Sketch summarizes one exchange's shipped rows. The zero value is not
// usable; call New.
type Sketch struct {
	k   int
	cap int

	rows int64
	// kmv holds the k smallest distinct (finalized) hashes, sorted.
	kmv []uint64
	// level is the sampling level: a hash h is sampled when h>>level has
	// its top `level` bits zero — i.e. h < 2^64 >> level. Level 0 samples
	// everything.
	level uint8
	// counts holds exact frequencies of sampled hashes.
	counts map[uint64]int64
}

// New creates an empty sketch with the default synopsis sizes.
func New() *Sketch {
	return &Sketch{k: DefaultK, cap: DefaultHitterCap, counts: make(map[uint64]int64)}
}

// mix finalizes a key hash (splitmix64) so the KMV order statistics are
// uniform even when the input hash is weak on low entropy keys.
func mix(h uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// threshold returns the sampling bound for a level (hashes below it are
// sampled). Level 0 means sample everything.
func threshold(level uint8) uint64 {
	if level == 0 {
		return ^uint64(0)
	}
	return ^uint64(0) >> level
}

// Add feeds one row's key hash into the sketch.
func (s *Sketch) Add(keyHash uint64) {
	s.rows++
	h := mix(keyHash)

	// KMV: insert h into the sorted k-minimum set if it qualifies.
	if len(s.kmv) < s.k || h < s.kmv[len(s.kmv)-1] {
		i := sort.Search(len(s.kmv), func(i int) bool { return s.kmv[i] >= h })
		if i == len(s.kmv) || s.kmv[i] != h {
			s.kmv = append(s.kmv, 0)
			copy(s.kmv[i+1:], s.kmv[i:])
			s.kmv[i] = h
			if len(s.kmv) > s.k {
				s.kmv = s.kmv[:s.k]
			}
		}
	}

	// Frequency sample: exact counts for hashes under the threshold.
	if h <= threshold(s.level) {
		s.counts[h]++
		if len(s.counts) > s.cap {
			s.shrink()
		}
	}
}

// shrink raises the sampling level to the smallest one that fits the cap,
// pruning counts above the new threshold. The resulting state is a pure
// function of the distinct-hash set, independent of insertion order.
func (s *Sketch) shrink() {
	for len(s.counts) > s.cap && s.level < 63 {
		s.level++
		t := threshold(s.level)
		for h := range s.counts {
			if h > t {
				delete(s.counts, h)
			}
		}
	}
}

// Rows returns the exact number of rows fed into the sketch.
func (s *Sketch) Rows() int64 { return s.rows }

// NDV estimates the number of distinct keys. With fewer than k distinct
// hashes observed the count is exact; past that the KMV estimator
// (k-1)/max_normalized applies.
func (s *Sketch) NDV() float64 {
	if len(s.kmv) < s.k {
		return float64(len(s.kmv))
	}
	kth := s.kmv[s.k-1]
	if kth == 0 {
		return float64(s.k)
	}
	// (k-1) / (kth / 2^64)
	return float64(s.k-1) / (float64(kth) / float64(1<<63) / 2)
}

// Hitter is one sampled key frequency.
type Hitter struct {
	Hash  uint64
	Count int64
}

// HeavyHitters returns the n most frequent sampled keys, ordered by
// descending count then ascending hash (a total, deterministic order).
// Counts are exact for the keys reported; keys hashed above the sampling
// threshold are unobserved, so at high levels the report is a uniform
// sample of the key space.
func (s *Sketch) HeavyHitters(n int) []Hitter {
	out := make([]Hitter, 0, len(s.counts))
	for h, c := range s.counts {
		out = append(out, Hitter{Hash: h, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Hash < out[b].Hash
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// MaxFraction estimates the heaviest key's share of the rows — the skew
// signal (0 when the sketch is empty or nothing was sampled). The sampled
// count is exact, but at sampling level L the heaviest key overall may be
// unsampled, so this is a lower bound.
func (s *Sketch) MaxFraction() float64 {
	if s.rows == 0 {
		return 0
	}
	var max int64
	for _, c := range s.counts {
		if c > max {
			max = c
		}
	}
	return float64(max) / float64(s.rows)
}

// Merge folds another sketch into this one. Merge is associative and
// commutative: any merge tree over the same leaf sketches yields the same
// state, which is what makes barrier-order merging deterministic.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	s.rows += o.rows
	// KMV union: merge two sorted distinct lists, keep the k smallest.
	merged := make([]uint64, 0, len(s.kmv)+len(o.kmv))
	i, j := 0, 0
	for i < len(s.kmv) || j < len(o.kmv) {
		switch {
		case j >= len(o.kmv) || (i < len(s.kmv) && s.kmv[i] < o.kmv[j]):
			merged = append(merged, s.kmv[i])
			i++
		case i >= len(s.kmv) || o.kmv[j] < s.kmv[i]:
			merged = append(merged, o.kmv[j])
			j++
		default: // equal
			merged = append(merged, s.kmv[i])
			i, j = i+1, j+1
		}
		if len(merged) == s.k {
			break
		}
	}
	s.kmv = merged

	// Frequency sample: counts restricted to the coarser level, then
	// re-shrunk to the cap.
	if o.level > s.level {
		s.level = o.level
		t := threshold(s.level)
		for h := range s.counts {
			if h > t {
				delete(s.counts, h)
			}
		}
	}
	t := threshold(s.level)
	for h, c := range o.counts {
		if h <= t {
			s.counts[h] += c
		}
	}
	if len(s.counts) > s.cap {
		s.shrink()
	}
}

const marshalMagic = "gsk1"

// Marshal serializes the sketch deterministically: equal sketch states
// produce byte-identical encodings regardless of construction order.
func (s *Sketch) Marshal() []byte {
	buf := make([]byte, 0, 4+8+1+4+len(s.kmv)*8+4+len(s.counts)*16)
	buf = append(buf, marshalMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(s.rows))
	buf = append(buf, s.level)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.kmv)))
	for _, h := range s.kmv {
		buf = binary.BigEndian.AppendUint64(buf, h)
	}
	hashes := make([]uint64, 0, len(s.counts))
	for h := range s.counts {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(hashes)))
	for _, h := range hashes {
		buf = binary.BigEndian.AppendUint64(buf, h)
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.counts[h]))
	}
	return buf
}

// Unmarshal reconstructs a sketch from its Marshal encoding.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) < 4+8+1+4 || string(b[:4]) != marshalMagic {
		return nil, fmt.Errorf("sketch: bad encoding header")
	}
	s := New()
	p := 4
	s.rows = int64(binary.BigEndian.Uint64(b[p:]))
	p += 8
	s.level = b[p]
	p++
	nk := int(binary.BigEndian.Uint32(b[p:]))
	p += 4
	if nk > s.k || len(b) < p+nk*8+4 {
		return nil, fmt.Errorf("sketch: truncated kmv section")
	}
	s.kmv = make([]uint64, nk)
	for i := range s.kmv {
		s.kmv[i] = binary.BigEndian.Uint64(b[p:])
		p += 8
	}
	nc := int(binary.BigEndian.Uint32(b[p:]))
	p += 4
	if len(b) != p+nc*16 {
		return nil, fmt.Errorf("sketch: truncated counts section")
	}
	for i := 0; i < nc; i++ {
		h := binary.BigEndian.Uint64(b[p:])
		c := int64(binary.BigEndian.Uint64(b[p+8:]))
		p += 16
		s.counts[h] = c
	}
	return s, nil
}
