// Package stats implements cardinality and selectivity estimation over
// logical plans — the provider-hook layer Ignite injects into Calcite.
//
// Two join-size estimators are provided, reproducing §4.1 of the paper:
//
//   - Legacy: Ignite's original algorithm, including its edge case where a
//     very small input cardinality collapses the join estimate to 1 row.
//     Nested joins then chain N×1 estimates, which later makes the planner
//     pick nested-loop joins for what are really N×M joins.
//   - SwamiSchiefer (Equation 3): |A⋈B| = |A|·|B| / max(d_A, d_B), where
//     d_A and d_B are the distinct-value counts of the join columns.
package stats

import (
	"math"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/types"
)

// Default selectivities used when no statistics apply; they follow
// Calcite's RelMdUtil conventions.
const (
	defaultEqSel    = 0.15
	defaultRangeSel = 0.5
	defaultLikeSel  = 0.25
	defaultOtherSel = 0.25
	// defaultRowCount stands in for an unknown base-table cardinality —
	// the NO-OP provider fallback.
	defaultRowCount = 1000
	// legacySmallInput is the "very small" input threshold that triggers
	// the legacy estimator's collapse-to-1 edge case.
	legacySmallInput = 1.5
)

// Estimator derives row counts and distinct-value counts for logical
// plans.
type Estimator struct {
	Provider catalog.StatsProvider
	// LegacyJoin selects Ignite's original join-size estimation with the
	// collapse-to-1 edge case (the IC baseline). When false, Equation 3
	// is used.
	LegacyJoin bool
	// Misestimate, when non-zero and not 1, scales every join-size
	// estimate by the factor — the misestimation-injection knob for the
	// adaptive-execution experiments (DESIGN.md §17). Values below 1 make
	// the planner under-estimate join outputs (the failure mode that
	// under-partitions or over-broadcasts big intermediates); values
	// above 1 over-estimate them. Base-table cardinalities stay exact,
	// matching the paper's finding that join-size estimation is where the
	// plans go wrong.
	Misestimate float64
}

// New returns an estimator backed by the given provider.
func New(p catalog.StatsProvider, legacyJoin bool) *Estimator {
	return &Estimator{Provider: p, LegacyJoin: legacyJoin}
}

// RowCount estimates the output cardinality of a plan node.
func (e *Estimator) RowCount(n logical.Node) float64 {
	switch t := n.(type) {
	case *logical.Scan:
		rc := e.Provider.RowCount(t.Table.Name)
		if rc <= 0 {
			return defaultRowCount
		}
		return float64(rc)
	case *logical.Values:
		return float64(len(t.Rows))
	case *logical.Filter:
		in := e.RowCount(t.Input)
		return clampRows(in * e.Selectivity(t.Cond, t.Input))
	case *logical.Project:
		return e.RowCount(t.Input)
	case *logical.Limit:
		return math.Min(float64(t.N), e.RowCount(t.Input))
	case *logical.Sort:
		return e.RowCount(t.Input)
	case *logical.Aggregate:
		return e.aggregateRows(t)
	case *logical.Join:
		return e.joinRows(t)
	default:
		return defaultRowCount
	}
}

func clampRows(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}

func (e *Estimator) aggregateRows(a *logical.Aggregate) float64 {
	if len(a.GroupBy) == 0 {
		return 1
	}
	in := e.RowCount(a.Input)
	groups := 1.0
	for _, g := range a.GroupBy {
		groups *= math.Max(1, e.NDV(a.Input, g))
	}
	// Groups cannot exceed the input cardinality.
	return clampRows(math.Min(groups, in))
}

// misScale applies the misestimation-injection factor to a join-size
// estimate (identity when the knob is unset).
func (e *Estimator) misScale(rows float64) float64 {
	if e.Misestimate > 0 && e.Misestimate != 1 {
		return rows * e.Misestimate
	}
	return rows
}

// joinRows dispatches between the legacy and Equation 3 estimators.
func (e *Estimator) joinRows(j *logical.Join) float64 {
	left := e.RowCount(j.Left)
	right := e.RowCount(j.Right)
	switch j.Type {
	case logical.JoinSemi:
		return clampRows(e.misScale(left * defaultRangeSel))
	case logical.JoinAnti:
		return clampRows(e.misScale(left * (1 - defaultRangeSel)))
	}

	keys, rest := expr.SplitJoinCondition(j.Cond, len(j.Left.Schema()))
	var out float64
	if e.LegacyJoin {
		out = e.legacyJoinRows(left, right, keys, j)
	} else {
		out = e.swamiSchieferRows(left, right, keys, j)
	}
	// Residual non-equi conjuncts scale the estimate down.
	for range rest {
		out *= defaultRangeSel
	}
	out = e.misScale(out)
	if j.Type == logical.JoinLeft {
		out = math.Max(out, left)
	}
	return clampRows(out)
}

// legacyJoinRows reproduces the IC baseline behaviour. The paper found
// the original Ignite estimator "as good or better" than Equation 3 in
// general — its defect was a single edge case: when either input of an
// equi-join is estimated as very small, the join result collapses to
// exactly 1 row (§4.1). Chains of joins each inherit this 1, steering the
// planner toward N×1 nested-loop joins that are really N×M at runtime.
func (e *Estimator) legacyJoinRows(left, right float64, keys []expr.EquiKey, j *logical.Join) float64 {
	if len(keys) == 0 {
		return left * right
	}
	if left <= legacySmallInput || right <= legacySmallInput {
		return 1
	}
	return e.swamiSchieferRows(left, right, keys, j)
}

// swamiSchieferRows implements Equation 3 over the first equi key (extra
// keys multiply in as independent 1/max(d) factors).
func (e *Estimator) swamiSchieferRows(left, right float64, keys []expr.EquiKey, j *logical.Join) float64 {
	if len(keys) == 0 {
		return left * right
	}
	out := left * right
	for _, k := range keys {
		dA := e.NDV(j.Left, k.Left)
		dB := e.NDV(j.Right, k.Right)
		d := math.Max(dA, dB)
		if d < 1 {
			d = 1
		}
		out /= d
	}
	return out
}

// NDV estimates the number of distinct values of an output column.
func (e *Estimator) NDV(n logical.Node, col int) float64 {
	switch t := n.(type) {
	case *logical.Scan:
		ndv := e.Provider.NDV(t.Table.Name, t.Table.Columns[col].Name)
		if ndv <= 0 {
			// NO-OP fallback: assume the column is close to unique.
			return e.RowCount(n)
		}
		return float64(ndv)
	case *logical.Filter:
		// Filtering can only reduce distinct counts; cap by output rows.
		return math.Min(e.NDV(t.Input, col), e.RowCount(t))
	case *logical.Project:
		if c, ok := t.Exprs[col].(*expr.ColRef); ok {
			return e.NDV(t.Input, c.Index)
		}
		return e.RowCount(t)
	case *logical.Join:
		leftW := len(t.Left.Schema())
		var base float64
		if col < leftW {
			base = e.NDV(t.Left, col)
		} else if !t.Type.ProjectsLeftOnly() {
			base = e.NDV(t.Right, col-leftW)
		} else {
			base = e.RowCount(t)
		}
		return math.Min(base, e.RowCount(t))
	case *logical.Aggregate:
		if col < len(t.GroupBy) {
			return math.Min(e.NDV(t.Input, t.GroupBy[col]), e.RowCount(t))
		}
		return e.RowCount(t)
	case *logical.Sort:
		return e.NDV(t.Input, col)
	case *logical.Limit:
		return math.Min(e.NDV(t.Input, col), float64(t.N))
	case *logical.Values:
		return float64(len(t.Rows))
	default:
		return e.RowCount(n)
	}
}

// Selectivity estimates the fraction of input rows a predicate keeps.
func (e *Estimator) Selectivity(pred expr.Expr, input logical.Node) float64 {
	if expr.IsLiteralTrue(pred) {
		return 1
	}
	if expr.IsLiteralFalse(pred) {
		return 0
	}
	switch p := pred.(type) {
	case *expr.BinOp:
		switch p.Op {
		case expr.OpAnd:
			return e.conjunctionSelectivity(expr.SplitConjuncts(pred), input)
		case expr.OpOr:
			l, r := e.Selectivity(p.L, input), e.Selectivity(p.R, input)
			return math.Min(1, l+r-l*r)
		case expr.OpEq:
			return e.eqSelectivity(p, input)
		case expr.OpNe:
			return 1 - e.eqSelectivity(p, input)
		case expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return e.rangeSelectivity(p, input)
		default:
			return defaultOtherSel
		}
	case *expr.Not:
		return 1 - e.Selectivity(p.E, input)
	case *expr.Like:
		return defaultLikeSel
	case *expr.InList:
		// Each list item behaves like an equality.
		col, ok := p.E.(*expr.ColRef)
		per := defaultEqSel
		if ok {
			if ndv := e.NDV(input, col.Index); ndv >= 1 {
				per = 1 / ndv
			}
		}
		sel := math.Min(1, per*float64(len(p.List)))
		if p.Negate {
			return 1 - sel
		}
		return sel
	case *expr.IsNull:
		if p.Negate {
			return 0.9
		}
		return 0.1
	default:
		return defaultOtherSel
	}
}

// conjunctionSelectivity multiplies conjunct selectivities, but first
// pairs opposite-direction range bounds on the same column into window
// estimates: `d >= a AND d < b` over a known [min, max] is (b-a)/(max-min),
// which the independence assumption would wildly overestimate (the TPC-H
// date windows are ~1/84 of the span, not 0.25).
func (e *Estimator) conjunctionSelectivity(conjuncts []expr.Expr, input logical.Node) float64 {
	type bounds struct {
		lower, upper *float64
		scale        float64 // max-min
		count        int
	}
	windows := make(map[int]*bounds)
	var rest []expr.Expr
	for _, c := range conjuncts {
		b, ok := c.(*expr.BinOp)
		if !ok || !(b.Op == expr.OpLt || b.Op == expr.OpLe || b.Op == expr.OpGt || b.Op == expr.OpGe) {
			rest = append(rest, c)
			continue
		}
		col, lit, op := asColLit(b)
		if col == nil || lit.IsNull() {
			rest = append(rest, c)
			continue
		}
		mn, mx, ok := e.minMaxOf(input, col.Index)
		if !ok || !comparableRange(mn, lit) || mx.Float() <= mn.Float() {
			rest = append(rest, c)
			continue
		}
		w := windows[col.Index]
		if w == nil {
			w = &bounds{scale: mx.Float() - mn.Float()}
			// Initialize to the column's full range.
			lo, hi := mn.Float(), mx.Float()
			w.lower, w.upper = &lo, &hi
			windows[col.Index] = w
		}
		v := lit.Float()
		switch op {
		case expr.OpGe, expr.OpGt:
			if v > *w.lower {
				*w.lower = v
			}
		default:
			if v < *w.upper {
				*w.upper = v
			}
		}
		w.count++
	}
	sel := 1.0
	for _, w := range windows {
		frac := (*w.upper - *w.lower) / w.scale
		if frac < 0.001 {
			frac = 0.001
		}
		if frac > 1 {
			frac = 1
		}
		sel *= frac
	}
	for _, c := range rest {
		sel *= e.Selectivity(c, input)
	}
	return sel
}

// rangeSelectivity refines comparison selectivity using min/max column
// statistics (interpolation under a uniformity assumption) when one side
// is a plain column reference and the other a constant. This is what
// statistics-enabled Ignite does; without statistics the Calcite default
// of 0.5 applies.
func (e *Estimator) rangeSelectivity(p *expr.BinOp, input logical.Node) float64 {
	col, lit, op := asColLit(p)
	if col == nil {
		return defaultRangeSel
	}
	mn, mx, ok := e.minMaxOf(input, col.Index)
	if !ok || lit.IsNull() || !comparableRange(mn, lit) {
		return defaultRangeSel
	}
	lo, hi, v := mn.Float(), mx.Float(), lit.Float()
	if hi <= lo {
		return defaultRangeSel
	}
	frac := (v - lo) / (hi - lo)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	// "col < v" keeps frac; "col > v" keeps 1-frac.
	var sel float64
	switch op {
	case expr.OpLt, expr.OpLe:
		sel = frac
	default:
		sel = 1 - frac
	}
	// Keep a floor so chained range conjuncts never hit exactly zero.
	if sel < 0.001 {
		sel = 0.001
	}
	return sel
}

// asColLit matches `col op const` or `const op col` (commuting the
// operator), returning nil when the shape does not match.
func asColLit(p *expr.BinOp) (*expr.ColRef, types.Value, expr.Op) {
	if c, ok := p.L.(*expr.ColRef); ok && expr.IsConstant(p.R) {
		return c, expr.Fold(p.R).(*expr.Lit).Val, p.Op
	}
	if c, ok := p.R.(*expr.ColRef); ok && expr.IsConstant(p.L) {
		return c, expr.Fold(p.L).(*expr.Lit).Val, p.Op.Commute()
	}
	return nil, types.Null, p.Op
}

func comparableRange(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	switch a.K {
	case types.KindInt, types.KindFloat, types.KindDate:
		return b.K == types.KindInt || b.K == types.KindFloat || b.K == types.KindDate
	default:
		return false
	}
}

// minMaxOf resolves a column's value range through the plan, mirroring
// NDV's provenance tracking.
func (e *Estimator) minMaxOf(n logical.Node, col int) (types.Value, types.Value, bool) {
	switch t := n.(type) {
	case *logical.Scan:
		return e.Provider.MinMax(t.Table.Name, t.Table.Columns[col].Name)
	case *logical.Filter:
		return e.minMaxOf(t.Input, col)
	case *logical.Project:
		if c, ok := t.Exprs[col].(*expr.ColRef); ok {
			return e.minMaxOf(t.Input, c.Index)
		}
	case *logical.Join:
		leftW := len(t.Left.Schema())
		if col < leftW {
			return e.minMaxOf(t.Left, col)
		}
		if !t.Type.ProjectsLeftOnly() {
			return e.minMaxOf(t.Right, col-leftW)
		}
	case *logical.Sort:
		return e.minMaxOf(t.Input, col)
	case *logical.Limit:
		return e.minMaxOf(t.Input, col)
	case *logical.Aggregate:
		if col < len(t.GroupBy) {
			return e.minMaxOf(t.Input, t.GroupBy[col])
		}
	}
	return types.Null, types.Null, false
}

// eqSelectivity refines equality selectivity with column NDV when one side
// is a plain column reference.
func (e *Estimator) eqSelectivity(p *expr.BinOp, input logical.Node) float64 {
	if c, ok := p.L.(*expr.ColRef); ok && expr.IsConstant(p.R) {
		if ndv := e.NDV(input, c.Index); ndv >= 1 {
			return 1 / ndv
		}
	}
	if c, ok := p.R.(*expr.ColRef); ok && expr.IsConstant(p.L) {
		if ndv := e.NDV(input, c.Index); ndv >= 1 {
			return 1 / ndv
		}
	}
	return defaultEqSel
}
