package stats

import (
	"math"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/types"
)

// fakeStats is a canned provider.
type fakeStats struct {
	rows map[string]int64
	ndv  map[string]int64 // "table.column"
}

func (f fakeStats) RowCount(t string) int64 { return f.rows[t] }
func (f fakeStats) NDV(t, c string) int64   { return f.ndv[t+"."+c] }
func (f fakeStats) MinMax(t, c string) (types.Value, types.Value, bool) {
	return types.Null, types.Null, false
}

func tbl(name string, cols ...string) *catalog.Table {
	t := &catalog.Table{Name: name, PrimaryKey: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c, Kind: types.KindInt})
	}
	return t
}

func provider() fakeStats {
	return fakeStats{
		rows: map[string]int64{"orders": 10000, "lineitem": 60000, "nation": 25},
		ndv: map[string]int64{
			"orders.o_orderkey": 10000, "orders.o_custkey": 1000,
			"lineitem.l_orderkey": 10000, "lineitem.l_suppkey": 100,
			"nation.n_nationkey": 25,
		},
	}
}

func TestScanRowCountAndFallback(t *testing.T) {
	e := New(provider(), false)
	scan := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	if got := e.RowCount(scan); got != 10000 {
		t.Errorf("scan rows = %v", got)
	}
	unknown := logical.NewScan(tbl("mystery", "x"), "")
	if got := e.RowCount(unknown); got != defaultRowCount {
		t.Errorf("fallback rows = %v", got)
	}
}

func TestFilterSelectivity(t *testing.T) {
	e := New(provider(), false)
	scan := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	// Equality on o_custkey: NDV 1000 → sel 1/1000 → 10 rows.
	pred := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(1, types.KindInt, "o_custkey"),
		expr.NewLit(types.NewInt(5)))
	f := logical.NewFilter(scan, pred)
	if got := e.RowCount(f); math.Abs(got-10) > 0.01 {
		t.Errorf("eq filter rows = %v, want 10", got)
	}
	// Range: 0.5.
	rangePred := expr.NewBinOp(expr.OpLt,
		expr.NewColRef(0, types.KindInt, ""), expr.NewLit(types.NewInt(5)))
	if got := e.RowCount(logical.NewFilter(scan, rangePred)); got != 5000 {
		t.Errorf("range filter rows = %v", got)
	}
	// AND multiplies.
	both := expr.NewBinOp(expr.OpAnd, pred, rangePred)
	if got := e.RowCount(logical.NewFilter(scan, both)); math.Abs(got-5) > 0.01 {
		t.Errorf("and filter rows = %v", got)
	}
}

func TestSelectivityKinds(t *testing.T) {
	e := New(provider(), false)
	scan := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	col := expr.NewColRef(0, types.KindInt, "")
	cases := []struct {
		pred expr.Expr
		want float64
	}{
		{expr.NewLike(expr.NewColRef(1, types.KindString, ""), "x%", false), defaultLikeSel},
		{expr.NewIsNull(col, false), 0.1},
		{expr.NewIsNull(col, true), 0.9},
		{expr.True, 1},
		{expr.False, 0},
		{expr.NewNot(expr.NewLike(expr.NewColRef(1, types.KindString, ""), "x%", false)), 1 - defaultLikeSel},
	}
	for _, c := range cases {
		if got := e.Selectivity(c.pred, scan); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("sel(%s) = %v, want %v", c.pred, got, c.want)
		}
	}
	// OR: union estimate.
	a := expr.NewBinOp(expr.OpLt, col, expr.NewLit(types.NewInt(1)))
	or := expr.NewBinOp(expr.OpOr, a, a)
	if got := e.Selectivity(or, scan); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("or sel = %v, want 0.75", got)
	}
}

func joinOf(e *Estimator, leftRows ...int) *logical.Join {
	orders := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	line := logical.NewScan(tbl("lineitem", "l_orderkey", "l_suppkey"), "")
	cond := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(0, types.KindInt, ""), // o_orderkey
		expr.NewColRef(2, types.KindInt, "")) // l_orderkey (offset by left width 2)
	return logical.NewJoin(orders, line, logical.JoinInner, cond)
}

func TestSwamiSchieferJoinEstimate(t *testing.T) {
	e := New(provider(), false)
	j := joinOf(e)
	// |A|=10000, |B|=60000, max(d)=10000 → 60000.
	if got := e.RowCount(j); math.Abs(got-60000) > 1 {
		t.Errorf("eq3 estimate = %v, want 60000", got)
	}
}

func TestLegacyJoinCollapseBug(t *testing.T) {
	e := New(provider(), true)
	// A filtered input estimated at ~1 row triggers the collapse.
	orders := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	tiny := logical.NewFilter(orders, expr.NewBinOp(expr.OpEq,
		expr.NewColRef(0, types.KindInt, "o_orderkey"), expr.NewLit(types.NewInt(7))))
	line := logical.NewScan(tbl("lineitem", "l_orderkey", "l_suppkey"), "")
	cond := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(2, types.KindInt, ""))
	j := logical.NewJoin(tiny, line, logical.JoinInner, cond)
	if got := e.RowCount(j); got != 1 {
		t.Fatalf("legacy collapse estimate = %v, want 1", got)
	}
	// Chained joins inherit the 1 — the paper's N×1 chain.
	j2 := logical.NewJoin(j, logical.NewScan(tbl("nation", "n_nationkey"), ""),
		logical.JoinInner, expr.NewBinOp(expr.OpEq,
			expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(4, types.KindInt, "")))
	if got := e.RowCount(j2); got != 1 {
		t.Errorf("chained legacy estimate = %v, want 1", got)
	}
	// Equation 3 does not collapse: 10000/10000 * 60000/10000... with the
	// filter, |A|≈1, |B|=60000, d=10000 → ~6 rows.
	e3 := New(provider(), false)
	if got := e3.RowCount(j); got < 2 {
		t.Errorf("eq3 estimate = %v, want > 1", got)
	}
}

func TestCrossJoinEstimate(t *testing.T) {
	e := New(provider(), false)
	a := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	b := logical.NewScan(tbl("nation", "n_nationkey"), "")
	j := logical.NewJoin(a, b, logical.JoinInner, expr.True)
	if got := e.RowCount(j); got != 250000 {
		t.Errorf("cross join = %v, want 250000", got)
	}
}

func TestSemiAntiEstimates(t *testing.T) {
	e := New(provider(), false)
	a := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	b := logical.NewScan(tbl("nation", "n_nationkey"), "")
	semi := logical.NewJoin(a, b, logical.JoinSemi, expr.True)
	anti := logical.NewJoin(a, b, logical.JoinAnti, expr.True)
	sr, ar := e.RowCount(semi), e.RowCount(anti)
	if sr <= 0 || sr > 10000 || ar <= 0 || ar > 10000 {
		t.Errorf("semi=%v anti=%v", sr, ar)
	}
}

func TestAggregateEstimate(t *testing.T) {
	e := New(provider(), false)
	line := logical.NewScan(tbl("lineitem", "l_orderkey", "l_suppkey"), "")
	// Group by l_suppkey: 100 groups.
	agg := logical.NewAggregate(line, []int{1}, nil)
	if got := e.RowCount(agg); got != 100 {
		t.Errorf("group rows = %v", got)
	}
	// Scalar aggregate: 1 row.
	scalar := logical.NewAggregate(line, nil, []expr.AggCall{{Func: expr.AggCount}})
	if got := e.RowCount(scalar); got != 1 {
		t.Errorf("scalar agg rows = %v", got)
	}
}

func TestLimitSortProjectEstimates(t *testing.T) {
	e := New(provider(), false)
	line := logical.NewScan(tbl("lineitem", "l_orderkey", "l_suppkey"), "")
	if got := e.RowCount(logical.NewLimit(line, 10)); got != 10 {
		t.Errorf("limit rows = %v", got)
	}
	if got := e.RowCount(logical.NewSort(line, nil)); got != 60000 {
		t.Errorf("sort rows = %v", got)
	}
	proj := logical.IdentityProject(line, []int{0})
	if got := e.RowCount(proj); got != 60000 {
		t.Errorf("project rows = %v", got)
	}
	if got := e.NDV(proj, 0); got != 10000 {
		t.Errorf("project ndv = %v", got)
	}
}

func TestNDVThroughJoin(t *testing.T) {
	e := New(provider(), false)
	j := joinOf(e)
	if got := e.NDV(j, 1); got != 1000 { // o_custkey from left
		t.Errorf("join left ndv = %v", got)
	}
	if got := e.NDV(j, 3); got != 100 { // l_suppkey from right
		t.Errorf("join right ndv = %v", got)
	}
}

// rangeStats is a provider with min/max information.
type rangeStats struct {
	fakeStats
	min, max map[string]int64
}

func (r rangeStats) MinMax(t, c string) (types.Value, types.Value, bool) {
	k := t + "." + c
	mn, ok1 := r.min[k]
	mx, ok2 := r.max[k]
	if !ok1 || !ok2 {
		return types.Null, types.Null, false
	}
	return types.NewInt(mn), types.NewInt(mx), true
}

func TestRangeSelectivityInterpolates(t *testing.T) {
	prov := rangeStats{
		fakeStats: provider(),
		min:       map[string]int64{"orders.o_orderkey": 0},
		max:       map[string]int64{"orders.o_orderkey": 10000},
	}
	e := New(prov, false)
	scan := logical.NewScan(tbl("orders", "o_orderkey", "o_custkey"), "")
	col := expr.NewColRef(0, types.KindInt, "o_orderkey")
	// o_orderkey < 1000 over [0, 10000] → 10%.
	lt := expr.NewBinOp(expr.OpLt, col, expr.NewLit(types.NewInt(1000)))
	if got := e.Selectivity(lt, scan); math.Abs(got-0.1) > 0.01 {
		t.Errorf("sel(< 1000) = %v, want 0.1", got)
	}
	// o_orderkey > 9000 → 10%.
	gt := expr.NewBinOp(expr.OpGt, col, expr.NewLit(types.NewInt(9000)))
	if got := e.Selectivity(gt, scan); math.Abs(got-0.1) > 0.01 {
		t.Errorf("sel(> 9000) = %v, want 0.1", got)
	}
	// Constant on the left commutes: 9000 < col ≡ col > 9000.
	rev := expr.NewBinOp(expr.OpLt, expr.NewLit(types.NewInt(9000)), col)
	if got := e.Selectivity(rev, scan); math.Abs(got-0.1) > 0.01 {
		t.Errorf("sel(9000 < col) = %v, want 0.1", got)
	}
	// Out-of-range literals clamp (with the non-zero floor).
	over := expr.NewBinOp(expr.OpGt, col, expr.NewLit(types.NewInt(99999)))
	if got := e.Selectivity(over, scan); got > 0.01 {
		t.Errorf("sel(> max) = %v, want ~0", got)
	}
	// Opposite-direction bounds on the same column combine into a window
	// estimate: [5000, 5500] over [0, 10000] → 5% (the TPC-H date-window
	// shape; naive independence would say 27.5%).
	ge := expr.NewBinOp(expr.OpGe, col, expr.NewLit(types.NewInt(5000)))
	le := expr.NewBinOp(expr.OpLe, col, expr.NewLit(types.NewInt(5500)))
	window := expr.NewBinOp(expr.OpAnd, ge, le)
	if got := e.Selectivity(window, scan); math.Abs(got-0.05) > 0.005 {
		t.Errorf("window sel = %v, want 0.05", got)
	}
	// Without min/max, the Calcite default applies.
	noStats := New(provider(), false)
	if got := noStats.Selectivity(lt, scan); got != defaultRangeSel {
		t.Errorf("fallback sel = %v, want %v", got, defaultRangeSel)
	}
}
