package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gignite/internal/types"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{1, 2, 3, 4}
	if err := WriteFrame(&buf, FrameQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameQuery || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: type=%#x payload=%v", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameCancel, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameCancel || len(payload) != 0 {
		t.Fatalf("empty frame: type=%#x payload=%v", typ, payload)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameQuery, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null,
		types.NewInt(-42),
		types.NewInt(1 << 60),
		types.NewFloat(3.14159),
		types.NewFloat(-0.0),
		types.NewString(""),
		types.NewString("hello, world"),
		types.NewBool(true),
		types.NewBool(false),
		types.DateFromYMD(1998, 12, 1),
	}
	var enc Encoder
	for _, v := range vals {
		enc.Value(v)
	}
	dec := NewDecoder(enc.Bytes())
	for i, want := range vals {
		got := dec.Value()
		if dec.Err() != nil {
			t.Fatalf("value %d: %v", i, dec.Err())
		}
		if got != want {
			t.Fatalf("value %d: got %#v want %#v", i, got, want)
		}
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over", dec.Remaining())
	}
}

func TestRowRoundTrip(t *testing.T) {
	row := types.Row{types.NewInt(7), types.NewString("x"), types.Null}
	var enc Encoder
	enc.Row(row)
	dec := NewDecoder(enc.Bytes())
	got := dec.Row()
	if dec.Err() != nil {
		t.Fatal(dec.Err())
	}
	if len(got) != len(row) {
		t.Fatalf("row length %d want %d", len(got), len(row))
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("col %d: got %#v want %#v", i, got[i], row[i])
		}
	}
}

func TestDecoderStickyError(t *testing.T) {
	dec := NewDecoder([]byte{0x01})
	_ = dec.U32() // truncated
	if dec.Err() == nil {
		t.Fatal("truncated read did not set the error")
	}
	// Subsequent reads stay safe and zero-valued.
	if v := dec.U64(); v != 0 {
		t.Fatalf("read after error returned %d", v)
	}
	if s := dec.Str(); s != "" {
		t.Fatalf("read after error returned %q", s)
	}
}

func TestDecoderBogusStringLength(t *testing.T) {
	var enc Encoder
	enc.U32(1 << 30) // announced length far past the payload
	dec := NewDecoder(enc.Bytes())
	if s := dec.Str(); s != "" || dec.Err() == nil {
		t.Fatalf("bogus string length: %q err=%v", s, dec.Err())
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	payload := EncodeError(CodeOverloaded, "engine overloaded")
	se := DecodeError(payload)
	if se.Code != CodeOverloaded || se.Message != "engine overloaded" {
		t.Fatalf("decoded %+v", se)
	}
	if se.Error() == "" {
		t.Fatal("empty error text")
	}
	// Malformed payloads decode to a protocol error, never panic.
	if se := DecodeError([]byte{0xFF}); se.Code != CodeProtocol {
		t.Fatalf("malformed error frame decoded to %+v", se)
	}
}
