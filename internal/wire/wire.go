// Package wire defines gignite's client/server wire protocol v1: a
// length-prefixed binary framing with typed messages, shared by the
// server (internal/server) and the database/sql driver (package driver).
//
// Framing (DESIGN.md §16):
//
//	uint32 big-endian  frame length = 1 (type byte) + len(payload)
//	uint8              frame type
//	[]byte             payload
//
// The payload is a flat big-endian encoding: fixed-width integers,
// uint32-length-prefixed strings, and tagged scalar values mirroring
// types.Value (one kind byte followed by the payload). The codec carries
// no per-field tags or versioning — the handshake pins the protocol
// version, and any layout change bumps Version.
//
// The package depends only on types and the standard library so the
// driver can be linked without pulling in the engine.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"gignite/internal/types"
)

// Magic opens every Hello frame ("GIG1").
const Magic uint32 = 0x47494731

// Version is the protocol version this codec speaks.
const Version uint8 = 1

// DefaultMaxFrame bounds one frame's size (16 MiB) unless the reader
// overrides it; a peer announcing a larger frame is a protocol error,
// not an allocation.
const DefaultMaxFrame = 16 << 20

// Frame types. Client-to-server types have the high bit clear,
// server-to-client types have it set.
const (
	// FrameHello opens a connection: magic u32, version u8, auth token
	// string. The server answers HelloOK or Error.
	FrameHello uint8 = 0x01
	// FrameQuery runs one SQL statement: sql string.
	FrameQuery uint8 = 0x02
	// FrameParse prepares a statement server-side: stmt id u32, sql
	// string. The server answers ParseOK or Error.
	FrameParse uint8 = 0x03
	// FrameExecute runs a prepared statement: stmt id u32, arg count u16,
	// args as tagged values.
	FrameExecute uint8 = 0x04
	// FrameCloseStmt discards a prepared statement: stmt id u32.
	FrameCloseStmt uint8 = 0x05
	// FrameCancel cancels the in-flight query on this connection (empty
	// payload). The canceled query terminates with Error/CodeCanceled.
	FrameCancel uint8 = 0x06
	// FrameQuit closes the session cleanly (empty payload).
	FrameQuit uint8 = 0x07

	// FrameHelloOK acknowledges the handshake: version u8, session id u64.
	FrameHelloOK uint8 = 0x81
	// FrameRowHeader starts a result stream: column count u16, names.
	FrameRowHeader uint8 = 0x82
	// FrameRowBatch carries rows: row count u16, rows (each: value count
	// u16, tagged values).
	FrameRowBatch uint8 = 0x83
	// FrameDone ends a successful result stream: row count u64, modeled
	// nanos i64, flags u8 (FlagPlanningSkipped).
	FrameDone uint8 = 0x84
	// FrameError reports a failure: code u16, message string. It
	// terminates any result stream in progress.
	FrameError uint8 = 0x85
	// FrameParseOK acknowledges Parse: stmt id u32, param count u16.
	FrameParseOK uint8 = 0x86
)

// FlagPlanningSkipped marks a Done frame whose query reused a cached or
// prepared plan (ExecStats.PlanningSkipped).
const FlagPlanningSkipped uint8 = 1 << 0

// Error codes carried by FrameError. The driver maps them back onto the
// engine's typed sentinels so errors.Is works across the wire.
const (
	// CodeInternal is any failure without a more specific code (planning
	// errors, binder errors, execution faults).
	CodeInternal uint16 = 1
	// CodeOverloaded maps gignite.ErrOverloaded (admission shed, pool
	// exhausted).
	CodeOverloaded uint16 = 2
	// CodeMemExceeded maps gignite.ErrMemoryExceeded.
	CodeMemExceeded uint16 = 3
	// CodeTimeout maps gignite.ErrQueryTimeout / context deadline.
	CodeTimeout uint16 = 4
	// CodeCanceled reports a query terminated by FrameCancel or client
	// disconnect.
	CodeCanceled uint16 = 5
	// CodeClosing reports the server draining or the engine closed.
	CodeClosing uint16 = 6
	// CodeAuth reports a rejected handshake token.
	CodeAuth uint16 = 7
	// CodeProtocol reports a malformed or unexpected frame.
	CodeProtocol uint16 = 8
	// CodeTooManyConns reports the MaxConns limit.
	CodeTooManyConns uint16 = 9
	// CodeUnknownStmt reports Execute/CloseStmt naming an unknown id.
	CodeUnknownStmt uint16 = 10
)

// ErrFrameTooLarge reports a frame announcing a length past the
// reader's bound.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// WriteFrame writes one frame. It buffers header+payload into a single
// Write so frames are never interleaved by a racing writer that forgot
// its lock (the caller still must serialize writers).
func WriteFrame(w io.Writer, typ uint8, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(1+len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame, bounding the announced length by max
// (DefaultMaxFrame when max <= 0).
func ReadFrame(r io.Reader, max int) (typ uint8, payload []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if int(n) > max {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Encoder builds a frame payload. The zero value is ready to use; Bytes
// returns the accumulated payload.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset clears the encoder for reuse, keeping the backing array.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 appends a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 appends a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 appends a big-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends an IEEE-754 float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a uint32-length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Value appends one tagged scalar.
func (e *Encoder) Value(v types.Value) {
	e.U8(uint8(v.K))
	switch v.K {
	case types.KindNull:
	case types.KindInt, types.KindDate:
		e.I64(v.I)
	case types.KindBool:
		if v.I != 0 {
			e.U8(1)
		} else {
			e.U8(0)
		}
	case types.KindFloat:
		e.F64(v.F)
	case types.KindString:
		e.Str(v.S)
	default:
		// Unknown kinds encode as NULL rather than corrupting the stream;
		// the engine never produces them.
		e.buf[len(e.buf)-1] = uint8(types.KindNull)
	}
}

// Row appends a value-count-prefixed row.
func (e *Encoder) Row(r types.Row) {
	e.U16(uint16(len(r)))
	for _, v := range r {
		e.Value(v)
	}
}

// Decoder consumes a frame payload. Errors are sticky: after the first
// short read every accessor returns zero values and Err reports the
// failure, so message parsers read field-by-field and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many unread bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("wire: payload truncated (want %d bytes, have %d)", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Str reads a uint32-length-prefixed string.
func (d *Decoder) Str() string {
	n := d.U32()
	if d.err != nil {
		return ""
	}
	if int(n) > d.Remaining() {
		d.err = fmt.Errorf("wire: string length %d exceeds remaining payload %d", n, d.Remaining())
		return ""
	}
	return string(d.take(int(n)))
}

// Value reads one tagged scalar.
func (d *Decoder) Value() types.Value {
	k := types.Kind(d.U8())
	if d.err != nil {
		return types.Null
	}
	switch k {
	case types.KindNull:
		return types.Null
	case types.KindInt:
		return types.NewInt(d.I64())
	case types.KindDate:
		return types.NewDate(d.I64())
	case types.KindBool:
		return types.NewBool(d.U8() != 0)
	case types.KindFloat:
		return types.NewFloat(d.F64())
	case types.KindString:
		return types.NewString(d.Str())
	default:
		d.err = fmt.Errorf("wire: unknown value kind %d", uint8(k))
		return types.Null
	}
}

// Row reads a value-count-prefixed row.
func (d *Decoder) Row() types.Row {
	n := d.U16()
	if d.err != nil {
		return nil
	}
	r := make(types.Row, 0, n)
	for i := 0; i < int(n); i++ {
		r = append(r, d.Value())
		if d.err != nil {
			return nil
		}
	}
	return r
}

// ServerError is the decoded form of a FrameError. Both peers use it:
// the server to describe a failure before encoding, the driver as the
// error it returns when no engine sentinel matches the code.
type ServerError struct {
	Code    uint16
	Message string
}

// Error implements error.
func (e *ServerError) Error() string {
	return fmt.Sprintf("gignite server error (code %d): %s", e.Code, e.Message)
}

// EncodeError builds a FrameError payload.
func EncodeError(code uint16, msg string) []byte {
	var enc Encoder
	enc.U16(code)
	enc.Str(msg)
	return enc.Bytes()
}

// DecodeError parses a FrameError payload.
func DecodeError(payload []byte) *ServerError {
	d := NewDecoder(payload)
	code := d.U16()
	msg := d.Str()
	if d.Err() != nil {
		return &ServerError{Code: CodeProtocol, Message: "malformed error frame"}
	}
	return &ServerError{Code: code, Message: msg}
}
