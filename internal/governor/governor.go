// Package governor implements engine-wide resource governance: a FIFO
// admission queue that bounds how many queries execute concurrently, a
// shared memory pool that in-flight queries reserve against through
// per-query leases, and the typed sentinel errors that let callers tell
// load shedding (ErrOverloaded) from a single query blowing its own
// budget (ErrMemoryExceeded).
//
// Admission and memory interact through a watermark: when a shared pool
// is configured, a query is only admitted while the pool has headroom for
// one more query's worth of reservations (the per-query limit, capped at
// the pool size). Queries that cannot be admitted wait in FIFO order up
// to the admission timeout, then are shed with ErrOverloaded — the engine
// degrades by rejecting work it cannot serve instead of falling over.
//
// The governor bounds host resources, which are outside the modeled-time
// determinism contract: whether a query queues or sheds depends on what
// else is in flight. What stays deterministic is the outcome taxonomy —
// an admitted query returns exactly the rows an ungoverned engine would,
// and a rejected query always fails with a typed sentinel, never a
// partial result.
package governor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gignite/internal/obs"
)

// Typed sentinel errors. The engine re-exports both.
var (
	// ErrOverloaded reports load shedding: the admission queue timed out,
	// or an admitted query's reservation found the shared pool exhausted.
	ErrOverloaded = errors.New("governor: engine overloaded")
	// ErrMemoryExceeded reports one query exceeding its own memory budget;
	// only that query aborts, never the process.
	ErrMemoryExceeded = errors.New("governor: query memory limit exceeded")
)

// DefaultAdmissionTimeout bounds how long an over-capacity query waits in
// the admission queue before it is shed (Params.AdmissionTimeout = 0).
const DefaultAdmissionTimeout = 2 * time.Second

// Params configures a Governor. Zero fields disable their control:
// MaxConcurrent <= 0 means unbounded concurrency, PoolBytes <= 0 no
// shared pool, QueryLimitBytes <= 0 no per-query budget.
type Params struct {
	// MaxConcurrent bounds admitted (executing) queries.
	MaxConcurrent int
	// PoolBytes is the shared memory pool all leases reserve from.
	PoolBytes int64
	// QueryLimitBytes caps the bytes one query may charge cumulatively
	// over its lifetime. Charging is deterministic (estimated operator
	// state, not host allocations), so whether a query trips its limit is
	// identical at every worker count.
	QueryLimitBytes int64
	// AdmissionTimeout bounds the queued wait: 0 uses
	// DefaultAdmissionTimeout, negative waits until the context is done.
	AdmissionTimeout time.Duration
}

// Metrics are the observability handles the governor updates; nil fields
// are skipped.
type Metrics struct {
	// Queued tracks queries waiting in the admission queue.
	Queued *obs.Gauge
	// Shed counts queries rejected with ErrOverloaded at admission.
	Shed *obs.Counter
	// Reserved tracks the shared pool's reserved bytes.
	Reserved *obs.Gauge
}

// Governor is the engine-wide resource arbiter. The zero value is not
// valid; use New. A nil *Governor is valid and admits everything.
type Governor struct {
	p Params
	m Metrics

	mu       sync.Mutex
	inflight int
	poolUsed int64
	queue    []*waiter
}

// waiter is one queued admission request. ready is closed (with admitted
// set, both under the governor mutex) when dispatch grants the slot.
type waiter struct {
	ready    chan struct{}
	admitted bool
}

// New creates a governor. It never returns nil even when every control is
// disabled, so callers can gate construction on their own config.
func New(p Params, m Metrics) *Governor {
	return &Governor{p: p, m: m}
}

// Acquire admits one query, blocking in FIFO order while the engine is at
// capacity. It returns the query's memory lease on admission, ctx.Err()
// if the caller gives up while queued (the queue slot is released
// immediately — an abandoned waiter never pins capacity), or
// ErrOverloaded when the admission timeout fires first. A nil governor
// admits immediately with a nil lease (which accepts all reservations).
func (g *Governor) Acquire(ctx context.Context) (*Lease, error) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	if len(g.queue) == 0 && g.admittableLocked() {
		g.inflight++
		g.mu.Unlock()
		return &Lease{g: g}, nil
	}
	w := &waiter{ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.setQueuedLocked()
	g.mu.Unlock()

	var timeout <-chan time.Time
	if d := g.p.AdmissionTimeout; d >= 0 {
		if d == 0 {
			d = DefaultAdmissionTimeout
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		return &Lease{g: g}, nil
	case <-ctx.Done():
		if !g.abandon(w) {
			// Admitted in the race with cancellation: hand the slot back so
			// a live query can take it.
			(&Lease{g: g}).Close()
		}
		return nil, ctx.Err()
	case <-timeout:
		if !g.abandon(w) {
			// Admitted in the race with the shed timer: serve the query.
			return &Lease{g: g}, nil
		}
		if g.m.Shed != nil {
			g.m.Shed.Inc()
		}
		return nil, fmt.Errorf("admission queue wait exceeded %v: %w", g.p.AdmissionTimeout, ErrOverloaded)
	}
}

// abandon removes a still-queued waiter, reporting false when dispatch
// already admitted it (the caller then owns an admission slot and must
// either use it or close a lease to release it).
func (g *Governor) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.admitted {
		return false
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.setQueuedLocked()
	return true
}

// admittableLocked decides whether one more query fits. The memory check
// is a watermark: a new query is assumed to eventually reserve up to its
// per-query limit, so admission waits until that headroom exists. The
// first query is always admitted — an oversized query then fails its own
// reservation rather than deadlocking the queue.
func (g *Governor) admittableLocked() bool {
	if g.p.MaxConcurrent > 0 && g.inflight >= g.p.MaxConcurrent {
		return false
	}
	if g.p.PoolBytes > 0 && g.inflight > 0 {
		if g.poolUsed+g.watermark() > g.p.PoolBytes {
			return false
		}
	}
	return true
}

// watermark is the pool headroom a newly admitted query is assumed to
// need: the per-query limit, capped at (and defaulting to) the pool size.
func (g *Governor) watermark() int64 {
	w := g.p.QueryLimitBytes
	if w <= 0 || w > g.p.PoolBytes {
		w = g.p.PoolBytes
	}
	return w
}

// dispatchLocked admits queued waiters in FIFO order while capacity lasts.
func (g *Governor) dispatchLocked() {
	for len(g.queue) > 0 && g.admittableLocked() {
		w := g.queue[0]
		g.queue = g.queue[1:]
		w.admitted = true
		g.inflight++
		close(w.ready)
	}
	g.setQueuedLocked()
}

func (g *Governor) setQueuedLocked() {
	if g.m.Queued != nil {
		g.m.Queued.Set(float64(len(g.queue)))
	}
}

func (g *Governor) setReservedLocked() {
	if g.m.Reserved != nil {
		g.m.Reserved.Set(float64(g.poolUsed))
	}
}

// Lease is one admitted query's handle on the governor: its admission
// slot plus its memory reservations. Operators Reserve as they accumulate
// state, the scheduler Releases when instances finish, and Close returns
// everything (idempotent). A nil lease accepts all calls and enforces
// nothing — ungoverned engines pass nil leases everywhere.
type Lease struct {
	g *Governor

	mu sync.Mutex
	// live is the currently reserved bytes (what the shared pool sees);
	// total is the cumulative charge (monotone — what the per-query limit
	// is enforced against, so the limit decision is independent of how
	// instance lifetimes overlap at different worker counts).
	live   int64
	total  int64
	peak   int64
	closed bool
}

// Reserve charges bytes against the query's budget and the shared pool.
// It fails with ErrMemoryExceeded when the cumulative charge would pass
// the per-query limit, and with ErrOverloaded when the shared pool has no
// room left; in both cases nothing is charged.
func (l *Lease) Reserve(bytes int64) error {
	if l == nil || l.g == nil || bytes <= 0 {
		return nil
	}
	g := l.g
	l.mu.Lock()
	if lim := g.p.QueryLimitBytes; lim > 0 && l.total+bytes > lim {
		total := l.total
		l.mu.Unlock()
		return fmt.Errorf("%w: %d bytes charged + %d requested > %d budget",
			ErrMemoryExceeded, total, bytes, lim)
	}
	l.total += bytes
	l.live += bytes
	if l.live > l.peak {
		l.peak = l.live
	}
	l.mu.Unlock()

	g.mu.Lock()
	if g.p.PoolBytes > 0 && g.poolUsed+bytes > g.p.PoolBytes {
		used := g.poolUsed
		g.mu.Unlock()
		l.mu.Lock()
		l.total -= bytes
		l.live -= bytes
		l.mu.Unlock()
		return fmt.Errorf("shared memory pool exhausted (%d reserved + %d requested > %d budget): %w",
			used, bytes, g.p.PoolBytes, ErrOverloaded)
	}
	g.poolUsed += bytes
	g.setReservedLocked()
	g.mu.Unlock()
	return nil
}

// Release returns bytes to the shared pool (clamped at the lease's live
// reservation). Freed memory may admit queued queries.
func (l *Lease) Release(bytes int64) {
	if l == nil || l.g == nil || bytes <= 0 {
		return
	}
	l.mu.Lock()
	if bytes > l.live {
		bytes = l.live
	}
	l.live -= bytes
	l.mu.Unlock()
	if bytes == 0 {
		return
	}
	g := l.g
	g.mu.Lock()
	g.poolUsed -= bytes
	if g.poolUsed < 0 {
		g.poolUsed = 0
	}
	g.setReservedLocked()
	g.dispatchLocked()
	g.mu.Unlock()
}

// Close releases any remaining reservation and the admission slot, then
// dispatches queued waiters. Safe to call more than once.
func (l *Lease) Close() {
	if l == nil || l.g == nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	rem := l.live
	l.live = 0
	l.mu.Unlock()
	g := l.g
	g.mu.Lock()
	g.poolUsed -= rem
	if g.poolUsed < 0 {
		g.poolUsed = 0
	}
	g.inflight--
	g.setReservedLocked()
	g.dispatchLocked()
	g.mu.Unlock()
}

// Peak returns the lease's high-water mark of live reservations.
func (l *Lease) Peak() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}

// Charged returns the lease's cumulative charged bytes (the value the
// per-query limit is enforced against).
func (l *Lease) Charged() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
