package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gignite/internal/obs"
)

func TestNilGovernorAdmitsEverything(t *testing.T) {
	var g *Governor
	lease, err := g.Acquire(context.Background())
	if err != nil || lease != nil {
		t.Fatalf("nil governor: lease=%v err=%v", lease, err)
	}
	if err := lease.Reserve(1 << 30); err != nil {
		t.Fatalf("nil lease Reserve: %v", err)
	}
	lease.Release(1 << 30)
	lease.Close()
}

func TestConcurrencyLimitQueuesFIFO(t *testing.T) {
	g := New(Params{MaxConcurrent: 1, AdmissionTimeout: -1}, Metrics{})
	first, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ready := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize enqueue order so FIFO is observable.
			<-ready
			l, err := g.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Close()
		}(i)
		ready <- struct{}{}
		time.Sleep(20 * time.Millisecond) // let waiter i enqueue before i+1
	}
	first.Close()
	wg.Wait()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("admission order = %v, want [1 2]", order)
	}
}

func TestAdmissionTimeoutSheds(t *testing.T) {
	reg := obs.NewRegistry()
	shed := reg.Counter("shed")
	g := New(Params{MaxConcurrent: 1, AdmissionTimeout: 20 * time.Millisecond}, Metrics{Shed: shed})
	first, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire = %v, want ErrOverloaded", err)
	}
	if got := shed.Value(); got != 1 {
		t.Fatalf("shed counter = %v, want 1", got)
	}
}

func TestAbandonedWaiterReleasesSlotImmediately(t *testing.T) {
	g := New(Params{MaxConcurrent: 1, AdmissionTimeout: -1}, Metrics{})
	first, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter enqueue
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not consume the slot the next query needs.
	first.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	l, err := g.Acquire(ctx2)
	if err != nil {
		t.Fatalf("acquire after abandon: %v", err)
	}
	l.Close()
}

func TestPerQueryLimitIsCumulative(t *testing.T) {
	g := New(Params{QueryLimitBytes: 100}, Metrics{})
	l, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Reserve(60); err != nil {
		t.Fatal(err)
	}
	l.Release(60)
	// Released bytes still count against the cumulative budget, so the
	// limit decision does not depend on instance-lifetime overlap.
	if err := l.Reserve(60); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("second reserve = %v, want ErrMemoryExceeded", err)
	}
	if got := l.Charged(); got != 60 {
		t.Fatalf("charged = %d, want 60 (failed reserve must not charge)", got)
	}
	if got := l.Peak(); got != 60 {
		t.Fatalf("peak = %d, want 60", got)
	}
}

func TestPoolExhaustionIsOverload(t *testing.T) {
	reg := obs.NewRegistry()
	reserved := reg.Gauge("reserved")
	g := New(Params{PoolBytes: 100}, Metrics{Reserved: reserved})
	a, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Reserve(80); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve(40); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-pool reserve = %v, want ErrOverloaded", err)
	}
	if got := reserved.Value(); got != 80 {
		t.Fatalf("reserved gauge = %v, want 80", got)
	}
	a.Release(80)
	if err := b.Reserve(40); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
}

func TestMemoryWatermarkGatesAdmission(t *testing.T) {
	g := New(Params{PoolBytes: 100, QueryLimitBytes: 60, AdmissionTimeout: -1}, Metrics{})
	a, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Reserve(60); err != nil {
		t.Fatal(err)
	}
	// 60 reserved + 60 watermark > 100: the second query must wait until
	// the first releases.
	admitted := make(chan *Lease, 1)
	go func() {
		l, err := g.Acquire(context.Background())
		if err != nil {
			t.Errorf("second acquire: %v", err)
		}
		admitted <- l
	}()
	select {
	case <-admitted:
		t.Fatal("second query admitted with no pool headroom")
	case <-time.After(30 * time.Millisecond):
	}
	a.Release(60)
	select {
	case l := <-admitted:
		l.Close()
	case <-time.After(time.Second):
		t.Fatal("second query not admitted after release")
	}
	a.Close()
}

func TestCloseIsIdempotent(t *testing.T) {
	g := New(Params{MaxConcurrent: 1}, Metrics{})
	l, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(10); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close()
	g.mu.Lock()
	inflight, used := g.inflight, g.poolUsed
	g.mu.Unlock()
	if inflight != 0 || used != 0 {
		t.Fatalf("after double close: inflight=%d poolUsed=%d, want 0/0", inflight, used)
	}
}
