// Package server is gignite's network serving layer: a TCP server
// speaking the length-prefixed binary wire protocol of internal/wire
// (DESIGN.md §16). Each connection is one session with its own context,
// prepared-statement namespace and log prefix; queries stream back as
// row batches with natural TCP backpressure, a Cancel frame (or a client
// disconnect) cancels the in-flight query, and Shutdown drains
// gracefully: in-flight queries finish and stream out, then connections
// close.
//
// The server registers its connection metrics (conns_open, conns_total,
// conns_rejected_total, bytes_sent_total, bytes_recv_total,
// frames_total, server_queries_total) in the engine's obs registry, so
// one /metrics endpoint serves the whole process.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gignite"
	"gignite/internal/obs"
	"gignite/internal/wire"
)

// Config tunes the serving layer. The zero value serves on an ephemeral
// loopback port with library defaults.
type Config struct {
	// Addr is the TCP listen address (host:port). Empty means
	// "127.0.0.1:0" — an ephemeral loopback port, the test default.
	Addr string
	// MaxConns bounds concurrently open sessions; excess connections are
	// rejected with a CodeTooManyConns error frame. 0 = unbounded.
	MaxConns int
	// AuthToken, when non-empty, must match the token in the client's
	// Hello frame (the protocol's auth stub). Empty accepts any token.
	AuthToken string
	// IdleTimeout closes sessions that send no frame for this long while
	// no query is in flight (0 = DefaultIdleTimeout; < 0 = no idle bound).
	IdleTimeout time.Duration
	// WriteTimeout bounds each frame write, so a wedged client cannot pin
	// a session forever; slow-but-draining clients are fine because the
	// deadline resets per frame (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration
	// BatchRows is the result-stream batch size in rows
	// (0 = DefaultBatchRows).
	BatchRows int
	// MaxFrameBytes bounds one inbound frame (0 = wire.DefaultMaxFrame).
	MaxFrameBytes int
	// Logger receives server and session log lines; nil logs nothing.
	Logger *Logger
}

// Defaults for Config's zero fields.
const (
	DefaultIdleTimeout      = 5 * time.Minute
	DefaultWriteTimeout     = time.Minute
	DefaultBatchRows        = 256
	DefaultHandshakeTimeout = 10 * time.Second
)

// Server serves one engine over TCP.
type Server struct {
	eng *gignite.Engine
	cfg Config
	log *Logger

	ln     net.Listener
	nextID atomic.Uint64
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[*session]struct{}
	draining bool

	m serverMetrics
}

type serverMetrics struct {
	connsOpen     *obs.Gauge
	connsTotal    *obs.Counter
	connsRejected *obs.Counter
	bytesSent     *obs.Counter
	bytesRecv     *obs.Counter
	frames        *obs.Counter
	queries       *obs.Counter
}

// New wires a server to an engine. Call Listen then Serve.
func New(eng *gignite.Engine, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = DefaultBatchRows
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = wire.DefaultMaxFrame
	}
	reg := eng.Registry()
	return &Server{
		eng:      eng,
		cfg:      cfg,
		log:      cfg.Logger,
		sessions: make(map[*session]struct{}),
		m: serverMetrics{
			connsOpen:     reg.Gauge("conns_open"),
			connsTotal:    reg.Counter("conns_total"),
			connsRejected: reg.Counter("conns_rejected_total"),
			bytesSent:     reg.Counter("bytes_sent_total"),
			bytesRecv:     reg.Counter("bytes_recv_total"),
			frames:        reg.Counter("frames_total"),
			queries:       reg.Counter("server_queries_total"),
		},
	}
}

// Listen binds the configured address. It is separate from Serve so
// callers can learn the bound port (Addr) before accepting traffic.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until the listener closes (Shutdown). It
// returns nil on a clean shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isDraining() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accept(conn)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// accept admits or rejects one raw connection.
func (s *Server) accept(conn net.Conn) {
	s.mu.Lock()
	switch {
	case s.draining:
		s.mu.Unlock()
		s.reject(conn, wire.CodeClosing, "server is draining")
		return
	case s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns:
		s.mu.Unlock()
		s.reject(conn, wire.CodeTooManyConns,
			fmt.Sprintf("connection limit reached (%d)", s.cfg.MaxConns))
		return
	}
	sess := newSession(s, conn, s.nextID.Add(1))
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.m.connsTotal.Inc()
	s.m.connsOpen.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		sess.serve()
		s.dropSession(sess)
	}()
}

// reject answers a connection the server will not serve with a single
// error frame, then closes it.
func (s *Server) reject(conn net.Conn, code uint16, msg string) {
	s.m.connsRejected.Inc()
	_ = conn.SetWriteDeadline(time.Now().Add(DefaultHandshakeTimeout))
	_ = wire.WriteFrame(conn, wire.FrameError, wire.EncodeError(code, msg))
	_ = conn.Close()
}

func (s *Server) dropSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.m.connsOpen.Add(-1)
}

// Shutdown drains the server: the listener closes, idle sessions close
// immediately, and busy sessions finish their in-flight query — result
// stream included — before closing. It returns nil once every session
// has exited. When ctx fires first, remaining sessions are force-closed
// (their queries canceled) and ctx's error is returned. Shutdown does
// not close the engine; callers sequence Engine.Close after it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, sess := range open {
		sess.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.forceClose()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}

// codeFor maps an engine error onto a wire error code, so the driver can
// rebuild the typed sentinel on the other side.
func codeFor(err error) uint16 {
	switch {
	case errors.Is(err, gignite.ErrOverloaded):
		return wire.CodeOverloaded
	case errors.Is(err, gignite.ErrMemoryExceeded):
		return wire.CodeMemExceeded
	case errors.Is(err, gignite.ErrQueryTimeout), errors.Is(err, context.DeadlineExceeded):
		return wire.CodeTimeout
	case errors.Is(err, context.Canceled):
		return wire.CodeCanceled
	case errors.Is(err, gignite.ErrEngineClosed):
		return wire.CodeClosing
	default:
		return wire.CodeInternal
	}
}
