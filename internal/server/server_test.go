package server_test

import (
	"bytes"
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gignite"
	gdriver "gignite/driver"
	"gignite/internal/server"
	"gignite/internal/tpch"
	"gignite/internal/wire"
)

// startServer listens on an ephemeral loopback port and serves eng until
// the test ends.
func startServer(t *testing.T, eng *gignite.Engine, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(eng, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, srv.Addr().String()
}

// tpchEngine loads TPC-H at a small scale factor once per config.
func tpchEngine(t *testing.T, mut func(*gignite.Config)) *gignite.Engine {
	t.Helper()
	cfg := gignite.ICPlus(4)
	if mut != nil {
		mut(&cfg)
	}
	eng := gignite.New(cfg)
	if err := tpch.Setup(eng, 0.005); err != nil {
		t.Fatal(err)
	}
	return eng
}

// renderSQL renders *sql.Rows exactly like types.Row.String renders
// engine rows, so the two sides can be compared byte for byte.
func renderSQL(t *testing.T, rows *sql.Rows) string {
	t.Helper()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	vals := make([]interface{}, len(cols))
	for i := range vals {
		vals[i] = new(interface{})
	}
	for rows.Next() {
		if err := rows.Scan(vals...); err != nil {
			t.Fatal(err)
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = renderValue(*(v.(*interface{})))
		}
		sb.WriteString("[" + strings.Join(parts, ", ") + "]\n")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func renderValue(v interface{}) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case string:
		return x
	case []byte:
		return string(x)
	case time.Time:
		return x.Format("2006-01-02")
	default:
		return fmt.Sprintf("%v", x)
	}
}

func renderEngine(rows []gignite.Row) string {
	var sb strings.Builder
	for _, r := range rows {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestE2EMixedClients runs concurrent driver clients over real TCP and
// checks every result byte-identical against in-process execution.
func TestE2EMixedClients(t *testing.T) {
	eng := tpchEngine(t, nil)
	_, addr := startServer(t, eng, server.Config{})

	ids := []int{1, 3, 10}
	want := make(map[int]string)
	for _, id := range ids {
		res, err := eng.Query(tpch.QueryByID(id).SQL)
		if err != nil {
			t.Fatalf("in-process Q%d: %v", id, err)
		}
		want[id] = renderEngine(res.Rows)
	}

	db := sql.OpenDB(&gdriver.Connector{Addr: addr})
	defer func() { _ = db.Close() }()
	db.SetMaxOpenConns(8)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				id := ids[(i+j)%len(ids)]
				rows, err := db.Query(tpch.QueryByID(id).SQL)
				if err != nil {
					errs <- fmt.Errorf("client %d Q%d: %w", i, id, err)
					return
				}
				got := renderSQL(t, rows)
				if err := rows.Close(); err != nil {
					errs <- err
					return
				}
				if got != want[id] {
					errs <- fmt.Errorf("client %d Q%d: rows differ from in-process execution", i, id)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// slowQuerySQL is an equi-join whose intermediate result is large enough
// to run for a while on loopback hardware, yet bounded: lineitem joined
// to itself on orderkey fans out each order's lines quadratically.
const slowQuerySQL = `SELECT count(*), sum(l1.l_quantity) FROM lineitem l1, lineitem l2, lineitem l3
WHERE l1.l_orderkey = l2.l_orderkey AND l2.l_orderkey = l3.l_orderkey`

// TestMidStreamKillFreesLease kills the client mid-execution and asserts
// the server cancels the query and the governor lease drains back to 0.
func TestMidStreamKillFreesLease(t *testing.T) {
	eng := tpchEngine(t, func(cfg *gignite.Config) {
		cfg.QueryMemLimitBytes = 1 << 40 // turn memory accounting on
		cfg.ExecWorkLimit = -1           // let the join run, not time out
		cfg.ExecRowLimit = 1 << 40
	})
	_, addr := startServer(t, eng, server.Config{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var enc wire.Encoder
	enc.U32(wire.Magic)
	enc.U8(wire.Version)
	enc.Str("")
	if err := wire.WriteFrame(conn, wire.FrameHello, enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn, 0); err != nil || typ != wire.FrameHelloOK {
		t.Fatalf("handshake: type=%#x err=%v", typ, err)
	}
	enc.Reset()
	enc.Str(slowQuerySQL)
	if err := wire.WriteFrame(conn, wire.FrameQuery, enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Let the query get into execution, then kill the connection hard.
	time.Sleep(150 * time.Millisecond)
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		m := eng.Metrics()
		if m.Gauges["queries_inflight"] == 0 && m.Gauges["mem_reserved_bytes"] == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query not reaped after client kill: inflight=%g reserved=%g",
				m.Gauges["queries_inflight"], m.Gauges["mem_reserved_bytes"])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOverloadTypedWireError verifies shed queries surface as
// gignite.ErrOverloaded through the driver.
func TestOverloadTypedWireError(t *testing.T) {
	eng := tpchEngine(t, func(cfg *gignite.Config) {
		cfg.MaxConcurrentQueries = 1
		cfg.AdmissionTimeout = 50 * time.Millisecond
		cfg.ExecWorkLimit = -1
		cfg.ExecRowLimit = 1 << 40
	})
	_, addr := startServer(t, eng, server.Config{})

	db := sql.OpenDB(&gdriver.Connector{Addr: addr})
	defer func() { _ = db.Close() }()
	db.SetMaxOpenConns(4)

	// Occupy the single admission slot with the slow join.
	blocker := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		var n, s interface{}
		blocker <- db.QueryRowContext(ctx, slowQuerySQL).Scan(&n, &s)
	}()

	// Wait until the blocker is admitted.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().Gauges["queries_inflight"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker query never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, err := db.Query(tpch.QueryByID(1).SQL)
	if !errors.Is(err, gignite.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded over the wire, got %v", err)
	}
	cancel()
	<-blocker
}

// TestGracefulDrain verifies Shutdown lets the in-flight query finish
// and stream completely, while new connections are turned away.
func TestGracefulDrain(t *testing.T) {
	eng := tpchEngine(t, nil)
	srv := server.New(eng, server.Config{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	addr := srv.Addr().String()

	db := sql.OpenDB(&gdriver.Connector{Addr: addr})
	defer func() { _ = db.Close() }()
	db.SetMaxOpenConns(1)

	want, err := eng.Query(tpch.QueryByID(3).SQL)
	if err != nil {
		t.Fatal(err)
	}

	// Launch the query, then shut down while it is (likely) in flight.
	type result struct {
		text string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		rows, err := db.Query(tpch.QueryByID(3).SQL)
		if err != nil {
			resCh <- result{err: err}
			return
		}
		text := renderSQL(t, rows)
		resCh <- result{text: text, err: rows.Close()}
	}()
	time.Sleep(10 * time.Millisecond)

	ctx, cancelT := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelT()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight query dropped during drain: %v", r.err)
	}
	if r.text != renderEngine(want.Rows) {
		t.Fatal("drained query returned different rows")
	}

	// The drained server refuses new connections.
	if conn, err := net.Dial("tcp", addr); err == nil {
		_ = conn.Close()
		t.Fatal("listener still accepting after drain")
	}
	// And the engine closes cleanly afterwards.
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close after drain: %v", err)
	}
}

// TestAuthAndConnLimits exercises the handshake auth stub and MaxConns.
func TestAuthAndConnLimits(t *testing.T) {
	eng := tpchEngine(t, nil)
	_, addr := startServer(t, eng, server.Config{AuthToken: "sesame", MaxConns: 1})

	// Wrong token → CodeAuth.
	db := sql.OpenDB(&gdriver.Connector{Addr: addr, Token: "wrong"})
	if err := db.Ping(); err == nil {
		t.Fatal("wrong token accepted")
	}
	_ = db.Close()

	// Right token works; a second concurrent conn is rejected.
	ok := sql.OpenDB(&gdriver.Connector{Addr: addr, Token: "sesame"})
	defer func() { _ = ok.Close() }()
	ok.SetMaxOpenConns(1)
	var one int64
	if err := ok.QueryRow(`SELECT n_nationkey FROM nation WHERE n_nationkey = 1`).Scan(&one); err != nil || one != 1 {
		t.Fatalf("authed query: %v (got %d)", err, one)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	var enc wire.Encoder
	enc.U32(wire.Magic)
	enc.U8(wire.Version)
	enc.Str("sesame")
	if err := wire.WriteFrame(conn, wire.FrameHello, enc.Bytes()); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.FrameError {
		t.Fatalf("second conn admitted past MaxConns=1 (frame %#x)", typ)
	}
	if se := wire.DecodeError(payload); se.Code != wire.CodeTooManyConns {
		t.Fatalf("rejection code = %d, want CodeTooManyConns", se.Code)
	}
}

// TestLoggerNoInterleave hammers one Logger from concurrent writers and
// checks every emitted line is whole and prefixed.
func TestLoggerNoInterleave(t *testing.T) {
	var buf bytes.Buffer
	log := server.NewLogger(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := log.Func(fmt.Sprintf("conn %d", i))
			for j := 0; j < 200; j++ {
				f("query %d finished in %dms with a moderately long log line payload", j, j*3)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 16*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 16*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "[conn ") || !strings.HasSuffix(line, "payload") {
			t.Fatalf("interleaved or unprefixed line: %q", line)
		}
	}
}
