package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gignite"
	"gignite/internal/wire"
)

// session is one client connection: its own read loop, write lock,
// prepared-statement namespace, in-flight query cancel handle and log
// prefix. At most one query is in flight per session (the protocol does
// not pipeline); Cancel and disconnect are handled by the read loop
// while the query goroutine executes and streams.
type session struct {
	srv  *Server
	id   uint64
	conn net.Conn
	br   *bufio.Reader
	log  gignite.LogFunc

	wmu sync.Mutex // serializes frame writes (query stream vs. nothing else while busy)

	mu       sync.Mutex
	busy     bool
	cancel   context.CancelFunc // in-flight query's cancel; nil when idle
	draining bool
	closed   bool

	queryDone chan struct{} // signaled when the in-flight query goroutine exits
	stmts     map[uint32]*gignite.Stmt
	queries   uint64
}

func newSession(s *Server, conn net.Conn, id uint64) *session {
	sess := &session{
		srv:   s,
		id:    id,
		conn:  conn,
		br:    bufio.NewReaderSize(conn, 32<<10),
		stmts: make(map[uint32]*gignite.Stmt),
	}
	if s.log != nil {
		sess.log = s.log.Func(fmt.Sprintf("conn %d", id))
	} else {
		sess.log = func(string, ...interface{}) {}
	}
	return sess
}

// serve runs the session to completion: handshake, then one frame at a
// time until the client quits, errs out, idles out, or the server
// drains. It always leaves the connection closed and the in-flight
// query (if any) canceled and finished.
func (sess *session) serve() {
	defer sess.cleanup()
	if err := sess.handshake(); err != nil {
		sess.log("handshake failed: %v", err)
		return
	}
	sess.log("session opened from %s", sess.conn.RemoteAddr())
	for {
		typ, payload, err := sess.readFrame()
		if err != nil {
			if !sess.isClosed() && !errors.Is(err, net.ErrClosed) {
				sess.log("read: %v", err)
			}
			return
		}
		switch typ {
		case wire.FrameCancel:
			sess.cancelInflight()
		case wire.FrameQuit:
			return
		case wire.FrameQuery:
			d := wire.NewDecoder(payload)
			sql := d.Str()
			if d.Err() != nil {
				sess.protocolError("malformed Query frame: %v", d.Err())
				return
			}
			if !sess.startQuery(func(ctx context.Context) (*gignite.Result, error) {
				return sess.srv.eng.ExecContext(ctx, sql)
			}) {
				return
			}
		case wire.FrameParse:
			if !sess.handleParse(payload) {
				return
			}
		case wire.FrameExecute:
			if !sess.handleExecute(payload) {
				return
			}
		case wire.FrameCloseStmt:
			if !sess.handleCloseStmt(payload) {
				return
			}
		default:
			sess.protocolError("unexpected frame type %#x", typ)
			return
		}
	}
}

// handshake validates the client Hello under a fixed deadline.
func (sess *session) handshake() error {
	_ = sess.conn.SetReadDeadline(time.Now().Add(DefaultHandshakeTimeout))
	typ, payload, err := wire.ReadFrame(sess.br, sess.srv.cfg.MaxFrameBytes)
	if err != nil {
		return err
	}
	sess.srv.m.frames.Inc()
	if typ != wire.FrameHello {
		sess.sendError(wire.CodeProtocol, "expected Hello frame")
		return fmt.Errorf("first frame was %#x, not Hello", typ)
	}
	d := wire.NewDecoder(payload)
	magic := d.U32()
	version := d.U8()
	token := d.Str()
	if d.Err() != nil || magic != wire.Magic {
		sess.sendError(wire.CodeProtocol, "malformed Hello frame")
		return fmt.Errorf("malformed Hello")
	}
	if version != wire.Version {
		sess.sendError(wire.CodeProtocol, fmt.Sprintf("unsupported protocol version %d (server speaks %d)", version, wire.Version))
		return fmt.Errorf("client version %d", version)
	}
	if want := sess.srv.cfg.AuthToken; want != "" && token != want {
		sess.sendError(wire.CodeAuth, "invalid auth token")
		return fmt.Errorf("auth token mismatch")
	}
	var enc wire.Encoder
	enc.U8(wire.Version)
	enc.U64(sess.id)
	return sess.writeFrame(wire.FrameHelloOK, enc.Bytes())
}

// readFrame reads the next client frame. While the session is idle the
// read carries the idle deadline; while a query is in flight the read
// blocks without a deadline (disconnects still surface as read errors),
// so a long query is never mistaken for an idle client. A timeout that
// fires just as a query starts is retried rather than fatal.
func (sess *session) readFrame() (uint8, []byte, error) {
	for {
		if d := sess.srv.cfg.IdleTimeout; d > 0 && !sess.isBusy() {
			_ = sess.conn.SetReadDeadline(time.Now().Add(d))
		} else {
			_ = sess.conn.SetReadDeadline(time.Time{})
		}
		typ, payload, err := sess.readOneFrame()
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() && sess.isBusy() {
			continue
		}
		if err == nil {
			sess.srv.m.frames.Inc()
		}
		return typ, payload, err
	}
}

func (sess *session) readOneFrame() (uint8, []byte, error) {
	typ, payload, err := wire.ReadFrame(sess.br, sess.srv.cfg.MaxFrameBytes)
	if err == nil {
		sess.srv.m.bytesRecv.Add(float64(5 + len(payload)))
	}
	return typ, payload, err
}

func (sess *session) isBusy() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.busy
}

func (sess *session) isClosed() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.closed
}

// handleParse prepares a statement server-side and acknowledges with
// ParseOK. Parse is rejected while a query streams (it would interleave
// frames into the result stream).
func (sess *session) handleParse(payload []byte) bool {
	d := wire.NewDecoder(payload)
	id := d.U32()
	sqlText := d.Str()
	if d.Err() != nil {
		sess.protocolError("malformed Parse frame: %v", d.Err())
		return false
	}
	if sess.isBusy() {
		sess.protocolError("Parse while a query is in flight")
		return false
	}
	stmt, err := sess.srv.eng.Prepare(sqlText)
	if err != nil {
		return sess.sendError(codeFor(err), err.Error()) == nil
	}
	sess.mu.Lock()
	sess.stmts[id] = stmt
	sess.mu.Unlock()
	var enc wire.Encoder
	enc.U32(id)
	enc.U16(uint16(stmt.NumParams()))
	return sess.writeFrame(wire.FrameParseOK, enc.Bytes()) == nil
}

// handleExecute runs a prepared statement with bound arguments.
func (sess *session) handleExecute(payload []byte) bool {
	d := wire.NewDecoder(payload)
	id := d.U32()
	nargs := int(d.U16())
	args := make([]gignite.Value, 0, nargs)
	for i := 0; i < nargs; i++ {
		args = append(args, d.Value())
	}
	if d.Err() != nil {
		sess.protocolError("malformed Execute frame: %v", d.Err())
		return false
	}
	sess.mu.Lock()
	stmt := sess.stmts[id]
	sess.mu.Unlock()
	if stmt == nil {
		return sess.sendError(wire.CodeUnknownStmt, fmt.Sprintf("unknown statement id %d", id)) == nil
	}
	return sess.startQuery(func(ctx context.Context) (*gignite.Result, error) {
		return stmt.QueryContext(ctx, args...)
	})
}

func (sess *session) handleCloseStmt(payload []byte) bool {
	d := wire.NewDecoder(payload)
	id := d.U32()
	if d.Err() != nil {
		sess.protocolError("malformed CloseStmt frame: %v", d.Err())
		return false
	}
	sess.mu.Lock()
	delete(sess.stmts, id)
	sess.mu.Unlock()
	return true
}

// startQuery launches the query goroutine for one request. It reports
// false when the session must close (protocol violation). The read loop
// keeps running while the query executes, so Cancel frames and
// disconnects interrupt it.
func (sess *session) startQuery(run func(context.Context) (*gignite.Result, error)) bool {
	sess.mu.Lock()
	if sess.busy {
		sess.mu.Unlock()
		sess.protocolError("query pipelining is not supported")
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess.busy = true
	sess.cancel = cancel
	done := make(chan struct{})
	sess.queryDone = done
	sess.mu.Unlock()

	sess.srv.m.queries.Inc()
	go func() {
		defer close(done)
		defer cancel()
		res, err := run(ctx)
		if err != nil {
			_ = sess.sendError(codeFor(err), err.Error())
		} else if werr := sess.streamResult(res); werr != nil {
			// The client went away mid-stream; the read loop will see the
			// same condition and close the session.
			sess.log("stream aborted: %v", werr)
			sess.closeConn()
		}
		sess.endQuery()
	}()
	return true
}

// endQuery returns the session to idle; under drain it closes the
// connection now that the in-flight query has fully streamed.
func (sess *session) endQuery() {
	sess.mu.Lock()
	sess.busy = false
	sess.cancel = nil
	sess.queryDone = nil
	sess.queries++
	drainNow := sess.draining
	sess.mu.Unlock()
	if drainNow {
		sess.closeConn()
	}
}

// streamResult writes RowHeader, row batches and Done for one result.
func (sess *session) streamResult(res *gignite.Result) error {
	var enc wire.Encoder
	enc.U16(uint16(len(res.Columns)))
	for _, c := range res.Columns {
		enc.Str(c)
	}
	if err := sess.writeFrame(wire.FrameRowHeader, enc.Bytes()); err != nil {
		return err
	}
	batch := sess.srv.cfg.BatchRows
	for lo := 0; lo < len(res.Rows); lo += batch {
		hi := lo + batch
		if hi > len(res.Rows) {
			hi = len(res.Rows)
		}
		enc.Reset()
		enc.U16(uint16(hi - lo))
		for _, r := range res.Rows[lo:hi] {
			enc.Row(r)
		}
		if err := sess.writeFrame(wire.FrameRowBatch, enc.Bytes()); err != nil {
			return err
		}
	}
	enc.Reset()
	enc.U64(uint64(len(res.Rows)))
	enc.I64(int64(res.Modeled))
	var flags uint8
	if res.Stats.PlanningSkipped {
		flags |= wire.FlagPlanningSkipped
	}
	enc.U8(flags)
	return sess.writeFrame(wire.FrameDone, enc.Bytes())
}

// cancelInflight cancels the in-flight query, if any.
func (sess *session) cancelInflight() {
	sess.mu.Lock()
	cancel := sess.cancel
	sess.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// drain puts the session into drain mode: an idle session closes
// immediately; a busy one closes right after its in-flight query
// finishes streaming (endQuery).
func (sess *session) drain() {
	sess.mu.Lock()
	sess.draining = true
	busy := sess.busy
	sess.mu.Unlock()
	if !busy {
		sess.closeConn()
	}
}

// forceClose abandons graceful drain: the in-flight query is canceled
// and the connection closed.
func (sess *session) forceClose() {
	sess.cancelInflight()
	sess.closeConn()
}

func (sess *session) closeConn() {
	sess.mu.Lock()
	already := sess.closed
	sess.closed = true
	sess.mu.Unlock()
	if !already {
		_ = sess.conn.Close()
	}
}

// cleanup runs when the read loop exits: the in-flight query is
// canceled and awaited so its goroutine never outlives the session,
// then the connection closes.
func (sess *session) cleanup() {
	sess.cancelInflight()
	sess.mu.Lock()
	done := sess.queryDone
	n := sess.queries
	sess.mu.Unlock()
	if done != nil {
		<-done
		sess.mu.Lock()
		n = sess.queries
		sess.mu.Unlock()
	}
	sess.closeConn()
	sess.log("session closed after %d queries", n)
}

// writeFrame serializes one frame onto the connection under the write
// lock and the per-frame write deadline, and accounts the sent bytes.
func (sess *session) writeFrame(typ uint8, payload []byte) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if d := sess.srv.cfg.WriteTimeout; d > 0 {
		_ = sess.conn.SetWriteDeadline(time.Now().Add(d))
	}
	err := wire.WriteFrame(sess.conn, typ, payload)
	if err == nil {
		sess.srv.m.bytesSent.Add(float64(5 + len(payload)))
		sess.srv.m.frames.Inc()
	}
	return err
}

// sendError emits an error frame (stream-terminating from the client's
// point of view).
func (sess *session) sendError(code uint16, msg string) error {
	return sess.writeFrame(wire.FrameError, wire.EncodeError(code, msg))
}

// protocolError logs and reports a protocol violation; the caller then
// closes the session.
func (sess *session) protocolError(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	sess.log("protocol error: %s", msg)
	_ = sess.sendError(wire.CodeProtocol, msg)
}
