package server

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"gignite"
)

// Logger is the serving layer's mutex-guarded log sink. Engine log lines
// (slow-query log) and per-session server lines from concurrent
// connections all funnel through one Logger, so lines from different
// sessions never interleave mid-line: each Printf renders the full line
// — prefix, message, newline — into a private buffer and hands the
// writer exactly one Write under the mutex.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger wraps a writer. A nil writer yields a no-op logger (every
// method is safe on it).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Printf logs one line with the plain "gignited" prefix.
func (l *Logger) Printf(format string, args ...interface{}) {
	l.logf("gignited", format, args...)
}

// Func returns a gignite.LogFunc that prefixes every line with the given
// tag — sessions use "conn N" so a log reader can attribute each line to
// its connection, and the engine gets "engine".
func (l *Logger) Func(prefix string) gignite.LogFunc {
	return func(format string, args ...interface{}) {
		l.logf(prefix, format, args...)
	}
}

func (l *Logger) logf(prefix, format string, args ...interface{}) {
	if l == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if !strings.HasSuffix(msg, "\n") {
		msg += "\n"
	}
	line := "[" + prefix + "] " + msg
	l.mu.Lock()
	_, _ = io.WriteString(l.w, line)
	l.mu.Unlock()
}
