// Package obs is the engine's observability subsystem: a lock-cheap
// metrics registry (counters, gauges, histograms) for cumulative engine
// telemetry, and per-query observation records — per-operator runtime
// statistics and distributed trace spans — collected by the executor and
// the cluster scheduler.
//
// Determinism contract (see DESIGN.md §12): everything derived from the
// executed rows — per-operator row counts, batches, build sizes, modeled
// work, span counts and span ordering — is identical at every host worker
// count, because instances record into private buffers that the wave
// barrier merges in deterministic job order. Wall-clock fields (operator
// wall time, span start/end offsets) are measurements of the host and are
// explicitly outside the contract.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 accumulated with atomic
// compare-and-swap on the bit pattern; Add never takes a lock.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter.
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-write-wins float64 (e.g. in-flight query count uses
// Add with ±1).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge (CAS loop, lock-free).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (upper-bound
// inclusive, +Inf implicit). Observe is lock-free: one atomic add on the
// bucket plus the sum/count counters.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	sum    Counter
	n      atomic.Uint64
}

// DefaultTimeBuckets are seconds-scale bounds suited to both modeled and
// wall query times (1 ms … ~17 min).
func DefaultTimeBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300, 1000}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Registry is a named collection of metrics. Lookup takes a short RWMutex
// critical section; callers on hot paths hold the returned handle and
// never touch the registry again.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// given bucket upper bounds (ignored if the histogram already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	r.histograms[name] = h
	return h
}

// Bucket is one histogram bucket in a snapshot. Le is the inclusive upper
// bound (+Inf for the overflow bucket); Count is non-cumulative.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders Le as a string ("+Inf" for the overflow bucket,
// Prometheus style), since JSON has no infinity literal.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, suitable for JSON or
// text export. Map iteration order is made deterministic by Text.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.n.Load(), Sum: h.sum.Value()}
		for i := range h.counts {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: h.counts[i].Load()})
		}
		s.Histograms[name] = hs
	}
	return s
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Text renders the snapshot as sorted "name value" lines (counters and
// gauges) plus one line per histogram with count/sum/buckets.
func (s Snapshot) Text() string {
	var sb strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&sb, "%s %g\n", name, s.Counters[name])
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(&sb, "%s %g\n", name, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "%s count=%d sum=%g", name, h.Count, h.Sum)
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, " le%g=%d", b.Le, b.Count)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, counters and
// gauges as bare samples, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`. The serving layer's /metrics endpoint
// returns exactly this.
func (s Snapshot) Prometheus() string {
	var sb strings.Builder
	for _, name := range sortedNames(s.Counters) {
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %s\n", name, name, promFloat(s.Counters[name]))
	}
	for _, name := range sortedNames(s.Gauges) {
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(s.Gauges[name]))
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.Le, 1) {
				le = promFloat(b.Le)
			}
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(&sb, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count)
	}
	return sb.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedNames(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
