package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"gignite/internal/physical"
)

// OpStats is the runtime record of one physical operator within one
// fragment, aggregated over the fragment's successful instance
// executions. Row counts, batches, build sizes and modeled work are
// deterministic across host worker counts; WallNanos is host measurement.
type OpStats struct {
	// Op is the operator's Describe() line.
	Op string `json:"op"`
	// EstRows is the planner's cardinality estimate for the operator.
	EstRows float64 `json:"est_rows"`
	// RowsIn counts input rows consumed (for scans: partition rows read
	// before variant splitting; for receivers: rows received).
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts output rows produced, summed across instances — the
	// "actual" side of the estimate-vs-actual report.
	RowsOut int64 `json:"rows_out"`
	// Batches counts transport batches consumed (receivers only).
	Batches int64 `json:"batches,omitempty"`
	// BuildRows counts hash-table build-side rows (hash joins only;
	// hash-aggregate group counts equal RowsOut).
	BuildRows int64 `json:"build_rows,omitempty"`
	// PeakRows is the spill-free memory high-water mark in rows: the
	// largest single materialization (output or build table) any one
	// instance of this operator held.
	PeakRows int64 `json:"peak_rows"`
	// RowsPruned counts rows a runtime join filter dropped at this
	// operator's output before they were batched or shipped (DESIGN.md
	// §13). RowsOut already excludes them.
	RowsPruned int64 `json:"rows_pruned,omitempty"`
	// PeakMemBytes is the governed-memory high-water mark: the most
	// estimated state bytes any one instance of this operator charged
	// against its query's memory lease (DESIGN.md §14). Zero when the
	// operator holds no pipeline-breaking state.
	PeakMemBytes int64 `json:"peak_mem_bytes,omitempty"`
	// Work is the modeled executor work charged by this operator itself
	// (children excluded).
	Work float64 `json:"work"`
	// WallNanos is cumulative host wall time inclusive of children
	// (outside the determinism contract).
	WallNanos int64 `json:"wall_ns"`
}

// FragmentObs is the per-fragment view: one OpStats per operator in
// pre-order (root first), plus the instance count that contributed.
type FragmentObs struct {
	Frag int  `json:"frag"`
	Root bool `json:"root,omitempty"`
	// Instances counts successful fragment instances merged into Ops.
	Instances int `json:"instances"`
	// Ops holds the fragment's operators in pre-order walk order.
	Ops []*OpStats `json:"ops"`
	// OpIndex maps the fragment's plan nodes to indices in Ops. It is a
	// runtime navigation aid (EXPLAIN ANALYZE rendering), not exported.
	OpIndex map[physical.Node]int `json:"-"`
}

// NewFragmentObs walks a fragment's operator tree in pre-order, assigning
// dense operator ids and capturing each operator's description and
// planner estimate. A DAG-shared node keeps its first id.
func NewFragmentObs(frag int, root bool, planRoot physical.Node) *FragmentObs {
	fo := &FragmentObs{Frag: frag, Root: root, OpIndex: make(map[physical.Node]int)}
	physical.Walk(planRoot, func(n physical.Node) bool {
		if _, seen := fo.OpIndex[n]; seen {
			return false
		}
		fo.OpIndex[n] = len(fo.Ops)
		fo.Ops = append(fo.Ops, &OpStats{Op: n.Describe(), EstRows: n.Props().EstRows})
		return true
	})
	return fo
}

// InstanceObs is the private recorder of one fragment instance attempt:
// one slot per operator id. Instances never share an InstanceObs, so
// recording needs no synchronization; the wave barrier merges successful
// attempts in deterministic job order.
type InstanceObs struct {
	Ops []OpStats
}

// NewInstanceObs creates a recorder sized for a fragment.
func NewInstanceObs(fo *FragmentObs) *InstanceObs {
	return &InstanceObs{Ops: make([]OpStats, len(fo.Ops))}
}

// Merge folds one successful instance's records into the fragment view.
func (fo *FragmentObs) Merge(in *InstanceObs) {
	fo.Instances++
	fo.mergeOps(in)
}

// MergeExtra folds an auxiliary execution's records (the runtime-filter
// pre-pass running a fragment's build subtree) into the fragment view
// without counting a fragment instance: the build operators' actuals show
// up in EXPLAIN ANALYZE, but Instances keeps meaning "full fragment
// executions".
func (fo *FragmentObs) MergeExtra(in *InstanceObs) { fo.mergeOps(in) }

func (fo *FragmentObs) mergeOps(in *InstanceObs) {
	for i := range in.Ops {
		src, dst := &in.Ops[i], fo.Ops[i]
		dst.RowsIn += src.RowsIn
		dst.RowsOut += src.RowsOut
		dst.Batches += src.Batches
		dst.BuildRows += src.BuildRows
		dst.RowsPruned += src.RowsPruned
		dst.Work += src.Work
		dst.WallNanos += src.WallNanos
		if src.PeakRows > dst.PeakRows {
			dst.PeakRows = src.PeakRows
		}
		if src.PeakMemBytes > dst.PeakMemBytes {
			dst.PeakMemBytes = src.PeakMemBytes
		}
	}
}

// SpanStatus is the outcome of one fragment-instance attempt.
type SpanStatus string

// Span statuses.
const (
	// SpanOK: the attempt succeeded and its outputs were kept.
	SpanOK SpanStatus = "ok"
	// SpanRetried: the attempt failed with a retryable fault and a later
	// attempt took over (its shipments were rolled back).
	SpanRetried SpanStatus = "retried"
	// SpanSkipped: the target host was already known dead, so the attempt
	// failed over immediately without executing (zero-cost recovery).
	SpanSkipped SpanStatus = "skipped"
	// SpanFailed: the attempt failed terminally.
	SpanFailed SpanStatus = "failed"
	// SpanHedged: the attempt lost a hedged race — either the primary
	// superseded by a faster speculative replica attempt, or the
	// speculative attempt the primary outran. Its shipments were rolled
	// back (DESIGN.md §14).
	SpanHedged SpanStatus = "hedged"
	// SpanReplan: not an instance attempt — an adaptive re-planning pass
	// at a wave barrier (DESIGN.md §17). Frag/Site/Host are -1; Wave is
	// the completed wave; Ordinal counts the re-plan passes. Emitted only
	// when AdaptiveExec is on, so static executions keep the invariant
	// spans == instances + retries + hedges.
	SpanReplan SpanStatus = "replan"
)

// Span is one fragment-instance attempt in the per-query distributed
// trace. Start/End are wall-clock offsets from the query's start; the
// span set and its ordering are deterministic, the offsets are not.
type Span struct {
	Frag    int `json:"frag"`
	Site    int `json:"site"`
	Host    int `json:"host"`
	Variant int `json:"variant"`
	Attempt int `json:"attempt"`
	// Ordinal is the instance's deterministic global sequence number (the
	// same ordinal fault plans address).
	Ordinal int `json:"ordinal"`
	// Wave is the scheduler wave the instance ran in.
	Wave       int        `json:"wave"`
	StartNanos int64      `json:"start_ns"`
	EndNanos   int64      `json:"end_ns"`
	Status     SpanStatus `json:"status"`
	// Hedge marks a speculative straggler attempt launched by the hedging
	// scheduler. Each launched hedge adds exactly one Hedge span, keeping
	// the invariant spans == instances + retries + hedges.
	Hedge bool   `json:"hedge,omitempty"`
	Error string `json:"error,omitempty"`
}

// Edge is one exchange edge of the fragment DAG: producer fragment →
// consumer fragment over an exchange id.
type Edge struct {
	Exchange int `json:"exchange"`
	FromFrag int `json:"from_frag"`
	ToFrag   int `json:"to_frag"`
	// Rows/Bytes total the exchange's shipped volume (retained resends
	// excluded: discarded batches are rolled back before the totals are
	// taken). Runtime-filter pruning shows up here as fewer shipped rows.
	Rows  int64 `json:"rows"`
	Bytes int64 `json:"bytes"`
}

// QueryObs is the complete observation record of one query: the trace
// (spans parented under the query, connected by exchange edges) and the
// per-fragment, per-operator runtime statistics.
type QueryObs struct {
	// QueryID is the engine's query sequence number.
	QueryID uint64 `json:"query_id"`
	// Label is an optional short name (benchmark query id).
	Label string `json:"label,omitempty"`
	// SQL is the query text.
	SQL string `json:"sql,omitempty"`
	// PlanDigest is a stable hash of the fragmented physical plan text.
	PlanDigest string `json:"plan_digest,omitempty"`
	// Began is the query's wall-clock start (span offsets are relative).
	Began time.Time `json:"began"`
	// WallNanos is the query's host wall time.
	WallNanos int64 `json:"wall_ns"`
	// ModeledNanos is the simnet cost-clock response time.
	ModeledNanos int64 `json:"modeled_ns"`
	// Fragments is indexed by fragment id.
	Fragments []*FragmentObs `json:"fragments"`
	// Spans holds one span per fragment-instance attempt, in
	// deterministic job order.
	Spans []Span `json:"spans"`
	// Edges lists the exchange edges of the fragment DAG.
	Edges []Edge `json:"edges"`
	// Filters holds one record per runtime join filter the query built
	// (empty when Config.RuntimeFilters is off or no join was eligible).
	Filters []FilterObs `json:"filters,omitempty"`
	// Replans lists the adaptive plan changes applied at wave barriers,
	// in barrier order (empty when AdaptiveExec is off or no trigger
	// fired). Each re-planning pass also adds one SpanReplan span.
	Replans []Replan `json:"replans,omitempty"`
}

// Replan is one adaptive plan change applied at a wave barrier
// (DESIGN.md §17): a pending fragment's operator switched strategy based
// on observed runtime statistics from completed fragments.
type Replan struct {
	// Wave is the completed wave whose barrier triggered the change.
	Wave int `json:"wave"`
	// Frag is the pending fragment whose plan changed.
	Frag int `json:"frag"`
	// Kind names the trigger: "dist-flip" (partitioned↔broadcast),
	// "build-swap" (hash-join build side), "variant-regrade" (parallelism
	// split).
	Kind string `json:"kind"`
	// Op describes the operator after the change.
	Op string `json:"op"`
	// From/To are the strategy labels before and after.
	From string `json:"from"`
	To   string `json:"to"`
	// EstRows is the planner's estimate and ActRows the runtime actual
	// that fired the trigger (est-vs-act in EXPLAIN ANALYZE).
	EstRows float64 `json:"est_rows"`
	ActRows int64   `json:"act_rows"`
}

// FilterObs is the runtime record of one join filter: what was built in
// the pre-pass and what it pruned on the probe side (DESIGN.md §13).
type FilterObs struct {
	ID int `json:"id"`
	// JoinFrag/ProbeFrag/Exchange key the filter to plan identity.
	JoinFrag  int `json:"join_frag"`
	ProbeFrag int `json:"probe_frag"`
	Exchange  int `json:"exchange"`
	// Keys is the distinct build-key count across all sites (the union
	// filter's population); BuildRows the build rows consumed.
	Keys      int   `json:"keys"`
	BuildRows int64 `json:"build_rows"`
	// Bytes is the modeled control-plane shipment: every per-site filter
	// plus the union filter.
	Bytes int64 `json:"bytes"`
	// RowsTested/RowsPruned aggregate the probe-side filter applications
	// (node-level and sender-level).
	RowsTested int64 `json:"rows_tested"`
	RowsPruned int64 `json:"rows_pruned"`
}

// Selectivity is the fraction of tested rows that passed (1.0 when
// nothing was tested).
func (f *FilterObs) Selectivity() float64 {
	if f.RowsTested == 0 {
		return 1
	}
	return float64(f.RowsTested-f.RowsPruned) / float64(f.RowsTested)
}

// JSON renders the full observation record.
func (q *QueryObs) JSON() ([]byte, error) { return json.MarshalIndent(q, "", "  ") }

// TopOp identifies one operator in a ranking.
type TopOp struct {
	Frag int
	Op   string
	// Work is the operator's own modeled work; WallNanos its inclusive
	// host wall time.
	Work      float64
	WallNanos int64
}

// TopOperators returns the k operators with the most self modeled work
// (the deterministic notion of "operator time"), ties broken by fragment
// then operator order so the ranking is stable.
func (q *QueryObs) TopOperators(k int) []TopOp {
	var all []TopOp
	for _, fo := range q.Fragments {
		if fo == nil {
			continue
		}
		for _, op := range fo.Ops {
			all = append(all, TopOp{Frag: fo.Frag, Op: op.Op, Work: op.Work, WallNanos: op.WallNanos})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].Work > all[b].Work })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// chromeEvent is one Chrome trace_event (the about://tracing and Perfetto
// import format, "X" complete events plus "M" metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders one or more query traces as a Chrome trace_event
// file ({"traceEvents": [...]}): one process per query, one thread per
// site, one complete event per span. Load it in Perfetto or
// chrome://tracing.
func ChromeTrace(queries []*QueryObs) ([]byte, error) {
	var events []chromeEvent
	for i, q := range queries {
		pid := q.QueryID
		if pid == 0 {
			pid = uint64(i + 1)
		}
		name := q.Label
		if name == "" {
			name = fmt.Sprintf("query %d", pid)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
		for _, s := range q.Spans {
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("frag%d v%d a%d (%s)", s.Frag, s.Variant, s.Attempt, s.Status),
				Ph:   "X",
				Ts:   float64(s.StartNanos) / 1e3,
				Dur:  float64(s.EndNanos-s.StartNanos) / 1e3,
				Pid:  pid,
				Tid:  s.Host,
				Args: map[string]any{
					"site": s.Site, "ordinal": s.Ordinal, "wave": s.Wave,
					"status": string(s.Status), "error": s.Error,
				},
			})
		}
	}
	return json.MarshalIndent(map[string]any{"traceEvents": events}, "", " ")
}
