package obs

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeConcurrent hammers one counter and one gauge from many
// goroutines (run under -race in CI) and checks the totals are exact —
// the CAS loops must not lose updates.
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", DefaultTimeBuckets())
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Add(1)
				g.Add(-1)
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counters["c"]; got != workers*perWorker {
		t.Errorf("counter = %g, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["g"]; got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	if got := s.Histograms["h"].Count; got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRegistryNoGoroutines: the registry must not spawn goroutines — it
// is pure shared memory.
func TestRegistryNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Counter("x").Inc()
		r.Gauge("y").Set(float64(i))
		r.Histogram("z", []float64{1, 10}).Observe(float64(i))
	}
	_ = r.Snapshot()
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("registry spawned goroutines: %d before, %d after", before, after)
	}
}

// TestHistogramBuckets checks bucket assignment (upper-bound inclusive)
// and the +Inf overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []uint64{2, 2, 0, 1} // le1, le10, le100, +Inf
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le %g): count %d, want %d", i, b.Le, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[3].Le, 1) {
		t.Errorf("overflow bucket bound = %g, want +Inf", s.Buckets[3].Le)
	}
}

// TestSnapshotJSON: snapshots must marshal cleanly (the +Inf bucket bound
// needs the string encoding) and round-trip the counts.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("h", []float64{1}).Observe(2)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if !strings.Contains(string(data), `"+Inf"`) {
		t.Errorf("JSON missing +Inf bucket: %s", data)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

// TestSnapshotTextDeterministic: two snapshots of the same state render
// identical sorted text.
func TestSnapshotTextDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
	}
	r.Gauge("g").Set(2)
	a, b := r.Snapshot().Text(), r.Snapshot().Text()
	if a != b {
		t.Errorf("text not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.HasPrefix(a, "alpha 1\n") {
		t.Errorf("text not sorted:\n%s", a)
	}
}

// TestFragmentMerge: merging two instance records sums flows and takes
// the max of the high-water mark.
func TestFragmentMerge(t *testing.T) {
	fo := &FragmentObs{Frag: 1, Ops: []*OpStats{{Op: "Scan", EstRows: 100}}}
	a := &InstanceObs{Ops: []OpStats{{RowsIn: 10, RowsOut: 5, Work: 2, PeakRows: 7}}}
	b := &InstanceObs{Ops: []OpStats{{RowsIn: 20, RowsOut: 15, Work: 3, PeakRows: 4}}}
	fo.Merge(a)
	fo.Merge(b)
	op := fo.Ops[0]
	if fo.Instances != 2 || op.RowsIn != 30 || op.RowsOut != 20 || op.Work != 5 {
		t.Errorf("merge totals wrong: %+v (instances=%d)", op, fo.Instances)
	}
	if op.PeakRows != 7 {
		t.Errorf("PeakRows = %d, want max 7", op.PeakRows)
	}
}

// TestTopOperators: ranking is by self work, descending, stable.
func TestTopOperators(t *testing.T) {
	q := &QueryObs{Fragments: []*FragmentObs{
		{Frag: 0, Ops: []*OpStats{{Op: "Sort", Work: 5}, {Op: "Scan", Work: 50}}},
		{Frag: 1, Ops: []*OpStats{{Op: "Join", Work: 20}}},
	}}
	top := q.TopOperators(2)
	if len(top) != 2 || top[0].Op != "Scan" || top[1].Op != "Join" {
		t.Errorf("TopOperators = %+v", top)
	}
}

// TestChromeTrace: the export is a valid trace_event document with one
// "X" event per span plus process metadata.
func TestChromeTrace(t *testing.T) {
	q := &QueryObs{
		QueryID: 7, Label: "Q3",
		Spans: []Span{
			{Frag: 1, Site: 2, Host: 2, StartNanos: 100, EndNanos: 400, Status: SpanOK},
			{Frag: 1, Site: 3, Host: 3, StartNanos: 50, EndNanos: 90, Status: SpanRetried, Error: "crash"},
		},
	}
	data, err := ChromeTrace([]*QueryObs{q})
	if err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // 1 metadata + 2 spans
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[1]["ph"] != "X" {
		t.Errorf("event phases wrong: %+v", doc.TraceEvents)
	}
}
