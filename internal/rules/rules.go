// Package rules implements the logical rewrite rules applied by the
// HepPlanner stage and by the VolcanoPlanner's logical phase. A rule
// consumes one operator and produces a semantically equivalent operator
// (§3.1); the planner engines drive them to a fixpoint.
//
// The rule set reproduces the paper's planner analysis:
//
//   - the filter pushdown family, including FILTER_CORRELATE — the rule
//     §4.1 found missing from Ignite's first optimization stage. Without
//     it, filters cannot cross joins produced by subquery decorrelation
//     and execute near the root instead of near the leaves.
//   - join-condition simplification (§5.2): common conjuncts are pulled
//     out of OR-of-AND join predicates so they can become cheap filters or
//     equi-join keys.
package rules

import (
	"gignite/internal/expr"
	"gignite/internal/logical"
)

// Rule is one rewrite. Apply returns the (possibly) rewritten node and
// whether anything changed. Rules fire on single nodes; the planner
// engines walk the tree.
type Rule interface {
	Name() string
	Apply(n logical.Node) (logical.Node, bool)
}

// Config gates the optional rules, mirroring the IC / IC+ system variants.
type Config struct {
	// FilterCorrelate enables pushing filters past decorrelated joins —
	// the missing-rule fix of §4.1. The IC baseline runs without it.
	FilterCorrelate bool
	// JoinConditionSimplification enables the §5.2 rewrite.
	JoinConditionSimplification bool
}

// Stage1Groups returns the three HepPlanner rule groups of Ignite's first
// optimization stage (§3.2.1): guaranteed-win logical transformations.
func Stage1Groups(cfg Config) [][]Rule {
	groupA := []Rule{
		constantFold{},
		filterMerge{},
		projectRemove{},
	}
	groupB := []Rule{
		filterProjectTranspose{},
		filterIntoJoin{filterCorrelate: cfg.FilterCorrelate},
		joinPushConditions{},
		filterSortTranspose{},
		filterAggregateTranspose{},
		projectMerge{},
		filterMerge{},
	}
	groupC := []Rule{
		filterMerge{},
		filterIntoJoin{filterCorrelate: cfg.FilterCorrelate},
		joinPushConditions{},
		projectRemove{},
		constantFold{},
	}
	return [][]Rule{groupA, groupB, groupC}
}

// LogicalPhaseRules returns the VolcanoPlanner logical-phase rule list
// (the IC+ two-phase split of §4.3 puts 20 logical rules here; the §5.2
// simplification rule was added to this phase).
func LogicalPhaseRules(cfg Config) []Rule {
	rs := []Rule{
		constantFold{},
		filterMerge{},
		filterProjectTranspose{},
		filterIntoJoin{filterCorrelate: cfg.FilterCorrelate},
		joinPushConditions{},
		filterSortTranspose{},
		filterAggregateTranspose{},
		projectMerge{},
		projectRemove{},
	}
	if cfg.JoinConditionSimplification {
		rs = append(rs, joinConditionSimplify{})
	}
	return rs
}

// ---------------------------------------------------------------------------
// constantFold

type constantFold struct{}

func (constantFold) Name() string { return "ConstantFold" }

func (constantFold) Apply(n logical.Node) (logical.Node, bool) {
	switch t := n.(type) {
	case *logical.Filter:
		folded := expr.Fold(t.Cond)
		if expr.Digest(folded) != expr.Digest(t.Cond) {
			return logical.NewFilter(t.Input, folded), true
		}
	case *logical.Join:
		folded := expr.Fold(t.Cond)
		if expr.Digest(folded) != expr.Digest(t.Cond) {
			nj := logical.NewJoin(t.Left, t.Right, t.Type, folded)
			nj.FromCorrelate = t.FromCorrelate
			return nj, true
		}
	case *logical.Project:
		changed := false
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = expr.Fold(e)
			if expr.Digest(exprs[i]) != expr.Digest(e) {
				changed = true
			}
		}
		if changed {
			return logical.NewProject(t.Input, exprs, t.Names), true
		}
	}
	return n, false
}

// ---------------------------------------------------------------------------
// filterMerge: Filter(Filter(x, a), b) → Filter(x, a AND b)

type filterMerge struct{}

func (filterMerge) Name() string { return "FilterMerge" }

func (filterMerge) Apply(n logical.Node) (logical.Node, bool) {
	f, ok := n.(*logical.Filter)
	if !ok {
		return n, false
	}
	inner, ok := f.Input.(*logical.Filter)
	if !ok {
		return n, false
	}
	return logical.NewFilter(inner.Input, expr.NewBinOp(expr.OpAnd, inner.Cond, f.Cond)), true
}

// ---------------------------------------------------------------------------
// projectRemove: drop identity projections

type projectRemove struct{}

func (projectRemove) Name() string { return "ProjectRemove" }

func (projectRemove) Apply(n logical.Node) (logical.Node, bool) {
	p, ok := n.(*logical.Project)
	if !ok || !p.IsTrivial() {
		return n, false
	}
	// Only drop when the names also survive (the top-level projection
	// carries user-facing names that must not vanish).
	in := p.Input.Schema()
	for i, f := range p.Schema() {
		if f.Name != in[i].Name {
			return n, false
		}
	}
	return p.Input, true
}

// ---------------------------------------------------------------------------
// projectMerge: Project(Project(x)) → Project(x) with substituted exprs

type projectMerge struct{}

func (projectMerge) Name() string { return "ProjectMerge" }

func (projectMerge) Apply(n logical.Node) (logical.Node, bool) {
	p, ok := n.(*logical.Project)
	if !ok {
		return n, false
	}
	inner, ok := p.Input.(*logical.Project)
	if !ok {
		return n, false
	}
	exprs := make([]expr.Expr, len(p.Exprs))
	for i, e := range p.Exprs {
		exprs[i] = substituteCols(e, inner.Exprs)
	}
	return logical.NewProject(inner.Input, exprs, p.Names), true
}

// substituteCols replaces each column reference with the corresponding
// expression from defs.
func substituteCols(e expr.Expr, defs []expr.Expr) expr.Expr {
	return expr.Transform(e, func(n expr.Expr) expr.Expr {
		if c, ok := n.(*expr.ColRef); ok {
			return defs[c.Index]
		}
		return n
	})
}

// ---------------------------------------------------------------------------
// filterProjectTranspose: Filter(Project(x), c) → Project(Filter(x, c'))

type filterProjectTranspose struct{}

func (filterProjectTranspose) Name() string { return "FilterProjectTranspose" }

func (filterProjectTranspose) Apply(n logical.Node) (logical.Node, bool) {
	f, ok := n.(*logical.Filter)
	if !ok {
		return n, false
	}
	p, ok := f.Input.(*logical.Project)
	if !ok {
		return n, false
	}
	pushed := substituteCols(f.Cond, p.Exprs)
	return logical.NewProject(logical.NewFilter(p.Input, pushed), p.Exprs, p.Names), true
}

// ---------------------------------------------------------------------------
// filterSortTranspose: Filter(Sort(x)) → Sort(Filter(x)); also hoists
// filters above Limit never (unsound), so only Sort is handled.

type filterSortTranspose struct{}

func (filterSortTranspose) Name() string { return "FilterSortTranspose" }

func (filterSortTranspose) Apply(n logical.Node) (logical.Node, bool) {
	f, ok := n.(*logical.Filter)
	if !ok {
		return n, false
	}
	s, ok := f.Input.(*logical.Sort)
	if !ok {
		return n, false
	}
	return logical.NewSort(logical.NewFilter(s.Input, f.Cond), s.Keys), true
}

// ---------------------------------------------------------------------------
// filterAggregateTranspose: push conjuncts that reference only group
// columns below the aggregate.

type filterAggregateTranspose struct{}

func (filterAggregateTranspose) Name() string { return "FilterAggregateTranspose" }

func (filterAggregateTranspose) Apply(n logical.Node) (logical.Node, bool) {
	f, ok := n.(*logical.Filter)
	if !ok {
		return n, false
	}
	a, ok := f.Input.(*logical.Aggregate)
	if !ok {
		return n, false
	}
	var pushable, kept []expr.Expr
	for _, c := range expr.SplitConjuncts(f.Cond) {
		if expr.ColumnsUsed(c).AllBelow(len(a.GroupBy)) {
			pushable = append(pushable, c)
		} else {
			kept = append(kept, c)
		}
	}
	if len(pushable) == 0 {
		return n, false
	}
	// Output group column i is input column a.GroupBy[i].
	mapping := make([]int, len(a.GroupBy))
	copy(mapping, a.GroupBy)
	pushed := make([]expr.Expr, len(pushable))
	for i, c := range pushable {
		pushed[i] = expr.Remap(c, mapping)
	}
	newAgg := logical.NewAggregate(
		logical.NewFilter(a.Input, expr.Conjunction(pushed)), a.GroupBy, a.Aggs)
	if len(kept) == 0 {
		return newAgg, true
	}
	return logical.NewFilter(newAgg, expr.Conjunction(kept)), true
}

// ---------------------------------------------------------------------------
// filterIntoJoin: classify filter conjuncts against the join inputs and
// push them down / into the join condition.

type filterIntoJoin struct {
	// filterCorrelate permits crossing decorrelated joins (§4.1's
	// FILTER_CORRELATE). Without it the rule does not fire on such joins.
	filterCorrelate bool
}

func (filterIntoJoin) Name() string { return "FilterIntoJoin" }

func (r filterIntoJoin) Apply(n logical.Node) (logical.Node, bool) {
	f, ok := n.(*logical.Filter)
	if !ok {
		return n, false
	}
	j, ok := f.Input.(*logical.Join)
	if !ok {
		return n, false
	}
	if j.FromCorrelate && !r.filterCorrelate {
		// The missing-rule baseline: the filter stays above the
		// correlation.
		return n, false
	}
	leftW := len(j.Left.Schema())
	var toLeft, toRight, toJoin, kept []expr.Expr
	for _, c := range expr.SplitConjuncts(f.Cond) {
		switch expr.ClassifyPredicate(c, leftW) {
		case "left":
			toLeft = append(toLeft, c)
		case "right":
			if j.Type == logical.JoinInner {
				toRight = append(toRight, expr.Shift(c, 0, -leftW))
			} else {
				// Right-side conjuncts cannot cross left/semi/anti joins
				// from above (they would change NULL-padding semantics or
				// reference non-existent columns).
				kept = append(kept, c)
			}
		case "both":
			if j.Type == logical.JoinInner {
				toJoin = append(toJoin, c)
			} else {
				kept = append(kept, c)
			}
		default: // constant
			kept = append(kept, c)
		}
	}
	if len(toLeft) == 0 && len(toRight) == 0 && len(toJoin) == 0 {
		return n, false
	}
	left := j.Left
	if len(toLeft) > 0 {
		left = logical.NewFilter(left, expr.Conjunction(toLeft))
	}
	right := j.Right
	if len(toRight) > 0 {
		right = logical.NewFilter(right, expr.Conjunction(toRight))
	}
	cond := j.Cond
	if len(toJoin) > 0 {
		cond = expr.Fold(expr.NewBinOp(expr.OpAnd, cond, expr.Conjunction(toJoin)))
	}
	nj := logical.NewJoin(left, right, j.Type, cond)
	nj.FromCorrelate = j.FromCorrelate
	if len(kept) == 0 {
		return nj, true
	}
	return logical.NewFilter(nj, expr.Conjunction(kept)), true
}

// ---------------------------------------------------------------------------
// joinConditionSimplify (§5.2)

type joinConditionSimplify struct{}

func (joinConditionSimplify) Name() string { return "JoinConditionSimplify" }

func (joinConditionSimplify) Apply(n logical.Node) (logical.Node, bool) {
	j, ok := n.(*logical.Join)
	if !ok {
		return n, false
	}
	changed := false
	var conjuncts []expr.Expr
	for _, c := range expr.SplitConjuncts(j.Cond) {
		common, residual := expr.ExtractCommonConjuncts(c)
		if len(common) == 0 {
			conjuncts = append(conjuncts, c)
			continue
		}
		changed = true
		conjuncts = append(conjuncts, common...)
		if !expr.IsLiteralTrue(residual) {
			conjuncts = append(conjuncts, residual)
		}
	}
	if !changed {
		return n, false
	}
	nj := logical.NewJoin(j.Left, j.Right, j.Type, expr.Conjunction(conjuncts))
	nj.FromCorrelate = j.FromCorrelate
	// Single-sided conjuncts among the extracted ones are picked up by
	// joinPushConditions on a later pass.
	return nj, true
}

// ---------------------------------------------------------------------------
// joinPushConditions: join-condition conjuncts that reference only one
// input become filters on that input. For inner joins both sides are
// pushable; for left/semi/anti joins only right-side conjuncts are (they
// restrict which rows can match without changing the preserved side).

type joinPushConditions struct{}

func (joinPushConditions) Name() string { return "JoinPushConditions" }

func (joinPushConditions) Apply(n logical.Node) (logical.Node, bool) {
	j, ok := n.(*logical.Join)
	if !ok {
		return n, false
	}
	leftW := len(j.Left.Schema())
	var toLeft, toRight, kept []expr.Expr
	for _, c := range expr.SplitConjuncts(j.Cond) {
		switch expr.ClassifyPredicate(c, leftW) {
		case "left":
			if j.Type == logical.JoinInner {
				toLeft = append(toLeft, c)
			} else {
				kept = append(kept, c)
			}
		case "right":
			toRight = append(toRight, expr.Shift(c, 0, -leftW))
		default:
			kept = append(kept, c)
		}
	}
	if len(toLeft) == 0 && len(toRight) == 0 {
		return n, false
	}
	left := j.Left
	if len(toLeft) > 0 {
		left = logical.NewFilter(left, expr.Conjunction(toLeft))
	}
	right := j.Right
	if len(toRight) > 0 {
		right = logical.NewFilter(right, expr.Conjunction(toRight))
	}
	nj := logical.NewJoin(left, right, j.Type, expr.Conjunction(kept))
	nj.FromCorrelate = j.FromCorrelate
	return nj, true
}
