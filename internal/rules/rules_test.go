package rules

import (
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/types"
)

func scan(name string, cols ...string) *logical.Scan {
	t := &catalog.Table{Name: name, PrimaryKey: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c, Kind: types.KindInt})
	}
	return logical.NewScan(t, "")
}

func col(i int) expr.Expr   { return expr.NewColRef(i, types.KindInt, "") }
func lit(v int64) expr.Expr { return expr.NewLit(types.NewInt(v)) }

func apply(t *testing.T, r Rule, n logical.Node) (logical.Node, bool) {
	t.Helper()
	out, changed := r.Apply(n)
	if changed && out.Digest() == n.Digest() {
		t.Errorf("%s reported change without changing the plan", r.Name())
	}
	return out, changed
}

func TestFilterMergeRule(t *testing.T) {
	a := scan("a", "x")
	inner := logical.NewFilter(a, expr.NewBinOp(expr.OpGt, col(0), lit(1)))
	outer := logical.NewFilter(inner, expr.NewBinOp(expr.OpLt, col(0), lit(9)))
	out, changed := apply(t, filterMerge{}, outer)
	if !changed {
		t.Fatal("did not fire")
	}
	f := out.(*logical.Filter)
	if _, ok := f.Input.(*logical.Scan); !ok {
		t.Errorf("not merged: %s", logical.Format(out))
	}
	if len(expr.SplitConjuncts(f.Cond)) != 2 {
		t.Errorf("cond = %s", f.Cond)
	}
	// No inner filter: no change.
	if _, changed := apply(t, filterMerge{}, inner); changed {
		t.Error("fired without stacked filters")
	}
}

func TestProjectRemoveKeepsRenames(t *testing.T) {
	a := scan("a", "x", "y")
	ident := logical.IdentityProject(a, []int{0, 1})
	if _, changed := apply(t, projectRemove{}, ident); !changed {
		t.Error("identity projection kept")
	}
	renamed := logical.NewProject(a, []expr.Expr{
		expr.NewColRef(0, types.KindInt, "a.x"),
		expr.NewColRef(1, types.KindInt, "a.y"),
	}, []string{"renamed_x", "a.y"})
	if _, changed := apply(t, projectRemove{}, renamed); changed {
		t.Error("renaming projection removed (names would be lost)")
	}
}

func TestProjectMergeSubstitutes(t *testing.T) {
	a := scan("a", "x", "y")
	inner := logical.NewProject(a,
		[]expr.Expr{expr.NewBinOp(expr.OpAdd, col(0), col(1))}, []string{"s"})
	outer := logical.NewProject(inner,
		[]expr.Expr{expr.NewBinOp(expr.OpMul, col(0), lit(2))}, []string{"d"})
	out, changed := apply(t, projectMerge{}, outer)
	if !changed {
		t.Fatal("did not fire")
	}
	p := out.(*logical.Project)
	if _, ok := p.Input.(*logical.Scan); !ok {
		t.Fatalf("not merged")
	}
	// ($0+$1)*2 over the scan.
	row := types.Row{types.NewInt(3), types.NewInt(4)}
	if got := p.Exprs[0].Eval(row); got.Int() != 14 {
		t.Errorf("substituted expr evaluates to %v", got)
	}
}

func TestFilterIntoJoinSemiPushesLeftOnly(t *testing.T) {
	a := scan("a", "x")
	b := scan("b", "y")
	semi := logical.NewJoin(a, b, logical.JoinSemi,
		expr.NewBinOp(expr.OpEq, col(0), col(1)))
	pred := expr.NewBinOp(expr.OpGt, col(0), lit(5))
	f := logical.NewFilter(semi, pred)
	out, changed := apply(t, filterIntoJoin{filterCorrelate: true}, f)
	if !changed {
		t.Fatal("did not fire")
	}
	j := out.(*logical.Join)
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left filter missing:\n%s", logical.Format(out))
	}
}

func TestFilterIntoJoinLeftOuterKeepsRightConjuncts(t *testing.T) {
	a := scan("a", "x")
	b := scan("b", "y")
	lj := logical.NewJoin(a, b, logical.JoinLeft,
		expr.NewBinOp(expr.OpEq, col(0), col(1)))
	// A right-side conjunct above a left join must NOT be pushed below
	// (it would change NULL-padding semantics).
	pred := expr.NewBinOp(expr.OpGt, col(1), lit(5))
	f := logical.NewFilter(lj, pred)
	_, changed := apply(t, filterIntoJoin{filterCorrelate: true}, f)
	if changed {
		t.Error("right-side conjunct pushed below a left join")
	}
}

func TestJoinPushConditions(t *testing.T) {
	a := scan("a", "x")
	b := scan("b", "y")
	cond := expr.Conjunction([]expr.Expr{
		expr.NewBinOp(expr.OpEq, col(0), col(1)),
		expr.NewBinOp(expr.OpGt, col(0), lit(3)), // left only
		expr.NewBinOp(expr.OpLt, col(1), lit(9)), // right only
	})
	j := logical.NewJoin(a, b, logical.JoinInner, cond)
	out, changed := apply(t, joinPushConditions{}, j)
	if !changed {
		t.Fatal("did not fire")
	}
	nj := out.(*logical.Join)
	if _, ok := nj.Left.(*logical.Filter); !ok {
		t.Error("left conjunct not pushed")
	}
	if _, ok := nj.Right.(*logical.Filter); !ok {
		t.Error("right conjunct not pushed")
	}
	keys, rest := expr.SplitJoinCondition(nj.Cond, 1)
	if len(keys) != 1 || len(rest) != 0 {
		t.Errorf("remaining cond = %s", nj.Cond)
	}
	// Left joins: only the right side is pushable from the ON clause.
	lj := logical.NewJoin(a, b, logical.JoinLeft, cond)
	out, _ = apply(t, joinPushConditions{}, lj)
	nlj := out.(*logical.Join)
	if _, ok := nlj.Left.(*logical.Filter); ok {
		t.Error("left conjunct pushed below preserved side of a left join")
	}
	if _, ok := nlj.Right.(*logical.Filter); !ok {
		t.Error("right conjunct not pushed below left join")
	}
}

func TestFilterAggregateTransposeRemaps(t *testing.T) {
	a := scan("a", "x", "y")
	agg := logical.NewAggregate(a, []int{1},
		[]expr.AggCall{{Func: expr.AggCount, Name: "n"}})
	// Filter on the group column (output 0 = input column 1).
	f := logical.NewFilter(agg, expr.NewBinOp(expr.OpEq, col(0), lit(7)))
	out, changed := apply(t, filterAggregateTranspose{}, f)
	if !changed {
		t.Fatal("did not fire")
	}
	na := out.(*logical.Aggregate)
	inner, ok := na.Input.(*logical.Filter)
	if !ok {
		t.Fatalf("no pushed filter:\n%s", logical.Format(out))
	}
	cols := expr.ColumnsUsed(inner.Cond).Ordered()
	if len(cols) != 1 || cols[0] != 1 {
		t.Errorf("pushed cond references %v, want input column 1", cols)
	}
	// Filter on the aggregate output must stay above.
	f2 := logical.NewFilter(agg, expr.NewBinOp(expr.OpGt, col(1), lit(3)))
	if _, changed := apply(t, filterAggregateTranspose{}, f2); changed {
		t.Error("aggregate-column filter pushed below the aggregate")
	}
}

func TestConstantFoldRule(t *testing.T) {
	a := scan("a", "x")
	f := logical.NewFilter(a, expr.NewBinOp(expr.OpAnd, expr.True,
		expr.NewBinOp(expr.OpGt, col(0), lit(1))))
	out, changed := apply(t, constantFold{}, f)
	if !changed {
		t.Fatal("did not fire")
	}
	if d := out.Digest(); len(d) >= len(f.Digest()) {
		t.Errorf("fold did not simplify: %s", d)
	}
}

func TestStage1GroupShapes(t *testing.T) {
	groups := Stage1Groups(Config{FilterCorrelate: true})
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	// The paper's first stage: 3, 7 and 5 rules.
	want := []int{3, 7, 5}
	for i, g := range groups {
		if len(g) != want[i] {
			t.Errorf("group %d has %d rules, want %d", i, len(g), want[i])
		}
	}
	logical := LogicalPhaseRules(Config{JoinConditionSimplification: true})
	without := LogicalPhaseRules(Config{})
	if len(logical) != len(without)+1 {
		t.Error("JoinConditionSimplification flag has no effect")
	}
}
