package physical

import (
	"fmt"

	"gignite/internal/expr"
	"gignite/internal/logical"
)

// RuntimeFilter is the plan-time description of one runtime join-filter
// edge (DESIGN.md §13): a hash join's build keys, computed in a pre-pass
// at the join fragment's sites, are shipped sideways to the probe-side
// producer fragment, whose Sender (and optionally a deeper operator)
// drops rows that cannot match before they cross the wire.
//
// The filter is keyed to logical plan identity — fragment IDs, exchange
// ID, plan nodes — never to execution attempts, so retries and replica
// failover consume the same filter and results stay byte-identical.
type RuntimeFilter struct {
	// ID is the filter's dense index within the plan.
	ID int
	// JoinFrag is the fragment containing the consuming hash join.
	JoinFrag int
	// Join is the hash join whose build side feeds the filter.
	Join *Join
	// BuildRoot is the join's build input (right child) — a receiver-free
	// subtree executable locally at each of the join's sites.
	BuildRoot Node
	// BuildCols are the equi-key columns in build-side coordinates.
	BuildCols []int
	// ProbeFrag is the producer fragment of the probe-side exchange.
	ProbeFrag int
	// Exchange is the probe-side exchange the filter guards.
	Exchange int
	// Receiver is the probe-side receiver inside the join's fragment.
	Receiver *Receiver
	// ProbeCols are the equi-key columns in receiver-output coordinates,
	// which equal the producer Sender's output coordinates.
	ProbeCols []int
	// ProbeNode, when non-nil, is the deepest operator inside the producer
	// fragment whose output the filter may additionally prune (scan-level
	// pushdown); ProbeNodeCols are the key columns at its output.
	ProbeNode     Node
	ProbeNodeCols []int
}

// Describe renders the filter edge for EXPLAIN output.
func (f *RuntimeFilter) Describe() string {
	return fmt.Sprintf("RuntimeFilter #%d: join frag %d <- exchange %d (probe frag %d, keys=%v)",
		f.ID, f.JoinFrag, f.Exchange, f.ProbeFrag, f.ProbeCols)
}

// FilterableJoin reports whether a join's semantics admit probe-side
// pruning: rows whose keys are absent from the build set contribute
// nothing to inner and semi joins, but left/anti joins emit them.
func FilterableJoin(j *Join) bool {
	return j.Algo == HashAlgo && len(j.Keys) > 0 &&
		(j.Type == logical.JoinInner || j.Type == logical.JoinSemi)
}

// ParentCounts counts each node's parents within one fragment tree. The
// optimizer may emit DAGs (shared subtrees); pruning a multi-parent
// node's output would starve its other consumer, so filter placement
// requires single-parent chains.
func ParentCounts(root Node) map[Node]int {
	counts := map[Node]int{root: 1}
	seen := make(map[Node]bool)
	var walk func(n Node)
	walk = func(n Node) {
		for _, in := range n.Inputs() {
			counts[in]++
			if !seen[in] {
				seen[in] = true
				walk(in)
			}
		}
	}
	walk(root)
	return counts
}

// SubtreeLocal reports whether a subtree contains no Receiver — i.e. it
// is executable entirely at one site without waiting on other fragments,
// which is what lets the filter pre-pass run it before wave 0.
func SubtreeLocal(n Node) bool {
	local := true
	Walk(n, func(m Node) bool {
		if _, ok := m.(*Receiver); ok {
			local = false
			return false
		}
		return local
	})
	return local
}

// SubtreeSelective reports whether a build subtree applies any predicate
// (a Filter node). A bare-scan build is a foreign-key target: every probe
// key exists in it, so a filter built from it prunes nothing and only
// costs build, shipment and test work.
func SubtreeSelective(n Node) bool {
	selective := false
	Walk(n, func(m Node) bool {
		if _, ok := m.(*Filter); ok {
			selective = true
			return false
		}
		return true
	})
	return selective
}

// ResolveProbeChain walks from the join's probe (left) input down through
// column-transparent single-parent operators to a Receiver, remapping the
// probe key columns into receiver-output coordinates. It returns nil when
// the chain crosses anything else (a join, an aggregate, a limit, a
// multi-parent node, a computed projection), in which case no filter is
// planned for this join.
func ResolveProbeChain(j *Join, parents map[Node]int) (*Receiver, []int) {
	cols := make([]int, len(j.Keys))
	for i, k := range j.Keys {
		cols[i] = k.Left
	}
	n := j.Inputs()[0]
	for {
		if parents[n] > 1 {
			return nil, nil
		}
		switch t := n.(type) {
		case *Receiver:
			return t, cols
		case *Filter:
			n = t.Inputs()[0]
		case *Sort:
			n = t.Inputs()[0]
		case *Project:
			next, ok := remapThroughProject(t, cols)
			if !ok {
				return nil, nil
			}
			cols = next
			n = t.Inputs()[0]
		default:
			return nil, nil
		}
	}
}

// PushdownTarget descends from a producer fragment's sender child through
// transparent operators to the deepest node whose output the filter may
// prune, remapping key columns along the way. Descent stops at sources,
// joins, aggregates and limits (pruning below a Limit would change which
// rows fill it) and at multi-parent nodes; the stop node itself is the
// application point, which is always safe because everything above it
// feeds only the guarded sender.
func PushdownTarget(senderChild Node, cols []int, parents map[Node]int) (Node, []int) {
	n := cols
	node := senderChild
	for {
		var next Node
		switch t := node.(type) {
		case *Filter:
			next = t.Inputs()[0]
		case *Sort:
			next = t.Inputs()[0]
		case *Project:
			remapped, ok := remapThroughProject(t, n)
			if !ok {
				return node, n
			}
			if parents[t.Inputs()[0]] > 1 {
				return node, n
			}
			n = remapped
			node = t.Inputs()[0]
			continue
		default:
			return node, n
		}
		if parents[next] > 1 {
			return node, n
		}
		node = next
	}
}

// remapThroughProject translates output column offsets to input offsets;
// it fails when a needed column is computed (not a bare ColRef).
func remapThroughProject(p *Project, cols []int) ([]int, bool) {
	out := make([]int, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(p.Exprs) {
			return nil, false
		}
		ref, ok := p.Exprs[c].(*expr.ColRef)
		if !ok {
			return nil, false
		}
		out[i] = ref.Index
	}
	return out, true
}
