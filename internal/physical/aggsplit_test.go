package physical

import (
	"strings"
	"testing"

	"gignite/internal/expr"
	"gignite/internal/types"
)

func TestSplitAggCallsShapes(t *testing.T) {
	arg := expr.NewColRef(1, types.KindFloat, "v")
	calls := []expr.AggCall{
		{Func: expr.AggCount, Name: "n"},
		{Func: expr.AggSum, Arg: arg, Name: "s"},
		{Func: expr.AggMin, Arg: arg, Name: "mn"},
		{Func: expr.AggMax, Arg: arg, Name: "mx"},
	}
	final := types.Fields{
		{Name: "g", Kind: types.KindInt},
		{Name: "n", Kind: types.KindInt},
		{Name: "s", Kind: types.KindFloat},
		{Name: "mn", Kind: types.KindFloat},
		{Name: "mx", Kind: types.KindFloat},
	}
	split, err := SplitAggCalls(1, calls, final)
	if err != nil {
		t.Fatal(err)
	}
	if len(split.MapCalls) != 4 || len(split.ReduceCalls) != 4 {
		t.Fatalf("map=%d reduce=%d", len(split.MapCalls), len(split.ReduceCalls))
	}
	// COUNT's reduce side must be a SUM of the partial counts.
	if split.ReduceCalls[0].Func != expr.AggSum {
		t.Errorf("COUNT reduce = %v", split.ReduceCalls[0].Func)
	}
	if split.ReduceCalls[2].Func != expr.AggMin || split.ReduceCalls[3].Func != expr.AggMax {
		t.Error("MIN/MAX reduce functions wrong")
	}
	// No AVG: no finalize projection needed.
	if split.Finalize != nil {
		t.Error("finalize emitted without AVG")
	}
	if len(split.MapFields) != 5 || len(split.ReduceFields) != 5 {
		t.Errorf("fields map=%d reduce=%d", len(split.MapFields), len(split.ReduceFields))
	}
}

func TestSplitAggCallsAvg(t *testing.T) {
	arg := expr.NewColRef(0, types.KindInt, "v")
	calls := []expr.AggCall{{Func: expr.AggAvg, Arg: arg, Name: "a"}}
	final := types.Fields{{Name: "a", Kind: types.KindFloat}}
	split, err := SplitAggCalls(0, calls, final)
	if err != nil {
		t.Fatal(err)
	}
	// AVG splits into SUM + COUNT partials.
	if len(split.MapCalls) != 2 {
		t.Fatalf("map calls = %d", len(split.MapCalls))
	}
	if split.MapCalls[0].Func != expr.AggSum || split.MapCalls[1].Func != expr.AggCount {
		t.Errorf("map calls = %v, %v", split.MapCalls[0].Func, split.MapCalls[1].Func)
	}
	if split.Finalize == nil || len(split.Finalize) != 1 {
		t.Fatalf("finalize = %v", split.Finalize)
	}
	// The finalize expression divides sum by count: reduce output
	// [sum=10, cnt=4] → 2.5.
	got := split.Finalize[0].Eval(types.Row{types.NewInt(10), types.NewInt(4)})
	if got.Float() != 2.5 {
		t.Errorf("finalize(10, 4) = %v", got)
	}
}

func TestSplitAggCallsRejectsDistinct(t *testing.T) {
	arg := expr.NewColRef(0, types.KindInt, "v")
	_, err := SplitAggCalls(0, []expr.AggCall{
		{Func: expr.AggCount, Arg: arg, Distinct: true},
	}, types.Fields{{Name: "n", Kind: types.KindInt}})
	if err == nil {
		t.Error("DISTINCT aggregate split accepted")
	}
}

func TestDescribeAllNodes(t *testing.T) {
	s := scanFixture()
	idx := &s.Table.Indexes
	_ = idx
	nodes := []Node{
		s,
		NewFilter(s, expr.True),
		NewProject(s, []expr.Expr{expr.NewColRef(0, types.KindInt, "id")},
			types.Fields{{Name: "id", Kind: types.KindInt}}),
		NewSort(s, []types.SortKey{{Col: 0}}),
		NewLimit(s, 5),
		NewHashAggregate(s, []int{0}, nil, AggSinglePhase, s.Schema()[:1]),
		NewSortAggregate(NewSort(s, []types.SortKey{{Col: 0}}), []int{0}, nil,
			AggMap, s.Schema()[:1]),
		NewExchange(s, SingleDist),
		NewSender(s, 3, BroadcastDist),
		NewValues(types.Fields{{Name: "x", Kind: types.KindInt}}, nil),
	}
	for _, n := range nodes {
		if n.Describe() == "" {
			t.Errorf("%T has empty description", n)
		}
	}
	ex := NewExchange(NewSort(s, []types.SortKey{{Col: 0}}), SingleDist)
	recv := NewReceiver(ex, 3)
	if !strings.Contains(recv.Describe(), "merging") {
		t.Errorf("merging receiver not labelled: %s", recv.Describe())
	}
	if out := Format(recv); out == "" {
		t.Error("format empty")
	}
}

func TestAggPhaseAndAlgoNames(t *testing.T) {
	if AggSinglePhase.String() != "single" || AggMap.String() != "map" || AggReduce.String() != "reduce" {
		t.Error("agg phase names wrong")
	}
	if NestedLoop.String() != "nested-loop" || Merge.String() != "merge" || HashAlgo.String() != "hash" {
		t.Error("join algo names wrong")
	}
	s := scanFixture()
	ha := NewHashAggregate(s, []int{0}, nil, AggReduce, s.Schema()[:1])
	if !ha.IsReduction() {
		t.Error("reduce phase not a reduction")
	}
	sa := NewSortAggregate(s, []int{0}, nil, AggMap, s.Schema()[:1])
	if sa.IsReduction() {
		t.Error("map phase wrongly a reduction")
	}
}

func TestDistributionStringAndRemap(t *testing.T) {
	d := HashDist(2, 5)
	if d.String() != "hash[2,5]" {
		t.Errorf("String = %s", d.String())
	}
	if SingleDist.String() != "single" || BroadcastDist.String() != "broadcast" {
		t.Error("singleton names wrong")
	}
	remapped := d.RemapKeys([]int{-1, -1, 0, -1, -1, 1})
	if remapped.String() != "hash[0,1]" {
		t.Errorf("remap = %s", remapped)
	}
	dropped := d.RemapKeys([]int{-1, -1, 0})
	if dropped.Type != Hash || len(dropped.Keys) != 0 {
		t.Errorf("dropped-key remap = %s", dropped)
	}
	shifted := d.ShiftKeys(10)
	if shifted.String() != "hash[12,15]" {
		t.Errorf("shift = %s", shifted)
	}
	if SingleDist.ShiftKeys(3).Type != Single {
		t.Error("shift changed non-hash dist")
	}
}
