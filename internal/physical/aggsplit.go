package physical

import (
	"fmt"

	"gignite/internal/expr"
	"gignite/internal/types"
)

// AggSplit describes the two-phase (map/reduce) decomposition of an
// aggregation (§3.2's distributed aggregation; the reduce side is the
// "reduction operator" of §5.3). DISTINCT aggregates cannot be split.
type AggSplit struct {
	// MapCalls run at each site over local rows.
	MapCalls []expr.AggCall
	// MapFields is the map output schema: group columns then partials.
	MapFields types.Fields
	// ReduceCalls merge the partial columns (input = map output).
	ReduceCalls []expr.AggCall
	// ReduceFields is the reduce output schema.
	ReduceFields types.Fields
	// Finalize projects the reduce output to the original aggregate
	// schema; nil when the reduce output is already final (no AVG).
	Finalize []expr.Expr
}

// SplitAggCalls builds the map/reduce decomposition for an aggregate with
// the given group column count, calls, and final output schema. It returns
// an error for DISTINCT calls, which must stay single-phase.
func SplitAggCalls(groupCount int, calls []expr.AggCall, finalFields types.Fields) (*AggSplit, error) {
	s := &AggSplit{}
	for i := 0; i < groupCount; i++ {
		s.MapFields = append(s.MapFields, finalFields[i])
		s.ReduceFields = append(s.ReduceFields, finalFields[i])
	}
	needFinalize := false
	// finalizeRefs[i] is the reduce-output column holding call i's value
	// (or, for AVG, its sum; the count follows at +1).
	finalizeRefs := make([]int, len(calls))
	for i, c := range calls {
		if c.Distinct {
			return nil, fmt.Errorf("physical: DISTINCT aggregate %s cannot be split into map/reduce", c)
		}
		partialCol := groupCount + len(s.MapCalls)
		finalizeRefs[i] = groupCount + len(s.ReduceCalls)
		switch c.Func {
		case expr.AggCount:
			s.MapCalls = append(s.MapCalls, c)
			s.MapFields = append(s.MapFields, types.Field{Name: c.Name, Kind: types.KindInt})
			s.ReduceCalls = append(s.ReduceCalls, expr.AggCall{
				Func: expr.AggSum, Name: c.Name,
				Arg: expr.NewColRef(partialCol, types.KindInt, ""),
			})
			s.ReduceFields = append(s.ReduceFields, types.Field{Name: c.Name, Kind: types.KindInt})
		case expr.AggSum, expr.AggMin, expr.AggMax:
			s.MapCalls = append(s.MapCalls, c)
			kind := c.Kind()
			s.MapFields = append(s.MapFields, types.Field{Name: c.Name, Kind: kind})
			s.ReduceCalls = append(s.ReduceCalls, expr.AggCall{
				Func: reduceFuncFor(c.Func), Name: c.Name,
				Arg: expr.NewColRef(partialCol, kind, ""),
			})
			s.ReduceFields = append(s.ReduceFields, types.Field{Name: c.Name, Kind: kind})
		case expr.AggAvg:
			needFinalize = true
			// Map: SUM(arg), COUNT(arg).
			s.MapCalls = append(s.MapCalls,
				expr.AggCall{Func: expr.AggSum, Arg: c.Arg, Name: c.Name + "_sum"},
				expr.AggCall{Func: expr.AggCount, Arg: c.Arg, Name: c.Name + "_cnt"})
			sumKind := types.KindFloat
			if c.Arg != nil && c.Arg.Kind() == types.KindInt {
				sumKind = types.KindInt
			}
			s.MapFields = append(s.MapFields,
				types.Field{Name: c.Name + "_sum", Kind: sumKind},
				types.Field{Name: c.Name + "_cnt", Kind: types.KindInt})
			// Reduce: SUM(sum), SUM(cnt).
			s.ReduceCalls = append(s.ReduceCalls,
				expr.AggCall{Func: expr.AggSum, Name: c.Name + "_sum",
					Arg: expr.NewColRef(partialCol, sumKind, "")},
				expr.AggCall{Func: expr.AggSum, Name: c.Name + "_cnt",
					Arg: expr.NewColRef(partialCol+1, types.KindInt, "")})
			s.ReduceFields = append(s.ReduceFields,
				types.Field{Name: c.Name + "_sum", Kind: sumKind},
				types.Field{Name: c.Name + "_cnt", Kind: types.KindInt})
		default:
			return nil, fmt.Errorf("physical: cannot split aggregate %s", c)
		}
	}
	if needFinalize {
		s.Finalize = make([]expr.Expr, 0, len(finalFields))
		for g := 0; g < groupCount; g++ {
			s.Finalize = append(s.Finalize,
				expr.NewColRef(g, finalFields[g].Kind, finalFields[g].Name))
		}
		for i, c := range calls {
			ref := finalizeRefs[i]
			if c.Func == expr.AggAvg {
				sum := expr.NewColRef(ref, s.ReduceFields[ref].Kind, "")
				cnt := expr.NewColRef(ref+1, types.KindInt, "")
				s.Finalize = append(s.Finalize, expr.NewBinOp(expr.OpDiv, sum, cnt))
			} else {
				s.Finalize = append(s.Finalize,
					expr.NewColRef(ref, s.ReduceFields[ref].Kind, ""))
			}
		}
	}
	return s, nil
}

func reduceFuncFor(f expr.AggFunc) expr.AggFunc {
	switch f {
	case expr.AggSum:
		return expr.AggSum
	case expr.AggMin:
		return expr.AggMin
	case expr.AggMax:
		return expr.AggMax
	default:
		panic(fmt.Sprintf("physical: no reduce function for %s", f))
	}
}
