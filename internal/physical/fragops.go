package physical

import (
	"fmt"

	"gignite/internal/types"
)

// Sender and Receiver are the operator pair fragmentation substitutes for
// each Exchange (§3.2.3): the sender ships its child's rows over the
// network to the corresponding receiver in another fragment.

// Sender is the root of a non-root fragment.
type Sender struct {
	base
	// ExchangeID links the sender to its receiver.
	ExchangeID int
	// Target is the distribution the original exchange established; it
	// determines routing (single site, all sites, or hash placement).
	Target Distribution
}

// NewSender builds a sender above child for the given exchange.
func NewSender(child Node, exchangeID int, target Distribution) *Sender {
	s := &Sender{ExchangeID: exchangeID, Target: target}
	s.inputs = []Node{child}
	s.props.Fields = child.Schema()
	s.props.Dist = target
	s.props.Coll = child.Collation()
	s.props.EstRows = child.Props().EstRows
	return s
}

func (s *Sender) Describe() string {
	return fmt.Sprintf("Sender #%d -> %s", s.ExchangeID, s.Target)
}

// Receiver is a leaf that consumes rows shipped by the matching senders.
// MergeKeys non-nil makes it a merging receiver: the per-sender streams
// are combined preserving their common sort order.
type Receiver struct {
	base
	ExchangeID int
	// SourceDist is the distribution of the sending side (for EXPLAIN).
	SourceDist Distribution
	MergeKeys  []types.SortKey
}

// NewReceiver builds the receiver side of an exchange.
func NewReceiver(ex *Exchange, exchangeID int) *Receiver {
	r := &Receiver{
		ExchangeID: exchangeID,
		SourceDist: ex.Inputs()[0].Dist(),
		MergeKeys:  ex.Collation(),
	}
	r.props.Fields = ex.Schema()
	r.props.Dist = ex.Target
	r.props.Coll = ex.Collation()
	r.props.EstRows = ex.Props().EstRows
	return r
}

func (r *Receiver) Describe() string {
	m := ""
	if len(r.MergeKeys) > 0 {
		m = ", merging"
	}
	return fmt.Sprintf("Receiver #%d (from %s%s)", r.ExchangeID, r.SourceDist, m)
}
