package physical

import (
	"gignite/internal/expr"
	"gignite/internal/logical"
)

// DistMapping is one row of the deriveDistribution output (§3.2.2,
// Table 2, extended by §5.1.1): a possible target distribution for a join
// together with the source distributions each input must satisfy.
type DistMapping struct {
	Name   string
	Target Distribution
	Left   Distribution
	Right  Distribution
}

// DeriveJoinDistributions generates the distribution mappings a join may
// adopt, given its inputs' actual distributions. It reproduces Table 2:
//
//	single     — all data shipped to one site
//	broadcast  — fully replicated join at every site
//	hash       — co-located equi-join: the left side partitioned on its
//	             equi keys, the right side routed by the same hash
//
// and, when fullyDistributed is true, the §5.1.1 additions:
//
//	bcast-left  — the left input is broadcast to the right input's
//	              partition sites; each site joins against its local right
//	              partition (A⋈B = ∪ₖ A⋈Bₖ)
//	bcast-right — the mirror image, valid for all join types because the
//	              left rows stay partitioned
//
// Mappings whose correctness depends on join semantics are filtered:
// bcast-left duplicates left rows per site, so it is only valid for inner
// joins; semi/anti/left joins need every probe row to see the whole build
// side or a co-located slice of it.
func DeriveJoinDistributions(jt logical.JoinType, keys []expr.EquiKey,
	leftW int, leftDist, rightDist Distribution, fullyDistributed bool) []DistMapping {

	out := []DistMapping{
		{Name: "single", Target: SingleDist, Left: SingleDist, Right: SingleDist},
		{Name: "broadcast", Target: BroadcastDist, Left: BroadcastDist, Right: BroadcastDist},
	}

	// Joins against an already-replicated input run locally at the other
	// input's partition sites with no data movement. This is base Ignite
	// behaviour (replicated dimension tables exist exactly for this), not
	// part of the §5.1.1 improvement, so it is never gated.
	if rightDist.Type == Broadcast && leftDist.Type == Hash {
		out = append(out, DistMapping{
			Name: "local", Target: leftDist, Left: leftDist, Right: BroadcastDist,
		})
	}
	if leftDist.Type == Broadcast && rightDist.Type == Hash && jt == logical.JoinInner {
		// Mirror case: sound only for inner joins (a broadcast left means
		// every site holds all left rows; left-projecting joins would
		// duplicate them).
		out = append(out, DistMapping{
			Name: "local", Target: rightDist.ShiftKeys(leftW), Left: BroadcastDist, Right: rightDist,
		})
	}

	// hash: requires equi keys. The join runs at the left relation's
	// partition sites; output rows stay partitioned on the left keys.
	if len(keys) > 0 {
		leftKeys := make([]int, len(keys))
		rightKeys := make([]int, len(keys))
		for i, k := range keys {
			leftKeys[i] = k.Left
			rightKeys[i] = k.Right
		}
		out = append(out, DistMapping{
			Name:   "hash",
			Target: HashDist(leftKeys...),
			Left:   HashDist(leftKeys...),
			Right:  HashDist(rightKeys...),
		})
	}

	if fullyDistributed {
		// bcast-right: left stays in place (if it is hash-partitioned),
		// right is replicated to every left site. Valid for every join
		// type: each left row is joined exactly once against the complete
		// right side.
		if leftDist.Type == Hash {
			out = append(out, DistMapping{
				Name:   "bcast-right",
				Target: leftDist, // output keeps the left partitioning
				Left:   leftDist,
				Right:  BroadcastDist,
			})
		}
		// bcast-left: right stays in place, left is replicated. Each right
		// partition contributes a partial join; the union is the join.
		// Only inner joins tolerate the left-row duplication across sites.
		if jt == logical.JoinInner && rightDist.Type == Hash {
			out = append(out, DistMapping{
				Name:   "bcast-left",
				Target: rightDist.ShiftKeys(leftW),
				Left:   BroadcastDist,
				Right:  rightDist,
			})
		}
	}
	return out
}
