package physical

import (
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/types"
)

func scanFixture() *TableScan {
	t := &catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "dept", Kind: types.KindInt},
			{Name: "name", Kind: types.KindString},
		},
		PrimaryKey:  []string{"id"},
		AffinityKey: "id",
	}
	return NewTableScan(t, "emp", t.Fields())
}

// TestSatisfactionMatrix verifies Table 1 of the paper.
func TestSatisfactionMatrix(t *testing.T) {
	const sites = 4
	h := HashDist(0)
	cases := []struct {
		source, target Distribution
		want           bool
	}{
		{SingleDist, SingleDist, true},
		{SingleDist, BroadcastDist, false},
		{SingleDist, h, false},
		{BroadcastDist, SingleDist, true},
		{BroadcastDist, BroadcastDist, true},
		{BroadcastDist, h, true},
		{h, SingleDist, false},
		{h, BroadcastDist, false}, // hash never covers all sites at 4 sites
		{h, h, true},              // same hash function
		{h, HashDist(1), false},   // different keys
	}
	for _, c := range cases {
		if got := c.source.Satisfies(c.target, sites); got != c.want {
			t.Errorf("%s satisfies %s = %v, want %v", c.source, c.target, got, c.want)
		}
	}
	// The starred cases: a hash source covers a broadcast target only in
	// the degenerate one-site cluster.
	if !h.Satisfies(BroadcastDist, 1) {
		t.Error("hash should satisfy broadcast on a single site")
	}
	// Keyless hash cannot satisfy a keyed requirement.
	if (Distribution{Type: Hash}).Satisfies(h, sites) {
		t.Error("keyless hash satisfied keyed hash")
	}
}

func TestScanNaturalDistributions(t *testing.T) {
	s := scanFixture()
	if s.Dist().Type != Hash || s.Dist().Keys[0] != 0 {
		t.Errorf("partitioned scan dist = %s", s.Dist())
	}
	rep := &catalog.Table{
		Name:       "nation",
		Columns:    []catalog.Column{{Name: "n_nationkey", Kind: types.KindInt}},
		Replicated: true,
	}
	rs := NewTableScan(rep, "nation", rep.Fields())
	if rs.Dist().Type != Broadcast {
		t.Errorf("replicated scan dist = %s", rs.Dist())
	}
}

func TestIndexScanCollation(t *testing.T) {
	tbl := &catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Kind: types.KindInt},
			{Name: "dept", Kind: types.KindInt},
		},
		PrimaryKey:  []string{"id"},
		AffinityKey: "id",
		Indexes:     []catalog.Index{{Name: "by_dept", Columns: []string{"dept", "id"}}},
	}
	s := NewIndexScan(tbl, "emp", &tbl.Indexes[0], tbl.Fields())
	coll := s.Collation()
	if len(coll) != 2 || coll[0].Col != 1 || coll[1].Col != 0 {
		t.Errorf("index collation = %v", coll)
	}
}

func TestProjectRemapsTraits(t *testing.T) {
	s := scanFixture()
	// Project(id, name): keeps the hash key at position 0.
	p := NewProject(s, []expr.Expr{
		expr.NewColRef(0, types.KindInt, "id"),
		expr.NewColRef(2, types.KindString, "name"),
	}, types.Fields{{Name: "id", Kind: types.KindInt}, {Name: "name", Kind: types.KindString}})
	if p.Dist().Type != Hash || p.Dist().Keys[0] != 0 {
		t.Errorf("project dist = %s", p.Dist())
	}
	// Project(name): drops the hash key → keyless hash.
	p2 := NewProject(s, []expr.Expr{expr.NewColRef(2, types.KindString, "name")},
		types.Fields{{Name: "name", Kind: types.KindString}})
	if p2.Dist().Type != Hash || len(p2.Dist().Keys) != 0 {
		t.Errorf("key-dropping project dist = %s", p2.Dist())
	}
}

func TestSortAndFilterTraits(t *testing.T) {
	s := scanFixture()
	f := NewFilter(s, expr.True)
	if f.Dist().String() != s.Dist().String() {
		t.Error("filter changed distribution")
	}
	keys := []types.SortKey{{Col: 1}}
	srt := NewSort(f, keys)
	if len(srt.Collation()) != 1 || srt.Collation()[0].Col != 1 {
		t.Errorf("sort collation = %v", srt.Collation())
	}
}

func TestExchangeMergeReceiverPreservesCollation(t *testing.T) {
	s := scanFixture()
	srt := NewSort(s, []types.SortKey{{Col: 0}})
	ex := NewExchange(srt, SingleDist)
	if ex.Dist().Type != Single {
		t.Errorf("exchange dist = %s", ex.Dist())
	}
	// The receiving side k-way-merges the per-sender streams, so the
	// input's ordering survives the hop.
	if !CollationSatisfies(ex.Collation(), srt.Keys) {
		t.Error("merge receiver dropped collation")
	}
}

func TestHasExchange(t *testing.T) {
	s := scanFixture()
	if HasExchange(s) {
		t.Error("scan has exchange")
	}
	ex := NewExchange(s, SingleDist)
	f := NewFilter(ex, expr.True)
	if !HasExchange(f) {
		t.Error("filter-over-exchange not detected")
	}
}

func TestCollationSatisfies(t *testing.T) {
	ab := []types.SortKey{{Col: 0}, {Col: 1}}
	a := []types.SortKey{{Col: 0}}
	if !CollationSatisfies(ab, a) {
		t.Error("prefix not satisfied")
	}
	if CollationSatisfies(a, ab) {
		t.Error("shorter satisfied longer")
	}
	desc := []types.SortKey{{Col: 0, Desc: true}}
	if CollationSatisfies(ab, desc) {
		t.Error("direction ignored")
	}
}

// TestDeriveJoinDistributions verifies Table 2 plus the §5.1.1 mappings.
func TestDeriveJoinDistributions(t *testing.T) {
	keys := []expr.EquiKey{{Left: 0, Right: 1}}
	leftDist := HashDist(0)
	rightDist := HashDist(1)

	// Without the fully-distributed improvement: exactly Table 2.
	maps := DeriveJoinDistributions(logical.JoinInner, keys, 3, leftDist, rightDist, false)
	names := mappingNames(maps)
	want := []string{"single", "broadcast", "hash"}
	if !equalStrings(names, want) {
		t.Fatalf("baseline mappings = %v, want %v", names, want)
	}
	// The hash mapping requires co-located sources.
	h := maps[2]
	if h.Left.String() != "hash[0]" || h.Right.String() != "hash[1]" {
		t.Errorf("hash mapping sources = %s / %s", h.Left, h.Right)
	}
	if h.Target.String() != "hash[0]" {
		t.Errorf("hash mapping target = %s", h.Target)
	}

	// With §5.1.1: the two broadcast-one-side mappings appear.
	maps = DeriveJoinDistributions(logical.JoinInner, keys, 3, leftDist, rightDist, true)
	names = mappingNames(maps)
	want = []string{"single", "broadcast", "hash", "bcast-right", "bcast-left"}
	if !equalStrings(names, want) {
		t.Fatalf("extended mappings = %v, want %v", names, want)
	}
	// bcast-left target keys shift into the join output space.
	bl := maps[4]
	if bl.Target.String() != "hash[4]" { // right key 1 + leftW 3
		t.Errorf("bcast-left target = %s", bl.Target)
	}
	if bl.Left.Type != Broadcast {
		t.Errorf("bcast-left left source = %s", bl.Left)
	}

	// Non-equi join: no hash mapping, but bcast mappings still possible.
	maps = DeriveJoinDistributions(logical.JoinInner, nil, 3, leftDist, rightDist, true)
	names = mappingNames(maps)
	want = []string{"single", "broadcast", "bcast-right", "bcast-left"}
	if !equalStrings(names, want) {
		t.Fatalf("non-equi mappings = %v, want %v", names, want)
	}

	// Semi join: bcast-left is unsound (left duplication) and must be
	// filtered out; bcast-right remains.
	maps = DeriveJoinDistributions(logical.JoinSemi, keys, 3, leftDist, rightDist, true)
	for _, m := range maps {
		if m.Name == "bcast-left" {
			t.Error("bcast-left offered for a semi join")
		}
	}
	// Single-distribution left input: no bcast-right (nothing stays in
	// place).
	maps = DeriveJoinDistributions(logical.JoinInner, keys, 3, SingleDist, rightDist, true)
	for _, m := range maps {
		if m.Name == "bcast-right" {
			t.Error("bcast-right offered for a single-distribution left input")
		}
	}
}

func mappingNames(maps []DistMapping) []string {
	out := make([]string, len(maps))
	for i, m := range maps {
		out[i] = m.Name
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestJoinSchemaAndSemiProjection(t *testing.T) {
	l := scanFixture()
	r := scanFixture()
	cond := expr.NewBinOp(expr.OpEq,
		expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(3, types.KindInt, ""))
	inner := NewJoin(l, r, HashAlgo, logical.JoinInner, cond,
		[]expr.EquiKey{{Left: 0, Right: 0}}, SingleDist, "single")
	if len(inner.Schema()) != 6 {
		t.Errorf("inner join width = %d", len(inner.Schema()))
	}
	semi := NewJoin(l, r, HashAlgo, logical.JoinSemi, cond,
		[]expr.EquiKey{{Left: 0, Right: 0}}, SingleDist, "single")
	if len(semi.Schema()) != 3 {
		t.Errorf("semi join width = %d", len(semi.Schema()))
	}
}

func TestFormatIncludesTraits(t *testing.T) {
	s := scanFixture()
	f := NewFilter(s, expr.True)
	out := Format(f)
	if out == "" || len(out) < 10 {
		t.Errorf("format = %q", out)
	}
}
