package physical

import (
	"fmt"
	"strings"

	"gignite/internal/catalog"
	"gignite/internal/cost"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/types"
)

// Node is a physical plan operator. All implementations embed Props.
type Node interface {
	Schema() types.Fields
	Inputs() []Node
	// SetInputs replaces the children in place (fragmentation rewires
	// trees; physical plans are single-owner so in-place is safe).
	SetInputs(inputs []Node)
	Dist() Distribution
	Collation() []types.SortKey
	// Props exposes the common mutable properties.
	Props() *Props
	// Describe renders one line for EXPLAIN output.
	Describe() string
}

// Props carries the common physical properties: traits, the planner's
// cardinality estimate, and the operator's self cost under the active
// cost model.
type Props struct {
	Fields  types.Fields
	Dist    Distribution
	Coll    []types.SortKey
	EstRows float64
	Self    cost.Cost
	// Total is the cumulative cost of the subtree, filled by the planner.
	Total cost.Cost
}

type base struct {
	props  Props
	inputs []Node
}

func (b *base) Schema() types.Fields       { return b.props.Fields }
func (b *base) Inputs() []Node             { return b.inputs }
func (b *base) SetInputs(inputs []Node)    { b.inputs = inputs }
func (b *base) Dist() Distribution         { return b.props.Dist }
func (b *base) Collation() []types.SortKey { return b.props.Coll }
func (b *base) Props() *Props              { return &b.props }

// ---------------------------------------------------------------------------
// Scans

// TableScan reads a base table partition-parallel. Its natural
// distribution is Hash on the affinity column (partitioned tables) or
// Broadcast (replicated tables).
type TableScan struct {
	base
	Table *catalog.Table
	Alias string
}

// NewTableScan builds a table scan with the table's natural traits.
func NewTableScan(t *catalog.Table, alias string, fields types.Fields) *TableScan {
	s := &TableScan{Table: t, Alias: alias}
	s.props.Fields = fields
	if t.Replicated {
		s.props.Dist = BroadcastDist
	} else {
		s.props.Dist = HashDist(t.AffinityOrdinal())
	}
	return s
}

func (s *TableScan) Describe() string {
	return fmt.Sprintf("TableScan %s (dist=%s)", s.Table.Name, s.props.Dist)
}

// IndexScan reads a base table in index order, yielding a per-partition
// collation the planner can exploit (sort elimination, sort-based
// aggregation — the paper's Q14 improvement).
type IndexScan struct {
	base
	Table *catalog.Table
	Alias string
	Index *catalog.Index
}

// NewIndexScan builds an index scan; its collation is the index key order.
func NewIndexScan(t *catalog.Table, alias string, idx *catalog.Index, fields types.Fields) *IndexScan {
	s := &IndexScan{Table: t, Alias: alias, Index: idx}
	s.props.Fields = fields
	if t.Replicated {
		s.props.Dist = BroadcastDist
	} else {
		s.props.Dist = HashDist(t.AffinityOrdinal())
	}
	keys := make([]types.SortKey, len(idx.Columns))
	for i, c := range idx.Columns {
		keys[i] = types.SortKey{Col: t.ColumnIndex(c)}
	}
	s.props.Coll = keys
	return s
}

func (s *IndexScan) Describe() string {
	return fmt.Sprintf("IndexScan %s.%s (dist=%s, coll=%s)",
		s.Table.Name, s.Index.Name, s.props.Dist, logical.DescribeKeys(s.props.Coll))
}

// Values is an inline relation, always Single.
type Values struct {
	base
	Rows []types.Row
}

// NewValues builds an inline relation.
func NewValues(fields types.Fields, rows []types.Row) *Values {
	v := &Values{Rows: rows}
	v.props.Fields = fields
	v.props.Dist = SingleDist
	return v
}

func (v *Values) Describe() string { return fmt.Sprintf("Values %d rows", len(v.Rows)) }

// ---------------------------------------------------------------------------
// Row operators

// Filter drops rows whose condition is not TRUE; traits pass through.
type Filter struct {
	base
	Cond expr.Expr
}

// NewFilter builds a filter over an input.
func NewFilter(input Node, cond expr.Expr) *Filter {
	f := &Filter{Cond: cond}
	f.inputs = []Node{input}
	f.props.Fields = input.Schema()
	f.props.Dist = input.Dist()
	f.props.Coll = input.Collation()
	return f
}

func (f *Filter) Describe() string { return fmt.Sprintf("Filter %s", f.Cond) }

// Project computes output columns; the distribution keys and collation are
// remapped through the projection (dropped key ⇒ keyless hash / no
// collation).
type Project struct {
	base
	Exprs []expr.Expr
}

// NewProject builds a projection.
func NewProject(input Node, exprs []expr.Expr, fields types.Fields) *Project {
	p := &Project{Exprs: exprs}
	p.inputs = []Node{input}
	p.props.Fields = fields
	// Build the input→output mapping for pass-through columns.
	inW := len(input.Schema())
	mapping := make([]int, inW)
	for i := range mapping {
		mapping[i] = -1
	}
	for out, e := range exprs {
		if c, ok := e.(*expr.ColRef); ok && mapping[c.Index] < 0 {
			mapping[c.Index] = out
		}
	}
	p.props.Dist = input.Dist().RemapKeys(mapping)
	p.props.Coll = remapCollation(input.Collation(), mapping)
	return p
}

func remapCollation(coll []types.SortKey, mapping []int) []types.SortKey {
	out := make([]types.SortKey, 0, len(coll))
	for _, k := range coll {
		if k.Col >= len(mapping) || mapping[k.Col] < 0 {
			// A prefix of the collation survives projection.
			return out
		}
		out = append(out, types.SortKey{Col: mapping[k.Col], Desc: k.Desc, NullsLast: k.NullsLast})
	}
	return out
}

func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// Sort orders rows within each execution unit (per partition for
// distributed inputs, globally when the input is Single).
type Sort struct {
	base
	Keys []types.SortKey
}

// NewSort builds a sort.
func NewSort(input Node, keys []types.SortKey) *Sort {
	s := &Sort{Keys: keys}
	s.inputs = []Node{input}
	s.props.Fields = input.Schema()
	s.props.Dist = input.Dist()
	s.props.Coll = keys
	return s
}

func (s *Sort) Describe() string { return "Sort " + logical.DescribeKeys(s.Keys) }

// Limit passes through at most N rows; it requires a Single input.
type Limit struct {
	base
	N int64
}

// NewLimit builds a limit.
func NewLimit(input Node, n int64) *Limit {
	l := &Limit{N: n}
	l.inputs = []Node{input}
	l.props.Fields = input.Schema()
	l.props.Dist = input.Dist()
	l.props.Coll = input.Collation()
	return l
}

func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// ---------------------------------------------------------------------------
// Aggregation

// AggPhase distinguishes single-phase aggregation from the distributed
// map/reduce split (§3.2: the reduce phase is the "reduction operator"
// that §5.3 excludes from multithreading).
type AggPhase uint8

const (
	// AggSinglePhase computes the final aggregate in one operator.
	AggSinglePhase AggPhase = iota
	// AggMap computes per-site partial aggregates.
	AggMap
	// AggReduce merges partial aggregates into final values.
	AggReduce
)

var aggPhaseNames = [...]string{"single", "map", "reduce"}

// String names the phase.
func (p AggPhase) String() string { return aggPhaseNames[p] }

// HashAggregate groups rows with a hash table.
type HashAggregate struct {
	base
	GroupBy []int
	Aggs    []expr.AggCall
	Phase   AggPhase
}

// NewHashAggregate builds a hash aggregation with the given output schema.
func NewHashAggregate(input Node, groupBy []int, aggs []expr.AggCall, phase AggPhase, fields types.Fields) *HashAggregate {
	a := &HashAggregate{GroupBy: groupBy, Aggs: aggs, Phase: phase}
	a.inputs = []Node{input}
	a.props.Fields = fields
	a.props.Dist = aggOutputDist(input, groupBy)
	return a
}

// aggOutputDist: group columns become outputs 0..k-1; the input hash keys
// survive only if they are all group columns.
func aggOutputDist(input Node, groupBy []int) Distribution {
	d := input.Dist()
	if d.Type != Hash {
		return d
	}
	mapping := make([]int, len(input.Schema()))
	for i := range mapping {
		mapping[i] = -1
	}
	for out, g := range groupBy {
		mapping[g] = out
	}
	return d.RemapKeys(mapping)
}

func (a *HashAggregate) Describe() string {
	return fmt.Sprintf("HashAggregate(%s) group=%v aggs=[%s]",
		a.Phase, a.GroupBy, expr.DescribeAggs(a.Aggs))
}

// IsReduction reports whether the operator is a reduction in the §5.3
// sense (it must see all rows of a group, so variant fragments skip it).
func (a *HashAggregate) IsReduction() bool { return a.Phase != AggMap }

// SortAggregate streams over input sorted by the group columns.
type SortAggregate struct {
	base
	GroupBy []int
	Aggs    []expr.AggCall
	Phase   AggPhase
}

// NewSortAggregate builds a streaming aggregation; the input must be
// collated on the group columns.
func NewSortAggregate(input Node, groupBy []int, aggs []expr.AggCall, phase AggPhase, fields types.Fields) *SortAggregate {
	a := &SortAggregate{GroupBy: groupBy, Aggs: aggs, Phase: phase}
	a.inputs = []Node{input}
	a.props.Fields = fields
	a.props.Dist = aggOutputDist(input, groupBy)
	// Output stays sorted by the group columns (now the leading outputs).
	keys := make([]types.SortKey, len(groupBy))
	for i := range groupBy {
		keys[i] = types.SortKey{Col: i}
	}
	a.props.Coll = keys
	return a
}

func (a *SortAggregate) Describe() string {
	return fmt.Sprintf("SortAggregate(%s) group=%v aggs=[%s]",
		a.Phase, a.GroupBy, expr.DescribeAggs(a.Aggs))
}

// IsReduction reports whether the operator is a reduction (§5.3).
func (a *SortAggregate) IsReduction() bool { return a.Phase != AggMap }

// ---------------------------------------------------------------------------
// Joins

// JoinAlgo enumerates the physical join algorithms.
type JoinAlgo uint8

const (
	// NestedLoop is the fallback algorithm for arbitrary conditions.
	NestedLoop JoinAlgo = iota
	// Merge requires both inputs collated on the equi keys.
	Merge
	// HashAlgo is the §5.1.2 in-memory hash join (build = right input).
	HashAlgo
)

var joinAlgoNames = [...]string{"nested-loop", "merge", "hash"}

// String names the algorithm.
func (a JoinAlgo) String() string { return joinAlgoNames[a] }

// Join is a physical join with a chosen algorithm and distribution
// mapping.
type Join struct {
	base
	Algo JoinAlgo
	Type logical.JoinType
	Cond expr.Expr
	// Keys are the equi-join key pairs (empty for pure theta joins).
	Keys []expr.EquiKey
	// Mapping records which Table 2 / §5.1.1 distribution mapping produced
	// this join (for EXPLAIN and tests).
	Mapping string
	// BuildLeft, when true, builds the hash table on the left input
	// instead of the right (set by the adaptive re-planner when observed
	// input sizes invert the planner's estimate, DESIGN.md §17). Output
	// rows and their order are identical either way; only the build-side
	// memory charge moves to the smaller input.
	BuildLeft bool
}

// NewJoin builds a physical join; dist is the mapping's target
// distribution.
func NewJoin(left, right Node, algo JoinAlgo, jt logical.JoinType, cond expr.Expr,
	keys []expr.EquiKey, dist Distribution, mapping string) *Join {
	j := &Join{Algo: algo, Type: jt, Cond: cond, Keys: keys, Mapping: mapping}
	j.inputs = []Node{left, right}
	if jt.ProjectsLeftOnly() {
		j.props.Fields = left.Schema()
	} else {
		j.props.Fields = left.Schema().Concat(right.Schema())
	}
	j.props.Dist = dist
	if algo == Merge {
		j.props.Coll = left.Collation()
	}
	return j
}

func (j *Join) Describe() string {
	build := ""
	if j.BuildLeft {
		build = ", build=left"
	}
	return fmt.Sprintf("Join[%s] %s on %s (dist=%s, mapping=%s%s)",
		j.Algo, j.Type, j.Cond, j.props.Dist, j.Mapping, build)
}

// ---------------------------------------------------------------------------
// Exchange

// Exchange re-distributes rows between sites (§3.2.2): it is the operator
// fragmentation later splits into a sender/receiver pair.
type Exchange struct {
	base
	// Target is the distribution the exchange establishes.
	Target Distribution
}

// NewExchange builds an exchange establishing the target distribution.
// A collated input is preserved: the receiving side performs a k-way merge
// of the per-sender streams (Ignite's merging receiver), so sort order
// survives the network hop.
func NewExchange(input Node, target Distribution) *Exchange {
	e := &Exchange{Target: target}
	e.inputs = []Node{input}
	e.props.Fields = input.Schema()
	e.props.Dist = target
	e.props.Coll = input.Collation()
	return e
}

func (e *Exchange) Describe() string {
	return fmt.Sprintf("Exchange %s -> %s", e.inputs[0].Dist(), e.Target)
}

// ---------------------------------------------------------------------------
// Tree helpers

// Walk visits the plan top-down.
func Walk(n Node, fn func(Node) bool) {
	if !fn(n) {
		return
	}
	for _, in := range n.Inputs() {
		Walk(in, fn)
	}
}

// HasExchange reports whether any node in the subtree is an Exchange —
// the hasExchange predicate of Algorithm 2.
func HasExchange(n Node) bool {
	found := false
	Walk(n, func(m Node) bool {
		if _, ok := m.(*Exchange); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// CollationSatisfies reports whether actual ordering satisfies the wanted
// prefix.
func CollationSatisfies(actual, wanted []types.SortKey) bool {
	if len(wanted) > len(actual) {
		return false
	}
	for i, w := range wanted {
		a := actual[i]
		if a.Col != w.Col || a.Desc != w.Desc {
			return false
		}
	}
	return true
}

// Format pretty-prints a physical plan with traits and costs.
func Format(n Node) string {
	var sb strings.Builder
	formatInto(&sb, n, 0)
	return sb.String()
}

func formatInto(sb *strings.Builder, n Node, depth int) {
	p := n.Props()
	fmt.Fprintf(sb, "%s%s  [rows=%.0f cost=%.0f dist=%s]\n",
		strings.Repeat("  ", depth), n.Describe(), p.EstRows, p.Total.Scalar(), p.Dist)
	for _, in := range n.Inputs() {
		formatInto(sb, in, depth+1)
	}
}
