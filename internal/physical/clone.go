package physical

import (
	"fmt"

	"gignite/internal/expr"
)

// CloneTree deep-copies a physical plan, optionally rewriting every scalar
// expression through rewrite (nil keeps expressions shared — they are
// immutable, so sharing is safe). The copy preserves DAG shape exactly: a
// subtree the optimizer shares between two consumers is cloned once and
// both clones point at the same copy, because fragmentation's
// multi-consumer wave scheduling depends on that sharing.
//
// Cloning exists for the plan cache: fragment.Split rewires trees in place
// and the executor keys per-query state by node pointer, so a cached plan
// is never executed directly — each execution runs a fresh clone (with
// parameter placeholders substituted via rewrite) while the pristine plan
// stays in the cache.
func CloneTree(root Node, rewrite func(expr.Expr) expr.Expr) Node {
	c := &cloner{memo: make(map[Node]Node), rewrite: rewrite}
	return c.clone(root)
}

type cloner struct {
	memo    map[Node]Node
	rewrite func(expr.Expr) expr.Expr
}

func (c *cloner) expr(e expr.Expr) expr.Expr {
	if e == nil || c.rewrite == nil {
		return e
	}
	return expr.Transform(e, c.rewrite)
}

func (c *cloner) exprs(es []expr.Expr) []expr.Expr {
	if c.rewrite == nil {
		return es
	}
	out := make([]expr.Expr, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

func (c *cloner) aggs(as []expr.AggCall) []expr.AggCall {
	if c.rewrite == nil {
		return as
	}
	out := make([]expr.AggCall, len(as))
	copy(out, as)
	for i := range out {
		out[i].Arg = c.expr(out[i].Arg)
	}
	return out
}

func (c *cloner) clone(n Node) Node {
	if n == nil {
		return nil
	}
	if m, ok := c.memo[n]; ok {
		return m
	}
	var out Node
	switch t := n.(type) {
	case *TableScan:
		cp := *t
		out = &cp
	case *IndexScan:
		cp := *t
		out = &cp
	case *Values:
		cp := *t
		out = &cp
	case *Filter:
		cp := *t
		cp.Cond = c.expr(t.Cond)
		out = &cp
	case *Project:
		cp := *t
		cp.Exprs = c.exprs(t.Exprs)
		out = &cp
	case *Sort:
		cp := *t
		out = &cp
	case *Limit:
		cp := *t
		out = &cp
	case *HashAggregate:
		cp := *t
		cp.Aggs = c.aggs(t.Aggs)
		out = &cp
	case *SortAggregate:
		cp := *t
		cp.Aggs = c.aggs(t.Aggs)
		out = &cp
	case *Join:
		cp := *t
		cp.Cond = c.expr(t.Cond)
		out = &cp
	case *Exchange:
		cp := *t
		out = &cp
	case *Sender:
		cp := *t
		out = &cp
	case *Receiver:
		cp := *t
		out = &cp
	default:
		panic(fmt.Sprintf("physical: CloneTree: unhandled node type %T", n))
	}
	c.memo[n] = out
	ins := n.Inputs()
	if len(ins) == 0 {
		out.SetInputs(nil)
		return out
	}
	// Always allocate a fresh input slice: fragmentation mutates input
	// slices in place, and the original may still be cached.
	newIns := make([]Node, len(ins))
	for i, in := range ins {
		newIns[i] = c.clone(in)
	}
	out.SetInputs(newIns)
	return out
}
