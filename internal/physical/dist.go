// Package physical defines the trait-bearing physical operators the
// cost-based planner produces — the gignite analogue of Ignite's physical
// RelNodes. Each operator carries a distribution trait (§3.2.2) and a
// collation trait, estimated cardinality, and its self cost under the
// active cost model.
package physical

import (
	"fmt"
	"strconv"
	"strings"
)

// DistType enumerates the three distribution trait values of §3.2.2.
type DistType uint8

const (
	// Single: the operator executes at a single site.
	Single DistType = iota
	// Broadcast: the operator executes at all sites, each holding all
	// rows.
	Broadcast
	// Hash: the operator executes at the sites a hash function assigns.
	Hash
)

var distNames = [...]string{Single: "single", Broadcast: "broadcast", Hash: "hash"}

// String names the distribution type.
func (d DistType) String() string { return distNames[d] }

// Distribution is the distribution trait: a type plus, for Hash, the
// output column ordinals the hash function is applied to. Keys may be
// empty for Hash, meaning "partitioned, but on no visible column" (the
// partition key was projected away); such a distribution cannot satisfy a
// keyed Hash requirement.
type Distribution struct {
	Type DistType
	Keys []int
}

// SingleDist, BroadcastDist are the keyless distribution singletons.
var (
	SingleDist    = Distribution{Type: Single}
	BroadcastDist = Distribution{Type: Broadcast}
)

// HashDist builds a hash distribution on the given output columns.
func HashDist(keys ...int) Distribution {
	return Distribution{Type: Hash, Keys: keys}
}

// String renders the trait.
func (d Distribution) String() string {
	if d.Type != Hash {
		return d.Type.String()
	}
	parts := make([]string, len(d.Keys))
	for i, k := range d.Keys {
		parts[i] = strconv.Itoa(k)
	}
	return "hash[" + strings.Join(parts, ",") + "]"
}

// KeysEqual reports whether two hash key lists are identical (order
// matters: the hash function consumes them positionally).
func (d Distribution) KeysEqual(o Distribution) bool {
	if len(d.Keys) != len(o.Keys) {
		return false
	}
	for i := range d.Keys {
		if d.Keys[i] != o.Keys[i] {
			return false
		}
	}
	return true
}

// Satisfies implements the distribution satisfaction matrix (Table 1 of
// the paper): a source satisfies a target when the source executes at a
// superset of the target's sites with compatible placement.
//
//	          target:  Single  Broadcast  Hash
//	source Single      yes     no         no
//	source Broadcast   yes     yes        yes
//	source Hash        no      yes*       yes*
//
// (*) only when the source hash placement covers the target: for a Hash
// target this means the same hash keys; a Hash source never has every row
// at every site, so the Broadcast case requires the degenerate one-site
// cluster, which callers model by passing sites=1.
func (d Distribution) Satisfies(target Distribution, sites int) bool {
	switch d.Type {
	case Single:
		return target.Type == Single
	case Broadcast:
		return true
	case Hash:
		switch target.Type {
		case Single:
			return false
		case Broadcast:
			return sites <= 1
		case Hash:
			if len(d.Keys) == 0 && len(target.Keys) == 0 {
				// A keyless-hash requirement only ever arises as "stay in
				// place" (derived from this very input's distribution), so
				// identity satisfies it.
				return true
			}
			return len(d.Keys) > 0 && d.KeysEqual(target)
		}
	}
	panic(fmt.Sprintf("physical: unknown distribution %d", d.Type))
}

// RemapKeys rewrites hash keys through a column mapping (old ordinal →
// new ordinal, -1 = dropped). If any key is dropped the result is a
// keyless hash distribution: still partitioned, no longer addressable.
func (d Distribution) RemapKeys(mapping []int) Distribution {
	if d.Type != Hash || len(d.Keys) == 0 {
		return d
	}
	keys := make([]int, 0, len(d.Keys))
	for _, k := range d.Keys {
		if k >= len(mapping) || mapping[k] < 0 {
			return Distribution{Type: Hash}
		}
		keys = append(keys, mapping[k])
	}
	return Distribution{Type: Hash, Keys: keys}
}

// ShiftKeys adds delta to every hash key (used when an input is embedded
// on the right side of a join output).
func (d Distribution) ShiftKeys(delta int) Distribution {
	if d.Type != Hash || len(d.Keys) == 0 {
		return d
	}
	keys := make([]int, len(d.Keys))
	for i, k := range d.Keys {
		keys[i] = k + delta
	}
	return Distribution{Type: Hash, Keys: keys}
}
