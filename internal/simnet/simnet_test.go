package simnet

import (
	"testing"
	"time"
)

func params() Params {
	return Params{
		CoresPerSite:      4,
		WorkPerSec:        1000,
		LatencySec:        0.001,
		BytesPerSec:       1e6,
		ThreadOverheadSec: 0.0001,
	}
}

func TestSingleFragmentMakespan(t *testing.T) {
	tr := &Trace{
		Order:     []int{0},
		Instances: map[int][]Instance{0: {{Frag: 0, Site: 0, Work: 1000}}},
		Consumers: map[int][]int{},
		RootFrag:  0,
	}
	got := Makespan(tr, params())
	want := time.Duration((0.0001 + 1.0) * float64(time.Second))
	if got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestParallelSitesDoNotAdd(t *testing.T) {
	// Two sender instances at different sites run in parallel; the root
	// waits for the slower one plus the network edge.
	tr := &Trace{
		Order: []int{1, 0},
		Instances: map[int][]Instance{
			1: {{Frag: 1, Site: 0, Work: 500}, {Frag: 1, Site: 1, Work: 1000}},
			0: {{Frag: 0, Site: 0, Work: 100}},
		},
		Sends: []Send{
			{Exchange: 0, FromFrag: 1, FromSite: 0, ToSite: 0, Bytes: 1000},
			{Exchange: 0, FromFrag: 1, FromSite: 1, ToSite: 0, Bytes: 1000},
		},
		Consumers: map[int][]int{0: {0}},
		RootFrag:  0,
	}
	p := params()
	got := Makespan(tr, p).Seconds()
	// Slower sender: 0.0001 + 1.0; edge: 0.001 + 0.001; root: 0.0001 + 0.1.
	want := 0.0001 + 1.0 + 0.001 + 0.001 + 0.0001 + 0.1
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("makespan = %v, want %v", got, want)
	}
}

func TestVariantsReduceMakespan(t *testing.T) {
	mk := func(variants int) float64 {
		insts := make([]Instance, variants)
		for v := 0; v < variants; v++ {
			insts[v] = Instance{Frag: 0, Site: 0, Variant: v, Work: 1000 / float64(variants)}
		}
		tr := &Trace{
			Order:     []int{0},
			Instances: map[int][]Instance{0: insts},
			Consumers: map[int][]int{},
			RootFrag:  0,
		}
		return Makespan(tr, params()).Seconds()
	}
	single, dual := mk(1), mk(2)
	if dual >= single {
		t.Errorf("2 variants (%v) not faster than 1 (%v)", dual, single)
	}
}

func TestContentionAboveCores(t *testing.T) {
	// 8 variants on a 4-core site: each instance slowed by 2x.
	insts := make([]Instance, 8)
	for v := range insts {
		insts[v] = Instance{Frag: 0, Site: 0, Variant: v, Work: 125}
	}
	tr := &Trace{
		Order:     []int{0},
		Instances: map[int][]Instance{0: insts},
		Consumers: map[int][]int{},
		RootFrag:  0,
	}
	got := Makespan(tr, params()).Seconds()
	want := 0.0001 + (125.0/1000)*2 // contention = 8/4
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("contended makespan = %v, want %v", got, want)
	}
}

func TestLoadFactorScalesCPU(t *testing.T) {
	tr := &Trace{
		Order:     []int{0},
		Instances: map[int][]Instance{0: {{Frag: 0, Site: 0, Work: 1000}}},
		Consumers: map[int][]int{},
		RootFrag:  0,
	}
	p := params()
	base := Makespan(tr, p).Seconds()
	p.LoadFactor = 3
	loaded := Makespan(tr, p).Seconds()
	if loaded <= base*2 {
		t.Errorf("load factor ignored: %v vs %v", loaded, base)
	}
}

func TestNetworkBytesMatter(t *testing.T) {
	mk := func(bytes float64) float64 {
		tr := &Trace{
			Order: []int{1, 0},
			Instances: map[int][]Instance{
				1: {{Frag: 1, Site: 1, Work: 10}},
				0: {{Frag: 0, Site: 0, Work: 10}},
			},
			Sends:     []Send{{Exchange: 0, FromFrag: 1, FromSite: 1, ToSite: 0, Bytes: bytes}},
			Consumers: map[int][]int{0: {0}},
			RootFrag:  0,
		}
		return Makespan(tr, params()).Seconds()
	}
	if mk(1e6) <= mk(1000) {
		t.Error("bytes shipped did not increase makespan")
	}
}

func TestTraceTotals(t *testing.T) {
	tr := &Trace{
		Instances: map[int][]Instance{
			0: {{Work: 10}, {Work: 20}},
			1: {{Work: 5}},
		},
		Sends: []Send{{Bytes: 100}, {Bytes: 200}},
	}
	if got := tr.TotalWork(); got != 35 {
		t.Errorf("TotalWork = %v", got)
	}
	if got := tr.TotalBytes(); got != 300 {
		t.Errorf("TotalBytes = %v", got)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.CoresPerSite <= 0 || p.WorkPerSec <= 0 || p.BytesPerSec <= 0 {
		t.Errorf("defaults invalid: %+v", p)
	}
	// Zero-value params fall back to defaults rather than dividing by 0.
	tr := &Trace{
		Order:     []int{0},
		Instances: map[int][]Instance{0: {{Work: 100}}},
		Consumers: map[int][]int{},
	}
	if Makespan(tr, Params{}) <= 0 {
		t.Error("zero params produced non-positive makespan")
	}
}

// TestRetryChargesRecoveringInstance: a recovery event delays the
// instance it belongs to (lost work + resend bytes + one instance
// start) and is included in the effort totals.
func TestRetryChargesRecoveringInstance(t *testing.T) {
	base := &Trace{
		Order:     []int{0},
		Instances: map[int][]Instance{0: {{Frag: 0, Site: 0, Work: 1000}}},
		Consumers: map[int][]int{},
		RootFrag:  0,
	}
	p := params()
	clean := Makespan(base, p)

	withRetry := &Trace{
		Order:     base.Order,
		Instances: base.Instances,
		Retries:   []Retry{{Frag: 0, Site: 0, Variant: 0, Host: 1, Work: 500, Bytes: 2000}},
		Consumers: base.Consumers,
		RootFrag:  0,
	}
	got := Makespan(withRetry, p)
	// Penalty: thread start + 500 work + latency + 2000 bytes.
	penalty := 0.0001 + 500/1000.0 + 0.001 + 2000/1e6
	want := clean + time.Duration(penalty*float64(time.Second))
	if diff := (got - want).Seconds(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("makespan = %v, want %v (clean %v)", got, want, clean)
	}

	if w := withRetry.TotalWork(); w != 1500 {
		t.Errorf("TotalWork = %v, want 1500 (retry work included)", w)
	}
	if b := withRetry.TotalBytes(); b != 2000 {
		t.Errorf("TotalBytes = %v, want 2000 (resend bytes included)", b)
	}

	// A zero-cost failover (host already known dead) adds nothing but the
	// instance start.
	pure := &Trace{
		Order:     base.Order,
		Instances: base.Instances,
		Retries:   []Retry{{Frag: 0, Site: 0, Variant: 0, Host: 1}},
		Consumers: base.Consumers,
		RootFrag:  0,
	}
	want = clean + time.Duration(0.0001*float64(time.Second))
	if got := Makespan(pure, p); got != want {
		t.Errorf("pure failover makespan = %v, want %v", got, want)
	}
}
