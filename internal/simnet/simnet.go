// Package simnet is the cost clock: it converts the work counters and
// shipment records of a real query execution into a modeled response time
// for a cluster the paper's testbed shape (N sites × C cores, 10 GbE).
//
// This is the substitution for the paper's physical machines (see
// DESIGN.md §2): the host running this reproduction is not the paper's
// testbed, so wall-clock time cannot reproduce its multi-site speedups.
// The clock computes the makespan of the fragment DAG instead: fragment
// instances run in parallel across sites (and across variant threads,
// §5.3), network edges add latency plus byte transfer time, and a site's
// threads contend for its cores. Because the inputs are counters from a
// real execution of the real plan, plan-quality differences translate
// into modeled-time differences through exactly the mechanisms the paper
// describes.
//
// Host-side parallelism is a separate axis: package cluster's wave
// scheduler runs fragment instances on real goroutines
// (Config.ExecParallelism), which changes how fast the reproduction
// itself executes but never the modeled times computed here — a Trace is
// merged at wave barriers in deterministic order, so Makespan sees the
// same record at any worker count.
package simnet

import (
	"time"
)

// Params is the modeled hardware profile. Defaults approximate one of the
// paper's machines (2× E5-2620v2, 24 logical cores, 10 GbE).
type Params struct {
	// CoresPerSite bounds intra-site thread parallelism.
	CoresPerSite int
	// WorkPerSec converts executor work units into seconds.
	WorkPerSec float64
	// LatencySec is the per-message network latency.
	LatencySec float64
	// BytesPerSec is the per-link network bandwidth.
	BytesPerSec float64
	// ThreadOverheadSec is the fixed cost of starting one fragment
	// instance (thread scheduling + setup); it is what makes useless
	// variant fragments a net loss (§6.2.3).
	ThreadOverheadSec float64
	// LoadFactor scales CPU time for externally induced contention (the
	// AQL experiments run k clients against the same sites). 0 means 1.
	LoadFactor float64
}

// DefaultParams is the testbed profile used by the benchmark harness:
// 24 logical cores per site, 10 GbE (~1.25 GB/s, ~100 µs per message).
func DefaultParams() Params {
	return Params{
		CoresPerSite:      24,
		WorkPerSec:        25e6,
		LatencySec:        100e-6,
		BytesPerSec:       1.25e9,
		ThreadOverheadSec: 100e-6,
	}
}

// Instance is one executed fragment instance.
type Instance struct {
	Frag    int
	Site    int
	Variant int
	Work    float64
}

// Send is one recorded shipment.
type Send struct {
	Exchange    int
	FromFrag    int
	FromSite    int
	FromVariant int
	ToSite      int
	Bytes       float64
}

// Retry is one recovery event: a failed attempt of an instance whose
// work (and already-shipped bytes) were lost and had to be redone at
// another replica host. Work and Bytes are zero for a pure failover
// (the host was already known dead, so nothing was attempted there).
type Retry struct {
	Frag    int
	Site    int
	Variant int
	// Host is the physical site the failed attempt ran at.
	Host  int
	Work  float64
	Bytes float64
}

// Hedge is one hedged straggler mitigation (DESIGN.md §14): when an
// instance's charged work exceeded the wave median by the configured
// factor, a speculative attempt launched on the next replica site after
// DelayWork work-units of modeled time. Exactly one attempt's outputs
// were kept; the loser's work (LostWork) and discarded shipments
// (LostBytes) are charged to the totals as speculation waste.
type Hedge struct {
	Frag    int
	Site    int
	Variant int
	// DelayWork is the straggler-detection threshold in work units: how
	// much modeled work elapsed before the speculative attempt launched.
	DelayWork float64
	// LostWork / LostBytes are the losing attempt's wasted effort.
	LostWork  float64
	LostBytes float64
	// Won reports that the speculative attempt beat the primary (the
	// instance's recorded Work is then the hedge attempt's work).
	Won bool
}

// FilterBuild is one site's share of a runtime join filter (DESIGN.md
// §13): the pre-pass ran the join's build subtree at Site before wave 0,
// spent Work units constructing the key filter, and shipped Bytes of
// filter state to the probe-side producer. Probe-side sends over Exchange
// are released only after every site's filter arrived, which is how the
// clock charges the rendezvous: the build runs off the critical path
// (it starts at t=0, overlapped with the producers), but pruned shipments
// cannot leave earlier than the filter handoff.
type FilterBuild struct {
	Exchange int
	JoinFrag int
	Site     int
	Work     float64
	Bytes    float64
}

// Trace is the execution record the clock consumes.
type Trace struct {
	// Order lists fragment IDs in dependency order (producers first).
	Order []int
	// Instances grouped by fragment ID.
	Instances map[int][]Instance
	// Sends is every shipment.
	Sends []Send
	// Retries records recovery events; each charges its lost work and
	// resent bytes to the recovering instance's elapsed time.
	Retries []Retry
	// Consumers maps exchange ID → consuming fragment IDs. An exchange
	// normally has one consumer, but an optimizer-shared subtree can give
	// it several; each consumer's start then waits on the arrival.
	Consumers map[int][]int
	// Filters records runtime join-filter builds; sends over a filtered
	// exchange are floored at the filter's ready time.
	Filters []FilterBuild
	// Hedges records hedged straggler attempts; a won hedge replaces the
	// straggler's elapsed time with the speculative attempt's launch delay
	// plus its (fast-replica) work.
	Hedges []Hedge
	// RootFrag is the fragment whose finish time is the query time.
	RootFrag int
}

type instKey struct{ frag, site, variant int }

// Makespan computes the modeled query response time.
func Makespan(tr *Trace, p Params) time.Duration {
	if p.WorkPerSec <= 0 {
		p = DefaultParams()
	}
	load := p.LoadFactor
	if load < 1 {
		load = 1
	}
	finish := make(map[instKey]float64)

	// A recovery event delays the instance that eventually succeeded: the
	// failed attempt's work was spent, its shipped bytes must be resent,
	// and the failover itself costs one instance start.
	recovery := make(map[instKey]float64)
	for _, r := range tr.Retries {
		pen := p.ThreadOverheadSec + r.Work/p.WorkPerSec
		if r.Bytes > 0 {
			pen += p.LatencySec + r.Bytes/p.BytesPerSec
		}
		recovery[instKey{r.Frag, r.Site, r.Variant}] += pen
	}

	// A runtime filter's ready time: its build subtrees run from t=0 at
	// the join's sites (the pre-pass), then the filter state crosses the
	// network to the probe-side producer. Sends over the guarded exchange
	// are floored at this time — the producer may compute concurrently,
	// but pruned rows cannot leave before the filter arrived.
	filterReady := make(map[int]float64)
	for _, fb := range tr.Filters {
		t := p.ThreadOverheadSec + fb.Work/p.WorkPerSec*load +
			p.LatencySec + fb.Bytes/p.BytesPerSec
		if t > filterReady[fb.Exchange] {
			filterReady[fb.Exchange] = t
		}
	}

	// A won hedge changes how its instance's elapsed time is computed: the
	// kept attempt only started after the detection delay (plus one extra
	// instance start for the speculative thread), but then ran at the
	// replica's speed — which is what cuts a slow site's straggler tail.
	hedged := make(map[instKey]*Hedge)
	for i := range tr.Hedges {
		h := &tr.Hedges[i]
		if h.Won {
			hedged[instKey{h.Frag, h.Site, h.Variant}] = h
		}
	}

	// Index sends by (consumer fragment, site).
	type edgeKey struct{ frag, site int }
	arrivals := make(map[edgeKey][]Send)
	for _, s := range tr.Sends {
		for _, cons := range tr.Consumers[s.Exchange] {
			k := edgeKey{cons, s.ToSite}
			arrivals[k] = append(arrivals[k], s)
		}
	}

	var rootFinish float64
	for _, fid := range tr.Order {
		insts := tr.Instances[fid]
		// Per-site thread count of this fragment (variants).
		threads := make(map[int]int)
		for _, in := range insts {
			threads[in.Site]++
		}
		for _, in := range insts {
			ready := 0.0
			for _, s := range arrivals[edgeKey{fid, in.Site}] {
				sf := finish[instKey{s.FromFrag, s.FromSite, s.FromVariant}]
				if fl := filterReady[s.Exchange]; fl > sf {
					sf = fl
				}
				arr := sf + p.LatencySec + s.Bytes/p.BytesPerSec
				if arr > ready {
					ready = arr
				}
			}
			contention := 1.0
			if t := threads[in.Site]; t > p.CoresPerSite {
				contention = float64(t) / float64(p.CoresPerSite)
			}
			elapsed := p.ThreadOverheadSec + in.Work/p.WorkPerSec*contention*load
			if h := hedged[instKey{fid, in.Site, in.Variant}]; h != nil {
				elapsed = 2*p.ThreadOverheadSec + h.DelayWork/p.WorkPerSec*load +
					in.Work/p.WorkPerSec*contention*load
			}
			elapsed += recovery[instKey{fid, in.Site, in.Variant}]
			f := ready + elapsed
			finish[instKey{fid, in.Site, in.Variant}] = f
			if fid == tr.RootFrag && f > rootFinish {
				rootFinish = f
			}
		}
	}
	return time.Duration(rootFinish * float64(time.Second))
}

// TotalWork sums all instance work (a parallelism-independent effort
// metric used by ablation reports), including work lost to failed
// attempts that were retried.
func (tr *Trace) TotalWork() float64 {
	var w float64
	for _, insts := range tr.Instances {
		for _, in := range insts {
			w += in.Work
		}
	}
	for _, r := range tr.Retries {
		w += r.Work
	}
	for _, fb := range tr.Filters {
		w += fb.Work
	}
	// Speculation waste: the losing side of every hedge race.
	for _, h := range tr.Hedges {
		w += h.LostWork
	}
	return w
}

// TotalBytes sums shipped bytes, including bytes that were discarded on
// a failed attempt and shipped again by the retry.
func (tr *Trace) TotalBytes() float64 {
	var b float64
	for _, s := range tr.Sends {
		b += s.Bytes
	}
	for _, r := range tr.Retries {
		b += r.Bytes
	}
	// Filter state is real network volume too (it is what makes oversized
	// filters a net loss).
	for _, fb := range tr.Filters {
		b += fb.Bytes
	}
	for _, h := range tr.Hedges {
		b += h.LostBytes
	}
	return b
}
