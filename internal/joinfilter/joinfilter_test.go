package joinfilter

import (
	"math/rand"
	"testing"
)

func TestExactSmallSet(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 100; i++ {
		b.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
	f := b.Build(Params{})
	if !f.Exact() {
		t.Fatalf("100 keys should stay exact, got %s", f)
	}
	for i := 0; i < 100; i++ {
		if !f.Test(uint64(i) * 0x9e3779b97f4a7c15) {
			t.Fatalf("false negative on key %d", i)
		}
	}
	misses := 0
	for i := 100; i < 1100; i++ {
		if f.Test(uint64(i) * 0x9e3779b97f4a7c15) {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("exact filter admitted %d absent keys", misses)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	keys := make([]uint64, 50_000)
	for i := range keys {
		keys[i] = rng.Uint64()
		b.Add(keys[i])
	}
	f := b.Build(Params{SmallKeys: 10})
	if f.Exact() {
		t.Fatal("50k keys should build a bloom filter")
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Fatalf("false negative on inserted key %x", k)
		}
	}
	// False-positive rate at 10 bits/key should be low single digits.
	fp := 0
	const probes = 100_000
	for i := 0; i < probes; i++ {
		if f.Test(rng.Uint64()) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f too high", rate)
	}
}

func TestDeterministicAcrossInsertionOrder(t *testing.T) {
	keys := make([]uint64, 20_000)
	rng := rand.New(rand.NewSource(11))
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	fwd, rev := NewBuilder(), NewBuilder()
	for _, k := range keys {
		fwd.Add(k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		rev.Add(keys[i])
	}
	a, b := fwd.Build(Params{}), rev.Build(Params{})
	if a.SizeBytes() != b.SizeBytes() || len(a.words) != len(b.words) {
		t.Fatalf("size mismatch: %s vs %s", a, b)
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			t.Fatalf("bit array differs at word %d", i)
		}
	}
}

func TestMergeAndCaps(t *testing.T) {
	a, b := NewBuilder(), NewBuilder()
	for i := 0; i < 1000; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 500)) // 500 overlap
	}
	a.Merge(b)
	if a.Len() != 1500 {
		t.Fatalf("merged distinct count = %d, want 1500", a.Len())
	}
	f := a.Build(Params{SmallKeys: 10, MaxBytes: 128})
	if got := f.SizeBytes(); got > 128 {
		t.Fatalf("bloom size %d exceeds MaxBytes", got)
	}
	for i := 0; i < 1500; i++ {
		if !f.Test(uint64(i)) {
			t.Fatalf("false negative after cap on key %d", i)
		}
	}
	if (*Filter)(nil).Test(42) != true {
		t.Fatal("nil filter must pass everything")
	}
}
