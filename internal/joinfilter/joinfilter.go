// Package joinfilter implements the compact key-membership filters the
// runtime join-filter pushdown ships from a hash join's build side to its
// probe-side producer fragment (DESIGN.md §13). A filter answers "could
// this key hash be in the build table?": false means definitely not (the
// probe row can be dropped before it is batched and shipped), true means
// maybe (the join re-checks exact equality, so false positives only cost
// wasted shipping, never wrong results).
//
// Keys are the same uint64 hashes the hash-join operator computes with
// types.Row.Hash over the equi-key columns, which is what makes false
// negatives impossible: a row the join would match hashes to a value the
// builder inserted.
//
// Small builds (at most Params.SmallKeys distinct hashes) keep the exact
// hash set; larger builds use a blocked-free classic bloom filter with a
// power-of-two bit array and double hashing. Both representations are
// insertion-order independent, so a filter built from the same key set is
// byte-identical at every host worker count.
package joinfilter

import "fmt"

// Params sizes filter construction.
type Params struct {
	// MaxBytes caps one bloom filter's bit-array size (0 = DefaultMaxBytes).
	MaxBytes int
	// SmallKeys is the exact-set threshold: builds with at most this many
	// distinct key hashes skip the bloom filter and keep the exact set
	// (0 = DefaultSmallKeys).
	SmallKeys int
	// BitsPerKey sizes the bloom bit array (0 = DefaultBitsPerKey).
	BitsPerKey int
}

// Default sizing: 10 bits/key ≈ 1% false-positive rate with 7 probes;
// 64 KiB caps the per-filter control-plane shipment.
const (
	DefaultMaxBytes   = 64 << 10
	DefaultSmallKeys  = 1024
	DefaultBitsPerKey = 10
	bloomProbes       = 7
)

func (p Params) withDefaults() Params {
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	if p.SmallKeys <= 0 {
		p.SmallKeys = DefaultSmallKeys
	}
	if p.BitsPerKey <= 0 {
		p.BitsPerKey = DefaultBitsPerKey
	}
	return p
}

// Builder accumulates the distinct key hashes of one build side.
type Builder struct {
	seen  map[uint64]struct{}
	order []uint64
}

// NewBuilder creates an empty builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[uint64]struct{})}
}

// Add inserts one key hash (duplicates are ignored).
func (b *Builder) Add(h uint64) {
	if _, ok := b.seen[h]; ok {
		return
	}
	b.seen[h] = struct{}{}
	b.order = append(b.order, h)
}

// Merge folds another builder's keys in (the per-site → union merge).
func (b *Builder) Merge(o *Builder) {
	for _, h := range o.order {
		b.Add(h)
	}
}

// Len returns the distinct key count.
func (b *Builder) Len() int { return len(b.order) }

// Build freezes the builder into a filter.
func (b *Builder) Build(p Params) *Filter {
	p = p.withDefaults()
	f := &Filter{keys: len(b.order)}
	if len(b.order) <= p.SmallKeys {
		f.exact = make(map[uint64]struct{}, len(b.order))
		for _, h := range b.order {
			f.exact[h] = struct{}{}
		}
		return f
	}
	bits := nextPow2(uint64(len(b.order)) * uint64(p.BitsPerKey))
	if max := uint64(p.MaxBytes) * 8; bits > max {
		bits = nextPow2(max) // MaxBytes rounded down to a power of two
		if bits > max {
			bits >>= 1
		}
	}
	if bits < 64 {
		bits = 64
	}
	f.mask = bits - 1
	f.words = make([]uint64, bits/64)
	for _, h := range b.order {
		f.insert(h)
	}
	return f
}

// Filter is a frozen membership filter over key hashes.
type Filter struct {
	// exact is the small-build representation (nil for bloom filters).
	exact map[uint64]struct{}
	// words/mask are the bloom bit array (power-of-two bits).
	words []uint64
	mask  uint64
	keys  int
}

// mix is a 64-bit finalizer (splitmix64) deriving the second probe hash.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (f *Filter) insert(h uint64) {
	h2 := mix(h) | 1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h + i*h2) & f.mask
		f.words[bit/64] |= 1 << (bit % 64)
	}
}

// Test reports whether the key hash may be in the build set. nil filters
// pass everything (a missing filter must never drop rows).
func (f *Filter) Test(h uint64) bool {
	if f == nil {
		return true
	}
	if f.exact != nil {
		_, ok := f.exact[h]
		return ok
	}
	h2 := mix(h) | 1
	for i := uint64(0); i < bloomProbes; i++ {
		bit := (h + i*h2) & f.mask
		if f.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Keys returns the distinct build-key count the filter was built from.
func (f *Filter) Keys() int {
	if f == nil {
		return 0
	}
	return f.keys
}

// Exact reports whether the filter kept the exact key set (no false
// positives beyond hash collisions).
func (f *Filter) Exact() bool { return f != nil && f.exact != nil }

// SizeBytes is the filter's modeled wire size: 8 bytes per exact key, or
// the bloom bit array.
func (f *Filter) SizeBytes() int64 {
	if f == nil {
		return 0
	}
	if f.exact != nil {
		return int64(len(f.exact)) * 8
	}
	return int64(len(f.words)) * 8
}

// String renders the filter for EXPLAIN output.
func (f *Filter) String() string {
	if f == nil {
		return "filter(nil)"
	}
	if f.exact != nil {
		return fmt.Sprintf("exact(keys=%d)", f.keys)
	}
	return fmt.Sprintf("bloom(keys=%d bits=%d)", f.keys, f.mask+1)
}

func nextPow2(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	v |= v >> 32
	return v + 1
}
