package volcano

import (
	"sort"
	"strings"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/cost"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/stats"
	"gignite/internal/types"
)

type canned struct {
	rows map[string]int64
	ndv  map[string]int64
}

func (c canned) RowCount(t string) int64 { return c.rows[t] }
func (c canned) NDV(t, col string) int64 { return c.ndv[t+"."+col] }
func (c canned) MinMax(t, col string) (types.Value, types.Value, bool) {
	return types.Null, types.Null, false
}

func orderScan(name string, rows int64, cols ...string) (*logical.Scan, canned) {
	t := &catalog.Table{Name: name, PrimaryKey: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c, Kind: types.KindInt})
	}
	return logical.NewScan(t, ""), canned{}
}

func dpPlanner(prov catalog.StatsProvider) *Planner {
	return New(Config{
		TwoPhase:   true,
		Sites:      4,
		Est:        stats.New(prov, false),
		CostParams: cost.Params{UseDistributionFactor: true},
	})
}

func TestExtractClusterFlattens(t *testing.T) {
	a, _ := orderScan("a", 10, "x")
	b, _ := orderScan("b", 10, "y")
	c, _ := orderScan("c", 10, "z")
	j1 := logical.NewJoin(a, b, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(1, types.KindInt, "")))
	j2 := logical.NewJoin(j1, c, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(2, types.KindInt, "")))
	cl := extractCluster(j2)
	if len(cl.leaves) != 3 {
		t.Fatalf("leaves = %d", len(cl.leaves))
	}
	if len(cl.conds) != 2 {
		t.Fatalf("conds = %d", len(cl.conds))
	}
	if cl.width != 3 {
		t.Errorf("width = %d", cl.width)
	}
	// Semi joins are cluster boundaries.
	semi := logical.NewJoin(j2, a, logical.JoinSemi, expr.True)
	clSemi := extractCluster(logical.NewJoin(semi, b, logical.JoinInner, expr.True))
	if len(clSemi.leaves) != 2 {
		t.Errorf("semi boundary not respected: %d leaves", len(clSemi.leaves))
	}
}

// TestDPPrefersSelectiveFirst: with a small dimension and a selective
// condition, DP should join the small table early rather than last.
func TestDPPrefersSelectiveFirst(t *testing.T) {
	prov := canned{
		rows: map[string]int64{"fact": 100000, "dim": 10, "mid": 1000},
		ndv: map[string]int64{
			"fact.f_dim": 10, "fact.f_mid": 1000,
			"dim.d_id": 10, "mid.m_id": 1000,
		},
	}
	fact := logical.NewScan(&catalog.Table{Name: "fact", PrimaryKey: []string{"f_id"},
		Columns: []catalog.Column{
			{Name: "f_id", Kind: types.KindInt},
			{Name: "f_dim", Kind: types.KindInt},
			{Name: "f_mid", Kind: types.KindInt},
		}}, "")
	dim := logical.NewScan(&catalog.Table{Name: "dim", PrimaryKey: []string{"d_id"},
		Columns: []catalog.Column{{Name: "d_id", Kind: types.KindInt}}}, "")
	mid := logical.NewScan(&catalog.Table{Name: "mid", PrimaryKey: []string{"m_id"},
		Columns: []catalog.Column{{Name: "m_id", Kind: types.KindInt}}}, "")

	// (fact ⋈ mid) ⋈ dim in syntax; global cols: fact 0-2, mid 3, dim 4.
	j1 := logical.NewJoin(fact, mid, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(2, types.KindInt, ""), expr.NewColRef(3, types.KindInt, "")))
	j2 := logical.NewJoin(j1, dim, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(4, types.KindInt, "")))

	p := dpPlanner(prov)
	out, err := p.exploreJoinOrders(j2)
	if err != nil {
		t.Fatal(err)
	}
	// The output must be wrapped in a projection restoring the original
	// 5-column layout.
	proj, ok := out.(*logical.Project)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if len(proj.Schema()) != 5 {
		t.Errorf("restored width = %d", len(proj.Schema()))
	}
	if p.TicketsUsed == 0 {
		t.Error("DP consumed no tickets")
	}
}

// TestDPSemanticsPreserved: reordering must not change results. We build a
// 3-relation cluster over Values nodes and compare DP output evaluated
// naively vs the syntactic order.
func TestDPSemanticsPreserved(t *testing.T) {
	mkValues := func(name string, vals ...int64) *logical.Scan {
		// Scans need tables, so cheat: use one-column tables and rely on
		// the estimator default.
		return logical.NewScan(&catalog.Table{Name: name, PrimaryKey: []string{"v"},
			Columns: []catalog.Column{{Name: "v", Kind: types.KindInt}}}, name)
	}
	a := mkValues("ta")
	b := mkValues("tb")
	c := mkValues("tc")
	cond1 := expr.NewBinOp(expr.OpEq, expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(1, types.KindInt, ""))
	cond2 := expr.NewBinOp(expr.OpEq, expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(2, types.KindInt, ""))
	j := logical.NewJoin(logical.NewJoin(a, b, logical.JoinInner, cond1), c, logical.JoinInner, cond2)

	p := dpPlanner(canned{})
	out, err := p.exploreJoinOrders(j)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the set of conditions in the reordered tree: all equi
	// conjuncts must survive somewhere (join conds or filters).
	var conds []string
	logical.Walk(out, func(n logical.Node) bool {
		switch v := n.(type) {
		case *logical.Join:
			for _, c := range expr.SplitConjuncts(v.Cond) {
				conds = append(conds, c.String())
			}
		case *logical.Filter:
			for _, c := range expr.SplitConjuncts(v.Cond) {
				conds = append(conds, c.String())
			}
		}
		return true
	})
	if len(conds) != 2 {
		t.Errorf("conditions lost or duplicated: %v", conds)
	}
	sort.Strings(conds)
	joined := strings.Join(conds, ";")
	if !strings.Contains(joined, "=") {
		t.Errorf("equalities missing: %v", conds)
	}
}

func TestRebuildSyntacticKeepsConditions(t *testing.T) {
	a, _ := orderScan("a", 10, "x")
	b, _ := orderScan("b", 10, "y")
	c, _ := orderScan("c", 10, "z")
	j1 := logical.NewJoin(a, b, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(0, types.KindInt, ""), expr.NewColRef(1, types.KindInt, "")))
	j2 := logical.NewJoin(j1, c, logical.JoinInner,
		expr.NewBinOp(expr.OpEq, expr.NewColRef(1, types.KindInt, ""), expr.NewColRef(2, types.KindInt, "")))
	cl := extractCluster(j2)
	rebuilt := cl.rebuildSyntactic()
	if rebuilt.Digest() != j2.Digest() {
		t.Errorf("syntactic rebuild changed the plan:\n%s\nvs\n%s",
			logical.Format(rebuilt), logical.Format(j2))
	}
}

func TestBudgetChargedPerSplit(t *testing.T) {
	prov := canned{}
	p := dpPlanner(prov)
	p.budget = 2 // absurdly small
	a, _ := orderScan("a", 10, "x")
	b, _ := orderScan("b", 10, "y")
	c, _ := orderScan("c", 10, "z")
	j := logical.NewJoin(logical.NewJoin(a, b, logical.JoinInner, expr.True), c,
		logical.JoinInner, expr.True)
	if _, err := p.exploreJoinOrders(j); err == nil {
		t.Error("budget not charged during DP")
	}
}
