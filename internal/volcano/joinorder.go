package volcano

import (
	"math/bits"

	"gignite/internal/expr"
	"gignite/internal/logical"
)

// This file implements the join-order exploration that Calcite's
// JoinCommuteRule + JoinPushThroughJoinRule perform in the memo. gignite
// realizes the same search as dynamic programming over connected subsets
// of each inner-join cluster, charging the ticket budget per candidate
// considered. Cyclic join graphs (TPC-H Q2/Q5/Q9) generate far more
// connected splits than tree-shaped ones and exhaust the single-phase
// budget — reproducing the paper's planning failures.

// maxDPLeaves bounds the DP (2^n subsets); clusters beyond it keep their
// syntactic order.
const maxDPLeaves = 12

// joinCluster is one maximal tree of adjacent inner joins.
type joinCluster struct {
	leaves  []logical.Node
	offsets []int       // global column offset of each leaf
	conds   []expr.Expr // join conjuncts over the global (in-order) layout
	width   int
}

// exploreJoinOrders rewrites every maximal inner-join cluster in the plan
// into its best DP order, top-down so nested joins fold into one cluster.
func (p *Planner) exploreJoinOrders(plan logical.Node) (logical.Node, error) {
	if j, ok := plan.(*logical.Join); ok && j.Type == logical.JoinInner {
		cl := extractCluster(j)
		// Recurse into the cluster leaves first (they may contain further
		// clusters under aggregates, semi joins, etc.).
		for i, leaf := range cl.leaves {
			nl, err := p.exploreJoinOrders(leaf)
			if err != nil {
				return nil, err
			}
			cl.leaves[i] = nl
		}
		if len(cl.leaves) >= 3 && len(cl.leaves) <= maxDPLeaves && !cl.hasEmptyLeaf() {
			return p.dpJoinOrder(cl)
		}
		// Cluster too small or too large for DP: keep the syntactic shape
		// with rewritten leaves.
		return cl.rebuildSyntactic(), nil
	}
	inputs := plan.Inputs()
	if len(inputs) == 0 {
		return plan, nil
	}
	newInputs := make([]logical.Node, len(inputs))
	for i, in := range inputs {
		ni, err := p.exploreJoinOrders(in)
		if err != nil {
			return nil, err
		}
		newInputs[i] = ni
	}
	return plan.WithInputs(newInputs), nil
}

// hasEmptyLeaf reports whether any leaf has a zero-width schema (which
// would break subset bookkeeping; such plans skip DP).
func (cl *joinCluster) hasEmptyLeaf() bool {
	for _, l := range cl.leaves {
		if len(l.Schema()) == 0 {
			return true
		}
	}
	return false
}

// rebuildSyntactic reassembles the cluster left-deep in leaf order,
// attaching each condition at the first join that covers it.
func (cl *joinCluster) rebuildSyntactic() logical.Node {
	node := cl.leaves[0]
	covered := uint(1)
	attached := make([]bool, len(cl.conds))
	for i := 1; i < len(cl.leaves); i++ {
		covered |= 1 << i
		var conds []expr.Expr
		for ci, c := range cl.conds {
			if attached[ci] {
				continue
			}
			if cl.condMask(c)&^covered == 0 {
				conds = append(conds, c) // global layout == left-deep layout
				attached[ci] = true
			}
		}
		node = logical.NewJoin(node, cl.leaves[i], logical.JoinInner, expr.Conjunction(conds))
	}
	return node
}

// extractCluster flattens a tree of adjacent inner joins into leaves and
// conjuncts over the global in-order column layout.
func extractCluster(root *logical.Join) *joinCluster {
	cl := &joinCluster{}
	var collect func(n logical.Node)
	collect = func(n logical.Node) {
		if j, ok := n.(*logical.Join); ok && j.Type == logical.JoinInner {
			leftStart := cl.width
			collect(j.Left)
			collect(j.Right)
			// The join's condition is over [left ++ right] which, given
			// in-order collection, equals the global layout shifted by the
			// cluster prefix before this subtree.
			if !expr.IsLiteralTrue(j.Cond) {
				shifted := expr.Shift(j.Cond, 0, leftStart)
				cl.conds = append(cl.conds, expr.SplitConjuncts(shifted)...)
			}
			return
		}
		cl.leaves = append(cl.leaves, n)
		cl.offsets = append(cl.offsets, cl.width)
		cl.width += len(n.Schema())
	}
	collect(root)
	return cl
}

// leafOf returns the leaf index owning a global column.
func (cl *joinCluster) leafOf(col int) int {
	for i := len(cl.leaves) - 1; i >= 0; i-- {
		if col >= cl.offsets[i] {
			return i
		}
	}
	return 0
}

// condMask returns the bitmask of leaves a condition references.
func (cl *joinCluster) condMask(c expr.Expr) uint {
	var mask uint
	for col := range expr.ColumnsUsed(c) {
		mask |= 1 << cl.leafOf(col)
	}
	return mask
}

// dpEntry is the best plan found for one leaf subset.
type dpEntry struct {
	node logical.Node
	// colPos maps global column ordinal → position in node's schema
	// (-1 when the leaf is not in the subset).
	colPos []int
	cost   float64
}

// dpJoinOrder runs subset DP and returns the best-ordered join tree with a
// projection restoring the original column order.
func (p *Planner) dpJoinOrder(cl *joinCluster) (logical.Node, error) {
	n := len(cl.leaves)
	full := uint(1)<<n - 1
	best := make(map[uint]*dpEntry, 1<<n)

	condMasks := make([]uint, len(cl.conds))
	for i, c := range cl.conds {
		condMasks[i] = cl.condMask(c)
	}

	// Base cases.
	for i, leaf := range cl.leaves {
		colPos := make([]int, cl.width)
		for g := range colPos {
			colPos[g] = -1
		}
		w := len(leaf.Schema())
		for k := 0; k < w; k++ {
			colPos[cl.offsets[i]+k] = k
		}
		node := leaf
		// Single-leaf conditions (already pushed by rules normally, but a
		// leaf-local cond can appear after OR-extraction).
		node, colPos = cl.applyConds(node, colPos, uint(1)<<i, condMasks)
		best[uint(1)<<i] = &dpEntry{node: node, colPos: colPos, cost: p.cfg.Est.RowCount(node)}
	}

	for s := uint(1); s <= full; s++ {
		if bits.OnesCount(uint(s)) < 2 {
			continue
		}
		var entry *dpEntry
		trySplit := func(a, b uint) error {
			ea, eb := best[a], best[b]
			if ea == nil || eb == nil {
				return nil
			}
			if err := p.charge(1); err != nil {
				return err
			}
			node, colPos := cl.buildJoin(p, ea, eb, s, condMasks)
			out := p.cfg.Est.RowCount(node)
			c := ea.cost + eb.cost + out
			if entry == nil || c < entry.cost {
				entry = &dpEntry{node: node, colPos: colPos, cost: c}
			}
			return nil
		}
		// Connected splits first: a split qualifies when some condition
		// spans both halves.
		foundConnected := false
		for a := (s - 1) & s; a > 0; a = (a - 1) & s {
			b := s ^ a
			if b == 0 {
				continue
			}
			if !splitConnected(a, b, s, condMasks) {
				continue
			}
			foundConnected = true
			if err := trySplit(a, b); err != nil {
				return nil, err
			}
		}
		if !foundConnected {
			// Cartesian fallback.
			for a := (s - 1) & s; a > 0; a = (a - 1) & s {
				b := s ^ a
				if b == 0 {
					continue
				}
				if err := trySplit(a, b); err != nil {
					return nil, err
				}
			}
		}
		if entry != nil {
			best[s] = entry
		}
	}

	final := best[full]
	// Restore the original global column order for the cluster's parent.
	exprs := make([]expr.Expr, cl.width)
	names := make([]string, cl.width)
	schema := final.node.Schema()
	for g := 0; g < cl.width; g++ {
		pos := final.colPos[g]
		exprs[g] = expr.NewColRef(pos, schema[pos].Kind, schema[pos].Name)
		names[g] = schema[pos].Name
	}
	return logical.NewProject(final.node, exprs, names), nil
}

// splitConnected reports whether some condition covered by s spans both a
// and b.
func splitConnected(a, b, s uint, condMasks []uint) bool {
	for _, m := range condMasks {
		if m&^s != 0 {
			continue
		}
		if m&a != 0 && m&b != 0 {
			return true
		}
	}
	return false
}

// buildJoin joins two DP entries, attaching every condition that becomes
// fully covered.
func (cl *joinCluster) buildJoin(p *Planner, ea, eb *dpEntry, s uint, condMasks []uint) (logical.Node, []int) {
	leftW := len(ea.node.Schema())
	colPos := make([]int, cl.width)
	for g := range colPos {
		switch {
		case ea.colPos[g] >= 0:
			colPos[g] = ea.colPos[g]
		case eb.colPos[g] >= 0:
			colPos[g] = eb.colPos[g] + leftW
		default:
			colPos[g] = -1
		}
	}
	aMask := entryMask(cl, ea)
	bMask := entryMask(cl, eb)
	var conds []expr.Expr
	for i, c := range cl.conds {
		m := condMasks[i]
		if m&^s != 0 {
			continue
		}
		// Attach exactly when the condition spans both inputs (conditions
		// inside one side were attached when that side was built).
		if m&aMask != 0 && m&bMask != 0 {
			conds = append(conds, expr.Remap(c, colPos))
		}
	}
	j := logical.NewJoin(ea.node, eb.node, logical.JoinInner, expr.Conjunction(conds))
	return j, colPos
}

// applyConds attaches single-leaf conditions as filters on a base entry.
func (cl *joinCluster) applyConds(node logical.Node, colPos []int,
	mask uint, condMasks []uint) (logical.Node, []int) {
	var local []expr.Expr
	for i, c := range cl.conds {
		if condMasks[i] == mask {
			local = append(local, expr.Remap(c, colPos))
		}
	}
	if len(local) > 0 {
		node = logical.NewFilter(node, expr.Conjunction(local))
	}
	return node, colPos
}

// entryMask recovers which leaves an entry covers from its column map.
func entryMask(cl *joinCluster, e *dpEntry) uint {
	var mask uint
	for i := range cl.leaves {
		if e.colPos[cl.offsets[i]] >= 0 {
			mask |= 1 << i
		}
	}
	return mask
}
