// Package volcano implements the cost-based planner stage — gignite's
// VolcanoPlanner. It optimizes a logical plan into a trait-complete
// physical plan by memoized top-down search: each (logical subplan,
// required traits) pair is optimized once; alternatives (join algorithms,
// distribution mappings from Table 2 + §5.1.1, aggregation strategies) are
// costed under the active cost model and the cheapest is kept. Trait
// mismatches are repaired by enforcers: Exchange for distribution, Sort
// for collation.
//
// The planner reproduces the paper's two search regimes (§4.3):
//
//   - Single-phase (the IC baseline): logical join-permutation exploration
//     and physical implementation choices are intertwined, so every
//     explored join order re-explores its physical alternatives. The
//     search budget is charged accordingly, and large/cyclic join graphs
//     exhaust it — the paper's "failed to generate execution plans".
//   - Two-phase (IC+): a logical pass runs first (see package hep), then
//     join orders are explored once and physicalized with memoization.
//     The join-permutation rules are conditionally disabled for queries
//     with more than MaxJoins joins or more than MaxNesting nested joins.
package volcano

import (
	"errors"
	"fmt"

	"gignite/internal/cost"
	"gignite/internal/hep"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/rules"
	"gignite/internal/stats"
	"gignite/internal/types"
)

// ErrBudgetExceeded is returned when the search exceeds its ticket budget
// — the reproduction of the paper's planning failures ("exceed either the
// computation time limit or the system resource limit").
var ErrBudgetExceeded = errors.New("volcano: plan search budget exceeded")

// Config selects the planner behaviours of the system variants.
type Config struct {
	// Rules configures the logical phase.
	Rules rules.Config
	// TwoPhase enables the §4.3 logical-then-physical split (IC+).
	TwoPhase bool
	// EnableHashJoin admits the §5.1.2 hash-join operator.
	EnableHashJoin bool
	// FullyDistributedJoins admits the §5.1.1 broadcast mappings.
	FullyDistributedJoins bool
	// Sites is the cluster size (for trait satisfaction and df).
	Sites int
	// Est estimates cardinalities; CostParams prices operators.
	Est        *stats.Estimator
	CostParams cost.Params
	// Budget bounds search effort in tickets; <=0 selects DefaultBudget.
	Budget int
	// MaxJoins / MaxNesting are the §4.3 conditional-disabling thresholds
	// (two-phase only): queries beyond them skip join-order permutation.
	MaxJoins   int
	MaxNesting int
}

// DefaultBudget is the ticket budget corresponding to Calcite's planning
// resource limit. The single-phase (IC) regime pays singlePhaseFactor per
// alternative, so its effective search capacity is ~24x smaller than the
// two-phase (IC+) regime — the §4.3 mechanism. The default is sized so
// every TPC-H query still plans under both regimes on this reproduction's
// DP-based search (which, unlike Calcite's memo, does not blow up on the
// cyclic Q2/Q5/Q9 join graphs; those queries fail on the IC baseline at
// execution time instead — see EXPERIMENTS.md).
const DefaultBudget = 400000

// singlePhaseFactor multiplies ticket charges in single-phase mode: every
// explored join order re-derives the physical alternatives of its subtree
// (the "Cartesian product of logical and physical possibilities", §4.3).
const singlePhaseFactor = 24

// Planner is one optimization run's state.
type Planner struct {
	cfg          Config
	tickets      int
	budget       int
	memo         map[memoKey]memoEntry
	allowCommute bool
	// TicketsUsed counts tickets consumed (exposed for tests/telemetry).
	TicketsUsed int
}

type memoKey struct {
	digest string
	req    string
}

type memoEntry struct {
	node physical.Node
	err  error
}

// New creates a planner.
func New(cfg Config) *Planner {
	if cfg.MaxJoins <= 0 {
		cfg.MaxJoins = 4
	}
	if cfg.MaxNesting <= 0 {
		cfg.MaxNesting = 3
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	b := cfg.Budget
	if b <= 0 {
		b = DefaultBudget
	}
	return &Planner{cfg: cfg, budget: b, memo: make(map[memoKey]memoEntry)}
}

// charge spends search tickets; single-phase mode pays the interleaving
// multiplier.
func (p *Planner) charge(n int) error {
	if !p.cfg.TwoPhase {
		n *= singlePhaseFactor
	}
	p.tickets += n
	p.TicketsUsed = p.tickets
	if p.tickets > p.budget {
		return ErrBudgetExceeded
	}
	return nil
}

// Optimize runs the full Volcano stage and returns a physical plan whose
// root is Single-distributed (the root fragment's site).
func (p *Planner) Optimize(plan logical.Node) (physical.Node, error) {
	// Logical phase. In two-phase mode this is a distinct first phase; in
	// single-phase mode the same logical rules are simply part of the one
	// big rule set, so running them first is behaviour-preserving.
	plan = hep.New(rules.LogicalPhaseRules(p.cfg.Rules)).Optimize(plan)

	// Join-order exploration (the JoinCommute / JoinPushThroughJoin
	// rules). Two-phase mode disables it beyond the thresholds (§4.3);
	// single-phase mode always runs it, which is what blows the budget on
	// the hard queries.
	explore := true
	if p.cfg.TwoPhase {
		if logical.CountJoins(plan) > p.cfg.MaxJoins ||
			logical.MaxJoinNesting(plan) > p.cfg.MaxNesting {
			explore = false
		}
	}
	p.allowCommute = explore
	if explore {
		var err error
		plan, err = p.exploreJoinOrders(plan)
		if err != nil {
			return nil, err
		}
	}

	root, err := p.optimize(plan, Req{Dist: &physical.SingleDist})
	if err != nil {
		return nil, err
	}
	return root, nil
}

// Req is the physical property requirement passed down the search: an
// optional required distribution and an optional required collation.
type Req struct {
	Dist *physical.Distribution
	Coll []types.SortKey
}

func (r Req) String() string {
	d := "any"
	if r.Dist != nil {
		d = r.Dist.String()
	}
	return fmt.Sprintf("dist=%s coll=%s", d, logical.DescribeKeys(r.Coll))
}

// anyReq requires nothing.
var anyReq = Req{}

// optimize is the memoized core.
func (p *Planner) optimize(n logical.Node, req Req) (physical.Node, error) {
	key := memoKey{digest: n.Digest(), req: req.String()}
	if e, ok := p.memo[key]; ok {
		return e.node, e.err
	}
	node, err := p.optimizeImpl(n, req)
	p.memo[key] = memoEntry{node: node, err: err}
	return node, err
}

func (p *Planner) optimizeImpl(n logical.Node, req Req) (physical.Node, error) {
	var (
		alts []physical.Node
		err  error
	)
	switch t := n.(type) {
	case *logical.Scan:
		alts, err = p.scanAlternatives(t, req)
	case *logical.Values:
		v := physical.NewValues(t.Schema(), t.Rows)
		v.Props().EstRows = float64(len(t.Rows))
		alts = []physical.Node{v}
	case *logical.Filter:
		alts, err = p.filterAlternatives(t, req)
	case *logical.Project:
		alts, err = p.projectAlternatives(t, req)
	case *logical.Join:
		alts, err = p.joinAlternatives(t, req)
	case *logical.Aggregate:
		alts, err = p.aggregateAlternatives(t, req)
	case *logical.Sort:
		alts, err = p.sortAlternatives(t, req)
	case *logical.Limit:
		alts, err = p.limitAlternatives(t, req)
	default:
		return nil, fmt.Errorf("volcano: no physical implementation for %T", n)
	}
	if err != nil {
		return nil, err
	}
	if err := p.charge(len(alts)); err != nil {
		return nil, err
	}
	best := p.pickBest(alts, req)
	if best == nil {
		return nil, fmt.Errorf("volcano: no alternative satisfies %s for %s", req, n.Digest())
	}
	return best, nil
}

// pickBest enforces the requirement on every alternative and returns the
// cheapest.
func (p *Planner) pickBest(alts []physical.Node, req Req) physical.Node {
	var best physical.Node
	for _, a := range alts {
		if a == nil {
			continue
		}
		a = p.enforce(a, req)
		if a == nil {
			continue
		}
		if best == nil || a.Props().Total.Less(best.Props().Total) {
			best = a
		}
	}
	return best
}

// enforce repairs trait mismatches with Exchange (distribution) and Sort
// (collation) enforcers, pricing them.
func (p *Planner) enforce(n physical.Node, req Req) physical.Node {
	if req.Dist != nil && !n.Dist().Satisfies(*req.Dist, p.cfg.Sites) {
		n = p.newExchange(n, *req.Dist)
	}
	if len(req.Coll) > 0 && !physical.CollationSatisfies(n.Collation(), req.Coll) {
		n = p.newEnforcerSort(n, req.Coll)
	}
	if req.Dist != nil && !n.Dist().Satisfies(*req.Dist, p.cfg.Sites) {
		// A sort enforcer cannot change distribution; unreachable with the
		// current enforcer order but kept as a guard.
		return nil
	}
	return n
}

// newExchange builds a costed Exchange to the target distribution.
func (p *Planner) newExchange(input physical.Node, target physical.Distribution) physical.Node {
	ex := physical.NewExchange(input, target)
	rows := input.Props().EstRows
	width := float64(len(input.Schema()))
	copies := 1.0
	targets := 1
	switch target.Type {
	case physical.Broadcast:
		copies = float64(p.cfg.Sites)
		targets = p.cfg.Sites
	case physical.Hash:
		targets = p.cfg.Sites
	}
	pr := ex.Props()
	pr.EstRows = rows
	pr.Self = p.cfg.CostParams.Exchange(rows, width, copies, targets)
	pr.Total = pr.Self.Plus(input.Props().Total)
	return ex
}

// newEnforcerSort builds a costed Sort enforcer.
func (p *Planner) newEnforcerSort(input physical.Node, keys []types.SortKey) physical.Node {
	s := physical.NewSort(input, keys)
	rows := input.Props().EstRows
	width := float64(len(input.Schema()))
	pr := s.Props()
	pr.EstRows = rows
	pr.Self = p.cfg.CostParams.Sort(rows, width, p.df(input))
	pr.Total = pr.Self.Plus(input.Props().Total)
	return s
}

// df computes the Algorithm 2 distribution factor for an operator whose
// child subtree is given: the partition-site count of a base relation the
// operator can reach without crossing an exchange, else 1.
//
// Note: the paper's Algorithm 2 pseudocode returns 1 whenever *any*
// exchange exists in the subtree, but its §4.2 text says an operator
// qualifies "if [it] has a path to a leaf operator in the query tree
// which did not include an exchange" — and only the text's reading makes
// the distributed plans the paper reports cost-competitive (an operator
// above a co-located join still runs partition-parallel even though the
// join's other input was exchanged). This reproduction follows the text:
// the walk simply does not descend through Exchange operators.
func (p *Planner) df(child physical.Node) float64 {
	if !p.cfg.CostParams.UseDistributionFactor {
		return 1
	}
	df := 0.0
	physical.Walk(child, func(m physical.Node) bool {
		var replicated bool
		switch s := m.(type) {
		case *physical.Exchange:
			return false // paths through exchanges do not qualify
		case *physical.TableScan:
			replicated = s.Table.Replicated
		case *physical.IndexScan:
			replicated = s.Table.Replicated
		default:
			return true
		}
		sites := float64(p.cfg.Sites)
		if replicated {
			sites = 1
		}
		if df == 0 || sites < df {
			df = sites
		}
		return true
	})
	if df == 0 {
		return 1
	}
	return df
}

// finish fills an operator's estimate and cost and accumulates the total.
func (p *Planner) finish(n physical.Node, logicalNode logical.Node, self cost.Cost) physical.Node {
	pr := n.Props()
	pr.EstRows = p.cfg.Est.RowCount(logicalNode)
	pr.Self = self
	pr.Total = self
	for _, in := range n.Inputs() {
		pr.Total = pr.Total.Plus(in.Props().Total)
	}
	return n
}
