package volcano

import (
	"math"

	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/types"
)

// This file generates the physical alternatives per logical operator. Each
// generator returns candidate plans; optimize() charges tickets for them,
// enforces the caller's requirement and keeps the cheapest.

func widthOf(n physical.Node) float64 { return float64(len(n.Schema())) }

// scanAlternatives offers the table scan and, when a collation is wanted,
// index scans that can provide it.
func (p *Planner) scanAlternatives(t *logical.Scan, req Req) ([]physical.Node, error) {
	var alts []physical.Node

	ts := physical.NewTableScan(t.Table, t.Alias, t.Schema())
	rows := p.cfg.Est.RowCount(t)
	dfScan := float64(p.cfg.Sites)
	if t.Table.Replicated {
		dfScan = 1
	}
	p.finish(ts, t, p.cfg.CostParams.Scan(rows, float64(len(t.Schema())), dfScan))
	alts = append(alts, ts)

	if len(req.Coll) > 0 {
		for i := range t.Table.Indexes {
			idx := &t.Table.Indexes[i]
			is := physical.NewIndexScan(t.Table, t.Alias, idx, t.Schema())
			if !physical.CollationSatisfies(is.Collation(), req.Coll) {
				continue
			}
			// Index traversal costs slightly more CPU than a heap scan but
			// delivers the collation for free.
			c := p.cfg.CostParams.Scan(rows, float64(len(t.Schema())), dfScan)
			c.CPU *= 1.2
			p.finish(is, t, c)
			alts = append(alts, is)
		}
	}
	return alts, nil
}

// filterAlternatives pushes the requirement through (filters preserve
// traits) and also tries the unconstrained input.
func (p *Planner) filterAlternatives(t *logical.Filter, req Req) ([]physical.Node, error) {
	var alts []physical.Node
	reqs := []Req{anyReq}
	if req.Dist != nil || len(req.Coll) > 0 {
		reqs = append(reqs, req)
	}
	for _, r := range reqs {
		in, err := p.optimize(t.Input, r)
		if err != nil {
			return nil, err
		}
		f := physical.NewFilter(in, t.Cond)
		p.finish(f, t, p.cfg.CostParams.Filter(in.Props().EstRows, p.df(in)))
		alts = append(alts, f)
	}
	return alts, nil
}

// projectAlternatives translates the requirement through the projection
// when possible.
func (p *Planner) projectAlternatives(t *logical.Project, req Req) ([]physical.Node, error) {
	var reqs []Req
	if translated, ok := translateReqThroughProject(req, t); ok {
		reqs = append(reqs, translated)
	}
	reqs = append(reqs, anyReq)
	var alts []physical.Node
	for _, r := range reqs {
		in, err := p.optimize(t.Input, r)
		if err != nil {
			return nil, err
		}
		proj := physical.NewProject(in, t.Exprs, t.Schema())
		p.finish(proj, t, p.cfg.CostParams.Project(
			in.Props().EstRows, float64(len(t.Schema())), p.df(in)))
		alts = append(alts, proj)
	}
	return alts, nil
}

// translateReqThroughProject maps output-column requirements to input
// columns. Only pass-through column references translate.
func translateReqThroughProject(req Req, t *logical.Project) (Req, bool) {
	if req.Dist == nil && len(req.Coll) == 0 {
		return req, false
	}
	mapOut := func(out int) (int, bool) {
		c, ok := t.Exprs[out].(*expr.ColRef)
		if !ok {
			return 0, false
		}
		return c.Index, true
	}
	var out Req
	if req.Dist != nil {
		if req.Dist.Type == physical.Hash && len(req.Dist.Keys) > 0 {
			keys := make([]int, len(req.Dist.Keys))
			for i, k := range req.Dist.Keys {
				in, ok := mapOut(k)
				if !ok {
					return Req{}, false
				}
				keys[i] = in
			}
			d := physical.HashDist(keys...)
			out.Dist = &d
		} else {
			out.Dist = req.Dist
		}
	}
	if len(req.Coll) > 0 {
		coll := make([]types.SortKey, len(req.Coll))
		for i, k := range req.Coll {
			in, ok := mapOut(k.Col)
			if !ok {
				return Req{}, false
			}
			coll[i] = types.SortKey{Col: in, Desc: k.Desc, NullsLast: k.NullsLast}
		}
		out.Coll = coll
	}
	return out, true
}

// sortAlternatives: collation is handled as an enforced requirement on the
// input, so a Sort logical node physicalizes to its input optimized for
// {Single, keys} — the enforcer inserts the physical sort exactly when the
// input cannot deliver the order (index scans can).
func (p *Planner) sortAlternatives(t *logical.Sort, req Req) ([]physical.Node, error) {
	dist := physical.SingleDist
	if req.Dist != nil {
		dist = *req.Dist
	}
	in, err := p.optimize(t.Input, Req{Dist: &dist, Coll: t.Keys})
	if err != nil {
		return nil, err
	}
	return []physical.Node{in}, nil
}

// limitAlternatives: a limit needs the complete stream at one site.
func (p *Planner) limitAlternatives(t *logical.Limit, req Req) ([]physical.Node, error) {
	in, err := p.optimize(t.Input, Req{Dist: &physical.SingleDist, Coll: req.Coll})
	if err != nil {
		return nil, err
	}
	l := physical.NewLimit(in, t.N)
	p.finish(l, t, p.cfg.CostParams.Limit(math.Min(float64(t.N), in.Props().EstRows)))
	return []physical.Node{l}, nil
}

// aggregateAlternatives generates the aggregation strategies:
//
//	(a) single-site hash aggregation
//	(b) single-site sort-based aggregation (input collated on groups)
//	(c) two-phase map/reduce aggregation (non-DISTINCT only)
//	(d) co-located per-partition aggregation when the input is hash
//	    distributed on a subset of the group columns
func (p *Planner) aggregateAlternatives(t *logical.Aggregate, req Req) ([]physical.Node, error) {
	var alts []physical.Node
	est := p.cfg.Est
	inRows := est.RowCount(t.Input)
	outRows := est.RowCount(t)
	width := float64(len(t.Schema()))

	// (a) single-site hash aggregation.
	inSingle, err := p.optimize(t.Input, Req{Dist: &physical.SingleDist})
	if err != nil {
		return nil, err
	}
	ha := physical.NewHashAggregate(inSingle, t.GroupBy, t.Aggs, physical.AggSinglePhase, t.Schema())
	p.finish(ha, t, p.cfg.CostParams.HashAggregate(inRows, outRows, width, p.df(inSingle)))
	alts = append(alts, ha)

	// (b) single-site sort-based aggregation.
	if len(t.GroupBy) > 0 {
		coll := make([]types.SortKey, len(t.GroupBy))
		for i, g := range t.GroupBy {
			coll[i] = types.SortKey{Col: g}
		}
		inSorted, err := p.optimize(t.Input, Req{Dist: &physical.SingleDist, Coll: coll})
		if err != nil {
			return nil, err
		}
		sa := physical.NewSortAggregate(inSorted, t.GroupBy, t.Aggs, physical.AggSinglePhase, t.Schema())
		p.finish(sa, t, p.cfg.CostParams.SortAggregate(inRows, p.df(inSorted)))
		alts = append(alts, sa)
	}

	// (c) two-phase map/reduce.
	if !t.HasDistinct() && p.cfg.Sites > 1 {
		if split, err2 := physical.SplitAggCalls(len(t.GroupBy), t.Aggs, t.Schema()); err2 == nil {
			inAny, err := p.optimize(t.Input, anyReq)
			if err != nil {
				return nil, err
			}
			if inAny.Dist().Type != physical.Single {
				alts = append(alts, p.buildTwoPhaseAgg(t, inAny, split, inRows, outRows))
			}
		}
	}

	// (d) co-located complete aggregation.
	if len(t.GroupBy) > 0 {
		inAny, err := p.optimize(t.Input, anyReq)
		if err != nil {
			return nil, err
		}
		d := inAny.Dist()
		if d.Type == physical.Hash && len(d.Keys) > 0 && keysSubset(d.Keys, t.GroupBy) {
			la := physical.NewHashAggregate(inAny, t.GroupBy, t.Aggs, physical.AggSinglePhase, t.Schema())
			p.finish(la, t, p.cfg.CostParams.HashAggregate(inRows, outRows, width, p.df(inAny)))
			alts = append(alts, la)
		}
	}
	return alts, nil
}

func keysSubset(keys, groupBy []int) bool {
	for _, k := range keys {
		found := false
		for _, g := range groupBy {
			if g == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// buildTwoPhaseAgg assembles MapAgg → Exchange(single) → ReduceAgg
// [→ finalize Project].
func (p *Planner) buildTwoPhaseAgg(t *logical.Aggregate, in physical.Node,
	split *physical.AggSplit, inRows, outRows float64) physical.Node {

	sites := float64(p.cfg.Sites)
	mapRows := math.Min(inRows, outRows*sites)

	mapAgg := physical.NewHashAggregate(in, t.GroupBy, split.MapCalls, physical.AggMap, split.MapFields)
	pr := mapAgg.Props()
	pr.EstRows = mapRows
	pr.Self = p.cfg.CostParams.HashAggregate(inRows, mapRows, float64(len(split.MapFields)), p.df(in))
	pr.Total = pr.Self.Plus(in.Props().Total)

	ex := p.newExchange(mapAgg, physical.SingleDist)

	groupCols := make([]int, len(t.GroupBy))
	for i := range groupCols {
		groupCols[i] = i
	}
	reduce := physical.NewHashAggregate(ex, groupCols, split.ReduceCalls, physical.AggReduce, split.ReduceFields)
	rr := reduce.Props()
	rr.EstRows = outRows
	rr.Self = p.cfg.CostParams.HashAggregate(mapRows, outRows, float64(len(split.ReduceFields)), 1)
	rr.Total = rr.Self.Plus(ex.Props().Total)

	if split.Finalize == nil {
		return reduce
	}
	proj := physical.NewProject(reduce, split.Finalize, t.Schema())
	pp := proj.Props()
	pp.EstRows = outRows
	pp.Self = p.cfg.CostParams.Project(outRows, float64(len(t.Schema())), 1)
	pp.Total = pp.Self.Plus(rr.Total)
	return proj
}

// joinAlternatives enumerates algorithm × distribution-mapping ×
// orientation alternatives for one join.
func (p *Planner) joinAlternatives(t *logical.Join, req Req) ([]physical.Node, error) {
	leftW := len(t.Left.Schema())
	keys, _ := expr.SplitJoinCondition(t.Cond, leftW)

	var alts []physical.Node
	add, err := p.orientationAlternatives(t, t.Left, t.Right, t.Type, t.Cond, keys, false)
	if err != nil {
		return nil, err
	}
	alts = append(alts, add...)

	// §5.1.3: the commuted orientation (hash-join input swap and friends).
	if p.allowCommute && t.Type == logical.JoinInner {
		swKeys := make([]expr.EquiKey, len(keys))
		for i, k := range keys {
			swKeys[i] = expr.EquiKey{Left: k.Right, Right: k.Left}
		}
		swCond := commuteCond(t.Cond, leftW, len(t.Right.Schema()))
		add, err = p.orientationAlternativesSwapped(t, swCond, swKeys)
		if err != nil {
			return nil, err
		}
		alts = append(alts, add...)
	}
	return alts, nil
}

// commuteCond rewrites a condition over [L ++ R] to the [R ++ L] layout.
func commuteCond(cond expr.Expr, leftW, rightW int) expr.Expr {
	return expr.Transform(cond, func(n expr.Expr) expr.Expr {
		c, ok := n.(*expr.ColRef)
		if !ok {
			return n
		}
		if c.Index < leftW {
			return expr.NewColRef(c.Index+rightW, c.Typ, c.Name)
		}
		return expr.NewColRef(c.Index-leftW, c.Typ, c.Name)
	})
}

// orientationAlternativesSwapped builds the commuted join and restores the
// original column order with a projection.
func (p *Planner) orientationAlternativesSwapped(t *logical.Join, swCond expr.Expr,
	swKeys []expr.EquiKey) ([]physical.Node, error) {

	raw, err := p.orientationAlternatives(t, t.Right, t.Left, t.Type, swCond, swKeys, true)
	if err != nil {
		return nil, err
	}
	leftW := len(t.Left.Schema())
	rightW := len(t.Right.Schema())
	fields := t.Schema()
	out := make([]physical.Node, 0, len(raw))
	for _, j := range raw {
		// Restore [L ++ R] order.
		exprs := make([]expr.Expr, 0, leftW+rightW)
		js := j.Schema()
		for i := 0; i < leftW; i++ {
			exprs = append(exprs, expr.NewColRef(rightW+i, js[rightW+i].Kind, js[rightW+i].Name))
		}
		for i := 0; i < rightW; i++ {
			exprs = append(exprs, expr.NewColRef(i, js[i].Kind, js[i].Name))
		}
		proj := physical.NewProject(j, exprs, fields)
		pr := proj.Props()
		pr.EstRows = j.Props().EstRows
		pr.Self = p.cfg.CostParams.Project(pr.EstRows, float64(len(fields)), 1)
		pr.Total = pr.Self.Plus(j.Props().Total)
		out = append(out, proj)
	}
	return out, nil
}

// orientationAlternatives enumerates algorithm × mapping for one input
// orientation. t carries the estimates; left/right/cond/keys describe the
// (possibly swapped) orientation.
func (p *Planner) orientationAlternatives(t *logical.Join, left, right logical.Node,
	jt logical.JoinType, cond expr.Expr, keys []expr.EquiKey, swapped bool) ([]physical.Node, error) {

	leftW := len(left.Schema())
	leftNat, err := p.optimize(left, anyReq)
	if err != nil {
		return nil, err
	}
	rightNat, err := p.optimize(right, anyReq)
	if err != nil {
		return nil, err
	}
	mappings := physical.DeriveJoinDistributions(jt, keys, leftW,
		leftNat.Dist(), rightNat.Dist(), p.cfg.FullyDistributedJoins)

	algos := []physical.JoinAlgo{physical.NestedLoop}
	if len(keys) > 0 {
		algos = append(algos, physical.Merge)
		if p.cfg.EnableHashJoin {
			algos = append(algos, physical.HashAlgo)
		}
	}

	est := p.cfg.Est
	outRows := est.RowCount(t)

	var alts []physical.Node
	for _, m := range mappings {
		for _, algo := range algos {
			lReq := Req{Dist: &m.Left}
			rReq := Req{Dist: &m.Right}
			if algo == physical.Merge {
				lc := make([]types.SortKey, len(keys))
				rc := make([]types.SortKey, len(keys))
				for i, k := range keys {
					lc[i] = types.SortKey{Col: k.Left}
					rc[i] = types.SortKey{Col: k.Right}
				}
				lReq.Coll = lc
				rReq.Coll = rc
			}
			lp, err := p.optimize(left, lReq)
			if err != nil {
				return nil, err
			}
			rp, err := p.optimize(right, rReq)
			if err != nil {
				return nil, err
			}
			j := physical.NewJoin(lp, rp, algo, jt, cond, keys, m.Target, m.Name)
			lRows, rRows := lp.Props().EstRows, rp.Props().EstRows
			var self = p.cfg.CostParams.NestedLoopJoin(lRows, rRows, widthOf(rp), p.df(lp))
			switch algo {
			case physical.Merge:
				self = p.cfg.CostParams.MergeJoin(lRows, rRows, p.df(lp), p.df(rp))
			case physical.HashAlgo:
				self = p.cfg.CostParams.HashJoin(lRows, rRows, widthOf(rp), p.df(rp))
			}
			pr := j.Props()
			pr.EstRows = outRows
			pr.Self = self
			pr.Total = self.Plus(lp.Props().Total).Plus(rp.Props().Total)
			alts = append(alts, j)
		}
	}
	_ = swapped
	return alts, nil
}
