package volcano

import (
	"errors"
	"testing"

	"gignite/internal/binder"
	"gignite/internal/catalog"
	"gignite/internal/cost"
	"gignite/internal/hep"
	"gignite/internal/logical"
	"gignite/internal/physical"
	"gignite/internal/rules"
	"gignite/internal/sql"
	"gignite/internal/stats"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	ddl := []string{
		`CREATE TABLE orders (o_orderkey BIGINT PRIMARY KEY, o_custkey BIGINT, o_total DOUBLE)`,
		`CREATE TABLE lineitem (l_orderkey BIGINT, l_suppkey BIGINT, l_qty DOUBLE, PRIMARY KEY (l_orderkey))`,
		`CREATE TABLE customer (c_custkey BIGINT PRIMARY KEY, c_nationkey BIGINT, c_name VARCHAR(25))`,
		`CREATE REPLICATED TABLE nation (n_nationkey BIGINT PRIMARY KEY, n_name VARCHAR(25))`,
	}
	for _, d := range ddl {
		stmt, err := sql.Parse(d)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := binder.BindCreateTable(stmt.(*sql.CreateTableStmt))
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	// Canned statistics.
	setStats := func(name string, rows int64, ndv map[string]int64) {
		tbl, _ := cat.Table(name)
		tbl.Stats = &catalog.TableStats{RowCount: rows, NDV: ndv}
	}
	setStats("orders", 15000, map[string]int64{"o_orderkey": 15000, "o_custkey": 1000})
	setStats("lineitem", 60000, map[string]int64{"l_orderkey": 15000, "l_suppkey": 100})
	setStats("customer", 1500, map[string]int64{"c_custkey": 1500, "c_nationkey": 25})
	setStats("nation", 25, map[string]int64{"n_nationkey": 25})
	return cat
}

type variant uint8

const (
	vIC variant = iota
	vICPlus
)

func configFor(v variant, cat *catalog.Catalog, sites int) Config {
	switch v {
	case vIC:
		return Config{
			Rules:      rules.Config{},
			TwoPhase:   false,
			Sites:      sites,
			Est:        stats.New(cat, true),
			CostParams: cost.Params{LegacyUnits: true, ExchangePenaltyBug: true},
		}
	default:
		return Config{
			Rules:                 rules.Config{FilterCorrelate: true, JoinConditionSimplification: true},
			TwoPhase:              true,
			EnableHashJoin:        true,
			FullyDistributedJoins: true,
			Sites:                 sites,
			Est:                   stats.New(cat, false),
			CostParams:            cost.Params{UseDistributionFactor: true},
		}
	}
}

func planQuery(t *testing.T, v variant, sites int, query string) (physical.Node, *Planner) {
	t.Helper()
	cat := testCatalog(t)
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := binder.New(cat).BindSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configFor(v, cat, sites)
	lp = hep.RunGroups(lp, rules.Stage1Groups(cfg.Rules))
	p := New(cfg)
	pp, err := p.Optimize(lp)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return pp, p
}

func countNodes(n physical.Node, pred func(physical.Node) bool) int {
	c := 0
	physical.Walk(n, func(m physical.Node) bool {
		if pred(m) {
			c++
		}
		return true
	})
	return c
}

func TestSimpleScanPlansToSingleRoot(t *testing.T) {
	pp, _ := planQuery(t, vICPlus, 4, "SELECT o_orderkey FROM orders WHERE o_total > 10")
	if pp.Dist().Type != physical.Single {
		t.Errorf("root dist = %s", pp.Dist())
	}
	// The partitioned scan needs exactly one exchange to the root.
	if got := countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.Exchange)
		return ok
	}); got != 1 {
		t.Errorf("exchanges = %d\n%s", got, physical.Format(pp))
	}
}

func TestReplicatedScanNeedsNoExchange(t *testing.T) {
	pp, _ := planQuery(t, vICPlus, 4, "SELECT n_name FROM nation")
	if countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.Exchange)
		return ok
	}) != 0 {
		t.Errorf("replicated scan exchanged:\n%s", physical.Format(pp))
	}
}

func TestHashJoinChosenWhenEnabled(t *testing.T) {
	q := `SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey`
	pp, _ := planQuery(t, vICPlus, 4, q)
	hashJoins := countNodes(pp, func(n physical.Node) bool {
		j, ok := n.(*physical.Join)
		return ok && j.Algo == physical.HashAlgo
	})
	if hashJoins == 0 {
		t.Errorf("no hash join in IC+ plan:\n%s", physical.Format(pp))
	}
	// The co-located mapping should win: both tables partitioned on the
	// join key, so no exchange below the join.
	var join *physical.Join
	physical.Walk(pp, func(n physical.Node) bool {
		if j, ok := n.(*physical.Join); ok && join == nil {
			join = j
		}
		return true
	})
	if join.Mapping != "hash" && join.Mapping != "bcast-right" && join.Mapping != "bcast-left" {
		t.Errorf("join mapping = %s, want a distributed mapping\n%s",
			join.Mapping, physical.Format(pp))
	}
}

func TestBaselineHasNoHashJoin(t *testing.T) {
	q := `SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey`
	pp, _ := planQuery(t, vIC, 4, q)
	if countNodes(pp, func(n physical.Node) bool {
		j, ok := n.(*physical.Join)
		return ok && j.Algo == physical.HashAlgo
	}) != 0 {
		t.Errorf("IC plan used hash join:\n%s", physical.Format(pp))
	}
}

func TestBroadcastMappingKeepsLargeRelationInPlace(t *testing.T) {
	// customer (small) joined to lineitem-scale orders: with
	// fully-distributed joins the planner should prefer shipping the small
	// side.
	q := `SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey`
	pp, _ := planQuery(t, vICPlus, 8, q)
	var join *physical.Join
	physical.Walk(pp, func(n physical.Node) bool {
		if j, ok := n.(*physical.Join); ok && join == nil {
			join = j
		}
		return true
	})
	if join == nil {
		t.Fatal("no join")
	}
	if join.Mapping == "single" {
		t.Errorf("IC+ shipped everything to one site:\n%s", physical.Format(pp))
	}
}

func TestAggregationTwoPhase(t *testing.T) {
	q := `SELECT o_custkey, COUNT(*), SUM(o_total) FROM orders GROUP BY o_custkey`
	pp, _ := planQuery(t, vICPlus, 4, q)
	mapAggs := countNodes(pp, func(n physical.Node) bool {
		a, ok := n.(*physical.HashAggregate)
		return ok && a.Phase == physical.AggMap
	})
	reduceAggs := countNodes(pp, func(n physical.Node) bool {
		a, ok := n.(*physical.HashAggregate)
		return ok && a.Phase == physical.AggReduce
	})
	// Either two-phase (map+reduce) or co-located; both are distributed.
	singleSite := countNodes(pp, func(n physical.Node) bool {
		a, ok := n.(*physical.HashAggregate)
		return ok && a.Phase == physical.AggSinglePhase && a.Dist().Type == physical.Single
	})
	if mapAggs+reduceAggs == 0 && singleSite > 0 {
		t.Logf("plan:\n%s", physical.Format(pp))
	}
	if mapAggs != reduceAggs {
		t.Errorf("map=%d reduce=%d", mapAggs, reduceAggs)
	}
}

func TestDistinctAggregateStaysSinglePhase(t *testing.T) {
	q := `SELECT COUNT(DISTINCT o_custkey) FROM orders`
	pp, _ := planQuery(t, vICPlus, 4, q)
	if countNodes(pp, func(n physical.Node) bool {
		a, ok := n.(*physical.HashAggregate)
		return ok && a.Phase == physical.AggMap
	}) != 0 {
		t.Errorf("DISTINCT aggregate was split:\n%s", physical.Format(pp))
	}
}

func TestOrderBySatisfiedByEnforcedSort(t *testing.T) {
	q := `SELECT o_orderkey, o_total FROM orders ORDER BY o_total DESC LIMIT 10`
	pp, _ := planQuery(t, vICPlus, 4, q)
	lim, ok := pp.(*physical.Limit)
	if !ok {
		t.Fatalf("root = %T\n%s", pp, physical.Format(pp))
	}
	if !physical.CollationSatisfies(lim.Inputs()[0].Collation(),
		lim.Inputs()[0].Collation()) {
		t.Error("collation broken")
	}
	sorts := countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.Sort)
		return ok
	})
	if sorts == 0 {
		t.Errorf("no sort enforcer:\n%s", physical.Format(pp))
	}
}

func TestBudgetExceeded(t *testing.T) {
	cat := testCatalog(t)
	q := `SELECT o_orderkey FROM orders, lineitem, customer
		WHERE o_orderkey = l_orderkey AND o_custkey = c_custkey AND c_nationkey = l_suppkey`
	sel, _ := sql.ParseSelect(q)
	lp, err := binder.New(cat).BindSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configFor(vIC, cat, 4)
	cfg.Budget = 10
	_, err = New(cfg).Optimize(lp)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want budget exceeded", err)
	}
}

func TestSinglePhaseChargesMore(t *testing.T) {
	q := `SELECT o_orderkey FROM orders, lineitem, customer
		WHERE o_orderkey = l_orderkey AND o_custkey = c_custkey`
	_, pIC := planQuery(t, vIC, 4, q)
	_, pICPlus := planQuery(t, vICPlus, 4, q)
	if pIC.TicketsUsed <= pICPlus.TicketsUsed {
		t.Errorf("single-phase tickets %d <= two-phase %d",
			pIC.TicketsUsed, pICPlus.TicketsUsed)
	}
}

func TestConditionalPermutationDisabling(t *testing.T) {
	// A 5-join query in two-phase mode must skip join-order exploration
	// (and still plan).
	q := `SELECT orders.o_orderkey FROM orders, lineitem, customer, nation, orders o2
		WHERE orders.o_orderkey = l_orderkey AND orders.o_custkey = c_custkey
		AND c_nationkey = n_nationkey AND o2.o_custkey = c_custkey
		AND o2.o_total > 0`
	pp, p := planQuery(t, vICPlus, 4, q)
	if pp == nil {
		t.Fatal("no plan")
	}
	if p.allowCommute {
		t.Error("commute left enabled for a >4-join query")
	}
}

func TestJoinOrderDPReordersByCost(t *testing.T) {
	// nation (25 rows) joined late in syntax but cheap first: DP should
	// not leave the giant cross-ish order in place. We check the plan is
	// produced and the costed total is finite and positive.
	q := `SELECT c_name FROM orders, customer, nation
		WHERE o_custkey = c_custkey AND c_nationkey = n_nationkey`
	pp, _ := planQuery(t, vICPlus, 4, q)
	if pp.Props().Total.Scalar() <= 0 {
		t.Errorf("total cost = %v", pp.Props().Total)
	}
	joins := countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.Join)
		return ok
	})
	if joins != 2 {
		t.Errorf("join count = %d\n%s", joins, physical.Format(pp))
	}
}

func TestSchemaPreservedThroughOptimization(t *testing.T) {
	queries := []string{
		"SELECT o_orderkey, o_total FROM orders",
		"SELECT c_name FROM customer, nation WHERE c_nationkey = n_nationkey",
		"SELECT o_custkey, SUM(o_total) AS s FROM orders GROUP BY o_custkey ORDER BY s DESC LIMIT 5",
	}
	for _, q := range queries {
		cat := testCatalog(t)
		sel, _ := sql.ParseSelect(q)
		lp, err := binder.New(cat).BindSelect(sel)
		if err != nil {
			t.Fatal(err)
		}
		want := lp.Schema()
		for _, v := range []variant{vIC, vICPlus} {
			cfg := configFor(v, cat, 4)
			lp2 := hep.RunGroups(lp, rules.Stage1Groups(cfg.Rules))
			pp, err := New(cfg).Optimize(lp2)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			got := pp.Schema()
			if len(got) != len(want) {
				t.Fatalf("%q: schema %v vs %v", q, got, want)
			}
			for i := range want {
				if got[i].Kind != want[i].Kind {
					t.Errorf("%q col %d: kind %s vs %s", q, i, got[i].Kind, want[i].Kind)
				}
			}
		}
	}
}

func TestLogicalSortBecomesCollationRequirement(t *testing.T) {
	// Ordering by the primary key must be satisfiable via the index once
	// one exists.
	cat := testCatalog(t)
	tbl, _ := cat.Table("orders")
	tbl.Indexes = append(tbl.Indexes, catalog.Index{Name: "orders_pk", Columns: []string{"o_orderkey"}})
	sel, _ := sql.ParseSelect("SELECT o_orderkey FROM orders ORDER BY o_orderkey")
	lp, err := binder.New(cat).BindSelect(sel)
	if err != nil {
		t.Fatal(err)
	}
	cfg := configFor(vICPlus, cat, 1)
	pp, err := New(cfg).Optimize(lp)
	if err != nil {
		t.Fatal(err)
	}
	indexScans := countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.IndexScan)
		return ok
	})
	sorts := countNodes(pp, func(n physical.Node) bool {
		_, ok := n.(*physical.Sort)
		return ok
	})
	if indexScans == 0 || sorts != 0 {
		t.Errorf("index scan not used for ordering (scans=%d sorts=%d):\n%s",
			indexScans, sorts, physical.Format(pp))
	}
}

func TestSemiJoinPhysicalization(t *testing.T) {
	q := `SELECT o_orderkey FROM orders WHERE o_custkey IN (SELECT c_custkey FROM customer)`
	pp, _ := planQuery(t, vICPlus, 4, q)
	semis := countNodes(pp, func(n physical.Node) bool {
		j, ok := n.(*physical.Join)
		return ok && j.Type == logical.JoinSemi
	})
	if semis != 1 {
		t.Errorf("semi joins = %d\n%s", semis, physical.Format(pp))
	}
}
