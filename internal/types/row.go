package types

import (
	"fmt"
	"strings"
)

// Row is a tuple of values. Rows are passed by reference through the
// executor; operators that buffer rows must copy them with Clone if the
// producer reuses backing storage (gignite producers allocate fresh rows,
// so Clone is only needed by mutating operators).
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by other.
func (r Row) Concat(other Row) Row {
	out := make(Row, 0, len(r)+len(other))
	out = append(out, r...)
	out = append(out, other...)
	return out
}

// Hash combines the hashes of the values at the given column offsets.
func (r Row) Hash(cols []int) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = (h ^ r[c].Hash()) * prime64
	}
	return h
}

// Width returns the modeled byte width of the row.
func (r Row) Width() int64 {
	var w int64
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// String renders the row for tests and debugging.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// EqualOn reports whether rows a and b agree on the given column offsets of
// each (used by join probes: aCols indexes a, bCols indexes b).
func EqualOn(a Row, aCols []int, b Row, bCols []int) bool {
	if len(aCols) != len(bCols) {
		panic("types: EqualOn with mismatched key lengths")
	}
	for i := range aCols {
		if !Equal(a[aCols[i]], b[bCols[i]]) {
			return false
		}
	}
	return true
}

// CompareRows orders two rows lexicographically over the given sort keys.
type SortKey struct {
	Col  int
	Desc bool
	// NullsLast places NULLs after non-NULL values regardless of direction.
	NullsLast bool
}

// CompareRows compares rows a and b under keys, returning -1, 0 or 1.
func CompareRows(a, b Row, keys []SortKey) int {
	for _, k := range keys {
		av, bv := a[k.Col], b[k.Col]
		if k.NullsLast && (av.IsNull() || bv.IsNull()) {
			switch {
			case av.IsNull() && bv.IsNull():
				continue
			case av.IsNull():
				return 1
			default:
				return -1
			}
		}
		c := Compare(av, bv)
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// Field describes one column of a row schema: its name and scalar kind.
type Field struct {
	Name string
	Kind Kind
}

// Fields is an ordered row schema.
type Fields []Field

// Index returns the offset of the named field, or -1.
func (fs Fields) Index(name string) int {
	for i, f := range fs {
		if strings.EqualFold(f.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the field names in order.
func (fs Fields) Names() []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// Concat returns the concatenation of two schemas (join output shape).
func (fs Fields) Concat(other Fields) Fields {
	out := make(Fields, 0, len(fs)+len(other))
	out = append(out, fs...)
	out = append(out, other...)
	return out
}

// Clone returns a copy of the schema.
func (fs Fields) Clone() Fields {
	out := make(Fields, len(fs))
	copy(out, fs)
	return out
}

// String renders the schema as "(name kind, ...)".
func (fs Fields) String() string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmt.Sprintf("%s %s", f.Name, f.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
