package types

import (
	"testing"
	"testing/quick"
)

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewString("x")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestRowConcat(t *testing.T) {
	a := Row{NewInt(1)}
	b := Row{NewInt(2), NewInt(3)}
	c := a.Concat(b)
	if len(c) != 3 || c[0].Int() != 1 || c[2].Int() != 3 {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias its inputs.
	c[0] = NewInt(42)
	if a[0].Int() != 1 {
		t.Error("Concat aliases left input")
	}
}

func TestEqualOn(t *testing.T) {
	a := Row{NewInt(1), NewString("x")}
	b := Row{NewString("x"), NewInt(1)}
	if !EqualOn(a, []int{0, 1}, b, []int{1, 0}) {
		t.Error("EqualOn cross-offset mismatch")
	}
	if EqualOn(a, []int{0}, b, []int{0}) {
		t.Error("EqualOn(1, \"x\") reported equal")
	}
}

func TestEqualOnMismatchedKeysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EqualOn with mismatched key lengths did not panic")
		}
	}()
	EqualOn(Row{NewInt(1)}, []int{0}, Row{NewInt(1)}, nil)
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewString("b")}
	b := Row{NewInt(1), NewString("a")}
	keys := []SortKey{{Col: 0}, {Col: 1}}
	if got := CompareRows(a, b, keys); got != 1 {
		t.Errorf("CompareRows asc = %d, want 1", got)
	}
	keysDesc := []SortKey{{Col: 1, Desc: true}}
	if got := CompareRows(a, b, keysDesc); got != -1 {
		t.Errorf("CompareRows desc = %d, want -1", got)
	}
	if got := CompareRows(a, a, keys); got != 0 {
		t.Errorf("CompareRows self = %d, want 0", got)
	}
}

func TestCompareRowsNullsLast(t *testing.T) {
	a := Row{Null}
	b := Row{NewInt(5)}
	k := []SortKey{{Col: 0, NullsLast: true}}
	if got := CompareRows(a, b, k); got != 1 {
		t.Errorf("NULL should sort last: got %d", got)
	}
	if got := CompareRows(b, a, k); got != -1 {
		t.Errorf("non-NULL should sort first: got %d", got)
	}
	if got := CompareRows(a, a, k); got != 0 {
		t.Errorf("NULL vs NULL = %d, want 0", got)
	}
	// Default: NULLs first.
	if got := CompareRows(a, b, []SortKey{{Col: 0}}); got != -1 {
		t.Errorf("default NULL ordering = %d, want -1", got)
	}
}

func TestRowHashProperty(t *testing.T) {
	// Rows equal on key columns hash equally on those columns.
	f := func(a, b int64, s string) bool {
		r1 := Row{NewInt(a), NewString(s), NewInt(b)}
		r2 := Row{NewInt(a), NewString(s), NewInt(b + 1)}
		return r1.Hash([]int{0, 1}) == r2.Hash([]int{0, 1})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldsIndexCaseInsensitive(t *testing.T) {
	fs := Fields{{Name: "L_ORDERKEY", Kind: KindInt}, {Name: "l_comment", Kind: KindString}}
	if i := fs.Index("l_orderkey"); i != 0 {
		t.Errorf("Index(l_orderkey) = %d", i)
	}
	if i := fs.Index("L_COMMENT"); i != 1 {
		t.Errorf("Index(L_COMMENT) = %d", i)
	}
	if i := fs.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d", i)
	}
}

func TestFieldsConcatAndClone(t *testing.T) {
	a := Fields{{Name: "a", Kind: KindInt}}
	b := Fields{{Name: "b", Kind: KindString}}
	c := a.Concat(b)
	if len(c) != 2 || c[1].Name != "b" {
		t.Errorf("Concat = %v", c)
	}
	cl := a.Clone()
	cl[0].Name = "z"
	if a[0].Name != "a" {
		t.Error("Clone shares storage")
	}
	if got := c.String(); got != "(a BIGINT, b VARCHAR)" {
		t.Errorf("Fields.String() = %q", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "a" {
		t.Errorf("Names() = %v", names)
	}
}
