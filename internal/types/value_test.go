package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := NewInt(42); v.K != KindInt || v.Int() != 42 {
		t.Errorf("NewInt: got %v", v)
	}
	if v := NewFloat(2.5); v.K != KindFloat || v.Float() != 2.5 {
		t.Errorf("NewFloat: got %v", v)
	}
	if v := NewString("abc"); v.K != KindString || v.Str() != "abc" {
		t.Errorf("NewString: got %v", v)
	}
	if v := NewBool(true); !v.Bool() {
		t.Errorf("NewBool(true): got %v", v)
	}
	if v := NewBool(false); v.Bool() {
		t.Errorf("NewBool(false): got %v", v)
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if NewInt(1).IsNull() {
		t.Error("NewInt(1).IsNull() = true")
	}
}

func TestDateRoundTrip(t *testing.T) {
	v, err := ParseDate("1995-03-15")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if got := v.String(); got != "1995-03-15" {
		t.Errorf("date round trip: got %q", got)
	}
	if v2 := DateFromYMD(1995, 3, 15); v2 != v {
		t.Errorf("DateFromYMD mismatch: %v vs %v", v2, v)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
	epoch := DateFromYMD(1970, 1, 1)
	if epoch.I != 0 {
		t.Errorf("epoch day = %d, want 0", epoch.I)
	}
	next := DateFromYMD(1970, 1, 2)
	if next.I != 1 {
		t.Errorf("epoch+1 day = %d, want 1", next.I)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(1.0), NewInt(1), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{DateFromYMD(1995, 1, 1), DateFromYMD(1996, 1, 1), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compare(string, int) did not panic")
		}
	}()
	Compare(NewString("x"), NewInt(1))
}

func TestEqual(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("grouping Equal(Null, Null) = false")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("Equal(Null, 0) = true")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("Equal(3, 3.0) = false")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// 3 and 3.0 must hash identically because they group together.
	if NewInt(3).Hash() != NewFloat(3).Hash() {
		t.Error("hash(3) != hash(3.0)")
	}
	if NewString("abc").Hash() == NewString("abd").Hash() {
		t.Error("suspicious string hash collision on near strings")
	}
	if NewInt(1).Hash() == NewInt(2).Hash() {
		t.Error("hash(1) == hash(2)")
	}
}

func TestHashEqualProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		if Equal(va, vb) {
			return va.Hash() == vb.Hash()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return Compare(NewFloat(a), NewFloat(b)) == -Compare(NewFloat(b), NewFloat(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestWidth(t *testing.T) {
	if w := NewString("hello").Width(); w != 5 {
		t.Errorf("string width = %d, want 5", w)
	}
	if w := NewInt(1).Width(); w != 8 {
		t.Errorf("int width = %d, want 8", w)
	}
	if w := NewBool(true).Width(); w != 1 {
		t.Errorf("bool width = %d, want 1", w)
	}
	r := Row{NewInt(1), NewString("ab")}
	if w := r.Width(); w != 10 {
		t.Errorf("row width = %d, want 10", w)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if !KindInt.Numeric() || !KindFloat.Numeric() || KindString.Numeric() {
		t.Error("Numeric() misclassifies kinds")
	}
}
