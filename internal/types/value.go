// Package types defines the value model shared by every layer of gignite:
// scalar values, rows, field schemas, comparison and hashing. It is the
// lowest layer of the system; every other package depends on it and it
// depends only on the standard library.
package types

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the scalar types supported by the engine. The set mirrors
// what the TPC-H and SSB schemas require: integers, decimals (represented as
// float64, as Ignite's cost-relevant behaviour does not depend on exact
// decimal semantics), character data, booleans and dates.
type Kind uint8

const (
	// KindNull is the type of an untyped NULL literal.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 floating point number, used for the
	// benchmark DECIMAL columns.
	KindFloat
	// KindString is a variable-length character string.
	KindString
	// KindBool is a boolean.
	KindBool
	// KindDate is a calendar date, stored as days since 1970-01-01 (UTC).
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is an arithmetic type.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single scalar datum. It is a compact tagged union: numeric and
// date payloads live in I/F, strings in S. Values are immutable by
// convention; nothing in the engine mutates a Value in place.
type Value struct {
	K Kind
	I int64 // KindInt payload; KindDate days-since-epoch; KindBool 0/1
	F float64
	S string
}

// Null is the NULL value.
var Null = Value{K: KindNull}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{K: KindInt, I: v} }

// NewFloat returns a floating point value.
func NewFloat(v float64) Value { return Value{K: KindFloat, F: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{K: KindString, S: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	if v {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewDate returns a date value from days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// DateFromYMD builds a date value from a calendar date.
func DateFromYMD(year, month, day int) Value {
	t := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
	return NewDate(t.Unix() / 86400)
}

// ParseDate parses a YYYY-MM-DD literal.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool returns the boolean payload. It panics if the value is not a boolean;
// callers must check the kind (or nullness) first.
func (v Value) Bool() bool {
	if v.K != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.K))
	}
	return v.I != 0
}

// Int returns the integer payload, converting from float if necessary.
func (v Value) Int() int64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		panic(fmt.Sprintf("types: Int() on %s value", v.K))
	}
}

// Float returns the numeric payload widened to float64.
func (v Value) Float() float64 {
	switch v.K {
	case KindInt, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.K))
	}
}

// Str returns the string payload.
func (v Value) Str() string {
	if v.K != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.K))
	}
	return v.S
}

// Time returns the date payload as a time.Time (UTC midnight).
func (v Value) Time() time.Time {
	if v.K != KindDate {
		panic(fmt.Sprintf("types: Time() on %s value", v.K))
	}
	return time.Unix(v.I*86400, 0).UTC()
}

// String renders the value for display and plan digests.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.K))
	}
}

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare after widening to float64 when mixed; dates compare as day
// numbers. Comparing incompatible kinds (e.g. string vs int) panics, which
// indicates a binder bug rather than a user error.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	switch {
	case a.K == KindString && b.K == KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case a.K == KindBool && b.K == KindBool:
		return cmpInt64(a.I, b.I)
	case a.K == KindDate && b.K == KindDate:
		return cmpInt64(a.I, b.I)
	case a.K == KindInt && b.K == KindInt:
		return cmpInt64(a.I, b.I)
	case a.K.Numeric() && b.K.Numeric():
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default:
		panic(fmt.Sprintf("types: cannot compare %s with %s", a.K, b.K))
	}
}

// Equal reports whether two values compare equal under the grouping/hashing
// notion: NULL groups with NULL, numerics compare after widening, and values
// of incompatible kinds are simply unequal (no panic — join probes may
// legitimately see heterogeneous keys before the binder coerces them).
func Equal(a, b Value) bool {
	if a.K == KindNull && b.K == KindNull {
		return true
	}
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	if !comparableKinds(a.K, b.K) {
		return false
	}
	return Compare(a, b) == 0
}

func comparableKinds(a, b Kind) bool {
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Hash returns a 64-bit hash of the value (FNV-1a). Numeric kinds hash by
// their canonical widened representation so that 1 and 1.0 collide, matching
// Equal/Compare semantics for grouping.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix64 := func(u uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	switch v.K {
	case KindNull:
		mix(0)
	case KindInt, KindDate, KindBool:
		mix(1)
		mix64(uint64(v.I))
	case KindFloat:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			mix(1) // canonical with the equal integer
			mix64(uint64(int64(v.F)))
		} else {
			mix(2)
			mix64(math.Float64bits(v.F))
		}
	case KindString:
		mix(3)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}

// Width returns the modeled byte width of the value, used by the cost model
// and the simulated network to account for shipped bytes.
func (v Value) Width() int64 {
	switch v.K {
	case KindNull:
		return 1
	case KindInt, KindFloat, KindDate:
		return 8
	case KindBool:
		return 1
	case KindString:
		return int64(len(v.S))
	default:
		return 8
	}
}
