package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	// params counts `?` placeholders seen so far; each gets the next
	// zero-based ordinal in statement text order.
	params int
}

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().Text)
	}
	// Record the statement's placeholder count on the outermost SELECT
	// (prepared statements only support SELECT, so other statement kinds
	// surface their parameters as binder errors instead).
	switch s := stmt.(type) {
	case *SelectStmt:
		s.Params = p.params
	case *ExplainStmt:
		s.Query.Params = p.params
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

// ---------------------------------------------------------------------------
// Token helpers

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

// isKeyword reports whether the next token is the given keyword
// (case-insensitive identifier match).
func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.peek().Text)
	}
	return nil
}

func (p *Parser) isSymbol(sym string) bool {
	t := p.peek()
	return t.Kind == TokSymbol && t.Text == sym
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.isSymbol(sym) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().Text)
	}
	return nil
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos,
		fmt.Sprintf(format, args...))
}

// reservedKeywords may not be used as bare identifiers in expressions or
// aliases; this keeps the grammar unambiguous without a separate keyword
// token class.
var reservedKeywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "and": true, "or": true, "not": true,
	"in": true, "exists": true, "between": true, "like": true, "is": true,
	"null": true, "case": true, "when": true, "then": true, "else": true,
	"end": true, "join": true, "inner": true, "left": true, "right": true,
	"outer": true, "on": true, "as": true, "distinct": true, "by": true,
	"asc": true, "desc": true, "union": true, "all": true, "create": true,
	"insert": true, "values": true, "into": true, "view": true, "table": true,
	"index": true, "primary": true, "key": true, "explain": true,
}

func isReserved(word string) bool { return reservedKeywords[strings.ToLower(word)] }

// expectIdent consumes a non-reserved identifier.
func (p *Parser) expectIdent(what string) (string, error) {
	t := p.peek()
	if t.Kind != TokIdent || isReserved(t.Text) {
		return "", p.errorf("expected %s, found %q", what, t.Text)
	}
	p.advance()
	return t.Text, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("select"):
		return p.parseSelect()
	case p.isKeyword("explain"):
		p.advance()
		analyze := p.acceptKeyword("analyze")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel, Analyze: analyze}, nil
	case p.isKeyword("create"):
		return p.parseCreate()
	case p.isKeyword("insert"):
		return p.parseInsert()
	default:
		return nil, p.errorf("expected a statement, found %q", p.peek().Text)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("distinct")
	if sel.Distinct {
		// Tolerate SELECT DISTINCT ALL? No — but accept ALL alone below.
	} else {
		p.acceptKeyword("all")
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	// FROM.
	if p.acceptKeyword("from") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, tr)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// WHERE.
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	// GROUP BY.
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// HAVING.
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	// ORDER BY.
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	// LIMIT.
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errorf("expected a number after LIMIT, found %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT value %q", t.Text)
		}
		p.advance()
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// Bare * star.
	if p.isSymbol("*") {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// qualified star: ident.*
	if p.peek().Kind == TokIdent && !isReserved(p.peek().Text) &&
		p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		p.pos += 3
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		p.advance()
		item.Alias = t.Text
	}
	return item, nil
}

// parseTableRef parses one FROM item, folding trailing ANSI joins.
func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.isKeyword("join"):
			p.advance()
			jt = JoinInner
		case p.isKeyword("inner"):
			p.advance()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinInner
		case p.isKeyword("left"):
			p.advance()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = JoinLeft
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		left = &JoinRef{Left: left, Right: right, Type: jt, On: on}
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.acceptSymbol("(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: sel}
		p.acceptKeyword("as")
		if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
			p.advance()
			ref.Alias = t.Text
		}
		return ref, nil
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	ref := &TableName{Name: name}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent("alias")
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		p.advance()
		ref.Alias = t.Text
	}
	return ref, nil
}

// ---------------------------------------------------------------------------
// DDL / DML

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("create"); err != nil {
		return nil, err
	}
	replicated := p.acceptKeyword("replicated")
	switch {
	case p.isKeyword("table"):
		p.advance()
		return p.parseCreateTable(replicated)
	case p.isKeyword("index"):
		if replicated {
			return nil, p.errorf("REPLICATED applies only to CREATE TABLE")
		}
		p.advance()
		return p.parseCreateIndex()
	case p.isKeyword("view"):
		if replicated {
			return nil, p.errorf("REPLICATED applies only to CREATE TABLE")
		}
		p.advance()
		return p.parseCreateView()
	default:
		return nil, p.errorf("expected TABLE, INDEX or VIEW after CREATE")
	}
}

func (p *Parser) parseCreateTable(replicated bool) (Statement, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name, Replicated: replicated}
	for {
		if p.acceptKeyword("primary") {
			if err := p.expectKeyword("key"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent("primary key column")
				if err != nil {
					return nil, err
				}
				stmt.PrimaryKey = append(stmt.PrimaryKey, col)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			typ, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			// Tolerate NOT NULL.
			if p.acceptKeyword("not") {
				if err := p.expectKeyword("null"); err != nil {
					return nil, err
				}
			}
			if p.acceptKeyword("primary") {
				if err := p.expectKeyword("key"); err != nil {
					return nil, err
				}
				stmt.PrimaryKey = append(stmt.PrimaryKey, col)
			}
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: col, Type: typ})
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	// Optional AFFINITY KEY (col).
	if p.acceptKeyword("affinity") {
		if err := p.expectKeyword("key"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent("affinity column")
		if err != nil {
			return nil, err
		}
		stmt.AffinityKey = col
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

// parseTypeName consumes a SQL type, including parenthesized precision.
func (p *Parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected a type name, found %q", t.Text)
	}
	p.advance()
	name := strings.ToUpper(t.Text)
	// Two-word types like DOUBLE PRECISION.
	if name == "DOUBLE" && p.isKeyword("precision") {
		p.advance()
	}
	// Precision/scale.
	if p.acceptSymbol("(") {
		for !p.isSymbol(")") && !p.atEOF() {
			p.advance()
		}
		if err := p.expectSymbol(")"); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *Parser) parseCreateIndex() (Statement, error) {
	name, err := p.expectIdent("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table}
	for {
		col, err := p.expectIdent("index column")
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		// Tolerate ASC/DESC.
		p.acceptKeyword("asc")
		p.acceptKeyword("desc")
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseCreateView() (Statement, error) {
	name, err := p.expectIdent("view name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Select: sel}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// parseExpr parses an expression at the lowest precedence (OR).
func (p *Parser) parseExpr() (Node, error) { return p.parseOr() }

func (p *Parser) parseOr() (Node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Node, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Node, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparisons and the predicate suffixes IN, LIKE,
// BETWEEN, IS NULL.
func (p *Parser) parsePredicate() (Node, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	if t := p.peek(); t.Kind == TokSymbol {
		switch t.Text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.Text, L: left, R: right}, nil
		}
	}
	// Predicate suffixes, possibly NOT-prefixed.
	negate := false
	if p.isKeyword("not") {
		// Lookahead: NOT must be followed by IN / LIKE / BETWEEN here.
		save := p.pos
		p.advance()
		if p.isKeyword("in") || p.isKeyword("like") || p.isKeyword("between") {
			negate = true
		} else {
			p.pos = save
			return left, nil
		}
	}
	switch {
	case p.acceptKeyword("in"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.isKeyword("select") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{E: left, Select: sel, Negate: negate}, nil
		}
		var list []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: left, List: list, Negate: negate}, nil
	case p.acceptKeyword("like"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: left, Pattern: pat, Negate: negate}, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.isKeyword("is"):
		p.advance()
		neg := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: left, Negate: neg}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Node, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "+" && t.Text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.Text, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Node, error) {
	if p.isSymbol("-") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	if p.isSymbol("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		return &NumberLit{Text: t.Text, IsInt: !strings.Contains(t.Text, ".")}, nil
	case TokString:
		p.advance()
		return &StringLit{Val: t.Text}, nil
	case TokSymbol:
		if t.Text == "?" {
			p.advance()
			e := &ParamExpr{Ordinal: p.params}
			p.params++
			return e, nil
		}
		if t.Text == "(" {
			p.advance()
			if p.isKeyword("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected symbol %q", t.Text)
	case TokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errorf("unexpected end of input")
	}
}

// parseIdentExpr handles keywords that begin expressions and plain
// identifiers / function calls.
func (p *Parser) parseIdentExpr() (Node, error) {
	t := p.peek()
	lower := strings.ToLower(t.Text)
	switch lower {
	case "null":
		p.advance()
		return &NullLit{}, nil
	case "true":
		p.advance()
		return &NumberLit{Text: "1", IsInt: true}, nil // boolean literals are rare; binder casts
	case "false":
		p.advance()
		return &NumberLit{Text: "0", IsInt: true}, nil
	case "date":
		// DATE 'yyyy-mm-dd'
		if p.toks[p.pos+1].Kind == TokString {
			p.advance()
			s := p.advance()
			return &DateLit{Val: s.Text}, nil
		}
	case "interval":
		// INTERVAL 'n' unit
		p.advance()
		v := p.peek()
		if v.Kind != TokString && v.Kind != TokNumber {
			return nil, p.errorf("expected a quoted interval value, found %q", v.Text)
		}
		p.advance()
		n, err := strconv.ParseInt(strings.TrimSpace(v.Text), 10, 64)
		if err != nil {
			return nil, p.errorf("bad interval value %q", v.Text)
		}
		unitTok := p.peek()
		if unitTok.Kind != TokIdent {
			return nil, p.errorf("expected an interval unit, found %q", unitTok.Text)
		}
		p.advance()
		return &IntervalLit{N: n, Unit: strings.ToLower(unitTok.Text)}, nil
	case "case":
		return p.parseCase()
	case "exists":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Select: sel}, nil
	case "cast":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CastExpr{E: e, Type: typ}, nil
	case "extract":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		field := p.peek()
		if field.Kind != TokIdent {
			return nil, p.errorf("expected YEAR or MONTH in EXTRACT")
		}
		p.advance()
		if err := p.expectKeyword("from"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExtractExpr{Field: strings.ToUpper(field.Text), E: e}, nil
	case "substring":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		s, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var from, forN Node
		if p.acceptKeyword("from") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptKeyword("for") {
				forN, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		} else if p.acceptSymbol(",") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.acceptSymbol(",") {
				forN, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if from == nil {
			return nil, p.errorf("SUBSTRING requires a FROM position")
		}
		if forN == nil {
			forN = &NumberLit{Text: "1000000000", IsInt: true}
		}
		return &SubstringExpr{S: s, From: from, For: forN}, nil
	}
	if isReserved(lower) {
		return nil, p.errorf("unexpected keyword %q", t.Text)
	}
	p.advance()
	// Function call?
	if p.isSymbol("(") {
		p.advance()
		call := &FuncCall{Name: strings.ToUpper(t.Text)}
		if p.isSymbol("*") {
			p.advance()
			call.Star = true
		} else if !p.isSymbol(")") {
			call.Distinct = p.acceptKeyword("distinct")
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	// Qualified identifier?
	if p.isSymbol(".") {
		p.advance()
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		return &Ident{Qualifier: t.Text, Name: col}, nil
	}
	return &Ident{Name: t.Text}, nil
}

func (p *Parser) parseCase() (Node, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}
