package sql

import (
	"strings"
	"testing"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 1.5 FROM t WHERE x <> 'it''s' -- comment\n AND y >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "1.5", "FROM", "t", "WHERE", "x", "<>", "it's", "AND", "y", ">=", "2", ""}
	if len(texts) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[9] != TokString {
		t.Error("escaped string not lexed as string")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("SELECT @x"); err == nil {
		t.Error("bad byte accepted")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("lone ! accepted")
	}
	// != becomes <>.
	toks, err := Lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "<>" {
		t.Errorf("!= lexed as %q", toks[1].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("/* block\ncomment */ SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("block comment not skipped: %v", toks[0])
	}
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS total FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10")
	if len(sel.Items) != 2 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Alias != "total" {
		t.Errorf("alias = %q", sel.Items[1].Alias)
	}
	if sel.Where == nil {
		t.Error("missing WHERE")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
	tn, ok := sel.From[0].(*TableName)
	if !ok || tn.Name != "t" {
		t.Errorf("from = %+v", sel.From[0])
	}
}

func TestParseStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star {
		t.Error("star not detected")
	}
	sel = mustSelect(t, "SELECT t.* FROM t")
	if !sel.Items[0].Star {
		t.Error("qualified star not detected")
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM employee INNER JOIN sales ON employee.id = sales.emp_id WHERE employee.id = 10`)
	j, ok := sel.From[0].(*JoinRef)
	if !ok || j.Type != JoinInner {
		t.Fatalf("join = %+v", sel.From[0])
	}
	if _, ok := j.On.(*BinaryExpr); !ok {
		t.Errorf("on = %+v", j.On)
	}
	// LEFT OUTER JOIN (TPC-H Q13).
	sel = mustSelect(t, `SELECT * FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey`)
	j = sel.From[0].(*JoinRef)
	if j.Type != JoinLeft {
		t.Errorf("join type = %v", j.Type)
	}
	// Comma joins.
	sel = mustSelect(t, `SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y`)
	if len(sel.From) != 3 {
		t.Errorf("comma join from = %d items", len(sel.From))
	}
	// Chained ANSI joins.
	sel = mustSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y`)
	outer, ok := sel.From[0].(*JoinRef)
	if !ok {
		t.Fatal("chained join not a JoinRef")
	}
	if _, ok := outer.Left.(*JoinRef); !ok {
		t.Error("chained join not left-deep")
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT n1.n_name FROM nation n1, nation AS n2")
	t1 := sel.From[0].(*TableName)
	t2 := sel.From[1].(*TableName)
	if t1.Alias != "n1" || t2.Alias != "n2" {
		t.Errorf("aliases = %q, %q", t1.Alias, t2.Alias)
	}
	id := sel.Items[0].Expr.(*Ident)
	if id.Qualifier != "n1" || id.Name != "n_name" {
		t.Errorf("qualified ident = %+v", id)
	}
}

func TestParseSubqueries(t *testing.T) {
	// Derived table.
	sel := mustSelect(t, "SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1")
	sq, ok := sel.From[0].(*SubqueryRef)
	if !ok || sq.Alias != "sub" {
		t.Fatalf("derived table = %+v", sel.From[0])
	}
	// Scalar subquery.
	sel = mustSelect(t, "SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)")
	cmp := sel.Where.(*BinaryExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Errorf("scalar subquery = %+v", cmp.R)
	}
	// IN subquery.
	sel = mustSelect(t, "SELECT a FROM t WHERE a IN (SELECT b FROM u)")
	in := sel.Where.(*InExpr)
	if in.Select == nil || in.Negate {
		t.Errorf("IN subquery = %+v", in)
	}
	// NOT EXISTS.
	sel = mustSelect(t, "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.b = t.a)")
	un, ok := sel.Where.(*UnaryExpr)
	if !ok || un.Op != "NOT" {
		t.Fatalf("where = %+v", sel.Where)
	}
	if _, ok := un.E.(*ExistsExpr); !ok {
		t.Errorf("exists = %+v", un.E)
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%' AND c IS NOT NULL AND d NOT IN (1, 2)`)
	conj := sel.Where.(*BinaryExpr)
	if conj.Op != "AND" {
		t.Fatalf("top op = %s", conj.Op)
	}
	// Drill into the leftmost: ((a BETWEEN ... AND b NOT LIKE) AND c IS NOT NULL) AND d NOT IN
	flat := flattenAnd(sel.Where)
	if len(flat) != 4 {
		t.Fatalf("conjuncts = %d", len(flat))
	}
	if b, ok := flat[0].(*BetweenExpr); !ok || b.Negate {
		t.Errorf("between = %+v", flat[0])
	}
	if l, ok := flat[1].(*LikeExpr); !ok || !l.Negate {
		t.Errorf("not like = %+v", flat[1])
	}
	if n, ok := flat[2].(*IsNullExpr); !ok || !n.Negate {
		t.Errorf("is not null = %+v", flat[2])
	}
	if in, ok := flat[3].(*InExpr); !ok || !in.Negate || len(in.List) != 2 {
		t.Errorf("not in = %+v", flat[3])
	}
}

func flattenAnd(n Node) []Node {
	if b, ok := n.(*BinaryExpr); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []Node{n}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a + b * c FROM t")
	add := sel.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top = %s", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("right = %s", mul.Op)
	}
	// AND binds tighter than OR.
	sel = mustSelect(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or := sel.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	if and := or.R.(*BinaryExpr); and.Op != "AND" {
		t.Errorf("right = %s", and.Op)
	}
	// Parentheses override.
	sel = mustSelect(t, "SELECT (a + b) * c FROM t")
	mul = sel.Items[0].Expr.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("parenthesized top = %s", mul.Op)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	sel := mustSelect(t, `SELECT l_returnflag, SUM(l_quantity) AS sum_qty, COUNT(*) AS cnt,
		COUNT(DISTINCT l_suppkey) FROM lineitem GROUP BY l_returnflag HAVING COUNT(*) > 10`)
	if len(sel.GroupBy) != 1 {
		t.Fatalf("group by = %d", len(sel.GroupBy))
	}
	sum := sel.Items[1].Expr.(*FuncCall)
	if sum.Name != "SUM" || len(sum.Args) != 1 {
		t.Errorf("sum = %+v", sum)
	}
	cnt := sel.Items[2].Expr.(*FuncCall)
	if !cnt.Star {
		t.Errorf("count(*) = %+v", cnt)
	}
	dist := sel.Items[3].Expr.(*FuncCall)
	if !dist.Distinct {
		t.Errorf("count distinct = %+v", dist)
	}
	if sel.Having == nil {
		t.Error("missing HAVING")
	}
}

func TestParseDateAndInterval(t *testing.T) {
	sel := mustSelect(t, `SELECT 1 FROM t WHERE d >= DATE '1994-01-01' AND d < DATE '1994-01-01' + INTERVAL '1' YEAR`)
	flat := flattenAnd(sel.Where)
	ge := flat[0].(*BinaryExpr)
	if _, ok := ge.R.(*DateLit); !ok {
		t.Errorf("date literal = %+v", ge.R)
	}
	lt := flat[1].(*BinaryExpr)
	add := lt.R.(*BinaryExpr)
	iv, ok := add.R.(*IntervalLit)
	if !ok || iv.N != 1 || iv.Unit != "year" {
		t.Errorf("interval = %+v", add.R)
	}
}

func TestParseCase(t *testing.T) {
	sel := mustSelect(t, `SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice ELSE 0 END) FROM lineitem`)
	sum := sel.Items[0].Expr.(*FuncCall)
	c := sum.Args[0].(*CaseExpr)
	if len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
}

func TestParseExtractSubstringCast(t *testing.T) {
	sel := mustSelect(t, `SELECT EXTRACT(YEAR FROM o_orderdate), SUBSTRING(c_phone FROM 1 FOR 2),
		CAST(a AS DOUBLE) FROM t`)
	ex := sel.Items[0].Expr.(*ExtractExpr)
	if ex.Field != "YEAR" {
		t.Errorf("extract = %+v", ex)
	}
	sub := sel.Items[1].Expr.(*SubstringExpr)
	if sub.From == nil || sub.For == nil {
		t.Errorf("substring = %+v", sub)
	}
	cast := sel.Items[2].Expr.(*CastExpr)
	if cast.Type != "DOUBLE" {
		t.Errorf("cast = %+v", cast)
	}
	// Comma form of substring.
	sel = mustSelect(t, "SELECT SUBSTRING(s, 1, 2) FROM t")
	if _, ok := sel.Items[0].Expr.(*SubstringExpr); !ok {
		t.Error("comma substring not parsed")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE lineitem (
		l_orderkey BIGINT NOT NULL,
		l_quantity DECIMAL(15,2),
		l_shipdate DATE,
		l_comment VARCHAR(44),
		PRIMARY KEY (l_orderkey)
	) AFFINITY KEY (l_orderkey)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "lineitem" || len(ct.Columns) != 4 {
		t.Fatalf("create table = %+v", ct)
	}
	if ct.Columns[1].Type != "DECIMAL" {
		t.Errorf("type = %q", ct.Columns[1].Type)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "l_orderkey" {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
	if ct.AffinityKey != "l_orderkey" {
		t.Errorf("affinity = %q", ct.AffinityKey)
	}
	// Replicated + inline primary key.
	stmt, err = Parse(`CREATE REPLICATED TABLE nation (n_nationkey INTEGER PRIMARY KEY, n_name CHAR(25))`)
	if err != nil {
		t.Fatal(err)
	}
	ct = stmt.(*CreateTableStmt)
	if !ct.Replicated || len(ct.PrimaryKey) != 1 {
		t.Errorf("replicated table = %+v", ct)
	}
}

func TestParseCreateIndexAndView(t *testing.T) {
	stmt, err := Parse("CREATE INDEX idx_l_shipdate ON lineitem (l_shipdate DESC, l_orderkey)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if ci.Table != "lineitem" || len(ci.Columns) != 2 {
		t.Errorf("create index = %+v", ci)
	}
	stmt, err = Parse("CREATE VIEW revenue AS SELECT l_suppkey FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStmt)
	if cv.Name != "revenue" || cv.Select == nil {
		t.Errorf("create view = %+v", cv)
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	stmt, err = Parse("INSERT INTO t VALUES (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if ins := stmt.(*InsertStmt); ins.Columns != nil {
		t.Errorf("column list = %v", ins.Columns)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok || ex.Analyze {
		t.Errorf("explain = %+v", stmt)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok || !ex.Analyze {
		t.Fatalf("explain analyze = %+v", stmt)
	}
	if ex.Query == nil || len(ex.Query.Items) != 1 {
		t.Errorf("wrapped select = %+v", ex.Query)
	}
	// "analyze" is not reserved: it stays usable as an identifier.
	if _, err := Parse("SELECT analyze FROM t"); err != nil {
		t.Errorf("analyze as identifier: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage),(",
		"SELECT CASE END FROM t",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"CREATE SCHEMA x",
		"INSERT INTO t",
		"SELECT a b c FROM t",
		"SELECT FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseNegativeNumbersAndUnary(t *testing.T) {
	sel := mustSelect(t, "SELECT -a, -(1 + 2), +3 FROM t")
	if _, ok := sel.Items[0].Expr.(*UnaryExpr); !ok {
		t.Error("unary minus on column not parsed")
	}
	if _, ok := sel.Items[2].Expr.(*NumberLit); !ok {
		t.Error("unary plus not elided")
	}
}

func TestParseTPCHQ1Shape(t *testing.T) {
	q1 := `SELECT l_returnflag, l_linestatus,
		SUM(l_quantity) AS sum_qty,
		SUM(l_extendedprice) AS sum_base_price,
		SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
		AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price,
		AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
	FROM lineitem
	WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
	GROUP BY l_returnflag, l_linestatus
	ORDER BY l_returnflag, l_linestatus`
	sel := mustSelect(t, q1)
	if len(sel.Items) != 10 || len(sel.GroupBy) != 2 || len(sel.OrderBy) != 2 {
		t.Errorf("Q1 shape: items=%d groupby=%d orderby=%d",
			len(sel.Items), len(sel.GroupBy), len(sel.OrderBy))
	}
}

func TestReservedWordRejectedAsAlias(t *testing.T) {
	if _, err := Parse("SELECT a AS select FROM t"); err == nil {
		t.Error("reserved word accepted as alias")
	}
}

func TestParseIdentCaseInsensitivity(t *testing.T) {
	sel := mustSelect(t, "select A from T wHeRe A = 1")
	if !strings.EqualFold(sel.From[0].(*TableName).Name, "t") {
		t.Error("case-insensitive keywords failed")
	}
}

func TestParseAffinityAndReplicatedForms(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE ps (a BIGINT, b BIGINT, PRIMARY KEY (a, b)) AFFINITY KEY (b)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.PrimaryKey) != 2 || ct.AffinityKey != "b" {
		t.Errorf("ct = %+v", ct)
	}
	if _, err := Parse(`CREATE REPLICATED INDEX i ON t (a)`); err == nil {
		t.Error("REPLICATED INDEX accepted")
	}
	if _, err := Parse(`CREATE REPLICATED VIEW v AS SELECT 1`); err == nil {
		t.Error("REPLICATED VIEW accepted")
	}
}

func TestParseDoublePrecisionAndTypes(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (a DOUBLE PRECISION, b DECIMAL(10, 2), c VARCHAR(25) NOT NULL, PRIMARY KEY (a))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Columns[0].Type != "DOUBLE" || ct.Columns[1].Type != "DECIMAL" {
		t.Errorf("types = %+v", ct.Columns)
	}
}

func TestParseInSubqueryNegated(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)`)
	in := sel.Where.(*InExpr)
	if !in.Negate || in.Select == nil {
		t.Errorf("in = %+v", in)
	}
}

func TestParseQuery15ViewShape(t *testing.T) {
	// The Q15 CREATE VIEW must parse (the engine rejects it later).
	stmt, err := Parse(`CREATE VIEW revenue0 AS
		SELECT l_suppkey AS supplier_no, SUM(x) AS total FROM lineitem GROUP BY l_suppkey`)
	if err != nil {
		t.Fatal(err)
	}
	cv := stmt.(*CreateViewStmt)
	if len(cv.Select.GroupBy) != 1 {
		t.Errorf("view select = %+v", cv.Select)
	}
}

func TestParseEmptyInListRejected(t *testing.T) {
	if _, err := Parse(`SELECT a FROM t WHERE a IN ()`); err == nil {
		t.Error("empty IN list accepted")
	}
}

func TestParseDeepNesting(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t WHERE ((((a = 1))))`)
	if _, ok := sel.Where.(*BinaryExpr); !ok {
		t.Errorf("where = %T", sel.Where)
	}
}

func TestParseParams(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM t WHERE a > ? AND b = ?`)
	if sel.Params != 2 {
		t.Fatalf("Params = %d, want 2", sel.Params)
	}
	and := sel.Where.(*BinaryExpr)
	gt := and.L.(*BinaryExpr)
	p0, ok := gt.R.(*ParamExpr)
	if !ok || p0.Ordinal != 0 {
		t.Errorf("first placeholder = %+v", gt.R)
	}
	eq := and.R.(*BinaryExpr)
	p1, ok := eq.R.(*ParamExpr)
	if !ok || p1.Ordinal != 1 {
		t.Errorf("second placeholder = %+v", eq.R)
	}
}

func TestParseParamsInSubquery(t *testing.T) {
	// Ordinals are assigned left to right across the whole statement,
	// subqueries included, and only the outermost SELECT carries the count.
	sel := mustSelect(t, `SELECT a FROM t WHERE a > ?
		AND b IN (SELECT c FROM u WHERE d = ?) AND e BETWEEN ? AND ?`)
	if sel.Params != 4 {
		t.Fatalf("Params = %d, want 4", sel.Params)
	}
	in := findIn(sel.Where)
	if in == nil {
		t.Fatal("IN subquery not found")
	}
	if in.Select.Params != 0 {
		t.Errorf("nested select Params = %d, want 0", in.Select.Params)
	}
	sub := in.Select.Where.(*BinaryExpr)
	if p, ok := sub.R.(*ParamExpr); !ok || p.Ordinal != 1 {
		t.Errorf("subquery placeholder = %+v", sub.R)
	}
}

func findIn(n Node) *InExpr {
	switch e := n.(type) {
	case *InExpr:
		return e
	case *BinaryExpr:
		if in := findIn(e.L); in != nil {
			return in
		}
		return findIn(e.R)
	default:
		return nil
	}
}

func TestParseParamRejectedInLimit(t *testing.T) {
	if _, err := Parse(`SELECT a FROM t LIMIT ?`); err == nil {
		t.Error("LIMIT ? accepted; the dialect requires a literal limit")
	}
}

func TestParseExplainCarriesParams(t *testing.T) {
	stmt, err := Parse(`EXPLAIN ANALYZE SELECT a FROM t WHERE a = ?`)
	if err != nil {
		t.Fatal(err)
	}
	ex := stmt.(*ExplainStmt)
	if !ex.Analyze || ex.Query.Params != 1 {
		t.Errorf("explain = %+v, query params = %d", ex, ex.Query.Params)
	}
}
