// Package sql implements the SQL frontend: a lexer, an abstract syntax
// tree, and a recursive-descent parser covering the dialect exercised by
// the TPC-H and Star Schema benchmarks — SELECT with joins (comma and
// ANSI), scalar/IN/EXISTS subqueries, aggregates with DISTINCT, CASE,
// LIKE, BETWEEN, EXTRACT, date and interval literals — plus the DDL and
// DML statements the examples need (CREATE TABLE/INDEX/VIEW, INSERT).
//
// This is the gignite analogue of the Calcite SQL parser: it produces a
// tree the binder converts into relational algebra.
package sql

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	// TokEOF ends the token stream.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or unreserved keyword.
	TokIdent
	// TokNumber is a numeric literal (integer or decimal).
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokSymbol is an operator or punctuation: ( ) , . + - * / % = <> < <= > >= ; ?
	TokSymbol
)

// Token is one lexical token. Text preserves the original spelling except
// for strings, where it is the unquoted value.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// lexer tokenizes a SQL string.
type lexer struct {
	src string
	pos int
}

// Lex tokenizes an entire statement. It returns an error for unterminated
// strings or unexpected bytes.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	var out []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return Token{Kind: TokSymbol, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '>', c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		text := l.src[start:l.pos]
		if text == "!" {
			return Token{}, fmt.Errorf("sql: unexpected '!' at offset %d", start)
		}
		if text == "!=" {
			text = "<>"
		}
		return Token{Kind: TokSymbol, Text: text, Pos: start}, nil
	case strings.IndexByte("(),.+-*/%=;?", c) >= 0:
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	default:
		return Token{}, fmt.Errorf("sql: unexpected byte %q at offset %d", c, start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
