package sql

import (
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Node is any parsed scalar expression.
type Node interface{ node() }

// ---------------------------------------------------------------------------
// Statements

// SelectStmt is a SELECT query (possibly a subquery).
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Node
	GroupBy  []Node
	Having   Node
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
	// Params counts the `?` placeholders lexed while parsing the whole
	// statement (subqueries included). Only set on the outermost SELECT of
	// a statement; nested SelectStmts leave it zero.
	Params int
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection item. Star items select every input column.
type SelectItem struct {
	Expr  Node
	Alias string
	Star  bool
}

// OrderItem is one ORDER BY key. Expr may be an ordinal or alias reference;
// the binder resolves it.
type OrderItem struct {
	Expr Node
	Desc bool
}

// TableRef is an item in the FROM clause.
type TableRef interface{ tableRef() }

// TableName references a base table.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// JoinType enumerates ANSI join kinds.
type JoinType uint8

const (
	// JoinInner is INNER JOIN.
	JoinInner JoinType = iota
	// JoinLeft is LEFT [OUTER] JOIN.
	JoinLeft
)

// JoinRef is an ANSI join in the FROM clause.
type JoinRef struct {
	Left, Right TableRef
	Type        JoinType
	On          Node
}

func (*JoinRef) tableRef() {}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name       string
	Columns    []ColumnDef
	PrimaryKey []string
	// Template options (Ignite-style WITH "template=..."): "partitioned"
	// (default) or "replicated", plus an optional affinity key column.
	Replicated  bool
	AffinityKey string
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // SQL type name as written; the binder maps it to a Kind
}

// CreateIndexStmt is CREATE INDEX.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndexStmt) stmt() {}

// CreateViewStmt is CREATE VIEW. gignite parses it so that it can report
// the paper-faithful "views are not supported" planning error (TPC-H Q15).
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Node
}

func (*InsertStmt) stmt() {}

// ExplainStmt wraps a query for EXPLAIN. Analyze marks EXPLAIN ANALYZE:
// the engine executes the query and annotates the plan with estimated
// vs. actual per-operator row counts.
type ExplainStmt struct {
	Query   *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// ---------------------------------------------------------------------------
// Expressions

// Ident is a possibly-qualified column reference.
type Ident struct {
	Qualifier string // table or alias; empty when unqualified
	Name      string
}

func (*Ident) node() {}

// String renders the identifier.
func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// NumberLit is a numeric literal; IsInt distinguishes 42 from 42.0.
type NumberLit struct {
	Text  string
	IsInt bool
}

func (*NumberLit) node() {}

// StringLit is a string literal.
type StringLit struct {
	Val string
}

func (*StringLit) node() {}

// DateLit is DATE 'YYYY-MM-DD'.
type DateLit struct {
	Val string
}

func (*DateLit) node() {}

// IntervalLit is INTERVAL 'n' UNIT.
type IntervalLit struct {
	N    int64
	Unit string // day | month | year
}

func (*IntervalLit) node() {}

// BinaryExpr is a binary operation; Op is the SQL spelling (+, -, *, /, %,
// =, <>, <, <=, >, >=, AND, OR).
type BinaryExpr struct {
	Op   string
	L, R Node
}

func (*BinaryExpr) node() {}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT | -
	E  Node
}

func (*UnaryExpr) node() {}

// FuncCall is a function or aggregate call. Star marks COUNT(*).
type FuncCall struct {
	Name     string
	Args     []Node
	Distinct bool
	Star     bool
}

func (*FuncCall) node() {}

// CaseExpr is a searched CASE.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Node
}

func (*CaseExpr) node() {}

// CaseWhen is one WHEN arm.
type CaseWhen struct {
	Cond, Result Node
}

// InExpr is expr [NOT] IN (list | subquery).
type InExpr struct {
	E      Node
	List   []Node
	Select *SelectStmt // non-nil for IN (SELECT ...)
	Negate bool
}

func (*InExpr) node() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Select *SelectStmt
	Negate bool
}

func (*ExistsExpr) node() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct {
	Select *SelectStmt
}

func (*SubqueryExpr) node() {}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Node
	Negate    bool
}

func (*BetweenExpr) node() {}

// LikeExpr is expr [NOT] LIKE pattern.
type LikeExpr struct {
	E       Node
	Pattern Node
	Negate  bool
}

func (*LikeExpr) node() {}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E      Node
	Negate bool
}

func (*IsNullExpr) node() {}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	E    Node
	Type string
}

func (*CastExpr) node() {}

// ExtractExpr is EXTRACT(field FROM expr).
type ExtractExpr struct {
	Field string // YEAR | MONTH
	E     Node
}

func (*ExtractExpr) node() {}

// SubstringExpr is SUBSTRING(s FROM i FOR n).
type SubstringExpr struct {
	S, From, For Node
}

func (*SubstringExpr) node() {}

// NullLit is the NULL keyword.
type NullLit struct{}

func (*NullLit) node() {}

// ParamExpr is a `?` prepared-statement placeholder. Ordinal is the
// zero-based position of the placeholder in the statement text, assigned
// left to right by the parser (subqueries included).
type ParamExpr struct {
	Ordinal int
}

func (*ParamExpr) node() {}

// IsAggregateName reports whether a function name denotes an aggregate.
func IsAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}
