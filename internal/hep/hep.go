// Package hep implements the HepPlanner: the exhaustive rule-driven
// rewriter Calcite provides for heuristic (non-cost-based) optimization
// (§3.1). It consumes a list of rules and applies them over the whole plan
// until a fixpoint — an expression no rule alters — or an iteration bound
// that guards against rule cycles.
package hep

import (
	"gignite/internal/logical"
	"gignite/internal/rules"
)

// maxPasses bounds fixpoint iteration. Well-formed rule sets converge in a
// handful of passes; hitting the bound indicates a cycling rule pair and
// the planner returns the best-so-far plan rather than failing, which is
// also what Calcite's HepPlanner does when its match limit is exhausted.
const maxPasses = 64

// Planner is a HepPlanner instance over one rule list.
type Planner struct {
	rules []rules.Rule
	// Fired counts rule applications (for tests and planner telemetry).
	Fired int
}

// New creates a planner with the given rules.
func New(rs []rules.Rule) *Planner { return &Planner{rules: rs} }

// Optimize rewrites the plan to a fixpoint.
func (p *Planner) Optimize(plan logical.Node) logical.Node {
	for pass := 0; pass < maxPasses; pass++ {
		next, changed := p.pass(plan)
		plan = next
		if !changed {
			return plan
		}
	}
	return plan
}

// pass applies every rule to every node, bottom-up, once.
func (p *Planner) pass(plan logical.Node) (logical.Node, bool) {
	changed := false
	out := logical.Transform(plan, func(n logical.Node) logical.Node {
		for {
			fired := false
			for _, r := range p.rules {
				next, ok := r.Apply(n)
				if ok {
					n = next
					p.Fired++
					fired = true
					changed = true
				}
			}
			if !fired {
				return n
			}
		}
	})
	return out, changed
}

// RunGroups runs a sequence of planners, one per rule group — Ignite's
// first optimization stage runs three HepPlanners in sequence (§3.2.1).
func RunGroups(plan logical.Node, groups [][]rules.Rule) logical.Node {
	for _, g := range groups {
		plan = New(g).Optimize(plan)
	}
	return plan
}
