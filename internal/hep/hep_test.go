package hep

import (
	"strings"
	"testing"

	"gignite/internal/catalog"
	"gignite/internal/expr"
	"gignite/internal/logical"
	"gignite/internal/rules"
	"gignite/internal/types"
)

func scan(name string, cols ...string) *logical.Scan {
	t := &catalog.Table{Name: name, PrimaryKey: []string{cols[0]}}
	for _, c := range cols {
		t.Columns = append(t.Columns, catalog.Column{Name: c, Kind: types.KindInt})
	}
	return logical.NewScan(t, "")
}

func col(i int) expr.Expr { return expr.NewColRef(i, types.KindInt, "") }

func TestFilterPushesThroughJoin(t *testing.T) {
	// Filter(a.x > 5 AND a.x = b.y) over cross join → filter on left +
	// equi-join condition.
	a := scan("a", "x", "x2")
	b := scan("b", "y")
	join := logical.NewJoin(a, b, logical.JoinInner, expr.True)
	pred := expr.NewBinOp(expr.OpAnd,
		expr.NewBinOp(expr.OpGt, col(0), expr.NewLit(types.NewInt(5))),
		expr.NewBinOp(expr.OpEq, col(0), col(2)))
	plan := logical.NewFilter(join, pred)

	out := RunGroups(plan, rules.Stage1Groups(rules.Config{FilterCorrelate: true}))

	// Top node should now be the join (filter fully absorbed).
	j, ok := out.(*logical.Join)
	if !ok {
		t.Fatalf("top = %T\n%s", out, logical.Format(out))
	}
	if expr.IsLiteralTrue(j.Cond) {
		t.Errorf("join condition not installed:\n%s", logical.Format(out))
	}
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left filter not pushed:\n%s", logical.Format(out))
	}
}

func TestFilterCorrelateGate(t *testing.T) {
	a := scan("a", "x")
	b := scan("b", "y")
	join := logical.NewJoin(a, b, logical.JoinSemi,
		expr.NewBinOp(expr.OpEq, col(0), col(1)))
	join.FromCorrelate = true
	pred := expr.NewBinOp(expr.OpGt, col(0), expr.NewLit(types.NewInt(5)))
	plan := logical.NewFilter(join, pred)

	// Without FILTER_CORRELATE (the IC baseline), the filter stays above.
	ic := RunGroups(plan, rules.Stage1Groups(rules.Config{}))
	if _, ok := ic.(*logical.Filter); !ok {
		t.Fatalf("baseline pushed past correlate:\n%s", logical.Format(ic))
	}
	// With the rule (IC+), it crosses into the left input.
	icplus := RunGroups(plan, rules.Stage1Groups(rules.Config{FilterCorrelate: true}))
	j, ok := icplus.(*logical.Join)
	if !ok {
		t.Fatalf("top = %T", icplus)
	}
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("filter not pushed into left:\n%s", logical.Format(icplus))
	}
}

func TestFilterMergesAndFolds(t *testing.T) {
	a := scan("a", "x")
	inner := logical.NewFilter(a, expr.NewBinOp(expr.OpGt, col(0), expr.NewLit(types.NewInt(1))))
	outer := logical.NewFilter(inner, expr.NewBinOp(expr.OpAnd, expr.True,
		expr.NewBinOp(expr.OpLt, col(0), expr.NewLit(types.NewInt(10)))))
	out := RunGroups(outer, rules.Stage1Groups(rules.Config{}))
	f, ok := out.(*logical.Filter)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := f.Input.(*logical.Scan); !ok {
		t.Errorf("filters not merged:\n%s", logical.Format(out))
	}
	if strings.Contains(f.Cond.String(), "true") {
		t.Errorf("TRUE not folded: %s", f.Cond)
	}
}

func TestFilterThroughProjectAndSort(t *testing.T) {
	a := scan("a", "x", "y")
	proj := logical.NewProject(a, []expr.Expr{col(1), col(0)}, []string{"y", "x"})
	sorted := logical.NewSort(proj, []types.SortKey{{Col: 0}})
	plan := logical.NewFilter(sorted, expr.NewBinOp(expr.OpGt, col(1), expr.NewLit(types.NewInt(3))))
	out := RunGroups(plan, rules.Stage1Groups(rules.Config{}))
	// The filter must land directly on the scan, rewritten to x > 3 (col 0).
	var f *logical.Filter
	logical.Walk(out, func(n logical.Node) bool {
		if ff, ok := n.(*logical.Filter); ok {
			f = ff
		}
		return true
	})
	if f == nil {
		t.Fatalf("no filter:\n%s", logical.Format(out))
	}
	if _, ok := f.Input.(*logical.Scan); !ok {
		t.Errorf("filter not pushed to scan:\n%s", logical.Format(out))
	}
	if !strings.Contains(f.Cond.String(), "$0") {
		t.Errorf("filter not remapped through project: %s", f.Cond)
	}
}

func TestJoinConditionSimplification(t *testing.T) {
	// (c1∧c2) ∨ (c1∧c3) as join condition → c1 extracted and, being an
	// equi key, kept in the join while the residual OR remains.
	a := scan("a", "x", "p")
	b := scan("b", "y", "q")
	c1 := expr.NewBinOp(expr.OpEq, col(0), col(2))
	c2 := expr.NewBinOp(expr.OpGt, col(1), expr.NewLit(types.NewInt(1)))
	c3 := expr.NewBinOp(expr.OpGt, col(3), expr.NewLit(types.NewInt(2)))
	cond := expr.NewBinOp(expr.OpOr,
		expr.NewBinOp(expr.OpAnd, c1, c2),
		expr.NewBinOp(expr.OpAnd, c1, c3))
	join := logical.NewJoin(a, b, logical.JoinInner, cond)

	out := New(rules.LogicalPhaseRules(rules.Config{
		FilterCorrelate:             true,
		JoinConditionSimplification: true,
	})).Optimize(join)

	j, ok := out.(*logical.Join)
	if !ok {
		t.Fatalf("top = %T\n%s", out, logical.Format(out))
	}
	keys, _ := expr.SplitJoinCondition(j.Cond, 2)
	if len(keys) != 1 {
		t.Errorf("extracted equi key missing: cond = %s", j.Cond)
	}
	// Without the rule, the OR stays opaque: no equi keys.
	noRule := New(rules.LogicalPhaseRules(rules.Config{FilterCorrelate: true})).Optimize(join)
	jn := noRule.(*logical.Join)
	keys, _ = expr.SplitJoinCondition(jn.Cond, 2)
	if len(keys) != 0 {
		t.Errorf("baseline unexpectedly extracted keys: %s", jn.Cond)
	}
}

func TestJoinConditionLiteralBecomesFilter(t *testing.T) {
	// (c1∧c2) ∨ (c1∧c3) where c1 = literal condition on the left input:
	// after extraction it must end up as a filter on the left input.
	a := scan("a", "x", "p")
	b := scan("b", "y", "q")
	c1 := expr.NewBinOp(expr.OpEq, col(0), expr.NewLit(types.NewInt(123)))
	c2 := expr.NewBinOp(expr.OpGt, col(3), expr.NewLit(types.NewInt(1)))
	c3 := expr.NewBinOp(expr.OpLt, col(3), expr.NewLit(types.NewInt(9)))
	cond := expr.NewBinOp(expr.OpOr,
		expr.NewBinOp(expr.OpAnd, c1, c2),
		expr.NewBinOp(expr.OpAnd, c1, c3))
	join := logical.NewJoin(a, b, logical.JoinInner, cond)
	out := New(rules.LogicalPhaseRules(rules.Config{
		FilterCorrelate:             true,
		JoinConditionSimplification: true,
	})).Optimize(join)
	j := out.(*logical.Join)
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("literal condition not pushed to left input:\n%s", logical.Format(out))
	}
}

func TestTrivialProjectRemoved(t *testing.T) {
	a := scan("a", "x", "y")
	proj := logical.IdentityProject(a, []int{0, 1})
	out := RunGroups(proj, rules.Stage1Groups(rules.Config{}))
	if _, ok := out.(*logical.Scan); !ok {
		t.Errorf("identity project kept: %T", out)
	}
}

func TestFixpointTerminates(t *testing.T) {
	// A deep filter/project stack must converge well inside the pass bound.
	plan := logical.Node(scan("a", "x"))
	for i := 0; i < 20; i++ {
		plan = logical.NewFilter(plan, expr.NewBinOp(expr.OpGt, col(0), expr.NewLit(types.NewInt(int64(i)))))
	}
	p := New(rules.Stage1Groups(rules.Config{})[0])
	out := p.Optimize(plan)
	f, ok := out.(*logical.Filter)
	if !ok {
		t.Fatalf("top = %T", out)
	}
	if _, ok := f.Input.(*logical.Scan); !ok {
		t.Error("filters not fully merged")
	}
	if p.Fired == 0 {
		t.Error("no rules fired")
	}
}
