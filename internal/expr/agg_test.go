package expr

import (
	"testing"
	"testing/quick"

	"gignite/internal/types"
)

func rows(vals ...interface{}) []types.Row {
	out := make([]types.Row, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = types.Row{types.NewInt(int64(x))}
		case float64:
			out[i] = types.Row{types.NewFloat(x)}
		case nil:
			out[i] = types.Row{types.Null}
		case string:
			out[i] = types.Row{types.NewString(x)}
		}
	}
	return out
}

func runAgg(call AggCall, input []types.Row) types.Value {
	acc := call.NewAccumulator()
	for _, r := range input {
		acc.Add(r)
	}
	return acc.Result()
}

func TestAggregates(t *testing.T) {
	arg := NewColRef(0, types.KindInt, "")
	input := rows(3, 1, nil, 4, 1)
	cases := []struct {
		call AggCall
		want types.Value
	}{
		{AggCall{Func: AggCount, Arg: arg}, types.NewInt(4)},
		{AggCall{Func: AggCount}, types.NewInt(5)}, // COUNT(*)
		{AggCall{Func: AggSum, Arg: arg}, types.NewInt(9)},
		{AggCall{Func: AggAvg, Arg: arg}, types.NewFloat(2.25)},
		{AggCall{Func: AggMin, Arg: arg}, types.NewInt(1)},
		{AggCall{Func: AggMax, Arg: arg}, types.NewInt(4)},
		{AggCall{Func: AggCount, Arg: arg, Distinct: true}, types.NewInt(3)},
		{AggCall{Func: AggSum, Arg: arg, Distinct: true}, types.NewInt(8)},
	}
	for _, c := range cases {
		got := runAgg(c.call, input)
		if !valEq(got, c.want) {
			t.Errorf("%s = %v, want %v", c.call, got, c.want)
		}
	}
}

func TestAggregatesEmptyAndAllNull(t *testing.T) {
	arg := NewColRef(0, types.KindInt, "")
	empty := []types.Row(nil)
	allNull := rows(nil, nil)
	for _, f := range []AggFunc{AggSum, AggAvg, AggMin, AggMax} {
		if got := runAgg(AggCall{Func: f, Arg: arg}, empty); !got.IsNull() {
			t.Errorf("%s over empty = %v, want NULL", f, got)
		}
		if got := runAgg(AggCall{Func: f, Arg: arg}, allNull); !got.IsNull() {
			t.Errorf("%s over NULLs = %v, want NULL", f, got)
		}
	}
	if got := runAgg(AggCall{Func: AggCount, Arg: arg}, allNull); got.Int() != 0 {
		t.Errorf("COUNT over NULLs = %v", got)
	}
	if got := runAgg(AggCall{Func: AggCount}, allNull); got.Int() != 2 {
		t.Errorf("COUNT(*) over NULL rows = %v", got)
	}
}

func TestAggFloatSum(t *testing.T) {
	arg := NewColRef(0, types.KindFloat, "")
	got := runAgg(AggCall{Func: AggSum, Arg: arg}, rows(1.5, 2.25))
	if got.K != types.KindFloat || got.F != 3.75 {
		t.Errorf("float SUM = %v", got)
	}
}

func TestAggMinMaxStrings(t *testing.T) {
	arg := NewColRef(0, types.KindString, "")
	input := rows("banana", "apple", "cherry")
	if got := runAgg(AggCall{Func: AggMin, Arg: arg}, input); got.Str() != "apple" {
		t.Errorf("MIN strings = %v", got)
	}
	if got := runAgg(AggCall{Func: AggMax, Arg: arg}, input); got.Str() != "cherry" {
		t.Errorf("MAX strings = %v", got)
	}
}

// TestAggMergeProperty: merging accumulators over a partition of the input
// must equal accumulating the whole input — the invariant distributed
// partial aggregation relies on.
func TestAggMergeProperty(t *testing.T) {
	arg := NewColRef(0, types.KindInt, "")
	calls := []AggCall{
		{Func: AggCount, Arg: arg},
		{Func: AggCount},
		{Func: AggSum, Arg: arg},
		{Func: AggAvg, Arg: arg},
		{Func: AggMin, Arg: arg},
		{Func: AggMax, Arg: arg},
		{Func: AggCount, Arg: arg, Distinct: true},
		{Func: AggSum, Arg: arg, Distinct: true},
	}
	f := func(vals []int16, split uint8) bool {
		if len(vals) == 0 {
			return true
		}
		input := make([]types.Row, len(vals))
		for i, v := range vals {
			input[i] = types.Row{types.NewInt(int64(v))}
		}
		cut := int(split) % len(input)
		for _, call := range calls {
			whole := runAgg(call, input)
			left := call.NewAccumulator()
			for _, r := range input[:cut] {
				left.Add(r)
			}
			right := call.NewAccumulator()
			for _, r := range input[cut:] {
				right.Add(r)
			}
			left.Merge(right)
			merged := left.Result()
			if !valEq(whole, merged) {
				t.Logf("%s: whole=%v merged=%v (cut=%d, n=%d)", call, whole, merged, cut, len(input))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggCallKinds(t *testing.T) {
	intArg := NewColRef(0, types.KindInt, "")
	floatArg := NewColRef(0, types.KindFloat, "")
	if k := (AggCall{Func: AggCount, Arg: intArg}).Kind(); k != types.KindInt {
		t.Errorf("COUNT kind = %s", k)
	}
	if k := (AggCall{Func: AggSum, Arg: intArg}).Kind(); k != types.KindInt {
		t.Errorf("SUM(int) kind = %s", k)
	}
	if k := (AggCall{Func: AggSum, Arg: floatArg}).Kind(); k != types.KindFloat {
		t.Errorf("SUM(float) kind = %s", k)
	}
	if k := (AggCall{Func: AggAvg, Arg: intArg}).Kind(); k != types.KindFloat {
		t.Errorf("AVG kind = %s", k)
	}
	if k := (AggCall{Func: AggMax, Arg: floatArg}).Kind(); k != types.KindFloat {
		t.Errorf("MAX kind = %s", k)
	}
}

func TestDescribeAggs(t *testing.T) {
	arg := NewColRef(0, types.KindInt, "qty")
	got := DescribeAggs([]AggCall{
		{Func: AggSum, Arg: arg},
		{Func: AggCount},
		{Func: AggCount, Arg: arg, Distinct: true},
	})
	want := "SUM($0:qty), COUNT(*), COUNT(DISTINCT $0:qty)"
	if got != want {
		t.Errorf("DescribeAggs = %q, want %q", got, want)
	}
}
