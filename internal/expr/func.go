package expr

import (
	"fmt"
	"strings"

	"gignite/internal/types"
)

// FuncName enumerates the built-in scalar functions needed by the TPC-H and
// SSB workloads.
type FuncName string

const (
	// FuncExtractYear is EXTRACT(YEAR FROM d).
	FuncExtractYear FuncName = "EXTRACT_YEAR"
	// FuncExtractMonth is EXTRACT(MONTH FROM d).
	FuncExtractMonth FuncName = "EXTRACT_MONTH"
	// FuncSubstring is SUBSTRING(s FROM i FOR n) with 1-based i.
	FuncSubstring FuncName = "SUBSTRING"
	// FuncUpper is UPPER(s).
	FuncUpper FuncName = "UPPER"
	// FuncLower is LOWER(s).
	FuncLower FuncName = "LOWER"
	// FuncAbs is ABS(x).
	FuncAbs FuncName = "ABS"
	// FuncLength is CHAR_LENGTH(s).
	FuncLength FuncName = "CHAR_LENGTH"
)

// Func is a call to a built-in scalar function.
type Func struct {
	Name FuncName
	Args []Expr
}

// NewFunc constructs a function call. It validates arity eagerly so the
// binder surfaces errors at plan time, not run time.
func NewFunc(name FuncName, args []Expr) (*Func, error) {
	want := map[FuncName]int{
		FuncExtractYear:  1,
		FuncExtractMonth: 1,
		FuncSubstring:    3,
		FuncUpper:        1,
		FuncLower:        1,
		FuncAbs:          1,
		FuncLength:       1,
	}
	n, ok := want[name]
	if !ok {
		return nil, fmt.Errorf("expr: unknown function %s", name)
	}
	if len(args) != n {
		return nil, fmt.Errorf("expr: %s expects %d arguments, got %d", name, n, len(args))
	}
	return &Func{Name: name, Args: args}, nil
}

// MustFunc is NewFunc for statically known-correct calls.
func MustFunc(name FuncName, args ...Expr) *Func {
	f, err := NewFunc(name, args)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Func) Kind() types.Kind {
	switch f.Name {
	case FuncExtractYear, FuncExtractMonth, FuncLength:
		return types.KindInt
	case FuncSubstring, FuncUpper, FuncLower:
		return types.KindString
	case FuncAbs:
		return f.Args[0].Kind()
	default:
		return types.KindNull
	}
}

func (f *Func) Eval(row types.Row) types.Value {
	args := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Eval(row)
		if args[i].IsNull() {
			return types.Null
		}
	}
	switch f.Name {
	case FuncExtractYear:
		return types.NewInt(int64(args[0].Time().Year()))
	case FuncExtractMonth:
		return types.NewInt(int64(args[0].Time().Month()))
	case FuncSubstring:
		s := args[0].Str()
		start := int(args[1].Int()) - 1
		n := int(args[2].Int())
		if start < 0 {
			start = 0
		}
		if start >= len(s) || n <= 0 {
			return types.NewString("")
		}
		end := start + n
		if end > len(s) {
			end = len(s)
		}
		return types.NewString(s[start:end])
	case FuncUpper:
		return types.NewString(strings.ToUpper(args[0].Str()))
	case FuncLower:
		return types.NewString(strings.ToLower(args[0].Str()))
	case FuncAbs:
		switch args[0].K {
		case types.KindInt:
			v := args[0].I
			if v < 0 {
				v = -v
			}
			return types.NewInt(v)
		default:
			v := args[0].Float()
			if v < 0 {
				v = -v
			}
			return types.NewFloat(v)
		}
	case FuncLength:
		return types.NewInt(int64(len(args[0].Str())))
	default:
		panic(fmt.Sprintf("expr: unimplemented function %s", f.Name))
	}
}

func (f *Func) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

func (f *Func) Children() []Expr { return f.Args }

func (f *Func) WithChildren(children []Expr) Expr {
	mustArity(string(f.Name), children, len(f.Args))
	args := make([]Expr, len(children))
	copy(args, children)
	return &Func{Name: f.Name, Args: args}
}

// AddInterval shifts a date value by n units (supported units: "day",
// "month", "year"). It is used by the binder to fold the benchmark's
// `date '...' ± interval 'n' unit` expressions into date literals.
func AddInterval(d types.Value, n int64, unit string) (types.Value, error) {
	if d.K != types.KindDate {
		return types.Null, fmt.Errorf("expr: interval arithmetic on %s", d.K)
	}
	t := d.Time()
	switch strings.ToLower(unit) {
	case "day":
		t = t.AddDate(0, 0, int(n))
	case "month":
		t = t.AddDate(0, int(n), 0)
	case "year":
		t = t.AddDate(int(n), 0, 0)
	default:
		return types.Null, fmt.Errorf("expr: unsupported interval unit %q", unit)
	}
	return types.NewDate(t.Unix() / 86400), nil
}
