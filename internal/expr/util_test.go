package expr

import (
	"testing"

	"gignite/internal/types"
)

func TestSplitConjunctsAndRebuild(t *testing.T) {
	a := NewBinOp(OpEq, col(0), intLit(1))
	b := NewBinOp(OpGt, col(1), intLit(2))
	c := NewBinOp(OpLt, col(2), intLit(3))
	e := NewBinOp(OpAnd, NewBinOp(OpAnd, a, b), c)
	parts := SplitConjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("SplitConjuncts = %d parts", len(parts))
	}
	rebuilt := Conjunction(parts)
	if Digest(rebuilt) != Digest(e) {
		t.Errorf("Conjunction round trip: %s vs %s", rebuilt, e)
	}
	if got := Conjunction(nil); !IsLiteralTrue(got) {
		t.Errorf("Conjunction(nil) = %s", got)
	}
	if got := Disjunction(nil); !IsLiteralFalse(got) {
		t.Errorf("Disjunction(nil) = %s", got)
	}
}

func TestSplitDisjuncts(t *testing.T) {
	a := NewBinOp(OpEq, col(0), intLit(1))
	b := NewBinOp(OpEq, col(0), intLit(2))
	e := NewBinOp(OpOr, a, b)
	parts := SplitDisjuncts(e)
	if len(parts) != 2 {
		t.Fatalf("SplitDisjuncts = %d parts", len(parts))
	}
}

func TestColumnsUsed(t *testing.T) {
	e := NewBinOp(OpAnd,
		NewBinOp(OpEq, col(0), col(3)),
		NewBinOp(OpGt, col(5), intLit(1)))
	s := ColumnsUsed(e)
	want := []int{0, 3, 5}
	got := s.Ordered()
	if len(got) != len(want) {
		t.Fatalf("ColumnsUsed = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColumnsUsed = %v, want %v", got, want)
		}
	}
	if s.Max() != 5 {
		t.Errorf("Max = %d", s.Max())
	}
	if !s.AllBelow(6) || s.AllBelow(5) {
		t.Error("AllBelow wrong")
	}
	if !ColumnsUsed(intLit(1)).AllBelow(0) {
		t.Error("empty set AllBelow failed")
	}
}

func TestRemapAndShift(t *testing.T) {
	e := NewBinOp(OpEq, col(1), col(3))
	mapped := Remap(e, []int{-1, 0, -1, 1})
	cols := ColumnsUsed(mapped).Ordered()
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Errorf("Remap produced columns %v", cols)
	}
	shifted := Shift(e, 2, 10)
	cols = ColumnsUsed(shifted).Ordered()
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 13 {
		t.Errorf("Shift produced columns %v", cols)
	}
}

func TestRemapUnmappedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remap over unmapped column did not panic")
		}
	}()
	Remap(col(2), []int{0, 1})
}

func TestIsConstant(t *testing.T) {
	if !IsConstant(NewBinOp(OpAdd, intLit(1), intLit(2))) {
		t.Error("1+2 not constant")
	}
	if IsConstant(NewBinOp(OpAdd, col(0), intLit(2))) {
		t.Error("$0+2 reported constant")
	}
}

func TestFold(t *testing.T) {
	// Constant arithmetic folds.
	e := NewBinOp(OpMul, intLit(6), intLit(7))
	if f, ok := Fold(e).(*Lit); !ok || f.Val.Int() != 42 {
		t.Errorf("Fold(6*7) = %s", Fold(e))
	}
	// TRUE AND x folds to x.
	x := NewBinOp(OpGt, col(0), intLit(1))
	if got := Fold(NewBinOp(OpAnd, True, x)); Digest(got) != Digest(x) {
		t.Errorf("Fold(TRUE AND x) = %s", got)
	}
	// x AND FALSE folds to FALSE.
	if got := Fold(NewBinOp(OpAnd, x, False)); !IsLiteralFalse(got) {
		t.Errorf("Fold(x AND FALSE) = %s", got)
	}
	// FALSE OR x folds to x.
	if got := Fold(NewBinOp(OpOr, False, x)); Digest(got) != Digest(x) {
		t.Errorf("Fold(FALSE OR x) = %s", got)
	}
	// NOT NOT x folds to x.
	if got := Fold(NewNot(NewNot(x))); Digest(got) != Digest(x) {
		t.Errorf("Fold(NOT NOT x) = %s", got)
	}
	// Nested constant folding.
	nested := NewBinOp(OpAnd, NewBinOp(OpLt, intLit(1), intLit(2)), x)
	if got := Fold(nested); Digest(got) != Digest(x) {
		t.Errorf("Fold((1<2) AND x) = %s", got)
	}
}

func TestStaticBool(t *testing.T) {
	if v, ok := StaticBool(NewBinOp(OpLt, intLit(1), intLit(2))); !ok || !v {
		t.Error("StaticBool(1<2) failed")
	}
	if _, ok := StaticBool(NewBinOp(OpLt, col(0), intLit(2))); ok {
		t.Error("StaticBool on non-constant returned ok")
	}
}

func TestExtractCommonConjuncts(t *testing.T) {
	// (c1 AND c2) OR (c1 AND c3) -> c1 AND (c2 OR c3)
	c1 := NewBinOp(OpEq, col(0), col(4))
	c2 := NewBinOp(OpGt, col(1), intLit(5))
	c3 := NewBinOp(OpLt, col(2), intLit(9))
	pred := NewBinOp(OpOr,
		NewBinOp(OpAnd, c1, c2),
		NewBinOp(OpAnd, c1, c3))
	common, residual := ExtractCommonConjuncts(pred)
	if len(common) != 1 || Digest(common[0]) != Digest(c1) {
		t.Fatalf("common = %v", common)
	}
	wantResidual := NewBinOp(OpOr, c2, c3)
	if Digest(residual) != Digest(wantResidual) {
		t.Errorf("residual = %s, want %s", residual, wantResidual)
	}
}

func TestExtractCommonConjunctsThreeWay(t *testing.T) {
	// The paper's Q19 shape: (c1∧c2∧c3) ∨ (c1∧c4∧c5) ∨ (c1∧c6∧c7).
	mk := func(i int) Expr { return NewBinOp(OpGt, col(i), intLit(int64(i))) }
	c1 := NewBinOp(OpEq, col(0), col(9))
	pred := Disjunction([]Expr{
		Conjunction([]Expr{c1, mk(2), mk(3)}),
		Conjunction([]Expr{c1, mk(4), mk(5)}),
		Conjunction([]Expr{c1, mk(6), mk(7)}),
	})
	common, residual := ExtractCommonConjuncts(pred)
	if len(common) != 1 || Digest(common[0]) != Digest(c1) {
		t.Fatalf("common = %v", common)
	}
	if len(SplitDisjuncts(residual)) != 3 {
		t.Errorf("residual should stay a 3-way OR: %s", residual)
	}
}

func TestExtractCommonConjunctsNone(t *testing.T) {
	c2 := NewBinOp(OpGt, col(1), intLit(5))
	c3 := NewBinOp(OpLt, col(2), intLit(9))
	pred := NewBinOp(OpOr, c2, c3)
	common, residual := ExtractCommonConjuncts(pred)
	if common != nil {
		t.Errorf("common = %v on disjoint OR", common)
	}
	if Digest(residual) != Digest(pred) {
		t.Errorf("residual changed: %s", residual)
	}
	// Not an OR at all.
	common, residual = ExtractCommonConjuncts(c2)
	if common != nil || Digest(residual) != Digest(c2) {
		t.Error("non-OR input was rewritten")
	}
}

func TestExtractCommonConjunctsSemanticEquivalence(t *testing.T) {
	// The rewrite must preserve evaluation on all inputs.
	c1 := NewBinOp(OpGt, col(0), intLit(0))
	c2 := NewBinOp(OpGt, col(1), intLit(0))
	c3 := NewBinOp(OpGt, col(2), intLit(0))
	pred := NewBinOp(OpOr,
		NewBinOp(OpAnd, c1, c2),
		NewBinOp(OpAnd, c1, c3))
	common, residual := ExtractCommonConjuncts(pred)
	rewritten := NewBinOp(OpAnd, Conjunction(common), residual)
	for a := int64(-1); a <= 1; a++ {
		for b := int64(-1); b <= 1; b++ {
			for c := int64(-1); c <= 1; c++ {
				row := types.Row{types.NewInt(a), types.NewInt(b), types.NewInt(c)}
				v1, v2 := pred.Eval(row), rewritten.Eval(row)
				if v1.Bool() != v2.Bool() {
					t.Fatalf("mismatch at (%d,%d,%d): %v vs %v", a, b, c, v1, v2)
				}
			}
		}
	}
}

func TestSplitJoinCondition(t *testing.T) {
	// Over a 3+2 concatenated row: $0=$3 (equi), $1=$4 (equi), $2 > 5 (left
	// only), $0 < $4 (non-equi cross).
	cond := Conjunction([]Expr{
		NewBinOp(OpEq, col(0), col(3)),
		NewBinOp(OpEq, col(4), col(1)), // reversed operand order
		NewBinOp(OpGt, col(2), intLit(5)),
		NewBinOp(OpLt, col(0), col(4)),
	})
	keys, rest := SplitJoinCondition(cond, 3)
	if len(keys) != 2 {
		t.Fatalf("keys = %v", keys)
	}
	if keys[0] != (EquiKey{Left: 0, Right: 0}) {
		t.Errorf("key0 = %v", keys[0])
	}
	if keys[1] != (EquiKey{Left: 1, Right: 1}) {
		t.Errorf("key1 = %v", keys[1])
	}
	if len(rest) != 2 {
		t.Errorf("remaining = %v", rest)
	}
	// Same-side equality is not an equi key.
	keys, rest = SplitJoinCondition(NewBinOp(OpEq, col(0), col(1)), 3)
	if len(keys) != 0 || len(rest) != 1 {
		t.Errorf("same-side equality misclassified: keys=%v rest=%v", keys, rest)
	}
}

func TestClassifyPredicate(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewBinOp(OpGt, col(0), intLit(1)), "left"},
		{NewBinOp(OpGt, col(5), intLit(1)), "right"},
		{NewBinOp(OpEq, col(0), col(5)), "both"},
		{intLit(1), "none"},
	}
	for _, c := range cases {
		if got := ClassifyPredicate(c.e, 3); got != c.want {
			t.Errorf("ClassifyPredicate(%s) = %s, want %s", c.e, got, c.want)
		}
	}
}
