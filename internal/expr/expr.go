// Package expr implements the scalar expression trees used in filters,
// projections, join conditions and aggregate arguments. Expressions are the
// gignite analogue of Calcite's RexNode layer: fully resolved (column
// references are positional), typed at construction time, and evaluated
// against a single flat row (join operators concatenate their inputs'
// rows, so a join condition sees left columns followed by right columns).
//
// Predicate evaluation follows SQL three-valued logic: comparisons with
// NULL yield NULL, AND/OR/NOT propagate unknowns, and filter operators
// treat a non-TRUE result as "drop the row".
package expr

import (
	"fmt"
	"strings"

	"gignite/internal/types"
)

// Expr is a scalar expression. Implementations are immutable after
// construction; planner rewrites build new trees.
type Expr interface {
	// Kind is the statically determined result kind of the expression.
	Kind() types.Kind
	// Eval evaluates the expression against a row.
	Eval(row types.Row) types.Value
	// String renders the expression for plan digests and EXPLAIN output.
	String() string
	// Children returns the direct sub-expressions.
	Children() []Expr
	// WithChildren returns a copy with the children replaced, in order.
	WithChildren(children []Expr) Expr
}

// ---------------------------------------------------------------------------
// Column references and literals

// ColRef is a positional reference into the input row.
type ColRef struct {
	Index int
	Typ   types.Kind
	// Name is advisory (for EXPLAIN); resolution is purely positional.
	Name string
}

// NewColRef constructs a column reference.
func NewColRef(index int, typ types.Kind, name string) *ColRef {
	return &ColRef{Index: index, Typ: typ, Name: name}
}

func (c *ColRef) Kind() types.Kind { return c.Typ }

func (c *ColRef) Eval(row types.Row) types.Value { return row[c.Index] }

func (c *ColRef) String() string {
	if c.Name != "" {
		return fmt.Sprintf("$%d:%s", c.Index, c.Name)
	}
	return fmt.Sprintf("$%d", c.Index)
}

func (c *ColRef) Children() []Expr { return nil }

func (c *ColRef) WithChildren(children []Expr) Expr {
	mustArity("ColRef", children, 0)
	return c
}

// Lit is a constant.
type Lit struct {
	Val types.Value
}

// NewLit constructs a literal expression.
func NewLit(v types.Value) *Lit { return &Lit{Val: v} }

func (l *Lit) Kind() types.Kind             { return l.Val.K }
func (l *Lit) Eval(_ types.Row) types.Value { return l.Val }
func (l *Lit) Children() []Expr             { return nil }
func (l *Lit) WithChildren(children []Expr) Expr {
	mustArity("Lit", children, 0)
	return l
}

func (l *Lit) String() string {
	if l.Val.K == types.KindString {
		return "'" + l.Val.S + "'"
	}
	return l.Val.String()
}

// ---------------------------------------------------------------------------
// Binary operators

// Op enumerates binary operators.
type Op uint8

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator is a comparison.
func (o Op) IsComparison() bool { return o >= OpEq && o <= OpGe }

// IsArithmetic reports whether the operator is arithmetic.
func (o Op) IsArithmetic() bool { return o <= OpMod }

// Commute returns the comparison with operands logically swapped
// (a < b  ≡  b > a). It panics for non-comparison operators.
func (o Op) Commute() Op {
	switch o {
	case OpEq:
		return OpEq
	case OpNe:
		return OpNe
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		panic(fmt.Sprintf("expr: Commute on non-comparison %s", o))
	}
}

// BinOp applies Op to two operands.
type BinOp struct {
	Op   Op
	L, R Expr
	typ  types.Kind
}

// NewBinOp constructs a binary expression, computing its result kind.
func NewBinOp(op Op, l, r Expr) *BinOp {
	return &BinOp{Op: op, L: l, R: r, typ: binOpKind(op, l.Kind(), r.Kind())}
}

func binOpKind(op Op, l, r types.Kind) types.Kind {
	switch {
	case op.IsComparison(), op == OpAnd, op == OpOr:
		return types.KindBool
	case op.IsArithmetic():
		if l == types.KindDate || r == types.KindDate {
			return types.KindDate
		}
		if l == types.KindFloat || r == types.KindFloat || op == OpDiv {
			return types.KindFloat
		}
		if l == types.KindNull {
			return r
		}
		return l
	default:
		return types.KindNull
	}
}

func (b *BinOp) Kind() types.Kind { return b.typ }

func (b *BinOp) Eval(row types.Row) types.Value {
	switch b.Op {
	case OpAnd:
		return evalAnd(b.L, b.R, row)
	case OpOr:
		return evalOr(b.L, b.R, row)
	}
	lv := b.L.Eval(row)
	rv := b.R.Eval(row)
	if lv.IsNull() || rv.IsNull() {
		return types.Null
	}
	if b.Op.IsComparison() {
		return evalComparison(b.Op, lv, rv)
	}
	return evalArith(b.Op, lv, rv, b.typ)
}

// evalAnd implements three-valued AND with short-circuiting on FALSE.
func evalAnd(l, r Expr, row types.Row) types.Value {
	lv := l.Eval(row)
	if lv.K == types.KindBool && !lv.Bool() {
		return types.NewBool(false)
	}
	rv := r.Eval(row)
	if rv.K == types.KindBool && !rv.Bool() {
		return types.NewBool(false)
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null
	}
	return types.NewBool(lv.Bool() && rv.Bool())
}

// evalOr implements three-valued OR with short-circuiting on TRUE.
func evalOr(l, r Expr, row types.Row) types.Value {
	lv := l.Eval(row)
	if lv.K == types.KindBool && lv.Bool() {
		return types.NewBool(true)
	}
	rv := r.Eval(row)
	if rv.K == types.KindBool && rv.Bool() {
		return types.NewBool(true)
	}
	if lv.IsNull() || rv.IsNull() {
		return types.Null
	}
	return types.NewBool(lv.Bool() || rv.Bool())
}

func evalComparison(op Op, lv, rv types.Value) types.Value {
	c := types.Compare(lv, rv)
	switch op {
	case OpEq:
		return types.NewBool(c == 0)
	case OpNe:
		return types.NewBool(c != 0)
	case OpLt:
		return types.NewBool(c < 0)
	case OpLe:
		return types.NewBool(c <= 0)
	case OpGt:
		return types.NewBool(c > 0)
	case OpGe:
		return types.NewBool(c >= 0)
	default:
		panic("expr: not a comparison")
	}
}

func evalArith(op Op, lv, rv types.Value, typ types.Kind) types.Value {
	// Date arithmetic: date ± integer days.
	if typ == types.KindDate {
		l, r := lv.Int(), rv.Int()
		switch op {
		case OpAdd:
			return types.NewDate(l + r)
		case OpSub:
			return types.NewDate(l - r)
		default:
			panic(fmt.Sprintf("expr: %s on dates", op))
		}
	}
	if typ == types.KindInt {
		l, r := lv.Int(), rv.Int()
		switch op {
		case OpAdd:
			return types.NewInt(l + r)
		case OpSub:
			return types.NewInt(l - r)
		case OpMul:
			return types.NewInt(l * r)
		case OpMod:
			if r == 0 {
				return types.Null
			}
			return types.NewInt(l % r)
		}
	}
	l, r := lv.Float(), rv.Float()
	switch op {
	case OpAdd:
		return types.NewFloat(l + r)
	case OpSub:
		return types.NewFloat(l - r)
	case OpMul:
		return types.NewFloat(l * r)
	case OpDiv:
		if r == 0 {
			return types.Null
		}
		return types.NewFloat(l / r)
	case OpMod:
		if r == 0 {
			return types.Null
		}
		return types.NewFloat(float64(int64(l) % int64(r)))
	default:
		panic(fmt.Sprintf("expr: unhandled arithmetic %s", op))
	}
}

func (b *BinOp) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (b *BinOp) Children() []Expr { return []Expr{b.L, b.R} }

func (b *BinOp) WithChildren(children []Expr) Expr {
	mustArity("BinOp", children, 2)
	return NewBinOp(b.Op, children[0], children[1])
}

// ---------------------------------------------------------------------------
// Unary operators

// Not negates a boolean expression under three-valued logic.
type Not struct {
	E Expr
}

// NewNot constructs a logical negation.
func NewNot(e Expr) *Not { return &Not{E: e} }

func (n *Not) Kind() types.Kind { return types.KindBool }

func (n *Not) Eval(row types.Row) types.Value {
	v := n.E.Eval(row)
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(!v.Bool())
}

func (n *Not) String() string   { return fmt.Sprintf("NOT %s", n.E) }
func (n *Not) Children() []Expr { return []Expr{n.E} }

func (n *Not) WithChildren(children []Expr) Expr {
	mustArity("Not", children, 1)
	return NewNot(children[0])
}

// Neg is arithmetic negation.
type Neg struct {
	E Expr
}

// NewNeg constructs an arithmetic negation.
func NewNeg(e Expr) *Neg { return &Neg{E: e} }

func (n *Neg) Kind() types.Kind { return n.E.Kind() }

func (n *Neg) Eval(row types.Row) types.Value {
	v := n.E.Eval(row)
	switch v.K {
	case types.KindNull:
		return types.Null
	case types.KindInt:
		return types.NewInt(-v.I)
	case types.KindFloat:
		return types.NewFloat(-v.F)
	default:
		panic(fmt.Sprintf("expr: negate %s", v.K))
	}
}

func (n *Neg) String() string   { return fmt.Sprintf("-(%s)", n.E) }
func (n *Neg) Children() []Expr { return []Expr{n.E} }

func (n *Neg) WithChildren(children []Expr) Expr {
	mustArity("Neg", children, 1)
	return NewNeg(children[0])
}

// IsNull tests nullness (IS NULL / IS NOT NULL).
type IsNull struct {
	E      Expr
	Negate bool
}

// NewIsNull constructs an IS [NOT] NULL test.
func NewIsNull(e Expr, negate bool) *IsNull { return &IsNull{E: e, Negate: negate} }

func (i *IsNull) Kind() types.Kind { return types.KindBool }

func (i *IsNull) Eval(row types.Row) types.Value {
	isNull := i.E.Eval(row).IsNull()
	return types.NewBool(isNull != i.Negate)
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("%s IS NOT NULL", i.E)
	}
	return fmt.Sprintf("%s IS NULL", i.E)
}

func (i *IsNull) Children() []Expr { return []Expr{i.E} }

func (i *IsNull) WithChildren(children []Expr) Expr {
	mustArity("IsNull", children, 1)
	return NewIsNull(children[0], i.Negate)
}

// ---------------------------------------------------------------------------
// IN-list, CASE, CAST

// InList tests membership in a list of expressions (usually literals).
type InList struct {
	E      Expr
	List   []Expr
	Negate bool
}

// NewInList constructs an IN-list membership test.
func NewInList(e Expr, list []Expr, negate bool) *InList {
	return &InList{E: e, List: list, Negate: negate}
}

func (in *InList) Kind() types.Kind { return types.KindBool }

func (in *InList) Eval(row types.Row) types.Value {
	v := in.E.Eval(row)
	if v.IsNull() {
		return types.Null
	}
	sawNull := false
	for _, item := range in.List {
		iv := item.Eval(row)
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if types.Equal(v, iv) {
			return types.NewBool(!in.Negate)
		}
	}
	if sawNull {
		return types.Null
	}
	return types.NewBool(in.Negate)
}

func (in *InList) String() string {
	items := make([]string, len(in.List))
	for i, e := range in.List {
		items[i] = e.String()
	}
	not := ""
	if in.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sIN (%s)", in.E, not, strings.Join(items, ", "))
}

func (in *InList) Children() []Expr {
	out := make([]Expr, 0, len(in.List)+1)
	out = append(out, in.E)
	out = append(out, in.List...)
	return out
}

func (in *InList) WithChildren(children []Expr) Expr {
	mustArity("InList", children, len(in.List)+1)
	list := make([]Expr, len(in.List))
	copy(list, children[1:])
	return NewInList(children[0], list, in.Negate)
}

// When is one arm of a CASE expression.
type When struct {
	Cond   Expr
	Result Expr
}

// Case is a searched CASE expression.
type Case struct {
	Whens []When
	Else  Expr // may be nil (yields NULL)
	typ   types.Kind
}

// NewCase constructs a searched CASE expression.
func NewCase(whens []When, els Expr) *Case {
	typ := types.KindNull
	for _, w := range whens {
		if k := w.Result.Kind(); k != types.KindNull {
			typ = k
			break
		}
	}
	if typ == types.KindNull && els != nil {
		typ = els.Kind()
	}
	return &Case{Whens: whens, Else: els, typ: typ}
}

func (c *Case) Kind() types.Kind { return c.typ }

func (c *Case) Eval(row types.Row) types.Value {
	for _, w := range c.Whens {
		v := w.Cond.Eval(row)
		if v.K == types.KindBool && v.Bool() {
			return w.Result.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return types.Null
}

func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Result)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

func (c *Case) Children() []Expr {
	out := make([]Expr, 0, 2*len(c.Whens)+1)
	for _, w := range c.Whens {
		out = append(out, w.Cond, w.Result)
	}
	if c.Else != nil {
		out = append(out, c.Else)
	}
	return out
}

func (c *Case) WithChildren(children []Expr) Expr {
	want := 2 * len(c.Whens)
	if c.Else != nil {
		want++
	}
	mustArity("Case", children, want)
	whens := make([]When, len(c.Whens))
	for i := range whens {
		whens[i] = When{Cond: children[2*i], Result: children[2*i+1]}
	}
	var els Expr
	if c.Else != nil {
		els = children[len(children)-1]
	}
	return NewCase(whens, els)
}

// Cast converts a value to another kind.
type Cast struct {
	E  Expr
	To types.Kind
}

// NewCast constructs a cast.
func NewCast(e Expr, to types.Kind) *Cast { return &Cast{E: e, To: to} }

func (c *Cast) Kind() types.Kind { return c.To }

func (c *Cast) Eval(row types.Row) types.Value {
	v := c.E.Eval(row)
	if v.IsNull() {
		return types.Null
	}
	switch c.To {
	case types.KindInt:
		return types.NewInt(v.Int())
	case types.KindFloat:
		return types.NewFloat(v.Float())
	case types.KindString:
		return types.NewString(v.String())
	case types.KindDate:
		if v.K == types.KindString {
			d, err := types.ParseDate(v.S)
			if err != nil {
				return types.Null
			}
			return d
		}
		return types.NewDate(v.Int())
	case types.KindBool:
		if v.K == types.KindBool {
			return v
		}
		return types.NewBool(v.Int() != 0)
	default:
		return types.Null
	}
}

func (c *Cast) String() string   { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }
func (c *Cast) Children() []Expr { return []Expr{c.E} }

func (c *Cast) WithChildren(children []Expr) Expr {
	mustArity("Cast", children, 1)
	return NewCast(children[0], c.To)
}

func mustArity(node string, children []Expr, want int) {
	if len(children) != want {
		panic(fmt.Sprintf("expr: %s.WithChildren got %d children, want %d",
			node, len(children), want))
	}
}
