package expr

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"gignite/internal/types"
)

func TestLikeBasic(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "%x%", false},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"hello", "_____", true},
		{"hello", "____", false},
		{"promo burnished", "promo%", true},
		{"special requests", "%special%requests%", true},
		{"MEDIUM POLISHED BRASS", "MEDIUM POLISHED%", true},
		{"abc", "a%b%c", true},
		{"ac", "a%b%c", false},
		{"abcbc", "a%bc", true}, // greedy must not over-consume
		{"ab", "%ab", true},
		{"aab", "%ab", true},
		{"ba", "%ab", false},
		{"aXb", "a_b", true},
		{"ab", "a_b", false},
		{"green antique tomato", "%green%", true},
		{"forest green", "green%", false},
	}
	for _, c := range cases {
		m := compileLike(c.pattern)
		if got := m.match(c.s); got != c.want {
			t.Errorf("LIKE %q ~ %q = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

func TestLikeExprNullAndNegate(t *testing.T) {
	l := NewLike(NewColRef(0, types.KindString, ""), "a%", false)
	if got := l.Eval(types.Row{types.Null}); !got.IsNull() {
		t.Error("NULL LIKE pattern != NULL")
	}
	nl := NewLike(NewColRef(0, types.KindString, ""), "a%", true)
	if got := nl.Eval(types.Row{types.NewString("bcd")}); !got.Bool() {
		t.Error("'bcd' NOT LIKE 'a%' = false")
	}
	if got := nl.Eval(types.Row{types.NewString("abc")}); got.Bool() {
		t.Error("'abc' NOT LIKE 'a%' = true")
	}
}

// likeToRegexp builds a reference matcher for property testing.
func likeToRegexp(pattern string) *regexp.Regexp {
	var sb strings.Builder
	sb.WriteString("^")
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	sb.WriteString("$")
	return regexp.MustCompile(sb.String())
}

// TestLikePropertyVsRegexp cross-checks the greedy matcher against a
// regexp reference over a constrained random alphabet (so patterns hit
// often enough to be meaningful).
func TestLikePropertyVsRegexp(t *testing.T) {
	alphabet := []byte("ab%_")
	strAlpha := []byte("ab")
	f := func(patSeed, strSeed uint64) bool {
		pat := genFromSeed(patSeed, alphabet, 8)
		s := genFromSeed(strSeed, strAlpha, 10)
		want := likeToRegexp(pat).MatchString(s)
		got := compileLike(pat).match(s)
		if got != want {
			t.Logf("pattern %q, string %q: got %v want %v", pat, s, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func genFromSeed(seed uint64, alphabet []byte, maxLen int) string {
	n := int(seed % uint64(maxLen+1))
	var sb strings.Builder
	state := seed
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		sb.WriteByte(alphabet[(state>>33)%uint64(len(alphabet))])
	}
	return sb.String()
}
