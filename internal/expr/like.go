package expr

import (
	"fmt"
	"strings"

	"gignite/internal/types"
)

// Like is a SQL LIKE pattern test. Patterns support % (any run) and _
// (any single byte). The pattern must be a constant; the benchmark
// workloads never use computed patterns, and constant patterns let the
// matcher be compiled once at plan time.
type Like struct {
	E       Expr
	Pattern string
	Negate  bool
	matcher likeMatcher
}

// NewLike constructs a LIKE test with a pre-compiled matcher.
func NewLike(e Expr, pattern string, negate bool) *Like {
	return &Like{E: e, Pattern: pattern, Negate: negate, matcher: compileLike(pattern)}
}

func (l *Like) Kind() types.Kind { return types.KindBool }

func (l *Like) Eval(row types.Row) types.Value {
	v := l.E.Eval(row)
	if v.IsNull() {
		return types.Null
	}
	return types.NewBool(l.matcher.match(v.Str()) != l.Negate)
}

func (l *Like) String() string {
	not := ""
	if l.Negate {
		not = "NOT "
	}
	return fmt.Sprintf("%s %sLIKE '%s'", l.E, not, l.Pattern)
}

func (l *Like) Children() []Expr { return []Expr{l.E} }

func (l *Like) WithChildren(children []Expr) Expr {
	mustArity("Like", children, 1)
	return NewLike(children[0], l.Pattern, l.Negate)
}

// likeMatcher is a compiled LIKE pattern: literal segments (possibly
// containing _ wildcards) separated by % runs. anchorStart/anchorEnd record
// whether the pattern began/ended with a literal segment rather than %.
type likeMatcher struct {
	segments    []string
	anchorStart bool
	anchorEnd   bool
}

func compileLike(pattern string) likeMatcher {
	segs := strings.Split(pattern, "%")
	m := likeMatcher{
		anchorStart: segs[0] != "",
		anchorEnd:   segs[len(segs)-1] != "",
	}
	for _, seg := range segs {
		if seg != "" {
			m.segments = append(m.segments, seg)
		}
	}
	// A pattern with no % at all ("abc") is fully anchored; note that
	// strings.Split never returns an empty slice, so segs[0] is safe.
	if !strings.Contains(pattern, "%") {
		m.anchorStart, m.anchorEnd = true, true
		if pattern == "" {
			m.segments = nil
		}
	}
	return m
}

// match implements LIKE with greedy left-to-right segment placement, which
// is complete for this wildcard language: taking the earliest placement of
// each segment leaves maximal slack for the segments that follow.
func (m likeMatcher) match(s string) bool {
	if len(m.segments) == 0 {
		// Pattern was "" (matches only "") or all-% (matches anything).
		if m.anchorStart && m.anchorEnd {
			return s == ""
		}
		return true
	}
	// Fully anchored single segment: exact-length match.
	if m.anchorStart && m.anchorEnd && len(m.segments) == 1 {
		return len(s) == len(m.segments[0]) && segmentMatchesAt(s, 0, m.segments[0])
	}
	pos := 0
	last := len(m.segments) - 1
	for i, seg := range m.segments {
		switch {
		case i == 0 && m.anchorStart:
			if !segmentMatchesAt(s, 0, seg) {
				return false
			}
			pos = len(seg)
		case i == last && m.anchorEnd:
			tail := len(s) - len(seg)
			if tail < pos || !segmentMatchesAt(s, tail, seg) {
				return false
			}
			pos = len(s)
		default:
			idx := findSegment(s, pos, seg)
			if idx < 0 {
				return false
			}
			pos = idx + len(seg)
		}
	}
	return true
}

// findSegment finds the earliest placement of seg in s at or after pos.
func findSegment(s string, pos int, seg string) int {
	for i := pos; i+len(seg) <= len(s); i++ {
		if segmentMatchesAt(s, i, seg) {
			return i
		}
	}
	return -1
}

// segmentMatchesAt reports whether seg (with _ wildcards) matches s at off.
func segmentMatchesAt(s string, off int, seg string) bool {
	if off < 0 || off+len(seg) > len(s) {
		return false
	}
	for i := 0; i < len(seg); i++ {
		if seg[i] != '_' && seg[i] != s[off+i] {
			return false
		}
	}
	return true
}
