package expr

import (
	"fmt"

	"gignite/internal/types"
)

// Param is a prepared-statement placeholder (`?` in SQL text), identified
// by its zero-based ordinal in the statement. Its kind is a bind-time hint
// derived from the surrounding expression (the sibling operand of a
// comparison, the tested expression of an IN list, ...); KindNull means no
// hint was derivable and the argument's own kind is used at execution.
//
// A Param never evaluates: execution substitutes a Lit for every Param
// when the (possibly cached) plan is cloned for one run, so reaching Eval
// means a parameterized plan leaked into the executor unbound.
type Param struct {
	Ordinal int
	Typ     types.Kind
}

// NewParam constructs a placeholder with a kind hint (types.KindNull when
// no hint is available).
func NewParam(ordinal int, typ types.Kind) *Param {
	return &Param{Ordinal: ordinal, Typ: typ}
}

func (p *Param) Kind() types.Kind { return p.Typ }

func (p *Param) Eval(types.Row) types.Value {
	panic(fmt.Sprintf("expr: unbound parameter $%d evaluated; plans with parameters must be bound before execution", p.Ordinal+1))
}

func (p *Param) String() string   { return fmt.Sprintf("?%d", p.Ordinal+1) }
func (p *Param) Children() []Expr { return nil }

func (p *Param) WithChildren(children []Expr) Expr {
	mustArity("Param", children, 0)
	return p
}

// HasParams reports whether e contains any Param node.
func HasParams(e Expr) bool {
	if _, ok := e.(*Param); ok {
		return true
	}
	for _, ch := range e.Children() {
		if HasParams(ch) {
			return true
		}
	}
	return false
}

// BindParams substitutes a literal for every Param in e: args[i] replaces
// the Param with Ordinal i. Ordinals past len(args) panic — the engine
// validates argument counts before plans reach this rewrite.
func BindParams(e Expr, args []types.Value) Expr {
	return Transform(e, func(n Expr) Expr {
		p, ok := n.(*Param)
		if !ok {
			return n
		}
		if p.Ordinal >= len(args) {
			panic(fmt.Sprintf("expr: parameter $%d has no argument", p.Ordinal+1))
		}
		return NewLit(args[p.Ordinal])
	})
}
