package expr

import (
	"testing"
	"testing/quick"

	"gignite/internal/types"
)

func intLit(v int64) Expr     { return NewLit(types.NewInt(v)) }
func floatLit(v float64) Expr { return NewLit(types.NewFloat(v)) }
func strLit(s string) Expr    { return NewLit(types.NewString(s)) }
func boolLit(b bool) Expr     { return NewLit(types.NewBool(b)) }
func nullLit() Expr           { return NewLit(types.Null) }
func col(i int) Expr          { return NewColRef(i, types.KindInt, "") }

func evalBool(t *testing.T, e Expr, row types.Row) types.Value {
	t.Helper()
	v := e.Eval(row)
	if !v.IsNull() && v.K != types.KindBool {
		t.Fatalf("expected boolean result, got %s", v.K)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{NewBinOp(OpAdd, intLit(2), intLit(3)), types.NewInt(5)},
		{NewBinOp(OpSub, intLit(2), intLit(3)), types.NewInt(-1)},
		{NewBinOp(OpMul, intLit(4), intLit(3)), types.NewInt(12)},
		{NewBinOp(OpDiv, intLit(7), intLit(2)), types.NewFloat(3.5)},
		{NewBinOp(OpMod, intLit(7), intLit(2)), types.NewInt(1)},
		{NewBinOp(OpAdd, floatLit(1.5), intLit(1)), types.NewFloat(2.5)},
		{NewBinOp(OpMul, floatLit(2), floatLit(0.5)), types.NewFloat(1)},
		{NewBinOp(OpDiv, intLit(1), intLit(0)), types.Null},
		{NewBinOp(OpMod, intLit(1), intLit(0)), types.Null},
		{NewBinOp(OpAdd, nullLit(), intLit(1)), types.Null},
		{NewNeg(intLit(5)), types.NewInt(-5)},
	}
	for _, c := range cases {
		got := c.e.Eval(nil)
		if !valEq(got, c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func valEq(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return types.Equal(a, b)
}

func TestDateArithmetic(t *testing.T) {
	d := NewLit(types.DateFromYMD(1995, 3, 15))
	e := NewBinOp(OpAdd, d, intLit(10))
	got := e.Eval(nil)
	if got.K != types.KindDate || got.String() != "1995-03-25" {
		t.Errorf("date + 10 = %v", got)
	}
	e2 := NewBinOp(OpSub, d, intLit(15))
	if got := e2.Eval(nil); got.String() != "1995-02-28" {
		t.Errorf("date - 15 = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   Op
		l, r Expr
		want interface{} // bool or nil for NULL
	}{
		{OpEq, intLit(1), intLit(1), true},
		{OpNe, intLit(1), intLit(1), false},
		{OpLt, intLit(1), intLit(2), true},
		{OpLe, intLit(2), intLit(2), true},
		{OpGt, strLit("b"), strLit("a"), true},
		{OpGe, floatLit(1.0), intLit(1), true},
		{OpEq, nullLit(), intLit(1), nil},
		{OpEq, intLit(1), nullLit(), nil},
	}
	for _, c := range cases {
		got := evalBool(t, NewBinOp(c.op, c.l, c.r), nil)
		if c.want == nil {
			if !got.IsNull() {
				t.Errorf("%s %s %s = %v, want NULL", c.l, c.op, c.r, got)
			}
			continue
		}
		if got.IsNull() || got.Bool() != c.want.(bool) {
			t.Errorf("%s %s %s = %v, want %v", c.l, c.op, c.r, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := nullLit()
	tr, fa := boolLit(true), boolLit(false)

	// AND truth table with NULL.
	if got := evalBool(t, NewBinOp(OpAnd, null, fa), nil); got.IsNull() || got.Bool() {
		t.Errorf("NULL AND FALSE = %v, want FALSE", got)
	}
	if got := evalBool(t, NewBinOp(OpAnd, null, tr), nil); !got.IsNull() {
		t.Errorf("NULL AND TRUE = %v, want NULL", got)
	}
	// OR truth table with NULL.
	if got := evalBool(t, NewBinOp(OpOr, null, tr), nil); got.IsNull() || !got.Bool() {
		t.Errorf("NULL OR TRUE = %v, want TRUE", got)
	}
	if got := evalBool(t, NewBinOp(OpOr, null, fa), nil); !got.IsNull() {
		t.Errorf("NULL OR FALSE = %v, want NULL", got)
	}
	// NOT NULL = NULL.
	if got := evalBool(t, NewNot(null), nil); !got.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", got)
	}
	if got := evalBool(t, NewNot(tr), nil); got.Bool() {
		t.Errorf("NOT TRUE = %v", got)
	}
}

func TestColRefEval(t *testing.T) {
	row := types.Row{types.NewInt(10), types.NewString("x")}
	e := NewBinOp(OpEq, col(0), intLit(10))
	if got := evalBool(t, e, row); got.IsNull() || !got.Bool() {
		t.Errorf("$0 = 10 on [10, x] = %v", got)
	}
}

func TestIsNull(t *testing.T) {
	row := types.Row{types.Null, types.NewInt(1)}
	if got := NewIsNull(col(0), false).Eval(row); !got.Bool() {
		t.Error("$0 IS NULL on NULL = false")
	}
	if got := NewIsNull(col(1), false).Eval(row); got.Bool() {
		t.Error("$1 IS NULL on 1 = true")
	}
	if got := NewIsNull(col(1), true).Eval(row); !got.Bool() {
		t.Error("$1 IS NOT NULL on 1 = false")
	}
}

func TestInList(t *testing.T) {
	in := NewInList(col(0), []Expr{intLit(1), intLit(3), intLit(5)}, false)
	if got := in.Eval(types.Row{types.NewInt(3)}); !got.Bool() {
		t.Error("3 IN (1,3,5) = false")
	}
	if got := in.Eval(types.Row{types.NewInt(2)}); got.Bool() {
		t.Error("2 IN (1,3,5) = true")
	}
	if got := in.Eval(types.Row{types.Null}); !got.IsNull() {
		t.Error("NULL IN (...) != NULL")
	}
	// NULL in list: 2 IN (1, NULL) is NULL; 1 IN (1, NULL) is TRUE.
	inNull := NewInList(col(0), []Expr{intLit(1), nullLit()}, false)
	if got := inNull.Eval(types.Row{types.NewInt(2)}); !got.IsNull() {
		t.Errorf("2 IN (1, NULL) = %v, want NULL", got)
	}
	if got := inNull.Eval(types.Row{types.NewInt(1)}); got.IsNull() || !got.Bool() {
		t.Errorf("1 IN (1, NULL) = %v, want TRUE", got)
	}
	// NOT IN.
	notIn := NewInList(col(0), []Expr{intLit(1)}, true)
	if got := notIn.Eval(types.Row{types.NewInt(2)}); !got.Bool() {
		t.Error("2 NOT IN (1) = false")
	}
	if got := notIn.Eval(types.Row{types.NewInt(1)}); got.Bool() {
		t.Error("1 NOT IN (1) = true")
	}
}

func TestCase(t *testing.T) {
	// CASE WHEN $0 > 10 THEN 'big' WHEN $0 > 5 THEN 'mid' ELSE 'small' END
	c := NewCase([]When{
		{Cond: NewBinOp(OpGt, col(0), intLit(10)), Result: strLit("big")},
		{Cond: NewBinOp(OpGt, col(0), intLit(5)), Result: strLit("mid")},
	}, strLit("small"))
	if c.Kind() != types.KindString {
		t.Errorf("CASE kind = %s", c.Kind())
	}
	cases := map[int64]string{20: "big", 7: "mid", 1: "small"}
	for in, want := range cases {
		if got := c.Eval(types.Row{types.NewInt(in)}); got.Str() != want {
			t.Errorf("CASE(%d) = %v, want %s", in, got, want)
		}
	}
	// No ELSE yields NULL.
	c2 := NewCase([]When{{Cond: boolLit(false), Result: intLit(1)}}, nil)
	if got := c2.Eval(nil); !got.IsNull() {
		t.Errorf("CASE with no match and no ELSE = %v", got)
	}
}

func TestCast(t *testing.T) {
	if got := NewCast(intLit(3), types.KindFloat).Eval(nil); got.K != types.KindFloat || got.F != 3 {
		t.Errorf("CAST(3 AS DOUBLE) = %v", got)
	}
	if got := NewCast(floatLit(3.7), types.KindInt).Eval(nil); got.Int() != 3 {
		t.Errorf("CAST(3.7 AS BIGINT) = %v", got)
	}
	if got := NewCast(strLit("1995-06-17"), types.KindDate).Eval(nil); got.String() != "1995-06-17" {
		t.Errorf("CAST(str AS DATE) = %v", got)
	}
	if got := NewCast(intLit(42), types.KindString).Eval(nil); got.Str() != "42" {
		t.Errorf("CAST(42 AS VARCHAR) = %v", got)
	}
	if got := NewCast(nullLit(), types.KindInt).Eval(nil); !got.IsNull() {
		t.Errorf("CAST(NULL) = %v", got)
	}
}

func TestFuncs(t *testing.T) {
	d := NewLit(types.DateFromYMD(1997, 4, 9))
	if got := MustFunc(FuncExtractYear, d).Eval(nil); got.Int() != 1997 {
		t.Errorf("EXTRACT_YEAR = %v", got)
	}
	if got := MustFunc(FuncExtractMonth, d).Eval(nil); got.Int() != 4 {
		t.Errorf("EXTRACT_MONTH = %v", got)
	}
	if got := MustFunc(FuncSubstring, strLit("PROMO BUILT"), intLit(1), intLit(5)).Eval(nil); got.Str() != "PROMO" {
		t.Errorf("SUBSTRING = %v", got)
	}
	if got := MustFunc(FuncSubstring, strLit("ab"), intLit(2), intLit(10)).Eval(nil); got.Str() != "b" {
		t.Errorf("SUBSTRING overrun = %v", got)
	}
	if got := MustFunc(FuncUpper, strLit("abc")).Eval(nil); got.Str() != "ABC" {
		t.Errorf("UPPER = %v", got)
	}
	if got := MustFunc(FuncAbs, intLit(-5)).Eval(nil); got.Int() != 5 {
		t.Errorf("ABS = %v", got)
	}
	if got := MustFunc(FuncLength, strLit("abcd")).Eval(nil); got.Int() != 4 {
		t.Errorf("CHAR_LENGTH = %v", got)
	}
	if _, err := NewFunc(FuncSubstring, []Expr{strLit("x")}); err == nil {
		t.Error("NewFunc accepted wrong arity")
	}
	if _, err := NewFunc("NO_SUCH_FUNC", nil); err == nil {
		t.Error("NewFunc accepted unknown function")
	}
}

func TestAddInterval(t *testing.T) {
	d := types.DateFromYMD(1995, 1, 31)
	got, err := AddInterval(d, 1, "month")
	if err != nil || got.String() != "1995-03-03" {
		// Go's AddDate normalizes Jan 31 + 1 month = Mar 3; accepted —
		// the benchmarks only shift month/year boundaries from day 1.
		if err != nil {
			t.Fatalf("AddInterval: %v", err)
		}
	}
	d2 := types.DateFromYMD(1995, 1, 1)
	if got, _ := AddInterval(d2, 3, "month"); got.String() != "1995-04-01" {
		t.Errorf("1995-01-01 + 3 months = %v", got)
	}
	if got, _ := AddInterval(d2, 1, "year"); got.String() != "1996-01-01" {
		t.Errorf("+1 year = %v", got)
	}
	if got, _ := AddInterval(d2, -90, "day"); got.String() != "1994-10-03" {
		t.Errorf("-90 days = %v", got)
	}
	if _, err := AddInterval(types.NewInt(1), 1, "day"); err == nil {
		t.Error("AddInterval accepted non-date")
	}
	if _, err := AddInterval(d2, 1, "fortnight"); err == nil {
		t.Error("AddInterval accepted unknown unit")
	}
}

func TestOpCommute(t *testing.T) {
	pairs := map[Op]Op{OpEq: OpEq, OpNe: OpNe, OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe}
	for op, want := range pairs {
		if got := op.Commute(); got != want {
			t.Errorf("Commute(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestWithChildrenRoundTrip(t *testing.T) {
	exprs := []Expr{
		NewBinOp(OpAdd, col(0), intLit(1)),
		NewNot(boolLit(true)),
		NewNeg(col(1)),
		NewIsNull(col(0), true),
		NewInList(col(0), []Expr{intLit(1), intLit(2)}, false),
		NewCase([]When{{Cond: boolLit(true), Result: intLit(1)}}, intLit(2)),
		NewCast(col(0), types.KindFloat),
		NewLike(col(0), "a%b", false),
		MustFunc(FuncUpper, strLit("x")),
	}
	for _, e := range exprs {
		rebuilt := e.WithChildren(e.Children())
		if Digest(rebuilt) != Digest(e) {
			t.Errorf("WithChildren round trip changed %s to %s", e, rebuilt)
		}
	}
}

// TestEvalPropertyIntComparison cross-checks comparison evaluation against
// direct Go comparison for random integers.
func TestEvalPropertyIntComparison(t *testing.T) {
	f := func(a, b int64) bool {
		row := types.Row{types.NewInt(a), types.NewInt(b)}
		lt := NewBinOp(OpLt, col(0), NewColRef(1, types.KindInt, ""))
		got := lt.Eval(row)
		return got.Bool() == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDeMorganProperty checks NOT(a AND b) ≡ NOT a OR NOT b on random
// boolean rows, exercising three-valued logic indirectly.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b bool) bool {
		row := types.Row{types.NewBool(a), types.NewBool(b)}
		c0 := NewColRef(0, types.KindBool, "")
		c1 := NewColRef(1, types.KindBool, "")
		lhs := NewNot(NewBinOp(OpAnd, c0, c1)).Eval(row)
		rhs := NewBinOp(OpOr, NewNot(c0), NewNot(c1)).Eval(row)
		return lhs.Bool() == rhs.Bool()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
