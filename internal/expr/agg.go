package expr

import (
	"fmt"
	"strings"

	"gignite/internal/types"
)

// AggFunc enumerates the aggregate functions supported by the engine.
type AggFunc uint8

const (
	// AggCount is COUNT(expr) (non-NULL count) or COUNT(*) when Arg is nil.
	AggCount AggFunc = iota
	// AggSum is SUM(expr).
	AggSum
	// AggAvg is AVG(expr).
	AggAvg
	// AggMin is MIN(expr).
	AggMin
	// AggMax is MAX(expr).
	AggMax
)

var aggNames = [...]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string { return aggNames[f] }

// AggCall is one aggregate invocation within an Aggregate operator.
type AggCall struct {
	Func     AggFunc
	Arg      Expr // nil for COUNT(*)
	Distinct bool
	// Name labels the output column.
	Name string
}

// Kind returns the result kind of the aggregate call.
func (a AggCall) Kind() types.Kind {
	switch a.Func {
	case AggCount:
		return types.KindInt
	case AggAvg:
		return types.KindFloat
	case AggSum:
		if a.Arg != nil && a.Arg.Kind() == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	default: // MIN/MAX follow their argument
		if a.Arg == nil {
			return types.KindNull
		}
		return a.Arg.Kind()
	}
}

// String renders the call for plan digests.
func (a AggCall) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", a.Func, d, arg)
}

// Accumulator is the running state of one aggregate over one group. It is
// created by NewAccumulator and fed rows by Add; Result finalizes.
type Accumulator interface {
	Add(row types.Row)
	Result() types.Value
	// Merge folds another accumulator of the same call into this one.
	// It is used when combining partial aggregates from distributed sites.
	Merge(other Accumulator)
}

// NewAccumulator builds a fresh accumulator for the call.
func (a AggCall) NewAccumulator() Accumulator {
	var base Accumulator
	switch a.Func {
	case AggCount:
		base = &countAcc{arg: a.Arg}
	case AggSum:
		base = &sumAcc{arg: a.Arg, kind: a.Kind()}
	case AggAvg:
		base = &avgAcc{arg: a.Arg}
	case AggMin:
		base = &minMaxAcc{arg: a.Arg, isMin: true}
	case AggMax:
		base = &minMaxAcc{arg: a.Arg}
	default:
		panic(fmt.Sprintf("expr: unknown aggregate %d", a.Func))
	}
	if a.Distinct {
		return &distinctAcc{call: a, seen: make(map[uint64][]types.Value)}
	}
	return base
}

type countAcc struct {
	arg Expr
	n   int64
}

func (c *countAcc) Add(row types.Row) {
	if c.arg != nil && c.arg.Eval(row).IsNull() {
		return
	}
	c.n++
}

func (c *countAcc) Result() types.Value { return types.NewInt(c.n) }

func (c *countAcc) Merge(other Accumulator) { c.n += other.(*countAcc).n }

type sumAcc struct {
	arg     Expr
	kind    types.Kind
	sumI    int64
	sumF    float64
	nonNull bool
}

func (s *sumAcc) Add(row types.Row) {
	v := s.arg.Eval(row)
	if v.IsNull() {
		return
	}
	s.nonNull = true
	if s.kind == types.KindInt {
		s.sumI += v.Int()
	} else {
		s.sumF += v.Float()
	}
}

func (s *sumAcc) Result() types.Value {
	if !s.nonNull {
		return types.Null
	}
	if s.kind == types.KindInt {
		return types.NewInt(s.sumI)
	}
	return types.NewFloat(s.sumF)
}

func (s *sumAcc) Merge(other Accumulator) {
	o := other.(*sumAcc)
	s.sumI += o.sumI
	s.sumF += o.sumF
	s.nonNull = s.nonNull || o.nonNull
}

type avgAcc struct {
	arg Expr
	sum float64
	n   int64
}

func (a *avgAcc) Add(row types.Row) {
	v := a.arg.Eval(row)
	if v.IsNull() {
		return
	}
	a.sum += v.Float()
	a.n++
}

func (a *avgAcc) Result() types.Value {
	if a.n == 0 {
		return types.Null
	}
	return types.NewFloat(a.sum / float64(a.n))
}

func (a *avgAcc) Merge(other Accumulator) {
	o := other.(*avgAcc)
	a.sum += o.sum
	a.n += o.n
}

type minMaxAcc struct {
	arg   Expr
	isMin bool
	best  types.Value
	set   bool
}

func (m *minMaxAcc) Add(row types.Row) {
	v := m.arg.Eval(row)
	if v.IsNull() {
		return
	}
	m.addValue(v)
}

func (m *minMaxAcc) addValue(v types.Value) {
	if !m.set {
		m.best, m.set = v, true
		return
	}
	c := types.Compare(v, m.best)
	if (m.isMin && c < 0) || (!m.isMin && c > 0) {
		m.best = v
	}
}

func (m *minMaxAcc) Result() types.Value {
	if !m.set {
		return types.Null
	}
	return m.best
}

func (m *minMaxAcc) Merge(other Accumulator) {
	o := other.(*minMaxAcc)
	if o.set {
		m.addValue(o.best)
	}
}

// distinctAcc collects the distinct non-NULL argument values (hash buckets
// resolve collisions) and computes the aggregate over them at finalize
// time, so merging two partial accumulators is a simple set union.
type distinctAcc struct {
	call AggCall
	seen map[uint64][]types.Value
}

func (d *distinctAcc) Add(row types.Row) {
	v := d.call.Arg.Eval(row)
	if v.IsNull() {
		return
	}
	d.addValue(v)
}

func (d *distinctAcc) addValue(v types.Value) {
	h := v.Hash()
	for _, existing := range d.seen[h] {
		if types.Equal(existing, v) {
			return
		}
	}
	d.seen[h] = append(d.seen[h], v)
}

func (d *distinctAcc) Result() types.Value {
	var (
		n    int64
		sumF float64
		sumI int64
		best types.Value
		set  bool
	)
	for _, vals := range d.seen {
		for _, v := range vals {
			n++
			switch d.call.Func {
			case AggSum, AggAvg:
				sumF += v.Float()
				if v.K == types.KindInt {
					sumI += v.I
				}
			case AggMin, AggMax:
				if !set {
					best, set = v, true
					break
				}
				c := types.Compare(v, best)
				if (d.call.Func == AggMin && c < 0) || (d.call.Func == AggMax && c > 0) {
					best = v
				}
			}
		}
	}
	switch d.call.Func {
	case AggCount:
		return types.NewInt(n)
	case AggSum:
		if n == 0 {
			return types.Null
		}
		if d.call.Kind() == types.KindInt {
			return types.NewInt(sumI)
		}
		return types.NewFloat(sumF)
	case AggAvg:
		if n == 0 {
			return types.Null
		}
		return types.NewFloat(sumF / float64(n))
	default:
		if !set {
			return types.Null
		}
		return best
	}
}

func (d *distinctAcc) Merge(other Accumulator) {
	o := other.(*distinctAcc)
	for _, vals := range o.seen {
		for _, v := range vals {
			d.addValue(v)
		}
	}
}

// describeAggs renders a list of calls (helper shared by plan nodes).
func DescribeAggs(calls []AggCall) string {
	parts := make([]string, len(calls))
	for i, c := range calls {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
