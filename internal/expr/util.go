package expr

import (
	"sort"

	"gignite/internal/types"
)

// True and False are the boolean literal singletons used by rewrites.
var (
	True  Expr = NewLit(types.NewBool(true))
	False Expr = NewLit(types.NewBool(false))
)

// IsLiteralTrue reports whether e is the constant TRUE.
func IsLiteralTrue(e Expr) bool {
	l, ok := e.(*Lit)
	return ok && l.Val.K == types.KindBool && l.Val.Bool()
}

// IsLiteralFalse reports whether e is the constant FALSE.
func IsLiteralFalse(e Expr) bool {
	l, ok := e.(*Lit)
	return ok && l.Val.K == types.KindBool && !l.Val.Bool()
}

// SplitConjuncts flattens a tree of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if IsLiteralTrue(e) {
		return nil
	}
	return []Expr{e}
}

// SplitDisjuncts flattens a tree of ORs into its disjuncts.
func SplitDisjuncts(e Expr) []Expr {
	if b, ok := e.(*BinOp); ok && b.Op == OpOr {
		return append(SplitDisjuncts(b.L), SplitDisjuncts(b.R)...)
	}
	return []Expr{e}
}

// Conjunction rebuilds an AND tree from conjuncts. An empty list yields
// TRUE.
func Conjunction(conjuncts []Expr) Expr {
	if len(conjuncts) == 0 {
		return True
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = NewBinOp(OpAnd, out, c)
	}
	return out
}

// Disjunction rebuilds an OR tree from disjuncts. An empty list yields
// FALSE.
func Disjunction(disjuncts []Expr) Expr {
	if len(disjuncts) == 0 {
		return False
	}
	out := disjuncts[0]
	for _, d := range disjuncts[1:] {
		out = NewBinOp(OpOr, out, d)
	}
	return out
}

// ColumnSet is a set of input column ordinals.
type ColumnSet map[int]struct{}

// Add inserts a column into the set.
func (s ColumnSet) Add(c int) { s[c] = struct{}{} }

// Contains reports membership.
func (s ColumnSet) Contains(c int) bool {
	_, ok := s[c]
	return ok
}

// Ordered returns the columns in ascending order.
func (s ColumnSet) Ordered() []int {
	out := make([]int, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Max returns the largest column ordinal, or -1 for an empty set.
func (s ColumnSet) Max() int {
	max := -1
	for c := range s {
		if c > max {
			max = c
		}
	}
	return max
}

// AllBelow reports whether every column is < bound.
func (s ColumnSet) AllBelow(bound int) bool {
	for c := range s {
		if c >= bound {
			return false
		}
	}
	return true
}

// AllAtOrAbove reports whether every column is >= bound.
func (s ColumnSet) AllAtOrAbove(bound int) bool {
	for c := range s {
		if c < bound {
			return false
		}
	}
	return true
}

// ColumnsUsed returns the set of input columns referenced by e.
func ColumnsUsed(e Expr) ColumnSet {
	s := make(ColumnSet)
	collectColumns(e, s)
	return s
}

func collectColumns(e Expr, s ColumnSet) {
	if c, ok := e.(*ColRef); ok {
		s.Add(c.Index)
		return
	}
	for _, ch := range e.Children() {
		collectColumns(ch, s)
	}
}

// Transform rewrites an expression bottom-up: fn is applied to every node
// after its children have been rewritten. fn returning its argument
// unchanged is the identity.
func Transform(e Expr, fn func(Expr) Expr) Expr {
	children := e.Children()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, ch := range children {
			newChildren[i] = Transform(ch, fn)
			if newChildren[i] != ch {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newChildren)
		}
	}
	return fn(e)
}

// Remap rewrites column references through a mapping from old ordinal to
// new ordinal. Mapping entries of -1 indicate a column that must not be
// referenced; hitting one panics, signalling a planner bug.
func Remap(e Expr, mapping []int) Expr {
	return Transform(e, func(n Expr) Expr {
		c, ok := n.(*ColRef)
		if !ok {
			return n
		}
		if c.Index >= len(mapping) || mapping[c.Index] < 0 {
			panic("expr: Remap hit an unmapped column reference")
		}
		if mapping[c.Index] == c.Index {
			return n
		}
		return NewColRef(mapping[c.Index], c.Typ, c.Name)
	})
}

// Shift adds delta to every column reference at or above start. It is used
// when predicates move across join inputs.
func Shift(e Expr, start, delta int) Expr {
	if delta == 0 {
		return e
	}
	return Transform(e, func(n Expr) Expr {
		c, ok := n.(*ColRef)
		if !ok || c.Index < start {
			return n
		}
		return NewColRef(c.Index+delta, c.Typ, c.Name)
	})
}

// IsConstant reports whether e references no columns and no unbound
// parameters — i.e. it is safe to evaluate without a row at plan time.
func IsConstant(e Expr) bool {
	switch e.(type) {
	case *ColRef, *Param:
		return false
	}
	for _, ch := range e.Children() {
		if !IsConstant(ch) {
			return false
		}
	}
	return true
}

// Digest returns a canonical string for equality testing of expressions.
// Two expressions with the same digest are semantically identical.
func Digest(e Expr) string { return e.String() }

// EqualExprs reports whether two expressions are structurally identical.
func EqualExprs(a, b Expr) bool { return Digest(a) == Digest(b) }

// ExtractCommonConjuncts implements the paper's §5.2 join-condition
// simplification. Given a predicate that is an OR of AND-bundles
//
//	(c1 ∧ c2 ∧ c3) ∨ (c1 ∧ c4 ∧ c5) ∨ (c1 ∧ c6 ∧ c7)
//
// it pulls every conjunct present in all disjuncts out of the OR:
//
//	c1 ∧ ((c2 ∧ c3) ∨ (c4 ∧ c5) ∨ (c6 ∧ c7))
//
// It returns the common conjuncts and the residual predicate. If no
// common conjunct exists (or the input is not an OR), common is nil and
// residual is the input unchanged.
func ExtractCommonConjuncts(pred Expr) (common []Expr, residual Expr) {
	disjuncts := SplitDisjuncts(pred)
	if len(disjuncts) < 2 {
		return nil, pred
	}
	bundles := make([][]Expr, len(disjuncts))
	for i, d := range disjuncts {
		bundles[i] = SplitConjuncts(d)
	}
	// A conjunct is common if a structurally identical conjunct appears in
	// every bundle.
	for _, cand := range bundles[0] {
		inAll := true
		for _, bundle := range bundles[1:] {
			found := false
			for _, c := range bundle {
				if EqualExprs(cand, c) {
					found = true
					break
				}
			}
			if !found {
				inAll = false
				break
			}
		}
		if inAll {
			common = append(common, cand)
		}
	}
	if len(common) == 0 {
		return nil, pred
	}
	// Rebuild the residual OR from the bundles minus the common conjuncts.
	newDisjuncts := make([]Expr, len(bundles))
	for i, bundle := range bundles {
		var rest []Expr
		for _, c := range bundle {
			isCommon := false
			for _, cc := range common {
				if EqualExprs(c, cc) {
					isCommon = true
					break
				}
			}
			if !isCommon {
				rest = append(rest, c)
			}
		}
		newDisjuncts[i] = Conjunction(rest)
	}
	// If any disjunct became empty (pure TRUE), the residual OR is TRUE.
	for _, d := range newDisjuncts {
		if IsLiteralTrue(d) {
			return common, True
		}
	}
	return common, Disjunction(newDisjuncts)
}

// EquiKey is one equality column pair of a join condition, expressed in
// each side's local column space.
type EquiKey struct {
	Left  int // column ordinal in the left input
	Right int // column ordinal in the right input
}

// SplitJoinCondition analyzes a join predicate over a concatenated
// (left ++ right) row with leftWidth columns from the left input. It
// returns the equi-join key pairs and the remaining non-equi conjuncts.
// A conjunct qualifies as an equi key when it is `leftCol = rightCol`
// (either operand order).
func SplitJoinCondition(cond Expr, leftWidth int) (keys []EquiKey, remaining []Expr) {
	for _, c := range SplitConjuncts(cond) {
		if k, ok := asEquiKey(c, leftWidth); ok {
			keys = append(keys, k)
			continue
		}
		remaining = append(remaining, c)
	}
	return keys, remaining
}

func asEquiKey(c Expr, leftWidth int) (EquiKey, bool) {
	b, ok := c.(*BinOp)
	if !ok || b.Op != OpEq {
		return EquiKey{}, false
	}
	lc, lok := b.L.(*ColRef)
	rc, rok := b.R.(*ColRef)
	if !lok || !rok {
		return EquiKey{}, false
	}
	switch {
	case lc.Index < leftWidth && rc.Index >= leftWidth:
		return EquiKey{Left: lc.Index, Right: rc.Index - leftWidth}, true
	case rc.Index < leftWidth && lc.Index >= leftWidth:
		return EquiKey{Left: rc.Index, Right: lc.Index - leftWidth}, true
	default:
		return EquiKey{}, false
	}
}

// ClassifyPredicate reports which side(s) of a join a predicate touches
// given the left input width: "left", "right", "both" or "none".
func ClassifyPredicate(e Expr, leftWidth int) string {
	cols := ColumnsUsed(e)
	switch {
	case len(cols) == 0:
		return "none"
	case cols.AllBelow(leftWidth):
		return "left"
	case cols.AllAtOrAbove(leftWidth):
		return "right"
	default:
		return "both"
	}
}
