package expr

import "gignite/internal/types"

// Fold performs constant folding and trivial boolean simplification:
// constant sub-expressions are evaluated, TRUE/FALSE identities in AND/OR
// are collapsed, and double negation is removed. Fold never changes the
// semantics of an expression (including three-valued logic: x AND FALSE
// folds to FALSE, but x AND NULL does not fold because x may be FALSE).
func Fold(e Expr) Expr {
	return Transform(e, foldNode)
}

func foldNode(e Expr) Expr {
	switch n := e.(type) {
	case *BinOp:
		switch n.Op {
		case OpAnd:
			switch {
			case IsLiteralFalse(n.L) || IsLiteralFalse(n.R):
				return False
			case IsLiteralTrue(n.L):
				return n.R
			case IsLiteralTrue(n.R):
				return n.L
			}
		case OpOr:
			switch {
			case IsLiteralTrue(n.L) || IsLiteralTrue(n.R):
				return True
			case IsLiteralFalse(n.L):
				return n.R
			case IsLiteralFalse(n.R):
				return n.L
			}
		}
		if isFoldableConst(n.L) && isFoldableConst(n.R) {
			return NewLit(n.Eval(nil))
		}
		return n
	case *Not:
		if inner, ok := n.E.(*Not); ok {
			return inner.E
		}
		if IsLiteralTrue(n.E) {
			return False
		}
		if IsLiteralFalse(n.E) {
			return True
		}
		return n
	case *Neg:
		if isFoldableConst(n.E) {
			return NewLit(n.Eval(nil))
		}
		return n
	case *Cast:
		if isFoldableConst(n.E) {
			return NewLit(n.Eval(nil))
		}
		return n
	case *Func:
		for _, a := range n.Args {
			if !isFoldableConst(a) {
				return n
			}
		}
		return NewLit(n.Eval(nil))
	default:
		return e
	}
}

// isFoldableConst reports whether e is a literal whose evaluation cannot
// depend on a row. (IsConstant would also admit non-literal constant trees;
// restricting folding to direct literals keeps the rewrite cheap because
// Transform already folded the children bottom-up.)
func isFoldableConst(e Expr) bool {
	_, ok := e.(*Lit)
	return ok
}

// StaticBool evaluates a row-independent predicate. It returns (value,
// true) when e is constant, else (false, false).
func StaticBool(e Expr) (bool, bool) {
	if !IsConstant(e) {
		return false, false
	}
	v := Fold(e)
	l, ok := v.(*Lit)
	if !ok {
		// Constant but not folded to a literal (e.g. CASE); evaluate.
		val := e.Eval(nil)
		if val.K != types.KindBool {
			return false, false
		}
		return val.Bool(), true
	}
	if l.Val.K != types.KindBool {
		return false, false
	}
	return l.Val.Bool(), true
}
