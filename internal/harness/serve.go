package harness

import (
	"context"
	"database/sql"
	"fmt"
	"sync"
	"time"

	"gignite/driver"
	"gignite/internal/server"
	"gignite/internal/tpch"
)

// ServeAQLOptions configures the multi-client-over-TCP AQL mode: unlike
// Table3's analytic terminal simulation, this drives real database/sql
// clients against a real gignite server on a loopback socket, so the
// measured latency includes the wire protocol, the driver and the
// serving layer.
type ServeAQLOptions struct {
	// Clients are the terminal counts to sweep (default {2, 4, 8}).
	Clients []int
	// QueriesPerClient bounds each terminal's randomized submissions
	// (default 6; the wall-clock analogue of the paper's 300 s window,
	// kept small so CI stays fast).
	QueriesPerClient int
	// SF is the scale factor (default 0.005).
	SF float64
	// Sites is the simulated site count (default 4).
	Sites int
	// Env supplies the engine (default: fresh).
	Env *Env
}

func (o ServeAQLOptions) withDefaults() ServeAQLOptions {
	if len(o.Clients) == 0 {
		o.Clients = []int{2, 4, 8}
	}
	if o.QueriesPerClient <= 0 {
		o.QueriesPerClient = 6
	}
	if o.SF == 0 {
		o.SF = 0.005
	}
	if o.Sites == 0 {
		o.Sites = 4
	}
	if o.Env == nil {
		o.Env = NewEnv()
	}
	return o
}

// ServeAQL measures average query latency for N concurrent network
// clients: a wire-protocol server is started on an ephemeral loopback
// port in front of the IC+M engine, and each terminal submits randomized
// paper-included TPC-H queries back-to-back through database/sql. The
// report's AQL cells are wall-clock means; the modeled-time columns of
// Table 3 remain the paper-faithful numbers, this mode exercises the
// serving stack end to end.
func ServeAQL(opts ServeAQLOptions) (*Report, error) {
	opts = opts.withDefaults()
	eng, err := opts.Env.Engine(TPCH, ICPM, opts.Sites, opts.SF)
	if err != nil {
		return nil, err
	}
	srv := server.New(eng, server.Config{})
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve() }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	queries := tpchComparable()
	rep := NewReport(
		fmt.Sprintf("Network AQL: %d-site IC+M over TCP at SF %g (wall-clock seconds)", opts.Sites, opts.SF),
		"AQL", "queries", "errors")
	for _, clients := range opts.Clients {
		db := sql.OpenDB(&driver.Connector{Addr: srv.Addr().String()})
		db.SetMaxOpenConns(clients)
		aql, completed, failed := runTerminals(db, queries, clients, opts.QueriesPerClient)
		if err := db.Close(); err != nil {
			return nil, err
		}
		rep.Add(fmt.Sprintf("%d clients", clients),
			fmt.Sprintf("%.4f", aql), fmt.Sprintf("%d", completed), fmt.Sprintf("%d", failed))
		if failed > 0 {
			return rep, fmt.Errorf("serve AQL: %d of %d queries failed at %d clients",
				failed, completed+failed, clients)
		}
	}
	rep.Note("terminals submit randomized paper-included TPC-H queries over the wire protocol")
	rep.Note("latencies are wall-clock (driver round-trip), not modeled time")
	return rep, nil
}

// runTerminals drives `clients` goroutines, each submitting `perClient`
// randomized queries sequentially, and returns the mean wall latency in
// seconds plus completion counts.
func runTerminals(db *sql.DB, queries []tpch.Query, clients, perClient int) (aql float64, completed, failed int) {
	var mu sync.Mutex
	var latencySum float64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Same splitmix-style draw as simulateAQL, seeded per terminal,
			// so runs are reproducible.
			state := uint64(c)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
			for i := 0; i < perClient; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				q := queries[(state>>33)%uint64(len(queries))]
				start := time.Now()
				err := drainQuery(db, q.SQL)
				lat := time.Since(start).Seconds()
				mu.Lock()
				if err != nil {
					failed++
				} else {
					completed++
					latencySum += lat
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if completed > 0 {
		aql = latencySum / float64(completed)
	}
	return aql, completed, failed
}

// drainQuery runs one query and consumes its entire result stream (the
// latency of a terminal includes receiving all rows).
func drainQuery(db *sql.DB, sqlText string) error {
	rows, err := db.Query(sqlText)
	if err != nil {
		return err
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		_ = rows.Close()
		return err
	}
	return rows.Close()
}
