package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Report is a rendered experiment result: one row per query/configuration
// and one column per measured series, mirroring one figure or table of the
// paper.
type Report struct {
	Title   string
	Columns []string
	rows    []reportRow
	Notes   []string
}

type reportRow struct {
	label  string
	values map[string]string
}

// NewReport creates an empty report.
func NewReport(title string, columns ...string) *Report {
	return &Report{Title: title, Columns: columns}
}

// Add appends a row; values align with the report's columns.
func (r *Report) Add(label string, values ...string) {
	m := make(map[string]string, len(values))
	for i, v := range values {
		if i < len(r.Columns) {
			m[r.Columns[i]] = v
		}
	}
	r.rows = append(r.rows, reportRow{label: label, values: m})
}

// Note appends a footnote.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Value returns a cell (for tests).
func (r *Report) Value(label, column string) (string, bool) {
	for _, row := range r.rows {
		if row.label == label {
			v, ok := row.values[column]
			return v, ok
		}
	}
	return "", false
}

// Labels returns the row labels in order.
func (r *Report) Labels() []string {
	out := make([]string, len(r.rows))
	for i, row := range r.rows {
		out[i] = row.label
	}
	return out
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", r.Title, strings.Repeat("=", len(r.Title)))
	widths := make([]int, len(r.Columns)+1)
	widths[0] = len("query")
	for _, row := range r.rows {
		if len(row.label) > widths[0] {
			widths[0] = len(row.label)
		}
	}
	for i, c := range r.Columns {
		widths[i+1] = len(c)
		for _, row := range r.rows {
			if v := row.values[c]; len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	pad := func(s string, w int) string { return s + strings.Repeat(" ", w-len(s)) }
	sb.WriteString(pad("query", widths[0]))
	for i, c := range r.Columns {
		sb.WriteString("  " + pad(c, widths[i+1]))
	}
	sb.WriteByte('\n')
	for _, row := range r.rows {
		sb.WriteString(pad(row.label, widths[0]))
		for i, c := range r.Columns {
			sb.WriteString("  " + pad(row.values[c], widths[i+1]))
		}
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// fmtSpeedup renders a speedup multiplier.
func fmtSpeedup(v float64) string {
	if v <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", v)
}

// fmtPct renders a relative change as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }

// sortedKeys returns a map's keys in order (generic helper for stable
// report output).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
