package harness

import (
	"errors"
	"fmt"
	"time"

	"gignite"
	"gignite/internal/ssb"
	"gignite/internal/tpch"
)

// Options configures the experiment drivers. Scale factors are relative to
// TPC-H SF 1 (the paper runs 0.5–3; this laptop-scale reproduction
// defaults to 0.005 and 0.01, preserving relative table sizes).
type Options struct {
	SFs   []float64
	Sites []int
	Env   *Env
}

func (o Options) withDefaults() Options {
	if len(o.SFs) == 0 {
		o.SFs = []float64{0.005, 0.01}
	}
	if len(o.Sites) == 0 {
		o.Sites = []int{4, 8}
	}
	if o.Env == nil {
		o.Env = NewEnv()
	}
	return o
}

// paperExcluded is the TPC-H query set the paper's Figures 7/8 and the
// AQL experiment exclude: Q15/Q20 disabled, Q2/Q5/Q9/Q17/Q19/Q21 not
// runnable on the baseline.
var paperExcluded = map[int]bool{
	2: true, 5: true, 9: true, 15: true, 17: true, 19: true, 20: true, 21: true,
}

// tpchComparable returns the queries included in Figures 7 and 8.
func tpchComparable() []tpch.Query {
	var out []tpch.Query
	for _, q := range tpch.Queries() {
		if !paperExcluded[q.ID] {
			out = append(out, q)
		}
	}
	return out
}

// speedupPerQuery measures avg-over-SFs speedup base/improved per query at
// one site count.
func speedupPerQuery(opts Options, w Workload, base, improved System, sites int,
	queries []struct{ label, sql string }) (map[string]float64, error) {

	out := make(map[string]float64, len(queries))
	for _, q := range queries {
		var sum float64
		var n int
		for _, sf := range opts.SFs {
			eb, err := opts.Env.Engine(w, base, sites, sf)
			if err != nil {
				return nil, err
			}
			ei, err := opts.Env.Engine(w, improved, sites, sf)
			if err != nil {
				return nil, err
			}
			tb, err := ResponseTime(eb, q.sql)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", q.label, base, err)
			}
			ti, err := ResponseTime(ei, q.sql)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", q.label, improved, err)
			}
			if ti > 0 {
				sum += float64(tb) / float64(ti)
				n++
			}
		}
		if n > 0 {
			out[q.label] = sum / float64(n)
		}
	}
	return out, nil
}

func tpchQuerySpecs(qs []tpch.Query) []struct{ label, sql string } {
	out := make([]struct{ label, sql string }, len(qs))
	for i, q := range qs {
		out[i] = struct{ label, sql string }{fmt.Sprintf("Q%d", q.ID), q.SQL}
	}
	return out
}

// Fig7 reproduces Figure 7: per-query TPC-H speedup of IC+ over IC at 4
// and 8 sites (join optimizations + query planner improvements).
func Fig7(opts Options) (*Report, error) {
	return tpchSpeedupFigure(opts, "Figure 7: IC+ speedup over IC (TPC-H)", IC, ICPlus)
}

// Fig8 reproduces Figure 8: per-query TPC-H speedup of IC+M over IC.
func Fig8(opts Options) (*Report, error) {
	return tpchSpeedupFigure(opts, "Figure 8: IC+M speedup over IC (TPC-H)", IC, ICPM)
}

func tpchSpeedupFigure(opts Options, title string, base, improved System) (*Report, error) {
	opts = opts.withDefaults()
	rep := NewReport(title, "4 sites", "8 sites")
	specs := tpchQuerySpecs(tpchComparable())
	bySites := make(map[int]map[string]float64)
	for _, sites := range opts.Sites {
		m, err := speedupPerQuery(opts, TPCH, base, improved, sites, specs)
		if err != nil {
			return nil, err
		}
		bySites[sites] = m
	}
	for _, q := range specs {
		var cells []string
		for _, sites := range opts.Sites {
			cells = append(cells, fmtSpeedup(bySites[sites][q.label]))
		}
		rep.Add(q.label, cells...)
	}
	rep.Note("excluded per the paper's protocol: Q15, Q20 (disabled) and Q2, Q5, Q9, Q17, Q19, Q21 (not runnable on the IC baseline)")
	rep.Note("values average scale factors %v", opts.SFs)
	return rep, nil
}

// Fig9 reproduces Figure 9: the incremental effect of multithreading —
// IC+M vs IC+ at 4 sites, shown as a relative performance difference
// (positive = IC+M faster).
func Fig9(opts Options) (*Report, error) { return multithreadingFigure(opts, 4) }

// Fig10 is Figure 10: the same at 8 sites.
func Fig10(opts Options) (*Report, error) { return multithreadingFigure(opts, 8) }

func multithreadingFigure(opts Options, sites int) (*Report, error) {
	opts = opts.withDefaults()
	title := fmt.Sprintf("Figure %d: multithreading incremental difference, IC+ vs IC+M (%d sites)",
		map[int]int{4: 9, 8: 10}[sites], sites)
	rep := NewReport(title, "IC+ (ms)", "IC+M (ms)", "delta")
	for _, q := range tpch.Queries() {
		if q.RequiresViews || q.ID == 20 {
			continue
		}
		var sumPlus, sumM time.Duration
		var n int
		for _, sf := range opts.SFs {
			ep, err := opts.Env.Engine(TPCH, ICPlus, sites, sf)
			if err != nil {
				return nil, err
			}
			em, err := opts.Env.Engine(TPCH, ICPM, sites, sf)
			if err != nil {
				return nil, err
			}
			tp, err1 := ResponseTime(ep, q.SQL)
			tm, err2 := ResponseTime(em, q.SQL)
			if err1 != nil || err2 != nil {
				continue
			}
			sumPlus += tp
			sumM += tm
			n++
		}
		if n == 0 {
			rep.Add(fmt.Sprintf("Q%d", q.ID), "n/a", "n/a", "n/a")
			continue
		}
		tp := sumPlus / time.Duration(n)
		tm := sumM / time.Duration(n)
		delta := (float64(tp) - float64(tm)) / float64(tp)
		rep.Add(fmt.Sprintf("Q%d", q.ID),
			fmt.Sprintf("%.2f", float64(tp)/1e6),
			fmt.Sprintf("%.2f", float64(tm)/1e6),
			fmtPct(delta))
	}
	rep.Note("positive delta: multithreading helped; negative: variant overhead dominated")
	return rep, nil
}

// aqlSeconds is the §6.3 measurement window per test.
const aqlSeconds = 300

// aqlContention models service-time dilation under concurrent clients.
// Two components, per the paper's §6.3 analysis:
//
//   - a load term that grows with every additional client (coordination,
//     queueing, network sharing) and affects every system equally;
//   - a CPU-contention term that applies only once the concurrent thread
//     demand exceeds the per-site cores — which is what makes IC+M (double
//     threads per query) win at 2 clients but lose at 4 and 8 ("the number
//     (2×) of concurrent processing threads surpasses the CPU core count").
func aqlContention(sys System, clients int) float64 {
	const (
		alpha           = 0.15 // per-client load growth
		gamma           = 0.5  // over-core contention slope
		coresPerSite    = 24.0
		threadsPerQuery = 3.5 // avg concurrently active threads per site
	)
	threads := threadsPerQuery
	if sys == ICPM {
		threads *= 2
	}
	demand := float64(clients) * threads
	over := 0.0
	if demand > coresPerSite {
		over = gamma * (demand - coresPerSite) / coresPerSite
	}
	return 1 + alpha*float64(clients-1) + over
}

// Table3 reproduces the AQL experiment: {2,4,8} clients × {4,8} sites ×
// {IC, IC+, IC+M}, with clients submitting randomized queries for 300
// simulated seconds.
func Table3(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sf := opts.SFs[len(opts.SFs)-1]
	rep := NewReport("Table 3: average query latency (modeled seconds)")
	for _, sites := range opts.Sites {
		for _, sys := range Systems() {
			rep.Columns = append(rep.Columns, fmt.Sprintf("%s/%d sites", sys, sites))
		}
	}
	// Base per-query times per (system, sites).
	type key struct {
		sys   System
		sites int
	}
	base := make(map[key][]time.Duration)
	for _, sites := range opts.Sites {
		for _, sys := range Systems() {
			e, err := opts.Env.Engine(TPCH, sys, sites, sf)
			if err != nil {
				return nil, err
			}
			var times []time.Duration
			for _, q := range tpch.Queries() {
				if paperExcluded[q.ID] {
					continue
				}
				d, err := ResponseTime(e, q.SQL)
				if err != nil {
					return nil, fmt.Errorf("AQL %s Q%d: %w", sys, q.ID, err)
				}
				times = append(times, d)
			}
			base[key{sys, sites}] = times
		}
	}
	for _, clients := range []int{2, 4, 8} {
		var cells []string
		for _, sites := range opts.Sites {
			for _, sys := range Systems() {
				times := base[key{sys, sites}]
				cells = append(cells, fmt.Sprintf("%.3f",
					simulateAQL(times, clients, aqlContention(sys, clients))))
			}
		}
		rep.Add(fmt.Sprintf("%d clients", clients), cells...)
	}
	rep.Note("terminals submit randomized queries sequentially for %d simulated seconds (five-run averages)", aqlSeconds)
	rep.Note("scale factor %g; excluded queries as in the paper's §6.3", sf)
	return rep, nil
}

// simulateAQL runs the terminal protocol: k clients draw random queries
// back-to-back until the window elapses; AQL is the mean latency of all
// completed requests. Five seeded repetitions are averaged (§6.3).
func simulateAQL(baseTimes []time.Duration, clients int, contention float64) float64 {
	if len(baseTimes) == 0 {
		return 0
	}
	var totalAQL float64
	for run := 0; run < 5; run++ {
		var latencySum float64
		var completed int
		seed := uint64(run)*2654435761 + uint64(clients)
		for c := 0; c < clients; c++ {
			elapsed := 0.0
			state := seed + uint64(c)*0x9E3779B97F4A7C15
			for elapsed < aqlSeconds {
				state = state*6364136223846793005 + 1442695040888963407
				q := baseTimes[(state>>33)%uint64(len(baseTimes))]
				lat := q.Seconds() * contention
				elapsed += lat
				latencySum += lat
				completed++
			}
		}
		totalAQL += latencySum / float64(completed)
	}
	return totalAQL / 5
}

// Fig11 reproduces Figure 11: SSB per-query response time multiplier of
// IC+M relative to IC, averaged over scale factors and site counts, for
// the paper-included flights (QS1 and QS3).
func Fig11(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	rep := NewReport("Figure 11: SSB per-query performance, IC vs IC+M", "speedup")
	excluded := ssb.ExcludedFlights()
	for _, q := range ssb.Queries() {
		if excluded[q.Flight] {
			continue
		}
		var sum float64
		var n int
		for _, sites := range opts.Sites {
			for _, sf := range opts.SFs {
				eb, err := opts.Env.Engine(SSB, IC, sites, sf)
				if err != nil {
					return nil, err
				}
				em, err := opts.Env.Engine(SSB, ICPM, sites, sf)
				if err != nil {
					return nil, err
				}
				tb, err := ResponseTime(eb, q.SQL)
				if err != nil {
					return nil, fmt.Errorf("%s on IC: %w", q.ID, err)
				}
				tm, err := ResponseTime(em, q.SQL)
				if err != nil {
					return nil, fmt.Errorf("%s on IC+M: %w", q.ID, err)
				}
				if tm > 0 {
					sum += float64(tb) / float64(tm)
					n++
				}
			}
		}
		if n > 0 {
			rep.Add(q.ID, fmtSpeedup(sum/float64(n)))
		} else {
			rep.Add(q.ID, "n/a")
		}
	}
	rep.Note("QS2 and QS4 excluded per the paper's §6.4 protocol (Calcite planner search-space timeouts; this reproduction's planner handles them — see the failure-matrix experiment)")
	return rep, nil
}

// FailureMatrix reproduces the §1/§6 baseline failure analysis: the status
// of every TPC-H query on the IC baseline, next to the paper's reported
// status.
func FailureMatrix(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sf := opts.SFs[0]
	e, err := opts.Env.Engine(TPCH, IC, 4, sf)
	if err != nil {
		return nil, err
	}
	paper := map[int]string{
		2: "no plan", 5: "no plan", 9: "no plan",
		15: "views unsupported", 20: "planner exception",
		17: "timeout (>4h)", 19: "timeout (>4h)", 21: "timeout (>4h)",
	}
	rep := NewReport("Baseline (IC) failure matrix", "this reproduction", "paper")
	for _, q := range tpch.Queries() {
		label := fmt.Sprintf("Q%d", q.ID)
		paperStatus, ok := paper[q.ID]
		if !ok {
			paperStatus = "ok"
		}
		if q.RequiresViews {
			rep.Add(label, "views unsupported", paperStatus)
			continue
		}
		_, err := e.Query(q.SQL)
		status := "ok"
		switch {
		case errors.Is(err, gignite.ErrQueryTimeout):
			status = "timeout (work limit)"
		case errors.Is(err, gignite.ErrPlanBudget):
			status = "no plan (budget)"
		case err != nil:
			status = "error: " + err.Error()
		}
		rep.Add(label, status, paperStatus)
	}
	rep.Note("scale factor %g, work limit %.2g", sf, WorkLimitFor(sf))
	rep.Note("deviations: this reproduction's DP join-order search plans Q2/Q5/Q9 (Calcite's memo did not); the mis-planned queries fail at execution instead where their nested-loop work exceeds the limit")
	return rep, nil
}

// AblationFlag names one independently togglable IC+ improvement.
type AblationFlag struct {
	Name    string
	Disable func(*gignite.Config)
}

// AblationFlags lists the §4/§5 improvements for one-at-a-time ablation.
func AblationFlags() []AblationFlag {
	return []AblationFlag{
		{"swami-schiefer-estimation", func(c *gignite.Config) { c.SwamiSchieferEstimation = false }},
		{"filter-correlate", func(c *gignite.Config) { c.FilterCorrelate = false }},
		{"exchange-penalty-fix", func(c *gignite.Config) { c.FixExchangePenalty = false }},
		{"standard-cost-units", func(c *gignite.Config) { c.StandardCostUnits = false }},
		{"distribution-factor", func(c *gignite.Config) { c.DistributionFactor = false }},
		{"two-phase-optimization", func(c *gignite.Config) { c.TwoPhaseOptimization = false }},
		{"hash-join", func(c *gignite.Config) { c.HashJoin = false }},
		{"fully-distributed-joins", func(c *gignite.Config) { c.FullyDistributedJoins = false }},
		{"join-condition-simplification", func(c *gignite.Config) { c.JoinConditionSimplification = false }},
	}
}

// ablationQueries is a representative TPC-H subset exercising each
// improvement, including the baseline-failing Q17/Q21 whose health depends
// on the estimation and FILTER_CORRELATE fixes (they re-appear as
// work-limit failures when the responsible improvement is disabled).
var ablationQueries = []int{3, 4, 7, 10, 12, 14, 16, 17, 18, 19, 21, 22}

// Ablation measures IC+ with each improvement disabled one at a time: the
// total modeled time over the ablation query subset, relative to full IC+.
func Ablation(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	sf := opts.SFs[0]
	const sites = 4

	run := func(cfg gignite.Config) (time.Duration, int, error) {
		e := gignite.New(cfg)
		if err := tpch.Setup(e, sf); err != nil {
			return 0, 0, err
		}
		var total time.Duration
		failures := 0
		for _, id := range ablationQueries {
			q := tpch.QueryByID(id)
			d, err := ResponseTime(e, q.SQL)
			if err != nil {
				failures++
				continue
			}
			total += d
		}
		return total, failures, nil
	}

	baseCfg := ConfigFor(ICPlus, sites, sf)
	baseTotal, baseFail, err := run(baseCfg)
	if err != nil {
		return nil, err
	}
	rep := NewReport("Ablation: IC+ with one improvement disabled (TPC-H subset)",
		"total (ms)", "vs IC+", "failures")
	rep.Add("IC+ (all enabled)", fmt.Sprintf("%.2f", float64(baseTotal)/1e6), "1.00x",
		fmt.Sprintf("%d", baseFail))
	for _, f := range AblationFlags() {
		cfg := ConfigFor(ICPlus, sites, sf)
		f.Disable(&cfg)
		total, failures, err := run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", f.Name, err)
		}
		ratio := "n/a"
		if total > 0 && baseTotal > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(total)/float64(baseTotal))
		}
		rep.Add("without "+f.Name, fmt.Sprintf("%.2f", float64(total)/1e6), ratio,
			fmt.Sprintf("%d", failures))
	}
	rep.Note("queries: %v at SF %g, %d sites; failures are work-limit timeouts", ablationQueries, sf, sites)
	return rep, nil
}

// Scaling reports per-query response time across scale factors for each
// system — the §6.2 methodology's inner loop ("every combination of scale
// factor and system configuration"), which the per-query figures average
// away. It makes growth trends visible: baseline NLJ plans grow
// quadratically while the improved plans grow roughly linearly.
func Scaling(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	const sites = 4
	queryIDs := []int{1, 3, 6, 12, 14}
	rep := NewReport("Scaling: modeled response time (ms) by scale factor, 4 sites")
	for _, sys := range Systems() {
		for _, sf := range opts.SFs {
			rep.Columns = append(rep.Columns, fmt.Sprintf("%s@%g", sys, sf))
		}
	}
	for _, id := range queryIDs {
		q := tpch.QueryByID(id)
		var cells []string
		for _, sys := range Systems() {
			for _, sf := range opts.SFs {
				e, err := opts.Env.Engine(TPCH, sys, sites, sf)
				if err != nil {
					return nil, err
				}
				d, err := ResponseTime(e, q.SQL)
				if err != nil {
					cells = append(cells, "fail")
					continue
				}
				cells = append(cells, fmt.Sprintf("%.2f", float64(d)/1e6))
			}
		}
		rep.Add(fmt.Sprintf("Q%d", id), cells...)
	}
	return rep, nil
}
